# Cross-compile toolchain for the SENECA edge target class (aarch64 Linux,
# e.g. the ZCU104's Cortex-A53 PS). CI both builds with it and runs the
# INT8 kernel suite under qemu-user, so the NEON kernels
# (src/quant/kernels_neon.cpp) and the POSIX socket/process layer are
# exercised for the real target on every PR, not just on x86 hosts.
#
#   cmake -B build-aarch64 -S . \
#     -DCMAKE_TOOLCHAIN_FILE=cmake/toolchains/aarch64-linux-gnu.cmake \
#     -DSENECA_BUILD_TESTS=OFF -DSENECA_BUILD_BENCH=OFF \
#     -DSENECA_BUILD_EXAMPLES=OFF
#
# (Tests need a cross-built GTest — CI compiles one from the distro source
# package with this same toolchain and points CMAKE_PREFIX_PATH at it;
# bench/examples additionally need google-benchmark and stay off.)

set(CMAKE_SYSTEM_NAME Linux)
set(CMAKE_SYSTEM_PROCESSOR aarch64)

set(CMAKE_C_COMPILER aarch64-linux-gnu-gcc)
set(CMAKE_CXX_COMPILER aarch64-linux-gnu-g++)

# The ZCU104 PS is a Cortex-A53; -mcpu both tunes for it and guarantees the
# Advanced SIMD (NEON) ISA the kernel layer's intrinsics require.
set(CMAKE_C_FLAGS_INIT "-mcpu=cortex-a53")
set(CMAKE_CXX_FLAGS_INIT "-mcpu=cortex-a53")

# Search headers/libs only in the target environment; find programs
# (cmake, ninja, ccache) only on the host.
set(CMAKE_FIND_ROOT_PATH /usr/aarch64-linux-gnu)
set(CMAKE_FIND_ROOT_PATH_MODE_PROGRAM NEVER)
set(CMAKE_FIND_ROOT_PATH_MODE_LIBRARY ONLY)
set(CMAKE_FIND_ROOT_PATH_MODE_INCLUDE ONLY)
set(CMAKE_FIND_ROOT_PATH_MODE_PACKAGE ONLY)
