# Cross-compile toolchain for the SENECA edge target class (aarch64 Linux,
# e.g. the ZCU104's Cortex-A53 PS). Build-only in CI: the point is that the
# NEON kernels (src/quant/kernels_neon.cpp) and the POSIX socket/process
# layer compile for the real target on every PR, not just on x86 hosts.
#
#   cmake -B build-aarch64 -S . \
#     -DCMAKE_TOOLCHAIN_FILE=cmake/toolchains/aarch64-linux-gnu.cmake \
#     -DSENECA_BUILD_TESTS=OFF -DSENECA_BUILD_BENCH=OFF \
#     -DSENECA_BUILD_EXAMPLES=OFF
#
# (Tests/bench/examples need host-arch GTest/benchmark packages, so they
# stay off unless a cross sysroot provides them.)

set(CMAKE_SYSTEM_NAME Linux)
set(CMAKE_SYSTEM_PROCESSOR aarch64)

set(CMAKE_C_COMPILER aarch64-linux-gnu-gcc)
set(CMAKE_CXX_COMPILER aarch64-linux-gnu-g++)

# The ZCU104 PS is a Cortex-A53; -mcpu both tunes for it and guarantees the
# Advanced SIMD (NEON) ISA the kernel layer's intrinsics require.
set(CMAKE_C_FLAGS_INIT "-mcpu=cortex-a53")
set(CMAKE_CXX_FLAGS_INIT "-mcpu=cortex-a53")

# Search headers/libs only in the target environment; find programs
# (cmake, ninja, ccache) only on the host.
set(CMAKE_FIND_ROOT_PATH /usr/aarch64-linux-gnu)
set(CMAKE_FIND_ROOT_PATH_MODE_PROGRAM NEVER)
set(CMAKE_FIND_ROOT_PATH_MODE_LIBRARY ONLY)
set(CMAKE_FIND_ROOT_PATH_MODE_INCLUDE ONLY)
set(CMAKE_FIND_ROOT_PATH_MODE_PACKAGE ONLY)
