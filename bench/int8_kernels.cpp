// INT8 kernel bench: the SIMD/arena hot path vs the scalar reference.
//
// Two sections. The micro section times each kernel (conv / tconv / pool /
// concat) on a representative mid-network shape per backend and reports the
// per-kernel speedup. The end-to-end section runs the functional DPU core
// simulator over every model-zoo ladder rung and reports frames/second per
// backend — scalar (the int64 reference, no arena: the pre-kernel-layer
// executor), generic (portable int32), and SIMD (AVX2/NEON) with a
// TensorArena, which is what VartRunner workers run in production. Every
// backend's output is compared bit-for-bit against the scalar
// quant::QGraph reference on a deterministic pseudo-random input.
//
//   ./int8_kernels [--input 128] [--min-time 0.4] [--max-frames 60]
//                  [--min-speedup 4] [--json int8_kernels.json] [--strict]
//
// --strict exits nonzero unless the best available backend reaches
// --min-speedup x scalar FPS on the 16M and 2M rungs AND every backend is
// bit-exact on every rung.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/workflow.hpp"
#include "dpu/compiler.hpp"
#include "dpu/core_sim.hpp"
#include "eval/table.hpp"
#include "quant/kernels.hpp"
#include "tensor/arena.hpp"
#include "util/cli.hpp"

namespace {

using namespace seneca;
using quant::kernels::Backend;

tensor::TensorI8 seeded_input(const tensor::Shape& shape, std::uint64_t seed) {
  tensor::TensorI8 t(shape);
  std::uint64_t s = seed;
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    t[i] = static_cast<std::int8_t>(static_cast<std::int64_t>(s >> 56) - 128);
  }
  return t;
}

/// Backends to bench: scalar reference first, then everything built in.
std::vector<Backend> bench_backends() {
  std::vector<Backend> v{Backend::kScalar, Backend::kGeneric};
  if (quant::kernels::simd_available()) v.push_back(Backend::kSimd);
  return v;
}

struct Timing {
  double fps = 0.0;
  int frames = 0;
};

template <typename Fn>
Timing time_loop(Fn&& fn, double min_seconds, int max_frames) {
  using clock = std::chrono::steady_clock;
  Timing t;
  const auto t0 = clock::now();
  double elapsed = 0.0;
  do {
    fn();
    ++t.frames;
    elapsed = std::chrono::duration<double>(clock::now() - t0).count();
  } while (elapsed < min_seconds && t.frames < max_frames);
  t.fps = static_cast<double>(t.frames) / elapsed;
  return t;
}

// ------------------------------------------------------- micro section --

struct MicroResult {
  std::string kernel;
  std::vector<double> us;  // microseconds/call, indexed like bench_backends()
};

std::vector<MicroResult> run_micro(double min_seconds) {
  using quant::QOp;
  using tensor::Shape;
  using tensor::TensorI8;

  const std::int64_t hw = 56, ci = 32, co = 64;
  QOp conv;
  conv.kind = quant::QOpKind::kConv2D;
  conv.kernel = 3;
  conv.relu = true;
  conv.out_shape = Shape{hw, hw, co};
  conv.fix_pos_w = 6;
  conv.fix_pos_out = 4;
  conv.weights = seeded_input(Shape{3, 3, ci, co}, 11);
  conv.bias.assign(static_cast<std::size_t>(co), 321);

  QOp tconv;
  tconv.kind = quant::QOpKind::kTConv2D;
  tconv.kernel = 3;
  tconv.out_shape = Shape{hw, hw, ci};
  tconv.fix_pos_w = 6;
  tconv.fix_pos_out = 4;
  tconv.weights = seeded_input(Shape{3, 3, co, ci}, 13);
  tconv.bias.assign(static_cast<std::size_t>(ci), -123);

  const TensorI8 x = seeded_input(Shape{hw, hw, ci}, 17);
  const TensorI8 xt = seeded_input(Shape{hw / 2, hw / 2, co}, 19);
  const int fp_in = 4;
  tensor::TensorArena arena;
  TensorI8 out_conv(conv.out_shape);
  TensorI8 out_tconv(tconv.out_shape);
  TensorI8 out_pool(Shape{hw / 2, hw / 2, ci});
  TensorI8 out_cat(Shape{hw, hw, 2 * ci});

  std::vector<MicroResult> results(4);
  results[0].kernel = "conv2d 56x56x32->64 k3";
  results[1].kernel = "tconv2d 28x28x64->56x56x32";
  results[2].kernel = "maxpool 56x56x32";
  results[3].kernel = "concat 2x 56x56x32";
  for (Backend b : bench_backends()) {
    quant::kernels::set_backend(b);
    const Timing tc = time_loop(
        [&] { quant::kernels::conv2d(x, conv, out_conv, fp_in); },
        min_seconds, 1 << 20);
    const Timing tt = time_loop(
        [&] { quant::kernels::tconv2d(xt, tconv, out_tconv, fp_in, &arena); },
        min_seconds, 1 << 20);
    const Timing tp = time_loop(
        [&] { quant::kernels::maxpool2d(x, out_pool); }, min_seconds, 1 << 20);
    const Timing tk = time_loop(
        [&] { quant::kernels::concat(x, 5, x, 3, out_cat, 4); }, min_seconds,
        1 << 20);
    results[0].us.push_back(1e6 / tc.fps);
    results[1].us.push_back(1e6 / tt.fps);
    results[2].us.push_back(1e6 / tp.fps);
    results[3].us.push_back(1e6 / tk.fps);
  }
  quant::kernels::set_backend(Backend::kAuto);
  return results;
}

// -------------------------------------------------- end-to-end section --

struct RungResult {
  std::string model;
  std::vector<double> fps;    // indexed like bench_backends()
  std::vector<bool> bitexact;
  double best_speedup = 0.0;
};

}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  const std::int64_t input = cli.get_int("input", 128);
  const double min_time = cli.get_double("min-time", 0.4);
  const int max_frames = static_cast<int>(cli.get_int("max-frames", 60));
  const double min_speedup = cli.get_double("min-speedup", 4.0);
  const bool strict = cli.get_bool("strict", false);
  const std::string json_path = cli.get("json", "");

  const std::vector<Backend> backends = bench_backends();
  std::vector<std::string> backend_names;
  for (Backend b : backends) {
    backend_names.push_back(quant::kernels::backend_name(
        b == Backend::kSimd ? quant::kernels::active_backend() : b));
  }

  // Per-kernel micro bench.
  const auto micro = run_micro(min_time * 0.25);
  {
    std::vector<std::string> header{"Kernel"};
    for (const auto& n : backend_names) header.push_back("us/" + n);
    header.push_back("best speedup");
    eval::Table table(header);
    for (const auto& m : micro) {
      std::vector<std::string> row{m.kernel};
      for (double us : m.us) row.push_back(eval::Table::num(us, 1));
      row.push_back(eval::Table::num(m.us.front() / m.us.back(), 2));
      table.add_row(row);
    }
    std::printf("%s\n", table.render().c_str());
  }

  // End-to-end: functional DPU simulator FPS per ladder rung.
  const std::vector<std::string> rungs = {"16M", "8M", "4M", "2M", "1M"};
  std::vector<RungResult> results;
  for (const auto& name : rungs) {
    RungResult r;
    r.model = name;
    const quant::QGraph qg = core::build_timing_qgraph(name, input);
    const dpu::XModel xm = dpu::compile(qg);
    const dpu::DpuCoreSim sim(&xm);
    const auto in = seeded_input(qg.input_shape, 0x5ECA + results.size());

    quant::kernels::set_backend(Backend::kScalar);
    const auto ref = qg.forward(in);

    for (Backend b : backends) {
      quant::kernels::set_backend(b);
      // Scalar is benched without an arena: that is the pre-kernel-layer
      // executor this bench measures the win against.
      tensor::TensorArena arena;
      tensor::TensorArena* ap = b == Backend::kScalar ? nullptr : &arena;
      const auto out = sim.run(in, 1, ap).output;  // also warms the arena
      r.bitexact.push_back(tensor::max_abs_diff(ref, out) == 0.0);
      const Timing t = time_loop([&] { (void)sim.run(in, 1, ap); }, min_time,
                                 max_frames);
      r.fps.push_back(t.fps);
    }
    quant::kernels::set_backend(Backend::kAuto);
    r.best_speedup = r.fps.back() / r.fps.front();
    results.push_back(r);
  }

  {
    std::vector<std::string> header{"Model"};
    for (const auto& n : backend_names) header.push_back("FPS " + n);
    header.push_back("best speedup");
    header.push_back("Bit-exact");
    eval::Table table(header);
    for (const auto& r : results) {
      std::vector<std::string> row{r.model};
      for (double f : r.fps) row.push_back(eval::Table::num(f, 1));
      row.push_back(eval::Table::num(r.best_speedup, 2));
      bool all = true;
      for (bool bx : r.bitexact) all = all && bx;
      row.push_back(all ? "yes" : "NO");
      table.add_row(row);
    }
    std::printf("%s\n", table.render().c_str());
  }
  std::printf(
      "(end-to-end functional DPU simulator at %lldx%lld; scalar = int64 "
      "reference without arena, others recycle a TensorArena as VartRunner "
      "workers do)\n",
      static_cast<long long>(input), static_cast<long long>(input));

  bool pass = true;
  for (const auto& r : results) {
    for (std::size_t i = 0; i < r.bitexact.size(); ++i) {
      if (!r.bitexact[i]) {
        std::printf("FAIL: %s %s output not bit-exact vs scalar reference\n",
                    r.model.c_str(), backend_names[i].c_str());
        pass = false;
      }
    }
    if ((r.model == "16M" || r.model == "2M") && r.best_speedup < min_speedup) {
      std::printf("FAIL: %s speedup %.2fx < %.2fx\n", r.model.c_str(),
                  r.best_speedup, min_speedup);
      pass = false;
    }
  }
  std::printf("int8_kernels check: %s\n", pass ? "PASS" : "FAIL");

  bench::JsonWriter json;
  for (const auto& r : results) {
    json.obj().field("model", r.model);
    for (std::size_t j = 0; j < r.fps.size(); ++j) {
      json.field("fps_" + std::string(backend_names[j]), r.fps[j]);
    }
    bool all = true;
    for (bool bx : r.bitexact) all = all && bx;
    json.field("best_speedup", r.best_speedup).field("bitexact", all);
  }
  bench::write_json_file(json_path, json.str());
  return strict && !pass ? 1 : 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "int8_kernels: %s\n", e.what());
  return 1;
}
