#include "common.hpp"

#include <cstdio>
#include <fstream>

namespace seneca::bench {

core::WorkflowConfig accuracy_config(const std::string& model_name,
                                     bool best_profile) {
  core::WorkflowConfig cfg;
  cfg.model_name = model_name;
  cfg.dataset.resolution = 64;
  cfg.train.learning_rate = 2e-3f;
  cfg.train.lr_decay = 0.95f;
  cfg.calibration_images = 32;
  cfg.artifacts_dir = "artifacts";
  if (best_profile) {
    // Deep-training profile for the selected SENECA model (Table V, Figs 5-6).
    cfg.dataset.num_volumes = 32;
    cfg.dataset.slices_per_volume = 14;
    cfg.train.epochs = 34;
  } else {
    // Sweep profile: same data for all five configs; epoch budget shrinks
    // with model cost so the sweep stays tractable on one host core.
    cfg.dataset.num_volumes = 24;
    cfg.dataset.slices_per_volume = 12;
    if (model_name == "1M" || model_name == "2M") {
      cfg.train.epochs = 14;
    } else if (model_name == "4M") {
      cfg.train.epochs = 12;
    } else if (model_name == "8M") {
      cfg.train.epochs = 10;
    } else {
      cfg.train.epochs = 8;
    }
  }
  return cfg;
}

core::WorkflowArtifacts run_accuracy_workflow(const std::string& model_name,
                                              bool best_profile) {
  core::Workflow workflow(accuracy_config(model_name, best_profile));
  return workflow.run();
}

MeasuredPerf measure_fpga(const dpu::XModel& xmodel, int threads, int images,
                          int runs, std::uint64_t noise_seed) {
  runtime::SocConfig soc;
  platform::ZcuPowerModel power_model;
  platform::MeasurementModel fps_meter(0.001, noise_seed);
  const double ddr_gbs_per_fps = static_cast<double>(xmodel.total_ddr_bytes()) / 1e9;

  std::vector<double> fps_samples, watt_samples, ee_samples;
  for (int run = 0; run < runs; ++run) {
    const auto report = runtime::simulate_throughput(xmodel, soc, threads, images);
    const double true_watts = power_model.watts(
        report, xmodel.compute_utilization(), ddr_gbs_per_fps * report.fps);
    // Voltcraft-style sampling of the run.
    platform::EnergyLogger logger(0.5, 0.002, noise_seed * 97 + static_cast<std::uint64_t>(run));
    logger.log_phase(true_watts, report.total_seconds);
    const double fps = fps_meter.observe(report.fps);
    const double watts = logger.mean_watts();
    fps_samples.push_back(fps);
    watt_samples.push_back(watts);
    ee_samples.push_back(fps / watts);
  }
  MeasuredPerf perf;
  perf.fps = eval::compute_stats(fps_samples);
  perf.watts = eval::compute_stats(watt_samples);
  perf.ee = eval::compute_stats(ee_samples);
  return perf;
}

MeasuredPerf measure_gpu(nn::Graph& graph, int runs, std::uint64_t noise_seed) {
  platform::GpuModel gpu;
  platform::MeasurementModel fps_meter(0.004, noise_seed);
  platform::MeasurementModel watt_meter(0.008, noise_seed + 1);
  const double true_fps = gpu.fps(graph);
  std::vector<double> fps_samples, watt_samples, ee_samples;
  for (int run = 0; run < runs; ++run) {
    const double fps = fps_meter.observe(true_fps);
    const double watts = watt_meter.observe(gpu.power_watts);
    fps_samples.push_back(fps);
    watt_samples.push_back(watts);
    ee_samples.push_back(fps / watts);
  }
  MeasuredPerf perf;
  perf.fps = eval::compute_stats(fps_samples);
  perf.watts = eval::compute_stats(watt_samples);
  perf.ee = eval::compute_stats(ee_samples);
  return perf;
}

void print_banner(const char* artifact, const char* description) {
  std::printf("\n================================================================\n");
  std::printf("SENECA reproduction — %s\n%s\n", artifact, description);
  std::printf("================================================================\n");
}

// ------------------------------------------------------------- JsonWriter

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

JsonWriter& JsonWriter::obj() {
  if (in_object_) out_ << "}";
  if (array_has_objects_) out_ << ",\n";
  out_ << "  {";
  in_object_ = true;
  object_has_fields_ = false;
  array_has_objects_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  if (object_has_fields_) out_ << ", ";
  out_ << "\"" << json_escape(k) << "\": ";
  object_has_fields_ = true;
  return *this;
}

JsonWriter& JsonWriter::field(const std::string& k, const std::string& v) {
  key(k).out_ << "\"" << json_escape(v) << "\"";
  return *this;
}
JsonWriter& JsonWriter::field(const std::string& k, const char* v) {
  return field(k, std::string(v));
}
JsonWriter& JsonWriter::field(const std::string& k, double v) {
  key(k).out_ << v;
  return *this;
}
JsonWriter& JsonWriter::field(const std::string& k, std::int64_t v) {
  key(k).out_ << v;
  return *this;
}
JsonWriter& JsonWriter::field(const std::string& k, std::uint64_t v) {
  key(k).out_ << v;
  return *this;
}
JsonWriter& JsonWriter::field(const std::string& k, int v) {
  return field(k, static_cast<std::int64_t>(v));
}
JsonWriter& JsonWriter::field(const std::string& k, bool v) {
  key(k).out_ << (v ? "true" : "false");
  return *this;
}

std::string JsonWriter::str() const {
  return "[\n" + out_.str() + (in_object_ ? "}" : "") + "\n]\n";
}

void write_json_file(const std::string& path, const std::string& json) {
  if (path.empty()) return;
  std::ofstream out(path);
  out << json;
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace seneca::bench
