// Ablation (the paper's §V future work): structured filter pruning of the
// SENECA model. Sweeps the pruning fraction and reports the throughput /
// energy-efficiency gains on the DPU against the accuracy cost — the
// trade-off the authors propose to explore next.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common.hpp"
#include "dpu/compiler.hpp"
#include "nn/unet.hpp"
#include "quant/pruning.hpp"
#include "quant/quantizer.hpp"

namespace {

using namespace seneca;

void print_table() {
  bench::print_banner("Ablation: filter pruning (paper Sec. V future work)",
                      "Prune fraction vs FPS / EE / DSC on the 1M model");
  auto art = bench::run_accuracy_workflow("1M");

  eval::Table table({"Pruned", "MACs kept", "Weights kept", "FPS (256^2)",
                     "EE [FPS/W]", "Global DSC [%] (phantom)"});
  for (const double fraction : {0.0, 0.125, 0.25, 0.375, 0.5}) {
    quant::PruneOptions popts;
    popts.fraction = fraction;
    // Accuracy: prune the trained 64x64 model, quantize, run on the DPU sim.
    quant::PruneReport report;
    const quant::FGraph pruned = quant::prune(art.folded, popts, &report);
    const quant::QGraph qg = quant::quantize(pruned, art.calibration.images);
    dpu::CompileOptions copts;
    copts.model_name = "1M-pruned";
    const dpu::XModel acc_xm = dpu::compile(qg, copts);
    const double dsc =
        core::evaluate_int8(acc_xm, art.dataset.test).global_dice();

    // Throughput: same pruning fraction applied to the full-resolution
    // graph (channel counts, not weight values, set the timing).
    auto full = nn::build_unet2d(core::unet_config(core::zoo_entry("1M"), 256));
    const quant::FGraph full_folded = quant::fold(*full);
    const quant::FGraph full_pruned = quant::prune(full_folded, popts);
    std::vector<tensor::TensorF> calib;
    tensor::TensorF img(tensor::Shape{256, 256, 1}, 0.5f);
    calib.push_back(img);
    const dpu::XModel timing = dpu::compile(quant::quantize(full_pruned, calib));
    const auto perf = bench::measure_fpga(timing, 4, 2000, 5);

    table.add_row({eval::Table::num(100.0 * fraction, 1) + " %",
                   eval::Table::num(100.0 * (1.0 - report.mac_reduction()), 1) + " %",
                   eval::Table::num(100.0 * (1.0 - report.weight_reduction()), 1) + " %",
                   eval::Table::pm(perf.fps.mean, perf.fps.stddev, 1),
                   eval::Table::pm(perf.ee.mean, perf.ee.stddev),
                   eval::Table::num(100.0 * dsc)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nStructured pruning removes whole filters, so the DPU sees fewer\n"
      "channel groups and less DDR traffic: FPS and EE rise with the pruned\n"
      "fraction while accuracy degrades gracefully until the capacity cliff\n"
      "(no fine-tuning after pruning is applied here).\n");
}

void BM_Prune1M(benchmark::State& state) {
  auto graph = nn::build_unet2d(core::unet_config(core::zoo_entry("1M"), 64));
  const quant::FGraph fg = quant::fold(*graph);
  quant::PruneOptions opts;
  opts.fraction = 0.25;
  for (auto _ : state) {
    benchmark::DoNotOptimize(quant::prune(fg, opts));
  }
}
BENCHMARK(BM_Prune1M)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
