// Figure 4: DSC x Energy-Efficiency (Eq. 7) for the five 4-thread FPGA
// configurations — the model-selection criterion that crowns the 1M model
// as SENECA.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common.hpp"

namespace {

using namespace seneca;

void print_figure() {
  bench::print_banner("Figure 4",
                      "DSC * EE for the 4-thread ZCU104 configurations");
  // Paper values derived from Table IV: DSC(frac) * EE.
  const double paper_product[] = {0.9304 * 11.81, 0.9301 * 10.27,
                                  0.9349 * 9.57, 0.9365 * 4.57,
                                  0.9384 * 3.17};
  eval::Table table({"Config", "DSC [frac]", "EE [FPS/W]", "DSC*EE (ours)",
                     "DSC*EE (paper)"});
  std::vector<double> products;
  int idx = 0;
  for (const auto& entry : core::model_zoo()) {
    const dpu::XModel xm = core::build_timing_xmodel(entry.name);
    const auto fpga = bench::measure_fpga(xm, 4, 2000, 10);
    auto art = bench::run_accuracy_workflow(entry.name);
    const double dsc = core::evaluate_int8(art.xmodel, art.dataset.test).global_dice();
    const double product = dsc * fpga.ee.mean;
    products.push_back(product);
    table.add_row({entry.name, eval::Table::num(dsc, 3),
                   eval::Table::num(fpga.ee.mean),
                   eval::Table::num(product),
                   eval::Table::num(paper_product[idx++])});
  }
  std::printf("%s", table.render().c_str());

  std::printf("\nDSC*EE (one bar per config):\n");
  idx = 0;
  for (const auto& entry : core::model_zoo()) {
    const double v = products[static_cast<std::size_t>(idx++)];
    std::printf("%-4s %6.2f %s\n", entry.name.c_str(), v,
                std::string(static_cast<std::size_t>(v * 5.0 + 0.5), '#').c_str());
  }
  const double best_vs_worst = products.front() / products.back();
  std::printf(
      "\n1M vs 16M improvement: %.2fx (paper: 3.7x). The 1M model is the\n"
      "best accuracy-efficiency trade-off and becomes SENECA (Sec. IV-C).\n",
      best_vs_worst);
}

void BM_Fig4DataPoint(benchmark::State& state) {
  const dpu::XModel xm = core::build_timing_xmodel("1M");
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::measure_fpga(xm, 4, 500, 3));
  }
}
BENCHMARK(BM_Fig4DataPoint)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
