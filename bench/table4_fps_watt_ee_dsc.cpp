// Table IV: FPS, Watt, energy efficiency, and DSC for the FP32 model (RTX
// 2060 Mobile) vs the INT8 model (ZCU104, 4 threads), across all five
// configurations — mean +/- std of 10 runs.
//
// Performance/energy rows run the full 256x256 pipeline through the
// calibrated timing models; DSC rows come from the accuracy workflow
// (64x64 phantom, cached after the first run — expect several minutes of
// one-time training when the cache is cold).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common.hpp"
#include "nn/unet.hpp"

namespace {

using namespace seneca;

struct PaperRow {
  double fps32, fps8, w32, w8, ee32, ee8, dsc32, dsc8;
};

// Table IV reference values.
const PaperRow kPaper[] = {
    {72.20, 335.40, 78.01, 28.40, 0.93, 11.81, 92.98, 93.04},
    {77.45, 254.87, 77.63, 24.82, 1.00, 10.27, 92.98, 93.01},
    {65.90, 273.17, 77.94, 28.54, 0.85, 9.57, 93.41, 93.49},
    {52.22, 127.91, 77.56, 28.00, 0.67, 4.57, 93.53, 93.65},
    {37.23, 98.12, 77.99, 30.98, 0.48, 3.17, 93.76, 93.84},
};

void print_table() {
  bench::print_banner(
      "Table IV",
      "FP32 (GPU) vs INT8 (ZCU104, 4 threads): FPS / Watt / EE / DSC");
  eval::Table table({"Config", "Metric", "FP32 (ours)", "FP32 (paper)",
                     "INT8 (ours)", "INT8 (paper)"});
  int idx = 0;
  for (const auto& entry : core::model_zoo()) {
    const PaperRow& paper = kPaper[idx++];
    // Performance at full resolution.
    const dpu::XModel xm = core::build_timing_xmodel(entry.name);
    const auto fpga = bench::measure_fpga(xm, 4, 2000, 10,
                                          static_cast<std::uint64_t>(idx));
    auto gpu_graph = nn::build_unet2d(core::unet_config(entry, 256));
    const auto gpu = bench::measure_gpu(*gpu_graph, 10,
                                        static_cast<std::uint64_t>(idx) + 50);
    // Accuracy at bench scale (cached training).
    auto art = bench::run_accuracy_workflow(entry.name);
    auto ev32 = core::evaluate_fp32(*art.fp32, art.dataset.test);
    auto ev8 = core::evaluate_int8(art.xmodel, art.dataset.test);

    table.add_row({entry.name, "FPS",
                   eval::Table::pm(gpu.fps.mean, gpu.fps.stddev),
                   eval::Table::num(paper.fps32),
                   eval::Table::pm(fpga.fps.mean, fpga.fps.stddev),
                   eval::Table::num(paper.fps8)});
    table.add_row({"", "Watt",
                   eval::Table::pm(gpu.watts.mean, gpu.watts.stddev),
                   eval::Table::num(paper.w32),
                   eval::Table::pm(fpga.watts.mean, fpga.watts.stddev),
                   eval::Table::num(paper.w8)});
    table.add_row({"", "EE [FPS/W]",
                   eval::Table::pm(gpu.ee.mean, gpu.ee.stddev),
                   eval::Table::num(paper.ee32),
                   eval::Table::pm(fpga.ee.mean, fpga.ee.stddev),
                   eval::Table::num(paper.ee8)});
    table.add_row({"", "DSC [%] (phantom)",
                   eval::Table::num(100.0 * ev32.global_dice()),
                   eval::Table::num(paper.dsc32),
                   eval::Table::num(100.0 * ev8.global_dice()),
                   eval::Table::num(paper.dsc8)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nShapes to check against the paper: INT8 always beats FP32 on FPS and\n"
      "EE; FPS falls with model size; power is flat on the GPU and ~25-31 W\n"
      "on the board; INT8 DSC tracks FP32 within measurement spread.\n"
      "(Absolute DSC differs from the paper: synthetic phantom at reduced\n"
      "training scale — see EXPERIMENTS.md.)\n");
}

void BM_FpgaMeasurement(benchmark::State& state) {
  const dpu::XModel xm = core::build_timing_xmodel("1M");
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::measure_fpga(xm, 4, 2000, 10));
  }
}
BENCHMARK(BM_FpgaMeasurement)->Unit(benchmark::kMillisecond);

void BM_Int8InferenceHost64(benchmark::State& state) {
  // Host-side cost of the bit-exact functional DPU simulation (one 64x64
  // slice through the 1M model).
  auto art = bench::run_accuracy_workflow("1M");
  dpu::DpuCoreSim core(&art.xmodel);
  const auto input = quant::quantize_input(art.qgraph,
                                           art.dataset.test[0].sample.image);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core.run(input));
  }
}
BENCHMARK(BM_Int8InferenceHost64)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
