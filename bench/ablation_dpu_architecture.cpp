// Ablation (design-space): how the DPU microarchitecture configuration
// (B512 / B1024 / B4096 — the soft-DSA's configurability the paper credits
// in Sec. II) moves throughput, utilization, and energy efficiency for the
// smallest and largest SENECA models.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common.hpp"
#include "dpu/compiler.hpp"

namespace {

using namespace seneca;

void print_table() {
  bench::print_banner("Ablation: DPU architecture sweep",
                      "B512 vs B1024 vs B4096 (4 threads, 2000 images)");
  eval::Table table({"Model", "Arch", "Peak TOPS", "FPS", "Watt", "EE [FPS/W]",
                     "Array util"});
  for (const char* model : {"1M", "16M"}) {
    for (const dpu::DpuArch& arch :
         {dpu::DpuArch::b512(), dpu::DpuArch::b1024(), dpu::DpuArch::b4096()}) {
      const dpu::XModel xm = core::build_timing_xmodel(model, arch);
      const auto perf = bench::measure_fpga(xm, 4, 2000, 10);
      table.add_row({model, arch.name, eval::Table::num(arch.peak_tops(), 2),
                     eval::Table::pm(perf.fps.mean, perf.fps.stddev),
                     eval::Table::pm(perf.watts.mean, perf.watts.stddev),
                     eval::Table::pm(perf.ee.mean, perf.ee.stddev),
                     eval::Table::num(100.0 * xm.compute_utilization(), 1) + " %"});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nSmall models underutilize the wide B4096 array (lane quantization:\n"
      "few channels per 16-lane group), so the architecture gain from B512\n"
      "to B4096 is far below the 8x peak-TOPS ratio for the 1M network but\n"
      "approaches it for the dense 16M network.\n");
}

void BM_CompileXmodel(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_timing_xmodel("1M"));
  }
}
BENCHMARK(BM_CompileXmodel)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
