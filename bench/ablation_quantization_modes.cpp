// Ablation (§III-D): quantization procedure comparison — PTQ vs FFQ
// (AdaQuant-style fast finetuning) vs QAT vs the FP32 reference. The paper
// reports that FFQ and QAT brought no improvement over PTQ for these
// models; this bench regenerates that comparison on the phantom.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common.hpp"
#include "dpu/compiler.hpp"
#include "quant/qat.hpp"

namespace {

using namespace seneca;

void print_table() {
  bench::print_banner("Ablation: quantization modes",
                      "PTQ vs FFQ vs QAT vs FP32 (1M model)");
  auto art = bench::run_accuracy_workflow("1M");

  auto eval_qgraph = [&](const quant::QGraph& qg) {
    dpu::CompileOptions copts;
    copts.model_name = "1M";
    return core::evaluate_int8(dpu::compile(qg, copts), art.dataset.test);
  };

  eval::Table table({"Mode", "Global DSC [%]", "Liver", "Bladder", "Lungs",
                     "Kidneys", "Bones"});
  auto add_row = [&](const char* name, eval::SegmentationEvaluator ev) {
    const auto d = ev.dice_per_class();
    table.add_row({name, eval::Table::num(100.0 * ev.global_dice()),
                   eval::Table::num(100.0 * d[1]), eval::Table::num(100.0 * d[2]),
                   eval::Table::num(100.0 * d[3]), eval::Table::num(100.0 * d[4]),
                   eval::Table::num(100.0 * d[5])});
  };

  add_row("FP32 reference", core::evaluate_fp32(*art.fp32, art.dataset.test));

  // PTQ (as shipped by the workflow).
  add_row("PTQ", core::evaluate_int8(art.xmodel, art.dataset.test));

  // FFQ: layer-wise local adjustment on the same calibration set.
  quant::QuantizeOptions ffq_opts;
  ffq_opts.mode = quant::QuantMode::kFFQ;
  add_row("FFQ (AdaQuant)",
          eval_qgraph(quant::quantize(art.folded, art.calibration.images, ffq_opts)));

  // QAT: short fake-quant finetuning on the labelled training set, then PTQ.
  {
    auto train_samples = art.dataset.train_samples();
    // Reuse the SENECA loss for the finetuning epochs.
    const auto freq = data::organ_frequencies(art.dataset.train);
    std::vector<double> class_freq(static_cast<std::size_t>(data::kNumClasses));
    for (std::size_t c = 1; c < class_freq.size(); ++c) class_freq[c] = freq[c] / 100.0;
    class_freq[0] = 12.0;
    auto loss = nn::make_seneca_loss(class_freq);
    quant::QatOptions qopts;
    qopts.epochs = 2;
    quant::qat_finetune(*art.fp32, *loss, train_samples, qopts);
    quant::FGraph folded = quant::fold(*art.fp32);
    add_row("QAT (2 epochs) + PTQ",
            eval_qgraph(quant::quantize(folded, art.calibration.images)));
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nExpected shape (Sec. III-D): PTQ already matches FP32 within noise;\n"
      "FFQ and QAT add cost without a global-DSC gain, which is why SENECA\n"
      "ships with plain PTQ.\n");
}

void BM_PtqQuantize(benchmark::State& state) {
  auto art = bench::run_accuracy_workflow("1M");
  for (auto _ : state) {
    benchmark::DoNotOptimize(quant::quantize(art.folded, art.calibration.images));
  }
}
BENCHMARK(BM_PtqQuantize)->Unit(benchmark::kMillisecond)->Iterations(2);

void BM_FfqQuantize(benchmark::State& state) {
  auto art = bench::run_accuracy_workflow("1M");
  quant::QuantizeOptions opts;
  opts.mode = quant::QuantMode::kFFQ;
  for (auto _ : state) {
    benchmark::DoNotOptimize(quant::quantize(art.folded, art.calibration.images, opts));
  }
}
BENCHMARK(BM_FfqQuantize)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
