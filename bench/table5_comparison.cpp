// Table V: SENECA (best model, INT8 on the ZCU104 with 4 threads) vs its
// FP32 GPU counterpart vs the CT-ORG 3D U-Net baseline [17].
//
// The 3D baseline is trained here from scratch on phantom *volumes* with an
// unweighted Dice loss (the CT-ORG recipe has no class weighting), which is
// the mechanism behind its poor small-organ DSC and high per-case variance.
// Also reports SENECA's global TPR/TNR (Sec. IV-D).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <map>

#include "common.hpp"
#include "nn/unet.hpp"

namespace {

using namespace seneca;

// ------------------------------------------------------ 3D baseline ------

struct VolumeSample {
  nn::Sample sample;  // DHWC image + DHW labels
  int patient_id;
};

/// Stacks preprocessed phantom slices into 3D training volumes.
std::vector<VolumeSample> build_volumes(int num, std::int64_t d,
                                        std::int64_t s, std::uint64_t seed) {
  data::PhantomConfig pcfg;
  pcfg.resolution = s;
  pcfg.slices_per_volume = static_cast<int>(d);
  data::PhantomGenerator gen(pcfg, seed);
  std::vector<VolumeSample> out;
  for (int p = 0; p < num; ++p) {
    const data::PhantomVolume vol = gen.generate_volume(p);
    VolumeSample v;
    v.patient_id = p;
    v.sample.image = tensor::TensorF(tensor::Shape{d, s, s, 1});
    v.sample.labels = nn::LabelMap(tensor::Shape{d, s, s});
    for (std::int64_t z = 0; z < d; ++z) {
      const nn::Sample slice = data::preprocess_slice(vol.slices[static_cast<std::size_t>(z)]);
      std::copy(slice.image.begin(), slice.image.end(),
                v.sample.image.begin() + z * s * s);
      std::copy(slice.labels.begin(), slice.labels.end(),
                v.sample.labels.begin() + z * s * s);
    }
    out.push_back(std::move(v));
  }
  return out;
}

struct OrganStats {
  eval::RunStats per_organ[6];
  double global_dice = 0.0;
};

/// Per-organ DSC mean +/- std across cases from per-case sample lists.
OrganStats organ_stats(const std::vector<std::vector<double>>& samples,
                       double global) {
  OrganStats st;
  for (std::int64_t c = 1; c < 6; ++c) {
    st.per_organ[c] = eval::compute_stats(samples[static_cast<std::size_t>(c)]);
  }
  st.global_dice = global;
  return st;
}

void print_table() {
  bench::print_banner("Table V",
                      "SENECA (FPGA) vs GPU counterpart vs CT-ORG 3D U-Net");

  // --- SENECA best model (deep-training profile). ---
  auto art = bench::run_accuracy_workflow("1M", /*best_profile=*/true);
  const dpu::XModel timing = core::build_timing_xmodel("1M");
  const auto fpga_perf = bench::measure_fpga(timing, 4, 2000, 10);
  auto gpu_graph = nn::build_unet2d(core::unet_config(core::zoo_entry("1M"), 256));
  const auto gpu_perf = bench::measure_gpu(*gpu_graph);

  auto ev8 = core::evaluate_int8(art.xmodel, art.dataset.test);
  auto ev32 = core::evaluate_fp32(*art.fp32, art.dataset.test);
  const auto int8_cases = core::per_case_organ_dice_int8(art.xmodel, art.dataset.test);
  const OrganStats seneca_stats = organ_stats(int8_cases, ev8.global_dice());

  // FP32 per-case stats.
  std::map<int, eval::SegmentationEvaluator> fp32_cases;
  for (const auto& rec : art.dataset.test) {
    auto [it, ins] = fp32_cases.try_emplace(rec.patient_id,
                                            eval::SegmentationEvaluator(6));
    it->second.add(core::predict_fp32(*art.fp32, rec.sample.image), rec.sample.labels);
  }
  std::vector<std::vector<double>> fp32_samples(6);
  for (auto& [p, ev] : fp32_cases) {
    for (std::int64_t c = 1; c < 6; ++c) {
      if (ev.counts(c).tp + ev.counts(c).fn == 0) continue;
      fp32_samples[static_cast<std::size_t>(c)].push_back(ev.counts(c).dice());
    }
  }
  const OrganStats gpu_stats = organ_stats(fp32_samples, ev32.global_dice());

  // --- 3D U-Net baseline (unweighted Dice, trained on volumes). ---
  std::printf("training CT-ORG-style 3D U-Net baseline (unweighted Dice)...\n");
  const std::int64_t D = 16, S = 32;
  auto volumes = build_volumes(18, D, S, 777);
  std::vector<nn::Sample> train3d;
  std::vector<VolumeSample> test3d;
  for (std::size_t i = 0; i < volumes.size(); ++i) {
    if (i < 12) {
      train3d.push_back(volumes[i].sample);
    } else {
      test3d.push_back(volumes[i]);
    }
  }
  nn::UNet3DConfig cfg3d;
  cfg3d.depth_vox = D;
  cfg3d.input_size = S;
  cfg3d.depth = 2;
  cfg3d.base_filters = 8;
  auto net3d = nn::build_unet3d(cfg3d);
  const std::filesystem::path cache = "artifacts/ctorg3d_baseline.weights";
  std::filesystem::create_directories("artifacts");
  if (std::filesystem::exists(cache)) {
    net3d->load_weights(cache);
  } else {
    nn::DiceLoss dice;
    nn::TrainOptions topts;
    topts.epochs = 16;
    topts.learning_rate = 2e-3f;
    topts.lr_decay = 0.93f;
    nn::train(*net3d, dice, train3d, topts);
    net3d->save_weights(cache);
  }
  eval::SegmentationEvaluator ev3d(6);
  std::vector<std::vector<double>> samples3d(6);
  for (const auto& v : test3d) {
    eval::SegmentationEvaluator case_ev(6);
    const auto pred = nn::predict_labels(net3d->forward(v.sample.image, false));
    case_ev.add(pred, v.sample.labels);
    ev3d.add(pred, v.sample.labels);
    for (std::int64_t c = 1; c < 6; ++c) {
      if (case_ev.counts(c).tp + case_ev.counts(c).fn == 0) continue;
      samples3d[static_cast<std::size_t>(c)].push_back(case_ev.counts(c).dice());
    }
  }
  const OrganStats ctorg_stats = organ_stats(samples3d, ev3d.global_dice());

  // 3D U-Net throughput on the GPU model: per-volume latency at an
  // inference-scale graph, FPS = slices/volume / latency, on 4 GPUs as in
  // [17] (model unspecified there; we reuse the RTX 2060 Mobile model).
  // [17]'s 3D U-Net runs at clinical scale; size the timing graph
  // accordingly (depth-3, base-16, 32x256x256 tiles).
  nn::UNet3DConfig infer3d;
  infer3d.depth = 3;
  infer3d.base_filters = 16;
  infer3d.input_size = 256;
  infer3d.depth_vox = 32;
  auto net3d_infer = nn::build_unet3d(infer3d);
  platform::GpuModel gpu_model;
  const double vol_seconds = gpu_model.inference_seconds(*net3d_infer);
  const double fps3d_4gpu = 4.0 * static_cast<double>(infer3d.depth_vox) / vol_seconds;

  // --- The table. ---
  eval::Table table({"Metric", "FPGA (SENECA)", "GPU (FP32)", "CT-ORG 3D U-Net",
                     "Paper FPGA", "Paper GPU", "Paper CT-ORG"});
  table.add_row({"FPS", eval::Table::pm(fpga_perf.fps.mean, fpga_perf.fps.stddev),
                 eval::Table::pm(gpu_perf.fps.mean, gpu_perf.fps.stddev),
                 eval::Table::num(fps3d_4gpu, 1) + " (4 GPUs)",
                 "335.4 +/- 0.34", "72.20 +/- 0.47", "[17-197]"});
  table.add_row({"Energy Efficiency",
                 eval::Table::pm(fpga_perf.ee.mean, fpga_perf.ee.stddev),
                 eval::Table::pm(gpu_perf.ee.mean, gpu_perf.ee.stddev), "n/a",
                 "11.81 +/- 0.02", "0.93 +/- 0.01", "n/a"});
  table.add_row({"Global DSC [%]",
                 eval::Table::num(100.0 * seneca_stats.global_dice),
                 eval::Table::num(100.0 * gpu_stats.global_dice),
                 eval::Table::num(100.0 * ctorg_stats.global_dice),
                 "93.04 +/- 0.07", "92.98 +/- 0.16", "88.17 +/- 5.16"});
  const char* organ_names[] = {"", "Liver DSC", "Bladder DSC", "Lungs DSC",
                               "Kidneys DSC", "Bones DSC"};
  const char* paper_fpga[] = {"", "91.63", "79.21", "96.16", "81.3", "94.35"};
  const char* paper_gpu[] = {"", "91.01", "83.25", "95.93", "82.02", "94.64"};
  const char* paper_ctorg[] = {"", "92.0 +/- 3.6", "58.1 +/- 22.3",
                               "93.8 +/- 5.9", "88.2 +/- 7.9", "82.7 +/- 7.6"};
  for (std::int64_t c = 1; c < 6; ++c) {
    table.add_row({organ_names[c],
                   eval::Table::pm(100.0 * seneca_stats.per_organ[c].mean,
                                   100.0 * seneca_stats.per_organ[c].stddev, 1),
                   eval::Table::pm(100.0 * gpu_stats.per_organ[c].mean,
                                   100.0 * gpu_stats.per_organ[c].stddev, 1),
                   eval::Table::pm(100.0 * ctorg_stats.per_organ[c].mean,
                                   100.0 * ctorg_stats.per_organ[c].stddev, 1),
                   paper_fpga[c], paper_gpu[c], paper_ctorg[c]});
  }
  std::printf("%s", table.render().c_str());

  std::printf("\nSENECA global TPR %.2f %% / TNR %.2f %% (paper: 93.06 / 99.75)\n",
              100.0 * ev8.global_tpr(), 100.0 * ev8.global_tnr());
  std::printf("FPS speedup FPGA/GPU: %.2fx (paper 4.65x); EE ratio %.1fx (paper 12.7x)\n",
              fpga_perf.fps.mean / gpu_perf.fps.mean,
              fpga_perf.ee.mean / gpu_perf.ee.mean);
  std::printf(
      "Shape check vs [17]: the unweighted-Dice 3D baseline shows larger\n"
      "per-case std and a weak bladder, while SENECA's weighted loss keeps\n"
      "small organs competitive with low variance.\n");
}

void BM_Unet3DForward(benchmark::State& state) {
  nn::UNet3DConfig cfg;
  cfg.depth_vox = 8;
  cfg.input_size = 16;
  cfg.depth = 2;
  cfg.base_filters = 4;
  auto net = nn::build_unet3d(cfg);
  tensor::TensorF x(tensor::Shape{8, 16, 16, 1}, 0.1f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net->forward(x));
  }
}
BENCHMARK(BM_Unet3DForward)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
