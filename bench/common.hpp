#pragma once
// Shared bench-harness helpers: standardized experiment scales, cached
// workflow artifacts, and the measurement wrappers that turn deterministic
// simulator outputs into paper-style "mean +/- std over 10 runs" rows via
// the instrumentation-noise model.
//
// Scale note (see DESIGN.md): performance/energy rows always run the full
// 256x256 pipeline through the timing models; accuracy rows train on the
// phantom at 64x64 with per-config epoch budgets sized for a single-core
// host. Trained weights are cached under artifacts/, so only the first
// bench invocation pays the training cost.

#include <cstdint>
#include <sstream>
#include <string>

#include "core/evaluate.hpp"
#include "core/model_zoo.hpp"
#include "core/workflow.hpp"
#include "eval/stats.hpp"
#include "eval/table.hpp"
#include "platform/gpu_model.hpp"
#include "platform/power.hpp"
#include "runtime/soc_sim.hpp"

namespace seneca::bench {

/// Accuracy-experiment workflow config for a zoo model. The "best model"
/// (1M) gets the deep-training profile used by Table V / Figs. 5-6; the
/// sweep profile covers all five configs for Table IV.
core::WorkflowConfig accuracy_config(const std::string& model_name,
                                     bool best_profile = false);

/// Runs (or loads from cache) the accuracy workflow for a model.
core::WorkflowArtifacts run_accuracy_workflow(const std::string& model_name,
                                              bool best_profile = false);

/// One paper-style FPGA measurement: FPS / Watt / FPS-per-Watt as
/// mean +/- std over `runs` repetitions (Table IV protocol: 2000 images,
/// 10 runs), including meter/timer noise.
struct MeasuredPerf {
  eval::RunStats fps;
  eval::RunStats watts;
  eval::RunStats ee;
};

MeasuredPerf measure_fpga(const dpu::XModel& xmodel, int threads,
                          int images = 2000, int runs = 10,
                          std::uint64_t noise_seed = 1);

/// GPU counterpart (constant power model, FPS from the analytic executor).
MeasuredPerf measure_gpu(nn::Graph& graph, int runs = 10,
                         std::uint64_t noise_seed = 2);

/// Standard banner so every bench identifies its paper artifact.
void print_banner(const char* artifact, const char* description);

/// Shared emitter for the benches' --json artifacts: a JSON array of flat
/// objects, built field by field. Replaces the per-bench ad-hoc ofstream
/// blocks so key quoting, escaping, and comma placement live in one place.
///
///   JsonWriter j;
///   j.obj().field("model", "4M").field("fps", 123.4).field("ok", true);
///   j.obj().field("model", "2M").field("fps", 456.7).field("ok", false);
///   write_json_file(path, j.str());
class JsonWriter {
 public:
  /// Starts the next object in the array. Fields attach to the most
  /// recently started object.
  JsonWriter& obj();
  JsonWriter& field(const std::string& key, const std::string& value);
  JsonWriter& field(const std::string& key, const char* value);
  JsonWriter& field(const std::string& key, double value);
  JsonWriter& field(const std::string& key, std::int64_t value);
  JsonWriter& field(const std::string& key, std::uint64_t value);
  JsonWriter& field(const std::string& key, int value);
  JsonWriter& field(const std::string& key, bool value);

  /// Renders the complete array (always valid JSON, "[]" when empty).
  std::string str() const;

 private:
  JsonWriter& key(const std::string& k);

  std::ostringstream out_;
  bool in_object_ = false;
  bool object_has_fields_ = false;
  bool array_has_objects_ = false;
};

/// Writes pre-rendered JSON to `path` and prints "wrote <path>" (the
/// convention CI artifact steps grep for). No-op when `path` is empty, so
/// callers can pass --json through unconditionally.
void write_json_file(const std::string& path, const std::string& json);

}  // namespace seneca::bench
