#pragma once
// Shared bench-harness helpers: standardized experiment scales, cached
// workflow artifacts, and the measurement wrappers that turn deterministic
// simulator outputs into paper-style "mean +/- std over 10 runs" rows via
// the instrumentation-noise model.
//
// Scale note (see DESIGN.md): performance/energy rows always run the full
// 256x256 pipeline through the timing models; accuracy rows train on the
// phantom at 64x64 with per-config epoch budgets sized for a single-core
// host. Trained weights are cached under artifacts/, so only the first
// bench invocation pays the training cost.

#include <string>

#include "core/evaluate.hpp"
#include "core/model_zoo.hpp"
#include "core/workflow.hpp"
#include "eval/stats.hpp"
#include "eval/table.hpp"
#include "platform/gpu_model.hpp"
#include "platform/power.hpp"
#include "runtime/soc_sim.hpp"

namespace seneca::bench {

/// Accuracy-experiment workflow config for a zoo model. The "best model"
/// (1M) gets the deep-training profile used by Table V / Figs. 5-6; the
/// sweep profile covers all five configs for Table IV.
core::WorkflowConfig accuracy_config(const std::string& model_name,
                                     bool best_profile = false);

/// Runs (or loads from cache) the accuracy workflow for a model.
core::WorkflowArtifacts run_accuracy_workflow(const std::string& model_name,
                                              bool best_profile = false);

/// One paper-style FPGA measurement: FPS / Watt / FPS-per-Watt as
/// mean +/- std over `runs` repetitions (Table IV protocol: 2000 images,
/// 10 runs), including meter/timer noise.
struct MeasuredPerf {
  eval::RunStats fps;
  eval::RunStats watts;
  eval::RunStats ee;
};

MeasuredPerf measure_fpga(const dpu::XModel& xmodel, int threads,
                          int images = 2000, int runs = 10,
                          std::uint64_t noise_seed = 1);

/// GPU counterpart (constant power model, FPS from the analytic executor).
MeasuredPerf measure_gpu(nn::Graph& graph, int runs = 10,
                         std::uint64_t noise_seed = 2);

/// Standard banner so every bench identifies its paper artifact.
void print_banner(const char* artifact, const char* description);

}  // namespace seneca::bench
