// Figure 5: visual comparison — for sample CT slices, writes the input
// slice, the ground-truth segmentation, the INT8 SENECA output, and the
// FP32 output as PGM/PPM images (liver red, bladder green, lungs blue,
// kidneys yellow, bones white), under bench_outputs/fig5/.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>

#include "common.hpp"
#include "tensor/image_io.hpp"

namespace {

using namespace seneca;

void print_figure() {
  bench::print_banner("Figure 5",
                      "Visual segmentations: input / ground truth / INT8 / FP32");
  auto art = bench::run_accuracy_workflow("1M", /*best_profile=*/true);
  dpu::DpuCoreSim core(&art.xmodel);
  const std::filesystem::path dir = "bench_outputs/fig5";
  std::filesystem::create_directories(dir);

  // Pick test slices covering different organ groups: chest, upper
  // abdomen, pelvis.
  std::vector<std::size_t> picks;
  auto pick_near = [&](double z_target) {
    std::size_t best = 0;
    double best_d = 1e9;
    for (std::size_t i = 0; i < art.dataset.test.size(); ++i) {
      const double d = std::fabs(art.dataset.test[i].z - z_target);
      if (d < best_d) {
        best_d = d;
        best = i;
      }
    }
    picks.push_back(best);
  };
  pick_near(0.30);  // lungs + bones
  pick_near(0.50);  // liver
  pick_near(0.65);  // kidneys
  pick_near(0.85);  // bladder + pelvis

  int row = 0;
  for (std::size_t idx : picks) {
    const auto& rec = art.dataset.test[idx];
    const auto p8 = core::predict_int8(core, rec.sample.image);
    const auto p32 = core::predict_fp32(*art.fp32, rec.sample.image);
    char name[128];
    std::snprintf(name, sizeof name, "row%d_z%.2f", row, rec.z);
    tensor::write_pgm(dir / (std::string(name) + "_input.pgm"), rec.sample.image);
    tensor::write_ppm(dir / (std::string(name) + "_truth.ppm"),
                      tensor::render_segmentation(rec.sample.image, rec.sample.labels));
    tensor::write_ppm(dir / (std::string(name) + "_int8.ppm"),
                      tensor::render_segmentation(rec.sample.image, p8));
    tensor::write_ppm(dir / (std::string(name) + "_fp32.ppm"),
                      tensor::render_segmentation(rec.sample.image, p32));
    // pixel agreement between the two deployments for this slice
    std::int64_t agree = 0;
    for (std::int64_t i = 0; i < p8.numel(); ++i) agree += (p8[i] == p32[i]);
    std::printf("  %s: INT8/FP32 pixel agreement %.2f %%\n", name,
                100.0 * static_cast<double>(agree) / static_cast<double>(p8.numel()));
    ++row;
  }
  std::printf("\nwrote %d slice rows (input/truth/int8/fp32) to %s\n", row,
              dir.string().c_str());
  std::printf("colors: liver red, bladder green, lungs blue, kidneys yellow, bones white\n");
}

void BM_RenderSegmentationOverlay(benchmark::State& state) {
  tensor::TensorF ct(tensor::Shape{256, 256, 1}, 0.f);
  tensor::Tensor<std::int32_t> labels(tensor::Shape{256, 256}, 0);
  for (std::int64_t i = 0; i < labels.numel(); i += 7) labels[i] = 1 + (i % 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::render_segmentation(ct, labels));
  }
}
BENCHMARK(BM_RenderSegmentationOverlay)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
