// Table II: layers, filters and parameter totals of the five SENECA model
// configurations. Our standard two-conv-per-stack U-Net matches the paper's
// parameter RATIOS exactly (1 : 2.25 : 4 : 7.56 : 16); the uniform absolute
// offset is discussed in EXPERIMENTS.md.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common.hpp"
#include "nn/unet.hpp"

namespace {

using namespace seneca;

void print_table() {
  bench::print_banner("Table II",
                      "Layers, filters and parameters of the model family");
  eval::Table table({"Config", "Layers", "Filters", "Paper params [x10^6]",
                     "Ours [x10^6]", "Ours ratio", "Paper ratio"});
  double base_ours = 0.0;
  const double base_paper = core::model_zoo()[0].paper_params_millions;
  for (const auto& entry : core::model_zoo()) {
    auto graph = nn::build_unet2d(core::unet_config(entry, 64));
    const double params = static_cast<double>(graph->num_parameters()) / 1e6;
    if (base_ours == 0.0) base_ours = params;
    table.add_row({entry.name, std::to_string(2 * entry.depth + 1),
                   std::to_string(entry.base_filters),
                   eval::Table::num(entry.paper_params_millions, 3),
                   eval::Table::num(params, 3),
                   eval::Table::num(params / base_ours),
                   eval::Table::num(entry.paper_params_millions / base_paper)});
  }
  std::printf("%s", table.render().c_str());
}

void BM_BuildUNet(benchmark::State& state) {
  const auto& entry = core::model_zoo()[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::build_unet2d(core::unet_config(entry, 64)));
  }
  state.SetLabel(entry.name);
}
BENCHMARK(BM_BuildUNet)->Arg(0)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_ForwardPass64(benchmark::State& state) {
  const auto& entry = core::model_zoo()[static_cast<std::size_t>(state.range(0))];
  auto graph = nn::build_unet2d(core::unet_config(entry, 64));
  tensor::TensorF x(tensor::Shape{64, 64, 1}, 0.25f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph->forward(x));
  }
  state.SetLabel(entry.name);
}
BENCHMARK(BM_ForwardPass64)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
