// SENECA-Wire gate bench: proves the distributed serving tier keeps the
// in-process cluster's throughput and its fault story once real processes
// and real sockets sit between the router and the boards.
//
// Three acts, same ladder ("4M","2M" at --input resolution) everywhere:
//   inproc — N-board in-process ClusterRouter (BoardSims), closed-loop
//            episode: the simulated-FPS baseline;
//   wire   — the same fleet as N seneca_boardd worker processes on
//            loopback TCP, spawned by a Supervisor and routed to through
//            RemoteBoards; the gate is
//              wire sim-FPS >= --min-ratio x inproc sim-FPS;
//   chaos  — on the live wire fleet: SIGKILL one worker mid-traffic.
//            Every future must resolve, no kMigrated/kExpired may leak to
//            clients, the cluster must report zero expired, and the
//            supervisor must restart the dead worker (bounded wait).
//
// Simulated FPS is DES-priced board time (the ZCU104s under simulation),
// so the ratio measures what the wire costs the serving pipeline —
// batching opportunity, pacing — not host scheduling noise.
//
//   ./cluster_wire [--boards 4] [--clients 6] [--requests 240]
//                  [--input 32] [--workers 2] [--min-ratio 0.8]
//                  [--json cluster_wire.json] [--strict]
//
// --strict exits nonzero unless the ratio gate AND every chaos invariant
// hold. SENECA_BOARDD_PATH is injected by CMake from the build tree.

#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "core/workflow.hpp"
#include "eval/table.hpp"
#include "serve/cluster/router.hpp"
#include "serve/net/supervisor.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

using namespace seneca;
using serve::cluster::ClusterConfig;
using serve::cluster::ClusterRouter;
using serve::net::Supervisor;
using serve::net::SupervisorConfig;
using serve::net::WorkerSpec;

constexpr const char* kLadder[] = {"4M", "2M"};

/// Mirrors seneca_boardd's server config so the in-process baseline and the
/// worker processes run identical queue/batcher/degrade policies.
serve::ServerConfig boardd_server_config(std::size_t capacity) {
  serve::ServerConfig cfg;
  cfg.queue.capacity = capacity;
  cfg.batcher.max_batch_size = 4;
  cfg.batcher.max_wait_ms = 15.0;
  cfg.batcher.interactive_max_wait_ms = 0.0;
  cfg.batcher.interactive_max_batch_size = 1;
  cfg.degrade.queue_depth_high = 6;
  cfg.degrade.queue_depth_low = 2;
  cfg.degrade.min_dwell_ms = 25.0;
  return cfg;
}

ClusterConfig cluster_config() {
  ClusterConfig cfg;
  cfg.policy = serve::cluster::PolicyKind::kJoinShortestQueue;
  cfg.migrate.enable = true;
  cfg.migrate.monitor_interval_ms = 5.0;
  return cfg;
}

struct EpisodeResult {
  int ok = 0;
  int rejected = 0;
  int errors = 0;
  int leaked = 0;  // kMigrated or kExpired seen by a client: must stay 0
  double wall_s = 0.0;
};

/// Closed loop: `clients` threads share `requests` submissions (3:1
/// interactive:batch, all deadline-free so nothing can legitimately
/// expire), each pacing on its own previous future.
EpisodeResult run_episode(ClusterRouter& router, int clients, int requests,
                          std::int64_t input) {
  std::atomic<int> next{0};
  std::mutex result_mutex;
  EpisodeResult out;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> fleet;
  fleet.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    fleet.emplace_back([&, c] {
      util::Rng rng(static_cast<std::uint64_t>(c) + 1);
      tensor::TensorI8 in(tensor::Shape{input, input, 1});
      for (auto& v : in) {
        v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
      }
      for (;;) {
        const int i = next.fetch_add(1);
        if (i >= requests) return;
        const serve::Priority lane = i % 4 == 3
                                         ? serve::Priority::kBatch
                                         : serve::Priority::kInteractive;
        const serve::Response r = router.submit(lane, in, 0.0).get();
        std::lock_guard lock(result_mutex);
        switch (r.status) {
          case serve::Status::kOk: ++out.ok; break;
          case serve::Status::kRejected: ++out.rejected; break;
          case serve::Status::kMigrated:
          case serve::Status::kExpired: ++out.leaked; break;
          default: ++out.errors; break;
        }
      }
    });
  }
  for (auto& t : fleet) t.join();
  out.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

bool wait_until(double timeout_ms, const std::function<bool()>& pred) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double, std::milli>(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return pred();
}

}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  const int boards = static_cast<int>(cli.get_int("boards", 4));
  const int clients = static_cast<int>(cli.get_int("clients", 6));
  const int requests = static_cast<int>(cli.get_int("requests", 240));
  const std::int64_t input = cli.get_int("input", 32);
  const int workers = static_cast<int>(cli.get_int("workers", 2));
  const double min_ratio = cli.get_double("min-ratio", 0.8);
  const std::string json_path = cli.get("json", "");
  const bool strict = cli.get_bool("strict", false);

  bench::print_banner(
      "cluster_wire",
      "Distributed serving gate: loopback-TCP boardd fleet vs the "
      "in-process cluster, plus SIGKILL/restart/migration under load.");

  // ---- act 1: in-process baseline -------------------------------------
  std::printf("building ladder:");
  std::vector<serve::ModelSpec> ladder;
  for (const char* name : kLadder) {
    std::printf(" %s", name);
    std::fflush(stdout);
    ladder.push_back(
        {name, core::build_timing_xmodel(name, dpu::DpuArch::b4096(), input),
         workers});
  }
  std::printf(" done\n");

  EpisodeResult inproc;
  serve::cluster::ClusterSnapshot inproc_snap;
  {
    ClusterRouter router(
        serve::cluster::replicate_ladder(
            ladder, boards,
            boardd_server_config(/*capacity=*/32)),
        cluster_config());
    inproc = run_episode(router, clients, requests, input);
    inproc_snap = router.snapshot();
    router.shutdown();
  }
  std::printf("inproc: %d boards, %.1f sim-FPS, %d/%d ok (%.2f s wall)\n",
              boards, inproc_snap.simulated_fps, inproc.ok, requests,
              inproc.wall_s);

  // ---- act 2: the same fleet over loopback TCP ------------------------
  SupervisorConfig scfg;
  scfg.boardd_path = SENECA_BOARDD_PATH;
  scfg.remote.heartbeat_interval_ms = 10.0;
  scfg.restart_backoff_initial_ms = 50.0;
  scfg.poll_interval_ms = 5.0;

  ClusterRouter router(std::vector<std::shared_ptr<serve::cluster::Board>>{},
                       cluster_config());
  Supervisor sup(scfg, router);
  std::vector<int> slots;
  std::printf("spawning %d seneca_boardd workers on loopback TCP...\n",
              boards);
  for (int b = 0; b < boards; ++b) {
    WorkerSpec spec;
    spec.ladder.assign(std::begin(kLadder), std::end(kLadder));
    spec.input = static_cast<int>(input);
    spec.workers = workers;
    spec.queue_capacity = 32;
    spec.name = "wire" + std::to_string(b);
    slots.push_back(sup.add_worker(spec));
  }
  sup.start();

  const EpisodeResult wire = run_episode(router, clients, requests, input);
  // Force one synchronous telemetry round so the snapshot reflects the
  // whole episode rather than the last heartbeat cadence tick.
  for (const int slot : slots) {
    if (auto board = sup.worker_board(slot)) board->refresh(2000.0);
  }
  const serve::cluster::ClusterSnapshot wire_snap = router.snapshot();
  const double ratio = inproc_snap.simulated_fps > 0.0
                           ? wire_snap.simulated_fps / inproc_snap.simulated_fps
                           : 0.0;
  std::printf(
      "wire:   %d boardd procs, %.1f sim-FPS, %d/%d ok (%.2f s wall) -> "
      "%.2fx inproc\n",
      boards, wire_snap.simulated_fps, wire.ok, requests, wire.wall_s, ratio);

  // ---- act 3: chaos on the live wire fleet ----------------------------
  const int victim = slots.front();
  const pid_t victim_pid = sup.worker_pid(victim);
  std::vector<std::future<serve::Response>> futs;
  futs.reserve(static_cast<std::size_t>(requests));
  const int half = requests / 2;
  tensor::TensorI8 chaos_in(tensor::Shape{input, input, 1});
  for (auto& v : chaos_in) v = 3;
  for (int i = 0; i < half; ++i) {
    futs.push_back(
        router.submit(serve::Priority::kBatch, chaos_in, 0.0));
  }
  std::printf("chaos:  SIGKILL worker slot %d (pid %d) mid-traffic\n", victim,
              static_cast<int>(victim_pid));
  ::kill(victim_pid, SIGKILL);
  for (int i = half; i < requests; ++i) {
    futs.push_back(
        router.submit(serve::Priority::kBatch, chaos_in, 0.0));
  }

  EpisodeResult chaos;
  for (auto& f : futs) {
    const serve::Response r = f.get();  // every future must resolve
    switch (r.status) {
      case serve::Status::kOk: ++chaos.ok; break;
      case serve::Status::kRejected: ++chaos.rejected; break;
      case serve::Status::kMigrated:
      case serve::Status::kExpired: ++chaos.leaked; break;
      default: ++chaos.errors; break;
    }
  }
  const bool restarted = wait_until(20000.0, [&] {
    const pid_t pid = sup.worker_pid(victim);
    auto board = sup.worker_board(victim);
    return pid > 0 && pid != victim_pid && board && !board->dead();
  });
  const serve::cluster::ClusterSnapshot chaos_snap = router.snapshot();
  sup.stop();
  router.shutdown();

  // "Zero lost non-expired requests": every submit resolved terminally,
  // kMigrated/kExpired never reached a client, nothing expired cluster-wide
  // (all traffic was deadline-free), and the survivors kept serving.
  const bool chaos_ok = chaos.leaked == 0 && chaos.ok > 0 &&
                        chaos.ok + chaos.rejected + chaos.errors == requests &&
                        chaos_snap.expired == 0 && restarted;
  std::printf(
      "chaos:  %d ok, %d rejected, %d errors, %d leaked; expired=%llu, "
      "migrations=%llu, restart %s\n",
      chaos.ok, chaos.rejected, chaos.errors, chaos.leaked,
      static_cast<unsigned long long>(chaos_snap.expired),
      static_cast<unsigned long long>(chaos_snap.migrations),
      restarted ? "ok" : "TIMED OUT");

  eval::Table table({"Act", "Boards", "sim FPS", "FPS/W", "OK", "Rejected",
                     "Errors", "Wall s"});
  const auto add_act = [&](const char* act, const EpisodeResult& e,
                           const serve::cluster::ClusterSnapshot& s) {
    table.add_row({act, std::to_string(boards),
                   eval::Table::num(s.simulated_fps, 1),
                   eval::Table::num(s.fps_per_watt, 2), std::to_string(e.ok),
                   std::to_string(e.rejected), std::to_string(e.errors),
                   eval::Table::num(e.wall_s, 2)});
  };
  add_act("inproc", inproc, inproc_snap);
  add_act("wire", wire, wire_snap);
  add_act("chaos", chaos, chaos_snap);
  std::printf("%s\n", table.render().c_str());

  const bool ratio_ok = ratio >= min_ratio;
  const bool pass = ratio_ok && chaos_ok;
  std::printf("wire/inproc sim-FPS ratio: %.2f (gate >= %.2f) -> %s\n", ratio,
              min_ratio, ratio_ok ? "PASS" : "FAIL");
  std::printf("cluster_wire check: %s\n", pass ? "PASS" : "FAIL");

  bench::JsonWriter json;
  json.obj()
      .field("act", "inproc")
      .field("sim_fps", inproc_snap.simulated_fps)
      .field("fps_per_w", inproc_snap.fps_per_watt)
      .field("ok", inproc.ok)
      .field("wall_s", inproc.wall_s);
  json.obj()
      .field("act", "wire")
      .field("sim_fps", wire_snap.simulated_fps)
      .field("fps_per_w", wire_snap.fps_per_watt)
      .field("ok", wire.ok)
      .field("wall_s", wire.wall_s)
      .field("ratio", ratio)
      .field("min_ratio", min_ratio)
      .field("ratio_ok", ratio_ok);
  json.obj()
      .field("act", "chaos")
      .field("ok", chaos.ok)
      .field("rejected", chaos.rejected)
      .field("errors", chaos.errors)
      .field("leaked", chaos.leaked)
      .field("expired", static_cast<std::uint64_t>(chaos_snap.expired))
      .field("migrations", static_cast<std::uint64_t>(chaos_snap.migrations))
      .field("restarted", restarted)
      .field("chaos_ok", chaos_ok);
  bench::write_json_file(json_path, json.str());
  return strict && !pass ? 1 : 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "cluster_wire: %s\n", e.what());
  return 1;
}
