// Serving-layer scaling: closed-loop throughput, interactive p99, and
// drop/degrade rates as a function of offered load (client count) and VART
// workers per ladder rung. Complements the paper's thread-scaling study
// (Fig. 3) one layer up: here the host-side dispatch/queue/batching stack
// is the system under test, not the DPU.
#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/workflow.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"

namespace {

using namespace seneca;

const std::vector<serve::ModelSpec>& ladder(int workers) {
  static std::vector<serve::ModelSpec> base = [] {
    std::vector<serve::ModelSpec> l;
    for (const char* name : {"4M", "2M"}) {
      l.push_back({name, core::build_timing_xmodel(name, dpu::DpuArch::b4096(), 32), 1});
    }
    return l;
  }();
  static std::vector<serve::ModelSpec> sized;
  sized = base;
  for (auto& spec : sized) spec.workers = workers;
  return sized;
}

void BM_ServeClosedLoop(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  const int workers = static_cast<int>(state.range(1));
  // Re-baselined after the SIMD kernel layer (PR 8) made the simulator
  // ~5x faster: 48 requests finished before the queue ever filled at high
  // client counts, hiding the drop/degrade behaviour this bench sweeps.
  constexpr int kRequests = 240;

  serve::ServerConfig cfg;
  cfg.queue.capacity = 16;
  cfg.batcher.max_batch_size = 4;
  cfg.batcher.max_wait_ms = 1.0;
  cfg.degrade.queue_depth_high = 6;
  cfg.degrade.queue_depth_low = 1;
  cfg.degrade.min_dwell_ms = 10.0;

  std::uint64_t served = 0;
  std::uint64_t dropped = 0;
  std::uint64_t degraded = 0;
  double p99_int = 0.0;
  for (auto _ : state) {
    serve::InferenceServer server(ladder(workers), cfg);
    std::atomic<int> next{0};
    std::vector<std::thread> fleet;
    fleet.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      fleet.emplace_back([&, c] {
        util::Rng rng(static_cast<std::uint64_t>(c) + 1);
        tensor::TensorI8 input(tensor::Shape{32, 32, 1});
        for (auto& v : input) {
          v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
        }
        for (;;) {
          const int i = next.fetch_add(1);
          if (i >= kRequests) return;
          const serve::Priority lane = i % 4 == 3 ? serve::Priority::kBatch
                                                  : serve::Priority::kInteractive;
          server.submit(lane, input, lane == serve::Priority::kBatch ? 0.0 : 200.0)
              .get();
        }
      });
    }
    for (auto& t : fleet) t.join();
    const auto m = server.metrics();
    served += m.served;
    dropped += m.dropped();
    degraded += m.degraded;
    p99_int = m.interactive.p99_ms;
  }
  const double episodes = static_cast<double>(state.iterations());
  state.counters["served_per_s"] = benchmark::Counter(
      static_cast<double>(served), benchmark::Counter::kIsRate);
  state.counters["drop_rate"] =
      static_cast<double>(dropped) / (episodes * kRequests);
  state.counters["degrade_rate"] =
      static_cast<double>(degraded) / (episodes * kRequests);
  state.counters["p99_interactive_ms"] = p99_int;
}

}  // namespace

BENCHMARK(BM_ServeClosedLoop)
    ->ArgsProduct({{1, 4, 16}, {1, 2, 4}})
    ->ArgNames({"clients", "workers"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(2);

BENCHMARK_MAIN();
