// Figure 3: average energy efficiency (FPS/Watt) for each model — the FP32
// GPU baseline vs the INT8 ZCU104 deployment with 1, 2 and 4 VART threads
// (2000 images, 10 runs each). Extended with 8 threads to reproduce the
// Sec. IV-B observation that more threads add power but no throughput.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common.hpp"
#include "nn/unet.hpp"

namespace {

using namespace seneca;

void print_figure() {
  bench::print_banner("Figure 3",
                      "Energy efficiency [FPS/W] per model and thread count");
  eval::Table table({"Config", "GPU FP32", "ZCU104 1-thr", "ZCU104 2-thr",
                     "ZCU104 4-thr", "ZCU104 8-thr (ext.)"});
  // Paper reference values for the 4-thread FPGA column (from Table IV).
  const double paper_ee4[] = {11.81, 10.27, 9.57, 4.57, 3.17};
  int idx = 0;
  std::vector<std::array<double, 4>> fpga_ee;
  for (const auto& entry : core::model_zoo()) {
    const dpu::XModel xm = core::build_timing_xmodel(entry.name);
    auto graph = nn::build_unet2d(core::unet_config(entry, 256));
    const auto gpu = bench::measure_gpu(*graph);
    std::array<double, 4> row{};
    std::vector<std::string> cells = {entry.name,
                                      eval::Table::num(gpu.ee.mean)};
    int t_idx = 0;
    for (int threads : {1, 2, 4, 8}) {
      const auto fpga = bench::measure_fpga(xm, threads, 2000, 10);
      row[static_cast<std::size_t>(t_idx++)] = fpga.ee.mean;
      cells.push_back(eval::Table::num(fpga.ee.mean));
    }
    fpga_ee.push_back(row);
    table.add_row(cells);
    std::printf("  %-3s 4-thr EE: ours %.2f vs paper %.2f\n", entry.name.c_str(),
                row[2], paper_ee4[idx++]);
  }
  std::printf("\n%s", table.render().c_str());

  // ASCII rendering of the figure's bar groups.
  std::printf("\nEE [FPS/W], one bar block per config (G=GPU, 1/2/4/8=threads):\n");
  idx = 0;
  for (const auto& entry : core::model_zoo()) {
    auto graph = nn::build_unet2d(core::unet_config(entry, 256));
    const double gpu_ee = bench::measure_gpu(*graph).ee.mean;
    auto bar = [](double v) {
      return std::string(static_cast<std::size_t>(v * 4.0 + 0.5), '#');
    };
    std::printf("%-4s G %5.2f %s\n", entry.name.c_str(), gpu_ee, bar(gpu_ee).c_str());
    const char* labels[] = {"1", "2", "4", "8"};
    for (int t = 0; t < 4; ++t) {
      const double v = fpga_ee[static_cast<std::size_t>(idx)][static_cast<std::size_t>(t)];
      std::printf("     %s %5.2f %s\n", labels[t], v, bar(v).c_str());
    }
    ++idx;
  }
  std::printf(
      "\nQuantized FPGA configurations beat the GPU at every size; gains\n"
      "grow to 4 threads and vanish at 8 (more power, no FPS — Sec. IV-B).\n");
}

void BM_ThroughputSimulation(benchmark::State& state) {
  const dpu::XModel xm = core::build_timing_xmodel("1M");
  runtime::SocConfig soc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        runtime::simulate_throughput(xm, soc, static_cast<int>(state.range(0)), 2000));
  }
  state.SetLabel(std::to_string(state.range(0)) + " threads");
}
BENCHMARK(BM_ThroughputSimulation)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
