// Ablation (§III-C): training-loss comparison. Trains the same small U-Net
// under cross-entropy, Dice, unweighted Focal Tversky, and the paper's
// class-weighted Focal Tversky (+CE sharpening), then compares per-organ
// DSC — the claim being that the weighted loss rescues the rare organs
// (bladder, kidneys) from the class-imbalance collapse.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>

#include "common.hpp"
#include "nn/unet.hpp"

namespace {

using namespace seneca;

struct Arm {
  const char* name;
  std::unique_ptr<nn::Loss> loss;
};

void print_table() {
  bench::print_banner("Ablation: training losses",
                      "CE vs Dice vs unweighted FTL vs weighted FTL (+CE)");
  data::DatasetConfig dcfg;
  dcfg.num_volumes = 20;
  dcfg.slices_per_volume = 12;
  dcfg.resolution = 64;
  const data::Dataset ds = data::build_dataset(dcfg);
  const auto train_samples = ds.train_samples();
  const auto freq = data::organ_frequencies(ds.train);
  std::vector<double> class_freq(static_cast<std::size_t>(data::kNumClasses));
  for (std::size_t c = 1; c < class_freq.size(); ++c) class_freq[c] = freq[c] / 100.0;
  class_freq[0] = 12.0;

  std::vector<Arm> arms;
  arms.push_back({"CrossEntropy", std::make_unique<nn::CrossEntropyLoss>()});
  arms.push_back({"Dice", std::make_unique<nn::DiceLoss>()});
  arms.push_back({"FTL unweighted",
                  std::make_unique<nn::FocalTverskyLoss>(
                      nn::FocalTverskyLoss::unweighted(data::kNumClasses))});
  arms.push_back({"FTL weighted +CE (SENECA)", nn::make_seneca_loss(class_freq)});

  eval::Table table({"Loss", "Global DSC [%]", "Liver", "Bladder", "Lungs",
                     "Kidneys", "Bones"});
  std::filesystem::create_directories("artifacts");
  for (auto& arm : arms) {
    nn::UNet2DConfig mcfg = core::unet_config(core::zoo_entry("1M"), 64);
    auto graph = nn::build_unet2d(mcfg);
    // Manual weight cache (these arms bypass the Workflow).
    std::string key = arm.name;
    for (auto& ch : key) {
      if (ch == ' ' || ch == '(' || ch == ')' || ch == '+') ch = '_';
    }
    const std::filesystem::path cache = "artifacts/lossabl_" + key + ".weights";
    if (std::filesystem::exists(cache)) {
      graph->load_weights(cache);
    } else {
      nn::TrainOptions topts;
      topts.epochs = 10;
      topts.learning_rate = 2e-3f;
      topts.lr_decay = 0.95f;
      nn::train(*graph, *arm.loss, train_samples, topts);
      graph->save_weights(cache);
    }
    auto ev = core::evaluate_fp32(*graph, ds.test);
    const auto d = ev.dice_per_class();
    table.add_row({arm.name, eval::Table::num(100.0 * ev.global_dice()),
                   eval::Table::num(100.0 * d[1]), eval::Table::num(100.0 * d[2]),
                   eval::Table::num(100.0 * d[3]), eval::Table::num(100.0 * d[4]),
                   eval::Table::num(100.0 * d[5])});
    std::printf("  %-26s done\n", arm.name);
  }
  std::printf("\n%s", table.render().c_str());
  std::printf(
      "\nExpected shape: unweighted losses favour the frequent organs\n"
      "(lungs/bones); the weighted Focal Tversky loss lifts the small-organ\n"
      "columns (bladder, kidneys) — §III-C / Fig. 6 discussion.\n");
}

void BM_SenecaLossCompute(benchmark::State& state) {
  auto loss = nn::make_seneca_loss({12.0, 0.22, 0.025, 0.34, 0.047, 0.36});
  tensor::TensorF probs(tensor::Shape{64, 64, 6}, 1.f / 6.f);
  nn::LabelMap labels(tensor::Shape{64, 64}, 0);
  tensor::TensorF grad(probs.shape());
  for (auto _ : state) {
    benchmark::DoNotOptimize(loss->compute(probs, labels, grad));
  }
}
BENCHMARK(BM_SenecaLossCompute)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
