// Figure 6: per-organ Dice-score boxplots for SENECA (the 1M INT8 model)
// over per-patient test cases, rendered as ASCII boxplots.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common.hpp"
#include "data/organs.hpp"

namespace {

using namespace seneca;

void print_figure() {
  bench::print_banner("Figure 6",
                      "Per-organ DSC boxplots of SENECA over test patients");
  auto art = bench::run_accuracy_workflow("1M", /*best_profile=*/true);
  const auto samples = core::per_case_organ_dice_int8(art.xmodel, art.dataset.test);

  // Paper medians (Table V per-organ DSC as anchors).
  const double paper_dsc[] = {0.0, 91.63, 79.21, 96.16, 81.30, 94.35};

  eval::Table table({"Organ", "Cases", "Median", "Q1", "Q3", "Min", "Max",
                     "Paper mean"});
  std::printf("DSC, 0 %%  ........................................  100 %%\n");
  for (std::int64_t c = 1; c < data::kNumClasses; ++c) {
    const auto& organ_samples = samples[static_cast<std::size_t>(c)];
    if (organ_samples.empty()) continue;
    const auto box = eval::compute_boxplot(organ_samples);
    std::printf("%-8s %s\n", std::string(data::organ_name(static_cast<std::int32_t>(c))).c_str(),
                eval::render_boxplot(box, 0.0, 1.0, 52).c_str());
    table.add_row({std::string(data::organ_name(static_cast<std::int32_t>(c))),
                   std::to_string(box.n),
                   eval::Table::num(100.0 * box.median, 1),
                   eval::Table::num(100.0 * box.q1, 1),
                   eval::Table::num(100.0 * box.q3, 1),
                   eval::Table::num(100.0 * box.minimum, 1),
                   eval::Table::num(100.0 * box.maximum, 1),
                   eval::Table::num(paper_dsc[c], 1)});
  }
  std::printf("\n%s", table.render().c_str());

  // Paper's imbalance observation: lungs are 13.6x more frequent than the
  // bladder but have only 1.21x its DSC.
  const auto lungs = eval::compute_boxplot(samples[3]);
  const auto bladder = eval::compute_boxplot(samples[2]);
  if (bladder.median > 0.0) {
    std::printf(
        "\nlungs/bladder DSC ratio: %.2fx (paper: 1.21x, against a 13.6x\n"
        "frequency imbalance) — the weighted Focal Tversky loss at work.\n",
        lungs.median / bladder.median);
  }
}

void BM_PerCaseEvaluation(benchmark::State& state) {
  auto art = bench::run_accuracy_workflow("1M", /*best_profile=*/true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::per_case_organ_dice_int8(art.xmodel, art.dataset.test));
  }
}
BENCHMARK(BM_PerCaseEvaluation)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
