// Table III: organ frequencies in the PTQ calibration set before (random
// sampling) and after (manual sampling) the frequency correction.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common.hpp"
#include "data/calibration.hpp"

namespace {

using namespace seneca;

data::Dataset build_pool() {
  data::DatasetConfig cfg;
  cfg.num_volumes = 60;
  cfg.slices_per_volume = 16;
  cfg.resolution = 64;
  return data::build_dataset(cfg);
}

void print_table() {
  bench::print_banner("Table III",
                      "Calibration-set organ frequencies, random vs manual");
  const data::Dataset ds = build_pool();
  const auto random_set = data::sample_calibration_random(ds.train, 120, 5);
  const auto manual_set = data::sample_calibration_manual(ds.train, 120);

  eval::Table table({"Sampling", "Liver", "Bladder", "Lungs", "Kidneys", "Bones"});
  table.add_row({"Paper: Random", "24.38", "3.00", "35.27", "3.63", "33.72"});
  table.add_row({"Ours:  Random",
                 eval::Table::num(random_set.frequencies[0]),
                 eval::Table::num(random_set.frequencies[1]),
                 eval::Table::num(random_set.frequencies[2]),
                 eval::Table::num(random_set.frequencies[3]),
                 eval::Table::num(random_set.frequencies[4])});
  table.add_row({"Paper: Manual", "21.69", "7.66", "32.02", "6.90", "31.73"});
  table.add_row({"Ours:  Manual",
                 eval::Table::num(manual_set.frequencies[0]),
                 eval::Table::num(manual_set.frequencies[1]),
                 eval::Table::num(manual_set.frequencies[2]),
                 eval::Table::num(manual_set.frequencies[3]),
                 eval::Table::num(manual_set.frequencies[4])});
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nManual sampling levels the distribution toward the small organs\n"
      "(bladder, kidneys); the reachable boost is bounded by the phantom\n"
      "pool's bladder-bearing slice count at this scale.\n");
}

void BM_RandomSampler(benchmark::State& state) {
  static const data::Dataset ds = build_pool();
  for (auto _ : state) {
    benchmark::DoNotOptimize(data::sample_calibration_random(ds.train, 120, 7));
  }
}
BENCHMARK(BM_RandomSampler)->Unit(benchmark::kMillisecond);

void BM_ManualGreedySampler(benchmark::State& state) {
  static const data::Dataset ds = build_pool();
  for (auto _ : state) {
    benchmark::DoNotOptimize(data::sample_calibration_manual(ds.train, 120));
  }
}
BENCHMARK(BM_ManualGreedySampler)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
