// Cluster-tier scaling: aggregate simulated FPS, FPS/W, and per-lane tail
// latency as a function of board count and routing policy. The functional
// serving stack (router, per-board queues, batching, degradation) runs for
// real; timing and energy are the boards' DES-priced rung costs — the
// simulated ZCU104s are the hardware under test, not the dev host's clock.
//
// Two studies:
//   BM_ClusterReplicatedScaling — every board hosts the full ladder,
//     degradation disabled so each frame costs the same rung everywhere:
//     aggregate simulated FPS must scale with board count (boards run in
//     parallel, cluster busy time is the max over boards).
//   BM_ClusterPartitionPolicy — the ladder is split across boards (8M on
//     board0, 2M on board1); at equal offered load the energy-aware policy
//     routes deadline-feasible traffic to the cheap rung and must beat
//     round-robin on FPS/W.
#include <benchmark/benchmark.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "core/workflow.hpp"
#include "serve/cluster/router.hpp"
#include "serve/metrics.hpp"
#include "util/rng.hpp"

namespace {

using namespace seneca;
using serve::cluster::ClusterConfig;
using serve::cluster::ClusterRouter;
using serve::cluster::PolicyKind;

const std::vector<serve::ModelSpec>& ladder() {
  static const std::vector<serve::ModelSpec> l = [] {
    std::vector<serve::ModelSpec> out;
    for (const char* name : {"8M", "2M"}) {
      out.push_back(
          {name, core::build_timing_xmodel(name, dpu::DpuArch::b4096(), 32), 1});
    }
    return out;
  }();
  return l;
}

serve::ServerConfig server_config(bool degrade) {
  serve::ServerConfig cfg;
  cfg.queue.capacity = 32;
  cfg.batcher.max_batch_size = 4;
  cfg.batcher.max_wait_ms = 25.0;  // batch lane trades latency for batching
  cfg.batcher.interactive_max_wait_ms = 0.0;
  cfg.batcher.interactive_max_batch_size = 1;
  if (degrade) {
    cfg.degrade.queue_depth_high = 6;
    cfg.degrade.queue_depth_low = 2;
    cfg.degrade.min_dwell_ms = 10.0;
  } else {
    cfg.degrade.queue_depth_high = 1000000;  // pin every board to its rung
  }
  return cfg;
}

struct EpisodeResult {
  serve::cluster::ClusterSnapshot cluster;
  double p99_interactive_ms = 0.0;
  double p99_batch_ms = 0.0;
};

/// Closed loop: `clients` threads share `requests` submissions (3:1
/// interactive:batch, 200 ms interactive deadline), each pacing on its own
/// previous future.
EpisodeResult run_episode(ClusterRouter& router, int clients, int requests) {
  std::atomic<int> next{0};
  std::mutex samples_mutex;
  std::vector<double> interactive_ms;
  std::vector<double> batch_ms;
  std::vector<std::thread> fleet;
  fleet.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    fleet.emplace_back([&, c] {
      util::Rng rng(static_cast<std::uint64_t>(c) + 1);
      tensor::TensorI8 input(tensor::Shape{32, 32, 1});
      for (auto& v : input) {
        v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
      }
      for (;;) {
        const int i = next.fetch_add(1);
        if (i >= requests) return;
        const bool batch_lane = i % 4 == 3;
        const serve::Priority lane = batch_lane ? serve::Priority::kBatch
                                                : serve::Priority::kInteractive;
        const serve::Response r =
            router.submit(lane, input, batch_lane ? 0.0 : 200.0).get();
        if (r.status != serve::Status::kOk) continue;
        std::lock_guard lock(samples_mutex);
        (batch_lane ? batch_ms : interactive_ms).push_back(r.total_ms);
      }
    });
  }
  for (auto& t : fleet) t.join();

  EpisodeResult out;
  out.cluster = router.snapshot();
  out.p99_interactive_ms = serve::nearest_rank_quantile(interactive_ms, 0.99);
  out.p99_batch_ms = serve::nearest_rank_quantile(batch_ms, 0.99);
  return out;
}

void set_counters(benchmark::State& state, const EpisodeResult& r) {
  state.counters["sim_fps"] = r.cluster.simulated_fps;
  state.counters["fps_per_w"] = r.cluster.fps_per_watt;
  state.counters["served"] = static_cast<double>(r.cluster.served);
  state.counters["degraded"] = static_cast<double>(r.cluster.degraded);
  state.counters["p99_int_ms"] = r.p99_interactive_ms;
  state.counters["p99_batch_ms"] = r.p99_batch_ms;
}

void BM_ClusterReplicatedScaling(benchmark::State& state) {
  const int boards = static_cast<int>(state.range(0));
  const auto policy = static_cast<PolicyKind>(state.range(1));
  // Re-baselined post-PR 8 (SIMD kernels, ~5x simulator speedup): the old
  // 64-request episodes drained too fast to pressure the queues at 4
  // boards, flattening the scaling curve the bench exists to show.
  constexpr int kRequests = 320;
  constexpr int kClients = 6;

  EpisodeResult last;
  for (auto _ : state) {
    ClusterConfig cfg;
    cfg.policy = policy;
    ClusterRouter router(serve::cluster::replicate_ladder(
                             ladder(), boards, server_config(/*degrade=*/false)),
                         cfg);
    last = run_episode(router, kClients, kRequests);
  }
  set_counters(state, last);
}

void BM_ClusterPartitionPolicy(benchmark::State& state) {
  const auto policy = static_cast<PolicyKind>(state.range(0));
  constexpr int kRequests = 320;  // matches the replicated study's scale
  constexpr int kClients = 6;

  EpisodeResult last;
  for (auto _ : state) {
    ClusterConfig cfg;
    cfg.policy = policy;
    ClusterRouter router(serve::cluster::partition_ladder(
                             ladder(), 2, server_config(/*degrade=*/false)),
                         cfg);
    last = run_episode(router, kClients, kRequests);
  }
  set_counters(state, last);
}

}  // namespace

BENCHMARK(BM_ClusterReplicatedScaling)
    ->ArgsProduct({{1, 2, 4}, {0, 1, 2}})
    ->ArgNames({"boards", "policy"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(2);

BENCHMARK(BM_ClusterPartitionPolicy)
    ->ArgsProduct({{0, 2}})
    ->ArgNames({"policy"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(2);

BENCHMARK_MAIN();
