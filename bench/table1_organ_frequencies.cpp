// Table I: organ frequencies in the CT-ORG dataset, expressed as pixel
// percentage of labeled targets. Reproduced over the full 140-volume
// phantom dataset (labels only, so a reduced raster is exact enough).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common.hpp"
#include "data/dataset.hpp"
#include "data/organs.hpp"

namespace {

using namespace seneca;

void print_table() {
  bench::print_banner("Table I",
                      "Organ frequencies as % of labeled pixels, 140 volumes");
  const auto freq = data::raw_organ_frequencies(140, 24, 128, 1234);
  eval::Table table({"Organ", "Paper [%]", "Ours [%]"});
  const char* organs[] = {"Liver", "Bladder", "Lungs", "Kidneys", "Bones", "Brain"};
  for (int i = 0; i < 6; ++i) {
    table.add_row({organs[i],
                   eval::Table::num(data::kPaperOrganFrequencies[static_cast<std::size_t>(i)]),
                   eval::Table::num(freq[static_cast<std::size_t>(i)])});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nThe brain is underrepresented (%.2f %% vs liver %.2f %%) because\n"
      "whole-body scans are rare — the reason the paper drops it (Sec. III-A).\n",
      freq[5], freq[0]);
}

void BM_PhantomSliceRender(benchmark::State& state) {
  data::PhantomConfig cfg;
  cfg.resolution = state.range(0);
  data::PhantomGenerator gen(cfg, 42);
  int patient = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.render_slice(patient++ % 16, 0.5));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PhantomSliceRender)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_FrequencyAnalysis(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(data::raw_organ_frequencies(4, 8, 64, 7));
  }
}
BENCHMARK(BM_FrequencyAnalysis)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
