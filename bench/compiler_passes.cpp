// Compiler pass-pipeline bench: compiles every ladder rung twice from the
// same quantized graph — -O0 (lowering only, byte-identical to the
// pre-pipeline compiler) and -O1 (const-fold, DCE, concat elimination,
// tile-size search) — and reports the before/after instruction counts and
// simulated cycles per frame. Also proves the optimizations are safe by
// running both programs on the functional core simulator at a smaller
// resolution and comparing segmentation outputs bit-for-bit against the
// quantized reference executor.
//
//   ./compiler_passes [--input 256] [--verify-input 64] [--sharers 2]
//                     [--dump-passes] [--json compiler_passes.json]
//                     [--strict] [--min-win 10]
//
// --strict exits nonzero unless the 16M and 4M rungs win >= --min-win % of
// single-sharer cycles, every rung's -O1 output is bit-exact, AND the
// SENECA-Prove verifier reports zero findings on both programs (the
// "Verify ms" column prices that standalone pass per rung).

#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/workflow.hpp"
#include "dpu/compiler.hpp"
#include "dpu/core_sim.hpp"
#include "dpu/passes.hpp"
#include "dpu/verify.hpp"
#include "util/timer.hpp"
#include "eval/table.hpp"
#include "util/cli.hpp"

namespace {

using namespace seneca;

struct RungResult {
  std::string model;
  std::size_t instrs_o0 = 0;
  std::size_t instrs_o1 = 0;
  double cycles_o0 = 0.0;
  double cycles_o1 = 0.0;
  double ddr_mb_o0 = 0.0;
  double ddr_mb_o1 = 0.0;
  double win_pct = 0.0;
  double verify_ms = 0.0;  // standalone SENECA-Prove pass over the -O1 model
  bool clean = false;      // zero verifier findings on both programs
  bool bitexact = false;
};

tensor::TensorI8 seeded_input(const tensor::Shape& shape, std::uint64_t seed) {
  tensor::TensorI8 t(shape);
  std::uint64_t s = seed;
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    t[i] = static_cast<std::int8_t>(static_cast<std::int64_t>(s >> 56) - 128);
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  const std::int64_t input = cli.get_int("input", 256);
  const std::int64_t verify_input = cli.get_int("verify-input", 64);
  const int sharers = static_cast<int>(cli.get_int("sharers", 2));
  const bool dump_passes = cli.get_bool("dump-passes", false);
  const bool strict = cli.get_bool("strict", false);
  const double min_win = cli.get_double("min-win", 10.0);
  const std::string json_path = cli.get("json", "");

  const std::vector<std::string> rungs = {"16M", "8M", "4M", "2M", "1M"};
  std::vector<RungResult> results;

  for (const auto& name : rungs) {
    RungResult r;
    r.model = name;

    // Timing comparison at full resolution.
    const quant::QGraph qg = core::build_timing_qgraph(name, input);
    dpu::CompileOptions o0;
    o0.model_name = name;
    o0.opt_level = 0;
    dpu::CompileOptions o1 = o0;
    o1.opt_level = 1;
    const dpu::XModel xm0 = dpu::compile(qg, o0);
    dpu::CompileReport report;
    const dpu::XModel xm1 =
        dpu::compile(qg, o1, dump_passes ? &report : nullptr);
    r.instrs_o0 = xm0.total_instructions();
    r.instrs_o1 = xm1.total_instructions();
    r.cycles_o0 = xm0.latency_cycles(1);
    r.cycles_o1 = xm1.latency_cycles(1);
    r.ddr_mb_o0 = static_cast<double>(xm0.total_ddr_bytes()) / 1e6;
    r.ddr_mb_o1 = static_cast<double>(xm1.total_ddr_bytes()) / 1e6;
    r.win_pct = 100.0 * (r.cycles_o0 - r.cycles_o1) / r.cycles_o0;

    // Standalone SENECA-Prove cost on the full-resolution -O1 program (it
    // also ran inside both compiles as the mandatory post-pass; this prices
    // the tools/seneca_verify path), and the zero-findings gate.
    const util::Timer verify_timer;
    const auto findings1 = dpu::verify(xm1);
    r.verify_ms = verify_timer.millis();
    r.clean = dpu::verify(xm0).empty() && findings1.empty();
    if (dump_passes) {
      std::printf("%s pass pipeline (%lldx%lld):\n%s\n", name.c_str(),
                  static_cast<long long>(input), static_cast<long long>(input),
                  dpu::format_pass_table(report).c_str());
    }

    // Bit-exactness at verify resolution: -O1 vs -O0 vs the quantized
    // reference executor, on a deterministic pseudo-random input.
    const quant::QGraph vqg = core::build_timing_qgraph(name, verify_input);
    const dpu::XModel vxm0 = dpu::compile(vqg, o0);
    const dpu::XModel vxm1 = dpu::compile(vqg, o1);
    const auto in = seeded_input(vqg.input_shape, 0x5ECA + results.size());
    const auto ref = vqg.forward(in);
    const auto out0 = dpu::DpuCoreSim(&vxm0).run(in).output;
    const auto out1 = dpu::DpuCoreSim(&vxm1).run(in).output;
    r.bitexact = tensor::max_abs_diff(ref, out0) == 0.0 &&
                 tensor::max_abs_diff(ref, out1) == 0.0;
    results.push_back(r);
  }

  eval::Table table({"Model", "Instrs -O0", "Instrs -O1", "Mcyc/frame -O0",
                     "Mcyc/frame -O1", "Win %", "DDR MB -O0", "DDR MB -O1",
                     "Verify ms", "Clean", "Bit-exact"});
  for (const auto& r : results) {
    table.add_row({r.model, std::to_string(r.instrs_o0),
                   std::to_string(r.instrs_o1),
                   eval::Table::num(r.cycles_o0 / 1e6, 2),
                   eval::Table::num(r.cycles_o1 / 1e6, 2),
                   eval::Table::num(r.win_pct, 1),
                   eval::Table::num(r.ddr_mb_o0, 2),
                   eval::Table::num(r.ddr_mb_o1, 2),
                   eval::Table::num(r.verify_ms, 2),
                   r.clean ? "yes" : "NO",
                   r.bitexact ? "yes" : "NO"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "(-O1 = const-fold, dce, concat-elim, tile-search; cycles at 1 DDR "
      "sharer; latency at %d sharers scales the overlap model the same "
      "way)\n",
      sharers);

  bool pass = true;
  for (const auto& r : results) {
    if (!r.bitexact) {
      std::printf("FAIL: %s -O1 output not bit-exact\n", r.model.c_str());
      pass = false;
    }
    if (!r.clean) {
      std::printf("FAIL: %s has verifier findings\n", r.model.c_str());
      pass = false;
    }
    if ((r.model == "16M" || r.model == "4M") && r.win_pct < min_win) {
      std::printf("FAIL: %s win %.1f%% < %.1f%%\n", r.model.c_str(), r.win_pct,
                  min_win);
      pass = false;
    }
  }
  std::printf("compiler_passes check: %s\n", pass ? "PASS" : "FAIL");

  bench::JsonWriter json;
  for (const auto& r : results) {
    json.obj()
        .field("model", r.model)
        .field("instrs_o0", r.instrs_o0)
        .field("instrs_o1", r.instrs_o1)
        .field("cycles_o0", r.cycles_o0)
        .field("cycles_o1", r.cycles_o1)
        .field("win_pct", r.win_pct)
        .field("ddr_mb_o0", r.ddr_mb_o0)
        .field("ddr_mb_o1", r.ddr_mb_o1)
        .field("verify_ms", r.verify_ms)
        .field("clean", r.clean)
        .field("bitexact", r.bitexact);
  }
  bench::write_json_file(json_path, json.str());
  return strict && !pass ? 1 : 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "compiler_passes: %s\n", e.what());
  return 1;
}
