// Tenant-isolation bench: demonstrates that the SENECA-Tenants admission
// layer (token buckets + DRR weighted-fair dequeue) protects a
// well-behaved tenant's SLO when a neighbour tenant storms at 10x its
// normal rate. Open-loop traffic only (Poisson for the well-behaved
// "clinic" tenant, flash-crowd for the "research" storm), so offered load
// does not self-throttle at saturation the way the old closed-loop sweeps
// did.
//
// Three acts, all on one InferenceServer with a 2-rung ladder:
//   solo       — clinic alone at its contracted Poisson rate (baseline)
//   storm      — clinic + research storming 10x, WITH tenant isolation
//   unisolated — same storm, but both tenants ride the default tenant
//                (no buckets, one FIFO): the contrast row
// The isolation claim printed (and written as JSON with --json) is that
// the clinic's p99 and goodput in `storm` stay within --tolerance (default
// 20%) of `solo`; p99 alternatively passes within --slack-ms (default 10)
// absolute, since sub-10ms solo baselines put a pure ratio inside host
// scheduling jitter.
//
//   ./tenant_isolation [--seed 42] [--input 32] [--duration-s 6]
//                      [--clinic-rate 60] [--research-rate 4]
//                      [--storm-mult 10] [--deadline-ms 250]
//                      [--json tenant_isolation.json] [--strict]

#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/workflow.hpp"
#include "eval/table.hpp"
#include "loadgen/loadgen.hpp"
#include "serve/server.hpp"
#include "serve/tenant/tenant.hpp"
#include "util/cli.hpp"

namespace {

using namespace seneca;
using serve::tenant::TenantConfig;
using serve::tenant::TenantRegistry;

constexpr serve::TenantId kClinic = 1;
constexpr serve::TenantId kResearch = 2;

struct Scenario {
  std::string label;
  std::vector<loadgen::TenantReport> reports;
};

serve::ServerConfig server_config(std::shared_ptr<TenantRegistry> registry) {
  serve::ServerConfig cfg;
  cfg.queue.capacity = 32;
  cfg.queue.policy = serve::OverloadPolicy::kDropExpired;
  cfg.batcher.max_batch_size = 2;
  cfg.batcher.max_wait_ms = 2.0;
  cfg.batcher.interactive_max_wait_ms = 0.0;
  cfg.batcher.interactive_max_batch_size = 1;
  cfg.degrade.queue_depth_high = 16;
  cfg.degrade.queue_depth_low = 4;
  cfg.degrade.min_dwell_ms = 25.0;
  cfg.tenants = std::move(registry);
  return cfg;
}

Scenario run_scenario(const std::string& label,
                      const std::vector<serve::ModelSpec>& ladder,
                      std::shared_ptr<TenantRegistry> registry,
                      const std::vector<loadgen::TenantWorkload>& workloads,
                      const loadgen::RunConfig& run_cfg) {
  serve::InferenceServer server(ladder, server_config(std::move(registry)));
  auto submit = [&server](serve::Priority p, tensor::TensorI8 input,
                          double deadline_ms, serve::TenantId tenant) {
    return server.submit(p, std::move(input), deadline_ms, tenant);
  };
  Scenario s;
  s.label = label;
  s.reports = loadgen::run_open_loop(submit, workloads, run_cfg);
  return s;
}

const loadgen::TenantReport* find_report(const Scenario& s,
                                         const std::string& name) {
  for (const auto& r : s.reports) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  loadgen::RunConfig run_cfg;
  run_cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  run_cfg.input_size = cli.get_int("input", 32);
  // Defaults put the clinic at a meaningful operating point (~40% of the
  // single simulated accelerator) with enough samples (~360) that p99 is a
  // real percentile rather than the max, and give research a small batch
  // contract the bucket can visibly clamp.
  const double duration_s = cli.get_double("duration-s", 6.0);
  const double clinic_rate = cli.get_double("clinic-rate", 60.0);
  const double research_rate = cli.get_double("research-rate", 4.0);
  const double storm_mult = cli.get_double("storm-mult", 10.0);
  const double deadline_ms = cli.get_double("deadline-ms", 250.0);
  const double tolerance = cli.get_double("tolerance", 0.20);
  const std::string json_path = cli.get("json", "");
  const bool strict = cli.get_bool("strict", false);

  std::printf("building ladder:");
  std::vector<serve::ModelSpec> ladder;
  for (const char* name : {"4M", "2M"}) {
    std::printf(" %s", name);
    std::fflush(stdout);
    ladder.push_back({name,
                      core::build_timing_xmodel(name, dpu::DpuArch::b4096(),
                                                run_cfg.input_size),
                      4});
  }
  std::printf(" done\n");

  // The tenant contract: the clinic bought interactive capacity with slack
  // for jitter; research bought exactly its contracted batch rate. The
  // storm pushes research to 10x that contract — the bucket, not the
  // clinic, absorbs the difference (everything beyond rate+burst is
  // throttled at the door and never queues).
  const auto make_registry = [&] {
    auto registry = std::make_shared<TenantRegistry>();
    registry->add({kClinic, "clinic", /*rate=*/clinic_rate * 1.5,
                   /*burst=*/clinic_rate / 2.0 + 8.0, /*weight=*/3});
    registry->add({kResearch, "research", /*rate=*/research_rate,
                   /*burst=*/8.0, /*weight=*/1});
    return registry;
  };

  loadgen::TenantWorkload clinic;
  clinic.tenant = kClinic;
  clinic.name = "clinic";
  clinic.arrivals.kind = loadgen::ArrivalKind::kPoisson;
  clinic.arrivals.rate_per_s = clinic_rate;
  clinic.arrivals.duration_s = duration_s;
  clinic.interactive_fraction = 1.0;
  clinic.deadline_ms = deadline_ms;

  loadgen::TenantWorkload research;
  research.tenant = kResearch;
  research.name = "research";
  research.arrivals.kind = loadgen::ArrivalKind::kFlashCrowd;
  research.arrivals.rate_per_s = research_rate;
  research.arrivals.duration_s = duration_s;
  research.arrivals.burst_multiplier = storm_mult;
  research.arrivals.burst_start_s = duration_s * 0.25;
  research.arrivals.burst_len_s = duration_s * 0.5;
  research.interactive_fraction = 0.0;  // batch volumes, no deadline
  research.deadline_ms = 0.0;

  std::printf(
      "open-loop traffic: clinic poisson %.0f req/s (interactive, %.0f ms "
      "deadline), research flash-crowd %.0fx for the middle half of a %.1f s "
      "trace\n",
      clinic_rate, deadline_ms, storm_mult, duration_s);

  // Act 1: clinic alone — its solo SLO baseline.
  const Scenario solo =
      run_scenario("solo", ladder, make_registry(), {clinic}, run_cfg);
  // Act 2: storm with isolation (per-tenant buckets + DRR weights).
  const Scenario storm = run_scenario("storm", ladder, make_registry(),
                                      {clinic, research}, run_cfg);
  // Act 3: the contrast — same storm, no tenancy: both ride the default
  // tenant through one unthrottled FIFO.
  auto flat_clinic = clinic;
  auto flat_research = research;
  flat_clinic.tenant = serve::kDefaultTenant;
  flat_research.tenant = serve::kDefaultTenant;
  flat_clinic.name = "clinic";
  flat_research.name = "research";
  const Scenario unisolated =
      run_scenario("unisolated", ladder, std::make_shared<TenantRegistry>(),
                   {flat_clinic, flat_research}, run_cfg);

  eval::Table table({"Scenario", "Tenant", "Offered", "OK", "Throttled+Drop",
                     "p50 [ms]", "p99 [ms]", "Goodput/s"});
  std::vector<loadgen::TenantReport> all_reports;
  for (const Scenario* s : {&solo, &storm, &unisolated}) {
    for (const auto& r : s->reports) {
      table.add_row({s->label, r.name, std::to_string(r.offered),
                     std::to_string(r.ok), std::to_string(r.dropped()),
                     eval::Table::num(r.p50_ms, 1),
                     eval::Table::num(r.p99_ms, 1),
                     eval::Table::num(r.goodput_per_s, 1)});
      auto tagged = r;
      tagged.name = s->label + "/" + r.name;
      all_reports.push_back(std::move(tagged));
    }
  }
  std::printf("%s\n", table.render().c_str());

  const auto* solo_clinic = find_report(solo, "clinic");
  const auto* storm_clinic = find_report(storm, "clinic");
  bool pass = solo_clinic != nullptr && storm_clinic != nullptr;
  if (pass) {
    const double p99_ratio =
        solo_clinic->p99_ms > 0.0 ? storm_clinic->p99_ms / solo_clinic->p99_ms
                                  : 1.0;
    const double goodput_ratio =
        solo_clinic->goodput_per_s > 0.0
            ? storm_clinic->goodput_per_s / solo_clinic->goodput_per_s
            : 1.0;
    // Ratio OR absolute slack: the SIMD kernel layer dropped per-frame
    // service time ~5x, so solo p99 sits in single-digit milliseconds and
    // one host scheduling hiccup (5-10 ms on a contended box) would blow a
    // pure 20% ratio without any isolation failure. --slack-ms bounds that.
    const double slack_ms = cli.get_double("slack-ms", 10.0);
    const bool p99_ok =
        p99_ratio <= 1.0 + tolerance ||
        storm_clinic->p99_ms <= solo_clinic->p99_ms + slack_ms;
    const bool goodput_ok = goodput_ratio >= 1.0 - tolerance;
    pass = p99_ok && goodput_ok;
    std::printf(
        "isolation: clinic p99 %.1f ms solo -> %.1f ms under storm "
        "(%.2fx, %s %.0f%% / +%.0f ms), goodput %.1f/s -> %.1f/s "
        "(%.2fx, %s %.0f%%)\n",
        solo_clinic->p99_ms, storm_clinic->p99_ms, p99_ratio,
        p99_ok ? "within" : "OUTSIDE", tolerance * 100.0, slack_ms,
        solo_clinic->goodput_per_s, storm_clinic->goodput_per_s,
        goodput_ratio, goodput_ok ? "within" : "OUTSIDE", tolerance * 100.0);
    std::printf("isolation check: %s\n", pass ? "PASS" : "FAIL");
  } else {
    std::printf("isolation check: FAIL (missing clinic report)\n");
  }

  // The loadgen layer already has a report serializer; only the file-write
  // convention is shared.
  bench::write_json_file(json_path, loadgen::to_json(all_reports));
  std::printf(
      "Reading: with isolation the research storm is absorbed by its own\n"
      "token bucket (throttled at the door) and DRR keeps the clinic's\n"
      "dequeue share, so clinic p99/goodput hold near solo. Without tenancy\n"
      "the same storm shares one FIFO and the clinic's tail inflates with\n"
      "the backlog.\n");
  return strict && !pass ? 1 : 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "tenant_isolation: %s\n", e.what());
  return 1;
}
