#include "loadgen/arrival.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <string>

namespace seneca::loadgen {

const char* to_string(ArrivalKind k) {
  switch (k) {
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kDiurnal: return "diurnal";
    case ArrivalKind::kFlashCrowd: return "flash-crowd";
  }
  return "?";
}

ArrivalKind parse_arrival_kind(const std::string& s) {
  if (s == "poisson") return ArrivalKind::kPoisson;
  if (s == "diurnal") return ArrivalKind::kDiurnal;
  if (s == "flash-crowd" || s == "flash") return ArrivalKind::kFlashCrowd;
  throw std::invalid_argument("unknown arrival kind: " + s);
}

namespace {

double diurnal_period(const ArrivalConfig& cfg) {
  return cfg.period_s > 0.0 ? cfg.period_s : cfg.duration_s;
}

double burst_len(const ArrivalConfig& cfg) {
  return cfg.burst_len_s > 0.0 ? cfg.burst_len_s : cfg.duration_s / 5.0;
}

}  // namespace

double ArrivalConfig::rate_at(double t_s) const {
  const double base = base_rate();
  switch (kind) {
    case ArrivalKind::kPoisson:
      return base;
    case ArrivalKind::kDiurnal: {
      const double phase =
          2.0 * std::numbers::pi * t_s / diurnal_period(*this);
      return std::max(0.0, base * (1.0 + amplitude * std::sin(phase)));
    }
    case ArrivalKind::kFlashCrowd: {
      const double len = burst_len(*this);
      const bool in_burst = t_s >= burst_start_s && t_s < burst_start_s + len;
      return in_burst ? base * burst_multiplier : base;
    }
  }
  return base;
}

double ArrivalConfig::peak_rate() const {
  const double base = base_rate();
  switch (kind) {
    case ArrivalKind::kPoisson:
      return base;
    case ArrivalKind::kDiurnal:
      return base * (1.0 + std::max(0.0, amplitude));
    case ArrivalKind::kFlashCrowd:
      return base * std::max(1.0, burst_multiplier);
  }
  return base;
}

double ArrivalConfig::expected_arrivals() const {
  const double base = base_rate();
  switch (kind) {
    case ArrivalKind::kPoisson:
      return base * duration_s;
    case ArrivalKind::kDiurnal: {
      // Integral of base*(1 + A sin(2 pi t / T)) over [0, D].
      const double period = diurnal_period(*this);
      const double w = 2.0 * std::numbers::pi / period;
      return base * duration_s +
             base * amplitude / w * (1.0 - std::cos(w * duration_s));
    }
    case ArrivalKind::kFlashCrowd: {
      const double len =
          std::min(burst_len(*this),
                   std::max(0.0, duration_s - burst_start_s));
      return base * duration_s + base * (burst_multiplier - 1.0) * len;
    }
  }
  return base * duration_s;
}

std::vector<double> generate_arrivals(const ArrivalConfig& cfg,
                                      util::Rng& rng) {
  if (cfg.duration_s <= 0.0) {
    throw std::invalid_argument("generate_arrivals: duration_s must be > 0");
  }
  const double peak = cfg.peak_rate();
  std::vector<double> arrivals;
  if (peak <= 0.0) return arrivals;
  arrivals.reserve(static_cast<std::size_t>(cfg.expected_arrivals() * 1.1) + 8);

  // Lewis-Shedler thinning: candidates from a homogeneous process at the
  // peak rate, each kept with probability rate(t)/peak. For kPoisson the
  // acceptance ratio is 1 and this is the plain exponential-gap sampler.
  double t = 0.0;
  for (;;) {
    double u = rng.uniform();
    while (u <= 0.0) u = rng.uniform();  // log(0) guard
    t += -std::log(u) / peak;
    if (t >= cfg.duration_s) break;
    if (cfg.kind == ArrivalKind::kPoisson ||
        rng.uniform() * peak < cfg.rate_at(t)) {
      arrivals.push_back(t);
    }
  }
  return arrivals;
}

}  // namespace seneca::loadgen
