#include "loadgen/loadgen.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

#include "serve/metrics.hpp"  // nearest_rank_quantile
#include "util/timer.hpp"

namespace seneca::loadgen {

namespace {

using serve::Clock;
using serve::Priority;
using serve::Response;
using serve::Status;

struct TenantRun {
  const TenantWorkload* workload = nullptr;
  std::vector<double> arrivals;     // seconds, already time-scaled
  std::vector<Priority> lanes;      // lane per arrival (seeded choice)
  std::vector<std::future<Response>> futures;
  double wall_s = 0.0;
};

tensor::TensorI8 make_input(std::int64_t size, util::Rng& rng) {
  tensor::TensorI8 x(tensor::Shape{size, size, 1});
  for (auto& v : x) {
    v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  }
  return x;
}

}  // namespace

std::vector<TenantReport> run_open_loop(
    const SubmitFn& submit, const std::vector<TenantWorkload>& workloads,
    const RunConfig& cfg) {
  // Deterministic per-workload streams, independent of replay interleaving:
  // stream i derives from (seed, i) alone.
  util::Rng root(cfg.seed);
  std::vector<TenantRun> runs(workloads.size());
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    TenantRun& run = runs[i];
    run.workload = &workloads[i];
    util::Rng rng = root.split(i + 1);
    run.arrivals = generate_arrivals(workloads[i].arrivals, rng);
    if (cfg.time_scale != 1.0) {
      for (double& t : run.arrivals) t *= cfg.time_scale;
    }
    run.lanes.reserve(run.arrivals.size());
    for (std::size_t a = 0; a < run.arrivals.size(); ++a) {
      run.lanes.push_back(rng.bernoulli(workloads[i].interactive_fraction)
                              ? Priority::kInteractive
                              : Priority::kBatch);
    }
    run.futures.reserve(run.arrivals.size());
  }

  // Open-loop replay: one thread per tenant sleeps to each arrival stamp
  // and submits without waiting on earlier responses. Input frames are
  // generated once per tenant and copied per submit (the serving layer
  // takes ownership of its argument).
  const auto start = Clock::now();
  std::vector<std::thread> replayers;
  replayers.reserve(runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    replayers.emplace_back([&, i] {
      TenantRun& run = runs[i];
      const TenantWorkload& w = *run.workload;
      util::Rng input_rng(cfg.seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
      const tensor::TensorI8 frame = make_input(cfg.input_size, input_rng);
      for (std::size_t a = 0; a < run.arrivals.size(); ++a) {
        const auto due =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(run.arrivals[a]));
        std::this_thread::sleep_until(due);
        const bool interactive = run.lanes[a] == Priority::kInteractive;
        run.futures.push_back(submit(run.lanes[a], frame,
                                     interactive ? w.deadline_ms : 0.0,
                                     w.tenant));
      }
      // Wall time covers the replay plus the drain of this tenant's own
      // responses: goodput is work completed, not work submitted.
      for (auto& f : run.futures) f.wait();
      run.wall_s = std::chrono::duration<double>(Clock::now() - start).count();
    });
  }
  for (auto& t : replayers) t.join();

  std::vector<TenantReport> reports;
  reports.reserve(runs.size());
  for (TenantRun& run : runs) {
    const TenantWorkload& w = *run.workload;
    TenantReport r;
    r.tenant = w.tenant;
    r.name = w.name;
    r.offered = run.futures.size();
    r.wall_s = run.wall_s;
    std::vector<double> ok_ms;
    ok_ms.reserve(run.futures.size());
    for (std::size_t a = 0; a < run.futures.size(); ++a) {
      const Response resp = run.futures[a].get();
      switch (resp.status) {
        case Status::kOk: {
          ++r.ok;
          ok_ms.push_back(resp.total_ms);
          const bool interactive = run.lanes[a] == Priority::kInteractive;
          if (!interactive || resp.total_ms <= w.deadline_ms) {
            ++r.within_deadline;
          }
          break;
        }
        case Status::kRejected: ++r.rejected; break;
        case Status::kExpired: ++r.expired; break;
        case Status::kError: ++r.errors; break;
        // kMigrated is a cluster-internal status; a router converts it
        // before the client future resolves. Counted as rejected if one
        // ever leaks this far.
        case Status::kMigrated: ++r.rejected; break;
      }
    }
    if (!ok_ms.empty()) {
      double sum = 0.0;
      for (double v : ok_ms) sum += v;
      r.mean_ms = sum / static_cast<double>(ok_ms.size());
      r.p50_ms = serve::nearest_rank_quantile(ok_ms, 0.50);
      r.p95_ms = serve::nearest_rank_quantile(ok_ms, 0.95);
      r.p99_ms = serve::nearest_rank_quantile(ok_ms, 0.99);
    }
    if (r.wall_s > 0.0) {
      r.offered_per_s = static_cast<double>(r.offered) / r.wall_s;
      r.goodput_per_s = static_cast<double>(r.within_deadline) / r.wall_s;
    }
    reports.push_back(std::move(r));
  }
  return reports;
}

std::string to_json(const std::vector<TenantReport>& reports) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(4);
  os << "[\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const TenantReport& r = reports[i];
    os << "  {\"tenant\": " << r.tenant << ", \"name\": \"" << r.name
       << "\", \"offered\": " << r.offered << ", \"ok\": " << r.ok
       << ", \"rejected\": " << r.rejected << ", \"expired\": " << r.expired
       << ", \"errors\": " << r.errors
       << ", \"within_deadline\": " << r.within_deadline
       << ", \"wall_s\": " << r.wall_s << ", \"mean_ms\": " << r.mean_ms
       << ", \"p50_ms\": " << r.p50_ms << ", \"p95_ms\": " << r.p95_ms
       << ", \"p99_ms\": " << r.p99_ms
       << ", \"offered_per_s\": " << r.offered_per_s
       << ", \"goodput_per_s\": " << r.goodput_per_s << "}"
       << (i + 1 < reports.size() ? "," : "") << "\n";
  }
  os << "]\n";
  return os.str();
}

}  // namespace seneca::loadgen
