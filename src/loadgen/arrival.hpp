#pragma once
// Open-loop arrival processes for the traffic harness.
//
// The closed-loop sweeps the repo grew up with (serve_demo, serve_scaling)
// cannot model real arrival behaviour: a closed-loop client waits for its
// previous response, so the offered load self-throttles exactly when the
// system saturates — the regime where tail latency and isolation actually
// matter. An open-loop trace fixes arrival times up front (they do not care
// how the server is doing), which is how traffic from a large user
// population behaves: a million independent users do not coordinate their
// clicks with the queue depth.
//
// Three generators, all seeded through util::Rng for bit-reproducible
// traces:
//   kPoisson    — homogeneous Poisson process (exponential inter-arrivals)
//   kDiurnal    — inhomogeneous Poisson, rate(t) modulated by a sinusoid
//                 (the day/night cycle compressed to `period_s`)
//   kFlashCrowd — homogeneous base rate with a burst window at
//                 `burst_multiplier` times the base rate (breaking-news /
//                 mass-casualty surge)
// Inhomogeneous processes use Lewis-Shedler thinning against the peak
// rate, so the trace is an exact sample of the target process.

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace seneca::loadgen {

enum class ArrivalKind : std::uint8_t {
  kPoisson = 0,
  kDiurnal = 1,
  kFlashCrowd = 2,
};

const char* to_string(ArrivalKind k);
ArrivalKind parse_arrival_kind(const std::string& s);

struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::kPoisson;
  /// Base mean arrival rate. The *population framing*: rate_per_s =
  /// users * per_user_rate_per_s; set `users` > 0 to use it.
  double rate_per_s = 100.0;
  double duration_s = 1.0;

  /// Population framing: when users > 0, the effective base rate is
  /// users * per_user_rate_per_s (a million users at 2e-4 req/s each is a
  /// 200 req/s process) — the knob that scales simulated population without
  /// scaling thread count.
  std::uint64_t users = 0;
  double per_user_rate_per_s = 0.0;

  // kDiurnal: rate(t) = base * (1 + amplitude * sin(2*pi*t / period_s)).
  // amplitude in [0, 1]; period defaults to the whole trace (one "day").
  double amplitude = 0.8;
  double period_s = 0.0;  // 0 = duration_s

  // kFlashCrowd: rate is base outside the burst window and
  // base * burst_multiplier within [burst_start_s, burst_start_s + burst_len_s).
  double burst_multiplier = 10.0;
  double burst_start_s = 0.0;
  double burst_len_s = 0.0;  // 0 = duration_s / 5

  double base_rate() const {
    return users > 0 ? static_cast<double>(users) * per_user_rate_per_s
                     : rate_per_s;
  }
  /// Instantaneous rate lambda(t); the thinning envelope is peak_rate().
  double rate_at(double t_s) const;
  double peak_rate() const;
  /// Expected arrival count over the trace (integral of rate_at).
  double expected_arrivals() const;
};

/// Sorted arrival offsets in seconds, all within [0, duration_s). The trace
/// is a deterministic function of (cfg, rng state).
std::vector<double> generate_arrivals(const ArrivalConfig& cfg,
                                      util::Rng& rng);

}  // namespace seneca::loadgen
