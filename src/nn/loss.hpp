#pragma once
// Segmentation training losses. All losses consume the network's softmax
// *probabilities* (channels-last) plus an integer label map, and emit the
// gradient with respect to the probabilities; the Softmax layer's backward
// then maps it onto the logits.
//
// The paper's contribution is the class-weighted Focal Tversky loss
// (Eqs. 1-2: alpha=0.7, beta=0.3, gamma=4/3, weights inversely proportional
// to organ pixel frequency); cross-entropy, Dice, and the unweighted variant
// are provided for the loss-ablation bench.

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace seneca::nn {

using tensor::TensorF;
using LabelMap = tensor::Tensor<std::int32_t>;

class Loss {
 public:
  virtual ~Loss() = default;
  virtual std::string name() const = 0;

  /// Returns the scalar loss and writes d(loss)/d(probs) into grad_probs
  /// (pre-sized to probs.shape(), overwritten). labels holds per-pixel class
  /// ids in [0, C) with numel == probs.numel() / C.
  virtual double compute(const TensorF& probs, const LabelMap& labels,
                         TensorF& grad_probs) const = 0;
};

/// Pixel-averaged categorical cross-entropy.
class CrossEntropyLoss final : public Loss {
 public:
  std::string name() const override { return "cross_entropy"; }
  double compute(const TensorF& probs, const LabelMap& labels,
                 TensorF& grad_probs) const override;
};

/// 1 - mean soft Dice over classes (smooth=1).
class DiceLoss final : public Loss {
 public:
  std::string name() const override { return "dice"; }
  double compute(const TensorF& probs, const LabelMap& labels,
                 TensorF& grad_probs) const override;
};

/// Weighted Focal Tversky loss, Eq. (1)-(2) of the paper:
///   FTL = (1 - sum_c(w_c TI_c) / sum_c(w_c))^gamma
///   TI_c = TP / (TP + alpha*FN + beta*FP)     (soft counts, smooth=1)
class FocalTverskyLoss final : public Loss {
 public:
  FocalTverskyLoss(float alpha, float beta, float gamma,
                   std::vector<float> class_weights);

  /// Paper settings with uniform weights (the "unweighted" ablation arm).
  static FocalTverskyLoss unweighted(std::int64_t num_classes);
  /// Paper settings with weights inversely proportional to the supplied
  /// class pixel frequencies (normalized so they sum to num_classes).
  static FocalTverskyLoss inverse_frequency(const std::vector<double>& freq);

  std::string name() const override { return "focal_tversky"; }
  double compute(const TensorF& probs, const LabelMap& labels,
                 TensorF& grad_probs) const override;

  const std::vector<float>& class_weights() const { return weights_; }
  float alpha() const { return alpha_; }
  float beta() const { return beta_; }
  float gamma() const { return gamma_; }

 private:
  float alpha_;
  float beta_;
  float gamma_;
  std::vector<float> weights_;
};

/// Weighted sum of losses. The SENECA training recipe pairs the weighted
/// Focal Tversky loss (region overlap, class-imbalance aware) with a small
/// cross-entropy term that sharpens per-pixel decisions — without it the
/// soft Tversky optimum tolerates hedged probabilities that argmax to
/// background over low-contrast organs.
class CombinedLoss final : public Loss {
 public:
  CombinedLoss(std::vector<std::unique_ptr<Loss>> losses,
               std::vector<double> weights);

  std::string name() const override { return "combined"; }
  double compute(const TensorF& probs, const LabelMap& labels,
                 TensorF& grad_probs) const override;

 private:
  std::vector<std::unique_ptr<Loss>> losses_;
  std::vector<double> weights_;
};

/// The default SENECA training loss: weighted FTL + ce_weight * CE.
std::unique_ptr<Loss> make_seneca_loss(const std::vector<double>& class_freq,
                                       double ce_weight = 0.3);

}  // namespace seneca::nn
