#pragma once
// 2D convolutional layers used by the SENECA U-Net family: stride-1 "same"
// convolution, stride-2 transposed convolution (the up-sampler), and 2x2
// max pooling. Weight layout is [KH][KW][Cin][Cout] — the layout the DPU's
// output-channel-parallel datapath consumes directly.

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace seneca::nn {

class Conv2D final : public Layer {
 public:
  /// Stride-1, zero-padded "same" convolution with odd kernel size.
  Conv2D(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel = 3);

  std::string type() const override { return "conv2d"; }
  Shape output_shape(const std::vector<Shape>& in) const override;
  void forward(const std::vector<const TensorF*>& in, TensorF& out,
               bool training) override;
  void backward(const std::vector<const TensorF*>& in, const TensorF& out,
                const TensorF& grad_out,
                const std::vector<TensorF*>& grad_in) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }

  void init_he(util::Rng& rng);

  std::int64_t in_channels() const { return in_channels_; }
  std::int64_t out_channels() const { return out_channels_; }
  std::int64_t kernel() const { return kernel_; }
  Param& weight() { return weight_; }
  Param& bias() { return bias_; }

 private:
  std::int64_t in_channels_;
  std::int64_t out_channels_;
  std::int64_t kernel_;
  Param weight_;  // [K][K][Cin][Cout]
  Param bias_;    // [Cout]
};

/// Stride-2, kernel-3 transposed convolution doubling the spatial size
/// (TF Conv2DTranspose(k=3, s=2, padding="same") semantics: H -> 2H).
class TransposedConv2D final : public Layer {
 public:
  TransposedConv2D(std::int64_t in_channels, std::int64_t out_channels,
                   std::int64_t kernel = 3);

  std::string type() const override { return "tconv2d"; }
  Shape output_shape(const std::vector<Shape>& in) const override;
  void forward(const std::vector<const TensorF*>& in, TensorF& out,
               bool training) override;
  void backward(const std::vector<const TensorF*>& in, const TensorF& out,
                const TensorF& grad_out,
                const std::vector<TensorF*>& grad_in) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }

  void init_he(util::Rng& rng);

  std::int64_t in_channels() const { return in_channels_; }
  std::int64_t out_channels() const { return out_channels_; }
  std::int64_t kernel() const { return kernel_; }
  Param& weight() { return weight_; }
  Param& bias() { return bias_; }

 private:
  std::int64_t in_channels_;
  std::int64_t out_channels_;
  std::int64_t kernel_;
  Param weight_;  // [K][K][Cin][Cout]
  Param bias_;    // [Cout]
};

/// 2x2 stride-2 max pooling; requires even spatial dims.
class MaxPool2D final : public Layer {
 public:
  std::string type() const override { return "maxpool2d"; }
  Shape output_shape(const std::vector<Shape>& in) const override;
  void forward(const std::vector<const TensorF*>& in, TensorF& out,
               bool training) override;
  void backward(const std::vector<const TensorF*>& in, const TensorF& out,
                const TensorF& grad_out,
                const std::vector<TensorF*>& grad_in) override;

 private:
  std::vector<std::int64_t> argmax_;  // flat input index per output element
};

}  // namespace seneca::nn
