#pragma once
// 3D convolutional layers for the CT-ORG 3D U-Net comparator (Table V).
// Volumes are channels-last DHWC; weights are [KD][KH][KW][Cin][Cout].
// Shape<5> is the framework's maximum rank, so batch looping stays external
// exactly as in the 2D path.

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace seneca::nn {

class Conv3D final : public Layer {
 public:
  Conv3D(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel = 3);

  std::string type() const override { return "conv3d"; }
  Shape output_shape(const std::vector<Shape>& in) const override;
  void forward(const std::vector<const TensorF*>& in, TensorF& out,
               bool training) override;
  void backward(const std::vector<const TensorF*>& in, const TensorF& out,
                const TensorF& grad_out,
                const std::vector<TensorF*>& grad_in) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }

  void init_he(util::Rng& rng);
  std::int64_t in_channels() const { return in_channels_; }
  std::int64_t out_channels() const { return out_channels_; }
  std::int64_t kernel() const { return kernel_; }

 private:
  std::int64_t in_channels_;
  std::int64_t out_channels_;
  std::int64_t kernel_;
  Param weight_;  // [K][K][K][Cin] flattened with Cout innermost: rank-5 max
  Param bias_;
};

/// Stride-2 kernel-3 transposed 3D convolution: D,H,W each double.
class TransposedConv3D final : public Layer {
 public:
  TransposedConv3D(std::int64_t in_channels, std::int64_t out_channels);

  std::string type() const override { return "tconv3d"; }
  Shape output_shape(const std::vector<Shape>& in) const override;
  void forward(const std::vector<const TensorF*>& in, TensorF& out,
               bool training) override;
  void backward(const std::vector<const TensorF*>& in, const TensorF& out,
                const TensorF& grad_out,
                const std::vector<TensorF*>& grad_in) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }

  void init_he(util::Rng& rng);

 private:
  std::int64_t in_channels_;
  std::int64_t out_channels_;
  static constexpr std::int64_t kKernel = 3;
  Param weight_;
  Param bias_;
};

/// 2x2x2 stride-2 max pooling; requires even D, H, W.
class MaxPool3D final : public Layer {
 public:
  std::string type() const override { return "maxpool3d"; }
  Shape output_shape(const std::vector<Shape>& in) const override;
  void forward(const std::vector<const TensorF*>& in, TensorF& out,
               bool training) override;
  void backward(const std::vector<const TensorF*>& in, const TensorF& out,
                const TensorF& grad_out,
                const std::vector<TensorF*>& grad_in) override;

 private:
  std::vector<std::int64_t> argmax_;
};

}  // namespace seneca::nn
