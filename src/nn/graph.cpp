#include "nn/graph.hpp"

#include <stdexcept>

#include "util/io.hpp"

namespace seneca::nn {

int Graph::add_input(const std::string& name, Shape shape) {
  if (input_id_ != -1) throw std::logic_error("Graph: input already declared");
  Node node;
  node.name = name;
  node.shape = shape;
  nodes_.push_back(std::move(node));
  input_id_ = static_cast<int>(nodes_.size()) - 1;
  return input_id_;
}

int Graph::add(const std::string& name, std::unique_ptr<Layer> layer,
               std::vector<int> inputs) {
  if (inputs.empty()) throw std::invalid_argument("Graph::add: no inputs");
  std::vector<Shape> in_shapes;
  in_shapes.reserve(inputs.size());
  for (int id : inputs) {
    if (id < 0 || id >= static_cast<int>(nodes_.size())) {
      throw std::invalid_argument("Graph::add: bad input id for " + name);
    }
    in_shapes.push_back(nodes_[static_cast<std::size_t>(id)].shape);
  }
  Node node;
  node.name = name;
  node.shape = layer->output_shape(in_shapes);
  node.layer = std::move(layer);
  node.inputs = std::move(inputs);
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

void Graph::set_output(int node_id) {
  if (node_id < 0 || node_id >= static_cast<int>(nodes_.size())) {
    throw std::invalid_argument("Graph::set_output: bad node id");
  }
  output_id_ = node_id;
}

const TensorF& Graph::forward(const TensorF& input, bool training) {
  if (input_id_ == -1 || output_id_ == -1) {
    throw std::logic_error("Graph::forward: graph not finalized");
  }
  if (input.shape() != nodes_[static_cast<std::size_t>(input_id_)].shape) {
    throw std::invalid_argument(
        "Graph::forward: input shape " + input.shape().to_string() +
        " != declared " + nodes_[static_cast<std::size_t>(input_id_)].shape.to_string());
  }
  activations_.resize(nodes_.size());
  activations_[static_cast<std::size_t>(input_id_)] = input;

  // Nodes are added in topological order by construction.
  for (std::size_t id = 0; id < nodes_.size(); ++id) {
    Node& node = nodes_[id];
    if (!node.layer) continue;
    std::vector<const TensorF*> ins;
    ins.reserve(node.inputs.size());
    for (int in_id : node.inputs) {
      ins.push_back(&activations_[static_cast<std::size_t>(in_id)]);
    }
    TensorF& out = activations_[id];
    if (out.shape() != node.shape) out = TensorF(node.shape);
    node.layer->forward(ins, out, training);
  }
  return activations_[static_cast<std::size_t>(output_id_)];
}

void Graph::backward(const TensorF& grad_output) {
  if (activations_.size() != nodes_.size()) {
    throw std::logic_error("Graph::backward: no forward pass recorded");
  }
  grads_.resize(nodes_.size());
  for (std::size_t id = 0; id < nodes_.size(); ++id) {
    if (grads_[id].shape() != nodes_[id].shape) {
      grads_[id] = TensorF(nodes_[id].shape, 0.f);
    } else {
      grads_[id].fill(0.f);
    }
  }
  grads_[static_cast<std::size_t>(output_id_)] = grad_output;

  for (std::size_t idx = nodes_.size(); idx-- > 0;) {
    Node& node = nodes_[idx];
    if (!node.layer) continue;
    std::vector<const TensorF*> ins;
    std::vector<TensorF*> grad_ins;
    ins.reserve(node.inputs.size());
    grad_ins.reserve(node.inputs.size());
    for (int in_id : node.inputs) {
      ins.push_back(&activations_[static_cast<std::size_t>(in_id)]);
      grad_ins.push_back(&grads_[static_cast<std::size_t>(in_id)]);
    }
    node.layer->backward(ins, activations_[idx], grads_[idx], grad_ins);
  }
}

void Graph::zero_grad() {
  for (Param* p : params()) p->grad.fill(0.f);
}

std::vector<Param*> Graph::params() {
  std::vector<Param*> out;
  for (auto& node : nodes_) {
    if (!node.layer) continue;
    for (Param* p : node.layer->params()) out.push_back(p);
  }
  return out;
}

std::int64_t Graph::num_parameters() {
  std::int64_t n = 0;
  for (Param* p : params()) n += p->value.numel();
  return n;
}

namespace {
/// Every serializable tensor of the graph: trainable parameters plus layer
/// state (batch-norm running statistics), in deterministic order.
std::vector<std::pair<std::string, TensorF*>> named_tensors(
    std::vector<Graph::Node>& nodes) {
  std::vector<std::pair<std::string, TensorF*>> named;
  for (auto& node : nodes) {
    if (!node.layer) continue;
    for (Param* p : node.layer->params()) {
      named.emplace_back(node.name + "." + p->name, &p->value);
    }
    for (auto& [name, tensor] : node.layer->state()) {
      named.emplace_back(node.name + "." + name, tensor);
    }
  }
  return named;
}
}  // namespace

void Graph::save_weights(const std::filesystem::path& path) {
  util::BinaryWriter w;
  w.str("SENECAW2");
  auto named = named_tensors(nodes_);
  w.u32(static_cast<std::uint32_t>(named.size()));
  for (auto& [name, tensor] : named) {
    w.str(name);
    w.u32(static_cast<std::uint32_t>(tensor->shape().rank()));
    for (std::size_t d = 0; d < tensor->shape().rank(); ++d) {
      w.u64(static_cast<std::uint64_t>(tensor->shape()[d]));
    }
    w.bytes(tensor->data(), sizeof(float) * static_cast<std::size_t>(tensor->numel()));
  }
  util::write_file(path, w.data().data(), w.data().size());
}

void Graph::load_weights(const std::filesystem::path& path) {
  util::BinaryReader r(util::read_file(path));
  if (r.str() != "SENECAW2") {
    throw std::runtime_error("load_weights: bad magic in " + path.string());
  }
  const std::uint32_t count = r.u32();
  auto named = named_tensors(nodes_);
  if (named.size() != count) {
    throw std::runtime_error("load_weights: tensor count mismatch");
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::string name = r.str();
    if (name != named[i].first) {
      throw std::runtime_error("load_weights: name mismatch: " + name +
                               " vs " + named[i].first);
    }
    TensorF* tensor = named[i].second;
    const std::uint32_t rank = r.u32();
    if (rank != tensor->shape().rank()) {
      throw std::runtime_error("load_weights: rank mismatch for " + name);
    }
    for (std::uint32_t d = 0; d < rank; ++d) {
      if (static_cast<std::int64_t>(r.u64()) != tensor->shape()[d]) {
        throw std::runtime_error("load_weights: shape mismatch for " + name);
      }
    }
    r.bytes(tensor->data(), sizeof(float) * static_cast<std::size_t>(tensor->numel()));
  }
}

}  // namespace seneca::nn
