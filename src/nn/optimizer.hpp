#pragma once
// First-order optimizers over a Graph's parameter set. Adam is the one the
// paper's TensorFlow training uses implicitly; SGD exists for tests.

#include <cstdint>
#include <vector>

#include "nn/layer.hpp"

namespace seneca::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Applies one update using the accumulated gradients; does NOT zero them.
  virtual void step(const std::vector<Param*>& params) = 0;
  virtual void set_learning_rate(float lr) = 0;
  virtual float learning_rate() const = 0;
};

class Sgd final : public Optimizer {
 public:
  explicit Sgd(float lr, float momentum = 0.f) : lr_(lr), momentum_(momentum) {}
  void step(const std::vector<Param*>& params) override;
  void set_learning_rate(float lr) override { lr_ = lr; }
  float learning_rate() const override { return lr_; }

 private:
  float lr_;
  float momentum_;
  std::vector<TensorF> velocity_;
};

class Adam final : public Optimizer {
 public:
  explicit Adam(float lr = 1e-3f, float beta1 = 0.9f, float beta2 = 0.999f,
                float epsilon = 1e-7f)
      : lr_(lr), beta1_(beta1), beta2_(beta2), epsilon_(epsilon) {}
  void step(const std::vector<Param*>& params) override;
  void set_learning_rate(float lr) override { lr_ = lr; }
  float learning_rate() const override { return lr_; }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float epsilon_;
  std::int64_t t_ = 0;
  std::vector<TensorF> m_;
  std::vector<TensorF> v_;
};

}  // namespace seneca::nn
