#pragma once
// Training loop (Fig. 1 step C): single-sample SGD stream with Adam,
// epoch shuffling, and an optional exponential learning-rate decay. Also
// hosts the argmax prediction helper used everywhere downstream.

#include <functional>
#include <vector>

#include "nn/graph.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

namespace seneca::nn {

struct Sample {
  TensorF image;    // HWC (or DHWC) network input
  LabelMap labels;  // per-pixel class ids, numel == spatial numel
};

struct TrainOptions {
  int epochs = 8;
  float learning_rate = 1e-3f;
  float lr_decay = 1.f;  // multiplied into lr after each epoch
  std::uint64_t shuffle_seed = 7;
  bool verbose = false;
  /// Called after each epoch with (epoch, mean loss); may be empty.
  std::function<void(int, double)> on_epoch;
};

struct TrainReport {
  std::vector<double> epoch_losses;  // mean per-sample loss
  double wall_seconds = 0.0;
  std::int64_t steps = 0;
};

/// Trains `graph` in place. Samples are visited once per epoch in shuffled
/// order; gradients are applied per sample (batch size 1, matching the
/// single-stream layer contract).
TrainReport train(Graph& graph, const Loss& loss,
                  const std::vector<Sample>& data, const TrainOptions& opts);

/// Mean loss over a dataset without updating weights.
double evaluate_loss(Graph& graph, const Loss& loss,
                     const std::vector<Sample>& data);

/// Per-pixel argmax over the channel (last) dimension.
LabelMap predict_labels(const TensorF& probs);

}  // namespace seneca::nn
