#include "nn/layers_common.hpp"

#include <cmath>
#include <stdexcept>

namespace seneca::nn {

namespace {
void require_single_input(const std::vector<Shape>& in, const char* who) {
  if (in.size() != 1) {
    throw std::invalid_argument(std::string(who) + ": expects one input");
  }
}

std::int64_t last_dim(const Shape& s) { return s[s.rank() - 1]; }
}  // namespace

// ---------------------------------------------------------------- ReLU ----

Shape ReLU::output_shape(const std::vector<Shape>& in) const {
  require_single_input(in, "relu");
  return in[0];
}

void ReLU::forward(const std::vector<const TensorF*>& in, TensorF& out, bool) {
  const TensorF& x = *in[0];
  for (std::int64_t i = 0; i < x.numel(); ++i) out[i] = x[i] > 0.f ? x[i] : 0.f;
}

void ReLU::backward(const std::vector<const TensorF*>& in, const TensorF&,
                    const TensorF& grad_out,
                    const std::vector<TensorF*>& grad_in) {
  const TensorF& x = *in[0];
  TensorF& gx = *grad_in[0];
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    if (x[i] > 0.f) gx[i] += grad_out[i];
  }
}

// ----------------------------------------------------------- BatchNorm ----

BatchNorm::BatchNorm(std::int64_t channels, float momentum, float epsilon)
    : channels_(channels),
      momentum_(momentum),
      epsilon_(epsilon),
      gamma_("gamma", Shape{channels}),
      beta_("beta", Shape{channels}),
      running_mean_(Shape{channels}, 0.f),
      running_var_(Shape{channels}, 1.f) {
  gamma_.value.fill(1.f);
}

Shape BatchNorm::output_shape(const std::vector<Shape>& in) const {
  require_single_input(in, "batchnorm");
  if (last_dim(in[0]) != channels_) {
    throw std::invalid_argument("batchnorm: channel mismatch");
  }
  return in[0];
}

void BatchNorm::forward(const std::vector<const TensorF*>& in, TensorF& out,
                        bool training) {
  const TensorF& x = *in[0];
  const std::int64_t c = channels_;
  const std::int64_t rows = x.numel() / c;

  const TensorF* mean = &running_mean_;
  const TensorF* var = &running_var_;
  if (training) {
    if (batch_mean_.shape() != Shape{c}) {
      batch_mean_ = TensorF(Shape{c});
      batch_var_ = TensorF(Shape{c});
    }
    batch_mean_.fill(0.f);
    batch_var_.fill(0.f);
    for (std::int64_t r = 0; r < rows; ++r) {
      const float* px = x.data() + r * c;
      for (std::int64_t ch = 0; ch < c; ++ch) batch_mean_[ch] += px[ch];
    }
    for (std::int64_t ch = 0; ch < c; ++ch) batch_mean_[ch] /= static_cast<float>(rows);
    for (std::int64_t r = 0; r < rows; ++r) {
      const float* px = x.data() + r * c;
      for (std::int64_t ch = 0; ch < c; ++ch) {
        const float d = px[ch] - batch_mean_[ch];
        batch_var_[ch] += d * d;
      }
    }
    for (std::int64_t ch = 0; ch < c; ++ch) batch_var_[ch] /= static_cast<float>(rows);
    for (std::int64_t ch = 0; ch < c; ++ch) {
      running_mean_[ch] = momentum_ * running_mean_[ch] + (1.f - momentum_) * batch_mean_[ch];
      running_var_[ch] = momentum_ * running_var_[ch] + (1.f - momentum_) * batch_var_[ch];
    }
    mean = &batch_mean_;
    var = &batch_var_;
  }

  for (std::int64_t r = 0; r < rows; ++r) {
    const float* px = x.data() + r * c;
    float* po = out.data() + r * c;
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float inv = 1.f / std::sqrt((*var)[ch] + epsilon_);
      po[ch] = gamma_.value[ch] * (px[ch] - (*mean)[ch]) * inv + beta_.value[ch];
    }
  }
}

void BatchNorm::backward(const std::vector<const TensorF*>& in, const TensorF&,
                         const TensorF& grad_out,
                         const std::vector<TensorF*>& grad_in) {
  // Standard batch-norm backward using the cached batch statistics.
  const TensorF& x = *in[0];
  TensorF& gx = *grad_in[0];
  const std::int64_t c = channels_;
  const std::int64_t rows = x.numel() / c;
  const float n = static_cast<float>(rows);

  std::vector<float> sum_dy(static_cast<std::size_t>(c), 0.f);
  std::vector<float> sum_dy_xhat(static_cast<std::size_t>(c), 0.f);
  std::vector<float> inv_std(static_cast<std::size_t>(c));
  for (std::int64_t ch = 0; ch < c; ++ch) {
    inv_std[static_cast<std::size_t>(ch)] = 1.f / std::sqrt(batch_var_[ch] + epsilon_);
  }
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* px = x.data() + r * c;
    const float* pg = grad_out.data() + r * c;
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float xhat = (px[ch] - batch_mean_[ch]) * inv_std[static_cast<std::size_t>(ch)];
      sum_dy[static_cast<std::size_t>(ch)] += pg[ch];
      sum_dy_xhat[static_cast<std::size_t>(ch)] += pg[ch] * xhat;
    }
  }
  for (std::int64_t ch = 0; ch < c; ++ch) {
    gamma_.grad[ch] += sum_dy_xhat[static_cast<std::size_t>(ch)];
    beta_.grad[ch] += sum_dy[static_cast<std::size_t>(ch)];
  }
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* px = x.data() + r * c;
    const float* pg = grad_out.data() + r * c;
    float* pgx = gx.data() + r * c;
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const std::size_t cs = static_cast<std::size_t>(ch);
      const float xhat = (px[ch] - batch_mean_[ch]) * inv_std[cs];
      pgx[ch] += gamma_.value[ch] * inv_std[cs] *
                 (pg[ch] - sum_dy[cs] / n - xhat * sum_dy_xhat[cs] / n);
    }
  }
}

// ------------------------------------------------------------- Dropout ----

Shape Dropout::output_shape(const std::vector<Shape>& in) const {
  require_single_input(in, "dropout");
  return in[0];
}

void Dropout::forward(const std::vector<const TensorF*>& in, TensorF& out,
                      bool training) {
  const TensorF& x = *in[0];
  if (!training || rate_ <= 0.f) {
    std::copy(x.begin(), x.end(), out.begin());
    return;
  }
  mask_.assign(static_cast<std::size_t>(x.numel()), 0);
  const float scale = 1.f / (1.f - rate_);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const bool keep = !rng_.bernoulli(rate_);
    mask_[static_cast<std::size_t>(i)] = keep;
    out[i] = keep ? x[i] * scale : 0.f;
  }
}

void Dropout::backward(const std::vector<const TensorF*>&, const TensorF&,
                       const TensorF& grad_out,
                       const std::vector<TensorF*>& grad_in) {
  TensorF& gx = *grad_in[0];
  if (mask_.empty()) {  // inference-mode forward; identity
    for (std::int64_t i = 0; i < grad_out.numel(); ++i) gx[i] += grad_out[i];
    return;
  }
  const float scale = 1.f / (1.f - rate_);
  for (std::int64_t i = 0; i < grad_out.numel(); ++i) {
    if (mask_[static_cast<std::size_t>(i)]) gx[i] += grad_out[i] * scale;
  }
}

// ------------------------------------------------------------- Softmax ----

Shape Softmax::output_shape(const std::vector<Shape>& in) const {
  require_single_input(in, "softmax");
  return in[0];
}

void Softmax::forward(const std::vector<const TensorF*>& in, TensorF& out,
                      bool) {
  const TensorF& x = *in[0];
  const std::int64_t c = last_dim(x.shape());
  const std::int64_t rows = x.numel() / c;
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* px = x.data() + r * c;
    float* po = out.data() + r * c;
    float mx = px[0];
    for (std::int64_t ch = 1; ch < c; ++ch) mx = std::max(mx, px[ch]);
    float sum = 0.f;
    for (std::int64_t ch = 0; ch < c; ++ch) {
      po[ch] = std::exp(px[ch] - mx);
      sum += po[ch];
    }
    const float inv = 1.f / sum;
    for (std::int64_t ch = 0; ch < c; ++ch) po[ch] *= inv;
  }
}

void Softmax::backward(const std::vector<const TensorF*>&, const TensorF& out,
                       const TensorF& grad_out,
                       const std::vector<TensorF*>& grad_in) {
  // dL/dz_i = p_i * (dL/dp_i - sum_j p_j dL/dp_j), per pixel.
  TensorF& gx = *grad_in[0];
  const std::int64_t c = last_dim(out.shape());
  const std::int64_t rows = out.numel() / c;
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* p = out.data() + r * c;
    const float* g = grad_out.data() + r * c;
    float* pgx = gx.data() + r * c;
    float dot = 0.f;
    for (std::int64_t ch = 0; ch < c; ++ch) dot += p[ch] * g[ch];
    for (std::int64_t ch = 0; ch < c; ++ch) pgx[ch] += p[ch] * (g[ch] - dot);
  }
}

// -------------------------------------------------------------- Concat ----

Shape Concat::output_shape(const std::vector<Shape>& in) const {
  if (in.size() != 2) throw std::invalid_argument("concat: expects two inputs");
  const Shape& a = in[0];
  const Shape& b = in[1];
  if (a.rank() != b.rank()) throw std::invalid_argument("concat: rank mismatch");
  for (std::size_t d = 0; d + 1 < a.rank(); ++d) {
    if (a[d] != b[d]) throw std::invalid_argument("concat: spatial mismatch");
  }
  if (a.rank() == 3) return Shape{a[0], a[1], a[2] + b[2]};
  if (a.rank() == 4) return Shape{a[0], a[1], a[2], a[3] + b[3]};
  throw std::invalid_argument("concat: unsupported rank");
}

void Concat::forward(const std::vector<const TensorF*>& in, TensorF& out,
                     bool) {
  const TensorF& a = *in[0];
  const TensorF& b = *in[1];
  const std::int64_t ca = last_dim(a.shape());
  const std::int64_t cb = last_dim(b.shape());
  const std::int64_t rows = a.numel() / ca;
  for (std::int64_t r = 0; r < rows; ++r) {
    float* po = out.data() + r * (ca + cb);
    const float* pa = a.data() + r * ca;
    const float* pb = b.data() + r * cb;
    std::copy(pa, pa + ca, po);
    std::copy(pb, pb + cb, po + ca);
  }
}

void Concat::backward(const std::vector<const TensorF*>& in, const TensorF&,
                      const TensorF& grad_out,
                      const std::vector<TensorF*>& grad_in) {
  const std::int64_t ca = last_dim(in[0]->shape());
  const std::int64_t cb = last_dim(in[1]->shape());
  const std::int64_t rows = in[0]->numel() / ca;
  TensorF& ga = *grad_in[0];
  TensorF& gb = *grad_in[1];
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* pg = grad_out.data() + r * (ca + cb);
    float* pga = ga.data() + r * ca;
    float* pgb = gb.data() + r * cb;
    for (std::int64_t ch = 0; ch < ca; ++ch) pga[ch] += pg[ch];
    for (std::int64_t ch = 0; ch < cb; ++ch) pgb[ch] += pg[ca + ch];
  }
}

}  // namespace seneca::nn
