#pragma once
// Static computation graph: a DAG of named layer nodes. Used directly for
// FP32 training/inference and walked by the quantizer (src/quant) and the
// DPU compiler (src/dpu) as the single source of network topology.

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace seneca::nn {

class Graph {
 public:
  struct Node {
    std::string name;
    std::unique_ptr<Layer> layer;  // null for the input placeholder
    std::vector<int> inputs;       // node ids
    Shape shape;                   // inferred output shape
  };

  /// Declares the single input placeholder; must be called first.
  int add_input(const std::string& name, Shape shape);

  /// Adds a layer node consuming the outputs of `inputs`. Returns node id.
  int add(const std::string& name, std::unique_ptr<Layer> layer,
          std::vector<int> inputs);

  void set_output(int node_id);
  int output_id() const { return output_id_; }
  int input_id() const { return input_id_; }

  std::size_t num_nodes() const { return nodes_.size(); }
  const Node& node(int id) const { return nodes_[static_cast<std::size_t>(id)]; }
  Node& node(int id) { return nodes_[static_cast<std::size_t>(id)]; }

  /// Runs a forward pass; the returned reference stays valid until the next
  /// forward call. Activations of every node stay resident (activation()).
  const TensorF& forward(const TensorF& input, bool training = false);

  /// Activation of node `id` from the most recent forward pass.
  const TensorF& activation(int id) const {
    return activations_[static_cast<std::size_t>(id)];
  }

  /// Backward pass from d(loss)/d(output); requires a preceding
  /// forward(training=true). Parameter gradients accumulate into params().
  void backward(const TensorF& grad_output);

  /// Zeroes all parameter gradients.
  void zero_grad();

  std::vector<Param*> params();

  /// Total number of trainable scalars.
  std::int64_t num_parameters();

  /// Binary weight (de)serialization keyed by "<node>.<param>" names; load
  /// throws std::runtime_error on any name/shape mismatch.
  void save_weights(const std::filesystem::path& path);
  void load_weights(const std::filesystem::path& path);

 private:
  std::vector<Node> nodes_;
  std::vector<TensorF> activations_;
  std::vector<TensorF> grads_;
  int input_id_ = -1;
  int output_id_ = -1;
};

}  // namespace seneca::nn
