#include "nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace seneca::nn {

void Sgd::step(const std::vector<Param*>& params) {
  if (momentum_ > 0.f && velocity_.size() != params.size()) {
    velocity_.clear();
    for (Param* p : params) velocity_.emplace_back(p->value.shape(), 0.f);
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    Param& p = *params[i];
    if (momentum_ > 0.f) {
      TensorF& vel = velocity_[i];
      for (std::int64_t j = 0; j < p.value.numel(); ++j) {
        vel[j] = momentum_ * vel[j] + p.grad[j];
        p.value[j] -= lr_ * vel[j];
      }
    } else {
      for (std::int64_t j = 0; j < p.value.numel(); ++j) {
        p.value[j] -= lr_ * p.grad[j];
      }
    }
  }
}

void Adam::step(const std::vector<Param*>& params) {
  if (m_.size() != params.size()) {
    m_.clear();
    v_.clear();
    for (Param* p : params) {
      m_.emplace_back(p->value.shape(), 0.f);
      v_.emplace_back(p->value.shape(), 0.f);
    }
    t_ = 0;
  }
  ++t_;
  const float bc1 = 1.f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    Param& p = *params[i];
    TensorF& m = m_[i];
    TensorF& v = v_[i];
    for (std::int64_t j = 0; j < p.value.numel(); ++j) {
      const float g = p.grad[j];
      m[j] = beta1_ * m[j] + (1.f - beta1_) * g;
      v[j] = beta2_ * v[j] + (1.f - beta2_) * g * g;
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      p.value[j] -= lr_ * mhat / (std::sqrt(vhat) + epsilon_);
    }
  }
}

}  // namespace seneca::nn
