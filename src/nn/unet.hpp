#pragma once
// U-Net builders (Section III-B). The 2D builder produces the SENECA model
// family of Table II parameterized by depth (encoder stacks) and base filter
// count; the 3D builder produces the CT-ORG comparator of Table V.
//
// A config with depth=4 yields the paper's "9 layer" network
// (4 encoder stacks + bottleneck + 4 decoder stacks); depth=5 yields the
// "11 layer" one.

#include <cstdint>
#include <memory>
#include <string>

#include "nn/graph.hpp"

namespace seneca::nn {

struct UNet2DConfig {
  std::string name = "unet";
  std::int64_t input_size = 256;   // square input, H == W
  std::int64_t in_channels = 1;    // grayscale CT
  std::int64_t num_classes = 6;    // 5 organs + background
  int depth = 4;                   // encoder stacks; 2*depth+1 "layers"
  std::int64_t base_filters = 8;   // filters of the first stack, doubling down
  float dropout = 0.1f;
  std::uint64_t seed = 42;

  /// Paper nomenclature: stacks along the encode-bottleneck-decode path.
  int layers() const { return 2 * depth + 1; }
};

/// Builds (and He-initializes) the full 2D U-Net graph, output = softmax
/// probability maps of shape [S, S, num_classes].
std::unique_ptr<Graph> build_unet2d(const UNet2DConfig& cfg);

struct UNet3DConfig {
  std::string name = "unet3d";
  std::int64_t depth_vox = 32;  // volume D
  std::int64_t input_size = 64; // H == W
  std::int64_t in_channels = 1;
  std::int64_t num_classes = 6;
  int depth = 3;
  std::int64_t base_filters = 8;
  float dropout = 0.1f;
  std::uint64_t seed = 42;
};

std::unique_ptr<Graph> build_unet3d(const UNet3DConfig& cfg);

}  // namespace seneca::nn
