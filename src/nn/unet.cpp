#include "nn/unet.hpp"

#include <stdexcept>
#include <vector>

#include "nn/layers2d.hpp"
#include "nn/layers3d.hpp"
#include "nn/layers_common.hpp"
#include "util/rng.hpp"

namespace seneca::nn {

namespace {
std::string stack_name(const char* prefix, int level, const char* op) {
  return std::string(prefix) + std::to_string(level) + "_" + op;
}
}  // namespace

std::unique_ptr<Graph> build_unet2d(const UNet2DConfig& cfg) {
  if (cfg.input_size % (1ll << cfg.depth) != 0) {
    throw std::invalid_argument("build_unet2d: input not divisible by 2^depth");
  }
  util::Rng rng(cfg.seed);
  auto graph = std::make_unique<Graph>();
  int cur = graph->add_input("input",
                             Shape{cfg.input_size, cfg.input_size, cfg.in_channels});

  auto conv_bn_relu = [&](int in, const std::string& base, std::int64_t ci,
                          std::int64_t co) {
    auto conv = std::make_unique<Conv2D>(ci, co);
    conv->init_he(rng);
    int id = graph->add(base + "_conv", std::move(conv), {in});
    id = graph->add(base + "_bn", std::make_unique<BatchNorm>(co), {id});
    id = graph->add(base + "_relu", std::make_unique<ReLU>(), {id});
    return id;
  };

  // Encoder: two conv+BN+ReLU, skip tap, 2x2 max pool, dropout (Fig. 1 / §III-B).
  std::vector<int> skips;
  std::int64_t ci = cfg.in_channels;
  for (int level = 0; level < cfg.depth; ++level) {
    const std::int64_t f = cfg.base_filters << level;
    cur = conv_bn_relu(cur, stack_name("enc", level, "a"), ci, f);
    cur = conv_bn_relu(cur, stack_name("enc", level, "b"), f, f);
    skips.push_back(cur);
    cur = graph->add(stack_name("enc", level, "pool"),
                     std::make_unique<MaxPool2D>(), {cur});
    cur = graph->add(stack_name("enc", level, "drop"),
                     std::make_unique<Dropout>(cfg.dropout, cfg.seed + 100 + static_cast<std::uint64_t>(level)),
                     {cur});
    ci = f;
  }

  // Bottleneck.
  const std::int64_t fb = cfg.base_filters << cfg.depth;
  cur = conv_bn_relu(cur, "bott_a", ci, fb);
  cur = conv_bn_relu(cur, "bott_b", fb, fb);

  // Decoder: transposed conv up-sampling, concat with skip, two conv+BN+ReLU.
  std::int64_t fprev = fb;
  for (int level = cfg.depth - 1; level >= 0; --level) {
    const std::int64_t f = cfg.base_filters << level;
    auto tconv = std::make_unique<TransposedConv2D>(fprev, f);
    tconv->init_he(rng);
    cur = graph->add(stack_name("dec", level, "up"), std::move(tconv), {cur});
    cur = graph->add(stack_name("dec", level, "concat"),
                     std::make_unique<Concat>(),
                     {cur, skips[static_cast<std::size_t>(level)]});
    cur = conv_bn_relu(cur, stack_name("dec", level, "a"), 2 * f, f);
    cur = conv_bn_relu(cur, stack_name("dec", level, "b"), f, f);
    cur = graph->add(stack_name("dec", level, "drop"),
                     std::make_unique<Dropout>(cfg.dropout, cfg.seed + 200 + static_cast<std::uint64_t>(level)),
                     {cur});
    fprev = f;
  }

  // Head: six 3x3 filters + softmax (§III-B).
  auto head = std::make_unique<Conv2D>(cfg.base_filters, cfg.num_classes);
  head->init_he(rng);
  cur = graph->add("head_conv", std::move(head), {cur});
  cur = graph->add("head_softmax", std::make_unique<Softmax>(), {cur});
  graph->set_output(cur);
  return graph;
}

std::unique_ptr<Graph> build_unet3d(const UNet3DConfig& cfg) {
  if (cfg.input_size % (1ll << cfg.depth) != 0 ||
      cfg.depth_vox % (1ll << cfg.depth) != 0) {
    throw std::invalid_argument("build_unet3d: dims not divisible by 2^depth");
  }
  util::Rng rng(cfg.seed);
  auto graph = std::make_unique<Graph>();
  int cur = graph->add_input(
      "input", Shape{cfg.depth_vox, cfg.input_size, cfg.input_size, cfg.in_channels});

  auto conv_bn_relu = [&](int in, const std::string& base, std::int64_t ci,
                          std::int64_t co) {
    auto conv = std::make_unique<Conv3D>(ci, co);
    conv->init_he(rng);
    int id = graph->add(base + "_conv", std::move(conv), {in});
    id = graph->add(base + "_bn", std::make_unique<BatchNorm>(co), {id});
    id = graph->add(base + "_relu", std::make_unique<ReLU>(), {id});
    return id;
  };

  std::vector<int> skips;
  std::int64_t ci = cfg.in_channels;
  for (int level = 0; level < cfg.depth; ++level) {
    const std::int64_t f = cfg.base_filters << level;
    cur = conv_bn_relu(cur, stack_name("enc", level, "a"), ci, f);
    cur = conv_bn_relu(cur, stack_name("enc", level, "b"), f, f);
    skips.push_back(cur);
    cur = graph->add(stack_name("enc", level, "pool"),
                     std::make_unique<MaxPool3D>(), {cur});
    cur = graph->add(stack_name("enc", level, "drop"),
                     std::make_unique<Dropout>(cfg.dropout, cfg.seed + 100 + static_cast<std::uint64_t>(level)),
                     {cur});
    ci = f;
  }

  const std::int64_t fb = cfg.base_filters << cfg.depth;
  cur = conv_bn_relu(cur, "bott_a", ci, fb);
  cur = conv_bn_relu(cur, "bott_b", fb, fb);

  std::int64_t fprev = fb;
  for (int level = cfg.depth - 1; level >= 0; --level) {
    const std::int64_t f = cfg.base_filters << level;
    auto tconv = std::make_unique<TransposedConv3D>(fprev, f);
    tconv->init_he(rng);
    cur = graph->add(stack_name("dec", level, "up"), std::move(tconv), {cur});
    cur = graph->add(stack_name("dec", level, "concat"),
                     std::make_unique<Concat>(),
                     {cur, skips[static_cast<std::size_t>(level)]});
    cur = conv_bn_relu(cur, stack_name("dec", level, "a"), 2 * f, f);
    cur = conv_bn_relu(cur, stack_name("dec", level, "b"), f, f);
    fprev = f;
  }

  auto head = std::make_unique<Conv3D>(cfg.base_filters, cfg.num_classes);
  head->init_he(rng);
  cur = graph->add("head_conv", std::move(head), {cur});
  cur = graph->add("head_softmax", std::make_unique<Softmax>(), {cur});
  graph->set_output(cur);
  return graph;
}

}  // namespace seneca::nn
