#include "nn/layers2d.hpp"

#include <cmath>
#include <stdexcept>

namespace seneca::nn {

namespace {
void he_init(TensorF& w, std::int64_t fan_in, util::Rng& rng) {
  const float stddev = std::sqrt(2.f / static_cast<float>(fan_in));
  for (auto& v : w) v = static_cast<float>(rng.gauss(0.0, stddev));
}
}  // namespace

// -------------------------------------------------------------- Conv2D ----

Conv2D::Conv2D(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      weight_("weight", Shape{kernel, kernel, in_channels, out_channels}),
      bias_("bias", Shape{out_channels}) {
  if (kernel % 2 == 0) throw std::invalid_argument("Conv2D: even kernel");
}

void Conv2D::init_he(util::Rng& rng) {
  he_init(weight_.value, kernel_ * kernel_ * in_channels_, rng);
  bias_.value.fill(0.f);
}

Shape Conv2D::output_shape(const std::vector<Shape>& in) const {
  if (in.size() != 1 || in[0].rank() != 3 || in[0][2] != in_channels_) {
    throw std::invalid_argument("Conv2D: bad input shape");
  }
  return Shape{in[0][0], in[0][1], out_channels_};
}

void Conv2D::forward(const std::vector<const TensorF*>& in, TensorF& out,
                     bool) {
  const TensorF& x = *in[0];
  const std::int64_t h = x.shape()[0];
  const std::int64_t w = x.shape()[1];
  const std::int64_t ci = in_channels_;
  const std::int64_t co = out_channels_;
  const std::int64_t k = kernel_;
  const std::int64_t pad = k / 2;
  const float* wp = weight_.value.data();

  for (std::int64_t oy = 0; oy < h; ++oy) {
    for (std::int64_t ox = 0; ox < w; ++ox) {
      float* po = out.data() + (oy * w + ox) * co;
      for (std::int64_t c = 0; c < co; ++c) po[c] = bias_.value[c];
      for (std::int64_t ky = 0; ky < k; ++ky) {
        const std::int64_t iy = oy + ky - pad;
        if (iy < 0 || iy >= h) continue;
        for (std::int64_t kx = 0; kx < k; ++kx) {
          const std::int64_t ix = ox + kx - pad;
          if (ix < 0 || ix >= w) continue;
          const float* px = x.data() + (iy * w + ix) * ci;
          const float* pw = wp + ((ky * k + kx) * ci) * co;
          for (std::int64_t c = 0; c < ci; ++c) {
            const float xv = px[c];
            const float* pwc = pw + c * co;
            for (std::int64_t o = 0; o < co; ++o) po[o] += xv * pwc[o];
          }
        }
      }
    }
  }
}

void Conv2D::backward(const std::vector<const TensorF*>& in, const TensorF&,
                      const TensorF& grad_out,
                      const std::vector<TensorF*>& grad_in) {
  const TensorF& x = *in[0];
  TensorF& gx = *grad_in[0];
  const std::int64_t h = x.shape()[0];
  const std::int64_t w = x.shape()[1];
  const std::int64_t ci = in_channels_;
  const std::int64_t co = out_channels_;
  const std::int64_t k = kernel_;
  const std::int64_t pad = k / 2;
  const float* wp = weight_.value.data();
  float* gwp = weight_.grad.data();

  for (std::int64_t oy = 0; oy < h; ++oy) {
    for (std::int64_t ox = 0; ox < w; ++ox) {
      const float* pg = grad_out.data() + (oy * w + ox) * co;
      for (std::int64_t o = 0; o < co; ++o) bias_.grad[o] += pg[o];
      for (std::int64_t ky = 0; ky < k; ++ky) {
        const std::int64_t iy = oy + ky - pad;
        if (iy < 0 || iy >= h) continue;
        for (std::int64_t kx = 0; kx < k; ++kx) {
          const std::int64_t ix = ox + kx - pad;
          if (ix < 0 || ix >= w) continue;
          const float* px = x.data() + (iy * w + ix) * ci;
          float* pgx = gx.data() + (iy * w + ix) * ci;
          const float* pw = wp + ((ky * k + kx) * ci) * co;
          float* pgw = gwp + ((ky * k + kx) * ci) * co;
          for (std::int64_t c = 0; c < ci; ++c) {
            const float xv = px[c];
            const float* pwc = pw + c * co;
            float* pgwc = pgw + c * co;
            float acc = 0.f;
            for (std::int64_t o = 0; o < co; ++o) {
              acc += pwc[o] * pg[o];
              pgwc[o] += xv * pg[o];
            }
            pgx[c] += acc;
          }
        }
      }
    }
  }
}

// ---------------------------------------------------- TransposedConv2D ----

TransposedConv2D::TransposedConv2D(std::int64_t in_channels,
                                   std::int64_t out_channels,
                                   std::int64_t kernel)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      weight_("weight", Shape{kernel, kernel, in_channels, out_channels}),
      bias_("bias", Shape{out_channels}) {
  if (kernel != 3) {
    throw std::invalid_argument("TransposedConv2D: only k=3 supported");
  }
}

void TransposedConv2D::init_he(util::Rng& rng) {
  he_init(weight_.value, kernel_ * kernel_ * in_channels_, rng);
  bias_.value.fill(0.f);
}

Shape TransposedConv2D::output_shape(const std::vector<Shape>& in) const {
  if (in.size() != 1 || in[0].rank() != 3 || in[0][2] != in_channels_) {
    throw std::invalid_argument("TransposedConv2D: bad input shape");
  }
  return Shape{in[0][0] * 2, in[0][1] * 2, out_channels_};
}

void TransposedConv2D::forward(const std::vector<const TensorF*>& in,
                               TensorF& out, bool) {
  const TensorF& x = *in[0];
  const std::int64_t h = x.shape()[0];
  const std::int64_t w = x.shape()[1];
  const std::int64_t oh = h * 2;
  const std::int64_t ow = w * 2;
  const std::int64_t ci = in_channels_;
  const std::int64_t co = out_channels_;
  const std::int64_t k = kernel_;
  const float* wp = weight_.value.data();

  for (std::int64_t i = 0; i < out.numel(); i += co) {
    for (std::int64_t o = 0; o < co; ++o) out[i + o] = bias_.value[o];
  }
  // Scatter: out[2*iy - 1 + ky][2*ix - 1 + kx] += x[iy][ix] * W[ky][kx].
  for (std::int64_t iy = 0; iy < h; ++iy) {
    for (std::int64_t ix = 0; ix < w; ++ix) {
      const float* px = x.data() + (iy * w + ix) * ci;
      for (std::int64_t ky = 0; ky < k; ++ky) {
        const std::int64_t oy = 2 * iy - 1 + ky;
        if (oy < 0 || oy >= oh) continue;
        for (std::int64_t kx = 0; kx < k; ++kx) {
          const std::int64_t ox = 2 * ix - 1 + kx;
          if (ox < 0 || ox >= ow) continue;
          float* po = out.data() + (oy * ow + ox) * co;
          const float* pw = wp + ((ky * k + kx) * ci) * co;
          for (std::int64_t c = 0; c < ci; ++c) {
            const float xv = px[c];
            const float* pwc = pw + c * co;
            for (std::int64_t o = 0; o < co; ++o) po[o] += xv * pwc[o];
          }
        }
      }
    }
  }
}

void TransposedConv2D::backward(const std::vector<const TensorF*>& in,
                                const TensorF&, const TensorF& grad_out,
                                const std::vector<TensorF*>& grad_in) {
  const TensorF& x = *in[0];
  TensorF& gx = *grad_in[0];
  const std::int64_t h = x.shape()[0];
  const std::int64_t w = x.shape()[1];
  const std::int64_t oh = h * 2;
  const std::int64_t ow = w * 2;
  const std::int64_t ci = in_channels_;
  const std::int64_t co = out_channels_;
  const std::int64_t k = kernel_;
  const float* wp = weight_.value.data();
  float* gwp = weight_.grad.data();

  for (std::int64_t i = 0; i < grad_out.numel(); i += co) {
    for (std::int64_t o = 0; o < co; ++o) bias_.grad[o] += grad_out[i + o];
  }
  for (std::int64_t iy = 0; iy < h; ++iy) {
    for (std::int64_t ix = 0; ix < w; ++ix) {
      const float* px = x.data() + (iy * w + ix) * ci;
      float* pgx = gx.data() + (iy * w + ix) * ci;
      for (std::int64_t ky = 0; ky < k; ++ky) {
        const std::int64_t oy = 2 * iy - 1 + ky;
        if (oy < 0 || oy >= oh) continue;
        for (std::int64_t kx = 0; kx < k; ++kx) {
          const std::int64_t ox = 2 * ix - 1 + kx;
          if (ox < 0 || ox >= ow) continue;
          const float* pg = grad_out.data() + (oy * ow + ox) * co;
          const float* pw = wp + ((ky * k + kx) * ci) * co;
          float* pgw = gwp + ((ky * k + kx) * ci) * co;
          for (std::int64_t c = 0; c < ci; ++c) {
            const float xv = px[c];
            const float* pwc = pw + c * co;
            float* pgwc = pgw + c * co;
            float acc = 0.f;
            for (std::int64_t o = 0; o < co; ++o) {
              acc += pwc[o] * pg[o];
              pgwc[o] += xv * pg[o];
            }
            pgx[c] += acc;
          }
        }
      }
    }
  }
}

// ----------------------------------------------------------- MaxPool2D ----

Shape MaxPool2D::output_shape(const std::vector<Shape>& in) const {
  if (in.size() != 1 || in[0].rank() != 3) {
    throw std::invalid_argument("MaxPool2D: bad input");
  }
  if (in[0][0] % 2 != 0 || in[0][1] % 2 != 0) {
    throw std::invalid_argument("MaxPool2D: odd spatial dims");
  }
  return Shape{in[0][0] / 2, in[0][1] / 2, in[0][2]};
}

void MaxPool2D::forward(const std::vector<const TensorF*>& in, TensorF& out,
                        bool) {
  const TensorF& x = *in[0];
  const std::int64_t h = x.shape()[0];
  const std::int64_t w = x.shape()[1];
  const std::int64_t c = x.shape()[2];
  const std::int64_t ow = w / 2;
  argmax_.assign(static_cast<std::size_t>(out.numel()), 0);

  for (std::int64_t oy = 0; oy < h / 2; ++oy) {
    for (std::int64_t ox = 0; ox < ow; ++ox) {
      float* po = out.data() + (oy * ow + ox) * c;
      std::int64_t* pa = argmax_.data() + (oy * ow + ox) * c;
      for (std::int64_t ch = 0; ch < c; ++ch) {
        float best = -std::numeric_limits<float>::infinity();
        std::int64_t best_idx = 0;
        for (std::int64_t dy = 0; dy < 2; ++dy) {
          for (std::int64_t dx = 0; dx < 2; ++dx) {
            const std::int64_t idx =
                ((2 * oy + dy) * w + (2 * ox + dx)) * c + ch;
            if (x[idx] > best) {
              best = x[idx];
              best_idx = idx;
            }
          }
        }
        po[ch] = best;
        pa[ch] = best_idx;
      }
    }
  }
}

void MaxPool2D::backward(const std::vector<const TensorF*>&, const TensorF&,
                         const TensorF& grad_out,
                         const std::vector<TensorF*>& grad_in) {
  TensorF& gx = *grad_in[0];
  for (std::int64_t i = 0; i < grad_out.numel(); ++i) {
    gx[argmax_[static_cast<std::size_t>(i)]] += grad_out[i];
  }
}

}  // namespace seneca::nn
