#pragma once
// Rank-generic layers (channels-last): ReLU, BatchNorm, Dropout, Softmax,
// channel Concat. These work unchanged for the 2D (HWC) and 3D (DHWC) nets.

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace seneca::nn {

class ReLU final : public Layer {
 public:
  std::string type() const override { return "relu"; }
  Shape output_shape(const std::vector<Shape>& in) const override;
  void forward(const std::vector<const TensorF*>& in, TensorF& out,
               bool training) override;
  void backward(const std::vector<const TensorF*>& in, const TensorF& out,
                const TensorF& grad_out,
                const std::vector<TensorF*>& grad_in) override;
};

/// Per-channel batch normalization over all leading (spatial) dims of a
/// single sample; running statistics track training batches with momentum
/// and are used at inference — exactly the statistics the quantizer folds
/// into the preceding convolution (Section III-D).
class BatchNorm final : public Layer {
 public:
  explicit BatchNorm(std::int64_t channels, float momentum = 0.9f,
                     float epsilon = 1e-5f);

  std::string type() const override { return "batchnorm"; }
  Shape output_shape(const std::vector<Shape>& in) const override;
  void forward(const std::vector<const TensorF*>& in, TensorF& out,
               bool training) override;
  void backward(const std::vector<const TensorF*>& in, const TensorF& out,
                const TensorF& grad_out,
                const std::vector<TensorF*>& grad_in) override;
  std::vector<Param*> params() override { return {&gamma_, &beta_}; }
  std::vector<std::pair<std::string, TensorF*>> state() override {
    return {{"running_mean", &running_mean_}, {"running_var", &running_var_}};
  }

  std::int64_t channels() const { return channels_; }
  float epsilon() const { return epsilon_; }
  const TensorF& running_mean() const { return running_mean_; }
  const TensorF& running_var() const { return running_var_; }
  const TensorF& gamma() const { return gamma_.value; }
  const TensorF& beta() const { return beta_.value; }
  /// Used by weight (de)serialization of running statistics and by tests.
  TensorF& mutable_running_mean() { return running_mean_; }
  TensorF& mutable_running_var() { return running_var_; }

 private:
  std::int64_t channels_;
  float momentum_;
  float epsilon_;
  Param gamma_;
  Param beta_;
  TensorF running_mean_;
  TensorF running_var_;
  // Cached batch statistics between forward(training) and backward.
  TensorF batch_mean_;
  TensorF batch_var_;
};

/// Inverted dropout: active only during training; a pure pass-through at
/// inference (the Vitis AI quantizer removes it entirely — so does ours).
class Dropout final : public Layer {
 public:
  explicit Dropout(float rate, std::uint64_t seed = 17)
      : rate_(rate), rng_(seed) {}

  std::string type() const override { return "dropout"; }
  Shape output_shape(const std::vector<Shape>& in) const override;
  void forward(const std::vector<const TensorF*>& in, TensorF& out,
               bool training) override;
  void backward(const std::vector<const TensorF*>& in, const TensorF& out,
                const TensorF& grad_out,
                const std::vector<TensorF*>& grad_in) override;
  float rate() const { return rate_; }

 private:
  float rate_;
  util::Rng rng_;
  std::vector<std::uint8_t> mask_;
};

/// Channel-wise softmax over the last dimension (the six class maps).
class Softmax final : public Layer {
 public:
  std::string type() const override { return "softmax"; }
  Shape output_shape(const std::vector<Shape>& in) const override;
  void forward(const std::vector<const TensorF*>& in, TensorF& out,
               bool training) override;
  void backward(const std::vector<const TensorF*>& in, const TensorF& out,
                const TensorF& grad_out,
                const std::vector<TensorF*>& grad_in) override;
};

/// Concatenation of two tensors along the channel (last) dimension; the
/// U-Net skip connections.
class Concat final : public Layer {
 public:
  std::string type() const override { return "concat"; }
  Shape output_shape(const std::vector<Shape>& in) const override;
  void forward(const std::vector<const TensorF*>& in, TensorF& out,
               bool training) override;
  void backward(const std::vector<const TensorF*>& in, const TensorF& out,
                const TensorF& grad_out,
                const std::vector<TensorF*>& grad_in) override;
};

}  // namespace seneca::nn
