#include "nn/trainer.hpp"

#include <numeric>

#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace seneca::nn {

TrainReport train(Graph& graph, const Loss& loss,
                  const std::vector<Sample>& data, const TrainOptions& opts) {
  TrainReport report;
  if (data.empty()) return report;
  Adam optimizer(opts.learning_rate);
  util::Rng rng(opts.shuffle_seed);
  util::Timer timer;

  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);

  TensorF grad_probs;
  float lr = opts.learning_rate;
  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    rng.shuffle(order);
    optimizer.set_learning_rate(lr);
    double epoch_loss = 0.0;
    for (std::size_t idx : order) {
      const Sample& s = data[idx];
      const TensorF& probs = graph.forward(s.image, /*training=*/true);
      if (grad_probs.shape() != probs.shape()) grad_probs = TensorF(probs.shape());
      const double l = loss.compute(probs, s.labels, grad_probs);
      epoch_loss += l;
      graph.zero_grad();
      graph.backward(grad_probs);
      optimizer.step(graph.params());
      ++report.steps;
    }
    epoch_loss /= static_cast<double>(data.size());
    report.epoch_losses.push_back(epoch_loss);
    if (opts.verbose) {
      util::log_info() << "epoch " << (epoch + 1) << "/" << opts.epochs
                       << " loss=" << epoch_loss << " lr=" << lr;
    }
    if (opts.on_epoch) opts.on_epoch(epoch, epoch_loss);
    lr *= opts.lr_decay;
  }
  report.wall_seconds = timer.seconds();
  return report;
}

double evaluate_loss(Graph& graph, const Loss& loss,
                     const std::vector<Sample>& data) {
  if (data.empty()) return 0.0;
  TensorF grad_probs;
  double total = 0.0;
  for (const Sample& s : data) {
    const TensorF& probs = graph.forward(s.image, /*training=*/false);
    if (grad_probs.shape() != probs.shape()) grad_probs = TensorF(probs.shape());
    total += loss.compute(probs, s.labels, grad_probs);
  }
  return total / static_cast<double>(data.size());
}

LabelMap predict_labels(const TensorF& probs) {
  const auto& shape = probs.shape();
  const std::int64_t c = shape[shape.rank() - 1];
  const std::int64_t n = probs.numel() / c;
  Shape label_shape = (shape.rank() == 3) ? Shape{shape[0], shape[1]}
                                          : Shape{shape[0], shape[1], shape[2]};
  LabelMap labels(label_shape);
  for (std::int64_t i = 0; i < n; ++i) {
    const float* p = probs.data() + i * c;
    std::int32_t best = 0;
    for (std::int64_t ch = 1; ch < c; ++ch) {
      if (p[ch] > p[best]) best = static_cast<std::int32_t>(ch);
    }
    labels[i] = best;
  }
  return labels;
}

}  // namespace seneca::nn
