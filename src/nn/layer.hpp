#pragma once
// Layer interface of the SENECA training/inference framework.
//
// Layers operate on single-sample channels-last tensors (HWC for 2D nets,
// DHWC for 3D nets); the batch loop lives in the trainer. Each layer computes
// a forward pass and, for training, a backward pass that accumulates
// gradients into the provided input-gradient tensors. Layers may cache
// intermediate state between a forward(training=true) and the matching
// backward call (the trainer is single-stream).

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace seneca::nn {

using tensor::Shape;
using tensor::TensorF;

/// A trainable parameter: value plus gradient accumulator of the same shape.
struct Param {
  std::string name;
  TensorF value;
  TensorF grad;

  Param(std::string n, Shape shape)
      : name(std::move(n)), value(shape, 0.f), grad(shape, 0.f) {}
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Stable type tag used by the quantizer and DPU compiler to dispatch.
  virtual std::string type() const = 0;

  /// Shape inference; throws std::invalid_argument on illegal inputs.
  virtual Shape output_shape(const std::vector<Shape>& inputs) const = 0;

  /// Forward pass. `out` is pre-sized to output_shape(). `training` enables
  /// stochastic behaviour (dropout) and batch statistics (batch norm).
  virtual void forward(const std::vector<const TensorF*>& inputs, TensorF& out,
                       bool training) = 0;

  /// Backward pass: given d(loss)/d(out), ACCUMULATE d(loss)/d(input_i) into
  /// grad_inputs[i] (pre-sized, possibly already holding gradients from other
  /// consumers) and accumulate parameter gradients.
  virtual void backward(const std::vector<const TensorF*>& inputs,
                        const TensorF& out, const TensorF& grad_out,
                        const std::vector<TensorF*>& grad_inputs) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<Param*> params() { return {}; }

  /// Non-trainable state that must survive serialization (e.g. batch-norm
  /// running statistics), as (name, tensor) pairs.
  virtual std::vector<std::pair<std::string, TensorF*>> state() { return {}; }
};

}  // namespace seneca::nn
