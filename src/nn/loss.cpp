#include "nn/loss.hpp"

#include <cmath>
#include <stdexcept>

namespace seneca::nn {

namespace {
constexpr double kSmooth = 1.0;

std::int64_t channels_of(const TensorF& probs, const LabelMap& labels) {
  const std::int64_t c = probs.shape()[probs.shape().rank() - 1];
  if (labels.numel() * c != probs.numel()) {
    throw std::invalid_argument("loss: labels/probs size mismatch");
  }
  return c;
}
}  // namespace

// -------------------------------------------------------- CrossEntropy ----

double CrossEntropyLoss::compute(const TensorF& probs, const LabelMap& labels,
                                 TensorF& grad_probs) const {
  const std::int64_t c = channels_of(probs, labels);
  const std::int64_t n = labels.numel();
  grad_probs.fill(0.f);
  double loss = 0.0;
  constexpr float kEps = 1e-7f;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int32_t y = labels[i];
    const float p = std::max(probs[i * c + y], kEps);
    loss -= std::log(p);
    grad_probs[i * c + y] = -1.f / (p * static_cast<float>(n));
  }
  return loss / static_cast<double>(n);
}

// ---------------------------------------------------------------- Dice ----

double DiceLoss::compute(const TensorF& probs, const LabelMap& labels,
                         TensorF& grad_probs) const {
  const std::int64_t c = channels_of(probs, labels);
  const std::int64_t n = labels.numel();
  std::vector<double> inter(static_cast<std::size_t>(c), 0.0);
  std::vector<double> psum(static_cast<std::size_t>(c), 0.0);
  std::vector<double> gsum(static_cast<std::size_t>(c), 0.0);
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int32_t y = labels[i];
    gsum[static_cast<std::size_t>(y)] += 1.0;
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const double p = probs[i * c + ch];
      psum[static_cast<std::size_t>(ch)] += p;
      if (ch == y) inter[static_cast<std::size_t>(ch)] += p;
    }
  }
  double loss = 0.0;
  std::vector<double> dnum(static_cast<std::size_t>(c));
  std::vector<double> dden(static_cast<std::size_t>(c));
  for (std::int64_t ch = 0; ch < c; ++ch) {
    const std::size_t cs = static_cast<std::size_t>(ch);
    const double num = 2.0 * inter[cs] + kSmooth;
    const double den = psum[cs] + gsum[cs] + kSmooth;
    loss += 1.0 - num / den;
    dnum[cs] = num;
    dden[cs] = den;
  }
  loss /= static_cast<double>(c);
  // d(dice_c)/dp_ic = (2*g - num/den) / den; loss grad = -1/C * that.
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int32_t y = labels[i];
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const std::size_t cs = static_cast<std::size_t>(ch);
      const double g = (ch == y) ? 1.0 : 0.0;
      const double d = (2.0 * g - dnum[cs] / dden[cs]) / dden[cs];
      grad_probs[i * c + ch] = static_cast<float>(-d / static_cast<double>(c));
    }
  }
  return loss;
}

// -------------------------------------------------------- FocalTversky ----

FocalTverskyLoss::FocalTverskyLoss(float alpha, float beta, float gamma,
                                   std::vector<float> class_weights)
    : alpha_(alpha), beta_(beta), gamma_(gamma),
      weights_(std::move(class_weights)) {
  if (weights_.empty()) throw std::invalid_argument("FTL: empty weights");
}

FocalTverskyLoss FocalTverskyLoss::unweighted(std::int64_t num_classes) {
  return FocalTverskyLoss(0.7f, 0.3f, 4.f / 3.f,
                          std::vector<float>(static_cast<std::size_t>(num_classes), 1.f));
}

FocalTverskyLoss FocalTverskyLoss::inverse_frequency(
    const std::vector<double>& freq) {
  // w_c ∝ 1/sqrt(freq_c) (Section III-C: weights "inversely proportional to
  // the organ dimensions"; the square root tempers the ratio so the rarest
  // class steers training without monopolizing the gradient), floored to
  // avoid an absent class dominating, then normalized to sum to C to keep
  // the loss scale comparable.
  std::vector<float> w(freq.size());
  double sum = 0.0;
  for (std::size_t c = 0; c < freq.size(); ++c) {
    const double f = std::max(freq[c], 1e-4);
    w[c] = static_cast<float>(1.0 / std::sqrt(f));
    sum += w[c];
  }
  const double scale = static_cast<double>(freq.size()) / sum;
  for (auto& v : w) v = static_cast<float>(v * scale);
  return FocalTverskyLoss(0.7f, 0.3f, 4.f / 3.f, std::move(w));
}

double FocalTverskyLoss::compute(const TensorF& probs, const LabelMap& labels,
                                 TensorF& grad_probs) const {
  const std::int64_t c = channels_of(probs, labels);
  if (static_cast<std::size_t>(c) != weights_.size()) {
    throw std::invalid_argument("FTL: weight count != channels");
  }
  const std::int64_t n = labels.numel();

  std::vector<double> tp(static_cast<std::size_t>(c), 0.0);
  std::vector<double> fn(static_cast<std::size_t>(c), 0.0);
  std::vector<double> fp(static_cast<std::size_t>(c), 0.0);
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int32_t y = labels[i];
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const double p = probs[i * c + ch];
      if (ch == y) {
        tp[static_cast<std::size_t>(ch)] += p;
        fn[static_cast<std::size_t>(ch)] += 1.0 - p;
      } else {
        fp[static_cast<std::size_t>(ch)] += p;
      }
    }
  }

  double wsum = 0.0;
  double s = 0.0;
  std::vector<double> num(static_cast<std::size_t>(c));
  std::vector<double> den(static_cast<std::size_t>(c));
  for (std::int64_t ch = 0; ch < c; ++ch) {
    const std::size_t cs = static_cast<std::size_t>(ch);
    num[cs] = tp[cs] + kSmooth;
    den[cs] = tp[cs] + alpha_ * fn[cs] + beta_ * fp[cs] + kSmooth;
    const double ti = num[cs] / den[cs];
    s += weights_[cs] * ti;
    wsum += weights_[cs];
  }
  s /= wsum;
  const double one_minus_s = std::max(1.0 - s, 1e-9);
  const double loss = std::pow(one_minus_s, static_cast<double>(gamma_));

  // dL/dTI_c = -gamma * (1-S)^(gamma-1) * w_c / sum_w
  const double outer =
      static_cast<double>(gamma_) * std::pow(one_minus_s, static_cast<double>(gamma_) - 1.0);
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int32_t y = labels[i];
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const std::size_t cs = static_cast<std::size_t>(ch);
      const double g = (ch == y) ? 1.0 : 0.0;
      // dnum/dp = g ; dden/dp = g - alpha*g + beta*(1-g)
      const double dden = g - alpha_ * g + beta_ * (1.0 - g);
      const double dti = (g * den[cs] - num[cs] * dden) / (den[cs] * den[cs]);
      grad_probs[i * c + ch] =
          static_cast<float>(-outer * (weights_[cs] / wsum) * dti);
    }
  }
  return loss;
}

// ------------------------------------------------------------ Combined ----

CombinedLoss::CombinedLoss(std::vector<std::unique_ptr<Loss>> losses,
                           std::vector<double> weights)
    : losses_(std::move(losses)), weights_(std::move(weights)) {
  if (losses_.empty() || losses_.size() != weights_.size()) {
    throw std::invalid_argument("CombinedLoss: losses/weights mismatch");
  }
}

double CombinedLoss::compute(const TensorF& probs, const LabelMap& labels,
                             TensorF& grad_probs) const {
  TensorF part(probs.shape());
  grad_probs.fill(0.f);
  double total = 0.0;
  for (std::size_t i = 0; i < losses_.size(); ++i) {
    total += weights_[i] * losses_[i]->compute(probs, labels, part);
    const float w = static_cast<float>(weights_[i]);
    for (std::int64_t e = 0; e < probs.numel(); ++e) {
      grad_probs[e] += w * part[e];
    }
  }
  return total;
}

std::unique_ptr<Loss> make_seneca_loss(const std::vector<double>& class_freq,
                                       double ce_weight) {
  std::vector<std::unique_ptr<Loss>> losses;
  losses.push_back(std::make_unique<FocalTverskyLoss>(
      FocalTverskyLoss::inverse_frequency(class_freq)));
  losses.push_back(std::make_unique<CrossEntropyLoss>());
  return std::make_unique<CombinedLoss>(std::move(losses),
                                        std::vector<double>{1.0, ce_weight});
}

}  // namespace seneca::nn
