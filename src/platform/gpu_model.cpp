#include "platform/gpu_model.hpp"

#include "nn/layers2d.hpp"
#include "nn/layers3d.hpp"

namespace seneca::platform {

namespace {

struct OpCost {
  double flops = 0.0;
  double bytes = 0.0;
};

OpCost node_cost(nn::Graph& graph, int id) {
  const auto& node = graph.node(id);
  OpCost cost;
  if (!node.layer) return cost;
  const double out_numel = static_cast<double>(node.shape.numel());
  double in_numel = 0.0;
  for (int in : node.inputs) {
    in_numel += static_cast<double>(graph.node(in).shape.numel());
  }
  cost.bytes = 4.0 * (in_numel + out_numel);

  const std::string type = node.layer->type();
  const auto& in_shape = graph.node(node.inputs[0]).shape;
  if (type == "conv2d") {
    auto* conv = dynamic_cast<nn::Conv2D*>(node.layer.get());
    const double k = static_cast<double>(conv->kernel());
    cost.flops = 2.0 * out_numel * k * k * static_cast<double>(in_shape[2]);
    cost.bytes += 4.0 * static_cast<double>(conv->weight().value.numel());
  } else if (type == "tconv2d") {
    auto* conv = dynamic_cast<nn::TransposedConv2D*>(node.layer.get());
    const double k = static_cast<double>(conv->kernel());
    cost.flops = 2.0 * out_numel * k * k * static_cast<double>(in_shape[2]) / 4.0;
    cost.bytes += 4.0 * static_cast<double>(conv->weight().value.numel());
  } else if (type == "conv3d") {
    auto* conv = dynamic_cast<nn::Conv3D*>(node.layer.get());
    const double k = static_cast<double>(conv->kernel());
    cost.flops = 2.0 * out_numel * k * k * k * static_cast<double>(in_shape[3]);
  } else if (type == "tconv3d") {
    cost.flops = 2.0 * out_numel * 27.0 * static_cast<double>(in_shape[3]) / 8.0;
  } else if (type == "batchnorm") {
    cost.flops = 2.0 * out_numel;
  } else {
    cost.flops = out_numel;  // relu/pool/concat/softmax/dropout: ~1 op/elem
  }
  return cost;
}

}  // namespace

double GpuModel::graph_flops(nn::Graph& graph) {
  double flops = 0.0;
  for (std::size_t id = 0; id < graph.num_nodes(); ++id) {
    flops += node_cost(graph, static_cast<int>(id)).flops;
  }
  return flops;
}

double GpuModel::graph_bytes(nn::Graph& graph) {
  double bytes = 0.0;
  for (std::size_t id = 0; id < graph.num_nodes(); ++id) {
    bytes += node_cost(graph, static_cast<int>(id)).bytes;
  }
  return bytes;
}

double GpuModel::inference_seconds(nn::Graph& graph) const {
  double seconds = host_transfer_ms * 1e-3;
  for (std::size_t id = 0; id < graph.num_nodes(); ++id) {
    const auto& node = graph.node(static_cast<int>(id));
    if (!node.layer) continue;
    // Keras inference drops dropout nodes entirely.
    if (node.layer->type() == "dropout") continue;
    const OpCost cost = node_cost(graph, static_cast<int>(id));
    const double compute_s = cost.flops / (effective_tflops * 1e12);
    const double memory_s = cost.bytes / (effective_bandwidth_gbs * 1e9);
    seconds += op_overhead_ms * 1e-3 + std::max(compute_s, memory_s);
  }
  return seconds;
}

}  // namespace seneca::platform
