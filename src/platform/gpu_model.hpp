#pragma once
// Analytic model of the paper's GPU baseline (NVIDIA GeForce RTX 2060
// Mobile running the FP32 TensorFlow graph at batch size 1).
//
// Per-op time = dispatch overhead + max(FLOPs / effective throughput,
// bytes / effective bandwidth). At batch 1 with sub-million-parameter
// U-Nets the dispatch overhead dominates, which is why the paper's GPU
// tops out near ~77 FPS regardless of the tiny compute. Functional FP32
// execution (for DSC parity) is the actual nn::Graph run on the host; this
// class only prices its time and power. Constants were calibrated once
// against Table IV's 1M row (see DESIGN.md §4) and are held fixed.

#include "nn/graph.hpp"

namespace seneca::platform {

struct GpuModel {
  std::string name = "RTX 2060 Mobile";
  double effective_tflops = 0.545;   // FP32, conv workloads, batch 1
  double effective_bandwidth_gbs = 180.0;
  double op_overhead_ms = 0.02;      // per-node dispatch at batch 1
  double host_transfer_ms = 9.4;     // fixed TF2 predict + H2D/D2H per image
  double power_watts = 78.0;         // plugged-in draw under load (Table IV)

  /// Per-image inference latency of the FP32 graph (seconds).
  double inference_seconds(nn::Graph& graph) const;
  double fps(nn::Graph& graph) const { return 1.0 / inference_seconds(graph); }

  /// FLOPs of one forward pass (2*MACs for convs; elementwise ops counted
  /// once per element).
  static double graph_flops(nn::Graph& graph);

  /// Activation bytes moved by one forward pass (FP32 read+write per node).
  static double graph_bytes(nn::Graph& graph);
};

}  // namespace seneca::platform
