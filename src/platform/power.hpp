#pragma once
// Board-level power models and the Voltcraft-4000-analog energy logger.
//
// ZCU104: wall power = board static draw + per-active-DPU-core dynamic power
// + ARM activity + runtime-thread overhead. Utilizations come from the SoC
// discrete-event simulation, so power responds to the same mechanisms that
// set throughput (e.g. 8 threads: no extra FPS, a little extra power —
// §IV-B). GPU: the paper measures a flat ~78 W via nvidia-smi across all
// configs (Table IV); modeled as a constant under load.

#include <cstdint>

#include "runtime/soc_sim.hpp"
#include "util/rng.hpp"

namespace seneca::platform {

struct ZcuPowerModel {
  double static_watts = 18.8;        // board + PS idle
  double dpu_core_base_watts = 2.0;  // per busy DPU core: clocking/control
  double dpu_core_util_watts = 3.7;  // per busy core at full array toggle
  double arm_core_watts = 0.75;      // per fully-busy A53 core
  double thread_watts = 0.22;        // VART thread bookkeeping/polling
  double ddr_watts_per_gbs = 0.5;    // DDR interface activity

  /// Mean wall power during the simulated run. `compute_utilization` is the
  /// hybrid array's MAC utilization (XModel::compute_utilization): DSP
  /// toggling scales dynamic power, which is why the dense 16M model draws
  /// ~31 W while the lane-starved 1M draws ~28 W at the same busy time.
  double watts(const runtime::ThroughputReport& report,
               double compute_utilization, double ddr_gbs = 0.0) const {
    return static_watts +
           (dpu_core_base_watts + dpu_core_util_watts * compute_utilization) *
               report.dpu_busy_cores_avg +
           arm_core_watts * report.arm_busy_cores_avg +
           thread_watts * static_cast<double>(report.threads) +
           ddr_watts_per_gbs * ddr_gbs;
  }
};

/// Per-inference energy at a steady-state operating point. The contract the
/// serving tier relies on: J/frame = watts / fps, where both terms come from
/// the same SoC DES run, so the estimate responds to the same mechanisms as
/// throughput (thread count, DDR contention, lane starvation). Smaller zoo
/// models therefore cost fewer joules per frame — the lever energy-aware
/// routing pulls (the paper's FPS/W headline, Table IV).
struct InferenceEnergyEstimate {
  double seconds_per_frame = 0.0;  // steady-state inverse throughput
  double fps = 0.0;
  double watts = 0.0;              // mean wall power at this operating point
  double joules_per_frame = 0.0;   // watts / fps
};

/// Runs the SoC discrete-event simulation for `images` frames with
/// `threads` VART workers and prices the resulting utilization through the
/// power model. Deterministic for a given (model, soc, threads): callers
/// cache it per ladder rung.
InferenceEnergyEstimate estimate_inference_energy(
    const ZcuPowerModel& pm, const dpu::XModel& model, int threads = 2,
    int images = 48, const runtime::SocConfig& soc = {});

/// Energy logger in the spirit of the Voltcraft 4000: integrates sampled
/// power over time and reports mean W / total J. Sampling jitter models the
/// meter's quantization so repeated runs show realistic spread.
class EnergyLogger {
 public:
  explicit EnergyLogger(double sample_period_s = 0.5,
                        double jitter_rel = 0.002, std::uint64_t seed = 99)
      : period_(sample_period_s), jitter_(jitter_rel), rng_(seed) {}

  /// Logs a phase of `seconds` at (true) power `watts`.
  void log_phase(double watts, double seconds);

  double joules() const { return joules_; }
  double seconds() const { return seconds_; }
  double mean_watts() const { return seconds_ > 0.0 ? joules_ / seconds_ : 0.0; }
  void reset() { joules_ = 0.0; seconds_ = 0.0; }

 private:
  double period_;
  double jitter_;
  util::Rng rng_;
  double joules_ = 0.0;
  double seconds_ = 0.0;
};

/// Measurement-repeatability model: the paper reports mean +/- std over 10
/// runs; the simulators are deterministic, so run-to-run spread comes from
/// instrumentation (timer/meter) noise, reproduced here as a small relative
/// Gaussian perturbation of the true value.
class MeasurementModel {
 public:
  MeasurementModel(double rel_sigma, std::uint64_t seed)
      : rel_sigma_(rel_sigma), rng_(seed) {}

  double observe(double true_value) {
    return true_value * (1.0 + rel_sigma_ * rng_.gauss());
  }

 private:
  double rel_sigma_;
  util::Rng rng_;
};

}  // namespace seneca::platform
