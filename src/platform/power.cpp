#include "platform/power.hpp"

#include <cmath>

namespace seneca::platform {

InferenceEnergyEstimate estimate_inference_energy(const ZcuPowerModel& pm,
                                                  const dpu::XModel& model,
                                                  int threads, int images,
                                                  const runtime::SocConfig& soc) {
  const runtime::ThroughputReport report =
      runtime::simulate_throughput(model, soc, threads, images);
  InferenceEnergyEstimate e;
  e.fps = report.fps;
  if (e.fps <= 0.0) return e;
  e.seconds_per_frame = 1.0 / e.fps;
  const double ddr_gbs =
      static_cast<double>(model.total_ddr_bytes()) * e.fps / 1e9;
  e.watts = pm.watts(report, model.compute_utilization(), ddr_gbs);
  e.joules_per_frame = e.watts / e.fps;
  return e;
}

void EnergyLogger::log_phase(double watts, double seconds) {
  // The meter integrates discrete samples; each sample reads the true power
  // plus a small relative jitter.
  double remaining = seconds;
  while (remaining > 0.0) {
    const double dt = std::min(period_, remaining);
    const double sample = watts * (1.0 + jitter_ * rng_.gauss());
    joules_ += sample * dt;
    remaining -= dt;
  }
  seconds_ += seconds;
}

}  // namespace seneca::platform
