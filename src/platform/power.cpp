#include "platform/power.hpp"

#include <cmath>

namespace seneca::platform {

void EnergyLogger::log_phase(double watts, double seconds) {
  // The meter integrates discrete samples; each sample reads the true power
  // plus a small relative jitter.
  double remaining = seconds;
  while (remaining > 0.0) {
    const double dt = std::min(period_, remaining);
    const double sample = watts * (1.0 + jitter_ * rng_.gauss());
    joules_ += sample * dt;
    remaining -= dt;
  }
  seconds_ += seconds;
}

}  // namespace seneca::platform
