#include "dpu/pass.hpp"

#include <cstdio>

namespace seneca::dpu {

void PassManager::run(ir::Graph& graph, CompileReport* report,
                      const Measure& measure) const {
  const bool stats = report != nullptr && measure != nullptr;
  std::size_t instrs = 0;
  double cycles = 0.0;
  if (stats) {
    const auto m = measure(graph);
    instrs = m.first;
    cycles = m.second;
  }
  for (const auto& pass : passes_) {
    const bool changed = pass->run(graph);
    if (!stats) continue;
    PassStats ps;
    ps.pass = pass->name();
    ps.changed = changed;
    ps.instrs_before = instrs;
    ps.cycles_before = cycles;
    const auto m = measure(graph);
    ps.instrs_after = instrs = m.first;
    ps.cycles_after = cycles = m.second;
    report->passes.push_back(std::move(ps));
  }
}

std::string format_pass_table(const CompileReport& report) {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-18s %1s %9s %9s %14s %14s %8s\n",
                "pass", "Δ", "instrs", "instrs'", "cycles", "cycles'",
                "win%");
  out += line;
  for (const auto& ps : report.passes) {
    const double win =
        ps.cycles_before > 0.0
            ? 100.0 * (ps.cycles_before - ps.cycles_after) / ps.cycles_before
            : 0.0;
    std::snprintf(line, sizeof(line),
                  "%-18s %1s %9zu %9zu %14.0f %14.0f %8.2f\n", ps.pass.c_str(),
                  ps.changed ? "*" : " ", ps.instrs_before, ps.instrs_after,
                  ps.cycles_before, ps.cycles_after, win);
    out += line;
  }
  return out;
}

}  // namespace seneca::dpu
