#pragma once
// The concrete compiler passes. Pipeline order (compiler.cpp):
//
//   -O1:  ConstantFold -> DeadNodeElimination -> Residency ->
//         ConcatElimination -> TileSearch -> Schedule -> Timing
//   -O0:  Residency -> Schedule -> Timing   (legacy one-shot lowering,
//         byte-identical to the pre-pipeline compiler's output)
//
// Invariants between passes are documented in DESIGN.md §7: graph rewrites
// (fold/DCE) run before Residency; ConcatElimination and TileSearch consume
// Residency's placement and do not invalidate it; Schedule derives the
// instruction stream purely from node attributes; Timing only annotates.

#include <cstddef>
#include <memory>
#include <utility>

#include "dpu/pass.hpp"

namespace seneca::dpu {

/// Weight/activation residency allocation in the global memory pool
/// (identical rules to the legacy compiler; kConst outputs never resident).
std::unique_ptr<Pass> make_residency_pass();

/// Emits each node's instruction stream from its attributes (loads, weight
/// stream-in, compute, save, kEnd terminator). Materialized concats emit
/// offset-addressed region LOADs instead of a kConcat instruction; kConst
/// nodes emit nothing.
std::unique_ptr<Pass> make_schedule_pass();

/// Annotates per-instruction cycles and per-node summaries (compute_cycles,
/// ddr_bytes, overlap_bytes, macs) from the arch timing model.
std::unique_ptr<Pass> make_timing_pass();

/// Folds conv/tconv nodes with all-zero weights into kConst feature maps,
/// then folds any node whose inputs are all kConst by running the integer
/// reference kernels at compile time. Iterates to a fixpoint.
std::unique_ptr<Pass> make_constant_fold_pass();

/// Removes nodes unreachable from the graph output.
std::unique_ptr<Pass> make_dead_node_elimination_pass();

/// U-Net skip-connection concat elimination: producers store straight into
/// channel regions of the concat buffer (requantizing on the fly) and
/// non-resident inputs arrive via offset-addressed region LOADs, so the
/// kConcat copy instruction disappears. Runs after Residency.
std::unique_ptr<Pass> make_concat_elimination_pass();

/// Searches per-layer tile counts (row tiles or output-channel tiles) that
/// double-buffer DDR traffic against compute, using conv_cycles/
/// tconv_cycles; keeps a candidate only if it wins at 1 bandwidth sharer
/// and does not lose at 2. Runs after Residency + ConcatElimination.
std::unique_ptr<Pass> make_tile_search_pass();

/// SENECA-Prove post-pass (dpu/verify.hpp): emits the scheduled program
/// and runs the full static verifier over it, throwing CompileError on any
/// error-severity finding. Appended unconditionally as the last pipeline
/// stage at every opt level.
std::unique_ptr<Pass> make_verify_pass();

/// Finishes a clone of the graph — Residency (recomputed; deterministic),
/// Schedule, Timing, emit — and returns {instructions, single-sharer
/// cycles/frame}. This is how PassManager stats price intermediate states:
/// "what would the program cost if we stopped optimizing here".
std::pair<std::size_t, double> measure_program(const ir::Graph& graph);

}  // namespace seneca::dpu
