#include "dpu/isa.hpp"

namespace seneca::dpu {

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kLoad: return "LOAD";
    case Opcode::kSave: return "SAVE";
    case Opcode::kConv: return "CONV";
    case Opcode::kTConv: return "TCONV";
    case Opcode::kPool: return "POOL";
    case Opcode::kConcat: return "CONCAT";
    case Opcode::kEnd: return "END";
  }
  return "?";
}

StreamStats summarize(const std::vector<Instr>& stream,
                      double instr_overhead_cycles) {
  StreamStats s;
  for (const auto& i : stream) {
    s.instructions++;
    s.issue_cycles += instr_overhead_cycles;
    switch (i.opcode) {
      case Opcode::kLoad:
      case Opcode::kSave:
        s.memory_cycles += i.cycles;
        s.ddr_bytes += i.bytes;
        break;
      case Opcode::kConv:
      case Opcode::kTConv:
      case Opcode::kPool:
      case Opcode::kConcat:
        s.compute_cycles += i.cycles;
        s.macs += i.macs;
        break;
      case Opcode::kEnd:
        break;
    }
  }
  return s;
}

}  // namespace seneca::dpu
