#include "dpu/compiler.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace seneca::dpu {

namespace {
std::int64_t ceil_div(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }
}  // namespace

double conv_cycles(const DpuArch& arch, std::int64_t h, std::int64_t w,
                   std::int64_t k, std::int64_t ci, std::int64_t co) {
  return static_cast<double>(h * ceil_div(w, arch.pixel_parallel) * k * k *
                             ceil_div(ci, arch.input_channel_parallel) *
                             ceil_div(co, arch.output_channel_parallel));
}

double tconv_cycles(const DpuArch& arch, std::int64_t oh, std::int64_t ow,
                    std::int64_t k, std::int64_t ci, std::int64_t co) {
  const std::int64_t taps = ceil_div(k * k, 4);  // stride-2 output-domain taps
  return static_cast<double>(oh * ceil_div(ow, arch.pixel_parallel) * taps *
                             ceil_div(ci, arch.input_channel_parallel) *
                             ceil_div(co, arch.output_channel_parallel));
}

double pool_cycles(const DpuArch& arch, std::int64_t oh, std::int64_t ow,
                   std::int64_t c) {
  // 2x2 window: two comparator cycles per output vector.
  return static_cast<double>(oh * ceil_div(ow, arch.pixel_parallel) *
                             ceil_div(c, arch.input_channel_parallel) * 2);
}

double concat_cycles(const DpuArch& arch, std::int64_t out_numel) {
  // Requantizing copy through the load/store path.
  return static_cast<double>(out_numel) /
         static_cast<double>(arch.pixel_parallel * arch.input_channel_parallel);
}

XModel compile(const quant::QGraph& qg, const CompileOptions& opts) {
  XModel xm;
  xm.arch = opts.arch;
  xm.name = opts.model_name;
  xm.input_shape = qg.input_shape;
  xm.input_fix_pos = qg.input_fix_pos;

  // --- Map QGraph ops -> XLayer ids (input op maps to -1). ---
  std::vector<int> layer_of(qg.ops.size(), -1);
  for (std::size_t id = 0; id < qg.ops.size(); ++id) {
    const quant::QOp& op = qg.ops[id];
    if (op.kind == quant::QOpKind::kInput) continue;
    XLayer layer;
    switch (op.kind) {
      case quant::QOpKind::kConv2D: layer.kind = XLayer::Kind::kConv; break;
      case quant::QOpKind::kTConv2D: layer.kind = XLayer::Kind::kTConv; break;
      case quant::QOpKind::kMaxPool2D: layer.kind = XLayer::Kind::kPool; break;
      case quant::QOpKind::kConcat: layer.kind = XLayer::Kind::kConcat; break;
      default: throw std::invalid_argument("compile: bad op kind");
    }
    layer.name = op.name;
    layer.out_shape = op.out_shape;
    layer.kernel = op.kernel;
    layer.relu = op.relu;
    layer.fix_pos_w = op.fix_pos_w;
    layer.fix_pos_out = op.fix_pos_out;
    for (int in : op.inputs) {
      layer.inputs.push_back(layer_of[static_cast<std::size_t>(in)]);
    }
    if (op.kind == quant::QOpKind::kConv2D ||
        op.kind == quant::QOpKind::kTConv2D) {
      layer.weight_offset = static_cast<std::int64_t>(xm.weights.size());
      layer.weight_count = op.weights.numel();
      xm.weights.insert(xm.weights.end(), op.weights.data(),
                        op.weights.data() + op.weights.numel());
      layer.bias_offset = static_cast<std::int64_t>(xm.biases.size());
      layer.bias_count = static_cast<std::int64_t>(op.bias.size());
      xm.biases.insert(xm.biases.end(), op.bias.begin(), op.bias.end());
    }
    xm.layers.push_back(std::move(layer));
    layer_of[id] = static_cast<int>(xm.layers.size()) - 1;
  }
  xm.output_layer = layer_of[static_cast<std::size_t>(qg.output_op)];
  xm.output_fix_pos =
      qg.ops[static_cast<std::size_t>(qg.output_op)].fix_pos_out;

  // --- Weight residency: keep the smallest layers' weights parked in the
  //     global memory pool until the weight budget (half the pool) is
  //     exhausted; the rest stream from DDR every inference. This is the
  //     mechanism behind the steeper FPS drop of the big configs (Table IV).
  const std::int64_t weight_budget = static_cast<std::int64_t>(
      xm.arch.weight_pool_fraction * static_cast<double>(xm.arch.onchip_bytes));
  std::vector<std::size_t> order(xm.layers.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return xm.layers[a].weight_count < xm.layers[b].weight_count;
  });
  // Weights are stored padded to the ICPxOCP lane grid.
  auto padded_weight_bytes = [&](const XLayer& layer) -> std::int64_t {
    if (layer.weight_count == 0) return 0;
    const std::int64_t co = layer.out_shape[2];
    const std::int64_t ci = layer.weight_count / (layer.kernel * layer.kernel * co);
    return layer.kernel * layer.kernel *
               ceil_div(ci, xm.arch.input_channel_parallel) *
               xm.arch.input_channel_parallel *
               ceil_div(co, xm.arch.output_channel_parallel) *
               xm.arch.output_channel_parallel +
           4 * layer.bias_count;
  };
  std::vector<bool> weights_resident(xm.layers.size(), false);
  std::int64_t used = 0;
  for (std::size_t idx : order) {
    const std::int64_t bytes = padded_weight_bytes(xm.layers[idx]);
    if (bytes == 0) continue;
    if (used + bytes <= weight_budget) {
      weights_resident[idx] = true;
      used += bytes;
    }
  }

  // --- Activation residency. ---
  const std::int64_t act_budget = xm.arch.onchip_bytes / 2;
  // Consumers of each layer's output.
  std::vector<std::vector<int>> consumers(xm.layers.size());
  for (std::size_t i = 0; i < xm.layers.size(); ++i) {
    for (int in : xm.layers[i].inputs) {
      if (in >= 0) consumers[static_cast<std::size_t>(in)].push_back(static_cast<int>(i));
    }
  }
  // Activations live in channel-major DDR banks: a tensor with C channels
  // occupies ceil(C/bank)*bank bytes per pixel. This padding is what makes
  // non-bank-aligned filter counts (the 2M's base-6, the 8M's base-11)
  // disproportionately bandwidth-hungry.
  const std::int64_t bank = xm.arch.act_bank_channels;
  auto tensor_bytes = [bank](const Shape& s) {
    const std::int64_t c = s[s.rank() - 1];
    return (s.numel() / c) * ceil_div(c, bank) * bank;
  };

  for (std::size_t i = 0; i < xm.layers.size(); ++i) {
    XLayer& layer = xm.layers[i];
    // Input residency: produced by the immediately preceding layer, small
    // enough, and we are its first consumer.
    layer.input_resident.resize(layer.inputs.size(), 0);
    for (std::size_t k = 0; k < layer.inputs.size(); ++k) {
      const int src = layer.inputs[k];
      if (src < 0) continue;  // network input always arrives via LOAD
      const XLayer& producer = xm.layers[static_cast<std::size_t>(src)];
      const bool adjacent = (static_cast<int>(i) - src) == 1;
      const bool fits = tensor_bytes(producer.out_shape) <= act_budget;
      layer.input_resident[k] = (adjacent && fits) ? 1 : 0;
    }
    // Output residency: no SAVE only if the single consumer is the next
    // layer and the tensor fits (skip-connection tensors must be saved).
    const auto& cons = consumers[i];
    const bool is_output = static_cast<int>(i) == xm.output_layer;
    layer.output_resident = !is_output && cons.size() == 1 &&
                            cons[0] == static_cast<int>(i) + 1 &&
                            tensor_bytes(layer.out_shape) <= act_budget;
  }

  // --- Instruction generation + timing annotation. ---
  const double bpc = xm.arch.ddr_bytes_per_cycle_total;  // nominal, 1 sharer
  for (std::size_t i = 0; i < xm.layers.size(); ++i) {
    XLayer& layer = xm.layers[i];
    auto emit = [&](Instr ins) {
      ins.layer_id = static_cast<std::int32_t>(i);
      layer.instrs.push_back(ins);
    };

    // Activation loads.
    for (std::size_t k = 0; k < layer.inputs.size(); ++k) {
      if (layer.input_resident[k]) continue;
      const int src = layer.inputs[k];
      const Shape in_shape = (src < 0)
                                 ? xm.input_shape
                                 : xm.layers[static_cast<std::size_t>(src)].out_shape;
      Instr ins;
      ins.opcode = Opcode::kLoad;
      ins.tensor_id = src;
      ins.bytes = tensor_bytes(in_shape);
      ins.cycles = static_cast<double>(ins.bytes) / bpc;
      emit(ins);
      layer.ddr_bytes += ins.bytes;
    }
    // Weight stream-in.
    if (layer.weight_count > 0 && !weights_resident[i]) {
      Instr ins;
      ins.opcode = Opcode::kLoad;
      ins.tensor_id = -2;  // weights
      ins.bytes = padded_weight_bytes(layer);
      ins.cycles = static_cast<double>(ins.bytes) / bpc;
      emit(ins);
      layer.ddr_bytes += ins.bytes;
    }

    // Compute instruction.
    Instr c;
    const Shape& os = layer.out_shape;
    switch (layer.kind) {
      case XLayer::Kind::kConv: {
        const int src = layer.inputs[0];
        const Shape in_shape = (src < 0)
                                   ? xm.input_shape
                                   : xm.layers[static_cast<std::size_t>(src)].out_shape;
        c.opcode = Opcode::kConv;
        c.macs = os[0] * os[1] * layer.kernel * layer.kernel * in_shape[2] * os[2];
        c.cycles = conv_cycles(xm.arch, os[0], os[1], layer.kernel, in_shape[2], os[2]);
        break;
      }
      case XLayer::Kind::kTConv: {
        const int src = layer.inputs[0];
        const Shape in_shape = xm.layers[static_cast<std::size_t>(src)].out_shape;
        c.opcode = Opcode::kTConv;
        c.macs = os[0] * os[1] * layer.kernel * layer.kernel * in_shape[2] * os[2] / 4;
        c.cycles = tconv_cycles(xm.arch, os[0], os[1], layer.kernel, in_shape[2], os[2]);
        break;
      }
      case XLayer::Kind::kPool:
        c.opcode = Opcode::kPool;
        c.cycles = pool_cycles(xm.arch, os[0], os[1], os[2]);
        break;
      case XLayer::Kind::kConcat:
        c.opcode = Opcode::kConcat;
        c.cycles = concat_cycles(xm.arch, os.numel());
        break;
    }
    emit(c);
    layer.compute_cycles = c.cycles;
    layer.macs = c.macs;

    // Output save. Tensors whose channel count is not bank-aligned incur a
    // read-modify-write on every partial bank (the DMA must merge the tail
    // lanes), doubling the write traffic — the mechanism that penalizes the
    // base-6 (2M) and base-11 (8M) configurations on the real device.
    if (!layer.output_resident) {
      Instr ins;
      ins.opcode = Opcode::kSave;
      ins.tensor_id = static_cast<std::int32_t>(i);
      ins.bytes = tensor_bytes(os);
      if (os[os.rank() - 1] % bank != 0) ins.bytes *= 2;
      ins.cycles = static_cast<double>(ins.bytes) / bpc;
      emit(ins);
      layer.ddr_bytes += ins.bytes;
    }
  }
  // Kernel-stream terminator (completion interrupt).
  if (!xm.layers.empty()) {
    Instr end;
    end.opcode = Opcode::kEnd;
    end.layer_id = static_cast<std::int32_t>(xm.layers.size()) - 1;
    xm.layers.back().instrs.push_back(end);
  }
  return xm;
}

}  // namespace seneca::dpu
