#include "dpu/compiler.hpp"

#include <stdexcept>
#include <string>
#include <unordered_set>

#include "dpu/passes.hpp"
#include "dpu/verify.hpp"

namespace seneca::dpu {

namespace {
std::int64_t ceil_div(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }
}  // namespace

double conv_cycles(const DpuArch& arch, std::int64_t h, std::int64_t w,
                   std::int64_t k, std::int64_t ci, std::int64_t co) {
  return static_cast<double>(h * ceil_div(w, arch.pixel_parallel) * k * k *
                             ceil_div(ci, arch.input_channel_parallel) *
                             ceil_div(co, arch.output_channel_parallel));
}

double tconv_cycles(const DpuArch& arch, std::int64_t oh, std::int64_t ow,
                    std::int64_t k, std::int64_t ci, std::int64_t co) {
  const std::int64_t taps = ceil_div(k * k, 4);  // stride-2 output-domain taps
  return static_cast<double>(oh * ceil_div(ow, arch.pixel_parallel) * taps *
                             ceil_div(ci, arch.input_channel_parallel) *
                             ceil_div(co, arch.output_channel_parallel));
}

double pool_cycles(const DpuArch& arch, std::int64_t oh, std::int64_t ow,
                   std::int64_t c) {
  // 2x2 window: two comparator cycles per output vector.
  return static_cast<double>(oh * ceil_div(ow, arch.pixel_parallel) *
                             ceil_div(c, arch.input_channel_parallel) * 2);
}

double concat_cycles(const DpuArch& arch, std::int64_t out_numel) {
  // Requantizing copy through the load/store path.
  return static_cast<double>(out_numel) /
         static_cast<double>(arch.pixel_parallel * arch.input_channel_parallel);
}

void validate(const quant::QGraph& qg) {
  using quant::QOpKind;
  // Same error channel as the verifier: CompileError carrying the layer
  // context as a structured Finding (check id "qgraph", layer = op id).
  auto fail_at = [](int op_id, const std::string& msg) {
    Finding f;
    f.severity = Severity::kError;
    f.layer = op_id;
    f.check = "qgraph";
    f.message = msg;
    throw CompileError("compile: invalid QGraph: " + msg,
                       std::vector<Finding>{std::move(f)});
  };
  auto fail = [&fail_at](const std::string& msg) { fail_at(-1, msg); };
  const int n = static_cast<int>(qg.ops.size());
  if (n == 0) fail("graph has no ops");
  if (qg.input_op < 0 || qg.input_op >= n) {
    fail("input_op " + std::to_string(qg.input_op) + " out of range");
  }
  if (qg.output_op < 0 || qg.output_op >= n) {
    fail("output_op " + std::to_string(qg.output_op) + " out of range");
  }
  if (qg.ops[static_cast<std::size_t>(qg.input_op)].kind != QOpKind::kInput) {
    fail("input_op is not a kInput op");
  }
  if (qg.ops[static_cast<std::size_t>(qg.output_op)].kind == QOpKind::kInput) {
    fail("output_op is the network input");
  }

  std::unordered_set<std::string> names;
  for (int id = 0; id < n; ++id) {
    const quant::QOp& op = qg.ops[static_cast<std::size_t>(id)];
    const std::string where =
        "op " + std::to_string(id) + " ('" + op.name + "')";
    auto op_fail = [&fail_at, id](const std::string& msg) {
      fail_at(id, msg);
    };
    if (op.kind == QOpKind::kInput) {
      if (id != qg.input_op) op_fail(where + ": second kInput op");
      if (!op.inputs.empty()) op_fail(where + ": kInput op takes no inputs");
      continue;
    }
    if (op.name.empty()) op_fail("op " + std::to_string(id) + " has no name");
    if (!names.insert(op.name).second) op_fail(where + ": duplicate name");

    // Executors evaluate ops in index order, so every edge must point at an
    // already-defined op; a violation is either a dangling reference or a
    // cycle routed through later ids.
    for (int in : op.inputs) {
      if (in < 0 || in >= n) {
        op_fail(where + ": dangling input " + std::to_string(in));
      }
      if (in >= id) {
        op_fail(where + ": input " + std::to_string(in) +
             " is not yet defined (cycle or forward reference)");
      }
    }
    const std::size_t arity = op.kind == QOpKind::kConcat ? 2 : 1;
    if (op.inputs.size() != arity) {
      op_fail(where + ": expected " + std::to_string(arity) + " inputs, got " +
           std::to_string(op.inputs.size()));
    }
    if (op.kind == QOpKind::kMaxPool2D) {
      const auto& in_op = qg.ops[static_cast<std::size_t>(op.inputs[0])];
      const Shape& in_shape =
          in_op.kind == QOpKind::kInput ? qg.input_shape : in_op.out_shape;
      // The 2x2/stride-2 pool is unpadded: odd extents would silently drop
      // the last row/column of the feature map (a real segmentation-quality
      // bug at the image border), so they are a compile error.
      if (in_shape[0] % 2 != 0 || in_shape[1] % 2 != 0) {
        op_fail(where + ": max-pool input is " + std::to_string(in_shape[0]) +
             "x" + std::to_string(in_shape[1]) +
             "; the 2x2/stride-2 pool requires even H and W (odd extents "
             "would drop the last row/column)");
      }
      if (op.out_shape[0] != in_shape[0] / 2 ||
          op.out_shape[1] != in_shape[1] / 2 || op.out_shape[2] != in_shape[2]) {
        op_fail(where + ": max-pool output shape does not match input/2");
      }
    }
    if (op.kind == QOpKind::kConv2D || op.kind == QOpKind::kTConv2D) {
      if (op.kernel < 1) op_fail(where + ": bad kernel size");
      const auto& in_op = qg.ops[static_cast<std::size_t>(op.inputs[0])];
      const Shape& in_shape =
          in_op.kind == QOpKind::kInput ? qg.input_shape : in_op.out_shape;
      const std::int64_t want =
          op.kernel * op.kernel * in_shape[2] * op.out_shape[2];
      if (op.weights.numel() != want) {
        op_fail(where + ": weight count " + std::to_string(op.weights.numel()) +
             " does not match k*k*ci*co = " + std::to_string(want));
      }
      if (static_cast<std::int64_t>(op.bias.size()) != op.out_shape[2]) {
        op_fail(where + ": bias count " + std::to_string(op.bias.size()) +
             " does not match out channels");
      }
    }
  }
}

XModel compile(const quant::QGraph& qg, const CompileOptions& opts,
               CompileReport* report) {
  validate(qg);
  ir::Graph g = ir::lower(qg, opts.arch, opts.model_name);

  PassManager pm;
  if (opts.opt_level >= 1) {
    pm.add(make_constant_fold_pass());
    pm.add(make_dead_node_elimination_pass());
  }
  pm.add(make_residency_pass());
  if (opts.opt_level >= 1) {
    pm.add(make_concat_elimination_pass());
    pm.add(make_tile_search_pass());
  }
  pm.add(make_schedule_pass());
  pm.add(make_timing_pass());
  // SENECA-Prove: every compiled program is statically verified; a
  // miscompile anywhere in the pipeline throws CompileError here instead
  // of surfacing as silent garbage on the DPU.
  pm.add(make_verify_pass());
  pm.run(g, report,
         report ? PassManager::Measure(&measure_program)
                : PassManager::Measure());
  return ir::emit_xmodel(g);
}

}  // namespace seneca::dpu
