#pragma once
// xmodel disassembler / inspection report: per-layer instruction listing
// with cycle and DDR-traffic annotations, plus a model-level summary.
// The deployment analog of `xdputil xmodel -l`.

#include <string>
#include <vector>

#include "dpu/verify.hpp"
#include "dpu/xmodel.hpp"

namespace seneca::dpu {

struct DisasmOptions {
  bool instructions = true;   // per-instruction lines
  bool summary = true;        // totals, utilization, latency at 1/2 sharers
  int bw_sharers = 2;         // bandwidth assumption for per-layer latency
  // Optional verifier findings (dpu/verify.hpp) to interleave with the
  // listing: each prints as a `!!` line under the layer (or instruction)
  // it locates, model-level findings under the header. Not owned; must
  // outlive the disassemble() call.
  const std::vector<Finding>* findings = nullptr;
};

/// Human-readable disassembly of a compiled model.
std::string disassemble(const XModel& model, const DisasmOptions& opts = {});

/// One-line-per-layer latency breakdown (name, cycles split, bytes), sorted
/// by descending latency contribution — the first place to look when a
/// model underperforms on the DPU.
std::string latency_breakdown(const XModel& model, int bw_sharers = 2);

}  // namespace seneca::dpu
