#include "dpu/xmodel.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/io.hpp"

namespace seneca::dpu {

double XModel::layer_latency_cycles(const XLayer& layer,
                                    int bw_sharers) const {
  const double bytes_per_cycle =
      arch.ddr_bytes_per_cycle_total / static_cast<double>(bw_sharers);
  const double issue =
      arch.instr_overhead_cycles * static_cast<double>(layer.instrs.size());
  if (layer.tile_count <= 1) {
    // Untiled: the layer shares one memory port with its own compute, so
    // LOAD/compute/SAVE serialize at layer granularity.
    const double mem = static_cast<double>(layer.ddr_bytes) / bytes_per_cycle;
    return layer.compute_cycles + mem + issue;
  }
  // Tiled: `overlap_bytes` of the traffic streams tile-by-tile against
  // compute; only the first tile of the shorter phase is exposed.
  const std::int64_t serial_bytes = layer.ddr_bytes - layer.overlap_bytes;
  const double serial = static_cast<double>(serial_bytes) / bytes_per_cycle;
  const double ov = static_cast<double>(layer.overlap_bytes) / bytes_per_cycle;
  const double hi = std::max(layer.compute_cycles, ov);
  const double lo = std::min(layer.compute_cycles, ov);
  return serial + hi + lo / static_cast<double>(layer.tile_count) + issue;
}

double XModel::latency_cycles(int bw_sharers) const {
  // Layers are data-dependent, so they serialize; the job constant covers
  // kernel start + completion-interrupt handling.
  double total = arch.job_overhead_cycles;
  for (const auto& layer : layers) {
    total += layer_latency_cycles(layer, bw_sharers);
  }
  return total;
}

double XModel::latency_seconds(int bw_sharers) const {
  return latency_cycles(bw_sharers) / (arch.clock_mhz * 1e6);
}

std::int64_t XModel::total_macs() const {
  std::int64_t macs = 0;
  for (const auto& l : layers) macs += l.macs;
  return macs;
}

std::int64_t XModel::total_ddr_bytes() const {
  std::int64_t bytes = 0;
  for (const auto& l : layers) bytes += l.ddr_bytes;
  return bytes;
}

std::size_t XModel::total_instructions() const {
  std::size_t n = 0;
  for (const auto& l : layers) n += l.instrs.size();
  return n;
}

double XModel::compute_utilization() const {
  double compute = 0.0;
  for (const auto& l : layers) compute += l.compute_cycles;
  if (compute <= 0.0) return 0.0;
  const double peak_macs_per_cycle =
      static_cast<double>(arch.peak_ops_per_cycle()) / 2.0;
  return static_cast<double>(total_macs()) / (compute * peak_macs_per_cycle);
}

namespace {
void write_shape(util::BinaryWriter& w, const Shape& s) {
  w.u32(static_cast<std::uint32_t>(s.rank()));
  for (std::size_t i = 0; i < s.rank(); ++i) w.u64(static_cast<std::uint64_t>(s[i]));
}

Shape read_shape(util::BinaryReader& r) {
  const std::uint32_t rank = r.u32();
  std::int64_t dims[5] = {0, 0, 0, 0, 0};
  if (rank > 5) throw std::runtime_error("xmodel: bad shape rank");
  for (std::uint32_t i = 0; i < rank; ++i) {
    dims[i] = static_cast<std::int64_t>(r.u64());
    // Shape's own constructor rejects these too, but with the wrong
    // exception type for the wire contract (invalid_argument, reserved for
    // caller bugs; corrupted bytes are runtime_errors).
    if (dims[i] < 0) throw std::runtime_error("xmodel: negative shape dim");
  }
  switch (rank) {
    case 0: return Shape{};
    case 1: return Shape{dims[0]};
    case 2: return Shape{dims[0], dims[1]};
    case 3: return Shape{dims[0], dims[1], dims[2]};
    case 4: return Shape{dims[0], dims[1], dims[2], dims[3]};
    default: return Shape{dims[0], dims[1], dims[2], dims[3], dims[4]};
  }
}
}  // namespace

std::vector<std::uint8_t> XModel::serialize() const {
  util::BinaryWriter w;
  // "SENECAX2": v2 adds offset-addressed Instr fields and the pass-pipeline
  // layer attributes (concat elimination, tiling, kConst layers).
  w.str("SENECAX2");
  w.str(name);
  w.str(arch.name);
  w.u32(static_cast<std::uint32_t>(arch.cores));
  w.u64(static_cast<std::uint64_t>(arch.pixel_parallel));
  w.u64(static_cast<std::uint64_t>(arch.input_channel_parallel));
  w.u64(static_cast<std::uint64_t>(arch.output_channel_parallel));
  w.f32(static_cast<float>(arch.clock_mhz));
  w.u64(static_cast<std::uint64_t>(arch.onchip_bytes));
  w.f32(static_cast<float>(arch.ddr_bytes_per_cycle_total));
  w.f32(static_cast<float>(arch.instr_overhead_cycles));
  w.f32(static_cast<float>(arch.job_overhead_cycles));

  write_shape(w, input_shape);
  w.i32(input_fix_pos);
  w.i32(output_layer);
  w.i32(output_fix_pos);

  w.u32(static_cast<std::uint32_t>(layers.size()));
  for (const auto& l : layers) {
    w.u8(static_cast<std::uint8_t>(l.kind));
    w.str(l.name);
    w.u32(static_cast<std::uint32_t>(l.inputs.size()));
    for (auto id : l.inputs) w.i32(id);
    write_shape(w, l.out_shape);
    w.u64(static_cast<std::uint64_t>(l.kernel));
    w.u8(l.relu ? 1 : 0);
    w.i32(l.fix_pos_w);
    w.i32(l.fix_pos_out);
    w.u64(static_cast<std::uint64_t>(l.weight_offset));
    w.u64(static_cast<std::uint64_t>(l.weight_count));
    w.u64(static_cast<std::uint64_t>(l.bias_offset));
    w.u64(static_cast<std::uint64_t>(l.bias_count));
    w.u32(static_cast<std::uint32_t>(l.input_resident.size()));
    for (auto r : l.input_resident) w.u8(r);
    w.u8(l.output_resident ? 1 : 0);
    w.i32(l.concat_dst);
    w.u64(static_cast<std::uint64_t>(l.concat_offset));
    w.u8(l.materialized ? 1 : 0);
    w.u8(l.tile_mode);
    w.i32(l.tile_count);
    w.u64(static_cast<std::uint64_t>(l.overlap_bytes));
    w.u32(static_cast<std::uint32_t>(l.instrs.size()));
    for (const auto& ins : l.instrs) {
      w.u8(static_cast<std::uint8_t>(ins.opcode));
      w.i32(ins.layer_id);
      w.i32(ins.tensor_id);
      w.i32(ins.dst_id);
      w.u64(static_cast<std::uint64_t>(ins.chan_off));
      w.u64(static_cast<std::uint64_t>(ins.bytes));
      w.u64(static_cast<std::uint64_t>(ins.macs));
      w.f32(static_cast<float>(ins.cycles));
    }
    w.f32(static_cast<float>(l.compute_cycles));
    w.u64(static_cast<std::uint64_t>(l.ddr_bytes));
    w.u64(static_cast<std::uint64_t>(l.macs));
  }
  w.u64(weights.size());
  w.bytes(weights.data(), weights.size());
  w.u64(biases.size());
  w.bytes(biases.data(), biases.size() * sizeof(std::int32_t));
  return w.data();
}

XModel XModel::deserialize(std::vector<std::uint8_t> bytes) {
  util::BinaryReader r(std::move(bytes));
  // Every count field is checked against the remaining stream at each
  // element's minimum wire size *before* the resize, so a corrupted count
  // throws instead of allocating gigabytes; every enum byte is validated
  // here rather than at first (possibly much later) use.
  const auto check_count = [&r](std::uint64_t n, std::size_t elem_bytes,
                                const char* what) {
    if (n > r.remaining() / elem_bytes) {
      throw std::runtime_error("xmodel: " + std::string(what) + " count " +
                               std::to_string(n) +
                               " exceeds the remaining stream");
    }
  };
  if (r.remaining() < 12 || r.str() != "SENECAX2") {
    throw std::runtime_error("xmodel: bad magic");
  }
  XModel m;
  m.name = r.str();
  m.arch.name = r.str();
  m.arch.cores = r.i32();
  m.arch.pixel_parallel = static_cast<std::int64_t>(r.u64());
  m.arch.input_channel_parallel = static_cast<std::int64_t>(r.u64());
  m.arch.output_channel_parallel = static_cast<std::int64_t>(r.u64());
  m.arch.clock_mhz = r.f32();
  m.arch.onchip_bytes = static_cast<std::int64_t>(r.u64());
  m.arch.ddr_bytes_per_cycle_total = r.f32();
  m.arch.instr_overhead_cycles = r.f32();
  m.arch.job_overhead_cycles = r.f32();

  m.input_shape = read_shape(r);
  m.input_fix_pos = r.i32();
  m.output_layer = r.i32();
  m.output_fix_pos = r.i32();

  const std::uint32_t n_layers = r.u32();
  check_count(n_layers, 64, "layer");  // 64 = conservative fixed-field floor
  m.layers.resize(n_layers);
  for (auto& l : m.layers) {
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(XLayer::Kind::kConst)) {
      throw std::runtime_error("xmodel: invalid layer kind " +
                               std::to_string(kind));
    }
    l.kind = static_cast<XLayer::Kind>(kind);
    l.name = r.str();
    const std::uint32_t n_in = r.u32();
    check_count(n_in, 4, "layer input");
    l.inputs.resize(n_in);
    for (auto& id : l.inputs) id = r.i32();
    l.out_shape = read_shape(r);
    l.kernel = static_cast<std::int64_t>(r.u64());
    l.relu = r.u8() != 0;
    l.fix_pos_w = r.i32();
    l.fix_pos_out = r.i32();
    l.weight_offset = static_cast<std::int64_t>(r.u64());
    l.weight_count = static_cast<std::int64_t>(r.u64());
    l.bias_offset = static_cast<std::int64_t>(r.u64());
    l.bias_count = static_cast<std::int64_t>(r.u64());
    const std::uint32_t n_res = r.u32();
    check_count(n_res, 1, "residency flag");
    l.input_resident.resize(n_res);
    for (auto& v : l.input_resident) v = r.u8();
    l.output_resident = r.u8() != 0;
    l.concat_dst = r.i32();
    l.concat_offset = static_cast<std::int64_t>(r.u64());
    l.materialized = r.u8() != 0;
    l.tile_mode = r.u8();
    l.tile_count = r.i32();
    l.overlap_bytes = static_cast<std::int64_t>(r.u64());
    const std::uint32_t n_instr = r.u32();
    check_count(n_instr, 41, "instruction");  // 41 = Instr wire size
    l.instrs.resize(n_instr);
    for (auto& ins : l.instrs) {
      const std::uint8_t opcode = r.u8();
      if (opcode > static_cast<std::uint8_t>(Opcode::kEnd)) {
        throw std::runtime_error("xmodel: invalid opcode " +
                                 std::to_string(opcode));
      }
      ins.opcode = static_cast<Opcode>(opcode);
      ins.layer_id = r.i32();
      ins.tensor_id = r.i32();
      ins.dst_id = r.i32();
      ins.chan_off = static_cast<std::int64_t>(r.u64());
      ins.bytes = static_cast<std::int64_t>(r.u64());
      ins.macs = static_cast<std::int64_t>(r.u64());
      ins.cycles = r.f32();
    }
    l.compute_cycles = r.f32();
    l.ddr_bytes = static_cast<std::int64_t>(r.u64());
    l.macs = static_cast<std::int64_t>(r.u64());
  }
  const std::uint64_t wn = r.u64();
  check_count(wn, 1, "weight");
  m.weights.resize(wn);
  r.bytes(m.weights.data(), wn);
  const std::uint64_t bn = r.u64();
  // The division-form bound also forecloses the bn * 4 overflow.
  check_count(bn, sizeof(std::int32_t), "bias");
  m.biases.resize(bn);
  r.bytes(m.biases.data(), bn * sizeof(std::int32_t));
  return m;
}

void XModel::save(const std::filesystem::path& path) const {
  const std::vector<std::uint8_t> bytes = serialize();
  util::write_file(path, bytes.data(), bytes.size());
}

XModel XModel::load(const std::filesystem::path& path) {
  return deserialize(util::read_file(path));
}

}  // namespace seneca::dpu
