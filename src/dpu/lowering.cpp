// Lowering passes: Residency, Schedule, Timing. Together they re-express
// the legacy one-shot compiler (see git history of compiler.cpp) as
// pipeline stages — with no optimizing pass in between, the instruction
// stream they produce is byte-identical to the pre-refactor compiler.

#include <algorithm>
#include <numeric>

#include "dpu/compiler.hpp"
#include "dpu/passes.hpp"

namespace seneca::dpu {

namespace {

using ir::Graph;
using ir::Node;
using ir::NodeKind;

// --- Residency -------------------------------------------------------------

class ResidencyPass final : public Pass {
 public:
  const char* name() const override { return "residency"; }

  bool run(Graph& g) override {
    // Weight residency: keep the smallest layers' weights parked in the
    // global memory pool until the weight budget is exhausted; the rest
    // stream from DDR every inference (the mechanism behind the steeper
    // FPS drop of the big configs, Table IV).
    const std::int64_t weight_budget = static_cast<std::int64_t>(
        g.arch.weight_pool_fraction * static_cast<double>(g.arch.onchip_bytes));
    std::vector<std::size_t> order(g.nodes.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return g.nodes[a].weights.numel() < g.nodes[b].weights.numel();
    });
    for (auto& n : g.nodes) n.weights_resident = false;
    std::int64_t used = 0;
    for (std::size_t idx : order) {
      const std::int64_t bytes = ir::padded_weight_bytes(g.nodes[idx], g.arch);
      if (bytes == 0) continue;
      if (used + bytes <= weight_budget) {
        g.nodes[idx].weights_resident = true;
        used += bytes;
      }
    }

    // Activation residency.
    const std::int64_t act_budget = g.arch.onchip_bytes / 2;
    const auto consumers = g.consumers();
    for (std::size_t i = 0; i < g.nodes.size(); ++i) {
      Node& n = g.nodes[i];
      // Input residency: produced by the immediately preceding layer, small
      // enough, and we are its first consumer. kConst data lives in DDR
      // (the weights blob), so it always arrives via LOAD.
      n.input_resident.assign(n.inputs.size(), 0);
      for (std::size_t k = 0; k < n.inputs.size(); ++k) {
        const int src = n.inputs[k];
        if (src < 0) continue;  // network input always arrives via LOAD
        const Node& producer = g.nodes[static_cast<std::size_t>(src)];
        if (producer.kind == NodeKind::kConst) continue;
        const bool adjacent = (static_cast<int>(i) - src) == 1;
        const bool fits =
            ir::act_tensor_bytes(producer.out_shape, g.arch) <= act_budget;
        n.input_resident[k] = (adjacent && fits) ? 1 : 0;
      }
      // Output residency: no SAVE only if the single consumer is the next
      // layer and the tensor fits (skip-connection tensors must be saved).
      // kConst nodes produce no runtime output at all.
      const auto& cons = consumers[i];
      const bool is_output = static_cast<int>(i) == g.output;
      n.output_resident = n.kind != NodeKind::kConst && !is_output &&
                          cons.size() == 1 &&
                          cons[0] == static_cast<int>(i) + 1 &&
                          ir::act_tensor_bytes(n.out_shape, g.arch) <= act_budget;
    }
    return true;
  }
};

// --- Schedule --------------------------------------------------------------

class SchedulePass final : public Pass {
 public:
  const char* name() const override { return "schedule"; }

  bool run(Graph& g) override {
    for (std::size_t i = 0; i < g.nodes.size(); ++i) {
      Node& n = g.nodes[i];
      n.instrs.clear();
      if (n.kind == NodeKind::kConst) continue;  // no runtime footprint
      auto emit = [&](Instr ins) {
        ins.layer_id = static_cast<std::int32_t>(i);
        n.instrs.push_back(ins);
      };

      // Activation loads. A materialized concat loads its non-redirected
      // inputs straight into channel regions of its own buffer; redirected
      // producers already scattered their output there, so those inputs
      // need no instruction at all.
      std::int64_t chan_off = 0;
      for (std::size_t k = 0; k < n.inputs.size(); ++k) {
        const int src = n.inputs[k];
        const Shape& in_shape = g.shape_of(src);
        const std::int64_t in_channels = in_shape[in_shape.rank() - 1];
        if (n.materialized) {
          const bool redirected =
              src >= 0 &&
              g.nodes[static_cast<std::size_t>(src)].concat_dst ==
                  static_cast<int>(i);
          if (!redirected) {
            Instr ins;
            ins.opcode = Opcode::kLoad;
            ins.tensor_id = src;
            ins.dst_id = static_cast<std::int32_t>(i);
            ins.chan_off = chan_off;
            ins.bytes = ir::act_tensor_bytes(in_shape, g.arch);
            emit(ins);
          }
          chan_off += in_channels;
          continue;
        }
        if (n.input_resident[k]) continue;
        Instr ins;
        ins.opcode = Opcode::kLoad;
        ins.tensor_id = src;
        ins.bytes = ir::act_tensor_bytes(in_shape, g.arch);
        // Row tiling re-fetches halo rows at every tile boundary.
        if (k == 0 && n.tile_mode == ir::TileMode::kRows) {
          ins.bytes += n.halo_bytes;
        }
        emit(ins);
      }
      // Weight stream-in.
      if (n.weights.numel() > 0 && !n.weights_resident) {
        Instr ins;
        ins.opcode = Opcode::kLoad;
        ins.tensor_id = -2;  // weights
        ins.bytes = ir::padded_weight_bytes(n, g.arch);
        emit(ins);
      }

      // Compute instruction (a materialized concat's buffer is assembled
      // entirely by the offset-addressed transfers above).
      if (!n.materialized) {
        Instr c;
        const Shape& os = n.out_shape;
        switch (n.kind) {
          case NodeKind::kConv: {
            const Shape& in_shape = g.shape_of(n.inputs[0]);
            c.opcode = Opcode::kConv;
            c.macs = os[0] * os[1] * n.kernel * n.kernel * in_shape[2] * os[2];
            break;
          }
          case NodeKind::kTConv: {
            const Shape& in_shape = g.shape_of(n.inputs[0]);
            c.opcode = Opcode::kTConv;
            c.macs =
                os[0] * os[1] * n.kernel * n.kernel * in_shape[2] * os[2] / 4;
            break;
          }
          case NodeKind::kPool:
            c.opcode = Opcode::kPool;
            break;
          case NodeKind::kConcat:
            c.opcode = Opcode::kConcat;
            break;
          case NodeKind::kConst:
            break;  // unreachable
        }
        emit(c);
        n.macs = c.macs;
      } else {
        n.macs = 0;
      }

      // Output save. Tensors whose channel count is not bank-aligned incur
      // a read-modify-write on every partial bank (the DMA must merge the
      // tail lanes), doubling the write traffic — the mechanism that
      // penalizes the base-6 (2M) and base-11 (8M) configurations on the
      // real device. A producer redirected into a concat buffer writes
      // on-chip during compute and never saves.
      if (!n.output_resident && n.concat_dst < 0) {
        Instr ins;
        ins.opcode = Opcode::kSave;
        ins.tensor_id = static_cast<std::int32_t>(i);
        ins.bytes = ir::act_tensor_bytes(n.out_shape, g.arch);
        if (n.out_shape[n.out_shape.rank() - 1] % g.arch.act_bank_channels !=
            0) {
          ins.bytes *= 2;
        }
        emit(ins);
      }
    }
    // Kernel-stream terminator (completion interrupt).
    if (!g.nodes.empty()) {
      Instr end;
      end.opcode = Opcode::kEnd;
      end.layer_id = static_cast<std::int32_t>(g.nodes.size()) - 1;
      g.nodes.back().instrs.push_back(end);
    }
    return true;
  }
};

// --- Timing ----------------------------------------------------------------

class TimingPass final : public Pass {
 public:
  const char* name() const override { return "timing"; }

  bool run(Graph& g) override {
    const double bpc = g.arch.ddr_bytes_per_cycle_total;  // nominal, 1 sharer
    for (Node& n : g.nodes) {
      n.compute_cycles = 0.0;
      n.ddr_bytes = 0;
      n.overlap_bytes = 0;
      const Shape& os = n.out_shape;
      for (Instr& ins : n.instrs) {
        switch (ins.opcode) {
          case Opcode::kLoad:
          case Opcode::kSave:
            ins.cycles = static_cast<double>(ins.bytes) / bpc;
            n.ddr_bytes += ins.bytes;
            if (overlapped(n, ins)) n.overlap_bytes += ins.bytes;
            break;
          case Opcode::kConv:
            ins.cycles = conv_cycles(g.arch, os[0], os[1], n.kernel,
                                     g.shape_of(n.inputs[0])[2], os[2]);
            n.compute_cycles = ins.cycles;
            break;
          case Opcode::kTConv:
            ins.cycles = tconv_cycles(g.arch, os[0], os[1], n.kernel,
                                      g.shape_of(n.inputs[0])[2], os[2]);
            n.compute_cycles = ins.cycles;
            break;
          case Opcode::kPool:
            ins.cycles = pool_cycles(g.arch, os[0], os[1], os[2]);
            n.compute_cycles = ins.cycles;
            break;
          case Opcode::kConcat:
            ins.cycles = concat_cycles(g.arch, os.numel());
            n.compute_cycles = ins.cycles;
            break;
          case Opcode::kEnd:
            ins.cycles = 0.0;
            break;
        }
      }
      if (n.tile_mode == ir::TileMode::kNone) n.overlap_bytes = 0;
    }
    return true;
  }

 private:
  // Which transfers a tiled layer pipelines against its compute: row tiles
  // double-buffer the activation traffic (weights stay serial), channel
  // tiles double-buffer the weight stream and the save.
  static bool overlapped(const Node& n, const Instr& ins) {
    switch (n.tile_mode) {
      case ir::TileMode::kRows:
        return ins.opcode == Opcode::kSave ||
               (ins.opcode == Opcode::kLoad && ins.tensor_id != -2);
      case ir::TileMode::kCoChannels:
        return ins.opcode == Opcode::kSave ||
               (ins.opcode == Opcode::kLoad && ins.tensor_id == -2);
      case ir::TileMode::kNone:
        return false;
    }
    return false;
  }
};

}  // namespace

std::unique_ptr<Pass> make_residency_pass() {
  return std::make_unique<ResidencyPass>();
}
std::unique_ptr<Pass> make_schedule_pass() {
  return std::make_unique<SchedulePass>();
}
std::unique_ptr<Pass> make_timing_pass() {
  return std::make_unique<TimingPass>();
}

std::pair<std::size_t, double> measure_program(const ir::Graph& graph) {
  ir::Graph clone = graph;
  make_residency_pass()->run(clone);
  make_schedule_pass()->run(clone);
  make_timing_pass()->run(clone);
  const XModel xm = ir::emit_xmodel(clone);
  return {xm.total_instructions(), xm.latency_cycles(1)};
}

}  // namespace seneca::dpu
