#pragma once
// VAI_C-analog compiler (§III-E): parses the quantized graph, performs the
// compile-time optimizations the paper names — batch-norm is already folded
// by the quantizer; here we do weight/activation residency allocation in the
// global memory pool, instruction scheduling with double-buffered LOAD/
// compute overlap, and per-instruction timing annotation — then emits the
// xmodel binary for the target DPU microarchitecture.

#include "dpu/arch.hpp"
#include "dpu/pass.hpp"
#include "dpu/xmodel.hpp"
#include "quant/qgraph.hpp"

namespace seneca::dpu {

struct CompileOptions {
  DpuArch arch = DpuArch::b4096();
  std::string model_name = "seneca";
  // 0 = lowering only (byte-identical to the pre-pipeline compiler),
  // 1 = full pass pipeline (const-fold, DCE, concat elimination, tiling).
  int opt_level = 1;
};

/// Structural validation of the graph compile() is about to consume:
/// rejects cyclic/forward references, dangling inputs, duplicate or empty
/// names, arity and payload-shape mismatches. Throws std::invalid_argument
/// with a message naming the offending op.
void validate(const quant::QGraph& qgraph);

/// Compiles a quantized graph into a DPU-executable xmodel by running the
/// pass pipeline (passes.hpp). With `report` set, per-pass before/after
/// instruction and cycle stats are recorded (--dump-passes).
XModel compile(const quant::QGraph& qgraph, const CompileOptions& opts = {},
               CompileReport* report = nullptr);

// --- Timing model (exposed for tests and the ablation benches). -----------

/// Cycles for a stride-1 same conv on the hybrid computing array:
/// H * ceil(W/PP) * K^2 * ceil(Cin/ICP) * ceil(Cout/OCP).
double conv_cycles(const DpuArch& arch, std::int64_t h, std::int64_t w,
                   std::int64_t k, std::int64_t ci, std::int64_t co);

/// Transposed conv (stride 2, k=3) in the output domain; each output pixel
/// sees on average K^2/4 taps.
double tconv_cycles(const DpuArch& arch, std::int64_t oh, std::int64_t ow,
                    std::int64_t k, std::int64_t ci, std::int64_t co);

double pool_cycles(const DpuArch& arch, std::int64_t oh, std::int64_t ow,
                   std::int64_t c);

double concat_cycles(const DpuArch& arch, std::int64_t out_numel);

}  // namespace seneca::dpu
