// SENECA-Prove (DESIGN.md §10): every check re-derives an invariant the
// pass pipeline (lowering.cpp / optimize.cpp) is supposed to have
// established, from nothing but the XModel and its arch description, so a
// mutation anywhere between Residency and emit_xmodel surfaces as a
// structured Finding instead of silent garbage on the DPU.

#include "dpu/verify.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "dpu/compiler.hpp"
#include "dpu/passes.hpp"
#include "quant/kernels.hpp"

namespace seneca::dpu {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

namespace {

using quant::Interval;

std::int64_t ceil_div64(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// DDR footprint of an activation tensor (mirror of ir::act_tensor_bytes):
/// channel-major banks pad C up to act_bank_channels per pixel.
std::int64_t act_bytes(const Shape& s, const DpuArch& arch) {
  const std::int64_t c = s[s.rank() - 1];
  return (s.numel() / c) * ceil_div64(c, arch.act_bank_channels) *
         arch.act_bank_channels;
}

/// Weight+bias stream footprint (mirror of ir::padded_weight_bytes).
std::int64_t weight_stream_bytes(const XLayer& l, const DpuArch& arch) {
  if (l.weight_count == 0) return 0;
  const std::int64_t co = l.out_shape[2];
  const std::int64_t ci = l.weight_count / (l.kernel * l.kernel * co);
  return l.kernel * l.kernel * ceil_div64(ci, arch.input_channel_parallel) *
             arch.input_channel_parallel *
             ceil_div64(co, arch.output_channel_parallel) *
             arch.output_channel_parallel +
         4 * l.bias_count;
}

/// Which transfers a tiled layer pipelines against compute (mirror of
/// TimingPass::overlapped).
bool overlapped(const XLayer& l, const Instr& ins) {
  switch (l.tile_mode) {
    case 1:  // row tiles
      return ins.opcode == Opcode::kSave ||
             (ins.opcode == Opcode::kLoad && ins.tensor_id != -2);
    case 2:  // output-channel tiles
      return ins.opcode == Opcode::kSave ||
             (ins.opcode == Opcode::kLoad && ins.tensor_id == -2);
    default:
      return false;
  }
}

/// requant_out_interval with the corrupted-payload guards the reference
/// helper does not need: out-of-domain shifts or accumulators whose left
/// shift would overflow int64 fall back to the full int8 domain, which is
/// always a sound output interval.
Interval safe_requant(Interval acc, int shift, bool relu) {
  if (shift < -31 || shift > 62) return {-128, 127};
  if (shift < 0) {
    const std::int64_t lim = std::numeric_limits<std::int64_t>::max() >> -shift;
    if (acc.hi > lim || acc.lo < -lim) return {-128, 127};
  }
  return quant::requant_out_interval(acc, shift, relu);
}

constexpr int kMaxFixPos = 31;  // signed shift-field domain of the requant unit

struct RangeResult {
  std::vector<RangeProof> proofs;
  std::vector<Finding> findings;
};

class Checker {
 public:
  Checker(const XModel& m, const VerifyOptions& opts) : m_(m), opts_(opts) {}

  std::vector<Finding> run() {
    check_arch_and_model();
    for (std::size_t i = 0; i < m_.layers.size(); ++i) {
      check_layer_structure(static_cast<int>(i));
    }
    // Structural damage (dangling ids, bad shapes, blob overruns) makes the
    // semantic checks meaningless and their indexing unsafe; report it and
    // stop here.
    if (has_errors(findings_)) return std::move(findings_);

    build_consumers();
    for (std::size_t i = 0; i < m_.layers.size(); ++i) {
      check_residency(static_cast<int>(i));
      check_concat(static_cast<int>(i));
      check_schedule(static_cast<int>(i));
    }
    if (end_count_ != 1) {
      add(Severity::kError, -1, -1, "schedule",
          "program has " + std::to_string(end_count_) +
              " kEnd terminators, expected exactly 1 at the end of the "
              "last layer");
    }

    RangeResult rr = run_range(m_);
    for (auto& f : rr.findings) findings_.push_back(std::move(f));

    if (opts_.check_cycles) {
      for (std::size_t i = 0; i < m_.layers.size(); ++i) {
        check_cycles(static_cast<int>(i));
      }
    }
    return std::move(findings_);
  }

  static RangeResult run_range(const XModel& m);

 private:
  void add(Severity sev, int layer, int instr, const char* check,
           std::string msg) {
    Finding f;
    f.severity = sev;
    f.layer = layer;
    f.instr = instr;
    f.check = check;
    f.message = std::move(msg);
    findings_.push_back(std::move(f));
  }

  const Shape& shape_of(int id) const {
    return id < 0 ? m_.input_shape
                  : m_.layers[static_cast<std::size_t>(id)].out_shape;
  }

  const XLayer& layer(int id) const {
    return m_.layers[static_cast<std::size_t>(id)];
  }

  int n_layers() const { return static_cast<int>(m_.layers.size()); }

  static bool shape_ok(const Shape& s) {
    if (s.rank() != 3) return false;
    for (std::size_t d = 0; d < s.rank(); ++d) {
      if (s[d] <= 0) return false;
    }
    return true;
  }

  // --- Stage 1: structure ---------------------------------------------------

  void check_arch_and_model() {
    const DpuArch& a = m_.arch;
    if (a.pixel_parallel <= 0 || a.input_channel_parallel <= 0 ||
        a.output_channel_parallel <= 0 || a.act_bank_channels <= 0 ||
        a.onchip_bytes <= 0) {
      add(Severity::kError, -1, -1, "structure",
          "arch parallelism/memory parameters must be positive");
    }
    if (!(a.ddr_bytes_per_cycle_total > 0.0) || a.instr_overhead_cycles < 0 ||
        a.job_overhead_cycles < 0) {
      add(Severity::kError, -1, -1, "structure",
          "arch timing parameters out of domain");
    }
    if (m_.layers.empty()) {
      add(Severity::kError, -1, -1, "structure", "model has no layers");
      return;
    }
    if (!shape_ok(m_.input_shape)) {
      add(Severity::kError, -1, -1, "structure",
          "input shape must be rank-3 HWC with positive extents");
    }
    if (m_.output_layer < 0 || m_.output_layer >= n_layers()) {
      add(Severity::kError, -1, -1, "structure",
          "output_layer " + std::to_string(m_.output_layer) + " out of range");
    } else if (m_.output_fix_pos !=
               layer(m_.output_layer).fix_pos_out) {
      add(Severity::kError, -1, -1, "structure",
          "model output_fix_pos " + std::to_string(m_.output_fix_pos) +
              " != output layer fix_pos_out " +
              std::to_string(layer(m_.output_layer).fix_pos_out));
    }
  }

  void check_layer_structure(int i) {
    const XLayer& l = layer(i);
    if (static_cast<std::uint8_t>(l.kind) >
        static_cast<std::uint8_t>(XLayer::Kind::kConst)) {
      add(Severity::kError, i, -1, "structure", "invalid layer kind");
      return;
    }
    if (!shape_ok(l.out_shape)) {
      add(Severity::kError, i, -1, "structure",
          "output shape must be rank-3 HWC with positive extents");
      return;
    }

    // Arity and edge sanity: executors evaluate layers in index order, so
    // every input must reference an earlier layer (or -1, the network
    // input); violations are dangling references or cycles.
    const std::size_t arity = l.kind == XLayer::Kind::kConcat ? 2
                              : l.kind == XLayer::Kind::kConst ? 0
                                                               : 1;
    if (l.inputs.size() != arity) {
      add(Severity::kError, i, -1, "structure",
          "expected " + std::to_string(arity) + " inputs, got " +
              std::to_string(l.inputs.size()));
      return;
    }
    for (int in : l.inputs) {
      if (in < -1 || in >= i) {
        add(Severity::kError, i, -1, "structure",
            "input " + std::to_string(in) +
                (in >= i ? " is not yet defined (cycle or forward reference)"
                         : " is dangling"));
        return;
      }
    }
    if (l.input_resident.size() != l.inputs.size()) {
      add(Severity::kError, i, -1, "structure",
          "input_resident arity " + std::to_string(l.input_resident.size()) +
              " != input count " + std::to_string(l.inputs.size()));
      return;
    }

    // Weight/bias blob slices.
    const auto slice_ok = [&](std::int64_t off, std::int64_t count,
                              std::int64_t blob, const char* what) {
      if (off < 0 || count < 0 || off + count > blob) {
        add(Severity::kError, i, -1, "blob-bounds",
            std::string(what) + " slice [" + std::to_string(off) + ", " +
                std::to_string(off + count) + ") overruns blob of " +
                std::to_string(blob));
        return false;
      }
      return true;
    };
    const bool w_ok =
        slice_ok(l.weight_offset, l.weight_count,
                 static_cast<std::int64_t>(m_.weights.size()), "weight");
    const bool b_ok =
        slice_ok(l.bias_offset, l.bias_count,
                 static_cast<std::int64_t>(m_.biases.size()), "bias");

    if (l.kind == XLayer::Kind::kConv || l.kind == XLayer::Kind::kTConv) {
      if (l.kernel < 1) {
        add(Severity::kError, i, -1, "structure", "bad kernel size");
        return;
      }
      const std::int64_t ci = shape_of(l.inputs[0])[2];
      const std::int64_t want = l.kernel * l.kernel * ci * l.out_shape[2];
      if (w_ok && l.weight_count != want) {
        add(Severity::kError, i, -1, "structure",
            "weight count " + std::to_string(l.weight_count) +
                " does not match k*k*ci*co = " + std::to_string(want));
      }
      if (b_ok && l.bias_count != l.out_shape[2]) {
        add(Severity::kError, i, -1, "structure",
            "bias count " + std::to_string(l.bias_count) +
                " does not match out channels " +
                std::to_string(l.out_shape[2]));
      }
    } else if (l.kind == XLayer::Kind::kConst) {
      if (w_ok && l.weight_count != l.out_shape.numel()) {
        add(Severity::kError, i, -1, "structure",
            "const payload count " + std::to_string(l.weight_count) +
                " does not match output numel " +
                std::to_string(l.out_shape.numel()));
      }
    } else if (l.weight_count != 0 || l.bias_count != 0) {
      add(Severity::kError, i, -1, "structure",
          "pool/concat layer carries a weight/bias slice");
    }

    // Tiling attributes.
    if (l.tile_mode > 2 || l.tile_count < 1 ||
        (l.tile_mode == 0) != (l.tile_count == 1)) {
      add(Severity::kError, i, -1, "structure",
          "inconsistent tiling: mode " + std::to_string(l.tile_mode) +
              ", count " + std::to_string(l.tile_count));
    } else if (l.tile_mode != 0 && l.kind != XLayer::Kind::kConv &&
               l.kind != XLayer::Kind::kTConv) {
      add(Severity::kError, i, -1, "structure",
          "only conv/tconv layers can be tiled");
    }

    for (std::size_t j = 0; j < l.instrs.size(); ++j) {
      if (static_cast<std::uint8_t>(l.instrs[j].opcode) >
              static_cast<std::uint8_t>(Opcode::kEnd) ||
          l.instrs[j].bytes < 0 || l.instrs[j].macs < 0) {
        add(Severity::kError, i, static_cast<int>(j), "structure",
            "invalid opcode or negative byte/mac count");
      }
    }
  }

  // --- Stage 2 --------------------------------------------------------------

  void build_consumers() {
    consumers_.assign(m_.layers.size(), {});
    for (std::size_t i = 0; i < m_.layers.size(); ++i) {
      for (int in : m_.layers[i].inputs) {
        if (in >= 0) {
          consumers_[static_cast<std::size_t>(in)].push_back(
              static_cast<int>(i));
        }
      }
    }
  }

  void check_residency(int i) {
    const XLayer& l = layer(i);
    for (std::size_t k = 0; k < l.inputs.size(); ++k) {
      if (!l.input_resident[k]) continue;
      const int src = l.inputs[k];
      if (src < 0) {
        add(Severity::kError, i, -1, "residency",
            "network input marked resident (it always arrives via LOAD)");
        continue;
      }
      const XLayer& p = layer(src);
      if (src != i - 1) {
        // The on-chip slot holds exactly the previous layer's output (a
        // producer may also SAVE a DDR copy for later skip consumers, but
        // the slot itself is recycled every layer): anything older has
        // been overwritten.
        add(Severity::kError, i, -1, "residency",
            "input " + std::to_string(k) + " marked resident but producer " +
                std::to_string(src) + " is not the previous layer (stale "
                "residency slot)");
      } else if (act_bytes(p.out_shape, m_.arch) > m_.arch.onchip_bytes / 2) {
        add(Severity::kError, i, -1, "residency",
            "resident input of " +
                std::to_string(act_bytes(p.out_shape, m_.arch)) +
                " bytes exceeds the on-chip activation budget");
      }
      if (p.kind == XLayer::Kind::kConst) {
        add(Severity::kError, i, -1, "residency",
            "kConst data lives in the weights blob and is never resident");
      }
    }
    if (l.output_resident) {
      const auto& cons = consumers_[static_cast<std::size_t>(i)];
      if (l.kind == XLayer::Kind::kConst) {
        add(Severity::kError, i, -1, "residency",
            "kConst layer marked output-resident");
      } else if (i == m_.output_layer) {
        add(Severity::kError, i, -1, "residency",
            "network output marked resident (it must be saved to DDR)");
      } else if (cons.size() != 1 || cons[0] != i + 1) {
        add(Severity::kError, i, -1, "residency",
            "output marked resident but its " + std::to_string(cons.size()) +
                " consumer(s) are not exactly the next layer; later "
                "consumers would read a freed slot");
      }
      if (act_bytes(l.out_shape, m_.arch) > m_.arch.onchip_bytes / 2) {
        add(Severity::kError, i, -1, "residency",
            "resident output of " +
                std::to_string(act_bytes(l.out_shape, m_.arch)) +
                " bytes exceeds the on-chip activation budget");
      }
    }
  }

  void check_concat(int i) {
    const XLayer& l = layer(i);

    // Producer side: output redirected into a concat buffer.
    if (l.concat_dst >= 0) {
      if (l.concat_dst <= i || l.concat_dst >= n_layers()) {
        add(Severity::kError, i, -1, "concat-region",
            "concat_dst " + std::to_string(l.concat_dst) +
                " is not a later layer");
        return;
      }
      const XLayer& dst = layer(l.concat_dst);
      if (dst.kind != XLayer::Kind::kConcat || !dst.materialized) {
        add(Severity::kError, i, -1, "concat-region",
            "concat_dst " + std::to_string(l.concat_dst) +
                " is not a materialized concat");
      }
      if (l.kind == XLayer::Kind::kConcat || l.kind == XLayer::Kind::kConst) {
        add(Severity::kError, i, -1, "concat-region",
            "concat/const layers cannot redirect their output");
      }
      const auto& cons = consumers_[static_cast<std::size_t>(i)];
      if (cons.size() != 1 || cons[0] != l.concat_dst) {
        add(Severity::kError, i, -1, "dataflow",
            "output redirected into layer " + std::to_string(l.concat_dst) +
                "'s buffer but consumed by " + std::to_string(cons.size()) +
                " layer(s); other consumers would read bytes that were "
                "never written");
      }
      if (l.concat_offset < 0 ||
          l.concat_offset + l.out_shape[2] > dst.out_shape[2]) {
        add(Severity::kError, i, -1, "concat-region",
            "redirected store channels [" + std::to_string(l.concat_offset) +
                ", " + std::to_string(l.concat_offset + l.out_shape[2]) +
                ") overrun the destination buffer of " +
                std::to_string(dst.out_shape[2]) + " channels");
      }
    }

    if (!l.materialized) return;
    if (l.kind != XLayer::Kind::kConcat) {
      add(Severity::kError, i, -1, "concat-region",
          "non-concat layer marked materialized");
      return;
    }

    std::int64_t total = 0;
    for (int in : l.inputs) total += shape_of(in)[2];
    if (total != l.out_shape[2]) {
      add(Severity::kError, i, -1, "concat-region",
          "input channels sum to " + std::to_string(total) +
              " but the buffer has " + std::to_string(l.out_shape[2]));
      return;
    }

    // Channel-coverage map of the assembled buffer: every channel must be
    // written exactly once, by either a redirected producer store or a
    // region LOAD at the pass-defined cumulative offset.
    std::vector<int> cover(static_cast<std::size_t>(l.out_shape[2]), 0);
    std::vector<bool> load_used(l.instrs.size(), false);
    std::int64_t expected_off = 0;
    for (std::size_t k = 0; k < l.inputs.size(); ++k) {
      const int src = l.inputs[k];
      const std::int64_t ch = shape_of(src)[2];
      const bool redirected = src >= 0 && layer(src).concat_dst == i;
      if (redirected != (l.input_resident[k] != 0)) {
        add(Severity::kError, i, -1, "residency",
            "materialized concat input " + std::to_string(k) +
                (redirected ? " redirected but not marked resident"
                            : " marked resident but its producer does not "
                              "redirect into this buffer"));
      }
      std::int64_t off = -1;
      if (redirected) {
        off = layer(src).concat_offset;
        if (off != expected_off) {
          add(Severity::kError, i, -1, "concat-region",
              "producer " + std::to_string(src) +
                  " stores at channel offset " + std::to_string(off) +
                  " but input " + std::to_string(k) + " occupies offset " +
                  std::to_string(expected_off) + " (swapped or shifted "
                  "concat offsets)");
        }
      } else {
        // Find this input's region LOAD.
        for (std::size_t j = 0; j < l.instrs.size(); ++j) {
          const Instr& ins = l.instrs[j];
          if (!load_used[j] && ins.opcode == Opcode::kLoad &&
              ins.tensor_id == src && ins.dst_id == i) {
            off = ins.chan_off;
            load_used[j] = true;
            break;
          }
        }
        if (off < 0) {
          add(Severity::kError, i, -1, "concat-region",
              "input " + std::to_string(k) + " (layer " + std::to_string(src) +
                  ") has no writer: neither a redirected store nor a region "
                  "LOAD assembles its channels");
          expected_off += ch;
          continue;
        }
        if (off != expected_off) {
          add(Severity::kError, i, -1, "concat-region",
              "region LOAD of input " + std::to_string(k) +
                  " lands at channel offset " + std::to_string(off) +
                  ", expected " + std::to_string(expected_off));
        }
      }
      if (off < 0 || off + ch > l.out_shape[2]) {
        add(Severity::kError, i, -1, "concat-region",
            "writer for input " + std::to_string(k) + " covers channels [" +
                std::to_string(off) + ", " + std::to_string(off + ch) +
                ") outside the buffer");
      } else {
        for (std::int64_t c = off; c < off + ch; ++c) {
          ++cover[static_cast<std::size_t>(c)];
        }
      }
      expected_off += ch;
    }
    std::int64_t twice = 0, never = 0;
    for (int c : cover) {
      if (c > 1) ++twice;
      if (c == 0) ++never;
    }
    if (twice > 0) {
      add(Severity::kError, i, -1, "concat-region",
          std::to_string(twice) + " channel(s) of the concat buffer written "
          "by overlapping live ranges (aliasing double-write)");
    }
    if (never > 0) {
      add(Severity::kError, i, -1, "concat-region",
          std::to_string(never) + " channel(s) of the concat buffer are "
          "never written; the consumer reads dead bytes");
    }
  }

  /// Can layer `src`'s output legitimately be LOADed from DDR?
  bool in_ddr(int src) const {
    if (src == -1) return true;  // network input
    if (src < -1 || src >= n_layers()) return false;
    const XLayer& p = layer(src);
    if (p.kind == XLayer::Kind::kConst) return true;  // weights blob
    return !p.output_resident && p.concat_dst < 0;    // it was SAVEd
  }

  void check_schedule(int i) {
    const XLayer& l = layer(i);
    const bool last = i == n_layers() - 1;

    if (l.kind == XLayer::Kind::kConst) {
      // No runtime footprint — except the program terminator, which the
      // scheduler appends to whatever layer is last.
      for (std::size_t j = 0; j < l.instrs.size(); ++j) {
        if (l.instrs[j].opcode == Opcode::kEnd && last &&
            j == l.instrs.size() - 1) {
          ++end_count_;
        } else {
          add(Severity::kError, i, static_cast<int>(j), "schedule",
              "kConst layer has runtime instructions");
        }
      }
      return;
    }

    // Expected memory traffic, re-derived from the layer attributes.
    struct ExpLoad {
      int tensor = -1;
      std::int64_t chan = 0;
      std::int64_t bytes = 0;
      bool region = false;    // offset-addressed into this layer's buffer
      bool halo_min = false;  // row tiling: bytes is a lower bound (+halo)
      bool matched = false;
      std::size_t input_index = 0;
    };
    std::vector<ExpLoad> exp_loads;
    std::int64_t chan_off = 0;
    for (std::size_t k = 0; k < l.inputs.size(); ++k) {
      const int src = l.inputs[k];
      const Shape& in_shape = shape_of(src);
      if (l.materialized) {
        const bool redirected = src >= 0 && layer(src).concat_dst == i;
        if (!redirected) {
          exp_loads.push_back({src, chan_off, act_bytes(in_shape, m_.arch),
                               true, false, false, k});
        }
        chan_off += in_shape[in_shape.rank() - 1];
        continue;
      }
      if (l.input_resident[k]) continue;
      exp_loads.push_back({src, 0, act_bytes(in_shape, m_.arch), false,
                           k == 0 && l.tile_mode == 1, false, k});
    }
    const bool compute_expected = !l.materialized;
    const bool save_expected = !l.output_resident && l.concat_dst < 0;
    const std::int64_t exp_weight_bytes = weight_stream_bytes(l, m_.arch);
    std::int64_t exp_save_bytes = act_bytes(l.out_shape, m_.arch);
    if (l.out_shape[l.out_shape.rank() - 1] % m_.arch.act_bank_channels != 0) {
      exp_save_bytes *= 2;  // unaligned channels: read-modify-write banks
    }
    Opcode exp_compute = Opcode::kConv;
    switch (l.kind) {
      case XLayer::Kind::kConv: exp_compute = Opcode::kConv; break;
      case XLayer::Kind::kTConv: exp_compute = Opcode::kTConv; break;
      case XLayer::Kind::kPool: exp_compute = Opcode::kPool; break;
      case XLayer::Kind::kConcat: exp_compute = Opcode::kConcat; break;
      case XLayer::Kind::kConst: break;  // unreachable
    }
    std::int64_t exp_macs = 0;
    if (compute_expected &&
        (l.kind == XLayer::Kind::kConv || l.kind == XLayer::Kind::kTConv)) {
      const Shape& os = l.out_shape;
      const std::int64_t ci = shape_of(l.inputs[0])[2];
      exp_macs = os[0] * os[1] * l.kernel * l.kernel * ci * os[2];
      if (l.kind == XLayer::Kind::kTConv) exp_macs /= 4;
    }

    int state = 0;  // 0 = loads, 1 = compute seen, 2 = save seen
    bool compute_seen = false, save_seen = false, weight_load_seen = false;
    for (std::size_t j = 0; j < l.instrs.size(); ++j) {
      const Instr& ins = l.instrs[j];
      const int ij = static_cast<int>(j);
      if (ins.opcode == Opcode::kEnd) {
        if (!last || j != l.instrs.size() - 1) {
          add(Severity::kError, i, ij, "schedule",
              "kEnd terminator not at the end of the last layer");
        } else {
          ++end_count_;
        }
        continue;
      }
      if (ins.layer_id != i) {
        add(Severity::kError, i, ij, "schedule",
            "instruction owned by layer " + std::to_string(ins.layer_id) +
                " scheduled in layer " + std::to_string(i));
      }
      switch (ins.opcode) {
        case Opcode::kLoad: {
          if (state > 0) {
            add(Severity::kError, i, ij, "schedule",
                "LOAD scheduled after compute/SAVE; its consumer already "
                "ran");
          }
          if (ins.tensor_id == -2) {
            if (weight_load_seen) {
              add(Severity::kError, i, ij, "schedule",
                  "duplicate weight LOAD");
            } else if (l.weight_count == 0) {
              add(Severity::kError, i, ij, "schedule",
                  "weight LOAD on a layer without weights");
            } else if (ins.bytes != exp_weight_bytes) {
              add(Severity::kError, i, ij, "schedule",
                  "weight LOAD of " + std::to_string(ins.bytes) +
                      " bytes != padded stream size " +
                      std::to_string(exp_weight_bytes));
            }
            weight_load_seen = true;
            break;
          }
          ExpLoad* match = nullptr;
          for (auto& e : exp_loads) {
            if (!e.matched && e.tensor == ins.tensor_id) {
              match = &e;
              break;
            }
          }
          if (match == nullptr) {
            std::string why = "unexpected LOAD of tensor " +
                              std::to_string(ins.tensor_id);
            for (std::size_t k = 0; k < l.inputs.size(); ++k) {
              if (l.inputs[k] == ins.tensor_id && !l.materialized &&
                  l.input_resident[k]) {
                why = "LOAD of resident input " + std::to_string(k) +
                      " (the slot is already on-chip)";
              }
            }
            add(Severity::kError, i, ij, "schedule", why);
            if (!in_ddr(ins.tensor_id)) {
              add(Severity::kError, i, ij, "dataflow",
                  "LOAD source " + std::to_string(ins.tensor_id) +
                      " was never saved to DDR");
            }
            break;
          }
          match->matched = true;
          if (match->region) {
            if (ins.dst_id != i) {
              add(Severity::kError, i, ij, "concat-region",
                  "region LOAD targets buffer of layer " +
                      std::to_string(ins.dst_id) + ", expected " +
                      std::to_string(i));
            }
            // chan_off is validated against the cumulative layout by
            // check_concat's coverage map.
          } else if (ins.dst_id != -1 || ins.chan_off != 0) {
            add(Severity::kError, i, ij, "schedule",
                "plain LOAD carries offset-addressed fields (dst " +
                    std::to_string(ins.dst_id) + ", chan_off " +
                    std::to_string(ins.chan_off) + ")");
          }
          if (match->halo_min ? ins.bytes < match->bytes
                              : ins.bytes != match->bytes) {
            add(Severity::kError, i, ij, "schedule",
                "LOAD of " + std::to_string(ins.bytes) + " bytes " +
                    (match->halo_min ? "below the un-haloed tensor size "
                                     : "!= tensor size ") +
                    std::to_string(match->bytes));
          }
          if (!in_ddr(ins.tensor_id)) {
            add(Severity::kError, i, ij, "dataflow",
                "LOAD of layer " + std::to_string(ins.tensor_id) +
                    "'s output, which is resident/redirected and was never "
                    "saved to DDR (dead bytes)");
          }
          break;
        }
        case Opcode::kSave: {
          if (!save_expected) {
            add(Severity::kError, i, ij, "schedule",
                l.output_resident
                    ? "SAVE of a resident output"
                    : "SAVE of an output redirected into a concat buffer");
          }
          if (save_seen) {
            add(Severity::kError, i, ij, "schedule", "duplicate SAVE");
          }
          if (compute_expected && !compute_seen) {
            add(Severity::kError, i, ij, "schedule",
                "SAVE scheduled before the compute instruction that "
                "produces the tensor");
          }
          if (ins.tensor_id != i) {
            add(Severity::kError, i, ij, "schedule",
                "SAVE of tensor " + std::to_string(ins.tensor_id) +
                    " from layer " + std::to_string(i));
          }
          if (save_expected && ins.bytes != exp_save_bytes) {
            add(Severity::kError, i, ij, "schedule",
                "SAVE of " + std::to_string(ins.bytes) +
                    " bytes != expected " + std::to_string(exp_save_bytes) +
                    " (bank-alignment rule)");
          }
          save_seen = true;
          state = 2;
          break;
        }
        case Opcode::kConv:
        case Opcode::kTConv:
        case Opcode::kPool:
        case Opcode::kConcat: {
          if (!compute_expected) {
            add(Severity::kError, i, ij, "schedule",
                "compute instruction on a materialized concat (its buffer "
                "is assembled by offset-addressed transfers)");
          } else if (ins.opcode != exp_compute) {
            add(Severity::kError, i, ij, "schedule",
                std::string("compute opcode ") + opcode_name(ins.opcode) +
                    " does not match layer kind (expected " +
                    opcode_name(exp_compute) + ")");
          }
          if (compute_seen) {
            add(Severity::kError, i, ij, "schedule",
                "duplicate compute instruction");
          }
          if (state == 2) {
            add(Severity::kError, i, ij, "schedule",
                "compute scheduled after SAVE");
          }
          if (compute_expected && ins.opcode == exp_compute &&
              ins.macs != exp_macs) {
            add(Severity::kError, i, ij, "schedule",
                "instruction MACs " + std::to_string(ins.macs) +
                    " != layer work " + std::to_string(exp_macs));
          }
          compute_seen = true;
          if (state == 0) state = 1;
          break;
        }
        case Opcode::kEnd:
          break;  // handled above
      }
    }

    for (const auto& e : exp_loads) {
      if (!e.matched) {
        add(Severity::kError, i, -1, "schedule",
            "missing LOAD of input " + std::to_string(e.input_index) +
                " (tensor " + std::to_string(e.tensor) +
                "); the compute would read uninitialized on-chip bytes");
      }
    }
    if (compute_expected && !compute_seen) {
      add(Severity::kError, i, -1, "schedule", "missing compute instruction");
    }
    if (save_expected && !save_seen) {
      add(Severity::kError, i, -1, "schedule",
          "missing SAVE; downstream consumers LOAD this tensor from DDR");
    }
    if (l.macs != (compute_expected ? exp_macs : 0)) {
      add(Severity::kError, i, -1, "schedule",
          "layer MAC summary " + std::to_string(l.macs) + " != " +
              std::to_string(compute_expected ? exp_macs : 0));
    }
  }

  bool near(double a, double b) const {
    const double tol =
        std::max(opts_.cycle_rel_tol * std::max(std::abs(a), std::abs(b)),
                 0.51);
    return std::abs(a - b) <= tol;
  }

  void check_cycles(int i) {
    const XLayer& l = layer(i);
    const double bpc = m_.arch.ddr_bytes_per_cycle_total;
    double exp_compute = 0.0;
    std::int64_t exp_ddr = 0, exp_ov = 0;
    for (std::size_t j = 0; j < l.instrs.size(); ++j) {
      const Instr& ins = l.instrs[j];
      double exp = 0.0;
      const Shape& os = l.out_shape;
      switch (ins.opcode) {
        case Opcode::kLoad:
        case Opcode::kSave:
          exp = static_cast<double>(ins.bytes) / bpc;
          exp_ddr += ins.bytes;
          if (overlapped(l, ins)) exp_ov += ins.bytes;
          break;
        case Opcode::kConv:
          exp = conv_cycles(m_.arch, os[0], os[1], l.kernel,
                            shape_of(l.inputs[0])[2], os[2]);
          exp_compute = exp;
          break;
        case Opcode::kTConv:
          exp = tconv_cycles(m_.arch, os[0], os[1], l.kernel,
                             shape_of(l.inputs[0])[2], os[2]);
          exp_compute = exp;
          break;
        case Opcode::kPool:
          exp = pool_cycles(m_.arch, os[0], os[1], os[2]);
          exp_compute = exp;
          break;
        case Opcode::kConcat:
          exp = concat_cycles(m_.arch, os.numel());
          exp_compute = exp;
          break;
        case Opcode::kEnd:
          exp = 0.0;
          break;
      }
      if (!near(ins.cycles, exp)) {
        add(Severity::kError, i, static_cast<int>(j), "cycles",
            "instruction cycles " + std::to_string(ins.cycles) +
                " do not re-derive from the timing model (expected " +
                std::to_string(exp) + ")");
      }
    }
    if (l.tile_mode == 0) exp_ov = 0;

    if (!near(l.compute_cycles, exp_compute)) {
      add(Severity::kError, i, -1, "cycles",
          "layer compute_cycles " + std::to_string(l.compute_cycles) +
              " != timing model " + std::to_string(exp_compute));
    }
    if (l.ddr_bytes != exp_ddr) {
      add(Severity::kError, i, -1, "cycles",
          "layer ddr_bytes " + std::to_string(l.ddr_bytes) +
              " != sum of LOAD/SAVE bytes " + std::to_string(exp_ddr));
    }
    if (l.overlap_bytes != exp_ov) {
      add(Severity::kError, i, -1, "cycles",
          "layer overlap_bytes " + std::to_string(l.overlap_bytes) +
              " != pipelined share " + std::to_string(exp_ov) +
              " under tile mode " + std::to_string(l.tile_mode));
    }

    // The headline invariant: the latency query must equal the sum of the
    // scheduled instruction costs under the overlap model.
    const double issue = m_.arch.instr_overhead_cycles *
                         static_cast<double>(l.instrs.size());
    double exp_lat = 0.0;
    if (l.tile_count <= 1) {
      exp_lat = exp_compute + static_cast<double>(exp_ddr) / bpc + issue;
    } else {
      const double serial = static_cast<double>(exp_ddr - exp_ov) / bpc;
      const double ov = static_cast<double>(exp_ov) / bpc;
      exp_lat = serial + std::max(exp_compute, ov) +
                std::min(exp_compute, ov) / static_cast<double>(l.tile_count) +
                issue;
    }
    const double actual = m_.layer_latency_cycles(l, 1);
    if (!near(actual, exp_lat)) {
      add(Severity::kError, i, -1, "cycles",
          "layer latency " + std::to_string(actual) +
              " does not equal the sum of its scheduled instruction costs (" +
              std::to_string(exp_lat) + ")");
    }
  }

  const XModel& m_;
  VerifyOptions opts_;
  std::vector<Finding> findings_;
  std::vector<std::vector<int>> consumers_;
  int end_count_ = 0;
};

// --- Range analysis ---------------------------------------------------------

RangeResult Checker::run_range(const XModel& m) {
  RangeResult rr;
  const int n = static_cast<int>(m.layers.size());
  auto add = [&rr](Severity sev, int i, const char* check, std::string msg) {
    Finding f;
    f.severity = sev;
    f.layer = i;
    f.check = check;
    f.message = std::move(msg);
    rr.findings.push_back(std::move(f));
  };

  // Effective fix position, walking pool chains like the executors do.
  auto fp_of = [&m](int id) {
    while (id >= 0) {
      const XLayer& l = m.layers[static_cast<std::size_t>(id)];
      if (l.kind != XLayer::Kind::kPool) return l.fix_pos_out;
      id = l.inputs[0];
    }
    return m.input_fix_pos;
  };
  auto fix_ok = [](int fp) { return fp >= -kMaxFixPos && fp <= kMaxFixPos; };

  if (!fix_ok(m.input_fix_pos)) {
    add(Severity::kError, -1, "range",
        "input fix position " + std::to_string(m.input_fix_pos) +
            " outside the requant shift-field domain");
  }

  std::vector<Interval> act(m.layers.size(), Interval{-128, 127});
  auto in_interval = [&](int id) {
    return id < 0 ? Interval{-128, 127} : act[static_cast<std::size_t>(id)];
  };

  for (int i = 0; i < n; ++i) {
    const XLayer& l = m.layers[static_cast<std::size_t>(i)];
    Interval out{-128, 127};
    if (!fix_ok(l.fix_pos_out) || !fix_ok(l.fix_pos_w)) {
      add(Severity::kError, i, "range",
          "fix position (w " + std::to_string(l.fix_pos_w) + ", out " +
              std::to_string(l.fix_pos_out) +
              ") outside the requant shift-field domain");
      act[static_cast<std::size_t>(i)] = out;
      continue;
    }
    switch (l.kind) {
      case XLayer::Kind::kConst: {
        // The folded feature map is known at compile time: its interval is
        // the exact min/max of the payload.
        if (l.weight_count > 0 && l.weight_offset >= 0 &&
            l.weight_offset + l.weight_count <=
                static_cast<std::int64_t>(m.weights.size())) {
          std::int8_t lo = 127, hi = -128;
          const std::int8_t* p = m.weights.data() + l.weight_offset;
          for (std::int64_t t = 0; t < l.weight_count; ++t) {
            lo = std::min(lo, p[t]);
            hi = std::max(hi, p[t]);
          }
          out = {lo, hi};
        }
        break;
      }
      case XLayer::Kind::kPool:
        out = in_interval(l.inputs[0]);
        break;
      case XLayer::Kind::kConv:
      case XLayer::Kind::kTConv: {
        const std::int64_t ci =
            (l.inputs[0] < 0 ? m.input_shape
                             : m.layers[static_cast<std::size_t>(l.inputs[0])]
                                   .out_shape)[2];
        // range_analysis() is also callable standalone on unvalidated
        // models; skip layers whose blob slices do not line up (the full
        // verifier reports those as structure/blob-bounds findings).
        if (l.kernel < 1 || l.weight_offset < 0 || l.bias_offset < 0 ||
            l.weight_count != l.kernel * l.kernel * ci * l.out_shape[2] ||
            l.bias_count != l.out_shape[2] ||
            l.weight_offset + l.weight_count >
                static_cast<std::int64_t>(m.weights.size()) ||
            l.bias_offset + l.bias_count >
                static_cast<std::int64_t>(m.biases.size())) {
          break;
        }
        const Interval in = in_interval(l.inputs[0]);
        const Interval acc = quant::conv_acc_interval(
            m.weights.data() + l.weight_offset, l.kernel * l.kernel * ci,
            l.out_shape[2], m.biases.data() + l.bias_offset, in);
        const int shift = fp_of(l.inputs[0]) + l.fix_pos_w - l.fix_pos_out;

        RangeProof proof;
        proof.layer = i;
        proof.in = in;
        proof.acc = acc;
        proof.shift = shift;
        proof.acc_fits_i32 =
            acc.lo >= std::numeric_limits<std::int32_t>::min() &&
            acc.hi <= std::numeric_limits<std::int32_t>::max();
        proof.shift32_proven = quant::interval_shift32_safe(acc, shift);
        quant::QOp op;
        op.kernel = l.kernel;
        op.bias.assign(m.biases.begin() + l.bias_offset,
                       m.biases.begin() + l.bias_offset + l.bias_count);
        proof.runtime_acc32 = quant::kernels::acc32_safe(op, ci);
        rr.proofs.push_back(proof);

        if (shift < -kMaxFixPos || shift > kMaxFixPos) {
          add(Severity::kError, i, "range",
              "requant shift " + std::to_string(shift) +
                  " outside the hardware shift-field domain [-" +
                  std::to_string(kMaxFixPos) + ", " +
                  std::to_string(kMaxFixPos) + "]");
        }
        if (!proof.acc_fits_i32) {
          add(Severity::kError, i, "range",
              "accumulator interval [" + std::to_string(acc.lo) + ", " +
                  std::to_string(acc.hi) +
                  "] exceeds the 32-bit accumulator of the hybrid "
                  "computing array");
        } else if (proof.runtime_acc32 && !proof.shift32_proven &&
                   shift <= 30 && shift >= -20) {
          // The interval bound is tighter than acc_bound by construction,
          // so the coarse predicate admitting the int32 path while the
          // proof rejects it means a corrupted payload.
          add(Severity::kError, i, "range-consistency",
              "runtime acc32_safe admits the int32 path but the interval "
              "proof finds no headroom at shift " + std::to_string(shift));
        } else if (!proof.runtime_acc32 && proof.shift32_proven) {
          add(Severity::kNote, i, "range",
              "interval proof shows int32 headroom the coarse runtime "
              "predicate rejects; the scalar fallback is conservative "
              "here");
        }
        out = safe_requant(acc, shift, l.relu);
        break;
      }
      case XLayer::Kind::kConcat: {
        bool first = true;
        for (int in : l.inputs) {
          const int shift = fp_of(in) - l.fix_pos_out;
          const Interval v = safe_requant(in_interval(in), shift, false);
          if (first || v.lo < out.lo) out.lo = v.lo;
          if (first || v.hi > out.hi) out.hi = v.hi;
          first = false;
        }
        break;
      }
    }
    act[static_cast<std::size_t>(i)] = out;
  }
  return rr;
}

}  // namespace

std::vector<Finding> verify(const XModel& model, const VerifyOptions& opts) {
  return Checker(model, opts).run();
}

std::vector<RangeProof> range_analysis(const XModel& model) {
  return Checker::run_range(model).proofs;
}

bool has_errors(const std::vector<Finding>& findings) {
  return std::any_of(findings.begin(), findings.end(), [](const Finding& f) {
    return f.severity == Severity::kError;
  });
}

std::string format_findings(const XModel& model,
                            const std::vector<Finding>& findings) {
  std::ostringstream os;
  int errors = 0, warnings = 0, notes = 0;
  for (const auto& f : findings) {
    switch (f.severity) {
      case Severity::kError: ++errors; break;
      case Severity::kWarning: ++warnings; break;
      case Severity::kNote: ++notes; break;
    }
  }
  os << "verify: model '" << model.name << "': ";
  if (findings.empty()) {
    os << "clean\n";
    return os.str();
  }
  os << findings.size() << " finding(s) (" << errors << " error(s), "
     << warnings << " warning(s), " << notes << " note(s))\n";
  for (const auto& f : findings) {
    os << "  " << severity_name(f.severity) << "[" << f.check << "] ";
    if (f.layer < 0) {
      os << "model";
    } else {
      os << "layer " << f.layer;
      if (f.layer < static_cast<std::int32_t>(model.layers.size())) {
        os << " '" << model.layers[static_cast<std::size_t>(f.layer)].name
           << "'";
        if (f.instr >= 0 &&
            f.instr < static_cast<std::int32_t>(
                          model.layers[static_cast<std::size_t>(f.layer)]
                              .instrs.size())) {
          os << " instr " << f.instr << " ("
             << opcode_name(model.layers[static_cast<std::size_t>(f.layer)]
                                .instrs[static_cast<std::size_t>(f.instr)]
                                .opcode)
             << ")";
        }
      }
    }
    os << ": " << f.message << "\n";
  }
  return os.str();
}

void verify_or_throw(const XModel& model, const VerifyOptions& opts) {
  std::vector<Finding> findings = verify(model, opts);
  if (!has_errors(findings)) return;
  // Format before the move: constructor arguments are indeterminately
  // sequenced, so the move could otherwise empty the vector first.
  std::string report = "compile: verification failed:\n" +
                       format_findings(model, findings);
  throw CompileError(report, std::move(findings));
}

namespace {

/// Mandatory post-pass: emits the program from the scheduled IR and runs
/// the full verifier on it, so no miscompile can leave compile() silently.
class VerifyPass final : public Pass {
 public:
  const char* name() const override { return "verify"; }

  bool run(ir::Graph& g) override {
    verify_or_throw(ir::emit_xmodel(g));
    return false;
  }
};

}  // namespace

std::unique_ptr<Pass> make_verify_pass() {
  return std::make_unique<VerifyPass>();
}

}  // namespace seneca::dpu
