#pragma once
// Functional + timing simulator of one DPU core executing an xmodel.
//
// Functional semantics are defined to be bit-exact with the quant::QGraph
// reference executor (tests/dpu_* pin this); timing comes from the compiled
// per-layer cycle/byte annotations. The dual-core system view (job queues,
// thread scaling, bandwidth sharing) lives in src/runtime.

#include <memory>
#include <vector>

#include "dpu/xmodel.hpp"
#include "quant/qgraph.hpp"

namespace seneca::dpu {

using tensor::TensorI8;

struct RunResult {
  TensorI8 output;       // INT8 logit maps at output_fix_pos
  double cycles = 0.0;   // end-to-end latency on this core
  double seconds = 0.0;  // at the arch clock
};

class DpuCoreSim {
 public:
  /// The xmodel must outlive the simulator.
  explicit DpuCoreSim(const XModel* model);

  const XModel& model() const { return *model_; }

  /// Executes one inference. `bw_sharers` is the number of cores currently
  /// contending for DDR bandwidth (affects LOAD/SAVE latency only). With an
  /// `arena`, per-layer buffers recycle its slabs across frames (zero heap
  /// allocation in steady state except the returned output); the arena is
  /// single-threaded state — one per runner worker, never shared.
  RunResult run(const TensorI8& input, int bw_sharers = 1,
                tensor::TensorArena* arena = nullptr) const;

 private:
  const XModel* model_;
  // Per-layer weight/bias views materialized once at construction.
  std::vector<quant::QOp> payloads_;
  // Folded feature maps of kConst layers, rebuilt from the weights blob.
  std::vector<TensorI8> consts_;
};

}  // namespace seneca::dpu
