#include "dpu/ir.hpp"

#include <stdexcept>
#include <utility>

namespace seneca::dpu::ir {

int Graph::eff_fix_pos(int id) const {
  while (id >= 0) {
    const Node& n = nodes[static_cast<std::size_t>(id)];
    if (n.kind != NodeKind::kPool) return n.fix_pos_out;
    id = n.inputs[0];
  }
  return input_fix_pos;
}

std::vector<std::vector<int>> Graph::consumers() const {
  std::vector<std::vector<int>> cons(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (int in : nodes[i].inputs) {
      if (in >= 0) cons[static_cast<std::size_t>(in)].push_back(static_cast<int>(i));
    }
  }
  return cons;
}

void Graph::erase_nodes(const std::vector<bool>& dead) {
  std::vector<int> remap(nodes.size(), -1);
  int next = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (!dead[i]) remap[i] = next++;
  }
  auto remap_id = [&](int id) {
    if (id < 0) return id;
    const int r = remap[static_cast<std::size_t>(id)];
    if (r < 0) throw std::logic_error("erase_nodes: dead node still referenced");
    return r;
  };
  std::vector<Node> kept;
  kept.reserve(static_cast<std::size_t>(next));
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (dead[i]) continue;
    Node n = std::move(nodes[i]);
    for (int& in : n.inputs) in = remap_id(in);
    n.concat_dst = remap_id(n.concat_dst);
    kept.push_back(std::move(n));
  }
  nodes = std::move(kept);
  output = remap_id(output);
}

Graph lower(const quant::QGraph& qg, const DpuArch& arch,
            const std::string& model_name) {
  Graph g;
  g.arch = arch;
  g.name = model_name;
  g.input_shape = qg.input_shape;
  g.input_fix_pos = qg.input_fix_pos;

  std::vector<int> node_of(qg.ops.size(), -1);
  for (std::size_t id = 0; id < qg.ops.size(); ++id) {
    const quant::QOp& op = qg.ops[id];
    if (op.kind == quant::QOpKind::kInput) continue;
    Node n;
    switch (op.kind) {
      case quant::QOpKind::kConv2D: n.kind = NodeKind::kConv; break;
      case quant::QOpKind::kTConv2D: n.kind = NodeKind::kTConv; break;
      case quant::QOpKind::kMaxPool2D: n.kind = NodeKind::kPool; break;
      case quant::QOpKind::kConcat: n.kind = NodeKind::kConcat; break;
      default: throw std::invalid_argument("lower: bad op kind");
    }
    n.name = op.name;
    n.out_shape = op.out_shape;
    n.fix_pos_out = op.fix_pos_out;
    n.kernel = op.kernel;
    n.relu = op.relu;
    n.fix_pos_w = op.fix_pos_w;
    n.weights = op.weights;
    n.bias = op.bias;
    for (int in : op.inputs) {
      n.inputs.push_back(node_of[static_cast<std::size_t>(in)]);
    }
    g.nodes.push_back(std::move(n));
    node_of[id] = static_cast<int>(g.nodes.size()) - 1;
  }
  g.output = node_of[static_cast<std::size_t>(qg.output_op)];
  return g;
}

std::int64_t act_tensor_bytes(const Shape& s, const DpuArch& arch) {
  const std::int64_t bank = arch.act_bank_channels;
  const std::int64_t c = s[s.rank() - 1];
  return (s.numel() / c) * ceil_div(c, bank) * bank;
}

std::int64_t padded_weight_bytes(const Node& node, const DpuArch& arch) {
  const std::int64_t count = node.weights.numel();
  if (count == 0) return 0;
  const std::int64_t co = node.out_shape[2];
  const std::int64_t ci = count / (node.kernel * node.kernel * co);
  return node.kernel * node.kernel *
             ceil_div(ci, arch.input_channel_parallel) *
             arch.input_channel_parallel *
             ceil_div(co, arch.output_channel_parallel) *
             arch.output_channel_parallel +
         4 * static_cast<std::int64_t>(node.bias.size());
}

XModel emit_xmodel(const Graph& g) {
  XModel xm;
  xm.arch = g.arch;
  xm.name = g.name;
  xm.input_shape = g.input_shape;
  xm.input_fix_pos = g.input_fix_pos;
  xm.output_layer = g.output;
  xm.output_fix_pos =
      g.nodes[static_cast<std::size_t>(g.output)].fix_pos_out;

  for (const Node& n : g.nodes) {
    XLayer l;
    switch (n.kind) {
      case NodeKind::kConv: l.kind = XLayer::Kind::kConv; break;
      case NodeKind::kTConv: l.kind = XLayer::Kind::kTConv; break;
      case NodeKind::kPool: l.kind = XLayer::Kind::kPool; break;
      case NodeKind::kConcat: l.kind = XLayer::Kind::kConcat; break;
      case NodeKind::kConst: l.kind = XLayer::Kind::kConst; break;
    }
    l.name = n.name;
    l.inputs.assign(n.inputs.begin(), n.inputs.end());
    l.out_shape = n.out_shape;
    l.kernel = n.kernel;
    l.relu = n.relu;
    l.fix_pos_w = n.fix_pos_w;
    l.fix_pos_out = n.fix_pos_out;
    if (n.kind == NodeKind::kConv || n.kind == NodeKind::kTConv) {
      l.weight_offset = static_cast<std::int64_t>(xm.weights.size());
      l.weight_count = n.weights.numel();
      xm.weights.insert(xm.weights.end(), n.weights.data(),
                        n.weights.data() + n.weights.numel());
      l.bias_offset = static_cast<std::int64_t>(xm.biases.size());
      l.bias_count = static_cast<std::int64_t>(n.bias.size());
      xm.biases.insert(xm.biases.end(), n.bias.begin(), n.bias.end());
    } else if (n.kind == NodeKind::kConst) {
      // The folded feature map rides in the weights blob; consumers LOAD it
      // like any DDR activation.
      l.weight_offset = static_cast<std::int64_t>(xm.weights.size());
      l.weight_count = n.const_data.numel();
      xm.weights.insert(xm.weights.end(), n.const_data.data(),
                        n.const_data.data() + n.const_data.numel());
    }
    l.input_resident = n.input_resident;
    l.output_resident = n.output_resident;
    l.concat_dst = n.concat_dst;
    l.concat_offset = n.concat_offset;
    l.materialized = n.materialized;
    l.tile_mode = static_cast<std::uint8_t>(n.tile_mode);
    l.tile_count = n.tile_count;
    l.instrs = n.instrs;
    l.compute_cycles = n.compute_cycles;
    l.ddr_bytes = n.ddr_bytes;
    l.overlap_bytes = n.overlap_bytes;
    l.macs = n.macs;
    xm.layers.push_back(std::move(l));
  }
  return xm;
}

}  // namespace seneca::dpu::ir
