#pragma once
// DPU instruction set. The compiler lowers every network layer into a short
// sequence of these; the core simulator executes them (functionally via the
// attached layer payload, temporally via per-instruction cycle estimates
// from the timing model). The encoding round-trips through the xmodel
// binary format.

#include <cstdint>
#include <string>
#include <vector>

namespace seneca::dpu {

enum class Opcode : std::uint8_t {
  kLoad = 0,   // DDR -> global memory pool (weights or activations)
  kSave = 1,   // global memory pool -> DDR
  kConv = 2,   // hybrid computing array convolution (optional fused ReLU)
  kTConv = 3,  // transposed convolution
  kPool = 4,   // 2x2/2 max pool
  kConcat = 5, // channel concat with requantization
  kEnd = 6,    // end of kernel stream (raises completion interrupt)
};

const char* opcode_name(Opcode op);

/// One DPU instruction. Fields are a superset; unused ones are zero.
struct Instr {
  Opcode opcode = Opcode::kEnd;
  std::int32_t layer_id = -1;   // owning XLayer
  std::int32_t tensor_id = -1;  // tensor moved (kLoad/kSave) or produced
  // Offset-addressed transfers (concat elimination): the DMA requantizes on
  // the fly and places the data at a channel offset inside another layer's
  // output buffer instead of a buffer of its own.
  std::int32_t dst_id = -1;     // destination buffer's owning layer, or -1
  std::int64_t chan_off = 0;    // channel offset inside the dst buffer
  std::int64_t bytes = 0;       // memory traffic of this instruction
  std::int64_t macs = 0;        // MAC count (compute instructions)
  double cycles = 0.0;          // timing-model estimate (excl. issue cost)
};

/// Cycle/byte totals of an instruction stream.
struct StreamStats {
  double compute_cycles = 0.0;
  double memory_cycles = 0.0;
  double issue_cycles = 0.0;
  std::int64_t ddr_bytes = 0;
  std::int64_t macs = 0;
  std::size_t instructions = 0;
};

StreamStats summarize(const std::vector<Instr>& stream,
                      double instr_overhead_cycles);

}  // namespace seneca::dpu
