#pragma once
// SENECA-Prove: static verification of compiled DPU programs (DESIGN.md §10).
//
// The compiler's chain of trust — quantizer → passes → XModel → DPU — is
// easy to miscompile silently: an off-by-one concat offset or a stale
// residency bit produces a program that still runs and returns plausible
// garbage. verify() re-derives, from nothing but the XModel and the arch
// description, every invariant the pass pipeline is supposed to have
// established, and reports violations as structured Findings:
//
//   1. buffer liveness & aliasing — SAVE/LOAD offset bounds (including the
//      offset-addressed concat regions), double-writes into overlapping
//      channel ranges, loads of never-written or dead DDR bytes;
//   2. dataflow soundness — every instruction's inputs dominated by their
//      producers under the emitted schedule, no use of freed residency
//      slots;
//   3. arithmetic range analysis — interval propagation of int8
//      activations through the conv/tconv accumulators to statically prove
//      int32 headroom per layer, cross-validated against the runtime
//      acc32_safe predicate (quant/kernels.cpp), plus requant-shift domain
//      checks;
//   4. cycle-model consistency — per-instruction cycles and the per-layer
//      latency must re-derive from the arch timing model.
//
// It runs as a mandatory post-pass on every compile() (make_verify_pass)
// and standalone over .xmodel files via tools/seneca_verify.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "dpu/xmodel.hpp"
#include "quant/qgraph.hpp"

namespace seneca::dpu {

enum class Severity : std::uint8_t { kNote = 0, kWarning = 1, kError = 2 };

const char* severity_name(Severity s);

/// One diagnostic. `layer` / `instr` locate it (-1 = model- / layer-level;
/// `instr` indexes into the layer's instruction stream); `check` is the
/// stable check id tests key on; `message` is human-readable.
struct Finding {
  Severity severity = Severity::kError;
  std::int32_t layer = -1;
  std::int32_t instr = -1;
  std::string check;
  std::string message;
};

struct VerifyOptions {
  // Cycle-model consistency is tolerance-based because Instr::cycles
  // round-trips the xmodel file as f32; in-memory programs are exact.
  bool check_cycles = true;
  double cycle_rel_tol = 1e-4;
};

/// The static int32-headroom proof for one conv/tconv layer, kept for
/// cross-validation against the runtime predicate and for reporting.
struct RangeProof {
  std::int32_t layer = -1;
  quant::Interval in;   // input activation interval
  quant::Interval acc;  // worst-channel accumulator interval
  int shift = 0;        // requant shift fp_in + fp_w - fp_out
  bool acc_fits_i32 = false;    // proof: accumulator stays inside int32
  bool shift32_proven = false;  // proof extends over the int32 requant path
  bool runtime_acc32 = false;   // coarse kernels::acc32_safe decision
};

/// Runs every check over a compiled model. Empty result = verified clean.
std::vector<Finding> verify(const XModel& model, const VerifyOptions& opts = {});

/// Interval-propagation pass alone (also run inside verify()); exposed so
/// tests and tools can inspect the per-layer proofs.
std::vector<RangeProof> range_analysis(const XModel& model);

bool has_errors(const std::vector<Finding>& findings);

/// Renders findings as one aligned line each, annotated with layer names
/// and instruction opcodes from the model, plus a severity tally header.
std::string format_findings(const XModel& model,
                            const std::vector<Finding>& findings);

/// The one error channel of the compiler: structural validation
/// (dpu::validate) and the verifier both throw this. Derives from
/// std::invalid_argument so pre-existing catch sites keep working, and
/// carries the structured findings for callers that want the instr/layer
/// context programmatically.
class CompileError : public std::invalid_argument {
 public:
  explicit CompileError(const std::string& msg,
                        std::vector<Finding> findings = {})
      : std::invalid_argument(msg), findings_(std::move(findings)) {}

  const std::vector<Finding>& findings() const noexcept { return findings_; }

 private:
  std::vector<Finding> findings_;
};

/// verify() + throw CompileError with the formatted report when any
/// finding is an error.
void verify_or_throw(const XModel& model, const VerifyOptions& opts = {});

}  // namespace seneca::dpu
