#include "dpu/disasm.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <sstream>

namespace seneca::dpu {

namespace {

const char* kind_name(XLayer::Kind kind) {
  switch (kind) {
    case XLayer::Kind::kConv: return "CONV";
    case XLayer::Kind::kTConv: return "TCONV";
    case XLayer::Kind::kPool: return "POOL";
    case XLayer::Kind::kConcat: return "CONCAT";
    case XLayer::Kind::kConst: return "CONST";
  }
  return "?";
}

// Pass-pipeline annotations: redirected stores, assembled concat buffers,
// and tiling decisions. Empty for a plain (-O0) program, which keeps the
// -O0 disassembly byte-identical to the pre-pipeline compiler's.
std::string layer_attrs(const XLayer& l) {
  std::string s;
  char buf[64];
  if (l.output_resident) s += " [resident]";
  if (l.concat_dst >= 0) {
    std::snprintf(buf, sizeof buf, " [store->L%03d@ch%lld]", l.concat_dst,
                  static_cast<long long>(l.concat_offset));
    s += buf;
  }
  if (l.materialized) s += " [materialized]";
  if (l.tile_count > 1) {
    std::snprintf(buf, sizeof buf, " [tiled x%d %s]", l.tile_count,
                  l.tile_mode == 1 ? "rows" : "co");
    s += buf;
  }
  return s;
}

/// The `!!` annotation line for one verifier finding.
std::string finding_line(const Finding& f) {
  std::string s = "      !! " + std::string(severity_name(f.severity)) + "[" +
                  f.check + "]";
  if (f.instr >= 0) s += " instr " + std::to_string(f.instr);
  return s + ": " + f.message + "\n";
}

}  // namespace

std::string disassemble(const XModel& m, const DisasmOptions& opts) {
  std::ostringstream os;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "xmodel \"%s\" for %s (%d cores @ %.0f MHz, %lldx%lldx%lld lanes)\n",
                m.name.c_str(), m.arch.name.c_str(), m.arch.cores,
                m.arch.clock_mhz,
                static_cast<long long>(m.arch.pixel_parallel),
                static_cast<long long>(m.arch.input_channel_parallel),
                static_cast<long long>(m.arch.output_channel_parallel));
  os << buf;
  std::snprintf(buf, sizeof buf,
                "input %s fix_pos=%d | output layer %d fix_pos=%d\n",
                m.input_shape.to_string().c_str(), m.input_fix_pos,
                m.output_layer, m.output_fix_pos);
  os << buf;
  if (opts.findings != nullptr) {
    for (const auto& f : *opts.findings) {
      if (f.layer < 0) os << finding_line(f);
    }
  }

  for (std::size_t i = 0; i < m.layers.size(); ++i) {
    const XLayer& l = m.layers[i];
    std::snprintf(buf, sizeof buf,
                  "L%03zu %-7s %-18s -> %-12s relu=%d fpw=%d fpo=%d%s\n", i,
                  kind_name(l.kind), l.name.c_str(),
                  l.out_shape.to_string().c_str(), l.relu ? 1 : 0, l.fix_pos_w,
                  l.fix_pos_out, layer_attrs(l).c_str());
    os << buf;
    if (opts.instructions) {
      for (const auto& ins : l.instrs) {
        char region[32] = "";
        if (ins.dst_id >= 0) {
          std::snprintf(region, sizeof region, " ->L%03d@ch%lld", ins.dst_id,
                        static_cast<long long>(ins.chan_off));
        }
        std::snprintf(buf, sizeof buf,
                      "      %-6s tensor=%-3d bytes=%-9lld macs=%-11lld cycles=%.0f%s\n",
                      opcode_name(ins.opcode), ins.tensor_id,
                      static_cast<long long>(ins.bytes),
                      static_cast<long long>(ins.macs), ins.cycles, region);
        os << buf;
      }
    }
    if (opts.findings != nullptr) {
      for (const auto& f : *opts.findings) {
        if (f.layer == static_cast<std::int32_t>(i)) os << finding_line(f);
      }
    }
  }

  if (opts.summary) {
    std::snprintf(buf, sizeof buf,
                  "TOTAL: %zu layers, %zu instrs, %.1f MMACs, %.2f MB DDR/inf, "
                  "util %.1f %%\n",
                  m.layers.size(), m.total_instructions(),
                  static_cast<double>(m.total_macs()) / 1e6,
                  static_cast<double>(m.total_ddr_bytes()) / 1e6,
                  100.0 * m.compute_utilization());
    os << buf;
    std::snprintf(buf, sizeof buf,
                  "LATENCY: %.2f ms (exclusive DDR) / %.2f ms (%d sharers)\n",
                  1e3 * m.latency_seconds(1), 1e3 * m.latency_seconds(opts.bw_sharers),
                  opts.bw_sharers);
    os << buf;
  }
  return os.str();
}

std::string latency_breakdown(const XModel& m, int bw_sharers) {
  std::vector<std::size_t> order(m.layers.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return m.layer_latency_cycles(m.layers[a], bw_sharers) >
           m.layer_latency_cycles(m.layers[b], bw_sharers);
  });
  // Percentages are over the sum of per-layer latencies (the per-job
  // constant overhead is not attributable to any layer).
  double total = 0.0;
  for (const auto& l : m.layers) total += m.layer_latency_cycles(l, bw_sharers);

  std::ostringstream os;
  os << "layer latency breakdown (" << bw_sharers << " bandwidth sharers):\n";
  char buf[256];
  for (std::size_t idx : order) {
    const XLayer& l = m.layers[idx];
    const double cycles = m.layer_latency_cycles(l, bw_sharers);
    std::snprintf(buf, sizeof buf,
                  "  %5.1f %%  %-18s %-7s compute=%-9.0f mem_bytes=%-9lld\n",
                  100.0 * cycles / total, l.name.c_str(), kind_name(l.kind),
                  l.compute_cycles, static_cast<long long>(l.ddr_bytes));
    os << buf;
  }
  return os.str();
}

}  // namespace seneca::dpu
