#pragma once
// The compiled model artifact ("xmodel", §III-E): the DPU-executable form of
// a quantized network. Produced by the compiler, consumed by the core
// simulator and the VART-style runtime. Serializable to a binary file so
// that compile-once/deploy-many works exactly like the real flow.

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "dpu/arch.hpp"
#include "dpu/isa.hpp"
#include "tensor/tensor.hpp"

namespace seneca::dpu {

using tensor::Shape;

struct XLayer {
  enum class Kind : std::uint8_t {
    kConv = 0,
    kTConv = 1,
    kPool = 2,
    kConcat = 3,
    kConst = 4,  // compile-time-folded feature map living in the weights blob
  };

  Kind kind = Kind::kConv;
  std::string name;
  std::vector<std::int32_t> inputs;  // producing layer ids; -1 = network input
  Shape out_shape;
  std::int64_t kernel = 0;
  bool relu = false;
  int fix_pos_w = 0;
  int fix_pos_out = 0;

  // Weight/bias slices into the xmodel blobs (conv layers only).
  std::int64_t weight_offset = 0;
  std::int64_t weight_count = 0;
  std::int64_t bias_offset = 0;
  std::int64_t bias_count = 0;

  // Compiler decisions: whether each input is resident in the global memory
  // pool (no LOAD needed) and whether the output stays resident (no SAVE).
  std::vector<std::uint8_t> input_resident;
  bool output_resident = false;

  // Concat elimination: this layer stores its output (requantized on the
  // fly) at channel offset `concat_offset` inside layer `concat_dst`'s
  // buffer; a concat layer with `materialized` set has its buffer assembled
  // by those stores plus region LOADs and carries no kConcat instruction.
  std::int32_t concat_dst = -1;
  std::int64_t concat_offset = 0;
  bool materialized = false;

  // Tile search: >1 splits the layer's DDR traffic into `tile_count` slices
  // double-buffered against compute. tile_mode: 0=none, 1=rows, 2=co-chans
  // (mirrors ir::TileMode). overlap_bytes is the pipelined share of
  // ddr_bytes; the remainder stays serial with compute.
  std::uint8_t tile_mode = 0;
  std::int32_t tile_count = 1;
  std::int64_t overlap_bytes = 0;

  std::vector<Instr> instrs;

  // Timing-model summary (memory latency is bandwidth-dependent, so raw
  // bytes are kept and converted at query time).
  double compute_cycles = 0.0;
  std::int64_t ddr_bytes = 0;
  std::int64_t macs = 0;
};

struct XModel {
  DpuArch arch;
  std::string name;
  Shape input_shape;
  int input_fix_pos = 0;   // host input scaling factor = 2^input_fix_pos
  int output_layer = -1;
  int output_fix_pos = 0;

  std::vector<XLayer> layers;
  std::vector<std::int8_t> weights;
  std::vector<std::int32_t> biases;

  /// End-to-end latency (cycles) of one inference on one core when
  /// `bw_sharers` cores contend for DDR bandwidth; sum of
  /// layer_latency_cycles plus job overhead.
  double latency_cycles(int bw_sharers = 1) const;

  /// One layer's cycles at a given bandwidth share. Untiled layers
  /// serialize compute and memory; tiled layers overlap `overlap_bytes` of
  /// traffic with compute, exposing only the first tile of the shorter
  /// phase: serial/bpc + max(compute, overlap/bpc) + min(...)/tile_count.
  double layer_latency_cycles(const XLayer& layer, int bw_sharers) const;

  /// Latency in seconds at the arch clock.
  double latency_seconds(int bw_sharers = 1) const;

  std::int64_t total_macs() const;
  std::int64_t total_ddr_bytes() const;
  std::size_t total_instructions() const;

  /// Mean hybrid-array utilization during compute phases: MACs per compute
  /// cycle over the array's peak (diagnostic for the lane-quantization
  /// effect discussed in DESIGN.md §4).
  double compute_utilization() const;

  /// Binary "SENECAX2" encoding (the .xmodel file body). deserialize() is
  /// hostile-input safe: every count field is bounded by the remaining
  /// stream before allocation and every enum is validated, so corrupted or
  /// adversarial bytes produce a descriptive std::runtime_error — never a
  /// crash or an unbounded allocation.
  std::vector<std::uint8_t> serialize() const;
  static XModel deserialize(std::vector<std::uint8_t> bytes);

  void save(const std::filesystem::path& path) const;
  static XModel load(const std::filesystem::path& path);
};

}  // namespace seneca::dpu
