#pragma once
// DPU microarchitecture description (Fig. 2): the Zynq-based dual-core
// DPUCZDX8G-B4096. The B4096 designation is the peak ops/cycle: with
// pixel x input-channel x output-channel parallelism of 8x16x16 = 2048
// MACs/cycle = 4096 ops/cycle per core.
//
// Timing constants: clock and DDR bandwidth follow the ZCU104 reference
// design (300 MHz DPU clock, DDR4-2400 64-bit ≈ 19.2 GB/s shared). The two
// fitted constants (instruction issue overhead, runtime job overhead in
// src/runtime) were calibrated ONCE against Table IV's 1M row and are reused
// unchanged for every other configuration — see DESIGN.md §4.

#include <cstdint>
#include <string>

namespace seneca::dpu {

struct DpuArch {
  std::string name = "DPUCZDX8G-B4096";
  int cores = 2;

  // Hybrid computing array parallelism degrees (§III-E).
  std::int64_t pixel_parallel = 8;
  std::int64_t input_channel_parallel = 16;
  std::int64_t output_channel_parallel = 16;

  double clock_mhz = 300.0;

  // Global memory pool (on-chip activation/weight buffers).
  std::int64_t onchip_bytes = 4ll << 20;

  // DDR feature maps are stored in channel banks of this granularity; a
  // tensor with C channels occupies ceil(C/8)*8 bytes per pixel.
  std::int64_t act_bank_channels = 8;

  // Fraction of the global memory pool reserved for parked weights; models
  // whose (padded) weights exceed it stream the overflow every inference.
  double weight_pool_fraction = 0.30;

  // DDR bytes per DPU cycle available to one core when `sharers` cores are
  // active (bandwidth is shared at the memory controller).
  double ddr_bytes_per_cycle_total = 8.0;  // ~2.4 GB/s effective @300 MHz

  // Fixed instruction fetch/decode/dispatch cost per instruction.
  double instr_overhead_cycles = 3000.0;

  // Per-inference job overhead on the accelerator side (kernel start,
  // completion interrupt, runtime bookkeeping attributable to the core).
  double job_overhead_cycles = 270000.0;  // 0.9 ms @ 300 MHz

  /// Peak int8 ops per cycle per core (MAC = 2 ops).
  std::int64_t peak_ops_per_cycle() const {
    return 2 * pixel_parallel * input_channel_parallel * output_channel_parallel;
  }

  /// Peak TOPS of the full device.
  double peak_tops() const {
    return static_cast<double>(peak_ops_per_cycle()) * cores * clock_mhz * 1e6 /
           1e12;
  }

  static DpuArch b4096() { return DpuArch{}; }

  /// Smaller configs (for the architecture-sweep ablation bench).
  static DpuArch b1024() {
    DpuArch a;
    a.name = "DPUCZDX8G-B1024";
    a.pixel_parallel = 4;
    a.input_channel_parallel = 8;
    a.output_channel_parallel = 16;
    return a;
  }
  static DpuArch b512() {
    DpuArch a;
    a.name = "DPUCZDX8G-B512";
    a.pixel_parallel = 4;
    a.input_channel_parallel = 8;
    a.output_channel_parallel = 8;
    return a;
  }
};

}  // namespace seneca::dpu
