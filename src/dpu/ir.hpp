#pragma once
// Mutable compiler IR sitting between quant::QGraph and the emitted XModel.
//
// The one-shot compiler became a pass pipeline (see DESIGN.md §7): lower()
// turns the validated QGraph into an ir::Graph of Nodes in topological
// order, passes annotate/rewrite it (dead-node elimination, constant
// folding, concat elimination, residency, tile search, scheduling, timing),
// and emit_xmodel() packs the final program. Every attribute a pass can set
// lives on the Node so later passes and the emitter never recompute a
// decision.
//
// Id convention (shared with XModel): node inputs reference producing node
// ids; -1 is the network input.

#include <cstdint>
#include <string>
#include <vector>

#include "dpu/arch.hpp"
#include "dpu/isa.hpp"
#include "dpu/xmodel.hpp"
#include "quant/qgraph.hpp"
#include "tensor/tensor.hpp"

namespace seneca::dpu::ir {

using tensor::Shape;
using tensor::TensorI8;

enum class NodeKind : std::uint8_t {
  kConv = 0,
  kTConv = 1,
  kPool = 2,
  kConcat = 3,
  kConst = 4,  // compile-time-known feature map (constant folding)
};

/// How a tiled layer overlaps its DDR traffic with compute.
enum class TileMode : std::uint8_t {
  kNone = 0,
  kRows = 1,      // row tiles: activation LOAD/SAVE double-buffered (+halo)
  kCoChannels = 2 // output-channel tiles: weight stream double-buffered
};

struct Node {
  NodeKind kind = NodeKind::kConv;
  std::string name;
  std::vector<int> inputs;  // producing node ids; -1 = network input
  Shape out_shape;
  int fix_pos_out = 0;

  // Conv/TConv payload.
  TensorI8 weights;                // [K][K][Cin][Cout]
  std::vector<std::int32_t> bias;  // [Cout]
  int fix_pos_w = 0;
  std::int64_t kernel = 0;
  bool relu = false;

  // Const payload (kConst nodes): the folded feature map at fix_pos_out.
  TensorI8 const_data;

  // --- Concat elimination (ConcatEliminationPass) ---
  // On a producer: store the output (requantized on the fly) into a channel
  // region of the concat node `concat_dst`'s buffer instead of emitting a
  // separate copy through the concat instruction.
  int concat_dst = -1;
  std::int64_t concat_offset = 0;  // channel offset inside the dst buffer
  // On a concat: true once the buffer is assembled by offset-addressed
  // producer stores / region loads; the kConcat instruction is then deleted.
  bool materialized = false;

  // --- Residency (ResidencyPass) ---
  std::vector<std::uint8_t> input_resident;  // per input: no LOAD needed
  bool output_resident = false;              // no SAVE needed
  bool weights_resident = false;             // weights parked on-chip

  // --- Tiling (TileSearchPass) ---
  TileMode tile_mode = TileMode::kNone;
  int tile_count = 1;
  std::int64_t halo_bytes = 0;  // extra activation-LOAD traffic (row halos)

  // --- Emission (SchedulePass + TimingPass) ---
  std::vector<Instr> instrs;
  double compute_cycles = 0.0;
  std::int64_t ddr_bytes = 0;
  std::int64_t overlap_bytes = 0;  // DDR bytes pipelined with compute
  std::int64_t macs = 0;
};

struct Graph {
  DpuArch arch;
  std::string name;
  Shape input_shape;
  int input_fix_pos = 0;
  std::vector<Node> nodes;  // topological order
  int output = -1;

  const Shape& shape_of(int id) const {
    return id < 0 ? input_shape : nodes[static_cast<std::size_t>(id)].out_shape;
  }

  /// Effective output fix position of a node (-1 = network input). Pools
  /// pass their input's position through unchanged, so this walks pool
  /// chains the same way the executors track fix positions at run time.
  int eff_fix_pos(int id) const;

  /// Consumer lists: for each node, the ids of nodes reading its output.
  std::vector<std::vector<int>> consumers() const;

  /// Removes nodes flagged in `dead` and remaps every id (inputs, output,
  /// concat_dst). Flagged nodes must not be referenced by surviving ones.
  void erase_nodes(const std::vector<bool>& dead);
};

/// Lowers a validated QGraph into the compiler IR (structure + payloads
/// only; no pass attributes set).
Graph lower(const quant::QGraph& qgraph, const DpuArch& arch,
            const std::string& model_name);

/// Packs a fully-scheduled IR (instructions + timing annotated) into the
/// executable artifact. kConst payloads go into the weights blob.
XModel emit_xmodel(const Graph& graph);

// --- Shared byte accounting (residency, tile search, scheduling). ---------

inline std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// DDR footprint of an activation tensor: channel-major banks of
/// `act_bank_channels`, so C pads up to the bank size per pixel.
std::int64_t act_tensor_bytes(const Shape& s, const DpuArch& arch);

/// Weight+bias DDR/stream footprint padded to the ICPxOCP lane grid.
std::int64_t padded_weight_bytes(const Node& node, const DpuArch& arch);

}  // namespace seneca::dpu::ir
