#include "dpu/core_sim.hpp"

#include <stdexcept>

#include "quant/kernels.hpp"

namespace seneca::dpu {

DpuCoreSim::DpuCoreSim(const XModel* model) : model_(model) {
  payloads_.resize(model_->layers.size());
  consts_.resize(model_->layers.size());
  for (std::size_t i = 0; i < model_->layers.size(); ++i) {
    const XLayer& layer = model_->layers[i];
    quant::QOp& op = payloads_[i];
    op.name = layer.name;
    op.out_shape = layer.out_shape;
    op.fix_pos_out = layer.fix_pos_out;
    op.fix_pos_w = layer.fix_pos_w;
    op.kernel = layer.kernel;
    op.relu = layer.relu;
    if (layer.kind == XLayer::Kind::kConst) {
      // The folded feature map rides in the weights blob, unpadded HWC.
      consts_[i] = TensorI8(layer.out_shape);
      std::copy(model_->weights.begin() + layer.weight_offset,
                model_->weights.begin() + layer.weight_offset + layer.weight_count,
                consts_[i].data());
      continue;
    }
    switch (layer.kind) {
      case XLayer::Kind::kConv: op.kind = quant::QOpKind::kConv2D; break;
      case XLayer::Kind::kTConv: op.kind = quant::QOpKind::kTConv2D; break;
      case XLayer::Kind::kPool: op.kind = quant::QOpKind::kMaxPool2D; break;
      case XLayer::Kind::kConcat: op.kind = quant::QOpKind::kConcat; break;
      case XLayer::Kind::kConst: break;  // handled above
    }
    if (layer.weight_count > 0) {
      // Reconstruct the weight tensor from the blob: [K][K][Cin][Cout].
      const std::int64_t co = layer.out_shape[2];
      const std::int64_t ci =
          layer.weight_count / (layer.kernel * layer.kernel * co);
      op.weights = tensor::TensorI8(
          tensor::Shape{layer.kernel, layer.kernel, ci, co});
      std::copy(model_->weights.begin() + layer.weight_offset,
                model_->weights.begin() + layer.weight_offset + layer.weight_count,
                op.weights.data());
      op.bias.assign(model_->biases.begin() + layer.bias_offset,
                     model_->biases.begin() + layer.bias_offset + layer.bias_count);
    }
  }
}

RunResult DpuCoreSim::run(const TensorI8& input, int bw_sharers,
                          tensor::TensorArena* arena) const {
  if (input.shape() != model_->input_shape) {
    throw std::invalid_argument("DpuCoreSim::run: input shape mismatch");
  }
  std::vector<TensorI8> acts(model_->layers.size());
  std::vector<int> fps(model_->layers.size(), 0);

  auto input_of = [&](int id) -> const TensorI8& {
    if (id < 0) return input;
    // Folded kConst feature maps are read in place from the construction-time
    // decode; they never enter the per-frame activation set.
    if (model_->layers[static_cast<std::size_t>(id)].kind ==
        XLayer::Kind::kConst) {
      return consts_[static_cast<std::size_t>(id)];
    }
    return acts[static_cast<std::size_t>(id)];
  };
  auto fp_of = [&](int id) {
    return id < 0 ? model_->input_fix_pos : fps[static_cast<std::size_t>(id)];
  };

  for (std::size_t i = 0; i < model_->layers.size(); ++i) {
    const XLayer& layer = model_->layers[i];
    if (layer.kind == XLayer::Kind::kConst) {
      fps[i] = layer.fix_pos_out;  // aliased via input_of, nothing to execute
      continue;
    }
    const quant::QOp& op = payloads_[i];
    TensorI8 out =
        arena ? arena->acquire(layer.out_shape) : TensorI8(layer.out_shape);
    switch (layer.kind) {
      case XLayer::Kind::kConv:
        quant::kernels::conv2d(input_of(layer.inputs[0]), op, out,
                               fp_of(layer.inputs[0]));
        break;
      case XLayer::Kind::kTConv:
        quant::kernels::tconv2d(input_of(layer.inputs[0]), op, out,
                                fp_of(layer.inputs[0]), arena);
        break;
      case XLayer::Kind::kPool:
        quant::kernels::maxpool2d(input_of(layer.inputs[0]), out);
        break;
      case XLayer::Kind::kConcat:
        if (layer.materialized) {
          // Offset-addressed assembly: each input lands in its channel
          // region of this buffer, requantized on the way in — either by a
          // producer's redirected store or by a region LOAD. The requant
          // (sat8(rshift_round(v, fp_in - fp_out))) is the same arithmetic
          // the deleted kConcat copy performed, so outputs are bit-exact.
          std::int64_t chan_off = 0;
          for (int src : layer.inputs) {
            const TensorI8& in = input_of(src);
            const std::int64_t ci = in.shape()[2];
            const int shift = fp_of(src) - layer.fix_pos_out;
            const std::int64_t co = layer.out_shape[2];
            const std::int64_t pixels = in.numel() / ci;
            for (std::int64_t p = 0; p < pixels; ++p) {
              quant::kernels::requant_row(in.data() + p * ci,
                                          out.data() + p * co + chan_off, ci,
                                          shift);
            }
            chan_off += ci;
          }
        } else {
          quant::kernels::concat(input_of(layer.inputs[0]),
                                 fp_of(layer.inputs[0]),
                                 input_of(layer.inputs[1]),
                                 fp_of(layer.inputs[1]), out,
                                 layer.fix_pos_out);
        }
        break;
      case XLayer::Kind::kConst:
        break;  // unreachable: handled before the payload dispatch
    }
    acts[i] = std::move(out);
    fps[i] = (layer.kind == XLayer::Kind::kPool) ? fp_of(layer.inputs[0])
                                                 : layer.fix_pos_out;
  }

  RunResult result;
  const std::size_t out_id = static_cast<std::size_t>(model_->output_layer);
  if (model_->layers[out_id].kind == XLayer::Kind::kConst) {
    result.output = consts_[out_id];  // degenerate fully-folded model
  } else {
    result.output = std::move(acts[out_id]);
  }
  if (arena) {
    for (auto& t : acts) arena->release(std::move(t));
  }
  result.cycles = model_->latency_cycles(bw_sharers);
  result.seconds = model_->latency_seconds(bw_sharers);
  return result;
}

}  // namespace seneca::dpu
