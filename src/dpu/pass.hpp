#pragma once
// Pass framework for the DPU compiler pipeline. A Pass rewrites or
// annotates the ir::Graph in place; the PassManager runs them in order and
// can record per-pass before/after program stats (instruction count and
// single-sharer cycles per frame) by provisionally finishing a clone of the
// graph after each pass — see passes.hpp::measure_program.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dpu/ir.hpp"

namespace seneca::dpu {

class Pass {
 public:
  virtual ~Pass() = default;
  virtual const char* name() const = 0;
  /// Returns true when the pass changed the graph.
  virtual bool run(ir::Graph& graph) = 0;
};

/// Program size/speed of one pipeline stage, measured on a finished clone.
struct PassStats {
  std::string pass;
  bool changed = false;
  std::size_t instrs_before = 0;
  std::size_t instrs_after = 0;
  double cycles_before = 0.0;
  double cycles_after = 0.0;
};

/// Per-compile report of what each pass bought (--dump-passes).
struct CompileReport {
  std::vector<PassStats> passes;
};

/// Renders the report as an aligned text table.
std::string format_pass_table(const CompileReport& report);

class PassManager {
 public:
  /// Program metric probe used for stats: {instructions, cycles}.
  using Measure = std::function<std::pair<std::size_t, double>(const ir::Graph&)>;

  void add(std::unique_ptr<Pass> pass) { passes_.push_back(std::move(pass)); }

  /// Runs all passes in order. When `report` is non-null, `measure` is
  /// invoked on a copy of the graph around every pass to fill per-pass
  /// stats (measurement is skipped entirely when no report is wanted).
  void run(ir::Graph& graph, CompileReport* report = nullptr,
           const Measure& measure = nullptr) const;

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

}  // namespace seneca::dpu
