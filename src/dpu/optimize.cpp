// Optimizing passes: constant folding, dead-node elimination, concat
// elimination, and tile-size search. All graph rewrites preserve the
// integer reference semantics bit-exactly: folding runs the quant
// reference kernels at compile time, and concat elimination moves the
// qconcat requantization (sat8(rshift_round(v, fp_in - fp_out))) into the
// offset-addressed store/load path without changing the arithmetic.

#include <algorithm>
#include <limits>

#include "dpu/compiler.hpp"
#include "dpu/passes.hpp"

namespace seneca::dpu {

namespace {

using ir::Graph;
using ir::Node;
using ir::NodeKind;
using ir::TileMode;
using tensor::TensorI8;

// --- Constant folding ------------------------------------------------------

void to_const(Node& n, TensorI8 data) {
  n.kind = NodeKind::kConst;
  n.const_data = std::move(data);
  n.inputs.clear();
  n.weights = TensorI8();
  n.bias.clear();
  n.fix_pos_w = 0;
  n.kernel = 0;
  n.relu = false;
}

quant::QOp as_qop(const Node& n) {
  quant::QOp op;
  op.out_shape = n.out_shape;
  op.fix_pos_out = n.fix_pos_out;
  op.weights = n.weights;
  op.bias = n.bias;
  op.fix_pos_w = n.fix_pos_w;
  op.kernel = n.kernel;
  op.relu = n.relu;
  return op;
}

class ConstantFoldPass final : public Pass {
 public:
  const char* name() const override { return "const-fold"; }

  bool run(Graph& g) override {
    bool any = false;
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t i = 0; i < g.nodes.size(); ++i) {
        Node& n = g.nodes[i];
        if (n.kind == NodeKind::kConst) continue;
        if (fold_zero_weights(g, n) || fold_const_inputs(g, n)) {
          changed = any = true;
        }
      }
    }
    return any;
  }

 private:
  // A conv/tconv whose weights are all zero computes
  // sat8(rshift_round(bias[o], fp_in + fp_w - fp_out)) at every pixel —
  // the same per-channel map the reference kernel would produce — so the
  // layer collapses to a constant regardless of its input (pruning hook).
  static bool fold_zero_weights(Graph& g, Node& n) {
    if (n.kind != NodeKind::kConv && n.kind != NodeKind::kTConv) return false;
    if (n.weights.numel() == 0) return false;
    for (std::int64_t i = 0; i < n.weights.numel(); ++i) {
      if (n.weights[i] != 0) return false;
    }
    const int shift = g.eff_fix_pos(n.inputs[0]) + n.fix_pos_w - n.fix_pos_out;
    const std::int64_t co = n.out_shape[2];
    TensorI8 data(n.out_shape);
    std::vector<std::int8_t> chan(static_cast<std::size_t>(co));
    for (std::int64_t o = 0; o < co; ++o) {
      std::int64_t v = quant::rshift_round(n.bias[static_cast<std::size_t>(o)], shift);
      if (n.relu && v < 0) v = 0;
      chan[static_cast<std::size_t>(o)] = quant::saturate_i8(v);
    }
    for (std::int64_t i = 0; i < data.numel(); ++i) {
      data[i] = chan[static_cast<std::size_t>(i % co)];
    }
    to_const(n, std::move(data));
    return true;
  }

  // A node whose inputs are all compile-time constants is evaluated with
  // the integer reference kernels — bit-exact by construction.
  static bool fold_const_inputs(Graph& g, Node& n) {
    if (n.inputs.empty()) return false;
    for (int in : n.inputs) {
      if (in < 0 || g.nodes[static_cast<std::size_t>(in)].kind != NodeKind::kConst) {
        return false;
      }
    }
    const Node& a = g.nodes[static_cast<std::size_t>(n.inputs[0])];
    TensorI8 out(n.out_shape);
    switch (n.kind) {
      case NodeKind::kConv:
        quant::qconv2d_forward(a.const_data, as_qop(n), out, a.fix_pos_out);
        break;
      case NodeKind::kTConv:
        quant::qtconv2d_forward(a.const_data, as_qop(n), out, a.fix_pos_out);
        break;
      case NodeKind::kPool:
        quant::qmaxpool2d_forward(a.const_data, out);
        n.fix_pos_out = a.fix_pos_out;  // pool passes fix position through
        break;
      case NodeKind::kConcat: {
        const Node& b = g.nodes[static_cast<std::size_t>(n.inputs[1])];
        quant::qconcat_forward(a.const_data, a.fix_pos_out, b.const_data,
                               b.fix_pos_out, out, n.fix_pos_out);
        break;
      }
      case NodeKind::kConst:
        return false;
    }
    to_const(n, std::move(out));
    return true;
  }
};

// --- Dead-node elimination -------------------------------------------------

class DeadNodeEliminationPass final : public Pass {
 public:
  const char* name() const override { return "dce"; }

  bool run(Graph& g) override {
    std::vector<bool> live(g.nodes.size(), false);
    std::vector<int> stack{g.output};
    while (!stack.empty()) {
      const int id = stack.back();
      stack.pop_back();
      if (id < 0 || live[static_cast<std::size_t>(id)]) continue;
      live[static_cast<std::size_t>(id)] = true;
      for (int in : g.nodes[static_cast<std::size_t>(id)].inputs) {
        stack.push_back(in);
      }
    }
    std::vector<bool> dead(g.nodes.size());
    bool any = false;
    for (std::size_t i = 0; i < g.nodes.size(); ++i) {
      dead[i] = !live[i];
      any = any || dead[i];
    }
    if (any) g.erase_nodes(dead);
    return any;
  }
};

// --- Concat elimination ----------------------------------------------------

class ConcatEliminationPass final : public Pass {
 public:
  const char* name() const override { return "concat-elim"; }

  bool run(Graph& g) override {
    bool any = false;
    const auto cons = g.consumers();
    const std::int64_t act_budget = g.arch.onchip_bytes / 2;
    for (std::size_t i = 0; i < g.nodes.size(); ++i) {
      Node& n = g.nodes[i];
      if (n.kind != NodeKind::kConcat || n.materialized) continue;
      // The buffer is assembled on-chip before any SAVE, so it must fit.
      if (ir::act_tensor_bytes(n.out_shape, g.arch) > act_budget) continue;

      // Every input must either redirect its producer's output into the
      // concat buffer (resident, sole-consumer producers: the U-Net tconv
      // path) or already be arriving from DDR (the skip path: its LOAD
      // becomes an offset-addressed region LOAD for free). A resident
      // input that cannot redirect would need a new on-chip copy, which
      // is the kConcat instruction we are trying to delete — bail.
      bool ok = true;
      std::vector<bool> redirect(n.inputs.size(), false);
      for (std::size_t k = 0; k < n.inputs.size() && ok; ++k) {
        const int src = n.inputs[k];
        if (!n.input_resident[k]) continue;  // region LOAD
        redirect[k] =
            src >= 0 && src != g.output &&
            cons[static_cast<std::size_t>(src)].size() == 1 &&
            g.nodes[static_cast<std::size_t>(src)].output_resident &&
            g.nodes[static_cast<std::size_t>(src)].kind != NodeKind::kConcat &&
            g.nodes[static_cast<std::size_t>(src)].kind != NodeKind::kConst &&
            g.nodes[static_cast<std::size_t>(src)].concat_dst < 0;
        ok = redirect[k];
      }
      if (!ok) continue;

      std::int64_t chan_off = 0;
      for (std::size_t k = 0; k < n.inputs.size(); ++k) {
        const Shape& in_shape = g.shape_of(n.inputs[k]);
        if (redirect[k]) {
          Node& p = g.nodes[static_cast<std::size_t>(n.inputs[k])];
          p.concat_dst = static_cast<int>(i);
          p.concat_offset = chan_off;
        }
        chan_off += in_shape[in_shape.rank() - 1];
      }
      n.materialized = true;
      any = true;
    }
    return any;
  }
};

// --- Tile-size search ------------------------------------------------------

class TileSearchPass final : public Pass {
 public:
  const char* name() const override { return "tile-search"; }

  bool run(Graph& g) override {
    bool any = false;
    const std::int64_t act_budget = g.arch.onchip_bytes / 2;
    for (Node& n : g.nodes) {
      if (n.kind != NodeKind::kConv && n.kind != NodeKind::kTConv) continue;
      const Shape& in_shape = g.shape_of(n.inputs[0]);
      const Shape& os = n.out_shape;
      const double c =
          n.kind == NodeKind::kConv
              ? conv_cycles(g.arch, os[0], os[1], n.kernel, in_shape[2], os[2])
              : tconv_cycles(g.arch, os[0], os[1], n.kernel, in_shape[2],
                             os[2]);
      const std::int64_t in_load =
          n.input_resident.empty() || !n.input_resident[0]
              ? ir::act_tensor_bytes(in_shape, g.arch)
              : 0;
      const std::int64_t w_load =
          n.weights_resident ? 0 : ir::padded_weight_bytes(n, g.arch);
      std::int64_t save = 0;
      if (!n.output_resident && n.concat_dst < 0) {
        save = ir::act_tensor_bytes(os, g.arch);
        if (os[os.rank() - 1] % g.arch.act_bank_channels != 0) save *= 2;
      }
      const std::int64_t in_row_bytes =
          in_shape[0] > 0 ? ir::act_tensor_bytes(in_shape, g.arch) / in_shape[0]
                          : 0;

      struct Candidate {
        TileMode mode = TileMode::kNone;
        int count = 1;
        std::int64_t halo = 0;
        double lat1 = std::numeric_limits<double>::infinity();
        double lat2 = std::numeric_limits<double>::infinity();
      };
      auto price = [&](std::int64_t serial, std::int64_t ov, int tiles,
                       int sharers) {
        const double bpc =
            g.arch.ddr_bytes_per_cycle_total / static_cast<double>(sharers);
        const double ovc = static_cast<double>(ov) / bpc;
        return static_cast<double>(serial) / bpc + std::max(c, ovc) +
               std::min(c, ovc) / static_cast<double>(tiles);
      };
      const double base1 = price(in_load + w_load + save, 0, 1, 1);
      const double base2 = price(in_load + w_load + save, 0, 1, 2);

      Candidate best;
      for (int t : {2, 4, 8, 16}) {
        // Row tiles: activation LOAD/SAVE stream against compute; tile
        // boundaries re-fetch (k-1) halo rows of the input.
        if (t <= os[0] / 4) {
          const std::int64_t halo =
              in_load > 0 ? static_cast<std::int64_t>(t - 1) * (n.kernel - 1) *
                                in_row_bytes
                          : 0;
          const std::int64_t ov = in_load + halo + save;
          if (ov > 0 && 2 * (ov / t) <= act_budget) {
            Candidate cand{TileMode::kRows, t, halo,
                           price(w_load, ov, t, 1), price(w_load, ov, t, 2)};
            if (cand.lat1 < best.lat1) best = cand;
          }
        }
        // Output-channel tiles: the weight stream (and the save) double-
        // buffer against compute; the full input must be on hand first.
        if (w_load > 0 && t <= os[2] / g.arch.output_channel_parallel) {
          const std::int64_t ov = w_load + save;
          if (2 * (ov / t) <= act_budget) {
            Candidate cand{TileMode::kCoChannels, t, 0,
                           price(in_load, ov, t, 1), price(in_load, ov, t, 2)};
            if (cand.lat1 < best.lat1) best = cand;
          }
        }
      }
      // Accept only clear wins: faster alone, not slower when sharing DDR.
      if (best.mode != TileMode::kNone && best.lat1 < base1 &&
          best.lat2 <= base2) {
        n.tile_mode = best.mode;
        n.tile_count = best.count;
        n.halo_bytes = best.halo;
        any = true;
      }
    }
    return any;
  }
};

}  // namespace

std::unique_ptr<Pass> make_constant_fold_pass() {
  return std::make_unique<ConstantFoldPass>();
}
std::unique_ptr<Pass> make_dead_node_elimination_pass() {
  return std::make_unique<DeadNodeEliminationPass>();
}
std::unique_ptr<Pass> make_concat_elimination_pass() {
  return std::make_unique<ConcatEliminationPass>();
}
std::unique_ptr<Pass> make_tile_search_pass() {
  return std::make_unique<TileSearchPass>();
}

}  // namespace seneca::dpu
