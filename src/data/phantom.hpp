#pragma once
// Procedural CT phantom — the CT-ORG dataset substitute (see DESIGN.md §1).
//
// A "patient" is a deterministic function of (dataset seed, patient id):
// body habitus, organ positions/sizes/intensities all jitter per patient.
// Axial slices are rendered at a normalized body coordinate z in [0,1]
// (0 = head vertex, 1 = below the pelvis). Organs occupy CT-ORG's label set;
// intensities follow a Hounsfield-unit model with partial-volume blur and
// acquisition noise, reproducing the paper's "low contrast among
// semantically different areas" premise — liver/kidneys/bladder sit within
// a few tens of HU of soft tissue, while lungs (air) and bones (calcium)
// are easy, which is exactly the per-organ difficulty ordering of Fig. 6.
//
// Scan types mimic CT-ORG's composition: most scans cover chest+abdomen or
// chest only; whole-body scans (the only ones containing brain) are rare,
// which is what makes brain 0.18 % of labelled pixels (Table I).

#include <cstdint>
#include <vector>

#include "data/organs.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace seneca::data {

using tensor::Shape;
using tensor::TensorF;
using LabelMap = tensor::Tensor<std::int32_t>;

enum class ScanType { kWholeBody, kChestOnly, kChestAbdomen };

struct PhantomConfig {
  std::int64_t resolution = 256;   // square slice edge (512 for "raw" mode)
  int slices_per_volume = 24;
  double noise_hu = 8.0;          // acquisition noise std-dev
  int blur_radius = 1;             // partial-volume Gaussian radius (pixels)
  bool include_brain = true;       // raw volumes carry brain labels
};

/// One rendered axial slice: HU image + crisp label map.
struct PhantomSlice {
  TensorF image_hu;  // [S,S,1], Hounsfield units
  LabelMap labels;   // [S,S], raw class ids (brain possible)
  double z = 0.0;    // normalized body coordinate
  int patient_id = 0;
};

/// A full scan of one patient.
struct PhantomVolume {
  std::vector<PhantomSlice> slices;
  ScanType scan_type = ScanType::kChestAbdomen;
  int patient_id = 0;
};

/// Per-patient anatomical parameters (exposed for tests/inspection).
struct PatientAnatomy {
  double body_rx, body_ry;     // torso half-axes (fraction of field of view)
  double size_jitter;          // global organ scale multiplier
  double liver_hu, kidney_hu, bladder_hu, soft_hu, lung_hu, bone_hu, brain_hu;
  double shift_x, shift_y;     // patient placement offset
  std::uint64_t shape_seed;    // drives organic boundary wobble
};

class PhantomGenerator {
 public:
  PhantomGenerator(PhantomConfig cfg, std::uint64_t dataset_seed);

  const PhantomConfig& config() const { return cfg_; }

  /// Deterministic anatomy for a patient id.
  PatientAnatomy anatomy(int patient_id) const;

  /// Scan coverage for a patient id; ~6 % whole-body, ~24 % chest-only,
  /// remainder chest+abdomen, mirroring CT-ORG's composition.
  ScanType scan_type(int patient_id) const;

  /// Renders one axial slice of a patient at body coordinate z.
  PhantomSlice render_slice(int patient_id, double z) const;

  /// Renders the whole scan: slices_per_volume slices covering the scan
  /// type's z range.
  PhantomVolume generate_volume(int patient_id) const;

  /// z range covered by a scan type: [z_lo, z_hi].
  static std::pair<double, double> scan_range(ScanType type);

 private:
  PhantomConfig cfg_;
  std::uint64_t dataset_seed_;
};

}  // namespace seneca::data
