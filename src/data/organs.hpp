#pragma once
// Organ/class nomenclature shared across the whole stack, matching the
// CT-ORG label set. Class ids 0..5 are the network's six output maps
// (background + five target organs, §III-B); brain (6) exists only in raw
// phantom volumes and is removed by preprocessing, as the paper removes it
// from the targets (§III-A).

#include <array>
#include <cstdint>
#include <string_view>

namespace seneca::data {

enum class Organ : std::int32_t {
  kBackground = 0,
  kLiver = 1,
  kBladder = 2,
  kLungs = 3,
  kKidneys = 4,
  kBones = 5,
  kBrain = 6,  // raw datasets only; never a network target
};

/// Number of network classes (background + 5 organs).
inline constexpr std::int64_t kNumClasses = 6;
/// Number of raw label values (including brain).
inline constexpr std::int64_t kNumRawClasses = 7;
/// Target organs, excluding background and brain.
inline constexpr std::int64_t kNumTargetOrgans = 5;

inline constexpr std::array<std::string_view, 7> kOrganNames = {
    "background", "liver", "bladder", "lungs", "kidneys", "bones", "brain"};

/// Table I: organ frequencies in CT-ORG as a percentage of labeled pixels.
/// Order: liver, bladder, lungs, kidneys, bones, brain.
inline constexpr std::array<double, 6> kPaperOrganFrequencies = {
    22.18, 2.51, 34.17, 4.70, 36.26, 0.18};

inline std::string_view organ_name(std::int32_t cls) {
  return kOrganNames[static_cast<std::size_t>(cls)];
}

}  // namespace seneca::data
