#include "data/dataset.hpp"

#include <numeric>

#include "util/rng.hpp"

namespace seneca::data {

namespace {
std::vector<nn::Sample> collect(const std::vector<SliceRecord>& records) {
  std::vector<nn::Sample> out;
  out.reserve(records.size());
  for (const auto& r : records) out.push_back(r.sample);
  return out;
}
}  // namespace

std::vector<nn::Sample> Dataset::train_samples() const { return collect(train); }
std::vector<nn::Sample> Dataset::val_samples() const { return collect(val); }
std::vector<nn::Sample> Dataset::test_samples() const { return collect(test); }

Dataset build_dataset(const DatasetConfig& cfg) {
  PhantomConfig pcfg;
  pcfg.resolution = cfg.resolution;
  pcfg.slices_per_volume = cfg.slices_per_volume;
  pcfg.noise_hu = cfg.noise_hu;
  PhantomGenerator gen(pcfg, cfg.seed);

  // Patient-level split: shuffle patient ids, then carve fractions.
  std::vector<int> patients(static_cast<std::size_t>(cfg.num_volumes));
  std::iota(patients.begin(), patients.end(), 0);
  util::Rng rng(cfg.seed ^ 0xD5A7A);
  rng.shuffle(patients);
  const auto n_train = static_cast<std::size_t>(cfg.train_fraction * cfg.num_volumes);
  const auto n_val = static_cast<std::size_t>(cfg.val_fraction * cfg.num_volumes);

  Dataset ds;
  for (std::size_t i = 0; i < patients.size(); ++i) {
    PhantomVolume vol = gen.generate_volume(patients[i]);
    auto* bucket = &ds.test;
    if (i < n_train) {
      bucket = &ds.train;
    } else if (i < n_train + n_val) {
      bucket = &ds.val;
    }
    for (auto& slice : vol.slices) {
      SliceRecord rec;
      rec.sample = preprocess_slice(slice);
      rec.patient_id = slice.patient_id;
      rec.z = slice.z;
      bucket->push_back(std::move(rec));
    }
  }
  return ds;
}

std::vector<double> organ_frequencies(
    const std::vector<const LabelMap*>& labels) {
  std::vector<std::int64_t> counts(static_cast<std::size_t>(kNumRawClasses), 0);
  for (const LabelMap* map : labels) {
    for (std::int64_t i = 0; i < map->numel(); ++i) {
      ++counts[static_cast<std::size_t>((*map)[i])];
    }
  }
  std::int64_t labeled = 0;
  for (std::size_t c = 1; c < counts.size(); ++c) labeled += counts[c];
  std::vector<double> freq(static_cast<std::size_t>(kNumRawClasses), 0.0);
  if (labeled == 0) return freq;
  for (std::size_t c = 1; c < counts.size(); ++c) {
    freq[c] = 100.0 * static_cast<double>(counts[c]) / static_cast<double>(labeled);
  }
  return freq;
}

std::vector<double> organ_frequencies(const std::vector<SliceRecord>& records) {
  std::vector<const LabelMap*> labels;
  labels.reserve(records.size());
  for (const auto& r : records) labels.push_back(&r.sample.labels);
  return organ_frequencies(labels);
}

std::vector<double> raw_organ_frequencies(int num_volumes,
                                          int slices_per_volume,
                                          std::int64_t resolution,
                                          std::uint64_t seed) {
  PhantomConfig pcfg;
  pcfg.resolution = resolution;
  pcfg.slices_per_volume = slices_per_volume;
  pcfg.include_brain = true;
  PhantomGenerator gen(pcfg, seed);
  std::vector<std::int64_t> counts(static_cast<std::size_t>(kNumRawClasses), 0);
  for (int p = 0; p < num_volumes; ++p) {
    PhantomVolume vol = gen.generate_volume(p);
    for (const auto& slice : vol.slices) {
      for (std::int64_t i = 0; i < slice.labels.numel(); ++i) {
        ++counts[static_cast<std::size_t>(slice.labels[i])];
      }
    }
  }
  std::int64_t labeled = 0;
  for (std::size_t c = 1; c < counts.size(); ++c) labeled += counts[c];
  std::vector<double> freq;
  for (std::size_t c = 1; c < counts.size(); ++c) {
    freq.push_back(labeled ? 100.0 * static_cast<double>(counts[c]) /
                                 static_cast<double>(labeled)
                           : 0.0);
  }
  return freq;  // order: liver, bladder, lungs, kidneys, bones, brain
}

}  // namespace seneca::data
