#pragma once
// Dataset assembly: renders phantom volumes, preprocesses every slice, and
// produces patient-level train/val/test splits (patients never straddle
// splits, as in the CT-ORG protocol). Also hosts the organ-frequency
// analyzer behind Table I.

#include <cstdint>
#include <vector>

#include "data/phantom.hpp"
#include "data/preprocess.hpp"

namespace seneca::data {

struct DatasetConfig {
  int num_volumes = 140;            // CT-ORG has 140 patients
  int slices_per_volume = 24;
  std::int64_t resolution = 256;
  double train_fraction = 0.70;
  double val_fraction = 0.10;       // remainder is test
  std::uint64_t seed = 1234;
  double noise_hu = 8.0;
};

struct SliceRecord {
  nn::Sample sample;  // preprocessed image [-1,1] + labels (brain removed)
  int patient_id = 0;
  double z = 0.0;
};

struct Dataset {
  std::vector<SliceRecord> train;
  std::vector<SliceRecord> val;
  std::vector<SliceRecord> test;

  std::vector<nn::Sample> train_samples() const;
  std::vector<nn::Sample> val_samples() const;
  std::vector<nn::Sample> test_samples() const;
};

/// Renders and preprocesses the full dataset. Cost scales with
/// num_volumes * slices_per_volume * resolution^2.
Dataset build_dataset(const DatasetConfig& cfg);

/// Percentage of *labeled* (non-background) pixels per organ class.
/// Returns indices 1..kNumRawClasses-1; entry 0 is unused (0).
std::vector<double> organ_frequencies(const std::vector<const LabelMap*>& labels);
std::vector<double> organ_frequencies(const std::vector<SliceRecord>& records);

/// Raw-label frequency analysis for Table I: renders `num_volumes` raw
/// phantom volumes (brain retained) and returns frequencies over organs
/// 1..6 in the order liver, bladder, lungs, kidneys, bones, brain.
std::vector<double> raw_organ_frequencies(int num_volumes,
                                          int slices_per_volume,
                                          std::int64_t resolution,
                                          std::uint64_t seed);

}  // namespace seneca::data
