#include "data/calibration.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace seneca::data {

namespace {

/// Per-slice labeled-pixel counts for organs 1..5.
std::array<std::int64_t, 5> organ_counts(const LabelMap& labels) {
  std::array<std::int64_t, 5> counts{};
  for (std::int64_t i = 0; i < labels.numel(); ++i) {
    const std::int32_t c = labels[i];
    if (c >= 1 && c <= 5) ++counts[static_cast<std::size_t>(c - 1)];
  }
  return counts;
}

std::array<double, 5> to_percentages(const std::array<std::int64_t, 5>& counts) {
  std::array<double, 5> freq{};
  std::int64_t total = 0;
  for (auto c : counts) total += c;
  if (total == 0) return freq;
  for (std::size_t i = 0; i < 5; ++i) {
    freq[i] = 100.0 * static_cast<double>(counts[i]) / static_cast<double>(total);
  }
  return freq;
}

}  // namespace

CalibrationSet sample_calibration_random(const std::vector<SliceRecord>& pool,
                                         std::size_t size, std::uint64_t seed) {
  if (pool.empty()) throw std::invalid_argument("calibration: empty pool");
  util::Rng rng(seed);
  std::vector<std::size_t> order(pool.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);
  size = std::min(size, pool.size());

  CalibrationSet set;
  std::array<std::int64_t, 5> totals{};
  for (std::size_t k = 0; k < size; ++k) {
    const SliceRecord& rec = pool[order[k]];
    set.images.push_back(rec.sample.image);
    const auto counts = organ_counts(rec.sample.labels);
    for (std::size_t i = 0; i < 5; ++i) totals[i] += counts[i];
  }
  set.frequencies = to_percentages(totals);
  return set;
}

CalibrationSet sample_calibration_manual(const std::vector<SliceRecord>& pool,
                                         std::size_t size,
                                         const std::array<double, 5>& target) {
  if (pool.empty()) throw std::invalid_argument("calibration: empty pool");
  size = std::min(size, pool.size());

  std::vector<std::array<std::int64_t, 5>> counts(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    counts[i] = organ_counts(pool[i].sample.labels);
  }

  std::vector<bool> used(pool.size(), false);
  std::array<std::int64_t, 5> totals{};
  CalibrationSet set;
  for (std::size_t k = 0; k < size; ++k) {
    double best_score = std::numeric_limits<double>::infinity();
    std::size_t best_idx = pool.size();
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (used[i]) continue;
      std::array<std::int64_t, 5> trial = totals;
      for (std::size_t c = 0; c < 5; ++c) trial[c] += counts[i][c];
      const auto freq = to_percentages(trial);
      // Relative error: a missing rare organ (bladder) must cost more than a
      // mild overshoot of an abundant one (bones), otherwise greedy selection
      // starves the small organs — the exact failure the manual set corrects.
      double score = 0.0;
      for (std::size_t c = 0; c < 5; ++c) {
        score += std::fabs(freq[c] - target[c]) / target[c];
      }
      if (score < best_score) {
        best_score = score;
        best_idx = i;
      }
    }
    used[best_idx] = true;
    for (std::size_t c = 0; c < 5; ++c) totals[c] += counts[best_idx][c];
    set.images.push_back(pool[best_idx].sample.image);
  }
  set.frequencies = to_percentages(totals);
  return set;
}

}  // namespace seneca::data
