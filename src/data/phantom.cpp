#include "data/phantom.hpp"

#include <algorithm>
#include <cmath>

namespace seneca::data {

namespace {

constexpr double kPi = 3.14159265358979323846;

// z landmarks of the phantom body (normalized body coordinate).
constexpr double kBrainZ0 = 0.015, kBrainZ1 = 0.075;
constexpr double kSkullZ0 = 0.0, kSkullZ1 = 0.10;
constexpr double kLungZ0 = 0.17, kLungZ1 = 0.43;
constexpr double kLiverZ0 = 0.40, kLiverZ1 = 0.56;
constexpr double kKidneyZ0 = 0.56, kKidneyZ1 = 0.74;
constexpr double kBladderZ0 = 0.79, kBladderZ1 = 0.91;
constexpr double kRibsZ0 = 0.15, kRibsZ1 = 0.46;
constexpr double kPelvisZ0 = 0.72, kPelvisZ1 = 0.95;
constexpr double kSpineZ0 = 0.10, kSpineZ1 = 0.97;

/// Smooth 0->1->0 size profile of an organ across its z extent.
double z_profile(double z, double z0, double z1) {
  if (z <= z0 || z >= z1) return 0.0;
  const double t = (z - z0) / (z1 - z0);
  return std::sqrt(std::sin(kPi * t));
}

/// Organic boundary: ellipse membership with low-order harmonic wobble.
struct WobblyEllipse {
  double cx, cy, rx, ry;
  double a3, p3, a5, p5;  // harmonic amplitudes/phases

  bool contains(double x, double y) const {
    if (rx <= 0.0 || ry <= 0.0) return false;
    const double dx = (x - cx) / rx;
    const double dy = (y - cy) / ry;
    const double rho2 = dx * dx + dy * dy;
    if (rho2 > 1.8) return false;  // cheap reject beyond max wobble
    const double theta = std::atan2(dy, dx);
    const double edge =
        1.0 + a3 * std::sin(3.0 * theta + p3) + a5 * std::sin(5.0 * theta + p5);
    return rho2 < edge * edge;
  }

  /// Annulus membership between inner*edge and edge (for skull/pelvis rings).
  bool contains_ring(double x, double y, double inner) const {
    if (rx <= 0.0 || ry <= 0.0) return false;
    const double dx = (x - cx) / rx;
    const double dy = (y - cy) / ry;
    const double rho = std::sqrt(dx * dx + dy * dy);
    if (rho > 1.8) return false;
    const double theta = std::atan2(dy, dx);
    const double edge =
        1.0 + a3 * std::sin(3.0 * theta + p3) + a5 * std::sin(5.0 * theta + p5);
    return rho < edge && rho > inner * edge;
  }
};

WobblyEllipse make_organ(util::Rng& rng, double cx, double cy, double rx,
                         double ry, double wobble) {
  WobblyEllipse e;
  e.cx = cx;
  e.cy = cy;
  e.rx = rx;
  e.ry = ry;
  e.a3 = wobble * rng.uniform(0.5, 1.0);
  e.p3 = rng.uniform(0.0, 2.0 * kPi);
  e.a5 = 0.6 * wobble * rng.uniform(0.5, 1.0);
  e.p5 = rng.uniform(0.0, 2.0 * kPi);
  return e;
}

/// Separable box-ish Gaussian blur (kernel [1 2 1]/4 applied `radius` times).
void blur_inplace(TensorF& img, std::int64_t s, int radius) {
  if (radius <= 0) return;
  TensorF tmp(img.shape());
  for (int pass = 0; pass < radius; ++pass) {
    for (std::int64_t y = 0; y < s; ++y) {
      for (std::int64_t x = 0; x < s; ++x) {
        const std::int64_t xm = std::max<std::int64_t>(0, x - 1);
        const std::int64_t xp = std::min<std::int64_t>(s - 1, x + 1);
        tmp[y * s + x] = 0.25f * img[y * s + xm] + 0.5f * img[y * s + x] +
                         0.25f * img[y * s + xp];
      }
    }
    for (std::int64_t y = 0; y < s; ++y) {
      const std::int64_t ym = std::max<std::int64_t>(0, y - 1);
      const std::int64_t yp = std::min<std::int64_t>(s - 1, y + 1);
      for (std::int64_t x = 0; x < s; ++x) {
        img[y * s + x] = 0.25f * tmp[ym * s + x] + 0.5f * tmp[y * s + x] +
                         0.25f * tmp[yp * s + x];
      }
    }
  }
}

}  // namespace

PhantomGenerator::PhantomGenerator(PhantomConfig cfg, std::uint64_t dataset_seed)
    : cfg_(cfg), dataset_seed_(dataset_seed) {}

PatientAnatomy PhantomGenerator::anatomy(int patient_id) const {
  util::Rng rng(dataset_seed_ * 0x9E3779B1ULL + static_cast<std::uint64_t>(patient_id) * 2654435761ULL + 11);
  PatientAnatomy a;
  a.body_rx = rng.uniform(0.66, 0.78);
  a.body_ry = rng.uniform(0.46, 0.56);
  a.size_jitter = rng.uniform(0.88, 1.12);
  a.shift_x = rng.uniform(-0.05, 0.05);
  a.shift_y = rng.uniform(-0.04, 0.04);
  a.soft_hu = rng.uniform(36.0, 44.0);
  a.liver_hu = rng.uniform(100.0, 118.0);  // contrast-enhanced parenchyma
  a.kidney_hu = rng.uniform(190.0, 220.0);  // enhanced cortex
  a.bladder_hu = rng.uniform(-18.0, -6.0);  // urine
  a.lung_hu = rng.uniform(-820.0, -740.0);
  a.bone_hu = rng.uniform(650.0, 760.0);
  a.brain_hu = rng.uniform(30.0, 38.0);
  a.shape_seed = rng.next_u64();
  return a;
}

ScanType PhantomGenerator::scan_type(int patient_id) const {
  util::Rng rng(dataset_seed_ ^ (static_cast<std::uint64_t>(patient_id) * 0x1000193ULL + 5));
  const double u = rng.uniform();
  if (u < 0.018) return ScanType::kWholeBody;     // rare: only brain source
  if (u < 0.30) return ScanType::kChestOnly;
  return ScanType::kChestAbdomen;
}

std::pair<double, double> PhantomGenerator::scan_range(ScanType type) {
  switch (type) {
    case ScanType::kWholeBody: return {0.02, 0.95};
    case ScanType::kChestOnly: return {0.14, 0.48};
    case ScanType::kChestAbdomen: return {0.15, 0.93};
  }
  return {0.15, 0.93};
}

PhantomSlice PhantomGenerator::render_slice(int patient_id, double z) const {
  const PatientAnatomy a = anatomy(patient_id);
  const std::int64_t s = cfg_.resolution;
  util::Rng shape_rng(a.shape_seed);

  // --- Build per-organ geometry for this patient (z-independent bases). ---
  const double j = a.size_jitter;
  WobblyEllipse lung_l = make_organ(shape_rng, -0.30, -0.06, 0.212 * j, 0.284 * j, 0.06);
  WobblyEllipse lung_r = make_organ(shape_rng, 0.30, -0.06, 0.203 * j, 0.275 * j, 0.06);
  WobblyEllipse liver = make_organ(shape_rng, -0.21, -0.02, 0.445 * j, 0.34 * j, 0.10);
  WobblyEllipse kidney_l = make_organ(shape_rng, -0.30, 0.14, 0.155 * j, 0.185 * j, 0.08);
  WobblyEllipse kidney_r = make_organ(shape_rng, 0.30, 0.14, 0.148 * j, 0.177 * j, 0.08);
  WobblyEllipse bladder = make_organ(shape_rng, 0.0, 0.16, 0.22 * j, 0.20 * j, 0.06);
  WobblyEllipse brain = make_organ(shape_rng, 0.0, 0.0, 0.40 * j, 0.48 * j, 0.04);
  WobblyEllipse skull = make_organ(shape_rng, 0.0, 0.0, 0.47 * j, 0.55 * j, 0.02);
  WobblyEllipse spine = make_organ(shape_rng, 0.0, 0.33, 0.115 * j, 0.105 * j, 0.12);
  WobblyEllipse sternum = make_organ(shape_rng, 0.0, -0.44, 0.07 * j, 0.045 * j, 0.05);
  WobblyEllipse pelvis_l = make_organ(shape_rng, -0.33, 0.10, 0.21 * j, 0.27 * j, 0.05);
  WobblyEllipse pelvis_r = make_organ(shape_rng, 0.33, 0.10, 0.21 * j, 0.27 * j, 0.05);
  const double rib_phase = shape_rng.uniform(0.0, 2.0 * kPi);

  // --- z-dependent scale profiles. ---
  const double lung_s = z_profile(z, kLungZ0, kLungZ1);
  const double liver_s = z_profile(z, kLiverZ0, kLiverZ1);
  const double kidney_s = z_profile(z, kKidneyZ0, kKidneyZ1);
  const double bladder_s = z_profile(z, kBladderZ0, kBladderZ1);
  const double brain_s = z_profile(z, kBrainZ0, kBrainZ1);
  const double skull_s = z_profile(z, kSkullZ0, kSkullZ1);
  const double pelvis_s = z_profile(z, kPelvisZ0, kPelvisZ1);
  const bool in_spine = z > kSpineZ0 && z < kSpineZ1;
  const bool in_ribs = z > kRibsZ0 && z < kRibsZ1;
  const bool in_head = z < kSkullZ1;

  auto scaled = [](WobblyEllipse e, double scale) {
    e.rx *= scale;
    e.ry *= scale;
    return e;
  };
  lung_l = scaled(lung_l, lung_s);
  lung_r = scaled(lung_r, lung_s);
  liver = scaled(liver, liver_s);
  kidney_l = scaled(kidney_l, kidney_s);
  kidney_r = scaled(kidney_r, kidney_s);
  bladder = scaled(bladder, bladder_s);
  brain = scaled(brain, brain_s);
  // The skull never vanishes inside the head region (the cranial vault
  // tapers but connects to the neck).
  skull = scaled(skull, std::max(skull_s, in_head ? 0.35 : 0.0));
  pelvis_l = scaled(pelvis_l, pelvis_s);
  pelvis_r = scaled(pelvis_r, pelvis_s);

  // Torso narrows toward the pelvis and is absent in the head (skull only).
  double body_rx = a.body_rx, body_ry = a.body_ry;
  if (in_head) {
    body_rx = skull.rx * 1.05;
    body_ry = skull.ry * 1.05;
  } else if (z < 0.16) {  // neck and shoulder girdle
    const double t = std::clamp((z - kSkullZ1) / (0.16 - kSkullZ1), 0.0, 1.0);
    body_rx = a.body_rx * (0.35 + 0.65 * t);
    body_ry = a.body_ry * (0.35 + 0.65 * t);
  } else if (z > 0.70) {
    const double t = (z - 0.70) / 0.30;
    body_rx = a.body_rx * (1.0 - 0.18 * t);
    body_ry = a.body_ry * (1.0 - 0.10 * t);
  }

  PhantomSlice slice;
  slice.z = z;
  slice.patient_id = patient_id;
  slice.image_hu = TensorF(Shape{s, s, 1});
  slice.labels = LabelMap(Shape{s, s});

  // Per-slice noise stream: deterministic in (patient, z).
  util::Rng noise_rng(a.shape_seed ^
                      static_cast<std::uint64_t>(z * 16384.0) * 0x9E3779B97F4A7C15ULL);

  // --- Rasterize labels. ---
  for (std::int64_t py = 0; py < s; ++py) {
    const double y = 2.0 * (static_cast<double>(py) + 0.5) / static_cast<double>(s) - 1.0 - a.shift_y;
    for (std::int64_t px = 0; px < s; ++px) {
      const double x = 2.0 * (static_cast<double>(px) + 0.5) / static_cast<double>(s) - 1.0 - a.shift_x;
      std::int32_t label = static_cast<std::int32_t>(Organ::kBackground);
      bool inside_body;
      {
        const double dx = x / body_rx;
        const double dy = y / body_ry;
        inside_body = dx * dx + dy * dy < 1.0;
      }
      if (inside_body) {
        if (in_head) {
          if (cfg_.include_brain && brain_s > 0.0 && brain.contains(x, y)) {
            label = static_cast<std::int32_t>(Organ::kBrain);
          }
          if (skull_s > 0.0 && skull.contains_ring(x, y, 0.86)) {
            label = static_cast<std::int32_t>(Organ::kBones);
          }
        } else {
          if (lung_s > 0.0 && (lung_l.contains(x, y) || lung_r.contains(x, y))) {
            label = static_cast<std::int32_t>(Organ::kLungs);
          }
          if (liver_s > 0.0 && liver.contains(x, y)) {
            label = static_cast<std::int32_t>(Organ::kLiver);
          }
          if (kidney_s > 0.0 &&
              (kidney_l.contains(x, y) || kidney_r.contains(x, y))) {
            label = static_cast<std::int32_t>(Organ::kKidneys);
          }
          if (bladder_s > 0.0 && bladder.contains(x, y)) {
            label = static_cast<std::int32_t>(Organ::kBladder);
          }
          // Bones take precedence over soft organs.
          bool bone = in_spine && spine.contains(x, y);
          if (!bone && in_ribs && sternum.contains(x, y)) bone = true;
          if (!bone && in_ribs) {
            // Ribs: 12 cortical cross-sections along the chest wall.
            for (int k = 0; k < 12 && !bone; ++k) {
              const double th = rib_phase + 2.0 * kPi * k / 12.0;
              const double rcx = 0.86 * body_rx * std::cos(th);
              const double rcy = 0.86 * body_ry * std::sin(th);
              const double ddx = x - rcx, ddy = y - rcy;
              bone = ddx * ddx + ddy * ddy < 0.045 * 0.045;
            }
          }
          if (!bone && pelvis_s > 0.0 &&
              (pelvis_l.contains_ring(x, y, 0.70) ||
               pelvis_r.contains_ring(x, y, 0.70))) {
            bone = true;
          }
          if (bone) label = static_cast<std::int32_t>(Organ::kBones);
        }
      }
      slice.labels[py * s + px] = label;

      // HU from label (crisp; blur below models partial volume).
      double hu;
      if (!inside_body) {
        hu = -1000.0;
      } else {
        switch (static_cast<Organ>(label)) {
          case Organ::kLungs: hu = a.lung_hu; break;
          case Organ::kLiver: hu = a.liver_hu; break;
          case Organ::kKidneys: hu = a.kidney_hu; break;
          case Organ::kBladder: hu = a.bladder_hu; break;
          case Organ::kBones: hu = a.bone_hu; break;
          case Organ::kBrain: hu = a.brain_hu; break;
          default: hu = a.soft_hu; break;
        }
      }
      slice.image_hu[py * s + px] = static_cast<float>(hu);
    }
  }

  blur_inplace(slice.image_hu, s, cfg_.blur_radius);
  if (cfg_.noise_hu > 0.0) {
    for (std::int64_t i = 0; i < s * s; ++i) {
      slice.image_hu[i] += static_cast<float>(noise_rng.gauss(0.0, cfg_.noise_hu));
    }
  }
  return slice;
}

PhantomVolume PhantomGenerator::generate_volume(int patient_id) const {
  PhantomVolume vol;
  vol.patient_id = patient_id;
  vol.scan_type = scan_type(patient_id);
  const auto [z0, z1] = scan_range(vol.scan_type);
  const int n = cfg_.slices_per_volume;
  vol.slices.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double z = z0 + (z1 - z0) * (static_cast<double>(i) + 0.5) / n;
    vol.slices.push_back(render_slice(patient_id, z));
  }
  return vol;
}

}  // namespace seneca::data
