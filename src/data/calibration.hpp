#pragma once
// Calibration-set construction for post-training quantization (§III-D,
// Table III). Two samplers:
//  - random: uniform slice sampling (organ frequencies mirror Table I);
//  - manual: greedy frequency-corrected sampling that levels organ
//    frequencies toward a target distribution, boosting bladder/kidneys —
//    the paper's "Manual Sampling" row.
// The returned calibration set carries only images (PTQ is label-free);
// labels are used solely to steer the manual sampler, exactly as a human
// would eyeball slice content when hand-building the set.

#include <array>
#include <cstdint>
#include <vector>

#include "data/dataset.hpp"

namespace seneca::data {

struct CalibrationSet {
  std::vector<tensor::TensorF> images;
  /// Organ frequencies of the selected slices (liver..bones, index 0..4),
  /// reported for the Table III bench.
  std::array<double, 5> frequencies{};
};

/// Table III "Manual Sampling" target distribution (liver, bladder, lungs,
/// kidneys, bones), in percent of labeled pixels.
inline constexpr std::array<double, 5> kManualTargetFrequencies = {
    21.69, 7.66, 32.02, 6.90, 31.73};

CalibrationSet sample_calibration_random(const std::vector<SliceRecord>& pool,
                                         std::size_t size, std::uint64_t seed);

/// Greedy selection minimizing the L1 distance between the running organ
/// distribution and `target` at every step.
CalibrationSet sample_calibration_manual(
    const std::vector<SliceRecord>& pool, std::size_t size,
    const std::array<double, 5>& target = kManualTargetFrequencies);

}  // namespace seneca::data
