#pragma once
// Pre-processing pipeline of §III-A (Fig. 1 step A):
//   1. downsample 512x512 -> 256x256,
//   2. contrast adjustment saturating the upper/lower 1 % of pixels,
//   3. rescale to [-1, 1],
//   4. drop the brain label (relabel to background).
// Each step is exposed separately so tests can pin its behaviour, plus a
// one-call pipeline producing network-ready samples.

#include <cstdint>

#include "data/organs.hpp"
#include "data/phantom.hpp"
#include "nn/trainer.hpp"

namespace seneca::data {

/// 2x box-filter downsample of an [H,W,1] image; H and W must be even.
tensor::TensorF downsample2x(const tensor::TensorF& image);

/// 2x label downsample by top-left pick (labels must stay crisp ids).
LabelMap downsample2x_labels(const LabelMap& labels);

/// Saturates values below the p-th and above the (100-p)-th percentile.
/// Returns the clamp bounds used (lo, hi).
std::pair<float, float> saturate_percentiles(tensor::TensorF& image,
                                             double percent = 1.0);

/// Linear map of [lo, hi] onto [-1, 1].
void rescale_to_unit(tensor::TensorF& image, float lo, float hi);

/// Relabels brain pixels to background (§III-A: brain removed from targets).
void remove_brain_label(LabelMap& labels);

/// Full pipeline on a raw phantom slice -> training sample. If the slice is
/// at 512, it is downsampled to 256; a 256 slice passes through unscaled.
nn::Sample preprocess_slice(const PhantomSlice& slice);

}  // namespace seneca::data
