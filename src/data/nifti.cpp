#include "data/nifti.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "data/phantom.hpp"
#include "util/io.hpp"

namespace seneca::data {

namespace {

// Byte-exact NIfTI-1 header (348 bytes, little-endian fields).
#pragma pack(push, 1)
struct Nifti1Header {
  std::int32_t sizeof_hdr;     // must be 348
  char data_type[10];
  char db_name[18];
  std::int32_t extents;
  std::int16_t session_error;
  char regular;                // 'r'
  char dim_info;
  std::int16_t dim[8];         // dim[0]=rank, dim[1]=nx, dim[2]=ny, dim[3]=nz
  float intent_p1, intent_p2, intent_p3;
  std::int16_t intent_code;
  std::int16_t datatype;
  std::int16_t bitpix;
  std::int16_t slice_start;
  float pixdim[8];
  float vox_offset;            // 352 for single-file .nii
  float scl_slope;
  float scl_inter;
  std::int16_t slice_end;
  char slice_code;
  char xyzt_units;
  float cal_max, cal_min;
  float slice_duration;
  float toffset;
  std::int32_t glmax, glmin;
  char descrip[80];
  char aux_file[24];
  std::int16_t qform_code;
  std::int16_t sform_code;
  float quatern_b, quatern_c, quatern_d;
  float qoffset_x, qoffset_y, qoffset_z;
  float srow_x[4], srow_y[4], srow_z[4];
  char intent_name[16];
  char magic[4];               // "n+1\0"
};
#pragma pack(pop)
static_assert(sizeof(Nifti1Header) == 348, "NIfTI-1 header must be 348 bytes");

std::int16_t bytes_per_voxel(NiftiDataType t) {
  switch (t) {
    case NiftiDataType::kInt16: return 2;
    case NiftiDataType::kInt32: return 4;
    case NiftiDataType::kFloat32: return 4;
  }
  throw std::invalid_argument("nifti: unsupported datatype");
}

}  // namespace

void write_nifti(const std::filesystem::path& path, const NiftiVolume& vol) {
  if (vol.voxels.shape().rank() != 3) {
    throw std::invalid_argument("write_nifti: expected [nz][ny][nx] tensor");
  }
  const std::int64_t nz = vol.nz(), ny = vol.ny(), nx = vol.nx();
  if (nx > 32767 || ny > 32767 || nz > 32767) {
    throw std::invalid_argument("write_nifti: dimension exceeds int16");
  }

  Nifti1Header hdr{};
  hdr.sizeof_hdr = 348;
  hdr.regular = 'r';
  hdr.dim[0] = 3;
  hdr.dim[1] = static_cast<std::int16_t>(nx);
  hdr.dim[2] = static_cast<std::int16_t>(ny);
  hdr.dim[3] = static_cast<std::int16_t>(nz);
  for (int i = 4; i < 8; ++i) hdr.dim[i] = 1;
  hdr.datatype = static_cast<std::int16_t>(vol.stored_type);
  hdr.bitpix = static_cast<std::int16_t>(8 * bytes_per_voxel(vol.stored_type));
  hdr.pixdim[0] = 1.f;
  hdr.pixdim[1] = vol.spacing_mm[0];
  hdr.pixdim[2] = vol.spacing_mm[1];
  hdr.pixdim[3] = vol.spacing_mm[2];
  hdr.vox_offset = 352.f;
  hdr.scl_slope = 1.f;
  hdr.scl_inter = 0.f;
  hdr.xyzt_units = 2;  // NIFTI_UNITS_MM
  std::snprintf(hdr.descrip, sizeof hdr.descrip, "SENECA phantom export");
  std::memcpy(hdr.magic, "n+1", 4);

  util::BinaryWriter w;
  w.bytes(&hdr, sizeof hdr);
  w.u32(0);  // empty extension flag (4 bytes) -> data at offset 352

  const std::int64_t n = vol.voxels.numel();
  switch (vol.stored_type) {
    case NiftiDataType::kInt16: {
      std::vector<std::int16_t> buf(static_cast<std::size_t>(n));
      for (std::int64_t i = 0; i < n; ++i) {
        buf[static_cast<std::size_t>(i)] =
            static_cast<std::int16_t>(std::lround(vol.voxels[i]));
      }
      w.bytes(buf.data(), buf.size() * 2);
      break;
    }
    case NiftiDataType::kInt32: {
      std::vector<std::int32_t> buf(static_cast<std::size_t>(n));
      for (std::int64_t i = 0; i < n; ++i) {
        buf[static_cast<std::size_t>(i)] =
            static_cast<std::int32_t>(std::lround(vol.voxels[i]));
      }
      w.bytes(buf.data(), buf.size() * 4);
      break;
    }
    case NiftiDataType::kFloat32:
      w.bytes(vol.voxels.data(), static_cast<std::size_t>(n) * 4);
      break;
  }
  util::write_file(path, w.data().data(), w.data().size());
}

NiftiVolume read_nifti(const std::filesystem::path& path) {
  const auto bytes = util::read_file(path);
  if (bytes.size() < sizeof(Nifti1Header) + 4) {
    throw std::runtime_error("read_nifti: file too small");
  }
  Nifti1Header hdr;
  std::memcpy(&hdr, bytes.data(), sizeof hdr);
  if (hdr.sizeof_hdr != 348 || std::memcmp(hdr.magic, "n+1", 3) != 0) {
    throw std::runtime_error("read_nifti: not a single-file NIfTI-1");
  }
  if (hdr.dim[0] != 3) {
    throw std::runtime_error("read_nifti: only 3D volumes supported");
  }
  const std::int64_t nx = hdr.dim[1], ny = hdr.dim[2], nz = hdr.dim[3];
  if (nx <= 0 || ny <= 0 || nz <= 0) {
    throw std::runtime_error("read_nifti: bad dimensions");
  }
  const auto type = static_cast<NiftiDataType>(hdr.datatype);
  const std::int64_t bpv = bytes_per_voxel(type);
  const std::int64_t n = nx * ny * nz;
  const auto offset = static_cast<std::size_t>(hdr.vox_offset);
  if (bytes.size() < offset + static_cast<std::size_t>(n * bpv)) {
    throw std::runtime_error("read_nifti: truncated voxel data");
  }

  NiftiVolume vol;
  vol.stored_type = type;
  vol.spacing_mm[0] = hdr.pixdim[1];
  vol.spacing_mm[1] = hdr.pixdim[2];
  vol.spacing_mm[2] = hdr.pixdim[3];
  vol.voxels = tensor::TensorF(tensor::Shape{nz, ny, nx});
  const float slope = hdr.scl_slope != 0.f ? hdr.scl_slope : 1.f;
  const std::uint8_t* data = bytes.data() + offset;
  for (std::int64_t i = 0; i < n; ++i) {
    float v = 0.f;
    switch (type) {
      case NiftiDataType::kInt16: {
        std::int16_t s;
        std::memcpy(&s, data + i * 2, 2);
        v = static_cast<float>(s);
        break;
      }
      case NiftiDataType::kInt32: {
        std::int32_t s;
        std::memcpy(&s, data + i * 4, 4);
        v = static_cast<float>(s);
        break;
      }
      case NiftiDataType::kFloat32:
        std::memcpy(&v, data + i * 4, 4);
        break;
    }
    vol.voxels[i] = slope * v + hdr.scl_inter;
  }
  return vol;
}

void export_ctorg_style(const std::filesystem::path& stem,
                        const PhantomVolume& volume) {
  if (volume.slices.empty()) {
    throw std::invalid_argument("export_ctorg_style: empty volume");
  }
  const std::int64_t s = volume.slices[0].image_hu.shape()[0];
  const auto nz = static_cast<std::int64_t>(volume.slices.size());

  NiftiVolume ct;
  ct.stored_type = NiftiDataType::kInt16;
  ct.voxels = tensor::TensorF(tensor::Shape{nz, s, s});
  NiftiVolume labels;
  labels.stored_type = NiftiDataType::kInt16;
  labels.voxels = tensor::TensorF(tensor::Shape{nz, s, s});
  // CT-ORG-style geometry: ~1.5 mm in-plane at 512 (scaled), thicker slices.
  const float dx = 1.5f * 512.f / static_cast<float>(s);
  ct.spacing_mm[0] = ct.spacing_mm[1] = dx;
  ct.spacing_mm[2] = 5.0f;
  labels.spacing_mm[0] = labels.spacing_mm[1] = dx;
  labels.spacing_mm[2] = 5.0f;

  for (std::int64_t z = 0; z < nz; ++z) {
    const auto& slice = volume.slices[static_cast<std::size_t>(z)];
    for (std::int64_t i = 0; i < s * s; ++i) {
      ct.voxels[z * s * s + i] = slice.image_hu[i];
      labels.voxels[z * s * s + i] = static_cast<float>(slice.labels[i]);
    }
  }
  write_nifti(stem.string() + "_ct.nii", ct);
  write_nifti(stem.string() + "_labels.nii", labels);
}

}  // namespace seneca::data
