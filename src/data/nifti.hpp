#pragma once
// Minimal NIfTI-1 volume I/O (single-file .nii, little-endian).
//
// CT-ORG ships its volumes and label maps as NIfTI with variable bit-width
// (§III-A: "saved in NIfTI format, with a variable bit-width ranging from
// 16 to 32"); this module lets the phantom generator export datasets in the
// real interchange format and read them back, covering exactly the subset
// CT-ORG uses: 3D volumes of int16 / int32 / float32 with pixel spacing.

#include <cstdint>
#include <filesystem>

#include "tensor/tensor.hpp"

namespace seneca::data {

enum class NiftiDataType : std::int16_t {
  kInt16 = 4,    // NIFTI_TYPE_INT16
  kInt32 = 8,    // NIFTI_TYPE_INT32
  kFloat32 = 16, // NIFTI_TYPE_FLOAT32
};

struct NiftiVolume {
  // Voxels ordered x-fastest (NIfTI convention); shape [nz][ny][nx] here.
  tensor::TensorF voxels;  // values after applying scl_slope/scl_inter
  float spacing_mm[3] = {1.f, 1.f, 1.f};  // dx, dy, dz
  NiftiDataType stored_type = NiftiDataType::kFloat32;

  std::int64_t nx() const { return voxels.shape()[2]; }
  std::int64_t ny() const { return voxels.shape()[1]; }
  std::int64_t nz() const { return voxels.shape()[0]; }
};

/// Writes a single-file .nii (header + data, no extensions). The tensor is
/// stored at the requested bit-width; float data written as int16/int32 is
/// rounded (CT HU values are integral anyway).
void write_nifti(const std::filesystem::path& path, const NiftiVolume& volume);

/// Reads a single-file .nii written by write_nifti (or any little-endian
/// NIfTI-1 with dim[0]==3 and a supported datatype). Throws
/// std::runtime_error on malformed input.
NiftiVolume read_nifti(const std::filesystem::path& path);

/// Convenience: exports one phantom volume pair (CT + labels) in CT-ORG
/// style: <stem>_ct.nii (int16 HU) and <stem>_labels.nii (int16 classes).
struct PhantomVolume;  // from phantom.hpp
void export_ctorg_style(const std::filesystem::path& stem,
                        const PhantomVolume& volume);

}  // namespace seneca::data
