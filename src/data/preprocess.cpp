#include "data/preprocess.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace seneca::data {

tensor::TensorF downsample2x(const tensor::TensorF& image) {
  const std::int64_t h = image.shape()[0];
  const std::int64_t w = image.shape()[1];
  if (h % 2 || w % 2) throw std::invalid_argument("downsample2x: odd dims");
  tensor::TensorF out(Shape{h / 2, w / 2, 1});
  for (std::int64_t y = 0; y < h / 2; ++y) {
    for (std::int64_t x = 0; x < w / 2; ++x) {
      const float sum = image[(2 * y) * w + 2 * x] +
                        image[(2 * y) * w + 2 * x + 1] +
                        image[(2 * y + 1) * w + 2 * x] +
                        image[(2 * y + 1) * w + 2 * x + 1];
      out[y * (w / 2) + x] = 0.25f * sum;
    }
  }
  return out;
}

LabelMap downsample2x_labels(const LabelMap& labels) {
  const std::int64_t h = labels.shape()[0];
  const std::int64_t w = labels.shape()[1];
  if (h % 2 || w % 2) throw std::invalid_argument("downsample2x_labels: odd dims");
  LabelMap out(Shape{h / 2, w / 2});
  for (std::int64_t y = 0; y < h / 2; ++y) {
    for (std::int64_t x = 0; x < w / 2; ++x) {
      out[y * (w / 2) + x] = labels[(2 * y) * w + 2 * x];
    }
  }
  return out;
}

std::pair<float, float> saturate_percentiles(tensor::TensorF& image,
                                             double percent) {
  const std::int64_t n = image.numel();
  if (n == 0) return {0.f, 0.f};
  std::vector<float> sorted(image.begin(), image.end());
  std::sort(sorted.begin(), sorted.end());
  const auto idx = [&](double p) {
    const auto i = static_cast<std::int64_t>(p / 100.0 * static_cast<double>(n - 1));
    return std::clamp<std::int64_t>(i, 0, n - 1);
  };
  const float lo = sorted[static_cast<std::size_t>(idx(percent))];
  const float hi = sorted[static_cast<std::size_t>(idx(100.0 - percent))];
  for (auto& v : image) v = std::clamp(v, lo, hi);
  return {lo, hi};
}

void rescale_to_unit(tensor::TensorF& image, float lo, float hi) {
  const float range = hi - lo;
  if (range <= 0.f) {
    image.fill(0.f);
    return;
  }
  const float scale = 2.f / range;
  for (auto& v : image) v = (v - lo) * scale - 1.f;
}

void remove_brain_label(LabelMap& labels) {
  const auto brain = static_cast<std::int32_t>(Organ::kBrain);
  const auto bg = static_cast<std::int32_t>(Organ::kBackground);
  for (auto& v : labels) {
    if (v == brain) v = bg;
  }
}

nn::Sample preprocess_slice(const PhantomSlice& slice) {
  nn::Sample sample;
  if (slice.image_hu.shape()[0] == 512) {
    sample.image = downsample2x(slice.image_hu);
    sample.labels = downsample2x_labels(slice.labels);
  } else {
    sample.image = slice.image_hu;
    sample.labels = slice.labels;
  }
  const auto [lo, hi] = saturate_percentiles(sample.image, 1.0);
  rescale_to_unit(sample.image, lo, hi);
  remove_brain_label(sample.labels);
  return sample;
}

}  // namespace seneca::data
