#pragma once
// Post-training quantizer (§III-D, Fig. 1 step D).
//
// PTQ: runs the calibration images through the folded FP32 graph, profiles
// per-tensor activation ranges, picks power-of-two fix positions by the
// max-abs + MSE-refinement rule, and converts weights/biases to INT8/INT32.
//
// FFQ ("fast finetuning", AdaQuant-style): after PTQ, revisits each conv
// layer in topological order and locally reduces its output error on the
// calibration set — trying neighbouring weight fix positions and applying a
// per-channel bias correction computed from the mean residual.
//
// QAT lives in qat.hpp (it needs the labelled training set).

#include <vector>

#include "quant/fgraph.hpp"
#include "quant/qgraph.hpp"

namespace seneca::quant {

enum class QuantMode { kPTQ, kFFQ };

struct QuantizeOptions {
  QuantMode mode = QuantMode::kPTQ;
  /// Cap on calibration images actually consumed (paper uses 500).
  std::size_t max_calibration_images = 500;
};

struct ActivationStats {
  std::vector<int> fix_pos;  // per FGraph op id
  int input_fix_pos = 0;
};

/// Profiles activation ranges of `fg` over the calibration images and picks
/// fix positions for every op output (and the graph input).
ActivationStats calibrate(const FGraph& fg,
                          const std::vector<TensorF>& calibration,
                          std::size_t max_images = 500);

/// Full PTQ/FFQ pipeline: folded graph + calibration set -> QGraph.
QGraph quantize(const FGraph& fg, const std::vector<TensorF>& calibration,
                const QuantizeOptions& opts = {});

/// Convenience: quantize the network input with the xmodel's stored scale
/// (§III-E: "we scaled input slices with a specific factor generated during
/// compilation").
TensorI8 quantize_input(const QGraph& qg, const TensorF& image);

/// Dequantized float logits of the quantized model (for metric parity with
/// the FP32 path).
TensorF dequantize_output(const QGraph& qg, const TensorI8& out);

}  // namespace seneca::quant
