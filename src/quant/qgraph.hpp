#pragma once
// INT8 quantized inference IR with power-of-two scales (DPU fix-point
// representation): real_value = int8_value * 2^(-fix_pos).
//
// The QGraph executor is the *reference semantics* of the quantized model:
// the DPU simulator (src/dpu) must be bit-exact against it, and the
// quantizer reports accuracy with it. All arithmetic is integer:
//   conv:  acc_i32 = sum(q_x * q_w) + q_bias            (bias at fp_x+fp_w)
//          q_out   = sat8(rshift_round(acc, fp_x+fp_w-fp_out)), ReLU on int
//   pool:  int8 max, fix_pos unchanged
//   concat: inputs requantized to the op's fix_pos

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/arena.hpp"
#include "tensor/tensor.hpp"

namespace seneca::quant {

using tensor::Shape;
using tensor::TensorF;
using tensor::TensorI8;

enum class QOpKind { kInput, kConv2D, kTConv2D, kMaxPool2D, kConcat };

/// Closed integer interval [lo, hi]. The unit of the SENECA-Prove static
/// range analysis (src/dpu/verify): activation and accumulator bounds
/// propagate through the integer arithmetic above by interval arithmetic.
struct Interval {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
};

struct QOp {
  QOpKind kind = QOpKind::kInput;
  std::string name;
  std::vector<int> inputs;
  Shape out_shape;
  int fix_pos_out = 0;  // output quantization position

  // Conv payload.
  TensorI8 weights;               // [K][K][Cin][Cout]
  std::vector<std::int32_t> bias; // [Cout], at scale 2^-(fp_in+fp_w)
  int fix_pos_w = 0;
  std::int64_t kernel = 0;
  bool relu = false;

  // Statically-proven output activation interval (annotate_intervals):
  // every int8 value this op can emit lies in [act_lo, act_hi]. The default
  // is the full int8 domain, which is always sound.
  std::int16_t act_lo = -128;
  std::int16_t act_hi = 127;
};

struct QGraph {
  std::vector<QOp> ops;
  int input_op = -1;
  int output_op = -1;
  int input_fix_pos = 0;  // the "scale factor stored into the xmodel" (§III-E)
  Shape input_shape;

  /// Integer forward through the dispatched kernels (quant/kernels.hpp);
  /// bit-exact with the scalar reference kernels below by construction.
  /// Optionally captures all op outputs (the returned output and the input
  /// are then the only tensors copied). With an arena, intermediate
  /// activations recycle its slabs: zero heap allocation from the second
  /// frame on. The arena is single-threaded state — one per executor
  /// thread, never shared across concurrent forwards.
  TensorI8 forward(const TensorI8& input,
                   std::vector<TensorI8>* activations = nullptr,
                   tensor::TensorArena* arena = nullptr) const;

  /// Total INT8 weight bytes (memory-footprint reporting).
  std::int64_t weight_bytes() const;
};

// --- Fix-point helpers (shared with the DPU simulator). -------------------

inline std::int8_t saturate_i8(std::int64_t v) {
  if (v > 127) return 127;
  if (v < -128) return -128;
  return static_cast<std::int8_t>(v);
}

/// Round-half-away-from-zero right shift (shift may be <= 0: left shift).
inline std::int64_t rshift_round(std::int64_t v, int shift) {
  if (shift <= 0) return v << (-shift);
  const std::int64_t bias = std::int64_t{1} << (shift - 1);
  if (v >= 0) return (v + bias) >> shift;
  return -((-v + bias) >> shift);
}

/// Quantize a float tensor at a given fix position.
TensorI8 quantize_tensor(const TensorF& x, int fix_pos);
/// Dequantize back to float.
TensorF dequantize_tensor(const TensorI8& q, int fix_pos);

/// Quantization MSE of x at fix_pos (used to pick the best position).
double quantization_mse(const TensorF& x, int fix_pos);

/// Best power-of-two fix position for max-abs value m, refined by MSE
/// against the candidate one position up (Vitis-AI-style "diffs" method).
int choose_fix_pos(const TensorF& x);

// --- Static range analysis (SENECA-Prove; shared with src/dpu/verify). ----
//
// All propagation is *sound*: border pixels and tconv output phases see only
// a subset of the kernel taps, so every per-tap product interval includes 0
// and the bounds hold for any pixel position and any input inside the input
// interval.

/// Worst-channel accumulator interval of a conv/tconv: bias plus the sum of
/// every kernel tap's product interval. `weights` is the [K][K][Cin][Cout]
/// layout flattened, `taps` = k*k*ci, `in` the input activation interval.
Interval conv_acc_interval(const std::int8_t* weights, std::int64_t taps,
                           std::int64_t co, const std::int32_t* bias,
                           Interval in);
/// Same over an op's own payload (`ci` from the input tensor).
Interval conv_acc_interval(const QOp& op, std::int64_t ci, Interval in);

/// Output interval after requant: sat8(rshift_round(acc, shift)) with an
/// optional ReLU. rshift_round and sat8 are monotone, so evaluating the
/// endpoints is exact.
Interval requant_out_interval(Interval acc, int shift, bool relu);

/// True when evaluating the requant of any accumulator inside `acc` in
/// 32-bit arithmetic cannot overflow: the interval fits int32 even after
/// the left-shift growth (shift < 0) or the rounding-bias addition
/// (shift > 0) of rshift_round. Tight analog of kernels::acc32_safe +
/// the dispatcher's shift headroom check.
bool interval_shift32_safe(Interval acc, int shift);

/// Propagates activation intervals through the graph in index order and
/// stores them on each op (act_lo/act_hi). Called by the quantizer; safe to
/// re-run after any payload change.
void annotate_intervals(QGraph& g);

// Integer kernels (also used by the DPU functional model).
void qconv2d_forward(const TensorI8& x, const QOp& op, TensorI8& out,
                     int fix_pos_in);
void qtconv2d_forward(const TensorI8& x, const QOp& op, TensorI8& out,
                      int fix_pos_in);
void qmaxpool2d_forward(const TensorI8& x, TensorI8& out);
void qconcat_forward(const TensorI8& a, int fp_a, const TensorI8& b, int fp_b,
                     TensorI8& out, int fp_out);

}  // namespace seneca::quant
