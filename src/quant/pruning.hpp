#pragma once
// Structured (filter-level) magnitude pruning — the paper's stated future
// work ("we will evaluate some pruning techniques to additionally improve
// throughput and energy efficiency", §V).
//
// prune() physically REMOVES the lowest-L1 output filters of every hidden
// convolution in a folded graph and compacts the consumers' weights
// accordingly, so the pruned network is genuinely smaller and faster on the
// DPU (fewer channel groups on the hybrid array, less DDR traffic), not
// just sparser. Skip connections are handled by propagating the surviving-
// channel maps through pools and concats.

#include <vector>

#include "quant/fgraph.hpp"

namespace seneca::quant {

struct PruneOptions {
  /// Fraction of output filters removed per hidden conv/tconv (the head
  /// conv, which produces the class maps, is never pruned).
  double fraction = 0.25;
  /// Keep at least this many filters per layer.
  std::int64_t min_filters = 2;
};

struct PruneReport {
  std::int64_t weights_before = 0;
  std::int64_t weights_after = 0;
  std::int64_t macs_before = 0;   // analytic conv MACs of the graph
  std::int64_t macs_after = 0;
  double weight_reduction() const {
    return weights_before > 0
               ? 1.0 - static_cast<double>(weights_after) /
                           static_cast<double>(weights_before)
               : 0.0;
  }
  double mac_reduction() const {
    return macs_before > 0
               ? 1.0 - static_cast<double>(macs_after) /
                           static_cast<double>(macs_before)
               : 0.0;
  }
};

/// Magnitude-pruned copy of `fg`. The result is a valid FGraph: forward(),
/// quantize() and dpu::compile() work on it unchanged.
FGraph prune(const FGraph& fg, const PruneOptions& opts,
             PruneReport* report = nullptr);

/// Analytic conv/tconv MAC count of a folded graph (helper for reports).
std::int64_t fgraph_macs(const FGraph& fg);

}  // namespace seneca::quant
