// AVX2 INT8 kernels. This translation unit is the only one compiled with
// -mavx2; the dispatcher in kernels.cpp only routes here after a runtime
// cpuid check, so the rest of the library stays runnable on any x86-64.
//
// Conv inner loop: two input channels per step, 16 output channels per
// vector. The int8 weights of both channels widen to int16 and interleave
// (unpacklo/hi), then one _mm256_madd_epi16 against the broadcast
// (x0, x1) pair yields 8 widened int8*int8 -> int32 dual-MACs. The madd
// pair-sum keeps accumulators in a fixed lane permutation; two
// _mm256_permute2x128 restore channel order once per pixel block before
// the requant epilogue. Bit-exactness vs the scalar reference is
// guaranteed because every product and the full accumulation are exact in
// int32 (the dispatcher's headroom proof) and the requant epilogue
// computes the identical round-half-away-from-zero arithmetic.

#include "quant/kernels.hpp"
#include "quant/kernels_internal.hpp"

#if defined(SENECA_KERNELS_AVX2)

#include <immintrin.h>

#include <cstring>
#include <vector>

namespace seneca::quant::kernels {

namespace {

using detail::rshift_round32;

/// Requants 16 in-order int32 accumulators (v0 = channels 0..7, v1 =
/// 8..15): round-half-away-from-zero shift, optional ReLU, saturate to
/// int8, store 16 bytes.
inline void requant_store16(__m256i v0, __m256i v1, int shift, bool relu,
                            std::int8_t* dst) {
  if (shift > 0) {
    const __m256i rbias = _mm256_set1_epi32(std::int32_t{1} << (shift - 1));
    const __m128i cnt = _mm_cvtsi32_si128(shift);
    const __m256i a0 = _mm256_srl_epi32(
        _mm256_add_epi32(_mm256_abs_epi32(v0), rbias), cnt);
    const __m256i a1 = _mm256_srl_epi32(
        _mm256_add_epi32(_mm256_abs_epi32(v1), rbias), cnt);
    v0 = _mm256_sign_epi32(a0, v0);  // restore sign; zero stays zero
    v1 = _mm256_sign_epi32(a1, v1);
  } else if (shift < 0) {
    const __m128i cnt = _mm_cvtsi32_si128(-shift);
    v0 = _mm256_sll_epi32(v0, cnt);
    v1 = _mm256_sll_epi32(v1, cnt);
  }
  if (relu) {
    const __m256i zero = _mm256_setzero_si256();
    v0 = _mm256_max_epi32(v0, zero);
    v1 = _mm256_max_epi32(v1, zero);
  }
  // Saturating packs work per 128-bit lane; one dword permute undoes the
  // interleave so the 16 bytes land in channel order.
  const __m256i p16 = _mm256_packs_epi32(v0, v1);
  const __m256i p8 = _mm256_packs_epi16(p16, p16);
  const __m256i perm = _mm256_setr_epi32(0, 4, 1, 5, 0, 4, 1, 5);
  const __m256i q = _mm256_permutevar8x32_epi32(p8, perm);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(dst),
                   _mm256_castsi256_si128(q));
}

/// Requants 8 in-order int32 accumulators and stores the first `nvalid`
/// saturated int8 bytes (the small-co tail: nvalid in 1..8).
inline void requant_store_n(__m256i v, int shift, bool relu, std::int8_t* dst,
                            std::int64_t nvalid) {
  if (shift > 0) {
    const __m256i rbias = _mm256_set1_epi32(std::int32_t{1} << (shift - 1));
    const __m128i cnt = _mm_cvtsi32_si128(shift);
    const __m256i a =
        _mm256_srl_epi32(_mm256_add_epi32(_mm256_abs_epi32(v), rbias), cnt);
    v = _mm256_sign_epi32(a, v);
  } else if (shift < 0) {
    v = _mm256_sll_epi32(v, _mm_cvtsi32_si128(-shift));
  }
  if (relu) v = _mm256_max_epi32(v, _mm256_setzero_si256());
  const __m128i p16 = _mm_packs_epi32(_mm256_castsi256_si128(v),
                                      _mm256_extracti128_si256(v, 1));
  const __m128i p8 = _mm_packs_epi16(p16, p16);
  alignas(16) std::int8_t tmp[16];
  _mm_store_si128(reinterpret_cast<__m128i*>(tmp), p8);
  std::memcpy(dst, tmp, static_cast<std::size_t>(nvalid));
}

/// Interleaved-pair int16 repack of output channels [co_from, co_from +
/// count) — the madd operand for channels the 16-wide main loop cannot
/// reach. Element ((t*cpairs + cp)*nb8 + b)*16 + 2*j + m holds
/// W[t][2*cp+m][co_from + 8*b + j], zero-padded out of range, so one
/// _mm256_madd_epi16 against the broadcast (x0, x1) pair yields 8 in-order
/// int32 dual-MACs with no out-of-bounds weight reads.
std::vector<short> pack_pair_weights(const QOp& op, std::int64_t ci,
                                     std::int64_t co, std::int64_t co_from,
                                     std::int64_t count) {
  const std::int64_t k2 = op.kernel * op.kernel;
  const std::int64_t cpairs = (ci + 1) / 2;
  const std::int64_t nb8 = (count + 7) / 8;
  std::vector<short> packed(static_cast<std::size_t>(k2 * cpairs * nb8 * 16),
                            0);
  const std::int8_t* W = op.weights.data();
  for (std::int64_t t = 0; t < k2; ++t) {
    for (std::int64_t cp = 0; cp < cpairs; ++cp) {
      for (std::int64_t b = 0; b < nb8; ++b) {
        short* dst = packed.data() + ((t * cpairs + cp) * nb8 + b) * 16;
        for (std::int64_t j = 0; j < 8 && b * 8 + j < count; ++j) {
          const std::int64_t o = co_from + b * 8 + j;
          for (int m = 0; m < 2; ++m) {
            const std::int64_t c = 2 * cp + m;
            if (c < ci) dst[2 * j + m] = W[(t * ci + c) * co + o];
          }
        }
      }
    }
  }
  return packed;
}

/// int16 repack of the 16-wide output-channel blocks into ready-made madd
/// operands: for tap t, block bi (channels 16*bi..16*bi+15), and input
/// pair cp, 32 shorts — first the unpacklo_epi16 operand (channels
/// {0..3, 8..11} of the block interleaved (wa, wb)), then the unpackhi
/// operand ({4..7, 12..15}). Packing once per call replaces the per-pixel
/// widen+interleave of the straight int8 layout; zero-padding covers odd
/// ci.
std::vector<short> pack_block_weights(const QOp& op, std::int64_t ci,
                                      std::int64_t co, std::int64_t nblk) {
  const std::int64_t k2 = op.kernel * op.kernel;
  const std::int64_t cpairs = (ci + 1) / 2;
  std::vector<short> packed(
      static_cast<std::size_t>(k2 * nblk * cpairs * 32), 0);
  const std::int8_t* W = op.weights.data();
  for (std::int64_t t = 0; t < k2; ++t) {
    for (std::int64_t bi = 0; bi < nblk; ++bi) {
      for (std::int64_t cp = 0; cp < cpairs; ++cp) {
        short* dst = packed.data() + ((t * nblk + bi) * cpairs + cp) * 32;
        for (int i = 0; i < 16; ++i) {
          const std::int64_t lane = i / 8;
          const std::int64_t jlo = lane * 8 + (i % 8) / 2;
          const int m = i % 2;
          const std::int64_t c = 2 * cp + m;
          if (c >= ci) continue;
          dst[i] = W[(t * ci + c) * co + 16 * bi + jlo];
          dst[16 + i] = W[(t * ci + c) * co + 16 * bi + jlo + 4];
        }
      }
    }
  }
  return packed;
}

/// Sign-extends the input into (x0, x1) int16 pairs packed in int32 — the
/// broadcast operand of the madd pairing, built once per call instead of
/// per (pixel, tap) read. Odd ci pads x1 = 0.
std::vector<std::int32_t> pack_input_pairs(const TensorI8& x) {
  const std::int64_t ci = x.shape()[2];
  const std::int64_t pixels = x.numel() / ci;
  const std::int64_t cpairs = (ci + 1) / 2;
  std::vector<std::int32_t> plane(
      static_cast<std::size_t>(pixels * cpairs));
  const std::int8_t* X = x.data();
  for (std::int64_t p = 0; p < pixels; ++p) {
    const std::int8_t* px = X + p * ci;
    std::int32_t* xp = plane.data() + p * cpairs;
    for (std::int64_t cp = 0; cp < cpairs; ++cp) {
      const int x0 = px[2 * cp];
      const int x1 = 2 * cp + 1 < ci ? px[2 * cp + 1] : 0;
      xp[cp] = static_cast<std::int32_t>(
          (x0 & 0xFFFF) | static_cast<int>(static_cast<unsigned>(x1) << 16));
    }
  }
  return plane;
}

}  // namespace

void conv2d_avx2(const TensorI8& x, const QOp& op, TensorI8& out,
                 int fix_pos_in) {
  const std::int64_t h = x.shape()[0];
  const std::int64_t w = x.shape()[1];
  const std::int64_t ci = x.shape()[2];
  const std::int64_t k = op.kernel;
  const std::int64_t co = op.out_shape[2];
  const std::int64_t pad = k / 2;
  const int shift = fix_pos_in + op.fix_pos_w - op.fix_pos_out;
  const std::int32_t* B = op.bias.data();
  const std::int64_t co16 = co & ~std::int64_t{15};

  // Channels past the last 16-wide block (the whole layer when co < 16,
  // e.g. narrow models and the class-logit head) run on repacked
  // interleaved int16 weights: same madd pairing, 8 channels per vector,
  // zero-padded so no load ever leaves the weight tensor.
  const std::int64_t tail = co - co16;
  const std::int64_t cpairs = (ci + 1) / 2;
  const std::int64_t nblk = co16 / 16;
  const std::int64_t nb8 = (tail + 7) / 8;  // 0..2
  const std::int8_t* W = op.weights.data();
  const std::vector<std::int32_t> xplane = pack_input_pairs(x);
  // The int16 repack doubles the weight working set; past ~L2 capacity the
  // packed loads turn memory-bound and lose to widening the int8 weights
  // in-register, so the giant bottleneck-layer weights stay unpacked.
  const std::int64_t packed_bytes = k * k * nblk * cpairs * 64;
  const bool use_packed = nblk > 0 && packed_bytes <= (3 << 19);
  const std::vector<short> blk_packed =
      use_packed ? pack_block_weights(op, ci, co, nblk) : std::vector<short>{};
  std::vector<short> tail_packed;
  std::int32_t tail_bias[16] = {0};
  if (tail > 0) {
    tail_packed = pack_pair_weights(op, ci, co, co16, tail);
    for (std::int64_t o = 0; o < tail; ++o) {
      tail_bias[o] = B[co16 + o];
    }
  }

  for (std::int64_t oy = 0; oy < h; ++oy) {
    const std::int64_t ky0 = std::max<std::int64_t>(0, pad - oy);
    const std::int64_t ky1 = std::min(k, h + pad - oy);
    for (std::int64_t ox = 0; ox < w; ++ox) {
      const std::int64_t kx0 = std::max<std::int64_t>(0, pad - ox);
      const std::int64_t kx1 = std::min(k, w + pad - ox);
      std::int8_t* po = out.data() + (oy * w + ox) * co;

      for (std::int64_t bi = 0; bi < nblk; ++bi) {
        // Accumulators live in madd's pair-permuted lane order:
        // acc_lo = channels {0..3, 8..11}, acc_hi = {4..7, 12..15}.
        const __m256i b0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(B + 16 * bi));
        const __m256i b1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(B + 16 * bi + 8));
        __m256i acc_lo = _mm256_permute2x128_si256(b0, b1, 0x20);
        __m256i acc_hi = _mm256_permute2x128_si256(b0, b1, 0x31);

        for (std::int64_t ky = ky0; ky < ky1; ++ky) {
          const std::int64_t iy = oy + ky - pad;
          for (std::int64_t kx = kx0; kx < kx1; ++kx) {
            const std::int64_t ix = ox + kx - pad;
            const std::int32_t* xrow =
                xplane.data() + (iy * w + ix) * cpairs;
            if (use_packed) {
              const short* wt =
                  blk_packed.data() +
                  (((ky * k + kx) * nblk + bi) * cpairs) * 32;
              for (std::int64_t cp = 0; cp < cpairs; ++cp) {
                // Branchless on purpose: post-ReLU activations are zero-rich
                // and a data-dependent skip mispredicts far more than the
                // saved madd costs.
                const __m256i xv = _mm256_set1_epi32(xrow[cp]);
                acc_lo = _mm256_add_epi32(
                    acc_lo,
                    _mm256_madd_epi16(
                        _mm256_loadu_si256(
                            reinterpret_cast<const __m256i*>(wt + cp * 32)),
                        xv));
                acc_hi = _mm256_add_epi32(
                    acc_hi,
                    _mm256_madd_epi16(
                        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                            wt + cp * 32 + 16)),
                        xv));
              }
            } else {
              const std::int8_t* pw =
                  W + ((ky * k + kx) * ci) * co + 16 * bi;
              for (std::int64_t cp = 0; cp < cpairs; ++cp) {
                const __m256i xv = _mm256_set1_epi32(xrow[cp]);
                const std::int64_t c = 2 * cp;
                const __m256i wa = _mm256_cvtepi8_epi16(_mm_loadu_si128(
                    reinterpret_cast<const __m128i*>(pw + c * co)));
                const __m256i wb =
                    c + 1 < ci
                        ? _mm256_cvtepi8_epi16(_mm_loadu_si128(
                              reinterpret_cast<const __m128i*>(
                                  pw + (c + 1) * co)))
                        : _mm256_setzero_si256();
                acc_lo = _mm256_add_epi32(
                    acc_lo,
                    _mm256_madd_epi16(_mm256_unpacklo_epi16(wa, wb), xv));
                acc_hi = _mm256_add_epi32(
                    acc_hi,
                    _mm256_madd_epi16(_mm256_unpackhi_epi16(wa, wb), xv));
              }
            }
          }
        }
        requant_store16(_mm256_permute2x128_si256(acc_lo, acc_hi, 0x20),
                        _mm256_permute2x128_si256(acc_lo, acc_hi, 0x31),
                        shift, op.relu, po + 16 * bi);
      }

      if (tail > 0) {
        __m256i acc[2];
        for (std::int64_t b = 0; b < nb8; ++b) {
          acc[b] = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(tail_bias + 8 * b));
        }
        for (std::int64_t ky = ky0; ky < ky1; ++ky) {
          const std::int64_t iy = oy + ky - pad;
          for (std::int64_t kx = kx0; kx < kx1; ++kx) {
            const std::int64_t ix = ox + kx - pad;
            const std::int32_t* xrow =
                xplane.data() + (iy * w + ix) * cpairs;
            const short* wt =
                tail_packed.data() + (ky * k + kx) * cpairs * nb8 * 16;
            for (std::int64_t cp = 0; cp < cpairs; ++cp) {
              const __m256i xv = _mm256_set1_epi32(xrow[cp]);
              for (std::int64_t b = 0; b < nb8; ++b) {
                acc[b] = _mm256_add_epi32(
                    acc[b],
                    _mm256_madd_epi16(
                        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                            wt + (cp * nb8 + b) * 16)),
                        xv));
              }
            }
          }
        }
        for (std::int64_t b = 0; b < nb8; ++b) {
          requant_store_n(acc[b], shift, op.relu, po + co16 + 8 * b,
                          std::min<std::int64_t>(8, tail - 8 * b));
        }
      }
    }
  }
}

void tconv2d_avx2(const TensorI8& x, const QOp& op, TensorI8& out,
                  int fix_pos_in, tensor::TensorArena* arena) {
  const int shift = fix_pos_in + op.fix_pos_w - op.fix_pos_out;
  const std::int64_t ci = x.shape()[2];
  const std::int64_t co = op.out_shape[2];
  const std::int64_t co16 = co & ~std::int64_t{15};
  const std::int64_t tail = co - co16;
  const std::int64_t cpairs = (ci + 1) / 2;
  const std::int64_t nb8 = (tail + 7) / 8;  // 0..2
  const std::int8_t* W = op.weights.data();

  // Tail channels use the repacked madd operands and a masked store into
  // the accumulator plane (full-width loads stay in bounds because
  // tconv_scratch pads the plane by 8 int32).
  std::vector<short> tail_packed;
  __m256i tmask[2] = {_mm256_setzero_si256(), _mm256_setzero_si256()};
  if (tail > 0) {
    tail_packed = pack_pair_weights(op, ci, co, co16, tail);
    const __m256i idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    for (std::int64_t b = 0; b < nb8; ++b) {
      tmask[b] = _mm256_cmpgt_epi32(
          _mm256_set1_epi32(static_cast<int>(tail - 8 * b)), idx);
    }
  }

  std::vector<std::int32_t> local;
  std::int32_t* acc = detail::tconv_scratch(op, arena, local);
  detail::tconv_acc_init(op, acc);
  detail::tconv_scatter(
      x, op, acc,
      [&](std::int32_t* pa, const std::int8_t* px, const std::int8_t* pw,
          std::int64_t nci, std::int64_t nco) {
        // Full 16-wide blocks: accumulate every input channel in registers
        // with the same madd pairing as the conv, then touch the
        // accumulator plane once per block (instead of a read-modify-write
        // per input channel).
        for (std::int64_t ob = 0; ob < co16; ob += 16) {
          __m256i acc_lo = _mm256_setzero_si256();
          __m256i acc_hi = _mm256_setzero_si256();
          const std::int8_t* pwb = pw + ob;
          for (std::int64_t c = 0; c < nci; c += 2) {
            const int x0 = px[c];
            const int x1 = c + 1 < nci ? px[c + 1] : 0;
            const int xp = (x0 & 0xFFFF) |
                           static_cast<int>(static_cast<unsigned>(x1) << 16);
            const __m256i xv = _mm256_set1_epi32(xp);
            const __m256i wa = _mm256_cvtepi8_epi16(_mm_loadu_si128(
                reinterpret_cast<const __m128i*>(pwb + c * nco)));
            const __m256i wb =
                c + 1 < nci
                    ? _mm256_cvtepi8_epi16(_mm_loadu_si128(
                          reinterpret_cast<const __m128i*>(pwb +
                                                           (c + 1) * nco)))
                    : _mm256_setzero_si256();
            acc_lo = _mm256_add_epi32(
                acc_lo, _mm256_madd_epi16(_mm256_unpacklo_epi16(wa, wb), xv));
            acc_hi = _mm256_add_epi32(
                acc_hi, _mm256_madd_epi16(_mm256_unpackhi_epi16(wa, wb), xv));
          }
          __m256i* a0 = reinterpret_cast<__m256i*>(pa + ob);
          __m256i* a1 = reinterpret_cast<__m256i*>(pa + ob + 8);
          _mm256_storeu_si256(
              a0, _mm256_add_epi32(
                      _mm256_loadu_si256(a0),
                      _mm256_permute2x128_si256(acc_lo, acc_hi, 0x20)));
          _mm256_storeu_si256(
              a1, _mm256_add_epi32(
                      _mm256_loadu_si256(a1),
                      _mm256_permute2x128_si256(acc_lo, acc_hi, 0x31)));
        }
        if (tail > 0) {
          const std::int64_t t = (pw - W) / (nci * nco);  // tap index
          const short* wt = tail_packed.data() + t * cpairs * nb8 * 16;
          for (std::int64_t cp = 0; cp < cpairs; ++cp) {
            const int x0 = px[2 * cp];
            const int x1 = 2 * cp + 1 < nci ? px[2 * cp + 1] : 0;
            const int xp = (x0 & 0xFFFF) |
                           static_cast<int>(static_cast<unsigned>(x1) << 16);
            const __m256i xb = _mm256_set1_epi32(xp);
            for (std::int64_t b = 0; b < nb8; ++b) {
              std::int32_t* ptr = pa + co16 + 8 * b;
              const __m256i prod = _mm256_madd_epi16(
                  _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                      wt + (cp * nb8 + b) * 16)),
                  xb);
              _mm256_maskstore_epi32(
                  ptr, tmask[b],
                  _mm256_add_epi32(_mm256_loadu_si256(
                                       reinterpret_cast<const __m256i*>(ptr)),
                                   prod));
            }
          }
        }
      });

  const std::int64_t n = op.out_shape.numel();
  std::int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    requant_store16(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i + 8)),
        shift, op.relu, out.data() + i);
  }
  for (; i < n; ++i) {
    std::int32_t v = rshift_round32(acc[i], shift);
    if (op.relu && v < 0) v = 0;
    out[i] = saturate_i8(v);
  }
}

void maxpool2d_avx2(const TensorI8& x, TensorI8& out) {
  const std::int64_t h = x.shape()[0];
  const std::int64_t w = x.shape()[1];
  const std::int64_t c = x.shape()[2];
  const std::int64_t oh = h / 2, ow = w / 2;
  if (c < 16) {
    // Narrow-channel path (the small ladder rungs pool c <= 15): one
    // overlapped 16-byte vector covers the whole 2x2 window of a pixel.
    // The store writes 16 - c bytes past the pixel's channels; those bytes
    // belong to later output pixels and are rewritten before anyone reads
    // them, because pixels are produced in ascending flat order. The last
    // pixels fall back to scalar so neither loads nor stores leave the
    // tensors.
    const std::int8_t* xb = x.data();
    std::int8_t* ob = out.data();
    const std::int64_t xn = x.numel(), on = out.numel();
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        const std::int64_t i00 = ((2 * oy) * w + 2 * ox) * c;
        const std::int64_t i10 = ((2 * oy + 1) * w + 2 * ox) * c;
        const std::int64_t io = (oy * ow + ox) * c;
        if (i10 + c + 16 <= xn && io + 16 <= on) {
          const __m128i m = _mm_max_epi8(
              _mm_max_epi8(
                  _mm_loadu_si128(reinterpret_cast<const __m128i*>(xb + i00)),
                  _mm_loadu_si128(
                      reinterpret_cast<const __m128i*>(xb + i00 + c))),
              _mm_max_epi8(
                  _mm_loadu_si128(reinterpret_cast<const __m128i*>(xb + i10)),
                  _mm_loadu_si128(
                      reinterpret_cast<const __m128i*>(xb + i10 + c))));
          _mm_storeu_si128(reinterpret_cast<__m128i*>(ob + io), m);
        } else {
          for (std::int64_t ch = 0; ch < c; ++ch) {
            ob[io + ch] =
                std::max(std::max(xb[i00 + ch], xb[i00 + c + ch]),
                         std::max(xb[i10 + ch], xb[i10 + c + ch]));
          }
        }
      }
    }
    return;
  }
  for (std::int64_t oy = 0; oy < oh; ++oy) {
    for (std::int64_t ox = 0; ox < ow; ++ox) {
      const std::int8_t* p00 = x.data() + ((2 * oy) * w + 2 * ox) * c;
      const std::int8_t* p10 = x.data() + ((2 * oy + 1) * w + 2 * ox) * c;
      std::int8_t* po = out.data() + (oy * ow + ox) * c;
      std::int64_t ch = 0;
      for (; ch + 32 <= c; ch += 32) {
        const __m256i m = _mm256_max_epi8(
            _mm256_max_epi8(
                _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(p00 + ch)),
                _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(p00 + c + ch))),
            _mm256_max_epi8(
                _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(p10 + ch)),
                _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(p10 + c + ch))));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(po + ch), m);
      }
      for (; ch + 16 <= c; ch += 16) {
        const __m128i m = _mm_max_epi8(
            _mm_max_epi8(
                _mm_loadu_si128(reinterpret_cast<const __m128i*>(p00 + ch)),
                _mm_loadu_si128(
                    reinterpret_cast<const __m128i*>(p00 + c + ch))),
            _mm_max_epi8(
                _mm_loadu_si128(reinterpret_cast<const __m128i*>(p10 + ch)),
                _mm_loadu_si128(
                    reinterpret_cast<const __m128i*>(p10 + c + ch))));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(po + ch), m);
      }
      for (; ch < c; ++ch) {
        po[ch] = std::max(std::max(p00[ch], p00[c + ch]),
                          std::max(p10[ch], p10[c + ch]));
      }
    }
  }
}

void requant_row_avx2(const std::int8_t* src, std::int8_t* dst,
                      std::int64_t n, int shift) {
  if (shift == 0) {
    std::memcpy(dst, src, static_cast<std::size_t>(n));
    return;
  }
  // int16 arithmetic covers |v| <= 128 with rounding-bias headroom for
  // shifts in [-8, 7]; anything wilder goes through the int64 reference.
  if (shift > 7 || shift < -8) {
    for (std::int64_t i = 0; i < n; ++i) {
      dst[i] = saturate_i8(rshift_round(src[i], shift));
    }
    return;
  }
  const std::int64_t n16 = n & ~std::int64_t{15};
  std::int64_t i = 0;
  if (shift > 0) {
    const __m128i rbias = _mm_set1_epi16(static_cast<short>(1 << (shift - 1)));
    const __m128i cnt = _mm_cvtsi32_si128(shift);
    for (; i < n16; i += 16) {
      const __m128i v8 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
      const __m128i lo = _mm_cvtepi8_epi16(v8);
      const __m128i hi = _mm_cvtepi8_epi16(_mm_srli_si128(v8, 8));
      const __m128i rlo = _mm_sign_epi16(
          _mm_srl_epi16(_mm_add_epi16(_mm_abs_epi16(lo), rbias), cnt), lo);
      const __m128i rhi = _mm_sign_epi16(
          _mm_srl_epi16(_mm_add_epi16(_mm_abs_epi16(hi), rbias), cnt), hi);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                       _mm_packs_epi16(rlo, rhi));
    }
  } else {
    const __m128i cnt = _mm_cvtsi32_si128(-shift);
    for (; i < n16; i += 16) {
      const __m128i v8 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
      const __m128i lo = _mm_sll_epi16(_mm_cvtepi8_epi16(v8), cnt);
      const __m128i hi = _mm_sll_epi16(
          _mm_cvtepi8_epi16(_mm_srli_si128(v8, 8)), cnt);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                       _mm_packs_epi16(lo, hi));
    }
  }
  for (; i < n; ++i) {
    dst[i] = saturate_i8(rshift_round(src[i], shift));
  }
}

}  // namespace seneca::quant::kernels

#endif  // SENECA_KERNELS_AVX2
