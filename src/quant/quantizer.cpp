#include "quant/quantizer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "quant/kernels.hpp"

namespace seneca::quant {

namespace {

/// MSE of quantizing each stored activation sample at fix_pos.
double sample_mse(const std::vector<TensorF>& samples, int fix_pos) {
  double mse = 0.0;
  for (const auto& t : samples) mse += quantization_mse(t, fix_pos);
  return samples.empty() ? 0.0 : mse / static_cast<double>(samples.size());
}

int pick_fix_pos(float max_abs_value, const std::vector<TensorF>& samples) {
  if (max_abs_value <= 0.f) return 7;
  int fp = static_cast<int>(std::floor(std::log2(127.0 / max_abs_value)));
  if (!samples.empty() && sample_mse(samples, fp + 1) < sample_mse(samples, fp)) {
    ++fp;
  }
  return fp;
}

}  // namespace

ActivationStats calibrate(const FGraph& fg,
                          const std::vector<TensorF>& calibration,
                          std::size_t max_images) {
  if (calibration.empty()) {
    throw std::invalid_argument("calibrate: empty calibration set");
  }
  const std::size_t n = std::min(calibration.size(), max_images);
  // Keep full activations of the first few images for MSE refinement.
  const std::size_t kept = std::min<std::size_t>(n, 4);

  std::vector<float> max_abs(fg.ops.size(), 0.f);
  float input_max = 0.f;
  std::vector<std::vector<TensorF>> samples(fg.ops.size());
  std::vector<TensorF> input_samples;

  for (std::size_t i = 0; i < n; ++i) {
    std::vector<TensorF> acts;
    fg.forward(calibration[i], &acts);
    input_max = std::max(input_max, tensor::max_abs(calibration[i]));
    for (std::size_t op = 0; op < fg.ops.size(); ++op) {
      max_abs[op] = std::max(max_abs[op], tensor::max_abs(acts[op]));
      if (i < kept) samples[op].push_back(acts[op]);
    }
    if (i < kept) input_samples.push_back(calibration[i]);
  }

  ActivationStats stats;
  stats.fix_pos.resize(fg.ops.size());
  for (std::size_t op = 0; op < fg.ops.size(); ++op) {
    stats.fix_pos[op] = pick_fix_pos(max_abs[op], samples[op]);
  }
  stats.input_fix_pos = pick_fix_pos(input_max, input_samples);
  return stats;
}

namespace {

/// Effective activation fix position of op `id`, with max-pool inheriting
/// its producer's position (max of int8 values is scale-preserving).
int effective_fp(const FGraph& fg, const ActivationStats& stats, int id) {
  const FOp& op = fg.ops[static_cast<std::size_t>(id)];
  if (op.kind == OpKind::kInput) return stats.input_fix_pos;
  if (op.kind == OpKind::kMaxPool2D) {
    return effective_fp(fg, stats, op.inputs[0]);
  }
  return stats.fix_pos[static_cast<std::size_t>(id)];
}

QGraph build_qgraph(const FGraph& fg, const ActivationStats& stats) {
  QGraph qg;
  qg.input_fix_pos = stats.input_fix_pos;
  qg.input_shape = fg.ops[static_cast<std::size_t>(fg.input_op)].out_shape;
  qg.ops.resize(fg.ops.size());

  for (std::size_t id = 0; id < fg.ops.size(); ++id) {
    const FOp& fop = fg.ops[id];
    QOp& qop = qg.ops[id];
    qop.name = fop.name;
    qop.inputs = fop.inputs;
    qop.out_shape = fop.out_shape;
    switch (fop.kind) {
      case OpKind::kInput:
        qop.kind = QOpKind::kInput;
        qop.fix_pos_out = stats.input_fix_pos;
        break;
      case OpKind::kMaxPool2D: {
        // The 2x2/stride-2 pool has no padding: odd extents would silently
        // drop the last row/column of the feature map. Reject them here so
        // the model surfaces the geometry bug at quantization time instead
        // of degrading segmentation quality at the border.
        const Shape& in_shape =
            fg.ops[static_cast<std::size_t>(fop.inputs[0])].out_shape;
        if (in_shape[0] % 2 != 0 || in_shape[1] % 2 != 0) {
          throw std::invalid_argument(
              "quantize: max-pool op '" + fop.name + "' has odd input extent " +
              std::to_string(in_shape[0]) + "x" + std::to_string(in_shape[1]) +
              "; the 2x2/stride-2 pool would drop the last row/column. "
              "Pad the network input so every pooled feature map is even.");
        }
        qop.kind = QOpKind::kMaxPool2D;
        qop.fix_pos_out = effective_fp(fg, stats, static_cast<int>(id));
        break;
      }
      case OpKind::kConcat:
        qop.kind = QOpKind::kConcat;
        qop.fix_pos_out = stats.fix_pos[id];
        break;
      case OpKind::kConv2D:
      case OpKind::kTConv2D: {
        qop.kind = (fop.kind == OpKind::kConv2D) ? QOpKind::kConv2D
                                                 : QOpKind::kTConv2D;
        qop.kernel = fop.kernel;
        qop.relu = fop.relu;
        qop.fix_pos_out = stats.fix_pos[id];
        qop.fix_pos_w = choose_fix_pos(fop.weights);
        qop.weights = quantize_tensor(fop.weights, qop.fix_pos_w);
        const int fp_in = effective_fp(fg, stats, fop.inputs[0]);
        const double bias_scale = std::ldexp(1.0, fp_in + qop.fix_pos_w);
        qop.bias.resize(static_cast<std::size_t>(fop.bias.numel()));
        for (std::int64_t c = 0; c < fop.bias.numel(); ++c) {
          qop.bias[static_cast<std::size_t>(c)] = static_cast<std::int32_t>(
              std::llround(static_cast<double>(fop.bias[c]) * bias_scale));
        }
        break;
      }
    }
  }
  qg.input_op = fg.input_op;
  qg.output_op = fg.output_op;
  return qg;
}

/// AdaQuant-style fast finetuning: walks conv ops in order, re-picks the
/// weight fix position by measured output MSE and applies per-channel bias
/// correction, propagating corrected INT8 activations forward.
void fast_finetune(QGraph& qg, const FGraph& fg,
                   const std::vector<TensorF>& calibration) {
  const std::size_t n = std::min<std::size_t>(calibration.size(), 4);
  if (n == 0) return;

  // Reference float activations and evolving int activations per image.
  std::vector<std::vector<TensorF>> facts(n);
  std::vector<std::vector<TensorI8>> qacts(n);
  for (std::size_t i = 0; i < n; ++i) {
    fg.forward(calibration[i], &facts[i]);
    qg.forward(quantize_tensor(calibration[i], qg.input_fix_pos), &qacts[i]);
  }

  auto input_fp = [&](const QOp& op) {
    const QOp& producer = qg.ops[static_cast<std::size_t>(op.inputs[0])];
    return producer.fix_pos_out;
  };

  for (std::size_t id = 0; id < qg.ops.size(); ++id) {
    QOp& op = qg.ops[id];
    if (op.kind != QOpKind::kConv2D && op.kind != QOpKind::kTConv2D) continue;
    const FOp& fop = fg.ops[id];
    const int fp_in = input_fp(op);
    const std::int64_t co = op.out_shape[2];

    // 1) Try neighbouring weight fix positions; keep the MSE-minimizing one.
    const int base_fp = op.fix_pos_w;
    double best_mse = -1.0;
    int best_fp = base_fp;
    TensorI8 best_weights;
    for (int cand = base_fp - 1; cand <= base_fp + 1; ++cand) {
      TensorI8 qw = quantize_tensor(fop.weights, cand);
      QOp trial = op;
      trial.fix_pos_w = cand;
      trial.weights = qw;
      const double bias_rescale = std::ldexp(1.0, cand - base_fp);
      for (std::size_t c = 0; c < trial.bias.size(); ++c) {
        trial.bias[c] = static_cast<std::int32_t>(
            std::llround(static_cast<double>(op.bias[c]) * bias_rescale));
      }
      double mse = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const TensorI8& qin = qacts[i][static_cast<std::size_t>(op.inputs[0])];
        TensorI8 qout(op.out_shape);
        if (op.kind == QOpKind::kConv2D) {
          kernels::conv2d(qin, trial, qout, fp_in);
        } else {
          kernels::tconv2d(qin, trial, qout, fp_in);
        }
        const TensorF deq = dequantize_tensor(qout, op.fix_pos_out);
        const TensorF& ref = facts[i][id];
        for (std::int64_t e = 0; e < deq.numel(); ++e) {
          const double d = deq[e] - ref[e];
          mse += d * d;
        }
      }
      if (best_mse < 0.0 || mse < best_mse) {
        best_mse = mse;
        best_fp = cand;
        best_weights = std::move(qw);
      }
    }
    if (best_fp != base_fp) {
      const double bias_rescale = std::ldexp(1.0, best_fp - base_fp);
      for (std::size_t c = 0; c < op.bias.size(); ++c) {
        op.bias[c] = static_cast<std::int32_t>(
            std::llround(static_cast<double>(op.bias[c]) * bias_rescale));
      }
      op.fix_pos_w = best_fp;
      op.weights = std::move(best_weights);
    }

    // 2) Per-channel bias correction from the mean residual (skipped when a
    //    fused ReLU clips the residual asymmetrically at zero).
    if (!op.relu) {
      std::vector<double> residual(static_cast<std::size_t>(co), 0.0);
      std::int64_t rows_total = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const TensorI8& qin = qacts[i][static_cast<std::size_t>(op.inputs[0])];
        TensorI8 qout(op.out_shape);
        if (op.kind == QOpKind::kConv2D) {
          kernels::conv2d(qin, op, qout, fp_in);
        } else {
          kernels::tconv2d(qin, op, qout, fp_in);
        }
        const TensorF deq = dequantize_tensor(qout, op.fix_pos_out);
        const TensorF& ref = facts[i][id];
        const std::int64_t rows = deq.numel() / co;
        rows_total += rows;
        for (std::int64_t r = 0; r < rows; ++r) {
          for (std::int64_t c = 0; c < co; ++c) {
            residual[static_cast<std::size_t>(c)] +=
                ref[r * co + c] - deq[r * co + c];
          }
        }
      }
      const double acc_scale = std::ldexp(1.0, fp_in + op.fix_pos_w);
      for (std::int64_t c = 0; c < co; ++c) {
        const double mean_r =
            residual[static_cast<std::size_t>(c)] / static_cast<double>(rows_total);
        op.bias[static_cast<std::size_t>(c)] += static_cast<std::int32_t>(
            std::llround(mean_r * acc_scale));
      }
    }

    // 3) Refresh this op's int activations for downstream layers.
    for (std::size_t i = 0; i < n; ++i) {
      const TensorI8& qin = qacts[i][static_cast<std::size_t>(op.inputs[0])];
      TensorI8 qout(op.out_shape);
      if (op.kind == QOpKind::kConv2D) {
        kernels::conv2d(qin, op, qout, fp_in);
      } else {
        kernels::tconv2d(qin, op, qout, fp_in);
      }
      qacts[i][id] = std::move(qout);
    }
  }
}

}  // namespace

QGraph quantize(const FGraph& fg, const std::vector<TensorF>& calibration,
                const QuantizeOptions& opts) {
  const ActivationStats stats =
      calibrate(fg, calibration, opts.max_calibration_images);
  QGraph qg = build_qgraph(fg, stats);
  if (opts.mode == QuantMode::kFFQ) {
    fast_finetune(qg, fg, calibration);
  }
  annotate_intervals(qg);
  return qg;
}

TensorI8 quantize_input(const QGraph& qg, const TensorF& image) {
  return quantize_tensor(image, qg.input_fix_pos);
}

TensorF dequantize_output(const QGraph& qg, const TensorI8& out) {
  return dequantize_tensor(
      out, qg.ops[static_cast<std::size_t>(qg.output_op)].fix_pos_out);
}

}  // namespace seneca::quant
