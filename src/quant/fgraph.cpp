#include "quant/fgraph.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/layers2d.hpp"
#include "nn/layers_common.hpp"

namespace seneca::quant {

void conv2d_forward(const TensorF& x, const TensorF& w, const TensorF& b,
                    TensorF& out, bool relu) {
  const std::int64_t h = x.shape()[0];
  const std::int64_t wd = x.shape()[1];
  const std::int64_t ci = x.shape()[2];
  const std::int64_t k = w.shape()[0];
  const std::int64_t co = w.shape()[3];
  const std::int64_t pad = k / 2;
  for (std::int64_t oy = 0; oy < h; ++oy) {
    for (std::int64_t ox = 0; ox < wd; ++ox) {
      float* po = out.data() + (oy * wd + ox) * co;
      for (std::int64_t o = 0; o < co; ++o) po[o] = b[o];
      for (std::int64_t ky = 0; ky < k; ++ky) {
        const std::int64_t iy = oy + ky - pad;
        if (iy < 0 || iy >= h) continue;
        for (std::int64_t kx = 0; kx < k; ++kx) {
          const std::int64_t ix = ox + kx - pad;
          if (ix < 0 || ix >= wd) continue;
          const float* px = x.data() + (iy * wd + ix) * ci;
          const float* pw = w.data() + ((ky * k + kx) * ci) * co;
          for (std::int64_t c = 0; c < ci; ++c) {
            const float xv = px[c];
            const float* pwc = pw + c * co;
            for (std::int64_t o = 0; o < co; ++o) po[o] += xv * pwc[o];
          }
        }
      }
      if (relu) {
        for (std::int64_t o = 0; o < co; ++o) po[o] = std::max(po[o], 0.f);
      }
    }
  }
}

void tconv2d_forward(const TensorF& x, const TensorF& w, const TensorF& b,
                     TensorF& out, bool relu) {
  const std::int64_t h = x.shape()[0];
  const std::int64_t wd = x.shape()[1];
  const std::int64_t ci = x.shape()[2];
  const std::int64_t k = w.shape()[0];
  const std::int64_t co = w.shape()[3];
  const std::int64_t oh = h * 2, ow = wd * 2;
  for (std::int64_t i = 0; i < out.numel(); i += co) {
    for (std::int64_t o = 0; o < co; ++o) out[i + o] = b[o];
  }
  for (std::int64_t iy = 0; iy < h; ++iy) {
    for (std::int64_t ix = 0; ix < wd; ++ix) {
      const float* px = x.data() + (iy * wd + ix) * ci;
      for (std::int64_t ky = 0; ky < k; ++ky) {
        const std::int64_t oy = 2 * iy - 1 + ky;
        if (oy < 0 || oy >= oh) continue;
        for (std::int64_t kx = 0; kx < k; ++kx) {
          const std::int64_t ox = 2 * ix - 1 + kx;
          if (ox < 0 || ox >= ow) continue;
          float* po = out.data() + (oy * ow + ox) * co;
          const float* pw = w.data() + ((ky * k + kx) * ci) * co;
          for (std::int64_t c = 0; c < ci; ++c) {
            const float xv = px[c];
            const float* pwc = pw + c * co;
            for (std::int64_t o = 0; o < co; ++o) po[o] += xv * pwc[o];
          }
        }
      }
    }
  }
  if (relu) {
    for (std::int64_t i = 0; i < out.numel(); ++i) out[i] = std::max(out[i], 0.f);
  }
}

void maxpool2d_forward(const TensorF& x, TensorF& out) {
  const std::int64_t h = x.shape()[0];
  const std::int64_t w = x.shape()[1];
  const std::int64_t c = x.shape()[2];
  const std::int64_t ow = w / 2;
  for (std::int64_t oy = 0; oy < h / 2; ++oy) {
    for (std::int64_t ox = 0; ox < ow; ++ox) {
      float* po = out.data() + (oy * ow + ox) * c;
      const float* p00 = x.data() + ((2 * oy) * w + 2 * ox) * c;
      const float* p01 = p00 + c;
      const float* p10 = x.data() + ((2 * oy + 1) * w + 2 * ox) * c;
      const float* p11 = p10 + c;
      for (std::int64_t ch = 0; ch < c; ++ch) {
        po[ch] = std::max(std::max(p00[ch], p01[ch]), std::max(p10[ch], p11[ch]));
      }
    }
  }
}

void concat_forward(const TensorF& a, const TensorF& b, TensorF& out) {
  const std::int64_t ca = a.shape()[2];
  const std::int64_t cb = b.shape()[2];
  const std::int64_t rows = a.numel() / ca;
  for (std::int64_t r = 0; r < rows; ++r) {
    float* po = out.data() + r * (ca + cb);
    const float* pa = a.data() + r * ca;
    const float* pb = b.data() + r * cb;
    std::copy(pa, pa + ca, po);
    std::copy(pb, pb + cb, po + ca);
  }
}

TensorF FGraph::forward(const TensorF& input,
                        std::vector<TensorF>* activations) const {
  std::vector<TensorF> acts(ops.size());
  acts[static_cast<std::size_t>(input_op)] = input;
  for (std::size_t id = 0; id < ops.size(); ++id) {
    const FOp& op = ops[id];
    if (op.kind == OpKind::kInput) continue;
    TensorF out(op.out_shape);
    const TensorF& a = acts[static_cast<std::size_t>(op.inputs[0])];
    switch (op.kind) {
      case OpKind::kConv2D:
        conv2d_forward(a, op.weights, op.bias, out, op.relu);
        break;
      case OpKind::kTConv2D:
        tconv2d_forward(a, op.weights, op.bias, out, op.relu);
        break;
      case OpKind::kMaxPool2D:
        maxpool2d_forward(a, out);
        break;
      case OpKind::kConcat:
        concat_forward(a, acts[static_cast<std::size_t>(op.inputs[1])], out);
        break;
      default:
        throw std::logic_error("FGraph::forward: bad op");
    }
    acts[id] = std::move(out);
  }
  TensorF result = acts[static_cast<std::size_t>(output_op)];
  if (activations) *activations = std::move(acts);
  return result;
}

FGraph fold(nn::Graph& graph) {
  FGraph fg;
  // node id -> fop id producing that node's value (bn/relu/dropout/softmax
  // map to the id of the op they fold into).
  std::vector<int> fop_of(graph.num_nodes(), -1);

  for (std::size_t id = 0; id < graph.num_nodes(); ++id) {
    auto& node = graph.node(static_cast<int>(id));
    if (!node.layer) {  // input placeholder
      FOp op;
      op.kind = OpKind::kInput;
      op.name = node.name;
      op.out_shape = node.shape;
      fg.ops.push_back(std::move(op));
      fg.input_op = static_cast<int>(fg.ops.size()) - 1;
      fop_of[id] = fg.input_op;
      continue;
    }
    const std::string type = node.layer->type();
    if (type == "conv2d" || type == "tconv2d") {
      FOp op;
      op.kind = (type == "conv2d") ? OpKind::kConv2D : OpKind::kTConv2D;
      op.name = node.name;
      op.inputs = {fop_of[static_cast<std::size_t>(node.inputs[0])]};
      op.out_shape = node.shape;
      if (type == "conv2d") {
        auto* conv = dynamic_cast<nn::Conv2D*>(node.layer.get());
        op.weights = conv->weight().value;
        op.bias = conv->bias().value;
        op.kernel = conv->kernel();
      } else {
        auto* conv = dynamic_cast<nn::TransposedConv2D*>(node.layer.get());
        op.weights = conv->weight().value;
        op.bias = conv->bias().value;
        op.kernel = conv->kernel();
      }
      fg.ops.push_back(std::move(op));
      fop_of[id] = static_cast<int>(fg.ops.size()) - 1;
    } else if (type == "batchnorm") {
      // Fold y = gamma*(x-mean)/sqrt(var+eps)+beta into the producing conv.
      const int src = fop_of[static_cast<std::size_t>(node.inputs[0])];
      FOp& conv = fg.ops[static_cast<std::size_t>(src)];
      if (conv.kind != OpKind::kConv2D && conv.kind != OpKind::kTConv2D) {
        throw std::invalid_argument("fold: batchnorm not after conv");
      }
      auto* bn = dynamic_cast<nn::BatchNorm*>(node.layer.get());
      const std::int64_t co = bn->channels();
      std::vector<float> scale(static_cast<std::size_t>(co));
      for (std::int64_t c = 0; c < co; ++c) {
        scale[static_cast<std::size_t>(c)] =
            bn->gamma()[c] / std::sqrt(bn->running_var()[c] + bn->epsilon());
      }
      // weights layout [..][Cout]: scale innermost dimension.
      for (std::int64_t i = 0; i < conv.weights.numel(); i += co) {
        for (std::int64_t c = 0; c < co; ++c) {
          conv.weights[i + c] *= scale[static_cast<std::size_t>(c)];
        }
      }
      for (std::int64_t c = 0; c < co; ++c) {
        conv.bias[c] = (conv.bias[c] - bn->running_mean()[c]) *
                           scale[static_cast<std::size_t>(c)] +
                       bn->beta()[c];
      }
      fop_of[id] = src;
    } else if (type == "relu") {
      const int src = fop_of[static_cast<std::size_t>(node.inputs[0])];
      FOp& producer = fg.ops[static_cast<std::size_t>(src)];
      if (producer.kind != OpKind::kConv2D && producer.kind != OpKind::kTConv2D) {
        throw std::invalid_argument("fold: relu not after conv");
      }
      producer.relu = true;
      fop_of[id] = src;
    } else if (type == "dropout" || type == "softmax") {
      fop_of[id] = fop_of[static_cast<std::size_t>(node.inputs[0])];
    } else if (type == "maxpool2d") {
      FOp op;
      op.kind = OpKind::kMaxPool2D;
      op.name = node.name;
      op.inputs = {fop_of[static_cast<std::size_t>(node.inputs[0])]};
      op.out_shape = node.shape;
      fg.ops.push_back(std::move(op));
      fop_of[id] = static_cast<int>(fg.ops.size()) - 1;
    } else if (type == "concat") {
      FOp op;
      op.kind = OpKind::kConcat;
      op.name = node.name;
      op.inputs = {fop_of[static_cast<std::size_t>(node.inputs[0])],
                   fop_of[static_cast<std::size_t>(node.inputs[1])]};
      op.out_shape = node.shape;
      fg.ops.push_back(std::move(op));
      fop_of[id] = static_cast<int>(fg.ops.size()) - 1;
    } else {
      throw std::invalid_argument("fold: unsupported layer type " + type);
    }
  }
  fg.output_op = fop_of[static_cast<std::size_t>(graph.output_id())];
  return fg;
}

}  // namespace seneca::quant
