// NEON INT8 kernels (aarch64). Deliberately simpler than the AVX2 path —
// 8 output channels per vector, widening multiplies via vmovl_s8 +
// vmulq_n_s16 (exact: |int8*int8| <= 16384 fits int16), accumulation with
// vaddw_s16 into int32 lanes, requant through the shared int32 scalar
// helper so the arithmetic is trivially identical to the reference.

#include "quant/kernels.hpp"
#include "quant/kernels_internal.hpp"

#if defined(SENECA_KERNELS_NEON)

#include <arm_neon.h>

#include <vector>

namespace seneca::quant::kernels {

namespace {

using detail::rshift_round32;

inline void requant_store8(const std::int32_t* acc, int shift, bool relu,
                           std::int8_t* dst, std::int64_t n) {
  for (std::int64_t j = 0; j < n; ++j) {
    std::int32_t v = rshift_round32(acc[j], shift);
    if (relu && v < 0) v = 0;
    dst[j] = saturate_i8(v);
  }
}

}  // namespace

void conv2d_neon(const TensorI8& x, const QOp& op, TensorI8& out,
                 int fix_pos_in) {
  const std::int64_t h = x.shape()[0];
  const std::int64_t w = x.shape()[1];
  const std::int64_t ci = x.shape()[2];
  const std::int64_t k = op.kernel;
  const std::int64_t co = op.out_shape[2];
  const std::int64_t pad = k / 2;
  const int shift = fix_pos_in + op.fix_pos_w - op.fix_pos_out;
  const std::int8_t* X = x.data();
  const std::int8_t* W = op.weights.data();
  const std::int32_t* B = op.bias.data();
  const std::int64_t co8 = co & ~std::int64_t{7};

  for (std::int64_t oy = 0; oy < h; ++oy) {
    for (std::int64_t ox = 0; ox < w; ++ox) {
      std::int8_t* po = out.data() + (oy * w + ox) * co;
      for (std::int64_t ob = 0; ob < co8; ob += 8) {
        int32x4_t acc0 = vld1q_s32(B + ob);
        int32x4_t acc1 = vld1q_s32(B + ob + 4);
        for (std::int64_t ky = 0; ky < k; ++ky) {
          const std::int64_t iy = oy + ky - pad;
          if (iy < 0 || iy >= h) continue;
          for (std::int64_t kx = 0; kx < k; ++kx) {
            const std::int64_t ix = ox + kx - pad;
            if (ix < 0 || ix >= w) continue;
            const std::int8_t* px = X + (iy * w + ix) * ci;
            const std::int8_t* pw = W + ((ky * k + kx) * ci) * co + ob;
            for (std::int64_t c = 0; c < ci; ++c) {
              const std::int8_t xv = px[c];
              if (xv == 0) continue;
              const int16x8_t w16 = vmovl_s8(vld1_s8(pw + c * co));
              const int16x8_t prod =
                  vmulq_n_s16(w16, static_cast<std::int16_t>(xv));
              acc0 = vaddw_s16(acc0, vget_low_s16(prod));
              acc1 = vaddw_s16(acc1, vget_high_s16(prod));
            }
          }
        }
        std::int32_t tmp[8];
        vst1q_s32(tmp, acc0);
        vst1q_s32(tmp + 4, acc1);
        requant_store8(tmp, shift, op.relu, po + ob, 8);
      }
      // Tail channels: scalar int32.
      for (std::int64_t o = co8; o < co; ++o) {
        std::int32_t acc = B[o];
        for (std::int64_t ky = 0; ky < k; ++ky) {
          const std::int64_t iy = oy + ky - pad;
          if (iy < 0 || iy >= h) continue;
          for (std::int64_t kx = 0; kx < k; ++kx) {
            const std::int64_t ix = ox + kx - pad;
            if (ix < 0 || ix >= w) continue;
            const std::int8_t* px = X + (iy * w + ix) * ci;
            const std::int8_t* pw = W + ((ky * k + kx) * ci) * co + o;
            for (std::int64_t c = 0; c < ci; ++c) {
              acc += static_cast<std::int32_t>(px[c]) *
                     static_cast<std::int32_t>(pw[c * co]);
            }
          }
        }
        requant_store8(&acc, shift, op.relu, po + o, 1);
      }
    }
  }
}

void tconv2d_neon(const TensorI8& x, const QOp& op, TensorI8& out,
                  int fix_pos_in, tensor::TensorArena* arena) {
  const int shift = fix_pos_in + op.fix_pos_w - op.fix_pos_out;

  std::vector<std::int32_t> local;
  std::int32_t* acc = detail::tconv_scratch(op, arena, local);
  detail::tconv_acc_init(op, acc);
  detail::tconv_scatter(
      x, op, acc,
      [](std::int32_t* pa, const std::int8_t* px, const std::int8_t* pw,
         std::int64_t nci, std::int64_t nco) {
        const std::int64_t co8 = nco & ~std::int64_t{7};
        for (std::int64_t c = 0; c < nci; ++c) {
          const std::int8_t xv = px[c];
          if (xv == 0) continue;
          const std::int8_t* pwc = pw + c * nco;
          std::int64_t ob = 0;
          for (; ob < co8; ob += 8) {
            const int16x8_t prod = vmulq_n_s16(
                vmovl_s8(vld1_s8(pwc + ob)), static_cast<std::int16_t>(xv));
            vst1q_s32(pa + ob,
                      vaddw_s16(vld1q_s32(pa + ob), vget_low_s16(prod)));
            vst1q_s32(pa + ob + 4,
                      vaddw_s16(vld1q_s32(pa + ob + 4), vget_high_s16(prod)));
          }
          for (; ob < nco; ++ob) {
            pa[ob] += static_cast<std::int32_t>(xv) *
                      static_cast<std::int32_t>(pwc[ob]);
          }
        }
      });

  const std::int64_t n = op.out_shape.numel();
  requant_store8(acc, shift, op.relu, out.data(), n);
}

void maxpool2d_neon(const TensorI8& x, TensorI8& out) {
  const std::int64_t h = x.shape()[0];
  const std::int64_t w = x.shape()[1];
  const std::int64_t c = x.shape()[2];
  const std::int64_t oh = h / 2, ow = w / 2;
  for (std::int64_t oy = 0; oy < oh; ++oy) {
    for (std::int64_t ox = 0; ox < ow; ++ox) {
      const std::int8_t* p00 = x.data() + ((2 * oy) * w + 2 * ox) * c;
      const std::int8_t* p10 = x.data() + ((2 * oy + 1) * w + 2 * ox) * c;
      std::int8_t* po = out.data() + (oy * ow + ox) * c;
      std::int64_t ch = 0;
      for (; ch + 16 <= c; ch += 16) {
        const int8x16_t m =
            vmaxq_s8(vmaxq_s8(vld1q_s8(p00 + ch), vld1q_s8(p00 + c + ch)),
                     vmaxq_s8(vld1q_s8(p10 + ch), vld1q_s8(p10 + c + ch)));
        vst1q_s8(po + ch, m);
      }
      for (; ch < c; ++ch) {
        po[ch] = std::max(std::max(p00[ch], p00[c + ch]),
                          std::max(p10[ch], p10[c + ch]));
      }
    }
  }
}

}  // namespace seneca::quant::kernels

#endif  // SENECA_KERNELS_NEON
