#pragma once
// Folded float inference IR (the quantizer's working representation).
//
// fold() rewrites a trained nn::Graph the way the Vitis AI quantizer does
// before weight conversion (§III-D): batch-norm layers are folded into the
// preceding convolution (using running statistics), ReLUs are fused into the
// producing op, dropout is removed, and the trailing softmax is dropped
// (argmax is monotonic in the logits; the DPU returns INT8 logit maps and
// the host applies softmax/argmax, mirroring the VART deployment).

#include <cstdint>
#include <string>
#include <vector>

#include "nn/graph.hpp"
#include "tensor/tensor.hpp"

namespace seneca::quant {

using tensor::Shape;
using tensor::TensorF;

enum class OpKind {
  kInput,
  kConv2D,    // stride-1 same conv (+optional fused ReLU)
  kTConv2D,   // stride-2 k=3 transposed conv (+optional fused ReLU)
  kMaxPool2D, // 2x2/2
  kConcat,    // channel concat of two inputs
};

struct FOp {
  OpKind kind = OpKind::kInput;
  std::string name;
  std::vector<int> inputs;  // op ids
  Shape out_shape;
  // Conv/TConv payload:
  TensorF weights;  // [K][K][Cin][Cout]
  TensorF bias;     // [Cout]
  std::int64_t kernel = 0;
  bool relu = false;
};

struct FGraph {
  std::vector<FOp> ops;
  int input_op = -1;
  int output_op = -1;

  /// Forward pass; if `activations` is non-null it receives every op's
  /// output (indexed by op id) for calibration.
  TensorF forward(const TensorF& input,
                  std::vector<TensorF>* activations = nullptr) const;
};

/// Folds a trained graph into the inference IR. The graph must follow the
/// SENECA U-Net op vocabulary (conv/bn/relu/pool/dropout/tconv/concat/
/// softmax); anything else throws std::invalid_argument.
FGraph fold(nn::Graph& graph);

// Standalone float kernels shared by fold()'s executor (and tests).
void conv2d_forward(const TensorF& x, const TensorF& w, const TensorF& b,
                    TensorF& out, bool relu);
void tconv2d_forward(const TensorF& x, const TensorF& w, const TensorF& b,
                     TensorF& out, bool relu);
void maxpool2d_forward(const TensorF& x, TensorF& out);
void concat_forward(const TensorF& a, const TensorF& b, TensorF& out);

}  // namespace seneca::quant
