#pragma once
// SENECA-Kernels: the vectorized INT8 hot path of the functional DPU.
//
// The scalar kernels in qgraph.cpp (`q*_forward`) remain the *reference
// semantics*; everything here is an implementation of the same arithmetic
// that must stay bit-exact against them (tests/quant_kernels_test.cpp
// sweeps this property, bench/int8_kernels --strict gates it in CI).
//
// Three backends, selected once at build time and dispatched per call:
//  - kScalar:  the int64-accumulator reference in qgraph.cpp.
//  - kGeneric: portable int32-accumulator restructuring of the same loops
//              (always compiled; the SENECA_SIMD=OFF build runs on it).
//  - kSimd:    AVX2 (x86-64, -mavx2, cpuid-checked at runtime) or NEON
//              (aarch64) intrinsics. The innermost loop is a widening
//              int8 x int8 -> int32 multiply-accumulate over contiguous
//              output channels ([K][K][Cin][Cout] weight layout).
//
// int32 accumulation is only used when it provably cannot overflow
// (|bias| + k*k*ci*128*128 within int32, scaled through a negative requant
// shift); otherwise the dispatcher falls back to the int64 scalar
// reference, so bit-exactness holds unconditionally.

#include <cstdint>

#include "quant/qgraph.hpp"
#include "tensor/arena.hpp"

namespace seneca::quant::kernels {

enum class Backend {
  kAuto,     // best available: SIMD if compiled in and CPU-supported
  kScalar,   // int64 reference kernels in qgraph.cpp
  kGeneric,  // portable int32 kernels
  kSimd,     // AVX2 / NEON (resolves to kGeneric when unavailable)
};

/// True when a SIMD backend was compiled in AND the CPU supports it.
bool simd_available();

/// Resolves the active backend (kAuto/kSimd resolve to what will run).
Backend active_backend();

/// Global backend override — benches/tests only; reads are atomic, so
/// flipping it while executors run in other threads is safe but applies
/// per kernel call.
void set_backend(Backend b);

const char* backend_name(Backend b);

// --- Dispatch entry points (signatures mirror the scalar reference). -----

void conv2d(const TensorI8& x, const QOp& op, TensorI8& out, int fix_pos_in);
/// `arena` (optional) provides the oh*ow*co int32 accumulator plane.
void tconv2d(const TensorI8& x, const QOp& op, TensorI8& out, int fix_pos_in,
             tensor::TensorArena* arena = nullptr);
void maxpool2d(const TensorI8& x, TensorI8& out);
void concat(const TensorI8& a, int fp_a, const TensorI8& b, int fp_b,
            TensorI8& out, int fp_out);

/// Requantizing row copy: dst[i] = sat8(rshift_round(src[i], shift)).
/// shift == 0 degenerates to memcpy; also used by the DPU simulator's
/// materialized-concat assembly.
void requant_row(const std::int8_t* src, std::int8_t* dst, std::int64_t n,
                 int shift);

// --- Backend internals (exposed for the per-kernel micro-bench). ---------

/// True when `op` (with `ci` input channels) can use int32 accumulators
/// without overflow through requant; false forces the scalar reference.
bool acc32_safe(const QOp& op, std::int64_t ci);

void conv2d_generic(const TensorI8& x, const QOp& op, TensorI8& out,
                    int fix_pos_in);
void tconv2d_generic(const TensorI8& x, const QOp& op, TensorI8& out,
                     int fix_pos_in, tensor::TensorArena* arena);
void maxpool2d_generic(const TensorI8& x, TensorI8& out);
void requant_row_generic(const std::int8_t* src, std::int8_t* dst,
                         std::int64_t n, int shift);

#if defined(SENECA_KERNELS_AVX2)
void conv2d_avx2(const TensorI8& x, const QOp& op, TensorI8& out,
                 int fix_pos_in);
void tconv2d_avx2(const TensorI8& x, const QOp& op, TensorI8& out,
                  int fix_pos_in, tensor::TensorArena* arena);
void maxpool2d_avx2(const TensorI8& x, TensorI8& out);
void requant_row_avx2(const std::int8_t* src, std::int8_t* dst,
                      std::int64_t n, int shift);
#endif
#if defined(SENECA_KERNELS_NEON)
void conv2d_neon(const TensorI8& x, const QOp& op, TensorI8& out,
                 int fix_pos_in);
void tconv2d_neon(const TensorI8& x, const QOp& op, TensorI8& out,
                  int fix_pos_in, tensor::TensorArena* arena);
void maxpool2d_neon(const TensorI8& x, TensorI8& out);
#endif

}  // namespace seneca::quant::kernels
