#pragma once
// Quantization-aware training (the third Vitis AI mode, §III-D): a few
// fine-tuning epochs where convolution weights are snapped to their INT8
// power-of-two grid during the forward/backward pass, with gradients applied
// to the float shadow weights (straight-through estimator). Requires the
// labelled training set, which is why the paper calls it the most expensive
// option — and why PTQ wins in practice (ablation_quantization_modes).

#include <vector>

#include "nn/graph.hpp"
#include "nn/loss.hpp"
#include "nn/trainer.hpp"

namespace seneca::quant {

struct QatOptions {
  int epochs = 2;
  float learning_rate = 2e-4f;
  std::uint64_t shuffle_seed = 77;
};

/// Fine-tunes `graph` in place with fake-quantized weights. Returns the mean
/// loss of the final epoch. After this, quantize() on the folded graph
/// produces the deployable model as usual.
double qat_finetune(nn::Graph& graph, const nn::Loss& loss,
                    const std::vector<nn::Sample>& data,
                    const QatOptions& opts = {});

/// Snaps a float tensor to its INT8 power-of-two grid in place (fake quant).
void fake_quantize(tensor::TensorF& t);

}  // namespace seneca::quant
