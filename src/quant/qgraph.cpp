#include "quant/qgraph.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "quant/kernels.hpp"

namespace seneca::quant {

TensorI8 quantize_tensor(const TensorF& x, int fix_pos) {
  TensorI8 q(x.shape());
  const double scale = std::ldexp(1.0, fix_pos);  // 2^fix_pos
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    // std::round is round-half-away-from-zero regardless of the ambient FP
    // rounding mode — the same tie rule as the runtime's rshift_round, so
    // calibration and execution agree on every representable tie.
    const double v = std::round(static_cast<double>(x[i]) * scale);
    q[i] = saturate_i8(static_cast<std::int64_t>(v));
  }
  return q;
}

TensorF dequantize_tensor(const TensorI8& q, int fix_pos) {
  TensorF x(q.shape());
  const float scale = std::ldexp(1.0f, -fix_pos);
  for (std::int64_t i = 0; i < q.numel(); ++i) {
    x[i] = static_cast<float>(q[i]) * scale;
  }
  return x;
}

double quantization_mse(const TensorF& x, int fix_pos) {
  const double scale = std::ldexp(1.0, fix_pos);
  const double inv = 1.0 / scale;
  double mse = 0.0;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const double q = static_cast<double>(
        saturate_i8(static_cast<std::int64_t>(std::round(x[i] * scale))));
    const double err = q * inv - x[i];
    mse += err * err;
  }
  return x.numel() ? mse / static_cast<double>(x.numel()) : 0.0;
}

int choose_fix_pos(const TensorF& x) {
  const float m = tensor::max_abs(x);
  if (m <= 0.f) return 7;
  // Largest fp with 127*2^-fp >= m, i.e. fp = floor(log2(127/m)).
  int fp = static_cast<int>(std::floor(std::log2(127.0 / m)));
  // The next position up halves the step but clips the extremes; keep
  // whichever has lower MSE (Vitis AI quantizer's calibration refinement).
  const double mse0 = quantization_mse(x, fp);
  const double mse1 = quantization_mse(x, fp + 1);
  if (mse1 < mse0) ++fp;
  return fp;
}

void qconv2d_forward(const TensorI8& x, const QOp& op, TensorI8& out,
                     int fix_pos_in) {
  const std::int64_t h = x.shape()[0];
  const std::int64_t w = x.shape()[1];
  const std::int64_t ci = x.shape()[2];
  const std::int64_t k = op.kernel;
  const std::int64_t co = op.out_shape[2];
  const std::int64_t pad = k / 2;
  const int shift = fix_pos_in + op.fix_pos_w - op.fix_pos_out;
  std::vector<std::int64_t> acc(static_cast<std::size_t>(co));

  for (std::int64_t oy = 0; oy < h; ++oy) {
    for (std::int64_t ox = 0; ox < w; ++ox) {
      for (std::int64_t o = 0; o < co; ++o) acc[static_cast<std::size_t>(o)] = op.bias[static_cast<std::size_t>(o)];
      for (std::int64_t ky = 0; ky < k; ++ky) {
        const std::int64_t iy = oy + ky - pad;
        if (iy < 0 || iy >= h) continue;
        for (std::int64_t kx = 0; kx < k; ++kx) {
          const std::int64_t ix = ox + kx - pad;
          if (ix < 0 || ix >= w) continue;
          const std::int8_t* px = x.data() + (iy * w + ix) * ci;
          const std::int8_t* pw = op.weights.data() + ((ky * k + kx) * ci) * co;
          for (std::int64_t c = 0; c < ci; ++c) {
            const std::int32_t xv = px[c];
            if (xv == 0) continue;
            const std::int8_t* pwc = pw + c * co;
            for (std::int64_t o = 0; o < co; ++o) {
              acc[static_cast<std::size_t>(o)] += xv * pwc[o];
            }
          }
        }
      }
      std::int8_t* po = out.data() + (oy * w + ox) * co;
      for (std::int64_t o = 0; o < co; ++o) {
        std::int64_t v = rshift_round(acc[static_cast<std::size_t>(o)], shift);
        if (op.relu && v < 0) v = 0;
        po[o] = saturate_i8(v);
      }
    }
  }
}

void qtconv2d_forward(const TensorI8& x, const QOp& op, TensorI8& out,
                      int fix_pos_in) {
  const std::int64_t h = x.shape()[0];
  const std::int64_t w = x.shape()[1];
  const std::int64_t ci = x.shape()[2];
  const std::int64_t k = op.kernel;
  const std::int64_t co = op.out_shape[2];
  const std::int64_t oh = h * 2, ow = w * 2;
  const int shift = fix_pos_in + op.fix_pos_w - op.fix_pos_out;

  std::vector<std::int64_t> acc(static_cast<std::size_t>(oh * ow * co));
  for (std::int64_t i = 0; i < oh * ow; ++i) {
    for (std::int64_t o = 0; o < co; ++o) {
      acc[static_cast<std::size_t>(i * co + o)] = op.bias[static_cast<std::size_t>(o)];
    }
  }
  for (std::int64_t iy = 0; iy < h; ++iy) {
    for (std::int64_t ix = 0; ix < w; ++ix) {
      const std::int8_t* px = x.data() + (iy * w + ix) * ci;
      for (std::int64_t ky = 0; ky < k; ++ky) {
        const std::int64_t oy = 2 * iy - 1 + ky;
        if (oy < 0 || oy >= oh) continue;
        for (std::int64_t kx = 0; kx < k; ++kx) {
          const std::int64_t ox = 2 * ix - 1 + kx;
          if (ox < 0 || ox >= ow) continue;
          std::int64_t* pa = acc.data() + (oy * ow + ox) * co;
          const std::int8_t* pw = op.weights.data() + ((ky * k + kx) * ci) * co;
          for (std::int64_t c = 0; c < ci; ++c) {
            const std::int32_t xv = px[c];
            if (xv == 0) continue;
            const std::int8_t* pwc = pw + c * co;
            for (std::int64_t o = 0; o < co; ++o) pa[o] += xv * pwc[o];
          }
        }
      }
    }
  }
  for (std::int64_t i = 0; i < oh * ow * co; ++i) {
    std::int64_t v = rshift_round(acc[static_cast<std::size_t>(i)], shift);
    if (op.relu && v < 0) v = 0;
    out[i] = saturate_i8(v);
  }
}

void qmaxpool2d_forward(const TensorI8& x, TensorI8& out) {
  const std::int64_t h = x.shape()[0];
  const std::int64_t w = x.shape()[1];
  const std::int64_t c = x.shape()[2];
  const std::int64_t ow = w / 2;
  for (std::int64_t oy = 0; oy < h / 2; ++oy) {
    for (std::int64_t ox = 0; ox < ow; ++ox) {
      std::int8_t* po = out.data() + (oy * ow + ox) * c;
      const std::int8_t* p00 = x.data() + ((2 * oy) * w + 2 * ox) * c;
      const std::int8_t* p01 = p00 + c;
      const std::int8_t* p10 = x.data() + ((2 * oy + 1) * w + 2 * ox) * c;
      const std::int8_t* p11 = p10 + c;
      for (std::int64_t ch = 0; ch < c; ++ch) {
        po[ch] = std::max(std::max(p00[ch], p01[ch]), std::max(p10[ch], p11[ch]));
      }
    }
  }
}

void qconcat_forward(const TensorI8& a, int fp_a, const TensorI8& b, int fp_b,
                     TensorI8& out, int fp_out) {
  const std::int64_t ca = a.shape()[2];
  const std::int64_t cb = b.shape()[2];
  const std::int64_t rows = a.numel() / ca;
  const int sa = fp_a - fp_out;
  const int sb = fp_b - fp_out;
  for (std::int64_t r = 0; r < rows; ++r) {
    std::int8_t* po = out.data() + r * (ca + cb);
    const std::int8_t* pa = a.data() + r * ca;
    const std::int8_t* pb = b.data() + r * cb;
    for (std::int64_t ch = 0; ch < ca; ++ch) {
      po[ch] = saturate_i8(rshift_round(pa[ch], sa));
    }
    for (std::int64_t ch = 0; ch < cb; ++ch) {
      po[ca + ch] = saturate_i8(rshift_round(pb[ch], sb));
    }
  }
}

TensorI8 QGraph::forward(const TensorI8& input,
                         std::vector<TensorI8>* activations,
                         tensor::TensorArena* arena) const {
  std::vector<TensorI8> acts(ops.size());
  std::vector<int> fps(ops.size(), 0);
  fps[static_cast<std::size_t>(input_op)] = input_fix_pos;

  // The input is only materialized into the activation set when the caller
  // asked for activations; the frame path reads it by reference.
  auto in_of = [&](int id) -> const TensorI8& {
    return id == input_op ? input : acts[static_cast<std::size_t>(id)];
  };

  for (std::size_t id = 0; id < ops.size(); ++id) {
    const QOp& op = ops[id];
    if (op.kind == QOpKind::kInput) continue;
    const int in0 = op.inputs[0];
    const int fp0 = fps[static_cast<std::size_t>(in0)];
    TensorI8 out = arena ? arena->acquire(op.out_shape)
                         : TensorI8(op.out_shape);
    switch (op.kind) {
      case QOpKind::kConv2D:
        kernels::conv2d(in_of(in0), op, out, fp0);
        break;
      case QOpKind::kTConv2D:
        kernels::tconv2d(in_of(in0), op, out, fp0, arena);
        break;
      case QOpKind::kMaxPool2D:
        kernels::maxpool2d(in_of(in0), out);
        break;
      case QOpKind::kConcat: {
        const int in1 = op.inputs[1];
        kernels::concat(in_of(in0), fp0, in_of(in1),
                        fps[static_cast<std::size_t>(in1)], out,
                        op.fix_pos_out);
        break;
      }
      default:
        throw std::logic_error("QGraph::forward: bad op");
    }
    acts[id] = std::move(out);
    fps[id] = (op.kind == QOpKind::kMaxPool2D) ? fp0 : op.fix_pos_out;
  }
  TensorI8 result = std::move(acts[static_cast<std::size_t>(output_op)]);
  if (activations) {
    // Keep the capture complete: the output op's slot and the network
    // input both appear in the activation set (one copy each, only here).
    acts[static_cast<std::size_t>(output_op)] = result;
    acts[static_cast<std::size_t>(input_op)] = input;
    *activations = std::move(acts);
  } else if (arena) {
    for (auto& t : acts) arena->release(std::move(t));
  }
  return result;
}

// --- Static range analysis -------------------------------------------------

Interval conv_acc_interval(const std::int8_t* weights, std::int64_t taps,
                           std::int64_t co, const std::int32_t* bias,
                           Interval in) {
  Interval worst{0, 0};
  bool first = true;
  for (std::int64_t o = 0; o < co; ++o) {
    std::int64_t lo = bias[o];
    std::int64_t hi = bias[o];
    for (std::int64_t t = 0; t < taps; ++t) {
      const std::int64_t w = weights[t * co + o];
      if (w == 0) continue;
      const std::int64_t p1 = w * in.lo;
      const std::int64_t p2 = w * in.hi;
      // A tap can be absent (zero padding at borders, tconv phases), so its
      // contribution interval always includes 0.
      lo += std::min({p1, p2, std::int64_t{0}});
      hi += std::max({p1, p2, std::int64_t{0}});
    }
    if (first || lo < worst.lo) worst.lo = lo;
    if (first || hi > worst.hi) worst.hi = hi;
    first = false;
  }
  return worst;
}

Interval conv_acc_interval(const QOp& op, std::int64_t ci, Interval in) {
  const std::int64_t co = op.out_shape[2];
  return conv_acc_interval(op.weights.data(), op.kernel * op.kernel * ci, co,
                           op.bias.data(), in);
}

Interval requant_out_interval(Interval acc, int shift, bool relu) {
  std::int64_t lo = rshift_round(acc.lo, shift);
  std::int64_t hi = rshift_round(acc.hi, shift);
  if (relu) {
    lo = std::max<std::int64_t>(lo, 0);
    hi = std::max<std::int64_t>(hi, 0);
  }
  return {saturate_i8(lo), saturate_i8(hi)};
}

bool interval_shift32_safe(Interval acc, int shift) {
  if (shift > 30 || shift < -20) return false;
  std::int64_t lo = acc.lo;
  std::int64_t hi = acc.hi;
  if (shift < 0) {
    lo <<= -shift;
    hi <<= -shift;
  } else if (shift > 0) {
    const std::int64_t round_bias = std::int64_t{1} << (shift - 1);
    lo -= round_bias;
    hi += round_bias;
  }
  return lo >= std::numeric_limits<std::int32_t>::min() &&
         hi <= std::numeric_limits<std::int32_t>::max();
}

void annotate_intervals(QGraph& g) {
  std::vector<Interval> act(g.ops.size());
  std::vector<int> fps(g.ops.size(), 0);
  for (std::size_t id = 0; id < g.ops.size(); ++id) {
    QOp& op = g.ops[id];
    Interval out{-128, 127};
    int fp = op.fix_pos_out;
    switch (op.kind) {
      case QOpKind::kInput:
        fp = g.input_fix_pos;
        break;
      case QOpKind::kConv2D:
      case QOpKind::kTConv2D: {
        const int in0 = op.inputs[0];
        const Shape& in_shape = in0 == g.input_op
                                    ? g.input_shape
                                    : g.ops[static_cast<std::size_t>(in0)].out_shape;
        const Interval acc =
            conv_acc_interval(op, in_shape[2], act[static_cast<std::size_t>(in0)]);
        const int shift =
            fps[static_cast<std::size_t>(in0)] + op.fix_pos_w - op.fix_pos_out;
        out = requant_out_interval(acc, shift, op.relu);
        break;
      }
      case QOpKind::kMaxPool2D:
        out = act[static_cast<std::size_t>(op.inputs[0])];
        fp = fps[static_cast<std::size_t>(op.inputs[0])];
        break;
      case QOpKind::kConcat: {
        bool first = true;
        for (int in : op.inputs) {
          const Interval v = requant_out_interval(
              act[static_cast<std::size_t>(in)],
              fps[static_cast<std::size_t>(in)] - op.fix_pos_out, false);
          if (first || v.lo < out.lo) out.lo = v.lo;
          if (first || v.hi > out.hi) out.hi = v.hi;
          first = false;
        }
        break;
      }
    }
    act[id] = out;
    fps[id] = fp;
    op.act_lo = static_cast<std::int16_t>(out.lo);
    op.act_hi = static_cast<std::int16_t>(out.hi);
  }
}

std::int64_t QGraph::weight_bytes() const {
  std::int64_t bytes = 0;
  for (const auto& op : ops) {
    bytes += op.weights.numel();
    bytes += static_cast<std::int64_t>(op.bias.size()) * 4;
  }
  return bytes;
}

}  // namespace seneca::quant
