#include "quant/qat.hpp"

#include <cmath>
#include <numeric>

#include "quant/qgraph.hpp"
#include "util/rng.hpp"

namespace seneca::quant {

void fake_quantize(tensor::TensorF& t) {
  const int fp = choose_fix_pos(t);
  const double scale = std::ldexp(1.0, fp);
  const double inv = 1.0 / scale;
  for (auto& v : t) {
    // std::round, not std::nearbyint: half-away-from-zero ties, independent
    // of the ambient FP rounding mode — matches quantize_tensor and the
    // runtime's rshift_round so QAT trains against deployment rounding.
    const auto q = saturate_i8(
        static_cast<std::int64_t>(std::round(static_cast<double>(v) * scale)));
    v = static_cast<float>(static_cast<double>(q) * inv);
  }
}

double qat_finetune(nn::Graph& graph, const nn::Loss& loss,
                    const std::vector<nn::Sample>& data,
                    const QatOptions& opts) {
  if (data.empty()) return 0.0;
  nn::Adam optimizer(opts.learning_rate);
  util::Rng rng(opts.shuffle_seed);

  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);

  // Shadow copies of the weight tensors (biases are kept float on the DPU's
  // INT32 accumulator path, so they train normally).
  auto params = graph.params();
  std::vector<tensor::TensorF> shadows;
  std::vector<std::size_t> weight_idx;
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i]->name == "weight") {
      weight_idx.push_back(i);
      shadows.push_back(params[i]->value);
    }
  }

  tensor::TensorF grad_probs;
  double last_epoch_loss = 0.0;
  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    rng.shuffle(order);
    double epoch_loss = 0.0;
    for (std::size_t idx : order) {
      // Forward/backward with snapped weights.
      for (std::size_t k = 0; k < weight_idx.size(); ++k) {
        params[weight_idx[k]]->value = shadows[k];
        fake_quantize(params[weight_idx[k]]->value);
      }
      const nn::Sample& s = data[idx];
      const auto& probs = graph.forward(s.image, /*training=*/true);
      if (grad_probs.shape() != probs.shape()) {
        grad_probs = tensor::TensorF(probs.shape());
      }
      epoch_loss += loss.compute(probs, s.labels, grad_probs);
      graph.zero_grad();
      graph.backward(grad_probs);
      // Straight-through: apply the quantized-forward gradients to shadows.
      for (std::size_t k = 0; k < weight_idx.size(); ++k) {
        params[weight_idx[k]]->value = shadows[k];
      }
      optimizer.step(params);
      for (std::size_t k = 0; k < weight_idx.size(); ++k) {
        shadows[k] = params[weight_idx[k]]->value;
      }
    }
    last_epoch_loss = epoch_loss / static_cast<double>(data.size());
  }
  // Leave the graph holding the trained float shadows.
  for (std::size_t k = 0; k < weight_idx.size(); ++k) {
    params[weight_idx[k]]->value = shadows[k];
  }
  return last_epoch_loss;
}

}  // namespace seneca::quant
