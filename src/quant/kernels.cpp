#include "quant/kernels.hpp"

#include <atomic>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <vector>

#include "quant/kernels_internal.hpp"

namespace seneca::quant::kernels {

namespace {

std::atomic<Backend> g_backend{Backend::kAuto};

/// Worst-case magnitude of one int8 x int8 product (-128 * -128).
constexpr std::int64_t kMaxProduct = 128 * 128;

}  // namespace

bool simd_available() {
#if defined(SENECA_KERNELS_AVX2)
  static const bool ok = __builtin_cpu_supports("avx2");
  return ok;
#elif defined(SENECA_KERNELS_NEON)
  return true;
#else
  return false;
#endif
}

Backend active_backend() {
  const Backend b = g_backend.load(std::memory_order_relaxed);
  if (b == Backend::kScalar || b == Backend::kGeneric) return b;
  return simd_available() ? Backend::kSimd : Backend::kGeneric;
}

void set_backend(Backend b) { g_backend.store(b, std::memory_order_relaxed); }

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kAuto: return "auto";
    case Backend::kScalar: return "scalar";
    case Backend::kGeneric: return "generic";
    case Backend::kSimd:
#if defined(SENECA_KERNELS_AVX2)
      return "avx2";
#elif defined(SENECA_KERNELS_NEON)
      return "neon";
#else
      return "simd-unavailable";
#endif
  }
  return "?";
}

namespace {

std::int64_t max_abs_bias(const QOp& op) {
  std::int64_t m = 0;
  for (const std::int32_t b : op.bias) {
    const std::int64_t a = b < 0 ? -static_cast<std::int64_t>(b)
                                 : static_cast<std::int64_t>(b);
    m = std::max(m, a);
  }
  return m;
}

std::int64_t acc_bound(const QOp& op, std::int64_t ci) {
  return max_abs_bias(op) + op.kernel * op.kernel * ci * kMaxProduct;
}

/// The int32 paths also evaluate the requant in 32 bits: a left shift
/// (shift < 0) grows the accumulator and a right shift adds the rounding
/// bias 2^(shift-1); both need headroom on top of plain accumulation.
bool shift32_safe(const QOp& op, std::int64_t ci, int shift) {
  if (shift > 30 || shift < -20) return false;
  std::int64_t bound = acc_bound(op, ci);
  if (shift < 0) {
    bound <<= -shift;
  } else if (shift > 0) {
    bound += std::int64_t{1} << (shift - 1);
  }
  return bound <= std::numeric_limits<std::int32_t>::max();
}

}  // namespace

bool acc32_safe(const QOp& op, std::int64_t ci) {
  return acc_bound(op, ci) <= std::numeric_limits<std::int32_t>::max();
}

using detail::rshift_round32;

// ---------------------------------------------------------------- generic

void conv2d_generic(const TensorI8& x, const QOp& op, TensorI8& out,
                    int fix_pos_in) {
  const std::int64_t h = x.shape()[0];
  const std::int64_t w = x.shape()[1];
  const std::int64_t ci = x.shape()[2];
  const std::int64_t k = op.kernel;
  const std::int64_t co = op.out_shape[2];
  const std::int64_t pad = k / 2;
  const int shift = fix_pos_in + op.fix_pos_w - op.fix_pos_out;
  std::vector<std::int32_t> acc(static_cast<std::size_t>(co));

  for (std::int64_t oy = 0; oy < h; ++oy) {
    for (std::int64_t ox = 0; ox < w; ++ox) {
      std::memcpy(acc.data(), op.bias.data(),
                  static_cast<std::size_t>(co) * sizeof(std::int32_t));
      for (std::int64_t ky = 0; ky < k; ++ky) {
        const std::int64_t iy = oy + ky - pad;
        if (iy < 0 || iy >= h) continue;
        for (std::int64_t kx = 0; kx < k; ++kx) {
          const std::int64_t ix = ox + kx - pad;
          if (ix < 0 || ix >= w) continue;
          const std::int8_t* px = x.data() + (iy * w + ix) * ci;
          const std::int8_t* pw = op.weights.data() + ((ky * k + kx) * ci) * co;
          for (std::int64_t c = 0; c < ci; ++c) {
            const std::int32_t xv = px[c];
            if (xv == 0) continue;
            const std::int8_t* pwc = pw + c * co;
            std::int32_t* pa = acc.data();
            for (std::int64_t o = 0; o < co; ++o) {
              pa[o] += xv * static_cast<std::int32_t>(pwc[o]);
            }
          }
        }
      }
      std::int8_t* po = out.data() + (oy * w + ox) * co;
      for (std::int64_t o = 0; o < co; ++o) {
        std::int32_t v = rshift_round32(acc[static_cast<std::size_t>(o)], shift);
        if (op.relu && v < 0) v = 0;
        po[o] = saturate_i8(v);
      }
    }
  }
}

void tconv2d_generic(const TensorI8& x, const QOp& op, TensorI8& out,
                     int fix_pos_in, tensor::TensorArena* arena) {
  const int shift = fix_pos_in + op.fix_pos_w - op.fix_pos_out;

  std::vector<std::int32_t> local;
  std::int32_t* acc = detail::tconv_scratch(op, arena, local);
  detail::tconv_acc_init(op, acc);
  detail::tconv_scatter(
      x, op, acc,
      [](std::int32_t* pa, const std::int8_t* px, const std::int8_t* pw,
         std::int64_t nci, std::int64_t nco) {
        for (std::int64_t c = 0; c < nci; ++c) {
          const std::int32_t xv = px[c];
          if (xv == 0) continue;
          const std::int8_t* pwc = pw + c * nco;
          for (std::int64_t o = 0; o < nco; ++o) {
            pa[o] += xv * static_cast<std::int32_t>(pwc[o]);
          }
        }
      });
  const std::int64_t n = op.out_shape.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    std::int32_t v = rshift_round32(acc[i], shift);
    if (op.relu && v < 0) v = 0;
    out[i] = saturate_i8(v);
  }
}

void maxpool2d_generic(const TensorI8& x, TensorI8& out) {
  // Identical structure to the scalar reference; int8 max needs no widening.
  qmaxpool2d_forward(x, out);
}

void requant_row_generic(const std::int8_t* src, std::int8_t* dst,
                         std::int64_t n, int shift) {
  if (shift == 0) {
    std::memcpy(dst, src, static_cast<std::size_t>(n));
    return;
  }
  for (std::int64_t i = 0; i < n; ++i) {
    dst[i] = saturate_i8(rshift_round(src[i], shift));
  }
}

// --------------------------------------------------------------- dispatch

void conv2d(const TensorI8& x, const QOp& op, TensorI8& out, int fix_pos_in) {
  const std::int64_t ci = x.shape()[2];
  const int shift = fix_pos_in + op.fix_pos_w - op.fix_pos_out;
  // Wherever the coarse runtime predicate admits the int32 path, the
  // per-weight interval proof (SENECA-Prove) must agree: its bound is tighter
  // than acc_bound by construction, so disagreement means a broken proof.
  assert(!shift32_safe(op, ci, shift) ||
         interval_shift32_safe(conv_acc_interval(op, ci, {-128, 127}), shift));
  const Backend b = active_backend();
  if (b == Backend::kScalar || !shift32_safe(op, ci, shift)) {
    qconv2d_forward(x, op, out, fix_pos_in);
    return;
  }
#if defined(SENECA_KERNELS_AVX2)
  if (b == Backend::kSimd) return conv2d_avx2(x, op, out, fix_pos_in);
#elif defined(SENECA_KERNELS_NEON)
  if (b == Backend::kSimd) return conv2d_neon(x, op, out, fix_pos_in);
#endif
  conv2d_generic(x, op, out, fix_pos_in);
}

void tconv2d(const TensorI8& x, const QOp& op, TensorI8& out, int fix_pos_in,
             tensor::TensorArena* arena) {
  const std::int64_t ci = x.shape()[2];
  const int shift = fix_pos_in + op.fix_pos_w - op.fix_pos_out;
  assert(!shift32_safe(op, ci, shift) ||
         interval_shift32_safe(conv_acc_interval(op, ci, {-128, 127}), shift));
  const Backend b = active_backend();
  if (b == Backend::kScalar || !shift32_safe(op, ci, shift)) {
    qtconv2d_forward(x, op, out, fix_pos_in);
    return;
  }
#if defined(SENECA_KERNELS_AVX2)
  if (b == Backend::kSimd) return tconv2d_avx2(x, op, out, fix_pos_in, arena);
#elif defined(SENECA_KERNELS_NEON)
  if (b == Backend::kSimd) return tconv2d_neon(x, op, out, fix_pos_in, arena);
#endif
  tconv2d_generic(x, op, out, fix_pos_in, arena);
}

void maxpool2d(const TensorI8& x, TensorI8& out) {
  const Backend b = active_backend();
  if (b == Backend::kScalar) return qmaxpool2d_forward(x, out);
#if defined(SENECA_KERNELS_AVX2)
  if (b == Backend::kSimd) return maxpool2d_avx2(x, out);
#elif defined(SENECA_KERNELS_NEON)
  if (b == Backend::kSimd) return maxpool2d_neon(x, out);
#endif
  maxpool2d_generic(x, out);
}

void requant_row(const std::int8_t* src, std::int8_t* dst, std::int64_t n,
                 int shift) {
  const Backend b = active_backend();
#if defined(SENECA_KERNELS_AVX2)
  // The AVX2 row requant covers |shift| <= 7 plus the shift-8 left edge of
  // its int16 arithmetic; everything else is reference-scalar inside.
  if (b == Backend::kSimd) return requant_row_avx2(src, dst, n, shift);
#endif
  if (b == Backend::kScalar) {
    for (std::int64_t i = 0; i < n; ++i) {
      dst[i] = saturate_i8(rshift_round(src[i], shift));
    }
    return;
  }
  requant_row_generic(src, dst, n, shift);
}

void concat(const TensorI8& a, int fp_a, const TensorI8& b, int fp_b,
            TensorI8& out, int fp_out) {
  if (active_backend() == Backend::kScalar) {
    return qconcat_forward(a, fp_a, b, fp_b, out, fp_out);
  }
  const std::int64_t ca = a.shape()[2];
  const std::int64_t cb = b.shape()[2];
  const std::int64_t rows = a.numel() / ca;
  const int sa = fp_a - fp_out;
  const int sb = fp_b - fp_out;
  for (std::int64_t r = 0; r < rows; ++r) {
    std::int8_t* po = out.data() + r * (ca + cb);
    requant_row(a.data() + r * ca, po, ca, sa);
    requant_row(b.data() + r * cb, po + ca, cb, sb);
  }
}

}  // namespace seneca::quant::kernels
