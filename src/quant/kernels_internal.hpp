#pragma once
// Shared pieces of the INT8 kernel backends (generic / AVX2 / NEON).
// Everything here assumes the dispatcher already proved int32 accumulation
// safe (kernels::acc32_safe + the shift headroom check in kernels.cpp).

#include <cstring>
#include <vector>

#include "quant/qgraph.hpp"
#include "tensor/arena.hpp"

namespace seneca::quant::kernels::detail {

/// int32 flavour of rshift_round; caller guarantees headroom for the
/// rounding bias (shift > 0) and the left shift (shift <= 0).
inline std::int32_t rshift_round32(std::int32_t v, int shift) {
  if (shift <= 0) {
    return static_cast<std::int32_t>(static_cast<std::uint32_t>(v)
                                     << (-shift));
  }
  const std::int32_t bias = std::int32_t{1} << (shift - 1);
  if (v >= 0) return (v + bias) >> shift;
  return -((-v + bias) >> shift);
}

/// Walks the transposed conv as the reference does — scatter from each
/// input pixel through every in-range tap — handing the accumulator row,
/// input-pixel row, and tap weight row to `body(pa, px, pw, ci, co)`.
template <typename Body>
void tconv_scatter(const TensorI8& x, const QOp& op, std::int32_t* acc,
                   Body&& body) {
  const std::int64_t h = x.shape()[0];
  const std::int64_t w = x.shape()[1];
  const std::int64_t ci = x.shape()[2];
  const std::int64_t k = op.kernel;
  const std::int64_t co = op.out_shape[2];
  const std::int64_t oh = h * 2, ow = w * 2;

  for (std::int64_t iy = 0; iy < h; ++iy) {
    for (std::int64_t ix = 0; ix < w; ++ix) {
      const std::int8_t* px = x.data() + (iy * w + ix) * ci;
      for (std::int64_t ky = 0; ky < k; ++ky) {
        const std::int64_t oy = 2 * iy - 1 + ky;
        if (oy < 0 || oy >= oh) continue;
        for (std::int64_t kx = 0; kx < k; ++kx) {
          const std::int64_t ox = 2 * ix - 1 + kx;
          if (ox < 0 || ox >= ow) continue;
          std::int32_t* pa = acc + (oy * ow + ox) * co;
          const std::int8_t* pw = op.weights.data() + ((ky * k + kx) * ci) * co;
          body(pa, px, pw, ci, co);
        }
      }
    }
  }
}

/// Seeds every output pixel's accumulator row with the bias vector.
inline void tconv_acc_init(const QOp& op, std::int32_t* acc) {
  const std::int64_t co = op.out_shape[2];
  const std::int64_t pixels = op.out_shape[0] * op.out_shape[1];
  for (std::int64_t i = 0; i < pixels; ++i) {
    std::memcpy(acc + i * co, op.bias.data(),
                static_cast<std::size_t>(co) * sizeof(std::int32_t));
  }
}

/// Accumulator plane from the arena when present, else call-local. Eight
/// int32 of slack past the end keep full-width vector loads at the plane
/// tail in bounds (the AVX2 small-co path reads 8 lanes and mask-stores the
/// valid ones).
inline std::int32_t* tconv_scratch(const QOp& op, tensor::TensorArena* arena,
                                   std::vector<std::int32_t>& local) {
  const std::int64_t n = op.out_shape.numel() + 8;
  if (arena) return arena->acc32(n);
  local.resize(static_cast<std::size_t>(n));
  return local.data();
}

}  // namespace seneca::quant::kernels::detail
