#include "quant/pruning.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace seneca::quant {

namespace {

/// L1 norm of each output filter of a conv weight tensor [K][K][Cin][Cout].
std::vector<double> filter_l1(const tensor::TensorF& w, std::int64_t co) {
  std::vector<double> norms(static_cast<std::size_t>(co), 0.0);
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    norms[static_cast<std::size_t>(i % co)] += std::fabs(w[i]);
  }
  return norms;
}

std::vector<std::int64_t> top_filters(const std::vector<double>& norms,
                                      std::int64_t keep_count) {
  std::vector<std::int64_t> order(norms.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::int64_t a, std::int64_t b) {
    return norms[static_cast<std::size_t>(a)] > norms[static_cast<std::size_t>(b)];
  });
  order.resize(static_cast<std::size_t>(keep_count));
  std::sort(order.begin(), order.end());  // preserve channel order
  return order;
}

std::int64_t op_macs(const FGraph& fg, const FOp& op) {
  if (op.kind != OpKind::kConv2D && op.kind != OpKind::kTConv2D) return 0;
  const auto& in_shape = fg.ops[static_cast<std::size_t>(op.inputs[0])].out_shape;
  const std::int64_t k = op.kernel;
  const std::int64_t macs = op.out_shape[0] * op.out_shape[1] * k * k *
                            in_shape[2] * op.out_shape[2];
  return op.kind == OpKind::kTConv2D ? macs / 4 : macs;
}

}  // namespace

std::int64_t fgraph_macs(const FGraph& fg) {
  std::int64_t macs = 0;
  for (const auto& op : fg.ops) macs += op_macs(fg, op);
  return macs;
}

FGraph prune(const FGraph& fg, const PruneOptions& opts, PruneReport* report) {
  if (opts.fraction < 0.0 || opts.fraction >= 1.0) {
    throw std::invalid_argument("prune: fraction must be in [0, 1)");
  }
  FGraph out;
  out.ops.resize(fg.ops.size());
  out.input_op = fg.input_op;
  out.output_op = fg.output_op;

  // Surviving output channels of each op, in ORIGINAL index space.
  std::vector<std::vector<std::int64_t>> keep(fg.ops.size());

  for (std::size_t id = 0; id < fg.ops.size(); ++id) {
    const FOp& src = fg.ops[id];
    FOp& dst = out.ops[id];
    dst.kind = src.kind;
    dst.name = src.name;
    dst.inputs = src.inputs;
    dst.kernel = src.kernel;
    dst.relu = src.relu;

    switch (src.kind) {
      case OpKind::kInput: {
        const std::int64_t c = src.out_shape[2];
        keep[id].resize(static_cast<std::size_t>(c));
        std::iota(keep[id].begin(), keep[id].end(), 0);
        dst.out_shape = src.out_shape;
        break;
      }
      case OpKind::kMaxPool2D: {
        keep[id] = keep[static_cast<std::size_t>(src.inputs[0])];
        const auto& in_shape =
            out.ops[static_cast<std::size_t>(src.inputs[0])].out_shape;
        dst.out_shape = tensor::Shape{src.out_shape[0], src.out_shape[1],
                                      in_shape[2]};
        break;
      }
      case OpKind::kConcat: {
        const auto& ka = keep[static_cast<std::size_t>(src.inputs[0])];
        const auto& kb = keep[static_cast<std::size_t>(src.inputs[1])];
        const std::int64_t ca_original =
            fg.ops[static_cast<std::size_t>(src.inputs[0])].out_shape[2];
        keep[id] = ka;
        for (std::int64_t j : kb) keep[id].push_back(ca_original + j);
        dst.out_shape = tensor::Shape{
            src.out_shape[0], src.out_shape[1],
            static_cast<std::int64_t>(keep[id].size())};
        break;
      }
      case OpKind::kConv2D:
      case OpKind::kTConv2D: {
        const std::int64_t co = src.out_shape[2];
        const bool is_head = static_cast<int>(id) == fg.output_op;
        std::vector<std::int64_t> kept_out;
        if (is_head) {
          kept_out.resize(static_cast<std::size_t>(co));
          std::iota(kept_out.begin(), kept_out.end(), 0);
        } else {
          const auto target = static_cast<std::int64_t>(
              std::llround((1.0 - opts.fraction) * static_cast<double>(co)));
          const std::int64_t keep_count =
              std::max(opts.min_filters, std::max<std::int64_t>(1, target));
          kept_out = top_filters(filter_l1(src.weights, co),
                                 std::min(keep_count, co));
        }
        const auto& kept_in = keep[static_cast<std::size_t>(src.inputs[0])];
        const std::int64_t k = src.kernel;
        const std::int64_t ci_old = src.weights.shape()[2];
        const auto ci_new = static_cast<std::int64_t>(kept_in.size());
        const auto co_new = static_cast<std::int64_t>(kept_out.size());
        dst.weights = tensor::TensorF(tensor::Shape{k, k, ci_new, co_new});
        for (std::int64_t ky = 0; ky < k; ++ky) {
          for (std::int64_t kx = 0; kx < k; ++kx) {
            for (std::int64_t ci = 0; ci < ci_new; ++ci) {
              const std::int64_t ci_src = kept_in[static_cast<std::size_t>(ci)];
              for (std::int64_t o = 0; o < co_new; ++o) {
                const std::int64_t o_src = kept_out[static_cast<std::size_t>(o)];
                dst.weights[((ky * k + kx) * ci_new + ci) * co_new + o] =
                    src.weights[((ky * k + kx) * ci_old + ci_src) * co + o_src];
              }
            }
          }
        }
        dst.bias = tensor::TensorF(tensor::Shape{co_new});
        for (std::int64_t o = 0; o < co_new; ++o) {
          dst.bias[o] = src.bias[kept_out[static_cast<std::size_t>(o)]];
        }
        dst.out_shape =
            tensor::Shape{src.out_shape[0], src.out_shape[1], co_new};
        keep[id] = std::move(kept_out);
        break;
      }
    }
  }

  if (report) {
    report->weights_before = 0;
    report->weights_after = 0;
    for (std::size_t id = 0; id < fg.ops.size(); ++id) {
      report->weights_before += fg.ops[id].weights.numel();
      report->weights_after += out.ops[id].weights.numel();
    }
    report->macs_before = fgraph_macs(fg);
    report->macs_after = fgraph_macs(out);
  }
  return out;
}

}  // namespace seneca::quant
