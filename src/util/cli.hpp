#pragma once
// Tiny declarative command-line parser for the examples and benches.
// Supports --flag, --key value, and --key=value forms.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace seneca::util {

class Cli {
 public:
  /// Parses argv; unrecognized positional arguments are kept in positional().
  Cli(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& def) const;
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace seneca::util
