#pragma once
// Minimal levelled logger. All SENECA libraries log through this so that
// examples and benches can silence or redirect output uniformly.

#include <functional>
#include <sstream>
#include <string>

namespace seneca::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit a message (appends '\n'). Thread-safe.
void log_message(LogLevel level, const std::string& msg);

/// Redirects log output; nullptr restores the default stdout/stderr
/// writer. The swap is serialized against concurrent log_message calls
/// (the sink is guarded by the logger's mutex), so a sink installed from
/// one thread is never invoked torn from another.
using LogSink = std::function<void(LogLevel, const std::string&)>;
void set_log_sink(LogSink sink);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace seneca::util
