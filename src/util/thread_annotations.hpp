#pragma once
// Clang thread-safety-analysis macros (SENECA-Check). When compiled with
// clang -Wthread-safety these expand to the attributes the analysis keys
// on; on GCC (and any compiler without the capability attributes) they
// expand to nothing, so annotated code stays portable.
//
// Usage pattern (see util/mutex.hpp for the annotated primitives):
//
//   util::Mutex mutex_;
//   int value_ GUARDED_BY(mutex_);
//   void touch() { util::LockGuard lock(mutex_); ++value_; }
//
// Predicates passed to util::CondVar run with the lock held but through
// unannotated std:: internals; annotate the lambda itself:
//
//   cv_.wait(lock, [this]() REQUIRES(mutex_) { return ready_; });

#if defined(__clang__) && (!defined(SWIG))
#define SENECA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SENECA_THREAD_ANNOTATION(x)  // no-op
#endif

#define CAPABILITY(x) SENECA_THREAD_ANNOTATION(capability(x))

#define SCOPED_CAPABILITY SENECA_THREAD_ANNOTATION(scoped_lockable)

#define GUARDED_BY(x) SENECA_THREAD_ANNOTATION(guarded_by(x))

#define PT_GUARDED_BY(x) SENECA_THREAD_ANNOTATION(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  SENECA_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  SENECA_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  SENECA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  SENECA_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
  SENECA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  SENECA_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  SENECA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  SENECA_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  SENECA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define TRY_ACQUIRE_SHARED(...) \
  SENECA_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

#define EXCLUDES(...) SENECA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) SENECA_THREAD_ANNOTATION(assert_capability(x))

#define RETURN_CAPABILITY(x) SENECA_THREAD_ANNOTATION(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  SENECA_THREAD_ANNOTATION(no_thread_safety_analysis)
