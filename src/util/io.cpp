#include "util/io.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace seneca::util {

std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("cannot open file: " + path.string());
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<std::uint8_t> data(size);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(size));
  if (!in) throw std::runtime_error("short read: " + path.string());
  return data;
}

void write_file(const std::filesystem::path& path, const void* data,
                std::size_t size) {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot create file: " + path.string());
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
  if (!out) throw std::runtime_error("short write: " + path.string());
}

void write_text_file(const std::filesystem::path& path, const std::string& text) {
  write_file(path, text.data(), text.size());
}

void BinaryWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void BinaryWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void BinaryWriter::f32(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  u32(bits);
}

void BinaryWriter::bytes(const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + size);
}

void BinaryWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  bytes(s.data(), s.size());
}

void BinaryReader::require(std::size_t n) const {
  if (pos_ + n > buf_.size()) {
    throw std::runtime_error("BinaryReader: truncated stream");
  }
}

std::uint8_t BinaryReader::u8() {
  require(1);
  return buf_[pos_++];
}

std::uint32_t BinaryReader::u32() {
  require(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(buf_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t BinaryReader::u64() {
  require(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf_[pos_++]) << (8 * i);
  return v;
}

float BinaryReader::f32() {
  const std::uint32_t bits = u32();
  float v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

void BinaryReader::bytes(void* out, std::size_t size) {
  require(size);
  std::memcpy(out, buf_.data() + pos_, size);
  pos_ += size;
}

std::string BinaryReader::str() {
  const std::uint32_t n = u32();
  require(n);
  std::string s(reinterpret_cast<const char*>(buf_.data() + pos_), n);
  pos_ += n;
  return s;
}

}  // namespace seneca::util
