#pragma once
// Work-sharing thread pool and parallel_for used by the compute kernels.
//
// The pool is created once (see global_pool()) and shared; parallel_for
// chunks an index range across the workers and blocks until every chunk is
// done. On a single-core host the pool degenerates to inline execution with
// no thread churn, which keeps unit-test runtimes predictable.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace seneca::util {

class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means std::thread::hardware_concurrency.
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task. Fire-and-forget; use parallel_for for joinable work.
  void submit(std::function<void()> task);

  /// Run fn(i) for i in [begin, end), split into ~3 chunks per worker.
  /// Blocks until all iterations complete. Exceptions from fn propagate as
  /// std::terminate (kernels are noexcept by convention).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Chunked variant: fn(chunk_begin, chunk_end) — lower per-index overhead.
  void parallel_for_chunked(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Process-wide shared pool, sized to the hardware.
ThreadPool& global_pool();

/// Convenience wrapper over global_pool().parallel_for.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

}  // namespace seneca::util
