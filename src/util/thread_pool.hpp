#pragma once
// Work-sharing thread pool and parallel_for used by the compute kernels.
//
// The pool is created once (see global_pool()) and shared; parallel_for
// chunks an index range across the workers and blocks until every chunk is
// done. On a single-core host the pool degenerates to inline execution with
// no thread churn, which keeps unit-test runtimes predictable.
//
// Reentrancy rule: the pool is shared between compute kernels and the
// serving scheduler, so calls from inside a pool worker must not block on
// pool capacity. submit() from a worker only enqueues (safe); parallel_for
// / parallel_for_chunked detect that the caller *is* a pool worker and run
// the whole range inline instead of blocking on chunks that no free worker
// may ever pick up — nested parallelism degrades to sequential execution
// rather than deadlocking.
//
// Shutdown rule: once the destructor has started (stopping_ set), a
// concurrent submit() runs the task inline on the caller instead of
// enqueuing it — a task enqueued after the workers drain would never run,
// and a parallel_for waiting on it would hang forever.

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace seneca::util {

class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means std::thread::hardware_concurrency.
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// True iff the calling thread is one of this pool's workers.
  bool in_worker_thread() const;

  /// Enqueue a task. Fire-and-forget; use parallel_for for joinable work.
  /// Safe to call from a pool worker (the task is queued, never run inline
  /// while the pool is live). During/after shutdown the task runs inline
  /// on the caller (see header comment).
  void submit(std::function<void()> task);

  /// Run fn(i) for i in [begin, end), split into ~3 chunks per worker.
  /// Blocks until all iterations complete. Exceptions from fn propagate as
  /// std::terminate (kernels are noexcept by convention). When called from
  /// a pool worker the range runs inline on the caller (see header comment).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Chunked variant: fn(chunk_begin, chunk_end) — lower per-index overhead.
  void parallel_for_chunked(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::vector<std::thread::id> worker_ids_;
  Mutex mutex_;
  CondVar cv_;
  std::queue<std::function<void()>> tasks_ GUARDED_BY(mutex_);
  bool stopping_ GUARDED_BY(mutex_) = false;
};

/// Process-wide shared pool, sized to the hardware.
ThreadPool& global_pool();

/// Convenience wrapper over global_pool().parallel_for.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

}  // namespace seneca::util
