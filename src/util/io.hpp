#pragma once
// Small binary/text file helpers shared by weight serialization, the xmodel
// format, and the image writers.

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

namespace seneca::util {

/// Reads a whole file; throws std::runtime_error if it cannot be opened.
std::vector<std::uint8_t> read_file(const std::filesystem::path& path);

/// Writes a whole file, creating parent directories; throws on failure.
void write_file(const std::filesystem::path& path,
                const void* data, std::size_t size);
void write_text_file(const std::filesystem::path& path, const std::string& text);

/// Streaming little-endian binary writer/reader for (de)serialization.
class BinaryWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f32(float v);
  void bytes(const void* data, std::size_t size);
  void str(const std::string& s);

  const std::vector<std::uint8_t>& data() const { return buf_; }

 private:
  std::vector<std::uint8_t> buf_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::vector<std::uint8_t> data) : buf_(std::move(data)) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  float f32();
  void bytes(void* out, std::size_t size);
  std::string str();

  std::size_t remaining() const { return buf_.size() - pos_; }
  bool eof() const { return pos_ >= buf_.size(); }

 private:
  void require(std::size_t n) const;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

}  // namespace seneca::util
