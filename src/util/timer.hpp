#pragma once
// Wall-clock timing helpers for the examples and benches. Simulated time
// (DPU cycles, discrete-event timestamps) lives in the respective models;
// this is only for measuring host execution.

#include <chrono>

namespace seneca::util {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}
  void reset() { start_ = Clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace seneca::util
