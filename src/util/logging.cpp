#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <utility>

#include "util/mutex.hpp"

namespace seneca::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

// Serializes both the writes themselves (no interleaved lines) and the
// sink swap: set_log_sink racing log_message would otherwise read a
// std::function mid-assignment.
Mutex g_log_mutex;
LogSink g_sink GUARDED_BY(g_log_mutex);

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void set_log_sink(LogSink sink) {
  LockGuard lock(g_log_mutex);
  g_sink = std::move(sink);
}

void log_message(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  LockGuard lock(g_log_mutex);
  if (g_sink) {
    g_sink(level, msg);
    return;
  }
  std::fprintf(level >= LogLevel::kWarn ? stderr : stdout, "[seneca %s] %s\n",
               level_tag(level), msg.c_str());
}

}  // namespace seneca::util
