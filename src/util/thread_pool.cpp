#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>

namespace seneca::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // With a single hardware thread, running everything inline is both faster
  // and deterministic; keep zero workers and execute in the caller.
  if (num_threads <= 1) return;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  // worker_ids_ is written once here, before any external submit/parallel_for
  // can run, and is read-only afterwards (no lock needed). Workers never
  // read it: in_worker_thread is only reachable through callers that hold a
  // pool reference, which the constructor has not returned yet.
  worker_ids_.reserve(workers_.size());
  for (const auto& w : workers_) worker_ids_.push_back(w.get_id());
}

bool ThreadPool::in_worker_thread() const {
  const auto self = std::this_thread::get_id();
  for (const auto& id : worker_ids_) {
    if (id == self) return true;
  }
  return false;
}

ThreadPool::~ThreadPool() {
  {
    LockGuard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    LockGuard lock(mutex_);
    if (!stopping_) {
      tasks_.push(std::move(task));
      task = nullptr;
    }
    // else: fall through and run inline below — the workers are draining
    // (or gone) and an enqueued task would never execute, hanging any
    // parallel_for that waits on it.
  }
  if (task) {
    task();
    return;
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      LockGuard lock(mutex_);
      cv_.wait(lock, [this]() REQUIRES(mutex_) {
        return stopping_ || !tasks_.empty();
      });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  // Inline when trivial, when the pool has no workers, or when the caller
  // is itself a pool worker: blocking a worker on chunks that only other
  // (possibly all-busy) workers can run would risk deadlock.
  if (workers_.empty() || n == 1 || in_worker_thread()) {
    fn(begin, end);
    return;
  }
  const std::size_t num_chunks =
      std::min(n, workers_.size() * 3);
  const std::size_t chunk = (n + num_chunks - 1) / num_chunks;

  std::atomic<std::size_t> remaining{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;

  std::size_t launched = 0;
  for (std::size_t lo = begin; lo < end; lo += chunk) ++launched;
  remaining.store(launched, std::memory_order_relaxed);

  for (std::size_t lo = begin; lo < end; lo += chunk) {
    const std::size_t hi = std::min(end, lo + chunk);
    submit([&, lo, hi] {
      fn(lo, hi);
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard lock(done_mutex);
        done_cv.notify_one();
      }
    });
  }
  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load(std::memory_order_acquire) == 0; });
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for_chunked(begin, end, [&fn](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  });
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  global_pool().parallel_for(begin, end, fn);
}

}  // namespace seneca::util
