#pragma once
// Deterministic, splittable random number generation.
//
// Every stochastic component in SENECA (phantom anatomy, weight init, dropout,
// sampling, measurement-noise models) draws from an explicitly seeded Rng so
// that experiments are reproducible run-to-run and independent of each other:
// two components seeded from disjoint streams never interact.

#include <cstdint>
#include <cmath>
#include <limits>
#include <numbers>

namespace seneca::util {

/// xoshiro256** PRNG seeded via splitmix64. Small, fast, and good enough for
/// simulation workloads; deliberately not <random> so results are identical
/// across standard library implementations.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5E0ECAULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the scalar seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
    has_gauss_ = false;
  }

  /// Uniform 64-bit integer.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) { return next_u64() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(uniform_index(
                    static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box-Muller with caching of the paired deviate.
  double gauss() {
    if (has_gauss_) {
      has_gauss_ = false;
      return cached_gauss_;
    }
    double u1 = uniform();
    while (u1 <= std::numeric_limits<double>::min()) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_gauss_ = r * std::sin(theta);
    has_gauss_ = true;
    return r * std::cos(theta);
  }

  double gauss(double mean, double stddev) { return mean + stddev * gauss(); }

  bool bernoulli(double p) { return uniform() < p; }

  /// Derive an independent child stream; stable under call order.
  Rng split(std::uint64_t stream_id) {
    return Rng(next_u64() ^ (stream_id * 0x9e3779b97f4a7c15ULL));
  }

  /// Fisher-Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      const std::size_t j = uniform_index(i);
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  bool has_gauss_ = false;
  double cached_gauss_ = 0.0;
};

}  // namespace seneca::util
