#include "util/mutex.hpp"

#include <atomic>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/logging.hpp"

namespace seneca::util {

namespace {

// Process-wide acquisition graph: edge A -> B means "some thread acquired
// B while holding A". A cycle means two call paths disagree about the
// order of a mutex pair — the classic deadlock precondition — and is
// flagged on the acquisition that would close it, not on the (much rarer)
// interleaving that actually deadlocks. Nodes are keyed by address; an
// OrderedMutex erases itself on destruction so a recycled allocation
// cannot inherit stale edges.
struct OrderGraph {
  std::mutex mu;
  std::unordered_map<const void*, std::unordered_set<const void*>> edges;
  std::unordered_map<const void*, const char*> names;

  bool reachable(const void* from, const void* to) const {
    std::vector<const void*> stack{from};
    std::unordered_set<const void*> seen;
    while (!stack.empty()) {
      const void* node = stack.back();
      stack.pop_back();
      if (node == to) return true;
      if (!seen.insert(node).second) continue;
      const auto it = edges.find(node);
      if (it == edges.end()) continue;
      for (const void* next : it->second) stack.push_back(next);
    }
    return false;
  }

  const char* name_of(const void* node) const {
    const auto it = names.find(node);
    return it == names.end() ? "<destroyed>" : it->second;
  }
};

OrderGraph& graph() {
  static OrderGraph* g = new OrderGraph;  // leaked: outlives static dtors
  return *g;
}

#if defined(NDEBUG)
std::atomic<bool> g_checking{false};
#else
std::atomic<bool> g_checking{true};
#endif

// Mutexes this thread currently holds, in acquisition order.
thread_local std::vector<const OrderedMutex*> t_held;

void record_and_check(const OrderedMutex* acquiring) {
  if (t_held.empty()) return;
  OrderGraph& g = graph();
  std::lock_guard lock(g.mu);
  g.names[acquiring] = acquiring->name();
  for (const OrderedMutex* held : t_held) {
    g.names[held] = held->name();
    auto& out = g.edges[held];
    if (out.count(acquiring) != 0) continue;  // edge already proven safe
    if (g.reachable(acquiring, held)) {
      std::ostringstream os;
      os << "lock-order inversion: acquiring \"" << acquiring->name() << "\" ("
         << acquiring << ") while holding \"" << g.name_of(held) << "\" ("
         << held << "), but the acquisition graph already orders \""
         << acquiring->name() << "\" before \"" << g.name_of(held)
         << "\" — potential deadlock";
      const std::string msg = os.str();
      log_error() << msg;
      throw LockOrderViolation(msg);
    }
    out.insert(acquiring);
  }
}

void note_held(const OrderedMutex* m) { t_held.push_back(m); }

void note_released(const OrderedMutex* m) {
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (*it == m) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
}

}  // namespace

OrderedMutex::OrderedMutex(const char* name) : name_(name) {}

OrderedMutex::~OrderedMutex() {
  OrderGraph& g = graph();
  std::lock_guard lock(g.mu);
  g.edges.erase(this);
  for (auto& [node, out] : g.edges) out.erase(this);
  g.names.erase(this);
}

void OrderedMutex::lock() {
  if (checking_enabled()) record_and_check(this);
  mu_.lock();
  note_held(this);
}

void OrderedMutex::unlock() {
  note_released(this);
  mu_.unlock();
}

bool OrderedMutex::try_lock() {
  if (!mu_.try_lock()) return false;
  note_held(this);
  return true;
}

void OrderedMutex::set_checking_enabled(bool on) {
  g_checking.store(on, std::memory_order_relaxed);
}

bool OrderedMutex::checking_enabled() {
  return g_checking.load(std::memory_order_relaxed);
}

void OrderedMutex::reset_order_graph() {
  OrderGraph& g = graph();
  std::lock_guard lock(g.mu);
  g.edges.clear();
  g.names.clear();
}

}  // namespace seneca::util
