#pragma once
// Annotated locking primitives (SENECA-Check).
//
//   Mutex        — std::mutex wrapper carrying clang thread-safety
//                  capability attributes, so members can be GUARDED_BY it
//                  and -Wthread-safety verifies every access path.
//   OrderedMutex — Mutex plus a runtime lock-order checker: each blocking
//                  acquisition records "held -> acquiring" edges in a
//                  process-wide acquisition graph and throws
//                  LockOrderViolation at the FIRST inversion (a cycle in
//                  the graph == a potential deadlock), long before the
//                  interleaving that would actually deadlock occurs.
//                  Checking defaults to on in debug builds (NDEBUG unset)
//                  and off in release; set_checking_enabled overrides.
//   DebugMutex   — OrderedMutex in checked builds, plain Mutex otherwise.
//                  Use it for cross-component mutexes where ordering
//                  mistakes are plausible; keep plain Mutex on hot paths.
//   LockGuard<M> — scoped lock over either, visible to the analysis.
//   CondVar      — condition variable that waits through a LockGuard, so
//                  waiting code keeps the annotated lock discipline.
//
// Predicates passed to CondVar run under the lock but are invoked from
// unannotated std:: internals; annotate the lambda itself:
//   cv_.wait(lock, [this]() REQUIRES(mutex_) { return ready_; });

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <string>

#include "util/thread_annotations.hpp"

namespace seneca::util {

class CAPABILITY("mutex") Mutex {
 public:
  /// `name` is accepted (and ignored) so Mutex and OrderedMutex are
  /// drop-in interchangeable through the DebugMutex alias.
  explicit Mutex(const char* /*name*/ = "mutex") {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Underlying handle for CondVar; never lock it directly.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// Thrown by OrderedMutex at the first acquisition that closes a cycle in
/// the process-wide lock-order graph. The message names both ends of the
/// inverted pair.
class LockOrderViolation : public std::logic_error {
 public:
  explicit LockOrderViolation(const std::string& what)
      : std::logic_error(what) {}
};

class CAPABILITY("mutex") OrderedMutex {
 public:
  explicit OrderedMutex(const char* name = "mutex");
  ~OrderedMutex();
  OrderedMutex(const OrderedMutex&) = delete;
  OrderedMutex& operator=(const OrderedMutex&) = delete;

  /// Blocking acquire. With checking enabled, first records the edges
  /// held-mutex -> this and throws LockOrderViolation (before blocking)
  /// if any edge closes a cycle.
  void lock() ACQUIRE();
  void unlock() RELEASE();
  /// Non-blocking acquires cannot contribute a blocking cycle, so a
  /// successful try_lock only updates the held set, never flags.
  bool try_lock() TRY_ACQUIRE(true);

  std::mutex& native() { return mu_; }
  const char* name() const { return name_; }

  /// Process-wide switch; defaults to on iff NDEBUG is not defined.
  static void set_checking_enabled(bool on);
  static bool checking_enabled();
  /// Drops every recorded edge (test isolation between scenarios).
  static void reset_order_graph();

 private:
  std::mutex mu_;
  const char* name_;
};

#if !defined(NDEBUG) || defined(SENECA_LOCK_ORDER_CHECK)
using DebugMutex = OrderedMutex;
#else
using DebugMutex = Mutex;
#endif

template <typename M>
class SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(M& m) ACQUIRE(m) : mu_(m) { mu_.lock(); }
  ~LockGuard() RELEASE() { mu_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

  M& mutex() { return mu_; }

 private:
  M& mu_;
};

class CondVar {
 public:
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  /// Predicate wait; `pred` runs with the guard's mutex held (annotate it
  /// REQUIRES(mutex)). Must not throw: the lock is temporarily adopted by
  /// a std::unique_lock, and an escaping exception would double-unlock.
  template <typename M, typename Pred>
  void wait(LockGuard<M>& guard, Pred pred) {
    std::unique_lock<std::mutex> lk(guard.mutex().native(), std::adopt_lock);
    cv_.wait(lk, std::move(pred));
    lk.release();  // hand ownership back to the LockGuard
  }

  /// Returns pred() at wake-up (false == timed out with pred still false).
  template <typename M, typename Clock, typename Duration, typename Pred>
  bool wait_until(LockGuard<M>& guard,
                  std::chrono::time_point<Clock, Duration> tp, Pred pred) {
    std::unique_lock<std::mutex> lk(guard.mutex().native(), std::adopt_lock);
    const bool satisfied = cv_.wait_until(lk, tp, std::move(pred));
    lk.release();
    return satisfied;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace seneca::util
