#pragma once
// Bounded, thread-safe, two-lane admission queue with a configurable
// overload policy, tenant-fair dequeue, and backpressure statistics.
//
// The queue is the single admission point of the serving layer: producers
// push() from any thread; the scheduler's micro-batcher pops. Capacity is
// bounded so overload surfaces as an explicit policy decision instead of
// unbounded memory growth:
//   kRejectNewest   — refuse the incoming request (classic tail drop)
//   kDropExpired    — first sweep out queued requests whose deadline has
//                     already passed, then admit if that freed space
//   kEvictDeadline  — EDF-style: displace the queued request with the most
//                     deadline slack iff the incoming one is more urgent
// Displaced requests are handed back to the caller (PushResult) so the
// server can complete their promises with kRejected/kExpired.
//
// Within each lane, requests are held per tenant and dequeued with deficit
// round-robin (tenant/drr.hpp): a tenant with weight w gets w dequeues per
// rotation, so one tenant's storm cannot starve another's deadline even
// after it has filled its share of the queue. Single-tenant traffic (all
// requests on kDefaultTenant) degenerates to the original FIFO order.

#include <cstdint>
#include <optional>
#include <vector>

#include "serve/request.hpp"
#include "serve/tenant/drr.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace seneca::serve {

enum class OverloadPolicy : std::uint8_t {
  kRejectNewest = 0,
  kDropExpired = 1,
  kEvictDeadline = 2,
};

const char* to_string(OverloadPolicy p);

struct QueueConfig {
  std::size_t capacity = 64;  // total across both lanes
  OverloadPolicy policy = OverloadPolicy::kRejectNewest;
};

struct QueueStats {
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;  // incoming requests refused
  std::uint64_t evicted = 0;   // queued victims displaced (kEvictDeadline)
  std::uint64_t expired = 0;   // queued victims swept (kDropExpired)
  std::uint64_t popped = 0;
  std::uint64_t requeued = 0;  // popped requests handed back (preemption)
  std::uint64_t migrated = 0;  // drained by evict_all (cluster migration)
  std::size_t depth = 0;       // total across both lanes
  std::size_t high_water = 0;  // total high-water mark
  // Per-lane splits: the totals above hide interactive-lane starvation
  // behind a deep batch backlog.
  std::size_t depth_interactive = 0;
  std::size_t depth_batch = 0;
  std::size_t high_water_interactive = 0;
  std::size_t high_water_batch = 0;
};

class AdmissionQueue {
 public:
  explicit AdmissionQueue(QueueConfig cfg);

  struct PushResult {
    bool admitted = false;
    /// Requests refused or displaced; complete as Status::kRejected.
    std::vector<Request> rejected;
    /// Queued requests swept because their deadline passed; kExpired.
    std::vector<Request> expired;
  };

  PushResult push(Request r) { return push(std::move(r), Clock::now()); }
  PushResult push(Request r, Clock::time_point now);

  /// Blocking pop, interactive lane first. nullopt once closed and drained.
  std::optional<Request> pop();

  /// Non-blocking pop: any lane (interactive first) / a specific lane.
  std::optional<Request> try_pop();
  std::optional<Request> try_pop(Priority lane);

  /// Blocks until `lane` is non-empty, the queue closes, or `tp` passes.
  /// Returns true iff the lane is non-empty on return.
  bool wait_nonempty_until(Priority lane, Clock::time_point tp);

  /// Blocks until either lane is non-empty, the queue closes, or `tp`
  /// passes. Returns true iff any lane is non-empty on return. Lets the
  /// batcher hold a batch-lane collection window open while still waking
  /// the instant interactive work arrives.
  bool wait_any_nonempty_until(Clock::time_point tp);

  /// Hands a popped request back to the FRONT of its lane (FIFO position
  /// preserved when called in reverse pop order). Used by the batcher when
  /// an interactive arrival preempts a batch-lane collection window.
  /// Ignores capacity — the request was already admitted once.
  void requeue_front(Request r);

  /// Drains EVERY queued request from both lanes (interactive first,
  /// preserving DRR pop order within each lane) without completing them.
  /// The cluster tier uses this to migrate still-queued work off an
  /// unhealthy board: because nothing returned here was ever dispatched,
  /// re-running it elsewhere cannot double-execute inference.
  std::vector<Request> evict_all();

  /// Stops admission (pushes are rejected); pops drain what remains.
  void close();
  bool closed() const;

  std::size_t depth() const;
  std::size_t depth(Priority lane) const;
  QueueStats stats() const;

 private:
  tenant::DrrLane& lane(Priority p) REQUIRES(mutex_) {
    return lanes_[static_cast<std::size_t>(p)];
  }
  std::optional<Request> pop_locked() REQUIRES(mutex_);
  std::size_t depth_locked() const REQUIRES(mutex_) {
    return lanes_[0].size() + lanes_[1].size();
  }
  void note_high_water_locked() REQUIRES(mutex_);

  const QueueConfig cfg_;
  mutable util::Mutex mutex_;
  util::CondVar cv_;
  tenant::DrrLane lanes_[2] GUARDED_BY(mutex_);  // [interactive, batch]
  QueueStats stats_ GUARDED_BY(mutex_);
  bool closed_ GUARDED_BY(mutex_) = false;
};

}  // namespace seneca::serve
