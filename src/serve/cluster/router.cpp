#include "serve/cluster/router.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace seneca::serve::cluster {

ClusterRouter::ClusterRouter(std::vector<BoardConfig> boards,
                             ClusterConfig cfg)
    : cfg_(std::move(cfg)), policy_(make_policy(cfg_.policy)) {
  if (boards.empty()) {
    throw std::invalid_argument("ClusterRouter: no boards");
  }
  boards_.reserve(boards.size());
  for (std::size_t i = 0; i < boards.size(); ++i) {
    if (cfg_.tenants != nullptr) {
      // Self-wire the tenant model: boards share the router's registry for
      // DRR weights and per-tenant latency, but never charge the buckets —
      // the router already did at its front door.
      boards[i].server.tenants = cfg_.tenants;
      boards[i].server.tenant_throttle = false;
    }
    boards_.push_back(
        std::make_unique<BoardSim>(static_cast<int>(i), std::move(boards[i])));
  }
}

ClusterRouter::~ClusterRouter() { shutdown(); }

void ClusterRouter::shutdown() {
  for (auto& b : boards_) b->shutdown();
}

std::vector<BoardState> ClusterRouter::states() const {
  std::vector<BoardState> states;
  states.reserve(boards_.size());
  for (const auto& b : boards_) {
    BoardState s;
    s.board = b->id();
    s.healthy = assess(*b, cfg_.health).healthy();
    s.queue_depth = b->queue_depth();
    s.inflight = b->inflight();
    s.level = b->level();
    const RungCost& cost = b->rung_cost(s.level);
    s.seconds_per_frame = cost.seconds_per_frame;
    s.joules_per_frame = cost.joules_per_frame;
    s.ewma_latency_ms = b->ewma_latency_ms();
    states.push_back(s);
  }
  return states;
}

std::future<Response> ClusterRouter::submit(Priority priority,
                                            tensor::TensorI8 input,
                                            double deadline_ms,
                                            TenantId tenant) {
  const auto reject = [&](bool throttled) {
    std::promise<Response> promise;
    Response resp;
    resp.tenant = tenant;
    resp.status = Status::kRejected;
    promise.set_value(std::move(resp));
    if (cfg_.tenants != nullptr) {
      if (throttled) {
        cfg_.tenants->on_throttled(tenant);
      } else {
        cfg_.tenants->on_rejected(tenant);
      }
    }
    return promise.get_future();
  };
  if (cfg_.tenants != nullptr) {
    cfg_.tenants->on_submitted(tenant);
    // Charge the bucket at the cluster front door, before routing: an
    // out-of-budget tenant must not consume any board's queue capacity.
    if (!cfg_.tenants->try_admit(tenant, Clock::now())) {
      return reject(/*throttled=*/true);
    }
  }
  const int picked = policy_->pick(states(), {priority, deadline_ms});
  // pick() returns -1 only for an empty board list, which the constructor
  // rejects; guard anyway so a policy bug rejects instead of crashing.
  if (picked < 0) {
    return reject(/*throttled=*/false);
  }
  return boards_[static_cast<std::size_t>(picked)]->submit(
      priority, std::move(input), deadline_ms, tenant);
}

ClusterSnapshot ClusterRouter::snapshot() const {
  ClusterSnapshot s;
  std::uint64_t frames = 0;
  for (const auto& b : boards_) {
    const MetricsSnapshot m = b->metrics();
    s.submitted += m.submitted;
    s.served += m.served;
    s.rejected += m.rejected;
    s.expired += m.expired;
    s.errors += m.errors;
    s.degraded += m.degraded;
    s.energy_joules += b->energy_joules();
    s.busy_seconds_max = std::max(s.busy_seconds_max, b->busy_seconds());
    frames += b->frames_served();
    s.boards.push_back(m);
  }
  if (s.busy_seconds_max > 0.0) {
    s.simulated_fps = static_cast<double>(frames) / s.busy_seconds_max;
  }
  if (s.energy_joules > 0.0) {
    s.fps_per_watt = static_cast<double>(frames) / s.energy_joules;
  }
  if (cfg_.tenants != nullptr) {
    s.tenants = cfg_.tenants->snapshot();
  }
  return s;
}

std::string ClusterSnapshot::format() const {
  std::ostringstream os;
  os << "cluster: boards=" << boards.size() << " submitted=" << submitted
     << " served=" << served << " rejected=" << rejected
     << " expired=" << expired << " errors=" << errors
     << " degraded=" << degraded << "\n";
  os.setf(std::ios::fixed);
  os.precision(2);
  os << "  simulated_fps=" << simulated_fps << " fps_per_watt=" << fps_per_watt
     << " energy_j=" << energy_joules << " busy_s_max=" << busy_seconds_max
     << "\n";
  for (const auto& t : tenants) {
    os << "  tenant " << t.name << ": submitted=" << t.submitted
       << " throttled=" << t.throttled << " served=" << t.served
       << " rejected=" << t.rejected << " expired=" << t.expired
       << " p99_ms=" << t.latency.p99_ms << "\n";
  }
  return os.str();
}

namespace {

std::vector<BoardConfig> make_boards(int boards, const std::string& prefix) {
  if (boards < 1) {
    throw std::invalid_argument("cluster topology: need at least one board");
  }
  std::vector<BoardConfig> cfgs(static_cast<std::size_t>(boards));
  for (int i = 0; i < boards; ++i) {
    cfgs[static_cast<std::size_t>(i)].name = prefix + std::to_string(i);
  }
  return cfgs;
}

}  // namespace

std::vector<BoardConfig> replicate_ladder(const std::vector<ModelSpec>& ladder,
                                          int boards,
                                          const ServerConfig& server,
                                          const platform::ZcuPowerModel& power,
                                          const std::string& prefix) {
  auto cfgs = make_boards(boards, prefix);
  for (auto& cfg : cfgs) {
    cfg.ladder = ladder;
    cfg.server = server;
    cfg.power = power;
  }
  return cfgs;
}

std::vector<BoardConfig> partition_ladder(const std::vector<ModelSpec>& ladder,
                                          int boards,
                                          const ServerConfig& server,
                                          const platform::ZcuPowerModel& power,
                                          const std::string& prefix) {
  if (static_cast<std::size_t>(boards) > ladder.size()) {
    throw std::invalid_argument(
        "partition_ladder: more boards than ladder rungs");
  }
  auto cfgs = make_boards(boards, prefix);
  // Contiguous slices, earlier boards get the earlier (better) rungs; the
  // first `remainder` slices absorb the extra rungs.
  const std::size_t n = ladder.size();
  const std::size_t base = n / static_cast<std::size_t>(boards);
  const std::size_t remainder = n % static_cast<std::size_t>(boards);
  std::size_t start = 0;
  for (std::size_t b = 0; b < cfgs.size(); ++b) {
    const std::size_t len = base + (b < remainder ? 1 : 0);
    cfgs[b].ladder.assign(ladder.begin() + static_cast<std::ptrdiff_t>(start),
                          ladder.begin() + static_cast<std::ptrdiff_t>(start + len));
    cfgs[b].rung_offset = static_cast<int>(start);
    cfgs[b].server = server;
    cfgs[b].power = power;
    start += len;
  }
  return cfgs;
}

}  // namespace seneca::serve::cluster
