#include "serve/cluster/router.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>

namespace seneca::serve::cluster {

namespace {

std::vector<BoardState> states_of(
    const std::vector<std::shared_ptr<Board>>& boards,
    const HealthPolicy& health) {
  std::vector<BoardState> states;
  states.reserve(boards.size());
  for (const auto& b : boards) {
    BoardState s;
    s.board = b->id();
    s.healthy = assess(*b, health).healthy();
    s.queue_depth = b->queue_depth();
    s.inflight = b->inflight();
    s.level = b->level();
    const RungCost cost = b->rung_cost(s.level);
    s.seconds_per_frame = cost.seconds_per_frame;
    s.joules_per_frame = cost.joules_per_frame;
    s.ewma_latency_ms = b->ewma_latency_ms();
    states.push_back(s);
  }
  return states;
}

}  // namespace

ClusterRouter::ClusterRouter(std::vector<BoardConfig> boards,
                             ClusterConfig cfg)
    : cfg_(std::move(cfg)), policy_(make_policy(cfg_.policy)) {
  if (boards.empty()) {
    throw std::invalid_argument("ClusterRouter: no boards");
  }
  {
    util::LockGuard lock(boards_mutex_);
    boards_.reserve(boards.size());
    for (std::size_t i = 0; i < boards.size(); ++i) {
      if (cfg_.tenants != nullptr) {
        // Self-wire the tenant model: boards share the router's registry for
        // DRR weights and per-tenant latency, but never charge the buckets —
        // the router already did at its front door.
        boards[i].server.tenants = cfg_.tenants;
        boards[i].server.tenant_throttle = false;
      }
      boards_.push_back(std::make_shared<BoardSim>(static_cast<int>(i),
                                                   std::move(boards[i])));
    }
  }
  if (cfg_.migrate.enable && cfg_.migrate.monitor_interval_ms > 0.0) {
    monitor_ = std::thread([this] { monitor_loop(); });
  }
}

ClusterRouter::ClusterRouter(std::vector<std::shared_ptr<Board>> boards,
                             ClusterConfig cfg)
    : cfg_(std::move(cfg)), policy_(make_policy(cfg_.policy)) {
  {
    util::LockGuard lock(boards_mutex_);
    boards_ = std::move(boards);
  }
  if (cfg_.migrate.enable && cfg_.migrate.monitor_interval_ms > 0.0) {
    monitor_ = std::thread([this] { monitor_loop(); });
  }
}

ClusterRouter::~ClusterRouter() { shutdown(); }

void ClusterRouter::shutdown() {
  stopping_.store(true, std::memory_order_release);
  if (monitor_.joinable()) monitor_.join();
  for (const auto& b : boards_snapshot()) b->shutdown();
}

std::vector<std::shared_ptr<Board>> ClusterRouter::boards_snapshot() const {
  util::LockGuard lock(boards_mutex_);
  return boards_;
}

void ClusterRouter::add_board(std::shared_ptr<Board> board) {
  util::LockGuard lock(boards_mutex_);
  boards_.push_back(std::move(board));
}

std::shared_ptr<Board> ClusterRouter::remove_board(int id) {
  std::shared_ptr<Board> removed;
  {
    util::LockGuard lock(boards_mutex_);
    for (auto it = boards_.begin(); it != boards_.end(); ++it) {
      if ((*it)->id() == id) {
        removed = *it;
        boards_.erase(it);
        break;
      }
    }
  }
  // Evict after detaching: re-routes triggered by the eviction can no
  // longer pick this board.
  if (removed != nullptr) removed->evict_queued();
  return removed;
}

std::size_t ClusterRouter::num_boards() const {
  util::LockGuard lock(boards_mutex_);
  return boards_.size();
}

Board& ClusterRouter::board(std::size_t i) {
  util::LockGuard lock(boards_mutex_);
  return *boards_[i];
}

const Board& ClusterRouter::board(std::size_t i) const {
  util::LockGuard lock(boards_mutex_);
  return *boards_[i];
}

std::vector<BoardState> ClusterRouter::states() const {
  return states_of(boards_snapshot(), cfg_.health);
}

std::future<Response> ClusterRouter::submit(Priority priority,
                                            tensor::TensorI8 input,
                                            double deadline_ms,
                                            TenantId tenant) {
  auto promise = std::make_shared<std::promise<Response>>();
  auto future = promise->get_future();
  submit_async(priority, std::move(input), deadline_ms, tenant,
               [promise](Response r) { promise->set_value(std::move(r)); });
  return future;
}

void ClusterRouter::submit_async(Priority priority, tensor::TensorI8 input,
                                 double deadline_ms, TenantId tenant,
                                 Board::DoneCallback on_done) {
  if (cfg_.tenants != nullptr) {
    cfg_.tenants->on_submitted(tenant);
    // Charge the bucket at the cluster front door, before routing: an
    // out-of-budget tenant must not consume any board's queue capacity.
    if (!cfg_.tenants->try_admit(tenant, Clock::now())) {
      cfg_.tenants->on_throttled(tenant);
      Response resp;
      resp.tenant = tenant;
      resp.status = Status::kRejected;
      on_done(std::move(resp));
      return;
    }
  }
  RouteTask task;
  task.priority = priority;
  task.tenant = tenant;
  task.deadline_ms = deadline_ms;
  if (deadline_ms > 0.0) {
    task.deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(deadline_ms));
  }
  task.input = std::move(input);
  task.done = std::move(on_done);
  route(std::move(task));
}

void ClusterRouter::route(RouteTask task) {
  const auto boards = boards_snapshot();
  if (boards.empty()) {
    Response resp;
    resp.tenant = task.tenant;
    resp.status = Status::kRejected;
    resp.migrations = static_cast<std::uint32_t>(task.hops);
    if (cfg_.tenants != nullptr) cfg_.tenants->on_rejected(task.tenant);
    task.done(std::move(resp));
    return;
  }
  std::vector<BoardState> states = states_of(boards, cfg_.health);
  // A re-route prefers any board but the one that just failed the request;
  // marking it unhealthy is enough — every policy falls back to the full
  // set when no healthy board remains.
  if (task.last_board >= 0 && boards.size() > 1) {
    for (auto& s : states) {
      if (s.board == task.last_board) s.healthy = false;
    }
  }
  double deadline_ms = task.deadline_ms;
  if (task.deadline != Clock::time_point::max()) {
    deadline_ms = std::chrono::duration<double, std::milli>(task.deadline -
                                                            Clock::now())
                      .count();
    if (deadline_ms <= 0.0) deadline_ms = -1.0;  // expired; checked below
  }
  const int picked = policy_->pick(states, {task.priority, deadline_ms});
  // pick() returns -1 only for an empty board list, which is handled
  // above; guard anyway so a policy bug rejects instead of crashing.
  if (picked < 0) {
    Response resp;
    resp.tenant = task.tenant;
    resp.status = Status::kRejected;
    resp.migrations = static_cast<std::uint32_t>(task.hops);
    if (cfg_.tenants != nullptr) cfg_.tenants->on_rejected(task.tenant);
    task.done(std::move(resp));
    return;
  }
  const auto& board = boards[static_cast<std::size_t>(picked)];
  if (!cfg_.migrate.enable) {
    board->submit_async(task.priority, std::move(task.input),
                        task.deadline_ms, task.tenant, std::move(task.done));
    return;
  }
  // The board gets its own copy of the input: the task keeps the original
  // for a potential re-submit.
  tensor::TensorI8 board_input = task.input;
  task.last_board = board->id();
  // Re-submits carry the REMAINING budget, so a migrated request cannot
  // outlive its original deadline.
  const double submit_deadline_ms =
      task.deadline == Clock::time_point::max() ? 0.0 : deadline_ms;
  auto self = this;  // router outlives boards; shutdown joins first
  board->submit_async(
      task.priority, std::move(board_input), submit_deadline_ms, task.tenant,
      [self, task = std::move(task)](Response resp) mutable {
        self->on_board_done(std::move(task), std::move(resp));
      });
}

void ClusterRouter::on_board_done(RouteTask task, Response resp) {
  const bool retryable =
      resp.status == Status::kMigrated || resp.status == Status::kError;
  const bool expired = task.deadline != Clock::time_point::max() &&
                       Clock::now() > task.deadline;
  if (retryable && !expired && task.hops < cfg_.migrate.max_hops &&
      !stopping_.load(std::memory_order_acquire)) {
    ++task.hops;
    migrations_.fetch_add(1, std::memory_order_relaxed);
    route(std::move(task));
    return;
  }
  if (resp.status == Status::kMigrated) {
    // Out of hops or budget: a cluster-internal status must not reach the
    // client. Expired budget reads as kExpired, anything else kRejected.
    resp.status = expired ? Status::kExpired : Status::kRejected;
    if (cfg_.tenants != nullptr) {
      // The board skipped terminal attribution for kMigrated; settle it
      // here so per-tenant conservation holds.
      if (expired) {
        cfg_.tenants->on_expired(task.tenant);
      } else {
        cfg_.tenants->on_rejected(task.tenant);
      }
    }
  }
  resp.migrations = static_cast<std::uint32_t>(task.hops);
  task.done(std::move(resp));
}

void ClusterRouter::monitor_loop() {
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(
          cfg_.migrate.monitor_interval_ms));
  while (!stopping_.load(std::memory_order_acquire)) {
    for (const auto& b : boards_snapshot()) {
      const BoardHealth h = assess(*b, cfg_.health);
      // Evict only FAULTED boards: their queue is going nowhere. A merely
      // saturated board is still draining its backlog itself.
      if (h.fault) b->evict_queued();
    }
    std::this_thread::sleep_for(interval);
  }
}

ClusterSnapshot ClusterRouter::snapshot() const {
  ClusterSnapshot s;
  std::uint64_t frames = 0;
  for (const auto& b : boards_snapshot()) {
    const MetricsSnapshot m = b->metrics();
    s.submitted += m.submitted;
    s.served += m.served;
    s.rejected += m.rejected;
    s.expired += m.expired;
    s.errors += m.errors;
    s.degraded += m.degraded;
    s.migrated += m.migrated;
    s.energy_joules += b->energy_joules();
    s.busy_seconds_max = std::max(s.busy_seconds_max, b->busy_seconds());
    frames += b->frames_served();
    s.boards.push_back(m);
  }
  s.migrations = migrations_.load(std::memory_order_relaxed);
  if (s.busy_seconds_max > 0.0) {
    s.simulated_fps = static_cast<double>(frames) / s.busy_seconds_max;
  }
  if (s.energy_joules > 0.0) {
    s.fps_per_watt = static_cast<double>(frames) / s.energy_joules;
  }
  if (cfg_.tenants != nullptr) {
    s.tenants = cfg_.tenants->snapshot();
  }
  return s;
}

std::string ClusterSnapshot::format() const {
  std::ostringstream os;
  os << "cluster: boards=" << boards.size() << " submitted=" << submitted
     << " served=" << served << " rejected=" << rejected
     << " expired=" << expired << " errors=" << errors
     << " degraded=" << degraded << " migrated=" << migrated
     << " migrations=" << migrations << "\n";
  os.setf(std::ios::fixed);
  os.precision(2);
  os << "  simulated_fps=" << simulated_fps << " fps_per_watt=" << fps_per_watt
     << " energy_j=" << energy_joules << " busy_s_max=" << busy_seconds_max
     << "\n";
  for (const auto& t : tenants) {
    os << "  tenant " << t.name << ": submitted=" << t.submitted
       << " throttled=" << t.throttled << " served=" << t.served
       << " rejected=" << t.rejected << " expired=" << t.expired
       << " p99_ms=" << t.latency.p99_ms << "\n";
  }
  return os.str();
}

namespace {

std::vector<BoardConfig> make_boards(int boards, const std::string& prefix) {
  if (boards < 1) {
    throw std::invalid_argument("cluster topology: need at least one board");
  }
  std::vector<BoardConfig> cfgs(static_cast<std::size_t>(boards));
  for (int i = 0; i < boards; ++i) {
    cfgs[static_cast<std::size_t>(i)].name = prefix + std::to_string(i);
  }
  return cfgs;
}

}  // namespace

std::vector<BoardConfig> replicate_ladder(const std::vector<ModelSpec>& ladder,
                                          int boards,
                                          const ServerConfig& server,
                                          const platform::ZcuPowerModel& power,
                                          const std::string& prefix) {
  auto cfgs = make_boards(boards, prefix);
  for (auto& cfg : cfgs) {
    cfg.ladder = ladder;
    cfg.server = server;
    cfg.power = power;
  }
  return cfgs;
}

std::vector<BoardConfig> partition_ladder(const std::vector<ModelSpec>& ladder,
                                          int boards,
                                          const ServerConfig& server,
                                          const platform::ZcuPowerModel& power,
                                          const std::string& prefix) {
  if (static_cast<std::size_t>(boards) > ladder.size()) {
    throw std::invalid_argument(
        "partition_ladder: more boards than ladder rungs");
  }
  auto cfgs = make_boards(boards, prefix);
  // Contiguous slices, earlier boards get the earlier (better) rungs; the
  // first `remainder` slices absorb the extra rungs.
  const std::size_t n = ladder.size();
  const std::size_t base = n / static_cast<std::size_t>(boards);
  const std::size_t remainder = n % static_cast<std::size_t>(boards);
  std::size_t start = 0;
  for (std::size_t b = 0; b < cfgs.size(); ++b) {
    const std::size_t len = base + (b < remainder ? 1 : 0);
    cfgs[b].ladder.assign(ladder.begin() + static_cast<std::ptrdiff_t>(start),
                          ladder.begin() + static_cast<std::ptrdiff_t>(start + len));
    cfgs[b].rung_offset = static_cast<int>(start);
    cfgs[b].server = server;
    cfgs[b].power = power;
    start += len;
  }
  return cfgs;
}

}  // namespace seneca::serve::cluster
