#pragma once
// ClusterRouter: the sharded serving tier in front of N simulated boards.
//
//   clients --submit()--> Router --policy.pick(BoardState[])--> BoardSim[i]
//                                                                  |
//                                                       per-board server
//                                               (queue / batcher / ladder)
//
// Two topologies, built with the helpers below:
//   replicate_ladder  — every board hosts the full degradation ladder; the
//                       policy only picks the board, each board's own
//                       hysteretic controller picks the rung.
//   partition_ladder  — the ladder is split into contiguous rung slices,
//                       one slice per board; picking a board then *is*
//                       picking a rung band (energy-aware routing sends
//                       deadline-feasible traffic to the cheapest band).
//
// Health-driven drain: before every pick the router assesses each board
// (fault injection, queue saturation, bounded-runner saturation — see
// health.hpp) and policies route around unhealthy boards, so a sick board
// drains to its peers while its queued work finishes locally.

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "serve/cluster/board.hpp"
#include "serve/cluster/health.hpp"
#include "serve/cluster/policy.hpp"

namespace seneca::serve::cluster {

struct ClusterConfig {
  PolicyKind policy = PolicyKind::kRoundRobin;
  HealthPolicy health;
  /// Optional shared tenant registry: the router becomes the tenant front
  /// door (token buckets charged once, here) and every board's server is
  /// wired to the same registry with throttling off, so DRR fair dequeue
  /// and per-tenant latency attribution still happen per board while the
  /// cluster-wide roll-up stays single-counted.
  std::shared_ptr<tenant::TenantRegistry> tenants;
};

/// Cluster-wide roll-up. Timing and energy are *simulated* quantities from
/// the boards' rung cost tables (the DES is the timing authority, not the
/// dev host's wall clock): boards run in parallel, so cluster busy time is
/// the max over boards and simulated FPS = frames / max busy seconds, while
/// energy adds up and FPS/W = frames / total joules.
struct ClusterSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t served = 0;
  std::uint64_t rejected = 0;
  std::uint64_t expired = 0;
  std::uint64_t errors = 0;
  std::uint64_t degraded = 0;
  double energy_joules = 0.0;
  double busy_seconds_max = 0.0;
  double simulated_fps = 0.0;
  double fps_per_watt = 0.0;
  std::vector<MetricsSnapshot> boards;
  /// Cluster-wide per-tenant accounting (present when the router runs with
  /// a TenantRegistry).
  std::vector<TenantSnapshot> tenants;

  std::string format() const;
};

class ClusterRouter {
 public:
  ClusterRouter(std::vector<BoardConfig> boards, ClusterConfig cfg);
  ~ClusterRouter();

  ClusterRouter(const ClusterRouter&) = delete;
  ClusterRouter& operator=(const ClusterRouter&) = delete;

  /// Thread-safe. Routes per the configured policy; the future always
  /// resolves (same contract as InferenceServer::submit).
  std::future<Response> submit(Priority priority, tensor::TensorI8 input,
                               double deadline_ms = 0.0) {
    return submit(priority, std::move(input), deadline_ms, kDefaultTenant);
  }

  /// Tenant-attributed submit: charges `tenant`'s token bucket at the
  /// router (the front door), then routes to a board, which dequeues under
  /// the tenant's DRR weight.
  std::future<Response> submit(Priority priority, tensor::TensorI8 input,
                               double deadline_ms, TenantId tenant);

  std::size_t num_boards() const { return boards_.size(); }
  BoardSim& board(std::size_t i) { return *boards_[i]; }
  const BoardSim& board(std::size_t i) const { return *boards_[i]; }
  const RoutingPolicy& policy() const { return *policy_; }

  /// Per-board states as the policy would see them right now.
  std::vector<BoardState> states() const;
  ClusterSnapshot snapshot() const;

  /// Stops every board; idempotent, called by the destructor.
  void shutdown();

 private:
  ClusterConfig cfg_;
  std::vector<std::unique_ptr<BoardSim>> boards_;
  std::unique_ptr<RoutingPolicy> policy_;
};

/// Every board hosts the full ladder (replication). Board i is named
/// "<prefix>i".
std::vector<BoardConfig> replicate_ladder(
    const std::vector<ModelSpec>& ladder, int boards,
    const ServerConfig& server, const platform::ZcuPowerModel& power = {},
    const std::string& prefix = "board");

/// Contiguous rung slices, one per board (partitioning): board 0 gets the
/// best rungs, the last board the cheapest. Requires boards <= ladder size.
std::vector<BoardConfig> partition_ladder(
    const std::vector<ModelSpec>& ladder, int boards,
    const ServerConfig& server, const platform::ZcuPowerModel& power = {},
    const std::string& prefix = "board");

}  // namespace seneca::serve::cluster
