#pragma once
// ClusterRouter: the sharded serving tier in front of N boards.
//
//   clients --submit()--> Router --policy.pick(BoardState[])--> Board[i]
//                                                                  |
//                                                 in-process BoardSim, or
//                                            net::RemoteBoard -> seneca_boardd
//
// Boards implement the transport-neutral Board interface, so the router
// routes identically over in-process simulated boards and socket-attached
// worker processes. Two topologies, built with the helpers below:
//   replicate_ladder  — every board hosts the full degradation ladder; the
//                       policy only picks the board, each board's own
//                       hysteretic controller picks the rung.
//   partition_ladder  — the ladder is split into contiguous rung slices,
//                       one slice per board; picking a board then *is*
//                       picking a rung band (energy-aware routing sends
//                       deadline-feasible traffic to the cheapest band).
//
// Health-driven drain: before every pick the router assesses each board
// (fault injection, queue saturation, bounded-runner saturation — see
// health.hpp) and policies route around unhealthy boards, so a sick board
// drains to its peers while its queued work finishes locally.
//
// Cross-board migration (opt-in, MigrationConfig::enable): the router keeps
// a copy of each request's input and its client callback. When a board
// completes a request with kMigrated (evicted from its admission queue
// before dispatch) or kError (dead transport / failed batch — no result was
// produced), the router re-routes the stored input to another board,
// deadline permitting and up to max_hops times. Double execution is
// impossible for kMigrated (the request never dispatched) and harmless for
// kError (the first attempt produced no result; inference is stateless).
// The client callback fires exactly once either way. A monitor thread
// evicts the queues of faulted boards so their backlog migrates without
// waiting for a client-visible failure.

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/cluster/board.hpp"
#include "serve/cluster/health.hpp"
#include "serve/cluster/policy.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace seneca::serve::cluster {

struct MigrationConfig {
  /// Master switch. Off preserves the PR-3 behaviour: board failures
  /// surface to clients as kMigrated-free kRejected/kError statuses.
  bool enable = false;
  /// Maximum re-routes per request; beyond this the request completes with
  /// kRejected (kMigrated never reaches a client).
  int max_hops = 3;
  /// Health-monitor period. The monitor evicts the queues of FAULTED
  /// boards (not merely saturated ones — that would thrash) so queued work
  /// migrates promptly. <= 0 disables the monitor thread; eviction then
  /// only happens via Supervisor/remove_board/explicit evict_queued.
  double monitor_interval_ms = 5.0;
};

struct ClusterConfig {
  PolicyKind policy = PolicyKind::kRoundRobin;
  HealthPolicy health;
  MigrationConfig migrate;
  /// Optional shared tenant registry: the router becomes the tenant front
  /// door (token buckets charged once, here) and every board's server is
  /// wired to the same registry with throttling off, so DRR fair dequeue
  /// and per-tenant latency attribution still happen per board while the
  /// cluster-wide roll-up stays single-counted.
  std::shared_ptr<tenant::TenantRegistry> tenants;
};

/// Cluster-wide roll-up. Timing and energy are *simulated* quantities from
/// the boards' rung cost tables (the DES is the timing authority, not the
/// dev host's wall clock): boards run in parallel, so cluster busy time is
/// the max over boards and simulated FPS = frames / max busy seconds, while
/// energy adds up and FPS/W = frames / total joules.
struct ClusterSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t served = 0;
  std::uint64_t rejected = 0;
  std::uint64_t expired = 0;
  std::uint64_t errors = 0;
  std::uint64_t degraded = 0;
  /// Requests evicted still-queued from board admission queues (board view).
  std::uint64_t migrated = 0;
  /// Successful router re-routes of migrated/errored requests.
  std::uint64_t migrations = 0;
  double energy_joules = 0.0;
  double busy_seconds_max = 0.0;
  double simulated_fps = 0.0;
  double fps_per_watt = 0.0;
  std::vector<MetricsSnapshot> boards;
  /// Cluster-wide per-tenant accounting (present when the router runs with
  /// a TenantRegistry).
  std::vector<TenantSnapshot> tenants;

  std::string format() const;
};

class ClusterRouter {
 public:
  /// In-process fleet: constructs one BoardSim per config.
  ClusterRouter(std::vector<BoardConfig> boards, ClusterConfig cfg);
  /// Pre-built fleet (e.g. net::RemoteBoard instances from a Supervisor).
  /// May be empty: boards can join later via add_board.
  ClusterRouter(std::vector<std::shared_ptr<Board>> boards, ClusterConfig cfg);
  ~ClusterRouter();

  ClusterRouter(const ClusterRouter&) = delete;
  ClusterRouter& operator=(const ClusterRouter&) = delete;

  /// Thread-safe. Routes per the configured policy; the future always
  /// resolves (same contract as InferenceServer::submit).
  std::future<Response> submit(Priority priority, tensor::TensorI8 input,
                               double deadline_ms = 0.0) {
    return submit(priority, std::move(input), deadline_ms, kDefaultTenant);
  }

  /// Tenant-attributed submit: charges `tenant`'s token bucket at the
  /// router (the front door), then routes to a board, which dequeues under
  /// the tenant's DRR weight.
  std::future<Response> submit(Priority priority, tensor::TensorI8 input,
                               double deadline_ms, TenantId tenant);

  /// Callback-completing submit; the cluster-level completion primitive.
  void submit_async(Priority priority, tensor::TensorI8 input,
                    double deadline_ms, TenantId tenant,
                    Board::DoneCallback on_done);

  /// Joins a board to the live fleet (no drain of existing traffic).
  void add_board(std::shared_ptr<Board> board);
  /// Leaves a board: detaches it from routing, evicts its queue so queued
  /// work migrates (when migration is enabled), and returns it — NOT shut
  /// down, the caller owns teardown. Returns nullptr for an unknown id.
  std::shared_ptr<Board> remove_board(int id);

  std::size_t num_boards() const;
  /// Position-indexed access (stable while no add/remove is concurrent).
  Board& board(std::size_t i);
  const Board& board(std::size_t i) const;
  const RoutingPolicy& policy() const { return *policy_; }

  /// Per-board states as the policy would see them right now.
  std::vector<BoardState> states() const;
  ClusterSnapshot snapshot() const;

  /// Stops the monitor and every board; idempotent, called by the
  /// destructor.
  void shutdown();

 private:
  /// One client request's routing context, owned by the completion chain.
  /// `input` is only populated when migration is enabled.
  struct RouteTask {
    Priority priority = Priority::kBatch;
    TenantId tenant = kDefaultTenant;
    double deadline_ms = 0.0;  // original relative budget (for re-submits)
    Clock::time_point deadline = Clock::time_point::max();
    tensor::TensorI8 input;  // migration copy
    int hops = 0;
    int last_board = -1;  // Board::id of the previous attempt
    Board::DoneCallback done;
  };

  void route(RouteTask task);
  void on_board_done(RouteTask task, Response resp);
  std::vector<std::shared_ptr<Board>> boards_snapshot() const;
  void monitor_loop();

  ClusterConfig cfg_;
  mutable util::Mutex boards_mutex_;
  std::vector<std::shared_ptr<Board>> boards_ GUARDED_BY(boards_mutex_);
  std::unique_ptr<RoutingPolicy> policy_;
  std::atomic<std::uint64_t> migrations_{0};
  std::atomic<bool> stopping_{false};
  std::thread monitor_;
};

/// Every board hosts the full ladder (replication). Board i is named
/// "<prefix>i".
std::vector<BoardConfig> replicate_ladder(
    const std::vector<ModelSpec>& ladder, int boards,
    const ServerConfig& server, const platform::ZcuPowerModel& power = {},
    const std::string& prefix = "board");

/// Contiguous rung slices, one per board (partitioning): board 0 gets the
/// best rungs, the last board the cheapest. Requires boards <= ladder size.
std::vector<BoardConfig> partition_ladder(
    const std::vector<ModelSpec>& ladder, int boards,
    const ServerConfig& server, const platform::ZcuPowerModel& power = {},
    const std::string& prefix = "board");

}  // namespace seneca::serve::cluster
