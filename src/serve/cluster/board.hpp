#pragma once
// The board abstraction of the sharded serving tier, in two layers:
//
//   Board     — the transport-neutral interface ClusterRouter routes over:
//               async submit, load signals (queue depth, inflight, EWMA
//               latency, per-rung cost table), health inputs (fault, runner
//               saturation), migration (evict_queued) and simulated
//               energy/time accounting. An in-process simulated board and a
//               socket-attached worker process (net::RemoteBoard) implement
//               the same interface, so the router cannot tell them apart.
//
//   BoardSim  — one simulated ZCU104 board. Wraps a per-board
//               InferenceServer (its rung set, admission queue, and
//               hysteretic degradation) and adds:
//   - a per-rung cost table (seconds/frame, watts, J/frame) priced once at
//     construction through platform::estimate_inference_energy, so the
//     router can compare boards by estimated J/frame (the paper's FPS/W
//     framing, Table IV) instead of queue depth alone;
//   - optional ONLINE RE-PRICING: an EWMA of observed per-frame service
//     time and batch occupancy per rung, folded into the cost table the
//     router sees (rung_cost()), so energy-aware routing tracks the real
//     operating point instead of the construction-time DES estimate. The
//     DES table remains the billing authority for energy_joules() /
//     busy_seconds(): simulated FPS and FPS/W keep their meaning.
//   - cheap load signals: queue depth, inflight (submitted minus completed,
//     fed by the server's on_complete hook), and an EWMA of served latency;
//   - health inputs: operator fault injection and saturation of the current
//     rung's bounded VartRunner queue;
//   - simulated energy/time accounting: every served frame is billed the
//     J/frame and seconds/frame of the rung that actually served it, which
//     is what cluster-level FPS/W and simulated-FPS aggregate from.
//
// A board hosting the full ladder is a replica; a board hosting a slice of
// it is a rung partition (BoardConfig::rung_offset records where the slice
// starts in the global ladder).

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "platform/power.hpp"
#include "serve/server.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace seneca::serve::cluster {

struct BoardConfig {
  std::string name = "zcu104";
  std::vector<ModelSpec> ladder;  // rungs hosted; the full ladder = replica
  ServerConfig server;
  int rung_offset = 0;  // global ladder index of ladder[0] (partition mode)
  platform::ZcuPowerModel power;
  int sim_images = 48;  // DES frames per rung when pricing the cost table
  /// Fold observed service time / occupancy into the routing-view cost
  /// table (rung_cost()). Off by default: the construction-time DES table
  /// is deterministic, which most tests and benches rely on.
  bool online_reprice = false;
};

/// Steady-state cost of serving one frame on a given rung of this board.
struct RungCost {
  std::string model;               // zoo label of the rung
  double seconds_per_frame = 0.0;  // simulated inverse throughput
  double watts = 0.0;              // mean wall power at that operating point
  double joules_per_frame = 0.0;   // watts / fps — the routing currency
};

/// Observed (telemetry) view of one rung: wall-clock EWMAs that online
/// re-pricing folds into rung_cost(). samples == 0 means "never served".
struct RungObserved {
  double seconds_per_frame = 0.0;  // EWMA of service_ms / batch_size
  double occupancy = 0.0;          // EWMA batch size at this rung
  std::uint64_t samples = 0;
};

/// Transport-neutral board interface. Thread-safe like InferenceServer:
/// submit_async and every probe may be called from any thread.
class Board {
 public:
  Board(int id, std::string name) : id_(id), name_(std::move(name)) {}
  virtual ~Board() = default;

  Board(const Board&) = delete;
  Board& operator=(const Board&) = delete;

  int id() const { return id_; }
  const std::string& name() const { return name_; }

  using DoneCallback = InferenceServer::DoneCallback;

  /// Completion primitive; `on_done` fires exactly once, from whichever
  /// thread completes the request. Same contract as
  /// InferenceServer::submit_async.
  virtual void submit_async(Priority priority, tensor::TensorI8 input,
                            double deadline_ms, TenantId tenant,
                            DoneCallback on_done) = 0;

  /// Future-returning convenience over submit_async.
  std::future<Response> submit(Priority priority, tensor::TensorI8 input,
                               double deadline_ms = 0.0,
                               TenantId tenant = kDefaultTenant);

  // ---- load signals for the router ----
  virtual std::size_t queue_depth() const = 0;
  /// Requests admitted to this board not yet completed.
  virtual std::uint64_t inflight() const = 0;
  /// Current degradation rung (index into this board's own ladder).
  virtual int level() const = 0;
  virtual double ewma_latency_ms() const = 0;
  /// Routing-view cost of one frame at `level` (online-repriced when the
  /// board tracks observed costs). By value: remote boards synthesize it
  /// from telemetry.
  virtual RungCost rung_cost(int level) const = 0;
  virtual std::size_t num_rungs() const = 0;
  virtual int rung_offset() const = 0;

  // ---- health inputs ----
  virtual void inject_fault(bool on) = 0;
  /// Fault-injected, or (remote boards) dead/stale transport.
  virtual bool fault_injected() const = 0;
  /// True when the current rung's bounded VartRunner pending queue is full:
  /// the scheduler would block on submit backpressure, so routing more work
  /// here only deepens the board's backlog.
  virtual bool runner_saturated() const = 0;
  virtual std::size_t queue_capacity() const = 0;

  // ---- migration ----
  /// Completes every still-queued (never dispatched) request with
  /// Status::kMigrated so the router can re-route it. For remote boards the
  /// eviction is asynchronous: responses stream back as kMigrated frames
  /// and the returned count is 0.
  virtual std::size_t evict_queued() = 0;

  // ---- simulated accounting over served frames ----
  virtual double energy_joules() const = 0;
  virtual double busy_seconds() const = 0;
  virtual std::uint64_t frames_served() const = 0;

  virtual MetricsSnapshot metrics() const = 0;
  /// Stops the board; idempotent. Outstanding requests complete first
  /// (in-process) or fail with kError (remote, transport torn down).
  virtual void shutdown() = 0;

 private:
  const int id_;
  const std::string name_;
};

class BoardSim : public Board {
 public:
  BoardSim(int id, BoardConfig cfg);

  void submit_async(Priority priority, tensor::TensorI8 input,
                    double deadline_ms, TenantId tenant,
                    DoneCallback on_done) override;

  // ---- load signals for the router ----
  std::size_t queue_depth() const override {
    return server_->queue_stats().depth;
  }
  std::uint64_t inflight() const override;
  int level() const override { return server_->degrade_level(); }
  double ewma_latency_ms() const override;
  RungCost rung_cost(int level) const override;
  /// Construction-time DES-priced table (never repriced; the billing and
  /// telemetry-hello authority).
  const std::vector<RungCost>& priced_costs() const { return costs_; }
  RungObserved observed(int level) const;
  std::size_t num_rungs() const override { return costs_.size(); }
  int rung_offset() const override { return rung_offset_; }

  // ---- health inputs ----
  void inject_fault(bool on) override {
    fault_.store(on, std::memory_order_relaxed);
  }
  bool fault_injected() const override {
    return fault_.load(std::memory_order_relaxed);
  }
  bool runner_saturated() const override;
  std::size_t queue_capacity() const override { return queue_capacity_; }

  std::size_t evict_queued() override { return server_->evict_queued(); }

  // ---- simulated accounting over served frames ----
  double energy_joules() const override;
  double busy_seconds() const override;
  std::uint64_t frames_served() const override {
    return frames_served_.load(std::memory_order_relaxed);
  }

  MetricsSnapshot metrics() const override { return server_->metrics(); }
  QueueStats queue_stats() const { return server_->queue_stats(); }
  InferenceServer& server() { return *server_; }
  void shutdown() override { server_->shutdown(); }

 private:
  void on_complete(const Response& r);

  const int rung_offset_;
  const bool online_reprice_;
  std::vector<RungCost> costs_;
  std::unordered_map<std::string, std::size_t> cost_by_model_;
  std::size_t queue_capacity_ = 0;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> frames_served_{0};
  std::atomic<bool> fault_{false};

  // DebugMutex: taken from the server's completion callback, so it sits
  // under whatever locks the completing thread already holds — the kind of
  // cross-component nesting the lock-order checker exists for.
  mutable util::DebugMutex accounting_mutex_{"board.accounting"};
  // EWMA alpha = 0.2 over served total_ms.
  double ewma_latency_ms_ GUARDED_BY(accounting_mutex_) = 0.0;
  double energy_joules_ GUARDED_BY(accounting_mutex_) = 0.0;
  double busy_seconds_ GUARDED_BY(accounting_mutex_) = 0.0;
  // Per-rung observed wall-clock costs (EWMA alpha = 0.2), the online
  // re-pricing inputs. Tracked even when re-pricing is off so telemetry
  // can always report occupancy.
  std::vector<RungObserved> observed_ GUARDED_BY(accounting_mutex_);

  std::unique_ptr<InferenceServer> server_;  // constructed last
};

}  // namespace seneca::serve::cluster
