#pragma once
// BoardSim: one simulated ZCU104 board in the sharded serving tier. Wraps a
// per-board InferenceServer (its rung set, admission queue, and hysteretic
// degradation) and adds what the routing tier needs on top:
//   - a per-rung cost table (seconds/frame, watts, J/frame) priced once at
//     construction through platform::estimate_inference_energy, so the
//     router can compare boards by estimated J/frame (the paper's FPS/W
//     framing, Table IV) instead of queue depth alone;
//   - cheap load signals: queue depth, inflight (submitted minus completed,
//     fed by the server's on_complete hook), and an EWMA of served latency;
//   - health inputs: operator fault injection and saturation of the current
//     rung's bounded VartRunner queue;
//   - simulated energy/time accounting: every served frame is billed the
//     J/frame and seconds/frame of the rung that actually served it, which
//     is what cluster-level FPS/W and simulated-FPS aggregate from.
//
// A board hosting the full ladder is a replica; a board hosting a slice of
// it is a rung partition (BoardConfig::rung_offset records where the slice
// starts in the global ladder).

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "platform/power.hpp"
#include "serve/server.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace seneca::serve::cluster {

struct BoardConfig {
  std::string name = "zcu104";
  std::vector<ModelSpec> ladder;  // rungs hosted; the full ladder = replica
  ServerConfig server;
  int rung_offset = 0;  // global ladder index of ladder[0] (partition mode)
  platform::ZcuPowerModel power;
  int sim_images = 48;  // DES frames per rung when pricing the cost table
};

/// Steady-state cost of serving one frame on a given rung of this board.
struct RungCost {
  std::string model;               // zoo label of the rung
  double seconds_per_frame = 0.0;  // simulated inverse throughput
  double watts = 0.0;              // mean wall power at that operating point
  double joules_per_frame = 0.0;   // watts / fps — the routing currency
};

class BoardSim {
 public:
  BoardSim(int id, BoardConfig cfg);

  int id() const { return id_; }
  const std::string& name() const { return name_; }

  /// Thread-safe; same contract as InferenceServer::submit.
  std::future<Response> submit(Priority priority, tensor::TensorI8 input,
                               double deadline_ms = 0.0,
                               TenantId tenant = kDefaultTenant);

  // ---- load signals for the router ----
  std::size_t queue_depth() const { return server_->queue_stats().depth; }
  /// Requests admitted to this board whose future has not resolved yet.
  std::uint64_t inflight() const;
  /// Current degradation rung (index into this board's own ladder).
  int level() const { return server_->degrade_level(); }
  double ewma_latency_ms() const;
  const RungCost& rung_cost(int level) const {
    return costs_[static_cast<std::size_t>(level)];
  }
  const std::vector<RungCost>& rung_costs() const { return costs_; }
  std::size_t num_rungs() const { return costs_.size(); }
  int rung_offset() const { return rung_offset_; }

  // ---- health inputs ----
  void inject_fault(bool on) { fault_.store(on, std::memory_order_relaxed); }
  bool fault_injected() const {
    return fault_.load(std::memory_order_relaxed);
  }
  /// True when the current rung's bounded VartRunner pending queue is full:
  /// the scheduler would block on submit backpressure, so routing more work
  /// here only deepens the board's backlog.
  bool runner_saturated() const;
  std::size_t queue_capacity() const { return queue_capacity_; }

  // ---- simulated accounting over served frames ----
  double energy_joules() const;
  double busy_seconds() const;
  std::uint64_t frames_served() const {
    return frames_served_.load(std::memory_order_relaxed);
  }

  MetricsSnapshot metrics() const { return server_->metrics(); }
  QueueStats queue_stats() const { return server_->queue_stats(); }
  InferenceServer& server() { return *server_; }
  void shutdown() { server_->shutdown(); }

 private:
  void on_complete(const Response& r);

  const int id_;
  const std::string name_;
  const int rung_offset_;
  std::vector<RungCost> costs_;
  std::unordered_map<std::string, std::size_t> cost_by_model_;
  std::size_t queue_capacity_ = 0;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> frames_served_{0};
  std::atomic<bool> fault_{false};

  // DebugMutex: taken from the server's completion callback, so it sits
  // under whatever locks the completing thread already holds — the kind of
  // cross-component nesting the lock-order checker exists for.
  mutable util::DebugMutex accounting_mutex_{"board.accounting"};
  // EWMA alpha = 0.2 over served total_ms.
  double ewma_latency_ms_ GUARDED_BY(accounting_mutex_) = 0.0;
  double energy_joules_ GUARDED_BY(accounting_mutex_) = 0.0;
  double busy_seconds_ GUARDED_BY(accounting_mutex_) = 0.0;

  std::unique_ptr<InferenceServer> server_;  // constructed last
};

}  // namespace seneca::serve::cluster
