#include "serve/cluster/health.hpp"

#include <cmath>

#include "serve/cluster/board.hpp"

namespace seneca::serve::cluster {

BoardHealth assess(const Board& board, const HealthPolicy& policy) {
  BoardHealth h;
  h.fault = board.fault_injected();
  const double capacity = static_cast<double>(board.queue_capacity());
  if (capacity > 0.0) {
    const double threshold = policy.queue_saturation * capacity;
    h.queue_saturated =
        static_cast<double>(board.queue_depth()) >= threshold;
  }
  if (policy.check_runner) {
    h.runner_saturated = board.runner_saturated();
  }
  return h;
}

}  // namespace seneca::serve::cluster
