#pragma once
// Board health assessment for the routing tier. A board is unhealthy when
// any of three signals fires:
//   - fault: operator/test fault injection (Board::inject_fault), or — for
//     socket-attached boards — a dead connection / stale telemetry,
//   - admission-queue saturation (depth at or past a configurable fraction
//     of capacity — routing there would only be shed at admission),
//   - current-rung VartRunner saturation (the bounded pending queue is
//     full, so the board's scheduler is stalled on backpressure).
// The router routes around unhealthy boards, so a sick board drains to its
// peers; its already-queued work still completes locally. When every board
// is unhealthy the router still picks one (least loaded) so futures always
// resolve — degraded service beats a hung client.

#include <cstddef>

namespace seneca::serve::cluster {

class Board;

struct HealthPolicy {
  /// Queue depth at or above `queue_saturation * capacity` marks the board
  /// saturated. 1.0 = only a full queue; lower values drain earlier.
  double queue_saturation = 1.0;
  /// Also consider the current rung's bounded runner queue.
  bool check_runner = true;
};

struct BoardHealth {
  bool fault = false;
  bool queue_saturated = false;
  bool runner_saturated = false;

  bool healthy() const {
    return !fault && !queue_saturated && !runner_saturated;
  }
};

BoardHealth assess(const Board& board, const HealthPolicy& policy);

}  // namespace seneca::serve::cluster
