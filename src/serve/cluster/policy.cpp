#include "serve/cluster/policy.hpp"

#include <atomic>
#include <limits>
#include <stdexcept>

namespace seneca::serve::cluster {

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kRoundRobin: return "round-robin";
    case PolicyKind::kJoinShortestQueue: return "jsq";
    case PolicyKind::kEnergyAware: return "energy";
  }
  return "?";
}

PolicyKind parse_policy_kind(const std::string& name) {
  if (name == "round-robin") return PolicyKind::kRoundRobin;
  if (name == "jsq") return PolicyKind::kJoinShortestQueue;
  if (name == "energy") return PolicyKind::kEnergyAware;
  throw std::invalid_argument("unknown routing policy: " + name);
}

namespace {

/// Least-backlog board, healthy boards first; -1 only on an empty cluster.
int shortest_queue(const std::vector<BoardState>& boards, bool healthy_only) {
  int best = -1;
  std::size_t best_backlog = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 0; i < boards.size(); ++i) {
    const BoardState& b = boards[i];
    if (healthy_only && !b.healthy) continue;
    if (b.backlog() < best_backlog) {
      best = static_cast<int>(i);
      best_backlog = b.backlog();
    }
  }
  if (best < 0 && healthy_only) return shortest_queue(boards, false);
  return best;
}

class RoundRobinPolicy final : public RoutingPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kRoundRobin; }

  int pick(const std::vector<BoardState>& boards,
           const RouteRequest& /*req*/) override {
    if (boards.empty()) return -1;
    const std::uint64_t start = next_.fetch_add(1, std::memory_order_relaxed);
    for (std::size_t i = 0; i < boards.size(); ++i) {
      const std::size_t idx = (start + i) % boards.size();
      if (boards[idx].healthy) return static_cast<int>(idx);
    }
    return static_cast<int>(start % boards.size());  // all sick: any board
  }

 private:
  std::atomic<std::uint64_t> next_{0};
};

class JoinShortestQueuePolicy final : public RoutingPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kJoinShortestQueue; }

  int pick(const std::vector<BoardState>& boards,
           const RouteRequest& /*req*/) override {
    return shortest_queue(boards, /*healthy_only=*/true);
  }
};

class EnergyAwarePolicy final : public RoutingPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kEnergyAware; }

  int pick(const std::vector<BoardState>& boards,
           const RouteRequest& req) override {
    int best = -1;
    double best_jpf = std::numeric_limits<double>::max();
    std::size_t best_backlog = std::numeric_limits<std::size_t>::max();
    for (std::size_t i = 0; i < boards.size(); ++i) {
      const BoardState& b = boards[i];
      if (!b.healthy) continue;
      // Estimated completion if routed here: everything ahead of the
      // request plus the request itself, at the current rung's pace.
      const double est_ms = static_cast<double>(b.backlog() + 1) *
                            b.seconds_per_frame * 1e3;
      if (req.deadline_ms > 0.0 && est_ms > req.deadline_ms) continue;
      const bool cheaper = b.joules_per_frame < best_jpf;
      const bool tie = b.joules_per_frame == best_jpf &&
                       b.backlog() < best_backlog;
      if (cheaper || tie) {
        best = static_cast<int>(i);
        best_jpf = b.joules_per_frame;
        best_backlog = b.backlog();
      }
    }
    // No board can meet the deadline (or none is healthy): shed energy
    // optimality, not the request.
    if (best < 0) return shortest_queue(boards, /*healthy_only=*/true);
    return best;
  }
};

}  // namespace

std::unique_ptr<RoutingPolicy> make_policy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kRoundRobin:
      return std::make_unique<RoundRobinPolicy>();
    case PolicyKind::kJoinShortestQueue:
      return std::make_unique<JoinShortestQueuePolicy>();
    case PolicyKind::kEnergyAware:
      return std::make_unique<EnergyAwarePolicy>();
  }
  throw std::invalid_argument("make_policy: unknown kind");
}

}  // namespace seneca::serve::cluster
