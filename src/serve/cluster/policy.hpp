#pragma once
// Pluggable routing policies for the cluster tier. The router snapshots
// every board into a BoardState and asks the policy to pick one; policies
// are pure over that snapshot (plus internal counters), so they are unit-
// testable without servers.
//
//   round-robin         — spread blindly across healthy boards
//   join-shortest-queue — min (queue depth + inflight) over healthy boards
//   energy-aware        — among healthy boards whose estimated completion
//                         meets the request's deadline, pick the one whose
//                         *current rung* costs the fewest joules per frame
//                         (degraded rungs cost less energy, so routing and
//                         per-board degradation cooperate: a degraded board
//                         looks cheap and keeps the load that keeps it
//                         degraded, instead of the router fighting the
//                         ladder). Falls back to join-shortest-queue when
//                         no board can meet the deadline.
//
// All policies prefer healthy boards and only fall back to the full set
// when the whole cluster is unhealthy, so every request routes somewhere
// and its future resolves.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/request.hpp"

namespace seneca::serve::cluster {

enum class PolicyKind : std::uint8_t {
  kRoundRobin = 0,
  kJoinShortestQueue = 1,
  kEnergyAware = 2,
};

const char* to_string(PolicyKind kind);
/// Parses "round-robin" | "jsq" | "energy"; throws on anything else.
PolicyKind parse_policy_kind(const std::string& name);

/// Router-visible snapshot of one board at pick time.
struct BoardState {
  int board = 0;
  bool healthy = true;
  std::size_t queue_depth = 0;
  std::uint64_t inflight = 0;
  int level = 0;                   // board-local degradation rung
  double seconds_per_frame = 0.0;  // at the current rung
  double joules_per_frame = 0.0;   // at the current rung
  double ewma_latency_ms = 0.0;

  std::size_t backlog() const {
    return queue_depth + static_cast<std::size_t>(inflight);
  }
};

struct RouteRequest {
  Priority priority = Priority::kBatch;
  double deadline_ms = 0.0;  // relative to now; 0 = no deadline
};

class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;
  virtual PolicyKind kind() const = 0;
  /// Index into `boards`; -1 only when `boards` is empty. Thread-safe.
  virtual int pick(const std::vector<BoardState>& boards,
                   const RouteRequest& req) = 0;
};

std::unique_ptr<RoutingPolicy> make_policy(PolicyKind kind);

}  // namespace seneca::serve::cluster
