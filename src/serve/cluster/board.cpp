#include "serve/cluster/board.hpp"

#include <stdexcept>
#include <utility>

namespace seneca::serve::cluster {

std::future<Response> Board::submit(Priority priority, tensor::TensorI8 input,
                                    double deadline_ms, TenantId tenant) {
  auto promise = std::make_shared<std::promise<Response>>();
  auto future = promise->get_future();
  submit_async(priority, std::move(input), deadline_ms, tenant,
               [promise](Response r) { promise->set_value(std::move(r)); });
  return future;
}

BoardSim::BoardSim(int id, BoardConfig cfg)
    : Board(id, std::move(cfg.name)),
      rung_offset_(cfg.rung_offset),
      online_reprice_(cfg.online_reprice) {
  if (cfg.ladder.empty()) {
    throw std::invalid_argument("BoardSim: empty rung set");
  }
  costs_.reserve(cfg.ladder.size());
  for (std::size_t i = 0; i < cfg.ladder.size(); ++i) {
    const ModelSpec& spec = cfg.ladder[i];
    const auto e = platform::estimate_inference_energy(
        cfg.power, spec.model, spec.workers, cfg.sim_images);
    costs_.push_back(
        {spec.name, e.seconds_per_frame, e.watts, e.joules_per_frame});
    cost_by_model_.emplace(spec.name, i);
  }
  observed_.resize(costs_.size());
  queue_capacity_ = cfg.server.queue.capacity;
  // Chain the board's accounting in front of any caller-provided observer.
  ServerConfig server_cfg = cfg.server;
  auto outer = std::move(server_cfg.on_complete);
  server_cfg.on_complete = [this, outer](const Response& r) {
    on_complete(r);
    if (outer) outer(r);
  };
  server_ = std::make_unique<InferenceServer>(std::move(cfg.ladder),
                                              std::move(server_cfg));
}

void BoardSim::submit_async(Priority priority, tensor::TensorI8 input,
                            double deadline_ms, TenantId tenant,
                            DoneCallback on_done) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  server_->submit_async(priority, std::move(input), deadline_ms, tenant,
                        std::move(on_done));
}

std::uint64_t BoardSim::inflight() const {
  const std::uint64_t submitted = submitted_.load(std::memory_order_relaxed);
  const std::uint64_t completed = completed_.load(std::memory_order_relaxed);
  return submitted > completed ? submitted - completed : 0;
}

double BoardSim::ewma_latency_ms() const {
  util::LockGuard lock(accounting_mutex_);
  return ewma_latency_ms_;
}

RungCost BoardSim::rung_cost(int level) const {
  RungCost cost = costs_[static_cast<std::size_t>(level)];
  if (!online_reprice_) return cost;
  util::LockGuard lock(accounting_mutex_);
  const RungObserved& obs = observed_[static_cast<std::size_t>(level)];
  if (obs.samples == 0) return cost;  // nothing observed yet: DES estimate
  // Re-price throughput from the observed per-frame service time; keep the
  // power model's watts, so J/frame = watts * s/frame tracks the operating
  // point (a rung batching 4-deep serves frames ~4x cheaper than the DES
  // single-stream estimate assumed).
  cost.seconds_per_frame = obs.seconds_per_frame;
  cost.joules_per_frame = cost.watts * obs.seconds_per_frame;
  return cost;
}

RungObserved BoardSim::observed(int level) const {
  util::LockGuard lock(accounting_mutex_);
  return observed_[static_cast<std::size_t>(level)];
}

bool BoardSim::runner_saturated() const {
  const auto& runner = server_->runner(server_->degrade_level());
  return runner.max_pending() > 0 && runner.pending() >= runner.max_pending();
}

double BoardSim::energy_joules() const {
  util::LockGuard lock(accounting_mutex_);
  return energy_joules_;
}

double BoardSim::busy_seconds() const {
  util::LockGuard lock(accounting_mutex_);
  return busy_seconds_;
}

void BoardSim::on_complete(const Response& r) {
  // Every status is terminal for THIS board — even kMigrated means the
  // request left its queue for good (the router re-routes it as a fresh
  // submission elsewhere) — so all of them close the inflight window.
  completed_.fetch_add(1, std::memory_order_relaxed);
  if (r.status != Status::kOk) return;
  frames_served_.fetch_add(1, std::memory_order_relaxed);
  const auto it = cost_by_model_.find(r.model_used);
  if (it == cost_by_model_.end()) return;  // foreign model label; unbilled
  const RungCost& cost = costs_[it->second];
  util::LockGuard lock(accounting_mutex_);
  constexpr double kAlpha = 0.2;
  ewma_latency_ms_ = ewma_latency_ms_ == 0.0
                         ? r.total_ms
                         : kAlpha * r.total_ms + (1.0 - kAlpha) * ewma_latency_ms_;
  // Billing stays on the DES-priced table: simulated energy/time keep
  // their construction-time meaning whether or not re-pricing is on.
  energy_joules_ += cost.joules_per_frame;
  busy_seconds_ += cost.seconds_per_frame;
  // Observed wall-clock cost of this frame: the whole batch took
  // service_ms, so one frame's share is service_ms / batch_size.
  RungObserved& obs = observed_[it->second];
  const double batch = r.batch_size > 0 ? static_cast<double>(r.batch_size) : 1.0;
  const double s_per_frame = (r.service_ms / batch) / 1e3;
  if (obs.samples == 0) {
    obs.seconds_per_frame = s_per_frame;
    obs.occupancy = batch;
  } else {
    obs.seconds_per_frame =
        kAlpha * s_per_frame + (1.0 - kAlpha) * obs.seconds_per_frame;
    obs.occupancy = kAlpha * batch + (1.0 - kAlpha) * obs.occupancy;
  }
  ++obs.samples;
}

}  // namespace seneca::serve::cluster
