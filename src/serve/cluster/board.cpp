#include "serve/cluster/board.hpp"

#include <stdexcept>
#include <utility>

namespace seneca::serve::cluster {

BoardSim::BoardSim(int id, BoardConfig cfg)
    : id_(id), name_(std::move(cfg.name)), rung_offset_(cfg.rung_offset) {
  if (cfg.ladder.empty()) {
    throw std::invalid_argument("BoardSim: empty rung set");
  }
  costs_.reserve(cfg.ladder.size());
  for (std::size_t i = 0; i < cfg.ladder.size(); ++i) {
    const ModelSpec& spec = cfg.ladder[i];
    const auto e = platform::estimate_inference_energy(
        cfg.power, spec.model, spec.workers, cfg.sim_images);
    costs_.push_back(
        {spec.name, e.seconds_per_frame, e.watts, e.joules_per_frame});
    cost_by_model_.emplace(spec.name, i);
  }
  queue_capacity_ = cfg.server.queue.capacity;
  // Chain the board's accounting in front of any caller-provided observer.
  ServerConfig server_cfg = cfg.server;
  auto outer = std::move(server_cfg.on_complete);
  server_cfg.on_complete = [this, outer](const Response& r) {
    on_complete(r);
    if (outer) outer(r);
  };
  server_ = std::make_unique<InferenceServer>(std::move(cfg.ladder),
                                              std::move(server_cfg));
}

std::future<Response> BoardSim::submit(Priority priority,
                                       tensor::TensorI8 input,
                                       double deadline_ms, TenantId tenant) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return server_->submit(priority, std::move(input), deadline_ms, tenant);
}

std::uint64_t BoardSim::inflight() const {
  const std::uint64_t submitted = submitted_.load(std::memory_order_relaxed);
  const std::uint64_t completed = completed_.load(std::memory_order_relaxed);
  return submitted > completed ? submitted - completed : 0;
}

double BoardSim::ewma_latency_ms() const {
  util::LockGuard lock(accounting_mutex_);
  return ewma_latency_ms_;
}

bool BoardSim::runner_saturated() const {
  const auto& runner = server_->runner(server_->degrade_level());
  return runner.max_pending() > 0 && runner.pending() >= runner.max_pending();
}

double BoardSim::energy_joules() const {
  util::LockGuard lock(accounting_mutex_);
  return energy_joules_;
}

double BoardSim::busy_seconds() const {
  util::LockGuard lock(accounting_mutex_);
  return busy_seconds_;
}

void BoardSim::on_complete(const Response& r) {
  completed_.fetch_add(1, std::memory_order_relaxed);
  if (r.status != Status::kOk) return;
  frames_served_.fetch_add(1, std::memory_order_relaxed);
  const auto it = cost_by_model_.find(r.model_used);
  if (it == cost_by_model_.end()) return;  // foreign model label; unbilled
  const RungCost& cost = costs_[it->second];
  util::LockGuard lock(accounting_mutex_);
  constexpr double kAlpha = 0.2;
  ewma_latency_ms_ = ewma_latency_ms_ == 0.0
                         ? r.total_ms
                         : kAlpha * r.total_ms + (1.0 - kAlpha) * ewma_latency_ms_;
  energy_joules_ += cost.joules_per_frame;
  busy_seconds_ += cost.seconds_per_frame;
}

}  // namespace seneca::serve::cluster
