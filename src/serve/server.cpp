#include "serve/server.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/timer.hpp"

namespace seneca::serve {

namespace {

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

InferenceServer::InferenceServer(std::vector<ModelSpec> ladder,
                                 ServerConfig cfg)
    : ladder_(std::move(ladder)), cfg_(cfg), queue_(cfg.queue) {
  if (ladder_.empty()) {
    throw std::invalid_argument("InferenceServer: empty model ladder");
  }
  for (const auto& spec : ladder_) {
    if (!(spec.model.input_shape == ladder_.front().model.input_shape)) {
      throw std::invalid_argument(
          "InferenceServer: ladder models must share one input shape");
    }
  }
  runners_.reserve(ladder_.size());
  for (const auto& spec : ladder_) {
    // Bounded pending queue: a runner never holds more than two batches,
    // so a stuck rung surfaces as submit() backpressure in the scheduler
    // rather than unbounded growth.
    runners_.push_back(std::make_unique<runtime::VartRunner>(
        spec.model, spec.workers, 2 * cfg_.batcher.max_batch_size));
  }
  last_level_change_ = Clock::now();
  scheduler_ = std::thread([this] { scheduler_loop(); });
}

InferenceServer::~InferenceServer() { shutdown(); }

std::future<Response> InferenceServer::submit(Priority priority,
                                              tensor::TensorI8 input,
                                              double deadline_ms,
                                              TenantId tenant) {
  auto promise = std::make_shared<std::promise<Response>>();
  auto future = promise->get_future();
  submit_async(priority, std::move(input), deadline_ms, tenant,
               [promise](Response resp) { promise->set_value(std::move(resp)); });
  return future;
}

std::uint64_t InferenceServer::submit_async(Priority priority,
                                            tensor::TensorI8 input,
                                            double deadline_ms, TenantId tenant,
                                            DoneCallback on_done) {
  const auto now = Clock::now();
  tenant::TenantRegistry* registry = cfg_.tenants.get();
  Request r;
  r.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  r.priority = priority;
  r.tenant = tenant;
  r.weight = registry != nullptr ? registry->weight(tenant) : 1;
  r.input = std::move(input);
  if (deadline_ms > 0.0) {
    r.deadline = now + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(deadline_ms));
  }

  {
    util::LockGuard lock(pending_mutex_);
    pending_.emplace(r.id, Pending{std::move(on_done), now, tenant});
  }
  metrics_.on_submitted();
  // The front door (the layer that throttles) owns per-tenant submit and
  // throttle counts; boards behind a router skip them so cluster traffic is
  // not double-counted in the shared registry.
  if (registry != nullptr && cfg_.tenant_throttle) {
    registry->on_submitted(tenant);
  }

  const std::uint64_t id = r.id;
  if (stopping_.load(std::memory_order_acquire)) {
    complete_failed(r, Status::kRejected);
    return id;
  }

  // Token-bucket admission happens before the request can occupy queue
  // capacity: an out-of-budget tenant is rejected at the door.
  if (registry != nullptr && cfg_.tenant_throttle &&
      !registry->try_admit(tenant, now)) {
    complete_failed(r, Status::kRejected, /*throttled=*/true);
    return id;
  }

  auto result = queue_.push(std::move(r), now);
  if (result.admitted) {
    metrics_.on_admitted();
  }
  for (const auto& victim : result.rejected) {
    complete_failed(victim, Status::kRejected);
  }
  for (const auto& victim : result.expired) {
    complete_failed(victim, Status::kExpired);
  }
  publish_queue_gauges();
  return id;
}

std::size_t InferenceServer::evict_queued() {
  std::vector<Request> evicted = queue_.evict_all();
  const auto now = Clock::now();
  for (Request& r : evicted) {
    auto pending = take_pending(r.id);
    if (!pending) continue;
    metrics_.on_migrated();
    // No tenant outcome accounting here: the migrated request's terminal
    // status is attributed wherever the router lands it next.
    Response resp;
    resp.id = r.id;
    resp.tenant = r.tenant;
    resp.status = Status::kMigrated;
    resp.total_ms = ms_between(pending->submitted_at, now);
    if (cfg_.on_complete) cfg_.on_complete(resp);
    pending->on_done(std::move(resp));
  }
  publish_queue_gauges();
  return evicted.size();
}

void InferenceServer::publish_queue_gauges() {
  const QueueStats qs = queue_.stats();
  metrics_.set_queue_depth(qs.depth);
  metrics_.set_lane_depths(qs.depth_interactive, qs.depth_batch);
}

std::optional<InferenceServer::Pending> InferenceServer::take_pending(
    std::uint64_t id) {
  util::LockGuard lock(pending_mutex_);
  auto it = pending_.find(id);
  if (it == pending_.end()) return std::nullopt;
  Pending p = std::move(it->second);
  pending_.erase(it);
  return p;
}

void InferenceServer::complete_failed(const Request& r, Status status,
                                      bool throttled) {
  auto pending = take_pending(r.id);
  if (!pending) return;  // already completed elsewhere; nothing to count
  tenant::TenantRegistry* registry = cfg_.tenants.get();
  if (status == Status::kExpired) {
    metrics_.on_expired();
    if (registry != nullptr) registry->on_expired(r.tenant);
  } else if (status == Status::kError) {
    metrics_.on_error();
    if (registry != nullptr) registry->on_error(r.tenant);
  } else {
    metrics_.on_rejected();
    if (registry != nullptr) {
      if (throttled) {
        registry->on_throttled(r.tenant);
      } else {
        registry->on_rejected(r.tenant);
      }
    }
  }
  Response resp;
  resp.id = r.id;
  resp.tenant = r.tenant;
  resp.status = status;
  resp.total_ms = ms_between(pending->submitted_at, Clock::now());
  if (cfg_.on_complete) cfg_.on_complete(resp);
  pending->on_done(std::move(resp));
}

void InferenceServer::update_level(Clock::time_point now, std::size_t depth) {
  int level = level_.load(std::memory_order_relaxed);
  const auto& d = cfg_.degrade;
  if (ms_between(last_level_change_, now) < d.min_dwell_ms) return;

  double window_p99 = 0.0;
  if (d.p99_high_ms > 0.0 && !recent_interactive_ms_.empty()) {
    // Ceil-based nearest rank: a floor-based index under-reads the tail so
    // badly at small window sizes (n = 2 yields the minimum) that the
    // latency trigger fired late or never.
    window_p99 = nearest_rank_quantile(
        {recent_interactive_ms_.begin(), recent_interactive_ms_.end()}, 0.99);
  }

  const bool overloaded =
      depth >= d.queue_depth_high ||
      (d.p99_high_ms > 0.0 && window_p99 > d.p99_high_ms);
  const bool calm = depth <= d.queue_depth_low &&
                    (d.p99_high_ms <= 0.0 || window_p99 < 0.5 * d.p99_high_ms);

  if (overloaded && level + 1 < static_cast<int>(ladder_.size())) {
    ++level;
  } else if (calm && level > 0) {
    --level;
  } else {
    return;
  }
  last_level_change_ = now;
  level_.store(level, std::memory_order_relaxed);
}

void InferenceServer::scheduler_loop() {
  MicroBatcher batcher(queue_, cfg_.batcher);
  for (;;) {
    std::vector<Request> batch = batcher.next_batch();
    if (batch.empty()) break;  // queue closed and drained

    const auto dispatch_at = Clock::now();
    // Backlog as seen by this dispatch cycle: what is still queued plus
    // what was just popped into the batch. Sampling after the pop alone
    // would systematically understate pressure by one batch.
    const QueueStats qs = queue_.stats();
    const std::size_t backlog = qs.depth + batch.size();
    metrics_.set_queue_depth(backlog);
    metrics_.set_lane_depths(qs.depth_interactive, qs.depth_batch);

    std::vector<Request> live;
    live.reserve(batch.size());
    for (auto& r : batch) {
      if (r.expired(dispatch_at)) {
        complete_failed(r, Status::kExpired);
      } else {
        live.push_back(std::move(r));
      }
    }
    if (live.empty()) continue;

    update_level(dispatch_at, backlog);
    const int level = level_.load(std::memory_order_relaxed);
    auto& runner = *runners_[static_cast<std::size_t>(level)];

    std::vector<tensor::TensorI8> inputs;
    inputs.reserve(live.size());
    for (auto& r : live) inputs.push_back(std::move(r.input));

    util::Timer service_timer;
    std::vector<tensor::TensorI8> outputs;
    try {
      outputs = runner.run_batch(inputs);
    } catch (...) {
      // A dispatch fault (injected or real) must not escape the scheduler
      // thread: that terminates the process and strands every pending
      // promise. Fail only this batch and keep serving.
      for (const Request& r : live) complete_failed(r, Status::kError);
      continue;
    }
    const double service_ms = service_timer.millis();
    const auto done_at = Clock::now();

    for (std::size_t i = 0; i < live.size(); ++i) {
      const Request& r = live[i];
      auto pending = take_pending(r.id);
      if (!pending) continue;
      Response resp;
      resp.id = r.id;
      resp.tenant = r.tenant;
      resp.status = Status::kOk;
      resp.output = std::move(outputs[i]);
      resp.model_used = ladder_[static_cast<std::size_t>(level)].name;
      resp.degraded = level > 0;
      resp.queue_ms = ms_between(r.admitted_at, dispatch_at);
      resp.service_ms = service_ms;
      resp.total_ms = ms_between(pending->submitted_at, done_at);
      resp.served_seq = served_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
      resp.batch_size = static_cast<std::uint32_t>(live.size());
      metrics_.on_served(r.priority, resp.total_ms, resp.degraded);
      if (cfg_.tenants != nullptr) {
        cfg_.tenants->on_served(r.tenant, resp.total_ms, resp.degraded);
      }
      if (r.priority == Priority::kInteractive) {
        recent_interactive_ms_.push_back(resp.total_ms);
        while (recent_interactive_ms_.size() > cfg_.degrade.p99_window) {
          recent_interactive_ms_.pop_front();
        }
      }
      if (cfg_.on_complete) cfg_.on_complete(resp);
      pending->on_done(std::move(resp));
    }
  }
}

void InferenceServer::shutdown() {
  stopping_.store(true, std::memory_order_release);
  queue_.close();
  if (scheduler_.joinable()) scheduler_.join();

  // Safety net: fail any promise that somehow never reached the scheduler.
  std::vector<std::pair<std::uint64_t, Pending>> leftovers;
  {
    util::LockGuard lock(pending_mutex_);
    for (auto& [id, pending] : pending_) {
      leftovers.emplace_back(id, std::move(pending));
    }
    pending_.clear();
  }
  for (auto& [id, pending] : leftovers) {
    Response resp;
    resp.id = id;
    resp.tenant = pending.tenant;
    resp.status = Status::kRejected;
    resp.total_ms = ms_between(pending.submitted_at, Clock::now());
    metrics_.on_rejected();
    if (cfg_.tenants != nullptr) cfg_.tenants->on_rejected(pending.tenant);
    if (cfg_.on_complete) cfg_.on_complete(resp);
    pending.on_done(std::move(resp));
  }
}

MetricsSnapshot InferenceServer::metrics() const {
  MetricsSnapshot s = metrics_.snapshot();
  const QueueStats qs = queue_.stats();
  s.queue_depth_interactive = qs.depth_interactive;
  s.queue_depth_batch = qs.depth_batch;
  s.queue_high_water_interactive = std::max(s.queue_high_water_interactive,
                                            qs.high_water_interactive);
  s.queue_high_water_batch =
      std::max(s.queue_high_water_batch, qs.high_water_batch);
  if (cfg_.tenants != nullptr && cfg_.tenant_throttle) {
    s.tenants = cfg_.tenants->snapshot();
  }
  return s;
}

}  // namespace seneca::serve
