#pragma once
// InferenceServer: the serving front-end over the VART-analog runtime.
//
//   clients --submit()--> AdmissionQueue --MicroBatcher--> scheduler thread
//                                                             |
//                                               degradation ladder pick
//                                                             |
//                                            VartRunner pool of ladder[level]
//
// One server owns a degradation ladder of compiled models, largest (best
// quality) first — e.g. the paper's zoo 8M -> 4M -> 2M -> 1M — each with its
// own VartRunner worker pool. A single scheduler thread drains the
// interactive lane before the batch lane (AdmissionQueue pop order), forms
// micro-batches, and dispatches each batch to the ladder rung selected by
// the overload controller: when queue depth or the sliding-window p99 of
// interactive latency crosses the high threshold the server steps down to a
// smaller/faster model (graceful degradation — §IV's quality/latency trade
// made at serving time); when load subsides it steps back up. Outputs are
// always bit-exact with the serving model's reference execution: the ladder
// changes *which* model runs, never how it runs.

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "dpu/xmodel.hpp"
#include "runtime/vart.hpp"
#include "serve/batcher.hpp"
#include "serve/metrics.hpp"
#include "serve/queue.hpp"
#include "serve/tenant/tenant.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace seneca::serve {

struct ModelSpec {
  std::string name;   // zoo label, e.g. "4M"
  dpu::XModel model;  // compiled artifact (owned by the server)
  int workers = 2;    // VART worker threads for this rung
};

struct DegradeConfig {
  /// Step one rung down when queue depth reaches this at dispatch time.
  std::size_t queue_depth_high = 32;
  /// Step one rung up (recover) only when depth is back at or below this.
  std::size_t queue_depth_low = 4;
  /// Also step down when the sliding-window interactive p99 exceeds this
  /// (milliseconds); 0 disables the latency trigger.
  double p99_high_ms = 0.0;
  /// Sliding window length for the p99 trigger.
  std::size_t p99_window = 64;
  /// Minimum time between level changes (hysteresis).
  double min_dwell_ms = 20.0;
};

struct ServerConfig {
  QueueConfig queue;
  BatcherConfig batcher;
  DegradeConfig degrade;
  /// Optional multi-tenant registry: token-bucket admission, DRR weights,
  /// and per-tenant metrics. Null = single implicit tenant (kDefaultTenant),
  /// which preserves the pre-tenant behaviour exactly.
  std::shared_ptr<tenant::TenantRegistry> tenants;
  /// Whether THIS server consumes token buckets at submit. The cluster tier
  /// sets this false on its boards (the router is the front door and has
  /// already charged the bucket); standalone servers keep the default.
  bool tenant_throttle = true;
  /// Optional observer invoked (from the completing thread) just before a
  /// response's promise is fulfilled, whatever its status. Must be cheap
  /// and must not throw; used by the cluster tier for per-board inflight,
  /// latency, and energy accounting.
  std::function<void(const Response&)> on_complete;
};

class InferenceServer {
 public:
  /// `ladder` is ordered best-first; index 0 is the undegraded model.
  /// All ladder models must share one input shape.
  InferenceServer(std::vector<ModelSpec> ladder, ServerConfig cfg);
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Thread-safe. `deadline_ms` is relative to now; <= 0 means no deadline.
  /// The future always resolves: kOk with an output, or kRejected/kExpired.
  std::future<Response> submit(Priority priority, tensor::TensorI8 input,
                               double deadline_ms = 0.0) {
    return submit(priority, std::move(input), deadline_ms, kDefaultTenant);
  }

  /// Tenant-attributed submit: the request is charged against `tenant`'s
  /// token bucket (when this server throttles), dequeued under its DRR
  /// weight, and counted in its per-tenant metrics.
  std::future<Response> submit(Priority priority, tensor::TensorI8 input,
                               double deadline_ms, TenantId tenant);

  /// Invoked exactly once per request, from whichever thread completes it
  /// (scheduler, submit on rejection, evict_queued, shutdown). Must not
  /// call back into this server.
  using DoneCallback = std::function<void(Response)>;

  /// Callback-completing submit: like submit(), but delivers the Response
  /// to `on_done` instead of a future. This is the completion primitive the
  /// network tier builds on (boardd writes the response frame from the
  /// callback; no per-request waiter thread). Returns the request id.
  std::uint64_t submit_async(Priority priority, tensor::TensorI8 input,
                             double deadline_ms, TenantId tenant,
                             DoneCallback on_done);

  /// Drains every still-queued (never dispatched) request and completes it
  /// with Status::kMigrated so the cluster tier can re-route it to another
  /// board. In-flight batches are untouched. Returns how many migrated.
  std::size_t evict_queued();

  /// Stops admission, drains queued work, joins the scheduler. Idempotent;
  /// the destructor calls it.
  void shutdown();

  /// Snapshot including per-lane queue gauges; per-tenant entries are
  /// attached when this server fronts a TenantRegistry itself (boards
  /// behind a ClusterRouter leave tenant roll-up to the router).
  MetricsSnapshot metrics() const;
  QueueStats queue_stats() const { return queue_.stats(); }
  const std::shared_ptr<tenant::TenantRegistry>& tenants() const {
    return cfg_.tenants;
  }
  /// Current degradation rung (0 = full-quality model).
  int degrade_level() const {
    return level_.load(std::memory_order_relaxed);
  }
  std::size_t ladder_size() const { return ladder_.size(); }
  const std::string& model_name(int level) const {
    return ladder_[static_cast<std::size_t>(level)].name;
  }
  const dpu::XModel& model(int level) const {
    return ladder_[static_cast<std::size_t>(level)].model;
  }
  int workers(int level) const {
    return ladder_[static_cast<std::size_t>(level)].workers;
  }
  /// Direct access to a rung's runner (health probes, fault injection).
  runtime::VartRunner& runner(int level) {
    return *runners_[static_cast<std::size_t>(level)];
  }
  const runtime::VartRunner& runner(int level) const {
    return *runners_[static_cast<std::size_t>(level)];
  }

 private:
  struct Pending {
    DoneCallback on_done;  // future-backed submits wrap a promise in one
    Clock::time_point submitted_at;
    TenantId tenant = kDefaultTenant;
  };

  void scheduler_loop();
  void update_level(Clock::time_point now, std::size_t depth);
  void complete_failed(const Request& r, Status status,
                       bool throttled = false);
  void publish_queue_gauges();
  std::optional<Pending> take_pending(std::uint64_t id);

  const std::vector<ModelSpec> ladder_;
  const ServerConfig cfg_;
  std::vector<std::unique_ptr<runtime::VartRunner>> runners_;

  AdmissionQueue queue_;
  ServeMetrics metrics_;

  // DebugMutex: OrderedMutex in checked builds — completion paths cross
  // component boundaries (queue -> server -> cluster callbacks), exactly
  // where a lock-order mistake would creep in.
  util::DebugMutex pending_mutex_{"server.pending"};
  std::unordered_map<std::uint64_t, Pending> pending_
      GUARDED_BY(pending_mutex_);
  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<std::uint64_t> served_seq_{0};
  std::atomic<int> level_{0};
  std::atomic<bool> stopping_{false};

  // Scheduler-thread-only state for the latency trigger.
  std::deque<double> recent_interactive_ms_;
  Clock::time_point last_level_change_;

  std::thread scheduler_;
};

}  // namespace seneca::serve
