#pragma once
// Typed requests/responses for SENECA-Serve, the inference-serving layer.
//
// The paper's motivating deployment (§I) mixes two traffic classes on one
// edge device: intraoperative CT frames that must come back within a hard
// latency budget, and offline volumes that only need throughput. A Request
// therefore carries a priority class and an optional absolute deadline; the
// Response reports which zoo model actually served it so callers can observe
// graceful degradation (see server.hpp).

#include <chrono>
#include <cstdint>
#include <string>

#include "tensor/tensor.hpp"

namespace seneca::serve {

using Clock = std::chrono::steady_clock;

/// Stable tenant identity. Tenant 0 is the implicit default for callers
/// that predate (or don't care about) multi-tenancy; it is always
/// registered and unthrottled in a TenantRegistry.
using TenantId = std::uint32_t;
constexpr TenantId kDefaultTenant = 0;

enum class Priority : std::uint8_t { kInteractive = 0, kBatch = 1 };

constexpr const char* to_string(Priority p) {
  return p == Priority::kInteractive ? "interactive" : "batch";
}

struct Request {
  std::uint64_t id = 0;
  Priority priority = Priority::kBatch;
  TenantId tenant = kDefaultTenant;
  /// DRR quantum of this request's tenant, stamped at submit time from the
  /// TenantRegistry (1 when serving single-tenant). Riding on the request
  /// keeps the admission queue decoupled from the registry.
  std::uint32_t weight = 1;
  tensor::TensorI8 input;
  /// Absolute deadline; Clock::time_point::max() means "no deadline".
  Clock::time_point deadline = Clock::time_point::max();
  /// Stamped by the admission queue on successful push.
  Clock::time_point admitted_at{};

  bool has_deadline() const { return deadline != Clock::time_point::max(); }
  bool expired(Clock::time_point now) const {
    return has_deadline() && now > deadline;
  }
};

enum class Status : std::uint8_t {
  kOk = 0,        // served; `output` is valid
  kRejected = 1,  // refused at admission or displaced by an eviction
  kExpired = 2,   // deadline passed before service started
  kError = 3,     // dispatch failed (runtime fault); the batch was lost
  /// Evicted from a board's admission queue before dispatch so the cluster
  /// tier can re-route it to a healthy board. Never executed, so migrating
  /// it cannot double-run inference. Clients never observe kMigrated: the
  /// router either re-submits (final status comes from the new board) or
  /// converts it to kRejected/kExpired when out of hops or budget.
  kMigrated = 4,
};

constexpr const char* to_string(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kRejected: return "rejected";
    case Status::kExpired: return "expired";
    case Status::kError: return "error";
    case Status::kMigrated: return "migrated";
  }
  return "?";
}

struct Response {
  std::uint64_t id = 0;
  TenantId tenant = kDefaultTenant;
  Status status = Status::kRejected;
  tensor::TensorI8 output;  // valid iff status == kOk
  std::string model_used;   // zoo label of the model that served it
  bool degraded = false;    // served below the top rung of the ladder
  double queue_ms = 0.0;    // admission -> dispatch
  double service_ms = 0.0;  // dispatch -> inference complete (whole batch)
  double total_ms = 0.0;    // submit -> completion
  /// Server-wide completion order (1-based); exposes scheduling decisions
  /// (interactive-before-batch) to tests without relying on wall clocks.
  std::uint64_t served_seq = 0;
  /// Size of the micro-batch this request was served in (1 for failures);
  /// feeds the cluster tier's occupancy-aware online re-pricing.
  std::uint32_t batch_size = 1;
  /// How many cross-board hops this request took before its terminal
  /// status (0 = served where first routed). Stamped by the cluster tier.
  std::uint32_t migrations = 0;
};

}  // namespace seneca::serve
