#include "serve/queue.hpp"

#include <algorithm>

using seneca::util::LockGuard;

namespace seneca::serve {

const char* to_string(OverloadPolicy p) {
  switch (p) {
    case OverloadPolicy::kRejectNewest: return "reject-newest";
    case OverloadPolicy::kDropExpired: return "drop-expired";
    case OverloadPolicy::kEvictDeadline: return "evict-deadline";
  }
  return "?";
}

AdmissionQueue::AdmissionQueue(QueueConfig cfg) : cfg_(cfg) {}

void AdmissionQueue::note_high_water_locked() {
  stats_.high_water = std::max(stats_.high_water, depth_locked());
  stats_.high_water_interactive =
      std::max(stats_.high_water_interactive, lanes_[0].size());
  stats_.high_water_batch = std::max(stats_.high_water_batch, lanes_[1].size());
}

AdmissionQueue::PushResult AdmissionQueue::push(Request r,
                                                Clock::time_point now) {
  PushResult out;
  {
    LockGuard lock(mutex_);
    if (closed_) {
      ++stats_.rejected;
      out.rejected.push_back(std::move(r));
      return out;
    }
    if (depth_locked() >= cfg_.capacity) {
      switch (cfg_.policy) {
        case OverloadPolicy::kRejectNewest:
          break;  // fall through to the full-queue rejection below
        case OverloadPolicy::kDropExpired: {
          for (auto& l : lanes_) {
            stats_.expired += l.sweep_expired(now, out.expired);
          }
          break;
        }
        case OverloadPolicy::kEvictDeadline: {
          // Victim = queued request with the latest deadline (no deadline ==
          // infinitely late). Scanning the batch lane first makes it the
          // preferred victim pool on equal deadlines.
          const Request* victim = nullptr;
          tenant::DrrLane* victim_lane = nullptr;
          for (auto* l : {&lane(Priority::kBatch), &lane(Priority::kInteractive)}) {
            const Request* candidate = l->slackest();
            if (candidate != nullptr &&
                (victim == nullptr || candidate->deadline > victim->deadline)) {
              victim = candidate;
              victim_lane = l;
            }
          }
          if (victim != nullptr && victim->deadline > r.deadline) {
            ++stats_.evicted;
            out.rejected.push_back(victim_lane->take(victim));
          }
          break;
        }
      }
      if (depth_locked() >= cfg_.capacity) {
        ++stats_.rejected;
        out.rejected.push_back(std::move(r));
        return out;
      }
    }
    r.admitted_at = now;
    lane(r.priority).push_back(std::move(r));
    ++stats_.admitted;
    note_high_water_locked();
    out.admitted = true;
  }
  cv_.notify_all();
  return out;
}

std::optional<Request> AdmissionQueue::pop_locked() {
  for (auto& l : lanes_) {  // interactive lane first
    if (auto r = l.pop()) {
      ++stats_.popped;
      return r;
    }
  }
  return std::nullopt;
}

std::optional<Request> AdmissionQueue::pop() {
  LockGuard lock(mutex_);
  cv_.wait(lock, [this]() REQUIRES(mutex_) {
    return closed_ || depth_locked() > 0;
  });
  return pop_locked();
}

std::optional<Request> AdmissionQueue::try_pop() {
  LockGuard lock(mutex_);
  return pop_locked();
}

std::optional<Request> AdmissionQueue::try_pop(Priority p) {
  LockGuard lock(mutex_);
  auto r = lane(p).pop();
  if (r) ++stats_.popped;
  return r;
}

bool AdmissionQueue::wait_nonempty_until(Priority p, Clock::time_point tp) {
  LockGuard lock(mutex_);
  cv_.wait_until(lock, tp, [this, p]() REQUIRES(mutex_) {
    return closed_ || !lane(p).empty();
  });
  return !lane(p).empty();
}

bool AdmissionQueue::wait_any_nonempty_until(Clock::time_point tp) {
  LockGuard lock(mutex_);
  cv_.wait_until(lock, tp, [this]() REQUIRES(mutex_) {
    return closed_ || depth_locked() > 0;
  });
  return depth_locked() > 0;
}

void AdmissionQueue::requeue_front(Request r) {
  {
    LockGuard lock(mutex_);
    ++stats_.requeued;
    lane(r.priority).push_front(std::move(r));
    note_high_water_locked();
  }
  cv_.notify_all();
}

std::vector<Request> AdmissionQueue::evict_all() {
  std::vector<Request> out;
  LockGuard lock(mutex_);
  for (auto& l : lanes_) {  // interactive lane first
    while (auto r = l.pop()) {
      ++stats_.migrated;
      out.push_back(std::move(*r));
    }
  }
  return out;
}

void AdmissionQueue::close() {
  {
    LockGuard lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool AdmissionQueue::closed() const {
  LockGuard lock(mutex_);
  return closed_;
}

std::size_t AdmissionQueue::depth() const {
  LockGuard lock(mutex_);
  return depth_locked();
}

std::size_t AdmissionQueue::depth(Priority p) const {
  LockGuard lock(mutex_);
  return lanes_[static_cast<std::size_t>(p)].size();
}

QueueStats AdmissionQueue::stats() const {
  LockGuard lock(mutex_);
  QueueStats s = stats_;
  s.depth = depth_locked();
  s.depth_interactive = lanes_[0].size();
  s.depth_batch = lanes_[1].size();
  return s;
}

}  // namespace seneca::serve
