#pragma once
// Lock-cheap serving metrics: relaxed atomic counters plus log-bucketed
// latency histograms per lane. Recording on the hot path is a handful of
// relaxed atomic increments; percentile estimation and formatting happen
// only at snapshot() time. Snapshots reuse eval/stats (RunStats /
// format_stats) so the serving tables read like the paper-reproduction ones.

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "eval/stats.hpp"
#include "serve/request.hpp"

namespace seneca::serve {

/// Geometric-bucket latency histogram, 1 µs .. ~10^4 s, ~20 % bucket width.
/// record() is wait-free (relaxed atomics); percentiles interpolate within
/// the winning bucket, so they carry that bucket-width resolution.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 96;
  static constexpr double kLoMs = 1e-3;   // first bucket upper edge
  static constexpr double kRatio = 1.2;

  void record(double ms);

  struct Snapshot {
    std::uint64_t count = 0;
    double mean_ms = 0.0;
    double max_ms = 0.0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    eval::RunStats stats;  // mean/stddev/n via eval/stats
  };
  Snapshot snapshot() const;

 private:
  static int bucket_index(double ms);
  static double bucket_upper_ms(int index);

  friend class LatencyHistogramTestPeer;

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_ms_{0.0};
  std::atomic<double> sum_sq_ms_{0.0};
  std::atomic<double> max_ms_{0.0};
};

/// Point-in-time accounting for one tenant (filled from a TenantRegistry;
/// see serve/tenant/tenant.hpp). Lives here so MetricsSnapshot can embed it
/// without depending on the tenant subsystem's headers.
struct TenantSnapshot {
  std::uint32_t id = 0;
  std::string name;
  std::uint32_t weight = 1;
  std::uint64_t submitted = 0;
  std::uint64_t throttled = 0;  // refused by the tenant's token bucket
  std::uint64_t rejected = 0;   // refused/displaced past the bucket
  std::uint64_t expired = 0;
  std::uint64_t errors = 0;
  std::uint64_t served = 0;
  std::uint64_t degraded = 0;
  LatencyHistogram::Snapshot latency;  // served requests, both lanes

  std::uint64_t completed() const {
    return served + throttled + rejected + expired + errors;
  }
};

struct MetricsSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t served = 0;
  std::uint64_t rejected = 0;
  std::uint64_t expired = 0;
  std::uint64_t errors = 0;    // failed in dispatch (Status::kError)
  std::uint64_t degraded = 0;  // served, but below the top ladder rung
  /// Requests handed back still-queued (Status::kMigrated) for the cluster
  /// tier to re-route. NOT part of completed(): the migrated request's
  /// terminal status is counted wherever it finally lands.
  std::uint64_t migrated = 0;
  std::size_t queue_depth = 0;
  std::size_t queue_high_water = 0;
  /// Per-lane queue gauges (totals above hide interactive-lane starvation
  /// behind a deep batch backlog).
  std::size_t queue_depth_interactive = 0;
  std::size_t queue_depth_batch = 0;
  std::size_t queue_high_water_interactive = 0;
  std::size_t queue_high_water_batch = 0;
  LatencyHistogram::Snapshot interactive;
  LatencyHistogram::Snapshot batch;
  /// One entry per registered tenant when the server runs with a
  /// TenantRegistry; empty in single-tenant operation.
  std::vector<TenantSnapshot> tenants;

  std::uint64_t dropped() const { return rejected + expired; }
  /// Requests whose future has resolved, with any status.
  std::uint64_t completed() const {
    return served + rejected + expired + errors;
  }
  /// Multi-line human-readable summary (uses eval::format_stats).
  std::string format() const;
};

class ServeMetrics {
 public:
  void on_submitted() { submitted_.fetch_add(1, std::memory_order_relaxed); }
  void on_admitted() { admitted_.fetch_add(1, std::memory_order_relaxed); }
  void on_rejected() { rejected_.fetch_add(1, std::memory_order_relaxed); }
  void on_expired() { expired_.fetch_add(1, std::memory_order_relaxed); }
  void on_error() { errors_.fetch_add(1, std::memory_order_relaxed); }
  void on_migrated() { migrated_.fetch_add(1, std::memory_order_relaxed); }
  void on_served(Priority lane, double total_ms, bool degraded);
  void set_queue_depth(std::size_t depth);
  /// Per-lane depth gauges; each lane keeps its own high-water mark.
  void set_lane_depths(std::size_t interactive, std::size_t batch);

  MetricsSnapshot snapshot() const;

 private:
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> migrated_{0};
  std::atomic<std::size_t> queue_depth_{0};
  std::atomic<std::size_t> queue_high_water_{0};
  std::atomic<std::size_t> lane_depth_[2]{};       // [interactive, batch]
  std::atomic<std::size_t> lane_high_water_[2]{};  // [interactive, batch]
  LatencyHistogram lanes_[2];  // [kInteractive, kBatch]
};

/// Exact nearest-rank quantile of a small sample: the ceil(q*n)-th smallest
/// value (1-based), so the estimate never falls below the true quantile.
/// A floor-based index — sorted[size_t(q*(n-1))] — truncates toward zero
/// and for small n returns values far below the tail (with n = 2 it returns
/// the *minimum*), which made the serving layer's p99 degradation trigger
/// fire late or never. Returns 0 for an empty sample.
double nearest_rank_quantile(std::vector<double> values, double q);

}  // namespace seneca::serve
