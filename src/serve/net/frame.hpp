#pragma once
// SENECA-Wire frame layer: the length-prefixed binary protocol spoken
// between the cluster router (via net::RemoteBoard) and worker processes
// (seneca_boardd). Design constraints, in order:
//   - a malformed or truncated byte stream must produce a clean FrameError,
//     never a crash, hang, or over-allocation (the decoder is fuzzed by a
//     seeded byte-mutation sweep in tests/serve_net_frame_test.cpp and runs
//     under the ASan/UBSan CI matrix);
//   - explicit little-endian encoding of every field, so the wire format is
//     host-independent (an aarch64 boardd can serve an x86 router);
//   - every frame carries a CRC32 over its payload, so a flipped bit fails
//     loudly at decode instead of corrupting a tensor silently.
//
// Frame layout (header is kHeaderSize = 16 bytes, all little-endian):
//
//   offset  size  field
//        0     4  magic        0x52574E53 ("SNWR")
//        4     1  version      kWireVersion (1)
//        5     1  type         FrameType
//        6     2  reserved     must be zero
//        8     4  payload_len  <= kMaxPayload
//       12     4  payload_crc  CRC32 (IEEE) of the payload bytes
//       16   ...  payload      payload_len bytes
//
// Payload schemas live in the Wire* structs below; each encodes through a
// bounds-checked WireWriter and decodes through a WireReader that throws
// FrameError on any overrun, range violation, or trailing garbage.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/request.hpp"
#include "tensor/tensor.hpp"

namespace seneca::serve::net {

/// Every protocol-level failure (bad magic, truncated payload, CRC
/// mismatch, out-of-range field) decodes to exactly this exception.
class FrameError : public std::runtime_error {
 public:
  explicit FrameError(const std::string& what) : std::runtime_error(what) {}
};

constexpr std::uint32_t kMagic = 0x52574E53u;  // "SNWR" in LE byte order
constexpr std::uint8_t kWireVersion = 1;
constexpr std::size_t kHeaderSize = 16;
/// Hard ceiling on a declared payload length: decoders reject anything
/// larger before allocating, so a corrupt length field cannot OOM the
/// process. 64 MiB comfortably holds a 4096x4096 int8 frame.
constexpr std::uint32_t kMaxPayload = 1u << 26;

enum class FrameType : std::uint8_t {
  kHello = 1,      // boardd -> router, once per connection: board identity
  kRequest = 2,    // router -> boardd: one inference request
  kResponse = 3,   // boardd -> router: terminal status for one request
  kHeartbeat = 4,  // router -> boardd: liveness probe
  kTelemetry = 5,  // boardd -> router: heartbeat ack + live board stats
  kControl = 6,    // router -> boardd: evict / fault / shutdown verbs
  kGoodbye = 7,    // either side: orderly close
};
const char* to_string(FrameType t);
bool known_frame_type(std::uint8_t raw);

struct FrameHeader {
  std::uint8_t version = kWireVersion;
  FrameType type = FrameType::kHeartbeat;
  std::uint32_t payload_len = 0;
  std::uint32_t payload_crc = 0;
};

/// CRC32 (IEEE 802.3, reflected, poly 0xEDB88320), the zlib polynomial.
std::uint32_t crc32(const std::uint8_t* data, std::size_t n);

/// Serializes a header into exactly kHeaderSize bytes at `out`.
void encode_header(const FrameHeader& h, std::uint8_t* out);
/// Parses and validates kHeaderSize bytes: magic, version, known type,
/// zero reserved field, payload_len <= kMaxPayload. Throws FrameError.
FrameHeader decode_header(const std::uint8_t* buf);

struct Frame {
  FrameType type = FrameType::kHeartbeat;
  std::vector<std::uint8_t> payload;
};

/// Header + payload as one contiguous buffer, CRC filled in.
std::vector<std::uint8_t> encode_frame(FrameType type,
                                       const std::vector<std::uint8_t>& payload);
/// Decodes one complete frame from `buf` (which must hold the whole frame,
/// nothing more). Validates header, length, and CRC. Throws FrameError.
Frame decode_frame(const std::uint8_t* buf, std::size_t n);

// ---------------------------------------------------------------- writer

class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void str(const std::string& s);  // u32 length + bytes; length <= kMaxString
  void bytes(const void* data, std::size_t n);
  void tensor_i8(const tensor::TensorI8& t);  // rank + dims + raw int8 data

  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

  static constexpr std::uint32_t kMaxString = 4096;

 private:
  std::vector<std::uint8_t> buf_;
};

// ---------------------------------------------------------------- reader

class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t n) : p_(data), n_(n) {}
  explicit WireReader(const std::vector<std::uint8_t>& v)
      : WireReader(v.data(), v.size()) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  std::string str();
  tensor::TensorI8 tensor_i8();

  std::size_t remaining() const { return n_ - off_; }
  /// Schemas are exact in v1: trailing bytes mean a mis-framed payload.
  void expect_end() const;

 private:
  const std::uint8_t* need(std::size_t n);  // throws FrameError on overrun

  const std::uint8_t* p_;
  std::size_t n_;
  std::size_t off_ = 0;
};

// --------------------------------------------------------------- payloads

/// Sent by boardd immediately after accepting a connection: everything the
/// router needs to construct the board's routing view.
struct WireHello {
  std::string name;
  std::int32_t rung_offset = 0;
  std::uint64_t queue_capacity = 0;
  struct Rung {
    std::string model;
    double seconds_per_frame = 0.0;
    double watts = 0.0;
    double joules_per_frame = 0.0;
  };
  std::vector<Rung> rungs;  // construction-time DES-priced cost table

  std::vector<std::uint8_t> encode() const;
  static WireHello decode(const std::vector<std::uint8_t>& payload);
  static constexpr std::size_t kMaxRungs = 256;
};

struct WireRequest {
  std::uint64_t corr_id = 0;  // router-side correlation id
  Priority priority = Priority::kBatch;
  TenantId tenant = kDefaultTenant;
  /// Milliseconds of deadline budget remaining at send time; 0 = none.
  double deadline_rel_ms = 0.0;
  tensor::TensorI8 input;

  std::vector<std::uint8_t> encode() const;
  static WireRequest decode(const std::vector<std::uint8_t>& payload);
};

struct WireResponse {
  std::uint64_t corr_id = 0;
  Status status = Status::kRejected;
  bool degraded = false;
  std::uint32_t batch_size = 1;
  std::uint64_t served_seq = 0;
  double queue_ms = 0.0;
  double service_ms = 0.0;
  double total_ms = 0.0;
  std::string model_used;
  bool has_output = false;
  tensor::TensorI8 output;  // present iff has_output

  std::vector<std::uint8_t> encode() const;
  static WireResponse decode(const std::vector<std::uint8_t>& payload);
};

struct WireHeartbeat {
  std::uint64_t seq = 0;

  std::vector<std::uint8_t> encode() const;
  static WireHeartbeat decode(const std::vector<std::uint8_t>& payload);
};

/// Heartbeat ack plus the live-signals stream the router's re-pricing and
/// health layers consume. Counter semantics match MetricsSnapshot.
struct WireTelemetry {
  std::uint64_t seq = 0;  // echoes the heartbeat that solicited it
  std::uint64_t submitted = 0;
  std::uint64_t served = 0;
  std::uint64_t rejected = 0;
  std::uint64_t expired = 0;
  std::uint64_t errors = 0;
  std::uint64_t degraded = 0;
  std::uint64_t migrated = 0;
  std::uint32_t queue_depth = 0;
  std::int32_t level = 0;
  bool fault = false;
  bool runner_saturated = false;
  double ewma_latency_ms = 0.0;
  std::uint64_t frames_served = 0;
  double energy_joules = 0.0;
  double busy_seconds = 0.0;
  struct Rung {
    double seconds_per_frame = 0.0;  // effective (observed-repriced) cost
    double joules_per_frame = 0.0;
    double occupancy = 0.0;  // EWMA batch size at this rung
  };
  std::vector<Rung> rungs;

  std::vector<std::uint8_t> encode() const;
  static WireTelemetry decode(const std::vector<std::uint8_t>& payload);
};

struct WireControl {
  enum class Op : std::uint8_t {
    kEvictQueued = 1,  // migrate still-queued requests back to the router
    kFaultOn = 2,      // operator fault injection (tests/demos)
    kFaultOff = 3,
    kShutdown = 4,  // orderly process exit
  };
  Op op = Op::kEvictQueued;

  std::vector<std::uint8_t> encode() const;
  static WireControl decode(const std::vector<std::uint8_t>& payload);
};

}  // namespace seneca::serve::net
