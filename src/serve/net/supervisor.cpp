#include "serve/net/supervisor.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

namespace seneca::serve::net {

namespace {

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// waitpid(WNOHANG) with EINTR retry. Returns true once the child is reaped.
bool try_reap(pid_t pid) {
  while (true) {
    const pid_t r = ::waitpid(pid, nullptr, WNOHANG);
    if (r == pid) return true;
    if (r == 0) return false;
    if (r < 0 && errno == EINTR) continue;
    return true;  // ECHILD: someone else reaped it; treat as gone
  }
}

/// SIGTERM, grace period, then SIGKILL + blocking reap. Never hangs: after
/// SIGKILL the child is unschedulable, so waitpid must return.
void reap_with_grace(pid_t pid, double grace_ms) {
  if (pid <= 0) return;
  ::kill(pid, SIGTERM);
  const Clock::time_point start = Clock::now();
  while (ms_since(start) < grace_ms) {
    if (try_reap(pid)) return;
    ::usleep(2000);
  }
  ::kill(pid, SIGKILL);
  while (::waitpid(pid, nullptr, 0) < 0 && errno == EINTR) {
  }
}

std::string join_ladder(const std::vector<std::string>& ladder) {
  std::string out;
  for (const auto& m : ladder) {
    if (!out.empty()) out += ',';
    out += m;
  }
  return out;
}

}  // namespace

Supervisor::Supervisor(SupervisorConfig cfg, cluster::ClusterRouter& router)
    : cfg_(std::move(cfg)), router_(router) {}

Supervisor::~Supervisor() { stop(); }

std::string Supervisor::endpoint_file_for(const Worker& w) const {
  std::ostringstream os;
  os << cfg_.work_dir << "/seneca-boardd-" << ::getpid() << "-s" << w.slot
     << "-g" << w.generation << ".ep";
  return os.str();
}

pid_t Supervisor::exec_boardd(const Worker& w, const std::string& listen_spec,
                              const std::string& endpoint_file) const {
  std::vector<std::string> argv_s = {
      cfg_.boardd_path,
      "--listen",         listen_spec,
      "--endpoint-file",  endpoint_file,
      "--ladder",         join_ladder(w.spec.ladder),
      "--input",          std::to_string(w.spec.input),
      "--workers",        std::to_string(w.spec.workers),
      "--queue-capacity", std::to_string(w.spec.queue_capacity),
      "--rung-offset",    std::to_string(w.spec.rung_offset),
      "--name",           w.spec.name,
  };
  if (w.spec.online_reprice) argv_s.push_back("--online-reprice");
  for (const auto& a : w.spec.extra_args) argv_s.push_back(a);

  std::vector<char*> argv;
  argv.reserve(argv_s.size() + 1);
  for (auto& s : argv_s) argv.push_back(s.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    throw NetError(NetError::Kind::kSystem,
                   "fork for " + cfg_.boardd_path + " failed");
  }
  if (pid == 0) {
    // Child. Only async-signal-safe calls from here to exec.
    ::execv(argv[0], argv.data());
    ::_exit(127);
  }
  return pid;
}

void Supervisor::spawn_locked(Worker& w) {
  ++w.generation;
  const std::string ep_file = endpoint_file_for(w);
  std::remove(ep_file.c_str());

  std::string listen_spec;
  if (cfg_.transport == Endpoint::Kind::kTcp) {
    listen_spec = "tcp:127.0.0.1:0";  // ephemeral; worker reports the port
  } else {
    std::ostringstream os;
    os << "unix:" << cfg_.work_dir << "/seneca-boardd-" << ::getpid() << "-s"
       << w.slot << "-g" << w.generation << ".sock";
    listen_spec = os.str();
  }

  const pid_t pid = exec_boardd(w, listen_spec, ep_file);

  // The worker writes its resolved endpoint via write-to-temp + rename, so
  // once the file exists its contents are complete.
  Endpoint ep;
  const Clock::time_point start = Clock::now();
  bool got_endpoint = false;
  while (ms_since(start) < cfg_.spawn_timeout_ms) {
    if (try_reap(pid)) {
      std::remove(ep_file.c_str());
      throw NetError(NetError::Kind::kSystem,
                     "boardd worker (slot " + std::to_string(w.slot) +
                         ") exited before publishing its endpoint");
    }
    std::ifstream in(ep_file);
    if (in) {
      std::string spec;
      std::getline(in, spec);
      if (!spec.empty()) {
        ep = Endpoint::parse(spec);
        got_endpoint = true;
        break;
      }
    }
    ::usleep(2000);
  }
  if (!got_endpoint) {
    reap_with_grace(pid, 100.0);
    std::remove(ep_file.c_str());
    throw NetError(NetError::Kind::kTimeout,
                   "boardd worker (slot " + std::to_string(w.slot) +
                       ") did not publish an endpoint within " +
                       std::to_string(cfg_.spawn_timeout_ms) + "ms");
  }
  std::remove(ep_file.c_str());

  std::shared_ptr<RemoteBoard> board;
  try {
    board = std::make_shared<RemoteBoard>(w.slot, ep, cfg_.remote);
  } catch (...) {
    reap_with_grace(pid, 100.0);
    throw;
  }

  w.pid = pid;
  w.board = std::move(board);
  router_.add_board(w.board);
}

int Supervisor::add_worker(WorkerSpec spec) {
  util::LockGuard lock(workers_mutex_);
  auto w = std::make_unique<Worker>();
  w->slot = next_slot_++;
  w->spec = std::move(spec);
  if (w->spec.name.empty()) w->spec.name = "worker" + std::to_string(w->slot);
  spawn_locked(*w);
  const int slot = w->slot;
  workers_.push_back(std::move(w));
  return slot;
}

void Supervisor::detach_locked(Worker& w) {
  router_.remove_board(w.slot);
  if (w.board) {
    w.board->shutdown();
    w.board.reset();
  }
  if (w.pid > 0) {
    reap_with_grace(w.pid, 200.0);
    w.pid = -1;
  }
}

void Supervisor::remove_worker(int slot) {
  util::LockGuard lock(workers_mutex_);
  for (auto it = workers_.begin(); it != workers_.end(); ++it) {
    if ((*it)->slot != slot) continue;
    // Detach first: queued work on this board migrates to the survivors
    // before the process goes away. Then SIGTERM (boardd treats it as an
    // orderly stop), escalating to SIGKILL.
    (*it)->want_alive = false;
    detach_locked(**it);
    workers_.erase(it);
    return;
  }
}

void Supervisor::start() {
  if (monitoring_.exchange(true)) return;
  stopping_.store(false, std::memory_order_release);
  monitor_ = std::thread([this] { monitor_loop(); });
}

void Supervisor::stop() {
  stopping_.store(true, std::memory_order_release);
  if (monitor_.joinable()) monitor_.join();
  monitoring_.store(false, std::memory_order_release);

  util::LockGuard lock(workers_mutex_);
  for (auto& w : workers_) {
    w->want_alive = false;
    detach_locked(*w);
  }
  workers_.clear();
}

void Supervisor::monitor_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    {
      util::LockGuard lock(workers_mutex_);
      for (auto& wp : workers_) {
        Worker& w = *wp;
        if (!w.want_alive) continue;

        if (w.board) {
          const bool process_gone = w.pid > 0 && try_reap(w.pid);
          if (process_gone) w.pid = -1;
          // Restart on a dead process or a dead transport — NOT on an
          // injected fault, which is a health experiment the tests own.
          if (process_gone || w.board->dead()) {
            detach_locked(w);
            w.backoff_ms = w.backoff_ms <= 0.0
                               ? cfg_.restart_backoff_initial_ms
                               : std::min(w.backoff_ms * 2.0,
                                          cfg_.restart_backoff_max_ms);
            w.next_attempt =
                Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double, std::milli>(
                                       w.backoff_ms));
          }
        }

        if (!w.board && Clock::now() >= w.next_attempt) {
          try {
            spawn_locked(w);
            ++w.restarts;
            ++restarts_;
            w.backoff_ms = 0.0;
          } catch (const NetError&) {
            w.backoff_ms =
                std::min(std::max(w.backoff_ms * 2.0,
                                  cfg_.restart_backoff_initial_ms),
                         cfg_.restart_backoff_max_ms);
            w.next_attempt =
                Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double, std::milli>(
                                       w.backoff_ms));
          }
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        cfg_.poll_interval_ms));
  }
}

pid_t Supervisor::worker_pid(int slot) const {
  util::LockGuard lock(workers_mutex_);
  for (const auto& w : workers_) {
    if (w->slot == slot) return w->pid;
  }
  return -1;
}

std::shared_ptr<RemoteBoard> Supervisor::worker_board(int slot) const {
  util::LockGuard lock(workers_mutex_);
  for (const auto& w : workers_) {
    if (w->slot == slot) return w->board;
  }
  return nullptr;
}

std::size_t Supervisor::num_workers() const {
  util::LockGuard lock(workers_mutex_);
  return workers_.size();
}

Supervisor::Stats Supervisor::stats() const {
  util::LockGuard lock(workers_mutex_);
  Stats s;
  s.restarts = restarts_;
  for (const auto& w : workers_) {
    if (w->board && !w->board->dead()) ++s.alive;
  }
  return s;
}

}  // namespace seneca::serve::net
