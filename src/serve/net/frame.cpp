#include "serve/net/frame.hpp"

#include <array>
#include <bit>
#include <cstring>

namespace seneca::serve::net {

namespace {

// Little-endian scalar packing. memcpy keeps it alias-safe; byte order is
// made explicit by composing from shifts rather than trusting host order.
void put_le16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}
void put_le32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}
void put_le64(std::uint8_t* p, std::uint64_t v) {
  put_le32(p, static_cast<std::uint32_t>(v));
  put_le32(p + 4, static_cast<std::uint32_t>(v >> 32));
}
std::uint16_t get_le16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}
std::uint32_t get_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}
std::uint64_t get_le64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_le32(p)) |
         (static_cast<std::uint64_t>(get_le32(p + 4)) << 32);
}

struct Crc32Table {
  std::array<std::uint32_t, 256> t{};
  Crc32Table() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
  }
};

// Tensor bounds: a corrupt shape must be rejected before any allocation.
constexpr std::uint8_t kMaxTensorRank = 4;
constexpr std::int64_t kMaxTensorDim = 1 << 24;
constexpr std::int64_t kMaxTensorNumel = kMaxPayload;

}  // namespace

const char* to_string(FrameType t) {
  switch (t) {
    case FrameType::kHello: return "hello";
    case FrameType::kRequest: return "request";
    case FrameType::kResponse: return "response";
    case FrameType::kHeartbeat: return "heartbeat";
    case FrameType::kTelemetry: return "telemetry";
    case FrameType::kControl: return "control";
    case FrameType::kGoodbye: return "goodbye";
  }
  return "?";
}

bool known_frame_type(std::uint8_t raw) {
  return raw >= static_cast<std::uint8_t>(FrameType::kHello) &&
         raw <= static_cast<std::uint8_t>(FrameType::kGoodbye);
}

std::uint32_t crc32(const std::uint8_t* data, std::size_t n) {
  static const Crc32Table table;
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = table.t[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void encode_header(const FrameHeader& h, std::uint8_t* out) {
  put_le32(out, kMagic);
  out[4] = h.version;
  out[5] = static_cast<std::uint8_t>(h.type);
  put_le16(out + 6, 0);
  put_le32(out + 8, h.payload_len);
  put_le32(out + 12, h.payload_crc);
}

FrameHeader decode_header(const std::uint8_t* buf) {
  const std::uint32_t magic = get_le32(buf);
  if (magic != kMagic) {
    throw FrameError("frame: bad magic 0x" + std::to_string(magic));
  }
  FrameHeader h;
  h.version = buf[4];
  if (h.version != kWireVersion) {
    throw FrameError("frame: unsupported version " +
                     std::to_string(int{h.version}));
  }
  const std::uint8_t raw_type = buf[5];
  if (!known_frame_type(raw_type)) {
    throw FrameError("frame: unknown type " + std::to_string(int{raw_type}));
  }
  h.type = static_cast<FrameType>(raw_type);
  if (get_le16(buf + 6) != 0) {
    throw FrameError("frame: nonzero reserved field");
  }
  h.payload_len = get_le32(buf + 8);
  if (h.payload_len > kMaxPayload) {
    throw FrameError("frame: declared payload " +
                     std::to_string(h.payload_len) + " exceeds cap " +
                     std::to_string(kMaxPayload));
  }
  h.payload_crc = get_le32(buf + 12);
  return h;
}

std::vector<std::uint8_t> encode_frame(
    FrameType type, const std::vector<std::uint8_t>& payload) {
  if (payload.size() > kMaxPayload) {
    throw FrameError("frame: payload too large to encode");
  }
  FrameHeader h;
  h.type = type;
  h.payload_len = static_cast<std::uint32_t>(payload.size());
  h.payload_crc = crc32(payload.data(), payload.size());
  std::vector<std::uint8_t> out(kHeaderSize + payload.size());
  encode_header(h, out.data());
  if (!payload.empty()) {  // empty payloads (e.g. kGoodbye) have data()==null
    std::memcpy(out.data() + kHeaderSize, payload.data(), payload.size());
  }
  return out;
}

Frame decode_frame(const std::uint8_t* buf, std::size_t n) {
  if (n < kHeaderSize) {
    throw FrameError("frame: truncated header (" + std::to_string(n) +
                     " of " + std::to_string(kHeaderSize) + " bytes)");
  }
  const FrameHeader h = decode_header(buf);
  if (n != kHeaderSize + h.payload_len) {
    throw FrameError("frame: payload length mismatch (declared " +
                     std::to_string(h.payload_len) + ", have " +
                     std::to_string(n - kHeaderSize) + ")");
  }
  const std::uint8_t* payload = buf + kHeaderSize;
  if (crc32(payload, h.payload_len) != h.payload_crc) {
    throw FrameError("frame: payload CRC mismatch");
  }
  Frame f;
  f.type = h.type;
  f.payload.assign(payload, payload + h.payload_len);
  return f;
}

// ---------------------------------------------------------------- writer

void WireWriter::u16(std::uint16_t v) {
  std::uint8_t b[2];
  put_le16(b, v);
  buf_.insert(buf_.end(), b, b + 2);
}
void WireWriter::u32(std::uint32_t v) {
  std::uint8_t b[4];
  put_le32(b, v);
  buf_.insert(buf_.end(), b, b + 4);
}
void WireWriter::u64(std::uint64_t v) {
  std::uint8_t b[8];
  put_le64(b, v);
  buf_.insert(buf_.end(), b, b + 8);
}
void WireWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void WireWriter::str(const std::string& s) {
  if (s.size() > kMaxString) {
    throw FrameError("frame: string too long to encode");
  }
  u32(static_cast<std::uint32_t>(s.size()));
  bytes(s.data(), s.size());
}

void WireWriter::bytes(const void* data, std::size_t n) {
  if (n == 0) return;  // empty sources may hand us a null pointer
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

void WireWriter::tensor_i8(const tensor::TensorI8& t) {
  const tensor::Shape& shape = t.shape();
  if (shape.rank() > kMaxTensorRank) {
    throw FrameError("frame: tensor rank too high to encode");
  }
  u8(static_cast<std::uint8_t>(shape.rank()));
  for (std::size_t i = 0; i < shape.rank(); ++i) i64(shape[i]);
  bytes(t.data(), static_cast<std::size_t>(t.numel()));
}

// ---------------------------------------------------------------- reader

const std::uint8_t* WireReader::need(std::size_t n) {
  if (n_ - off_ < n) {
    throw FrameError("frame: truncated payload (need " + std::to_string(n) +
                     " bytes, have " + std::to_string(n_ - off_) + ")");
  }
  const std::uint8_t* p = p_ + off_;
  off_ += n;
  return p;
}

std::uint8_t WireReader::u8() { return *need(1); }
std::uint16_t WireReader::u16() { return get_le16(need(2)); }
std::uint32_t WireReader::u32() { return get_le32(need(4)); }
std::uint64_t WireReader::u64() { return get_le64(need(8)); }
double WireReader::f64() { return std::bit_cast<double>(u64()); }

std::string WireReader::str() {
  const std::uint32_t len = u32();
  if (len > WireWriter::kMaxString) {
    throw FrameError("frame: declared string length " + std::to_string(len) +
                     " exceeds cap");
  }
  const std::uint8_t* p = need(len);
  return std::string(reinterpret_cast<const char*>(p), len);
}

tensor::TensorI8 WireReader::tensor_i8() {
  const std::uint8_t rank = u8();
  if (rank > kMaxTensorRank) {
    throw FrameError("frame: tensor rank " + std::to_string(int{rank}) +
                     " exceeds cap");
  }
  std::array<std::int64_t, tensor::Shape::kMaxRank> dims{};
  std::int64_t numel = rank > 0 ? 1 : 0;
  for (std::uint8_t i = 0; i < rank; ++i) {
    const std::int64_t d = i64();
    if (d < 0 || d > kMaxTensorDim) {
      throw FrameError("frame: tensor dim out of range");
    }
    dims[i] = d;
    numel *= d;
    if (numel > kMaxTensorNumel) {
      throw FrameError("frame: tensor numel exceeds cap");
    }
  }
  const tensor::Shape shape(dims.data(), rank);
  // Bounds-check against the remaining bytes BEFORE allocating.
  if (remaining() < static_cast<std::size_t>(numel)) {
    throw FrameError("frame: truncated tensor body");
  }
  tensor::TensorI8 t(shape);
  if (numel > 0) {  // a zero-dim shape is legal; memcpy args must be non-null
    const std::uint8_t* p = need(static_cast<std::size_t>(numel));
    std::memcpy(t.data(), p, static_cast<std::size_t>(numel));
  }
  return t;
}

void WireReader::expect_end() const {
  if (off_ != n_) {
    throw FrameError("frame: " + std::to_string(n_ - off_) +
                     " trailing bytes after payload");
  }
}

// --------------------------------------------------------------- payloads

std::vector<std::uint8_t> WireHello::encode() const {
  if (rungs.size() > kMaxRungs) {
    throw FrameError("hello: too many rungs to encode");
  }
  WireWriter w;
  w.str(name);
  w.i32(rung_offset);
  w.u64(queue_capacity);
  w.u16(static_cast<std::uint16_t>(rungs.size()));
  for (const Rung& r : rungs) {
    w.str(r.model);
    w.f64(r.seconds_per_frame);
    w.f64(r.watts);
    w.f64(r.joules_per_frame);
  }
  return w.take();
}

WireHello WireHello::decode(const std::vector<std::uint8_t>& payload) {
  WireReader r(payload);
  WireHello h;
  h.name = r.str();
  h.rung_offset = r.i32();
  h.queue_capacity = r.u64();
  const std::uint16_t n = r.u16();
  if (n > kMaxRungs) {
    throw FrameError("hello: rung count exceeds cap");
  }
  h.rungs.resize(n);
  for (Rung& rung : h.rungs) {
    rung.model = r.str();
    rung.seconds_per_frame = r.f64();
    rung.watts = r.f64();
    rung.joules_per_frame = r.f64();
  }
  r.expect_end();
  return h;
}

std::vector<std::uint8_t> WireRequest::encode() const {
  WireWriter w;
  w.u64(corr_id);
  w.u8(static_cast<std::uint8_t>(priority));
  w.u32(tenant);
  w.f64(deadline_rel_ms);
  w.tensor_i8(input);
  return w.take();
}

WireRequest WireRequest::decode(const std::vector<std::uint8_t>& payload) {
  WireReader r(payload);
  WireRequest req;
  req.corr_id = r.u64();
  const std::uint8_t prio = r.u8();
  if (prio > static_cast<std::uint8_t>(Priority::kBatch)) {
    throw FrameError("request: bad priority " + std::to_string(int{prio}));
  }
  req.priority = static_cast<Priority>(prio);
  req.tenant = r.u32();
  req.deadline_rel_ms = r.f64();
  if (!(req.deadline_rel_ms >= 0.0) || req.deadline_rel_ms > 1e12) {
    throw FrameError("request: deadline out of range");  // also rejects NaN
  }
  req.input = r.tensor_i8();
  r.expect_end();
  return req;
}

std::vector<std::uint8_t> WireResponse::encode() const {
  WireWriter w;
  w.u64(corr_id);
  w.u8(static_cast<std::uint8_t>(status));
  w.u8(degraded ? 1 : 0);
  w.u32(batch_size);
  w.u64(served_seq);
  w.f64(queue_ms);
  w.f64(service_ms);
  w.f64(total_ms);
  w.str(model_used);
  w.u8(has_output ? 1 : 0);
  if (has_output) w.tensor_i8(output);
  return w.take();
}

WireResponse WireResponse::decode(const std::vector<std::uint8_t>& payload) {
  WireReader r(payload);
  WireResponse resp;
  resp.corr_id = r.u64();
  const std::uint8_t status = r.u8();
  if (status > static_cast<std::uint8_t>(Status::kMigrated)) {
    throw FrameError("response: bad status " + std::to_string(int{status}));
  }
  resp.status = static_cast<Status>(status);
  const std::uint8_t degraded = r.u8();
  if (degraded > 1) throw FrameError("response: bad degraded flag");
  resp.degraded = degraded != 0;
  resp.batch_size = r.u32();
  resp.served_seq = r.u64();
  resp.queue_ms = r.f64();
  resp.service_ms = r.f64();
  resp.total_ms = r.f64();
  resp.model_used = r.str();
  const std::uint8_t has_output = r.u8();
  if (has_output > 1) throw FrameError("response: bad output flag");
  resp.has_output = has_output != 0;
  if (resp.has_output) resp.output = r.tensor_i8();
  r.expect_end();
  return resp;
}

std::vector<std::uint8_t> WireHeartbeat::encode() const {
  WireWriter w;
  w.u64(seq);
  return w.take();
}

WireHeartbeat WireHeartbeat::decode(const std::vector<std::uint8_t>& payload) {
  WireReader r(payload);
  WireHeartbeat hb;
  hb.seq = r.u64();
  r.expect_end();
  return hb;
}

std::vector<std::uint8_t> WireTelemetry::encode() const {
  if (rungs.size() > WireHello::kMaxRungs) {
    throw FrameError("telemetry: too many rungs to encode");
  }
  WireWriter w;
  w.u64(seq);
  w.u64(submitted);
  w.u64(served);
  w.u64(rejected);
  w.u64(expired);
  w.u64(errors);
  w.u64(degraded);
  w.u64(migrated);
  w.u32(queue_depth);
  w.i32(level);
  w.u8(fault ? 1 : 0);
  w.u8(runner_saturated ? 1 : 0);
  w.f64(ewma_latency_ms);
  w.u64(frames_served);
  w.f64(energy_joules);
  w.f64(busy_seconds);
  w.u16(static_cast<std::uint16_t>(rungs.size()));
  for (const Rung& r : rungs) {
    w.f64(r.seconds_per_frame);
    w.f64(r.joules_per_frame);
    w.f64(r.occupancy);
  }
  return w.take();
}

WireTelemetry WireTelemetry::decode(const std::vector<std::uint8_t>& payload) {
  WireReader r(payload);
  WireTelemetry t;
  t.seq = r.u64();
  t.submitted = r.u64();
  t.served = r.u64();
  t.rejected = r.u64();
  t.expired = r.u64();
  t.errors = r.u64();
  t.degraded = r.u64();
  t.migrated = r.u64();
  t.queue_depth = r.u32();
  t.level = r.i32();
  const std::uint8_t fault = r.u8();
  if (fault > 1) throw FrameError("telemetry: bad fault flag");
  t.fault = fault != 0;
  const std::uint8_t sat = r.u8();
  if (sat > 1) throw FrameError("telemetry: bad saturation flag");
  t.runner_saturated = sat != 0;
  t.ewma_latency_ms = r.f64();
  t.frames_served = r.u64();
  t.energy_joules = r.f64();
  t.busy_seconds = r.f64();
  const std::uint16_t n = r.u16();
  if (n > WireHello::kMaxRungs) {
    throw FrameError("telemetry: rung count exceeds cap");
  }
  t.rungs.resize(n);
  for (Rung& rung : t.rungs) {
    rung.seconds_per_frame = r.f64();
    rung.joules_per_frame = r.f64();
    rung.occupancy = r.f64();
  }
  r.expect_end();
  return t;
}

std::vector<std::uint8_t> WireControl::encode() const {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(op));
  return w.take();
}

WireControl WireControl::decode(const std::vector<std::uint8_t>& payload) {
  WireReader r(payload);
  const std::uint8_t raw = r.u8();
  if (raw < static_cast<std::uint8_t>(Op::kEvictQueued) ||
      raw > static_cast<std::uint8_t>(Op::kShutdown)) {
    throw FrameError("control: unknown op " + std::to_string(int{raw}));
  }
  WireControl c;
  c.op = static_cast<Op>(raw);
  r.expect_end();
  return c;
}

}  // namespace seneca::serve::net
