#include "serve/net/remote_board.hpp"

#include <chrono>
#include <utility>

namespace seneca::serve::net {

namespace {

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

RemoteBoard::Handshake RemoteBoard::connect_handshake(
    const Endpoint& endpoint, const RemoteBoardConfig& cfg) {
  Handshake hs;
  hs.sock = Socket::connect(endpoint, cfg.connect_timeout_ms);
  Frame f = hs.sock.read_frame(cfg.io_timeout_ms);
  if (f.type != FrameType::kHello) {
    throw FrameError("RemoteBoard: expected kHello, got " +
                     std::string(to_string(f.type)));
  }
  hs.hello = WireHello::decode(f.payload);
  return hs;
}

RemoteBoard::RemoteBoard(int id, const Endpoint& endpoint,
                         RemoteBoardConfig cfg)
    : RemoteBoard(id, endpoint, cfg, connect_handshake(endpoint, cfg)) {}

RemoteBoard::RemoteBoard(int id, const Endpoint& endpoint,
                         RemoteBoardConfig cfg, Handshake hs)
    : Board(id, hs.hello.name),
      cfg_(cfg),
      endpoint_(endpoint),
      queue_capacity_(static_cast<std::size_t>(hs.hello.queue_capacity)),
      rung_offset_(hs.hello.rung_offset),
      sock_(std::move(hs.sock)) {
  hello_costs_.reserve(hs.hello.rungs.size());
  for (const auto& r : hs.hello.rungs) {
    hello_costs_.push_back(
        {r.model, r.seconds_per_frame, r.watts, r.joules_per_frame});
  }
  {
    // The staleness clock starts at connect: a worker that never answers a
    // single heartbeat turns faulted after miss_limit intervals.
    util::LockGuard lock(telemetry_mutex_);
    telemetry_at_ = Clock::now();
  }
  reader_ = std::thread([this] { reader_loop(); });
  heartbeater_ = std::thread([this] { heartbeat_loop(); });
}

RemoteBoard::~RemoteBoard() { shutdown(); }

bool RemoteBoard::write_frame_checked(
    FrameType type, const std::vector<std::uint8_t>& payload) {
  if (dead()) return false;
  try {
    util::LockGuard lock(write_mutex_);
    sock_.write_frame(type, payload, cfg_.io_timeout_ms);
    return true;
  } catch (const NetError& e) {
    mark_dead(e.what());
    return false;
  }
}

void RemoteBoard::submit_async(Priority priority, tensor::TensorI8 input,
                               double deadline_ms, TenantId tenant,
                               DoneCallback on_done) {
  const auto now = Clock::now();
  const std::uint64_t corr =
      next_corr_.fetch_add(1, std::memory_order_relaxed);
  const auto fail_now = [&](DoneCallback done) {
    Response resp;
    resp.id = corr;
    resp.tenant = tenant;
    resp.status = Status::kError;
    done(std::move(resp));
  };
  if (dead()) {
    fail_now(std::move(on_done));
    return;
  }
  {
    util::LockGuard lock(pending_mutex_);
    pending_.emplace(corr, PendingRemote{std::move(on_done), tenant, now});
  }
  WireRequest wr;
  wr.corr_id = corr;
  wr.priority = priority;
  wr.tenant = tenant;
  wr.deadline_rel_ms = deadline_ms > 0.0 ? deadline_ms : 0.0;
  wr.input = std::move(input);
  if (!write_frame_checked(FrameType::kRequest, wr.encode())) {
    // mark_dead (inside the failed write) usually fails the pending entry
    // already; reclaim it only if we won the race.
    PendingRemote mine;
    bool have = false;
    {
      util::LockGuard lock(pending_mutex_);
      auto it = pending_.find(corr);
      if (it != pending_.end()) {
        mine = std::move(it->second);
        pending_.erase(it);
        have = true;
      }
    }
    if (have) fail_now(std::move(mine.done));
  }
}

void RemoteBoard::reader_loop() {
  while (!stopping_.load(std::memory_order_acquire) && !dead()) {
    Frame f;
    try {
      // Wake at heartbeat cadence to re-check the stop flag; actual frame
      // gaps are normal (an idle board only talks when beaten).
      f = sock_.read_frame(cfg_.heartbeat_interval_ms);
    } catch (const NetError& e) {
      if (e.kind() == NetError::Kind::kTimeout) continue;
      mark_dead(e.what());
      return;
    } catch (const FrameError& e) {
      // Protocol corruption: nothing downstream of this byte can be
      // trusted, so the connection is done.
      mark_dead(e.what());
      return;
    }
    try {
      switch (f.type) {
        case FrameType::kResponse:
          on_response(WireResponse::decode(f.payload));
          break;
        case FrameType::kTelemetry:
          on_telemetry(WireTelemetry::decode(f.payload));
          break;
        case FrameType::kGoodbye:
          mark_dead("worker said goodbye");
          return;
        default:
          // Unexpected-but-valid frame type for this direction; ignore.
          break;
      }
    } catch (const FrameError& e) {
      mark_dead(e.what());
      return;
    }
  }
}

void RemoteBoard::heartbeat_loop() {
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(cfg_.heartbeat_interval_ms));
  while (!stopping_.load(std::memory_order_acquire) && !dead()) {
    WireHeartbeat hb;
    hb.seq = heartbeat_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (!write_frame_checked(FrameType::kHeartbeat, hb.encode())) return;
    std::this_thread::sleep_for(interval);
  }
}

void RemoteBoard::on_response(const WireResponse& wr) {
  PendingRemote pending;
  {
    util::LockGuard lock(pending_mutex_);
    auto it = pending_.find(wr.corr_id);
    if (it == pending_.end()) return;  // duplicate or post-death response
    pending = std::move(it->second);
    pending_.erase(it);
  }
  Response resp;
  resp.id = wr.corr_id;
  resp.tenant = pending.tenant;
  resp.status = wr.status;
  resp.degraded = wr.degraded;
  resp.batch_size = wr.batch_size;
  resp.served_seq = wr.served_seq;
  resp.queue_ms = wr.queue_ms;
  resp.service_ms = wr.service_ms;
  resp.model_used = wr.model_used;
  if (wr.has_output) resp.output = wr.output;
  // Client-visible total includes the wire: measured here, not on the
  // worker (the worker's own total_ms rides in wr.total_ms if anyone wants
  // the board-local view).
  resp.total_ms = ms_between(pending.submitted_at, Clock::now());
  pending.done(std::move(resp));
}

void RemoteBoard::on_telemetry(WireTelemetry wt) {
  {
    util::LockGuard lock(telemetry_mutex_);
    telemetry_ = std::move(wt);
    telemetry_at_ = Clock::now();
    has_telemetry_ = true;
  }
  telemetry_cv_.notify_all();
}

void RemoteBoard::mark_dead(const std::string&) {
  if (dead_.exchange(true, std::memory_order_acq_rel)) return;
  std::vector<PendingRemote> orphans;
  {
    util::LockGuard lock(pending_mutex_);
    orphans.reserve(pending_.size());
    for (auto& [corr, p] : pending_) orphans.push_back(std::move(p));
    pending_.clear();
  }
  for (auto& p : orphans) {
    Response resp;
    resp.tenant = p.tenant;
    resp.status = Status::kError;
    resp.total_ms = ms_between(p.submitted_at, Clock::now());
    p.done(std::move(resp));
  }
  telemetry_cv_.notify_all();
}

bool RemoteBoard::telemetry_stale() const {
  util::LockGuard lock(telemetry_mutex_);
  const double age_ms = ms_between(telemetry_at_, Clock::now());
  return age_ms >
         cfg_.heartbeat_interval_ms * static_cast<double>(cfg_.miss_limit);
}

bool RemoteBoard::refresh(double timeout_ms) {
  if (dead()) return false;
  WireHeartbeat hb;
  hb.seq = heartbeat_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!write_frame_checked(FrameType::kHeartbeat, hb.encode())) return false;
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(timeout_ms));
  util::LockGuard lock(telemetry_mutex_);
  telemetry_cv_.wait_until(lock, deadline, [this, &hb]() REQUIRES(telemetry_mutex_) {
    return (has_telemetry_ && telemetry_.seq >= hb.seq) ||
           dead_.load(std::memory_order_acquire);
  });
  return has_telemetry_ && telemetry_.seq >= hb.seq;
}

std::size_t RemoteBoard::queue_depth() const {
  util::LockGuard lock(telemetry_mutex_);
  return telemetry_.queue_depth;
}

std::uint64_t RemoteBoard::inflight() const {
  util::LockGuard lock(pending_mutex_);
  return pending_.size();
}

int RemoteBoard::level() const {
  util::LockGuard lock(telemetry_mutex_);
  return telemetry_.level;
}

double RemoteBoard::ewma_latency_ms() const {
  util::LockGuard lock(telemetry_mutex_);
  return telemetry_.ewma_latency_ms;
}

RemoteBoard::RungCost RemoteBoard::rung_cost(int level) const {
  RungCost cost = hello_costs_[static_cast<std::size_t>(level)];
  util::LockGuard lock(telemetry_mutex_);
  // Telemetry carries the worker's *effective* per-rung costs (DES table
  // or online-repriced, per the worker's config) — prefer them once seen.
  const auto idx = static_cast<std::size_t>(level);
  if (has_telemetry_ && idx < telemetry_.rungs.size()) {
    cost.seconds_per_frame = telemetry_.rungs[idx].seconds_per_frame;
    cost.joules_per_frame = telemetry_.rungs[idx].joules_per_frame;
  }
  return cost;
}

void RemoteBoard::inject_fault(bool on) {
  WireControl ctl;
  ctl.op = on ? WireControl::Op::kFaultOn : WireControl::Op::kFaultOff;
  write_frame_checked(FrameType::kControl, ctl.encode());
}

bool RemoteBoard::fault_injected() const {
  if (dead()) return true;
  if (telemetry_stale()) return true;
  util::LockGuard lock(telemetry_mutex_);
  return telemetry_.fault;
}

bool RemoteBoard::runner_saturated() const {
  util::LockGuard lock(telemetry_mutex_);
  return telemetry_.runner_saturated;
}

std::size_t RemoteBoard::evict_queued() {
  WireControl ctl;
  ctl.op = WireControl::Op::kEvictQueued;
  write_frame_checked(FrameType::kControl, ctl.encode());
  return 0;  // eviction responses stream back asynchronously as kMigrated
}

double RemoteBoard::energy_joules() const {
  util::LockGuard lock(telemetry_mutex_);
  return telemetry_.energy_joules;
}

double RemoteBoard::busy_seconds() const {
  util::LockGuard lock(telemetry_mutex_);
  return telemetry_.busy_seconds;
}

std::uint64_t RemoteBoard::frames_served() const {
  util::LockGuard lock(telemetry_mutex_);
  return telemetry_.frames_served;
}

MetricsSnapshot RemoteBoard::metrics() const {
  util::LockGuard lock(telemetry_mutex_);
  MetricsSnapshot s;
  s.submitted = telemetry_.submitted;
  s.served = telemetry_.served;
  s.rejected = telemetry_.rejected;
  s.expired = telemetry_.expired;
  s.errors = telemetry_.errors;
  s.degraded = telemetry_.degraded;
  s.migrated = telemetry_.migrated;
  s.queue_depth = telemetry_.queue_depth;
  return s;
}

void RemoteBoard::shutdown() {
  // Serialized: concurrent shutdowns must not race the thread joins.
  util::LockGuard lock(shutdown_mutex_);
  if (!stopping_.exchange(true, std::memory_order_acq_rel)) {
    // Best-effort orderly close; the worker survives (it goes back to its
    // accept loop), only this attachment ends.
    write_frame_checked(FrameType::kGoodbye, {});
    sock_.shutdown_rw();
  }
  if (reader_.joinable()) reader_.join();
  if (heartbeater_.joinable()) heartbeater_.join();
  mark_dead("shutdown");
  sock_.close();
}

}  // namespace seneca::serve::net
