#pragma once
// Supervisor: the board babysitter. Forks/execs N seneca_boardd worker
// processes, attaches each to a ClusterRouter as a net::RemoteBoard, and
// keeps the fleet alive:
//
//   - spawn: fork/exec seneca_boardd with an --endpoint-file handshake
//     (the worker binds an ephemeral port and writes its actual endpoint;
//     the supervisor polls the file, connects, and router.add_board()s the
//     RemoteBoard under a stable per-slot board id);
//   - monitor: a thread reaps children (waitpid WNOHANG) and watches each
//     RemoteBoard's transport health (dead connection, stale telemetry);
//   - restart: a crashed or wedged worker is detached from the router
//     (detaching + the dead transport fail its outstanding requests with
//     kError/kMigrated, which the router migrates to surviving boards),
//     then re-spawned with exponential backoff and re-attached under the
//     same slot id — join/leave without draining the fleet;
//   - leave/join: add_worker and remove_worker are callable any time while
//     traffic flows.
//
// The supervisor does not own the router (callers typically stack-allocate
// both); it must be stopped or destroyed before the router dies.

#include <sys/types.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/cluster/router.hpp"
#include "serve/net/remote_board.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace seneca::serve::net {

/// What one worker process serves; rendered into seneca_boardd CLI flags.
struct WorkerSpec {
  std::vector<std::string> ladder = {"4M", "2M"};  // zoo rungs, best first
  int input = 32;             // model input resolution
  int workers = 2;            // VART worker threads per rung
  std::size_t queue_capacity = 32;
  int rung_offset = 0;        // partition mode: global index of ladder[0]
  bool online_reprice = false;
  std::string name;           // defaults to "worker<slot>"
  std::vector<std::string> extra_args;  // appended verbatim
};

struct SupervisorConfig {
  /// Path to the seneca_boardd binary (tests/benches use the build tree's
  /// SENECA_BOARDD_PATH compile definition).
  std::string boardd_path;
  /// Directory for endpoint files and unix sockets.
  std::string work_dir = "/tmp";
  Endpoint::Kind transport = Endpoint::Kind::kTcp;
  /// How long a freshly spawned worker gets to bind + write its endpoint
  /// file (includes building its model ladder, which dominates).
  double spawn_timeout_ms = 30000.0;
  double restart_backoff_initial_ms = 100.0;
  double restart_backoff_max_ms = 2000.0;
  /// Monitor cadence; crash-to-restart latency is bounded by this plus the
  /// backoff plus the spawn time.
  double poll_interval_ms = 10.0;
  RemoteBoardConfig remote;
};

class Supervisor {
 public:
  Supervisor(SupervisorConfig cfg, cluster::ClusterRouter& router);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Spawns a worker, waits for its endpoint, connects, attaches it to the
  /// router. Returns the slot id (also the RemoteBoard's board id), or
  /// throws on spawn/connect failure.
  int add_worker(WorkerSpec spec);

  /// Orderly leave: detach from the router (queued work migrates), then
  /// SIGTERM the worker (boardd treats it as stop), escalating to SIGKILL.
  void remove_worker(int slot);

  /// Starts the monitor thread (restarts crashed workers). Idempotent.
  void start();
  /// Stops monitoring and tears down every worker. Idempotent; the
  /// destructor calls it.
  void stop();

  pid_t worker_pid(int slot) const;
  std::shared_ptr<RemoteBoard> worker_board(int slot) const;
  std::size_t num_workers() const;

  struct Stats {
    std::uint64_t restarts = 0;  // successful restart cycles
    std::size_t alive = 0;       // workers currently attached and healthy
  };
  Stats stats() const;

 private:
  struct Worker {
    int slot = -1;
    WorkerSpec spec;
    pid_t pid = -1;
    int generation = 0;  // bumped per spawn; names endpoint files uniquely
    std::shared_ptr<RemoteBoard> board;
    bool want_alive = true;
    double backoff_ms = 0.0;
    Clock::time_point next_attempt{};
    std::uint64_t restarts = 0;
  };

  /// fork/exec + endpoint-file wait + connect. Fills pid/board; throws on
  /// failure (pid reaped).
  void spawn_locked(Worker& w) REQUIRES(workers_mutex_);
  pid_t exec_boardd(const Worker& w, const std::string& listen_spec,
                    const std::string& endpoint_file) const;
  std::string endpoint_file_for(const Worker& w) const;
  void monitor_loop();
  /// Detach a dead/wedged worker's board from the router and reap the
  /// process if it still runs.
  void detach_locked(Worker& w) REQUIRES(workers_mutex_);

  SupervisorConfig cfg_;
  cluster::ClusterRouter& router_;

  mutable util::Mutex workers_mutex_;
  std::vector<std::unique_ptr<Worker>> workers_ GUARDED_BY(workers_mutex_);
  int next_slot_ GUARDED_BY(workers_mutex_) = 0;
  std::uint64_t restarts_ GUARDED_BY(workers_mutex_) = 0;

  std::atomic<bool> monitoring_{false};
  std::atomic<bool> stopping_{false};
  std::thread monitor_;
};

}  // namespace seneca::serve::net
