#include "serve/net/socket.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <mutex>
#include <utility>

namespace seneca::serve::net {
namespace {

using SteadyClock = std::chrono::steady_clock;

[[noreturn]] void throw_errno(const char* op) {
  const int err = errno;
  if (err == EPIPE || err == ECONNRESET) {
    throw NetError(NetError::Kind::kClosed,
                   std::string(op) + ": peer closed (" + strerror(err) + ")");
  }
  throw NetError(NetError::Kind::kSystem,
                 std::string(op) + ": " + strerror(err));
}

void set_nonblocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  if (fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) throw_errno("fcntl(F_SETFL)");
}

void set_cloexec(int fd) {
  int flags = fcntl(fd, F_GETFD, 0);
  if (flags >= 0) fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

/// Milliseconds left until `deadline`; clamped at 0. A negative
/// `timeout_ms` at the API boundary means "no deadline" and is
/// represented by SteadyClock::time_point::max().
SteadyClock::time_point deadline_from(double timeout_ms) {
  if (timeout_ms < 0.0) return SteadyClock::time_point::max();
  return SteadyClock::now() +
         std::chrono::microseconds(
             static_cast<std::int64_t>(timeout_ms * 1000.0));
}

int poll_timeout_ms(SteadyClock::time_point deadline) {
  if (deadline == SteadyClock::time_point::max()) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - SteadyClock::now());
  // Round up to 1ms so a sub-millisecond remainder still polls instead of
  // spinning on a zero-timeout poll loop.
  if (left.count() <= 0) return 0;
  return static_cast<int>(left.count()) + 1;
}

/// poll() one fd for `events`, honouring the deadline and retrying EINTR.
/// Throws NetError{kTimeout} when the deadline elapses.
void poll_or_throw(int fd, short events, SteadyClock::time_point deadline,
                   const char* op) {
  for (;;) {
    if (deadline != SteadyClock::time_point::max() &&
        SteadyClock::now() >= deadline) {
      throw NetError(NetError::Kind::kTimeout,
                     std::string(op) + ": timed out");
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, poll_timeout_ms(deadline));
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    if (rc == 0) {
      throw NetError(NetError::Kind::kTimeout,
                     std::string(op) + ": timed out");
    }
    // POLLERR/POLLHUP: let the subsequent read/write surface the errno /
    // EOF; returning here is enough.
    return;
  }
}

sockaddr_un make_unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path)) {
    throw NetError(NetError::Kind::kSystem,
                   "unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in make_tcp_addr(const Endpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  if (inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
    throw NetError(NetError::Kind::kSystem,
                   "bad IPv4 address: " + ep.host);
  }
  return addr;
}

}  // namespace

void ignore_sigpipe() {
  static std::once_flag once;
  std::call_once(once, [] { ::signal(SIGPIPE, SIG_IGN); });
}

// ------------------------------------------------------------- Endpoint

Endpoint Endpoint::parse(const std::string& spec) {
  Endpoint ep;
  if (spec.rfind("unix:", 0) == 0) {
    ep.kind = Kind::kUnix;
    ep.path = spec.substr(5);
    if (ep.path.empty()) {
      throw std::invalid_argument("Endpoint: empty unix path in " + spec);
    }
    return ep;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= rest.size()) {
      throw std::invalid_argument("Endpoint: want tcp:host:port, got " + spec);
    }
    ep.kind = Kind::kTcp;
    ep.host = rest.substr(0, colon);
    const std::string port_s = rest.substr(colon + 1);
    long port = 0;
    for (char c : port_s) {
      if (c < '0' || c > '9') {
        throw std::invalid_argument("Endpoint: bad port in " + spec);
      }
      port = port * 10 + (c - '0');
      if (port > 65535) {
        throw std::invalid_argument("Endpoint: port out of range in " + spec);
      }
    }
    ep.port = static_cast<std::uint16_t>(port);
    return ep;
  }
  throw std::invalid_argument("Endpoint: want tcp:... or unix:..., got " +
                              spec);
}

std::string Endpoint::to_string() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

// --------------------------------------------------------------- Socket

Socket::~Socket() { close(); }

Socket::Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_rw() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Socket Socket::adopt(int fd) {
  ignore_sigpipe();
  set_nonblocking(fd);
  set_cloexec(fd);
  Socket s;
  s.fd_ = fd;
  return s;
}

Socket Socket::connect(const Endpoint& ep, double timeout_ms) {
  ignore_sigpipe();
  const auto deadline = deadline_from(timeout_ms);
  const int domain = ep.kind == Endpoint::Kind::kUnix ? AF_UNIX : AF_INET;
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Socket s;
  s.fd_ = fd;  // owned from here on; close on any throw below
  set_nonblocking(fd);
  set_cloexec(fd);
  if (ep.kind == Endpoint::Kind::kTcp) {
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  int rc;
  if (ep.kind == Endpoint::Kind::kUnix) {
    const sockaddr_un addr = make_unix_addr(ep.path);
    do {
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
    } while (rc < 0 && errno == EINTR);
  } else {
    const sockaddr_in addr = make_tcp_addr(ep);
    do {
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
    } while (rc < 0 && errno == EINTR);
  }
  if (rc < 0) {
    if (errno != EINPROGRESS && errno != EAGAIN) throw_errno("connect");
    // Nonblocking connect in flight: wait for writability, then check
    // SO_ERROR for the real outcome.
    poll_or_throw(fd, POLLOUT, deadline, "connect");
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
      throw_errno("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      errno = err;
      throw_errno("connect");
    }
  }
  return s;
}

void Socket::read_exact(void* buf, std::size_t n, double timeout_ms) {
  const auto deadline = deadline_from(timeout_ms);
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t rc = ::recv(fd_, p + got, n - got, 0);
    if (rc > 0) {
      got += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc == 0) {
      throw NetError(NetError::Kind::kClosed, "read: peer closed");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      poll_or_throw(fd_, POLLIN, deadline, "read");
      continue;
    }
    throw_errno("read");
  }
}

void Socket::write_all(const void* buf, std::size_t n, double timeout_ms) {
  const auto deadline = deadline_from(timeout_ms);
  const auto* p = static_cast<const std::uint8_t*>(buf);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t rc = ::send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        poll_or_throw(fd_, POLLOUT, deadline, "write");
        continue;
      }
      throw_errno("write");
    }
  }
}

void Socket::write_frame(FrameType type,
                         const std::vector<std::uint8_t>& payload,
                         double timeout_ms) {
  const std::vector<std::uint8_t> buf = encode_frame(type, payload);
  write_all(buf.data(), buf.size(), timeout_ms);
}

Frame Socket::read_frame(double timeout_ms) {
  // One deadline spans header + payload: a peer that sends the header and
  // stalls cannot hold the reader past timeout_ms.
  const auto deadline = deadline_from(timeout_ms);
  const auto budget_ms = [&]() -> double {
    if (deadline == SteadyClock::time_point::max()) return -1.0;
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::microseconds>(
                   deadline - SteadyClock::now())
                   .count()) /
           1000.0;
  };
  std::uint8_t header[kHeaderSize];
  read_exact(header, kHeaderSize, timeout_ms);
  const FrameHeader h = decode_header(header);
  Frame f;
  f.type = h.type;
  f.payload.resize(h.payload_len);
  if (h.payload_len > 0) {
    read_exact(f.payload.data(), f.payload.size(), budget_ms());
  }
  if (crc32(f.payload.data(), f.payload.size()) != h.payload_crc) {
    throw FrameError("frame: payload CRC mismatch");
  }
  return f;
}

// ------------------------------------------------------------- Listener

Listener::~Listener() { close(); }

Listener::Listener(Listener&& o) noexcept
    : fd_(o.fd_),
      local_(std::move(o.local_)),
      unlink_on_close_(o.unlink_on_close_) {
  o.fd_ = -1;
  o.unlink_on_close_ = false;
}

Listener& Listener::operator=(Listener&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    local_ = std::move(o.local_);
    unlink_on_close_ = o.unlink_on_close_;
    o.fd_ = -1;
    o.unlink_on_close_ = false;
  }
  return *this;
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    if (unlink_on_close_) ::unlink(local_.path.c_str());
    unlink_on_close_ = false;
  }
}

Listener Listener::bind(const Endpoint& ep) {
  ignore_sigpipe();
  const int domain = ep.kind == Endpoint::Kind::kUnix ? AF_UNIX : AF_INET;
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Listener l;
  l.fd_ = fd;
  l.local_ = ep;
  set_nonblocking(fd);
  set_cloexec(fd);

  if (ep.kind == Endpoint::Kind::kUnix) {
    ::unlink(ep.path.c_str());  // stale socket file from a crashed boardd
    const sockaddr_un addr = make_unix_addr(ep.path);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
        0) {
      throw_errno("bind");
    }
    l.unlink_on_close_ = true;
  } else {
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    const sockaddr_in addr = make_tcp_addr(ep);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
        0) {
      throw_errno("bind");
    }
    // Report the kernel-chosen port for ephemeral (port 0) binds — the
    // boardd handshake writes this to its --endpoint-file.
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      l.local_.port = ntohs(bound.sin_port);
    }
  }
  if (::listen(fd, 16) < 0) throw_errno("listen");
  return l;
}

Socket Listener::accept(double timeout_ms) {
  const auto deadline = deadline_from(timeout_ms);
  for (;;) {
    const int cfd = ::accept(fd_, nullptr, nullptr);
    if (cfd >= 0) {
      if (local_.kind == Endpoint::Kind::kTcp) {
        int one = 1;
        ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      }
      return Socket::adopt(cfd);
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      poll_or_throw(fd_, POLLIN, deadline, "accept");
      continue;
    }
    throw_errno("accept");
  }
}

}  // namespace seneca::serve::net
