#pragma once
// BoardDaemon: the serving core of the seneca_boardd worker process. Wraps
// one BoardSim-backed InferenceServer behind a blocking SENECA-Wire accept
// loop:
//
//   router ──connect──▶ [accept] ──▶ kHello
//          ──kRequest──▶ submit_async ──(completion cb)──▶ kResponse
//          ──kHeartbeat─▶ kTelemetry (live stats + effective rung costs)
//          ──kControl───▶ evict_queued / fault on,off / shutdown
//          ──kGoodbye───▶ back to [accept] (worker survives detachment)
//
// One attached router at a time (a board has one upstream); responses are
// written from the server's completion threads, serialized by a per-
// connection write mutex. A dropped connection strands nothing: pending
// completions notice the dead connection and drop their writes, and the
// daemon returns to accept for the supervisor's reconnect.
//
// The class is embeddable (tests run it on a thread in-process, the
// seneca_boardd binary wraps it behind CLI flags + SIGTERM handling).

#include <atomic>
#include <memory>

#include "serve/cluster/board.hpp"
#include "serve/net/frame.hpp"
#include "serve/net/socket.hpp"
#include "util/mutex.hpp"

namespace seneca::serve::net {

struct BoardDaemonConfig {
  cluster::BoardConfig board;
  /// Endpoint to bind. tcp port 0 binds ephemeral; endpoint() reports the
  /// resolved port (the --endpoint-file handshake hinges on this).
  Endpoint listen;
  /// Per-frame write deadline towards the router.
  double io_timeout_ms = 2000.0;
  /// Cadence at which blocking accept/read wake up to check stop().
  double poll_ms = 200.0;
};

class BoardDaemon {
 public:
  /// Binds the listener and constructs the board; throws on either failing.
  explicit BoardDaemon(BoardDaemonConfig cfg);
  ~BoardDaemon();

  BoardDaemon(const BoardDaemon&) = delete;
  BoardDaemon& operator=(const BoardDaemon&) = delete;

  /// The bound endpoint (ephemeral tcp port resolved).
  const Endpoint& endpoint() const { return listener_.local_endpoint(); }

  /// Blocking accept/serve loop; returns after stop() (or a kShutdown
  /// control frame). Callable once.
  void run();

  /// Signal-safe request to exit run(): sets a flag the loops poll. The
  /// board itself shuts down when the daemon is destroyed.
  void stop() { stopping_.store(true, std::memory_order_release); }
  bool stopping() const { return stopping_.load(std::memory_order_acquire); }

  cluster::BoardSim& board() { return *board_; }

 private:
  /// One attached router connection; shared with in-flight completion
  /// callbacks, which outlive the connection when the router vanishes.
  struct Conn {
    Socket sock;
    util::Mutex write_mutex;
    std::atomic<bool> alive{true};
    double io_timeout_ms = 0.0;

    /// Serialized best-effort frame write; marks the connection dead on
    /// any transport error (completion callbacks then drop silently).
    void write(FrameType type, const std::vector<std::uint8_t>& payload);
  };

  void serve_connection(const std::shared_ptr<Conn>& conn);
  void handle_request(const std::shared_ptr<Conn>& conn, WireRequest wr);
  void handle_heartbeat(const std::shared_ptr<Conn>& conn,
                        const WireHeartbeat& hb);
  /// True = keep this connection; false = orderly detach (kGoodbye).
  bool handle_control(const std::shared_ptr<Conn>& conn,
                      const WireControl& ctl);
  std::vector<std::uint8_t> hello_payload() const;
  std::vector<std::uint8_t> telemetry_payload(std::uint64_t seq) const;

  BoardDaemonConfig cfg_;
  Listener listener_;
  std::unique_ptr<cluster::BoardSim> board_;
  std::atomic<bool> stopping_{false};
};

}  // namespace seneca::serve::net
