#include "serve/net/boardd.hpp"

#include <utility>

namespace seneca::serve::net {

void BoardDaemon::Conn::write(FrameType type,
                              const std::vector<std::uint8_t>& payload) {
  if (!alive.load(std::memory_order_acquire)) return;
  try {
    util::LockGuard lock(write_mutex);
    sock.write_frame(type, payload, io_timeout_ms);
  } catch (const NetError&) {
    // Router gone (or wedged past the write deadline): drop this and every
    // later write on the connection; the accept loop takes over.
    alive.store(false, std::memory_order_release);
  }
}

BoardDaemon::BoardDaemon(BoardDaemonConfig cfg)
    : cfg_(std::move(cfg)), listener_(Listener::bind(cfg_.listen)) {
  board_ = std::make_unique<cluster::BoardSim>(0, cfg_.board);
}

BoardDaemon::~BoardDaemon() {
  stop();
  board_->shutdown();
}

std::vector<std::uint8_t> BoardDaemon::hello_payload() const {
  WireHello hello;
  hello.name = board_->name();
  hello.rung_offset = board_->rung_offset();
  hello.queue_capacity = board_->queue_capacity();
  for (const auto& c : board_->priced_costs()) {
    hello.rungs.push_back(
        {c.model, c.seconds_per_frame, c.watts, c.joules_per_frame});
  }
  return hello.encode();
}

std::vector<std::uint8_t> BoardDaemon::telemetry_payload(
    std::uint64_t seq) const {
  const MetricsSnapshot m = board_->metrics();
  WireTelemetry t;
  t.seq = seq;
  t.submitted = m.submitted;
  t.served = m.served;
  t.rejected = m.rejected;
  t.expired = m.expired;
  t.errors = m.errors;
  t.degraded = m.degraded;
  t.migrated = m.migrated;
  t.queue_depth = static_cast<std::uint32_t>(board_->queue_depth());
  t.level = board_->level();
  t.fault = board_->fault_injected();
  t.runner_saturated = board_->runner_saturated();
  t.ewma_latency_ms = board_->ewma_latency_ms();
  t.frames_served = board_->frames_served();
  t.energy_joules = board_->energy_joules();
  t.busy_seconds = board_->busy_seconds();
  for (std::size_t i = 0; i < board_->num_rungs(); ++i) {
    // rung_cost() is the board's EFFECTIVE cost view — online-repriced
    // when BoardConfig::online_reprice is set — which is exactly what the
    // router's energy-aware policy should route on.
    const cluster::RungCost c = board_->rung_cost(static_cast<int>(i));
    const cluster::RungObserved o = board_->observed(static_cast<int>(i));
    t.rungs.push_back({c.seconds_per_frame, c.joules_per_frame, o.occupancy});
  }
  return t.encode();
}

void BoardDaemon::handle_request(const std::shared_ptr<Conn>& conn,
                                 WireRequest wr) {
  const std::uint64_t corr = wr.corr_id;
  board_->submit_async(
      wr.priority, std::move(wr.input), wr.deadline_rel_ms, wr.tenant,
      [conn, corr](Response resp) {
        WireResponse out;
        out.corr_id = corr;
        out.status = resp.status;
        out.degraded = resp.degraded;
        out.batch_size = resp.batch_size;
        out.served_seq = resp.served_seq;
        out.queue_ms = resp.queue_ms;
        out.service_ms = resp.service_ms;
        out.total_ms = resp.total_ms;
        out.model_used = resp.model_used;
        if (resp.status == Status::kOk) {
          out.has_output = true;
          out.output = std::move(resp.output);
        }
        conn->write(FrameType::kResponse, out.encode());
      });
}

void BoardDaemon::handle_heartbeat(const std::shared_ptr<Conn>& conn,
                                   const WireHeartbeat& hb) {
  conn->write(FrameType::kTelemetry, telemetry_payload(hb.seq));
}

bool BoardDaemon::handle_control(const std::shared_ptr<Conn>& conn,
                                 const WireControl& ctl) {
  switch (ctl.op) {
    case WireControl::Op::kEvictQueued:
      // Evicted requests complete with kMigrated through the same
      // completion path as served ones — they stream back as kResponse
      // frames for the router to re-route.
      board_->evict_queued();
      return true;
    case WireControl::Op::kFaultOn:
      board_->inject_fault(true);
      return true;
    case WireControl::Op::kFaultOff:
      board_->inject_fault(false);
      return true;
    case WireControl::Op::kShutdown:
      conn->write(FrameType::kGoodbye, {});
      stop();
      return false;
  }
  return true;
}

void BoardDaemon::serve_connection(const std::shared_ptr<Conn>& conn) {
  conn->write(FrameType::kHello, hello_payload());
  while (!stopping() && conn->alive.load(std::memory_order_acquire)) {
    Frame f;
    try {
      f = conn->sock.read_frame(cfg_.poll_ms);
    } catch (const NetError& e) {
      if (e.kind() == NetError::Kind::kTimeout) continue;  // stop-flag poll
      return;  // router closed or transport died: back to accept
    } catch (const FrameError&) {
      // Mid-frame corruption from the one peer we have: the stream offset
      // is unrecoverable, drop the connection.
      return;
    }
    try {
      switch (f.type) {
        case FrameType::kRequest:
          handle_request(conn, WireRequest::decode(f.payload));
          break;
        case FrameType::kHeartbeat:
          handle_heartbeat(conn, WireHeartbeat::decode(f.payload));
          break;
        case FrameType::kControl:
          if (!handle_control(conn, WireControl::decode(f.payload))) return;
          break;
        case FrameType::kGoodbye:
          return;  // orderly detach; worker survives
        default:
          break;  // valid frame, wrong direction; ignore
      }
    } catch (const FrameError&) {
      return;  // malformed payload: drop the connection, never the process
    }
  }
}

void BoardDaemon::run() {
  while (!stopping()) {
    Socket sock;
    try {
      sock = listener_.accept(cfg_.poll_ms);
    } catch (const NetError& e) {
      if (e.kind() == NetError::Kind::kTimeout) continue;  // stop-flag poll
      if (stopping()) return;
      continue;  // transient accept failure (e.g. EMFILE); keep serving
    }
    auto conn = std::make_shared<Conn>();
    conn->sock = std::move(sock);
    conn->io_timeout_ms = cfg_.io_timeout_ms;
    serve_connection(conn);
    conn->alive.store(false, std::memory_order_release);
  }
}

}  // namespace seneca::serve::net
