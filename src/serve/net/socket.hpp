#pragma once
// Hardened blocking socket I/O for SENECA-Wire. Everything the framing
// layer needs from POSIX sockets, wrapped so the rest of the subsystem
// never touches a raw fd:
//   - TCP (127.0.0.1 loopback or routable) and Unix-domain endpoints,
//     selected by a string: "tcp:host:port" or "unix:/path/sock";
//   - SIGPIPE can never kill the process (send uses MSG_NOSIGNAL and
//     ignore_sigpipe() is called once per process as a belt-and-braces
//     for any path that still raises it);
//   - every read/write/accept/connect retries EINTR;
//   - every blocking operation takes a deadline enforced with poll(), so
//     a wedged peer stalls one call into NetError{kTimeout}, never hangs
//     the router (unit-tested with a deliberately stalled socket in
//     tests/serve_net_socket_test.cpp).
//
// Sockets are nonblocking internally; the public API is blocking-with-
// deadline. A Socket is movable, not copyable, and closes on destruction.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/net/frame.hpp"

namespace seneca::serve::net {

/// Transport-level failure, distinct from FrameError (protocol-level).
class NetError : public std::runtime_error {
 public:
  enum class Kind : std::uint8_t {
    kClosed = 0,   // orderly EOF or ECONNRESET/EPIPE from the peer
    kTimeout = 1,  // deadline elapsed mid-operation
    kSystem = 2,   // any other errno
  };
  NetError(Kind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}
  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

/// Installs SIG_IGN for SIGPIPE once per process (idempotent,
/// thread-safe). Called by every Socket/Listener constructor.
void ignore_sigpipe();

/// Parsed endpoint. to_string() round-trips through parse().
struct Endpoint {
  enum class Kind : std::uint8_t { kTcp = 0, kUnix = 1 };
  Kind kind = Kind::kTcp;
  std::string host = "127.0.0.1";  // kTcp only
  std::uint16_t port = 0;          // kTcp only; 0 = ephemeral bind
  std::string path;                // kUnix only

  /// "tcp:127.0.0.1:7070" or "unix:/tmp/seneca.sock". Throws
  /// std::invalid_argument on anything else.
  static Endpoint parse(const std::string& spec);
  std::string to_string() const;
};

class Socket {
 public:
  Socket() = default;  // invalid socket (fd -1)
  ~Socket();
  Socket(Socket&& o) noexcept;
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connects with a deadline (nonblocking connect + poll + SO_ERROR).
  static Socket connect(const Endpoint& ep, double timeout_ms);

  bool valid() const { return fd_ >= 0; }
  void close();
  /// ::shutdown(fd, SHUT_RDWR): wakes any thread blocked in poll() on this
  /// socket (read returns EOF, write fails) without racing the fd number
  /// the way close() from another thread would. No-op when invalid.
  void shutdown_rw();

  /// Reads exactly `n` bytes or throws (kClosed on EOF, kTimeout when the
  /// deadline passes first). The deadline covers the WHOLE read, not each
  /// chunk, so a peer trickling one byte per poll interval cannot extend
  /// it indefinitely.
  void read_exact(void* buf, std::size_t n, double timeout_ms);
  /// Writes all of `n` bytes or throws. Same whole-operation deadline.
  void write_all(const void* buf, std::size_t n, double timeout_ms);

  /// Frame-level conveniences over read_exact/write_all. read_frame
  /// validates header + CRC (FrameError) on top of transport errors.
  void write_frame(FrameType type, const std::vector<std::uint8_t>& payload,
                   double timeout_ms);
  Frame read_frame(double timeout_ms);

  int fd() const { return fd_; }

  /// Wraps an already-open fd (used by Listener::accept and tests).
  static Socket adopt(int fd);

 private:
  int fd_ = -1;
};

class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(Listener&& o) noexcept;
  Listener& operator=(Listener&& o) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds + listens. For tcp port 0 the kernel picks an ephemeral port;
  /// local_endpoint() reports the actual one. For unix endpoints a stale
  /// socket file at `path` is unlinked first.
  static Listener bind(const Endpoint& ep);

  /// Accepts one connection or throws NetError{kTimeout}. timeout_ms < 0
  /// blocks indefinitely (boardd's accept loop).
  Socket accept(double timeout_ms);

  const Endpoint& local_endpoint() const { return local_; }
  bool valid() const { return fd_ >= 0; }
  void close();
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  Endpoint local_;
  bool unlink_on_close_ = false;
};

}  // namespace seneca::serve::net
