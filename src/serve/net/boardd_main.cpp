// seneca_boardd: one simulated ZCU104 board behind a SENECA-Wire socket.
// The worker half of the distributed serving tier — a Supervisor fork/execs
// a fleet of these and a ClusterRouter routes to them over RemoteBoards.
//
//   ./seneca_boardd --listen tcp:127.0.0.1:0 --endpoint-file /tmp/b0.ep
//                   --ladder 4M,2M [--input 32] [--workers 2]
//                   [--queue-capacity 32] [--rung-offset 0]
//                   [--online-reprice] [--name worker0]
//
// With --listen tcp:...:0 the kernel picks the port; the resolved endpoint
// is published through --endpoint-file (write-to-temp + rename, so a reader
// never sees a partial write). SIGTERM/SIGINT request an orderly stop.

#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/workflow.hpp"
#include "serve/net/boardd.hpp"
#include "util/cli.hpp"

namespace {

using namespace seneca;

serve::net::BoardDaemon* g_daemon = nullptr;

void on_signal(int) {
  if (g_daemon != nullptr) g_daemon->stop();  // atomic store: signal-safe
}

std::vector<std::string> split_ladder(const std::string& spec) {
  std::vector<std::string> names;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) names.push_back(item);
  }
  if (names.empty()) {
    throw std::invalid_argument("--ladder needs at least one zoo model name");
  }
  return names;
}

/// Publish the endpoint atomically: a reader either sees nothing or the
/// complete line, never a torn write.
void publish_endpoint(const std::string& path, const std::string& spec) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw std::runtime_error("cannot write " + tmp);
    out << spec << "\n";
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("cannot rename " + tmp + " -> " + path);
  }
}

}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  const std::string listen = cli.get("listen", "tcp:127.0.0.1:0");
  const std::string endpoint_file = cli.get("endpoint-file", "");
  const std::string ladder_spec = cli.get("ladder", "4M,2M");
  const auto input = cli.get_int("input", 32);
  const int workers = static_cast<int>(cli.get_int("workers", 2));
  const auto capacity =
      static_cast<std::size_t>(cli.get_int("queue-capacity", 32));

  serve::net::BoardDaemonConfig cfg;
  cfg.listen = serve::net::Endpoint::parse(listen);
  cfg.board.name = cli.get("name", "boardd");
  cfg.board.rung_offset = static_cast<int>(cli.get_int("rung-offset", 0));
  cfg.board.online_reprice = cli.get_bool("online-reprice", false);

  std::fprintf(stderr, "[boardd] building ladder:");
  for (const auto& name : split_ladder(ladder_spec)) {
    std::fprintf(stderr, " %s", name.c_str());
    std::fflush(stderr);
    cfg.board.ladder.push_back(
        {name, core::build_timing_xmodel(name, dpu::DpuArch::b4096(), input),
         workers});
  }
  std::fprintf(stderr, " done\n");

  cfg.board.server.queue.capacity = capacity;
  cfg.board.server.batcher.max_batch_size = 4;
  cfg.board.server.batcher.max_wait_ms = 15.0;
  cfg.board.server.batcher.interactive_max_wait_ms = 0.0;
  cfg.board.server.batcher.interactive_max_batch_size = 1;
  cfg.board.server.degrade.queue_depth_high = 6;
  cfg.board.server.degrade.queue_depth_low = 2;
  cfg.board.server.degrade.min_dwell_ms = 25.0;

  serve::net::BoardDaemon daemon(std::move(cfg));
  g_daemon = &daemon;
  struct sigaction sa = {};
  sa.sa_handler = on_signal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  const std::string resolved = daemon.endpoint().to_string();
  if (!endpoint_file.empty()) publish_endpoint(endpoint_file, resolved);
  std::fprintf(stderr, "[boardd] %s serving on %s\n",
               daemon.board().name().c_str(), resolved.c_str());

  daemon.run();
  g_daemon = nullptr;
  std::fprintf(stderr, "[boardd] stopped\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "[boardd] fatal: %s\n", e.what());
  return 1;
}
