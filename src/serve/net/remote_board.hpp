#pragma once
// RemoteBoard: a socket-attached seneca_boardd worker process presented to
// ClusterRouter through the same cluster::Board interface an in-process
// BoardSim implements — the router routes over TCP or Unix-domain sockets
// exactly as it does in-process.
//
// Threading model (per RemoteBoard):
//   caller threads  — submit_async: register the pending callback, write a
//                     kRequest frame (serialized by write_mutex_);
//   reader thread   — blocks in read_frame; dispatches kResponse frames to
//                     their pending callbacks and folds kTelemetry frames
//                     into the cached board view the router's load/health
//                     probes read;
//   heartbeat thread— writes a kHeartbeat every heartbeat_interval_ms; the
//                     worker answers each with a kTelemetry frame.
//
// Failure semantics: any transport or protocol error marks the board dead;
// every pending request completes with Status::kError (producing no result
// twice is impossible — none arrived), and fault_injected() turns true so
// health-driven routing drains around it. Telemetry staleness (miss_limit
// heartbeat intervals without a kTelemetry) also reads as faulted: a wedged
// worker drains like a dead one even while its TCP connection lingers.

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/cluster/board.hpp"
#include "serve/net/frame.hpp"
#include "serve/net/socket.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace seneca::serve::net {

struct RemoteBoardConfig {
  double connect_timeout_ms = 2000.0;
  /// Per-frame write deadline and hello-read deadline. Individual request
  /// *responses* have no read deadline of their own (the board may be
  /// legitimately backlogged); a wedged worker is detected by telemetry
  /// staleness instead.
  double io_timeout_ms = 2000.0;
  double heartbeat_interval_ms = 20.0;
  /// Telemetry older than miss_limit * heartbeat_interval_ms marks the
  /// board faulted (wedged-worker detection).
  int miss_limit = 5;
};

class RemoteBoard : public cluster::Board {
 public:
  using RungCost = cluster::RungCost;

  /// Connects and performs the hello handshake (blocking, bounded by
  /// connect_timeout_ms + io_timeout_ms). Throws NetError/FrameError.
  RemoteBoard(int id, const Endpoint& endpoint, RemoteBoardConfig cfg = {});
  ~RemoteBoard() override;

  // ---- cluster::Board ----
  void submit_async(Priority priority, tensor::TensorI8 input,
                    double deadline_ms, TenantId tenant,
                    DoneCallback on_done) override;
  std::size_t queue_depth() const override;
  std::uint64_t inflight() const override;
  int level() const override;
  double ewma_latency_ms() const override;
  RungCost rung_cost(int level) const override;
  std::size_t num_rungs() const override { return hello_costs_.size(); }
  int rung_offset() const override { return rung_offset_; }
  void inject_fault(bool on) override;
  bool fault_injected() const override;
  bool runner_saturated() const override;
  std::size_t queue_capacity() const override { return queue_capacity_; }
  std::size_t evict_queued() override;
  double energy_joules() const override;
  double busy_seconds() const override;
  std::uint64_t frames_served() const override;
  MetricsSnapshot metrics() const override;
  void shutdown() override;

  // ---- transport extras ----
  const Endpoint& endpoint() const { return endpoint_; }
  bool dead() const { return dead_.load(std::memory_order_acquire); }
  /// Synchronous probe: sends one heartbeat and waits for its telemetry.
  /// Returns false on timeout or dead transport. Gives tests and benches a
  /// deterministic "snapshot now" instead of racing the heartbeat cadence.
  bool refresh(double timeout_ms);

 private:
  struct Handshake {
    Socket sock;
    WireHello hello;
  };
  RemoteBoard(int id, const Endpoint& endpoint, RemoteBoardConfig cfg,
              Handshake hs);
  static Handshake connect_handshake(const Endpoint& endpoint,
                                     const RemoteBoardConfig& cfg);

  struct PendingRemote {
    DoneCallback done;
    TenantId tenant = kDefaultTenant;
    Clock::time_point submitted_at{};
  };

  void reader_loop();
  void heartbeat_loop();
  void on_response(const WireResponse& wr);
  void on_telemetry(WireTelemetry wt);
  /// Marks dead and fails every pending request with kError. Idempotent.
  void mark_dead(const std::string& why);
  bool write_frame_checked(FrameType type,
                           const std::vector<std::uint8_t>& payload);
  bool telemetry_stale() const;

  const RemoteBoardConfig cfg_;
  const Endpoint endpoint_;
  std::vector<RungCost> hello_costs_;  // construction-time DES table
  std::size_t queue_capacity_ = 0;
  int rung_offset_ = 0;

  Socket sock_;
  util::Mutex write_mutex_;  // serializes all frame writes

  mutable util::DebugMutex pending_mutex_{"remote_board.pending"};
  std::unordered_map<std::uint64_t, PendingRemote> pending_
      GUARDED_BY(pending_mutex_);
  std::atomic<std::uint64_t> next_corr_{1};

  mutable util::Mutex telemetry_mutex_;
  util::CondVar telemetry_cv_;
  WireTelemetry telemetry_ GUARDED_BY(telemetry_mutex_);
  Clock::time_point telemetry_at_ GUARDED_BY(telemetry_mutex_){};
  bool has_telemetry_ GUARDED_BY(telemetry_mutex_) = false;

  std::atomic<std::uint64_t> heartbeat_seq_{0};
  std::atomic<bool> dead_{false};
  std::atomic<bool> stopping_{false};
  util::Mutex shutdown_mutex_;  // serializes shutdown's thread joins

  std::thread reader_;
  std::thread heartbeater_;
};

}  // namespace seneca::serve::net
