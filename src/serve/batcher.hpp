#pragma once
// Dynamic micro-batcher: pulls requests out of the admission queue and
// releases a batch on whichever trigger fires first — `max_batch_size`
// requests collected, or `max_wait_ms` elapsed since the batch opened.
//
// Batches are single-lane. The first popped request (interactive lane
// preferred, matching AdmissionQueue::pop) selects the lane; only same-lane
// requests join, so an interactive frame is never held hostage by a batch
// volume in the same dispatch. The wait window is per-lane: interactive
// defaults to 0 ms (dispatch immediately with whatever is already queued),
// batch traffic trades `max_wait_ms` of latency for larger batches. An
// interactive arrival preempts an open batch-lane window — the collected
// batch requests go back to the front of their lane and the interactive
// request is served first, so batch work only dispatches in
// interactive-free windows (best-effort: the batch lane has no latency
// guarantee under sustained interactive load).

#include <vector>

#include "serve/queue.hpp"

namespace seneca::serve {

struct BatcherConfig {
  std::size_t max_batch_size = 8;
  double max_wait_ms = 2.0;              // batch-lane window
  double interactive_max_wait_ms = 0.0;  // latency-sensitive lane window
  /// Interactive-lane size cap; 0 inherits max_batch_size. On hosts where
  /// batch members execute serially, a large interactive batch inflates the
  /// tail latency of its first members — cap it independently.
  std::size_t interactive_max_batch_size = 0;

  double wait_ms(Priority p) const {
    return p == Priority::kInteractive ? interactive_max_wait_ms : max_wait_ms;
  }
  std::size_t batch_limit(Priority p) const {
    if (p == Priority::kInteractive && interactive_max_batch_size > 0) {
      return interactive_max_batch_size;
    }
    return max_batch_size;
  }
};

class MicroBatcher {
 public:
  MicroBatcher(AdmissionQueue& queue, BatcherConfig cfg);

  /// Blocks until a batch is ready. Returns an empty vector once the queue
  /// is closed and fully drained (the shutdown signal for the scheduler).
  std::vector<Request> next_batch();

  const BatcherConfig& config() const { return cfg_; }

 private:
  AdmissionQueue& queue_;
  const BatcherConfig cfg_;
};

}  // namespace seneca::serve
