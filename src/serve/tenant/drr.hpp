#pragma once
// Deficit-round-robin fair lane: the per-lane request container behind
// AdmissionQueue once tenants exist. Each tenant gets its own FIFO; dequeue
// visits active tenants round-robin and serves up to `weight` requests per
// visit (classic DRR with unit request cost, quantum = weight). One
// tenant's storm therefore cannot starve another's deadline: a tenant with
// weight w is guaranteed w dequeues per full rotation no matter how deep
// its neighbours' backlogs are. With a single tenant the structure
// degenerates to the plain FIFO the two-lane queue always had.
//
// Not thread-safe: AdmissionQueue calls it under its own mutex.

#include <cstddef>
#include <deque>
#include <optional>
#include <vector>

#include "serve/request.hpp"

namespace seneca::serve::tenant {

class DrrLane {
 public:
  /// Enqueue at the tail of the request's tenant FIFO. The request's
  /// `weight` refreshes the tenant's DRR quantum.
  void push_back(Request r);

  /// Re-enqueue at the head of the request's tenant FIFO and make that
  /// tenant the next one visited — used by the batcher's preemption path,
  /// which hands requests back in reverse pop order to restore FIFO.
  void push_front(Request r);

  /// DRR dequeue; nullopt when empty.
  std::optional<Request> pop();

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// The queued request with the latest deadline (no deadline == infinitely
  /// late), or nullptr when empty. Victim probe for kEvictDeadline.
  const Request* slackest() const;

  /// Removes the exact queued request `target` points at (a pointer
  /// previously returned by slackest()). Returns the removed request.
  Request take(const Request* target);

  /// Removes every queued request with r.expired(now); appends them to
  /// `out`. Returns how many were swept.
  std::size_t sweep_expired(Clock::time_point now, std::vector<Request>& out);

  /// Number of distinct tenants with queued requests.
  std::size_t active_tenants() const { return active_.size(); }

 private:
  struct TenantQueue {
    std::deque<Request> fifo;
    std::uint32_t weight = 1;
    std::uint32_t credit = 0;  // remaining serves in the current visit
  };

  TenantQueue& tenant(TenantId id);
  void deactivate(TenantId id);

  // Tenant slots are append-only per lane lifetime (the set of tenants is
  // small and stable); `active_` holds ids with non-empty FIFOs in visit
  // order, front = next visited.
  std::vector<std::pair<TenantId, TenantQueue>> tenants_;
  std::deque<TenantId> active_;
  std::size_t size_ = 0;
};

}  // namespace seneca::serve::tenant
