#pragma once
// SENECA-Tenants: per-tenant SLO admission for the serving layer.
//
// Production traffic has tenants, not just lanes: the intraoperative CT
// stream of one clinic must not lose its deadline because a research batch
// job elsewhere floods the queue. This header owns the tenant model:
//
//   TokenBucket    — rate + burst admission throttle, refilled on the
//                    monotonic serve::Clock. A tenant whose bucket is empty
//                    is rejected *before* it can occupy queue capacity.
//   TenantConfig   — identity, bucket parameters, and the DRR weight the
//                    admission queue uses for weighted-fair dequeue across
//                    tenants within a lane (see tenant/drr.hpp).
//   TenantRegistry — thread-safe config/bucket/metrics store shared by the
//                    front door (InferenceServer or ClusterRouter) and
//                    every per-board server behind it. Exactly one layer
//                    consumes tokens (ServerConfig::tenant_throttle); the
//                    serving layer that completes a request records its
//                    per-tenant outcome and latency.
//
// Tenant 0 ("default") is always registered and unthrottled, so
// single-tenant callers keep working untouched.

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "serve/metrics.hpp"
#include "serve/request.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace seneca::serve::tenant {

/// Rate+burst admission throttle on the monotonic clock. Not thread-safe;
/// the registry serializes access. A `now` earlier than the last refill
/// (a clock that appears to run backwards, e.g. across a suspend fixup)
/// never mints tokens and never goes negative: refill is simply skipped.
class TokenBucket {
 public:
  /// `rate_per_s` tokens accrue per second up to `burst`. rate 0 means no
  /// refill (the initial burst is all the tenant ever gets); an infinite
  /// rate means unthrottled. The bucket starts full.
  TokenBucket(double rate_per_s, double burst, Clock::time_point now);

  static TokenBucket unlimited(Clock::time_point now) {
    return {std::numeric_limits<double>::infinity(), 1.0, now};
  }

  /// Consume one token at `now`; false when the bucket is empty.
  bool try_acquire(Clock::time_point now);

  /// Tokens available at `now` (after the refill `try_acquire` would do).
  double available(Clock::time_point now) const;

  double rate_per_s() const { return rate_per_s_; }
  double burst() const { return burst_; }

 private:
  void refill(Clock::time_point now);

  double rate_per_s_;
  double burst_;
  double tokens_;
  Clock::time_point last_refill_;
};

struct TenantConfig {
  TenantId id = kDefaultTenant;
  std::string name = "default";
  /// Token-bucket admission parameters. Defaults are unthrottled.
  double rate_per_s = std::numeric_limits<double>::infinity();
  double burst = 32.0;
  /// DRR quantum for weighted-fair dequeue within a lane: per round-robin
  /// visit a tenant may dequeue `weight` requests. Must be >= 1.
  std::uint32_t weight = 1;
};

/// Point-in-time per-tenant accounting, embedded in MetricsSnapshot.
/// (The struct itself lives in metrics.hpp so the snapshot type does not
/// depend on this header.)
using TenantSnapshot = serve::TenantSnapshot;

class TenantRegistry {
 public:
  /// Registers tenant 0 ("default", unthrottled, weight 1).
  TenantRegistry();
  explicit TenantRegistry(const std::vector<TenantConfig>& tenants);

  /// Registers a tenant; throws std::invalid_argument on a duplicate id,
  /// a zero weight, or a burst < 1 (such a bucket could never admit).
  void add(TenantConfig cfg);

  bool has(TenantId id) const;
  /// Registered tenant ids in registration order.
  std::vector<TenantId> ids() const;
  /// Tenant display name; "tenant-<id>" for unregistered ids.
  std::string name(TenantId id) const;
  /// DRR weight; 1 for unregistered ids.
  std::uint32_t weight(TenantId id) const;

  /// Token-bucket admission for one request at `now`. Unregistered tenants
  /// are always admitted (they ride the default class but keep their id for
  /// fair dequeue and metrics attribution).
  bool try_admit(TenantId id, Clock::time_point now);

  // ---- per-tenant accounting (called by the serving layer) ----
  void on_submitted(TenantId id);
  void on_throttled(TenantId id);  // bucket empty at the front door
  void on_rejected(TenantId id);
  void on_expired(TenantId id);
  void on_error(TenantId id);
  void on_served(TenantId id, double total_ms, bool degraded);

  std::vector<TenantSnapshot> snapshot() const;

 private:
  struct State {
    TenantConfig cfg;
    TokenBucket bucket;
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> throttled{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> expired{0};
    std::atomic<std::uint64_t> errors{0};
    std::atomic<std::uint64_t> served{0};
    std::atomic<std::uint64_t> degraded{0};
    LatencyHistogram latency;

    State(TenantConfig c, Clock::time_point now)
        : cfg(std::move(c)), bucket(cfg.rate_per_s, cfg.burst, now) {}
  };

  /// nullptr for unregistered ids. The returned pointer is stable for the
  /// registry's lifetime (states are never erased).
  State* find(TenantId id) const;
  State* find_locked(TenantId id) const REQUIRES(mutex_);

  mutable util::Mutex mutex_;
  // Registration order preserved for ids()/snapshot() output stability.
  std::vector<std::unique_ptr<State>> states_ GUARDED_BY(mutex_);
};

}  // namespace seneca::serve::tenant
