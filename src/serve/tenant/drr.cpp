#include "serve/tenant/drr.hpp"

#include <algorithm>

namespace seneca::serve::tenant {

DrrLane::TenantQueue& DrrLane::tenant(TenantId id) {
  for (auto& [tid, q] : tenants_) {
    if (tid == id) return q;
  }
  tenants_.emplace_back(id, TenantQueue{});
  return tenants_.back().second;
}

void DrrLane::deactivate(TenantId id) {
  const auto it = std::find(active_.begin(), active_.end(), id);
  if (it != active_.end()) active_.erase(it);
}

void DrrLane::push_back(Request r) {
  TenantQueue& q = tenant(r.tenant);
  q.weight = std::max<std::uint32_t>(1, r.weight);
  if (q.fifo.empty()) active_.push_back(r.tenant);
  q.fifo.push_back(std::move(r));
  ++size_;
}

void DrrLane::push_front(Request r) {
  TenantQueue& q = tenant(r.tenant);
  q.weight = std::max<std::uint32_t>(1, r.weight);
  const TenantId id = r.tenant;
  if (q.fifo.empty()) {
    active_.push_front(id);
  } else {
    // Already active: move to the front of the visit order so the restored
    // request is the next one popped (preemption must not reorder).
    deactivate(id);
    active_.push_front(id);
  }
  // The handed-back request had already been paid for by a credit; refund
  // it so the tenant's share of the round is unchanged.
  q.credit = std::min(q.credit + 1, q.weight);
  q.fifo.push_front(std::move(r));
  ++size_;
}

std::optional<Request> DrrLane::pop() {
  while (!active_.empty()) {
    const TenantId id = active_.front();
    TenantQueue& q = tenant(id);
    if (q.fifo.empty()) {  // defensive; active_ should track non-empty only
      q.credit = 0;
      active_.pop_front();
      continue;
    }
    if (q.credit == 0) q.credit = q.weight;  // new visit: grant the quantum
    Request r = std::move(q.fifo.front());
    q.fifo.pop_front();
    --q.credit;
    --size_;
    if (q.fifo.empty()) {
      // Leaving the rotation forfeits leftover credit: an idle tenant must
      // not bank serves against the future (standard DRR).
      q.credit = 0;
      active_.pop_front();
    } else if (q.credit == 0) {
      active_.pop_front();
      active_.push_back(id);  // quantum spent: rotate to the back
    }
    return r;
  }
  return std::nullopt;
}

const Request* DrrLane::slackest() const {
  const Request* victim = nullptr;
  for (const auto& [tid, q] : tenants_) {
    for (const Request& r : q.fifo) {
      if (victim == nullptr || r.deadline > victim->deadline) victim = &r;
    }
  }
  return victim;
}

Request DrrLane::take(const Request* target) {
  for (auto& [tid, q] : tenants_) {
    for (auto it = q.fifo.begin(); it != q.fifo.end(); ++it) {
      if (&*it == target) {
        Request r = std::move(*it);
        q.fifo.erase(it);
        --size_;
        if (q.fifo.empty()) {
          q.credit = 0;
          deactivate(tid);
        }
        return r;
      }
    }
  }
  // take() is only called with a pointer slackest() just returned under the
  // same queue lock, so this is unreachable; return a dummy to keep the
  // function total.
  return Request{};
}

std::size_t DrrLane::sweep_expired(Clock::time_point now,
                                   std::vector<Request>& out) {
  std::size_t swept = 0;
  for (auto& [tid, q] : tenants_) {
    for (auto it = q.fifo.begin(); it != q.fifo.end();) {
      if (it->expired(now)) {
        out.push_back(std::move(*it));
        it = q.fifo.erase(it);
        --size_;
        ++swept;
      } else {
        ++it;
      }
    }
    if (q.fifo.empty() && q.credit != 0) q.credit = 0;
    if (q.fifo.empty()) deactivate(tid);
  }
  return swept;
}

}  // namespace seneca::serve::tenant
