#include "serve/tenant/tenant.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

using seneca::util::LockGuard;

namespace seneca::serve::tenant {

TokenBucket::TokenBucket(double rate_per_s, double burst,
                         Clock::time_point now)
    : rate_per_s_(std::max(0.0, rate_per_s)),
      burst_(std::max(0.0, burst)),
      tokens_(burst_),
      last_refill_(now) {}

void TokenBucket::refill(Clock::time_point now) {
  if (now <= last_refill_) return;  // backwards/stalled clock mints nothing
  if (std::isinf(rate_per_s_)) {
    tokens_ = burst_;
  } else {
    const double elapsed_s =
        std::chrono::duration<double>(now - last_refill_).count();
    tokens_ = std::min(burst_, tokens_ + rate_per_s_ * elapsed_s);
  }
  last_refill_ = now;
}

bool TokenBucket::try_acquire(Clock::time_point now) {
  if (std::isinf(rate_per_s_)) return true;  // unthrottled fast path
  refill(now);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

double TokenBucket::available(Clock::time_point now) const {
  if (std::isinf(rate_per_s_)) return burst_;
  if (now <= last_refill_ || rate_per_s_ == 0.0) return tokens_;
  const double elapsed_s =
      std::chrono::duration<double>(now - last_refill_).count();
  return std::min(burst_, tokens_ + rate_per_s_ * elapsed_s);
}

TenantRegistry::TenantRegistry() {
  add(TenantConfig{});  // tenant 0, unthrottled, weight 1
}

TenantRegistry::TenantRegistry(const std::vector<TenantConfig>& tenants)
    : TenantRegistry() {
  for (const auto& cfg : tenants) {
    if (cfg.id == kDefaultTenant) continue;  // default is pre-registered
    add(cfg);
  }
}

void TenantRegistry::add(TenantConfig cfg) {
  if (cfg.weight == 0) {
    throw std::invalid_argument("TenantRegistry: zero DRR weight for \"" +
                                cfg.name + "\"");
  }
  if (cfg.burst < 1.0) {
    throw std::invalid_argument(
        "TenantRegistry: burst < 1 could never admit (\"" + cfg.name + "\")");
  }
  const auto now = Clock::now();
  LockGuard lock(mutex_);
  for (const auto& s : states_) {
    if (s->cfg.id == cfg.id) {
      throw std::invalid_argument("TenantRegistry: duplicate tenant id " +
                                  std::to_string(cfg.id));
    }
  }
  states_.push_back(std::make_unique<State>(std::move(cfg), now));
}

TenantRegistry::State* TenantRegistry::find_locked(TenantId id) const {
  for (const auto& s : states_) {
    if (s->cfg.id == id) return s.get();
  }
  return nullptr;
}

TenantRegistry::State* TenantRegistry::find(TenantId id) const {
  LockGuard lock(mutex_);
  return find_locked(id);
}

bool TenantRegistry::has(TenantId id) const { return find(id) != nullptr; }

std::vector<TenantId> TenantRegistry::ids() const {
  LockGuard lock(mutex_);
  std::vector<TenantId> out;
  out.reserve(states_.size());
  for (const auto& s : states_) out.push_back(s->cfg.id);
  return out;
}

std::string TenantRegistry::name(TenantId id) const {
  if (const State* s = find(id)) return s->cfg.name;
  return "tenant-" + std::to_string(id);
}

std::uint32_t TenantRegistry::weight(TenantId id) const {
  if (const State* s = find(id)) return s->cfg.weight;
  return 1;
}

bool TenantRegistry::try_admit(TenantId id, Clock::time_point now) {
  LockGuard lock(mutex_);  // buckets are registry-serialized
  State* s = find_locked(id);
  if (s == nullptr) return true;  // unregistered: no bucket to consume
  return s->bucket.try_acquire(now);
}

void TenantRegistry::on_submitted(TenantId id) {
  if (State* s = find(id)) {
    s->submitted.fetch_add(1, std::memory_order_relaxed);
  }
}

void TenantRegistry::on_throttled(TenantId id) {
  if (State* s = find(id)) {
    s->throttled.fetch_add(1, std::memory_order_relaxed);
  }
}

void TenantRegistry::on_rejected(TenantId id) {
  if (State* s = find(id)) {
    s->rejected.fetch_add(1, std::memory_order_relaxed);
  }
}

void TenantRegistry::on_expired(TenantId id) {
  if (State* s = find(id)) {
    s->expired.fetch_add(1, std::memory_order_relaxed);
  }
}

void TenantRegistry::on_error(TenantId id) {
  if (State* s = find(id)) {
    s->errors.fetch_add(1, std::memory_order_relaxed);
  }
}

void TenantRegistry::on_served(TenantId id, double total_ms, bool degraded) {
  if (State* s = find(id)) {
    s->served.fetch_add(1, std::memory_order_relaxed);
    if (degraded) s->degraded.fetch_add(1, std::memory_order_relaxed);
    s->latency.record(total_ms);
  }
}

std::vector<TenantSnapshot> TenantRegistry::snapshot() const {
  // Collect stable state pointers under the lock, read atomics outside it.
  std::vector<State*> states;
  {
    LockGuard lock(mutex_);
    states.reserve(states_.size());
    for (const auto& s : states_) states.push_back(s.get());
  }
  std::vector<TenantSnapshot> out;
  out.reserve(states.size());
  for (const State* s : states) {
    TenantSnapshot t;
    t.id = s->cfg.id;
    t.name = s->cfg.name;
    t.weight = s->cfg.weight;
    t.submitted = s->submitted.load(std::memory_order_relaxed);
    t.throttled = s->throttled.load(std::memory_order_relaxed);
    t.rejected = s->rejected.load(std::memory_order_relaxed);
    t.expired = s->expired.load(std::memory_order_relaxed);
    t.errors = s->errors.load(std::memory_order_relaxed);
    t.served = s->served.load(std::memory_order_relaxed);
    t.degraded = s->degraded.load(std::memory_order_relaxed);
    t.latency = s->latency.snapshot();
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace seneca::serve::tenant
