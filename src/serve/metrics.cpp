#include "serve/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace seneca::serve {

int LatencyHistogram::bucket_index(double ms) {
  if (!(ms > kLoMs)) return 0;
  const int idx =
      1 + static_cast<int>(std::floor(std::log(ms / kLoMs) / std::log(kRatio)));
  return std::clamp(idx, 0, kBuckets - 1);
}

double LatencyHistogram::bucket_upper_ms(int index) {
  return kLoMs * std::pow(kRatio, static_cast<double>(index));
}

void LatencyHistogram::record(double ms) {
  if (ms < 0.0) ms = 0.0;
  buckets_[static_cast<std::size_t>(bucket_index(ms))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ms_.fetch_add(ms, std::memory_order_relaxed);
  sum_sq_ms_.fetch_add(ms * ms, std::memory_order_relaxed);
  double seen = max_ms_.load(std::memory_order_relaxed);
  while (ms > seen &&
         !max_ms_.compare_exchange_weak(seen, ms, std::memory_order_relaxed)) {
  }
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot s;
  std::array<std::uint64_t, kBuckets> counts;
  for (int i = 0; i < kBuckets; ++i) {
    counts[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  if (s.count == 0) return s;
  const double sum = sum_ms_.load(std::memory_order_relaxed);
  const double sum_sq = sum_sq_ms_.load(std::memory_order_relaxed);
  const double n = static_cast<double>(s.count);
  s.mean_ms = sum / n;
  s.max_ms = max_ms_.load(std::memory_order_relaxed);
  s.stats.n = s.count;
  s.stats.mean = s.mean_ms;
  const double var =
      s.count > 1 ? std::max(0.0, (sum_sq - sum * sum / n) / (n - 1.0)) : 0.0;
  s.stats.stddev = std::sqrt(var);

  const auto quantile = [&](double q) {
    // Rank of the q-quantile among `count` samples (nearest-rank), then
    // interpolate linearly across the winning bucket's width.
    const double rank = q * (n - 1.0) + 1.0;
    double cum = 0.0;
    for (int i = 0; i < kBuckets; ++i) {
      const double c = static_cast<double>(counts[static_cast<std::size_t>(i)]);
      if (cum + c >= rank) {
        const double lo = i == 0 ? 0.0 : bucket_upper_ms(i - 1);
        const double hi = std::min(bucket_upper_ms(i), s.max_ms);
        const double frac = c > 0.0 ? (rank - cum) / c : 1.0;
        return lo + (std::max(hi, lo) - lo) * frac;
      }
      cum += c;
    }
    return s.max_ms;
  };
  s.p50_ms = quantile(0.50);
  s.p95_ms = quantile(0.95);
  s.p99_ms = quantile(0.99);
  return s;
}

double nearest_rank_quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double n = static_cast<double>(values.size());
  const auto rank = static_cast<std::size_t>(std::ceil(q * n));
  const std::size_t idx = std::clamp<std::size_t>(rank, 1, values.size()) - 1;
  return values[idx];
}

void ServeMetrics::on_served(Priority lane, double total_ms, bool degraded) {
  served_.fetch_add(1, std::memory_order_relaxed);
  if (degraded) degraded_.fetch_add(1, std::memory_order_relaxed);
  lanes_[static_cast<std::size_t>(lane)].record(total_ms);
}

void ServeMetrics::set_queue_depth(std::size_t depth) {
  queue_depth_.store(depth, std::memory_order_relaxed);
  std::size_t hw = queue_high_water_.load(std::memory_order_relaxed);
  while (depth > hw && !queue_high_water_.compare_exchange_weak(
                           hw, depth, std::memory_order_relaxed)) {
  }
}

void ServeMetrics::set_lane_depths(std::size_t interactive, std::size_t batch) {
  const std::size_t depths[2] = {interactive, batch};
  for (int lane = 0; lane < 2; ++lane) {
    lane_depth_[lane].store(depths[lane], std::memory_order_relaxed);
    std::size_t hw = lane_high_water_[lane].load(std::memory_order_relaxed);
    while (depths[lane] > hw &&
           !lane_high_water_[lane].compare_exchange_weak(
               hw, depths[lane], std::memory_order_relaxed)) {
    }
  }
}

MetricsSnapshot ServeMetrics::snapshot() const {
  MetricsSnapshot s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.served = served_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.migrated = migrated_.load(std::memory_order_relaxed);
  s.queue_depth = queue_depth_.load(std::memory_order_relaxed);
  s.queue_high_water = queue_high_water_.load(std::memory_order_relaxed);
  s.queue_depth_interactive = lane_depth_[0].load(std::memory_order_relaxed);
  s.queue_depth_batch = lane_depth_[1].load(std::memory_order_relaxed);
  s.queue_high_water_interactive =
      lane_high_water_[0].load(std::memory_order_relaxed);
  s.queue_high_water_batch =
      lane_high_water_[1].load(std::memory_order_relaxed);
  s.interactive = lanes_[0].snapshot();
  s.batch = lanes_[1].snapshot();
  return s;
}

std::string MetricsSnapshot::format() const {
  std::ostringstream os;
  os << "submitted=" << submitted << " admitted=" << admitted
     << " served=" << served << " rejected=" << rejected
     << " expired=" << expired << " errors=" << errors
     << " degraded=" << degraded << " migrated=" << migrated
     << " queue_depth=" << queue_depth << " high_water=" << queue_high_water
     << " depth_int=" << queue_depth_interactive
     << " depth_batch=" << queue_depth_batch
     << " hw_int=" << queue_high_water_interactive
     << " hw_batch=" << queue_high_water_batch
     << "\n";
  const auto line = [&](const std::string& name,
                        const LatencyHistogram::Snapshot& l) {
    os << "  " << name << ": n=" << l.count
       << " latency_ms=" << eval::format_stats(l.stats);
    os.setf(std::ios::fixed);
    os.precision(2);
    os << " p50=" << l.p50_ms << " p95=" << l.p95_ms << " p99=" << l.p99_ms
       << " max=" << l.max_ms << "\n";
  };
  line("interactive", interactive);
  line("batch", batch);
  for (const auto& t : tenants) {
    os << "  tenant " << t.name << " (id=" << t.id << " w=" << t.weight
       << "): submitted=" << t.submitted << " throttled=" << t.throttled
       << " served=" << t.served << " rejected=" << t.rejected
       << " expired=" << t.expired << " errors=" << t.errors
       << " degraded=" << t.degraded << "\n";
    line("  latency", t.latency);
  }
  return os.str();
}

}  // namespace seneca::serve
