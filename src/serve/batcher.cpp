#include "serve/batcher.hpp"

namespace seneca::serve {

MicroBatcher::MicroBatcher(AdmissionQueue& queue, BatcherConfig cfg)
    : queue_(queue), cfg_(cfg) {}

std::vector<Request> MicroBatcher::next_batch() {
  std::vector<Request> batch;
  for (;;) {
    auto first = queue_.pop();
    if (!first) return batch;  // closed and drained -> empty batch
    const Priority lane = first->priority;
    batch.push_back(std::move(*first));

    const std::size_t limit = cfg_.batch_limit(lane);
    const auto release_at =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               cfg_.wait_ms(lane)));
    bool preempted = false;
    while (batch.size() < limit) {
      if (auto r = queue_.try_pop(lane)) {
        batch.push_back(std::move(*r));
        continue;
      }
      // An interactive arrival preempts a batch-lane collection window:
      // hand the collected batch requests back (front of their lane, FIFO
      // preserved) and go serve the interactive lane first. Batch work
      // only dispatches in interactive-free windows.
      if (lane == Priority::kBatch &&
          queue_.depth(Priority::kInteractive) > 0) {
        preempted = true;
        break;
      }
      if (Clock::now() >= release_at) break;
      if (lane == Priority::kBatch) {
        if (!queue_.wait_any_nonempty_until(release_at)) break;
      } else {
        if (!queue_.wait_nonempty_until(lane, release_at)) break;
      }
    }
    if (!preempted) return batch;
    while (!batch.empty()) {  // reverse pop order restores FIFO
      queue_.requeue_front(std::move(batch.back()));
      batch.pop_back();
    }
  }
}

}  // namespace seneca::serve
