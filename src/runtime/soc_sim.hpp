#pragma once
// ZCU104 system model (Fig. 2): quad-core ARM host + dual-core DPU, driven
// by N VART worker threads. Each in-flight image walks the pipeline
//   [ARM] preprocess+job dispatch -> [DPU core] inference -> [ARM] postproc
// as a discrete-event simulation. Thread scaling (Fig. 3) and the
// "no gain past 4 threads" observation (§IV-B) emerge from resource
// contention: two DPU cores bound compute, four ARM cores bound pre/post,
// and per-thread runtime dispatch contention grows mildly with threads.

#include <vector>

#include "dpu/xmodel.hpp"

namespace seneca::runtime {

struct SocConfig {
  int arm_cores = 4;              // Cortex-A53 cluster
  double preprocess_ms = 0.22;    // int8 scale + layout per 256^2 slice
  double postprocess_ms = 0.45;   // argmax over 6 maps
  double dispatch_ms = 0.12;      // VART submit/collect bookkeeping
  double dispatch_contention = 0.06;  // extra dispatch cost per extra thread
};

struct ThroughputReport {
  int threads = 0;
  int images = 0;
  double total_seconds = 0.0;
  double fps = 0.0;
  double dpu_busy_cores_avg = 0.0;   // 0..cores
  double arm_busy_cores_avg = 0.0;   // 0..arm_cores
  double latency_mean_ms = 0.0;
  double latency_p99_ms = 0.0;
};

/// Simulates `images` inferences of `model` with `threads` VART workers.
ThroughputReport simulate_throughput(const dpu::XModel& model,
                                     const SocConfig& soc, int threads,
                                     int images);

}  // namespace seneca::runtime
