#include "runtime/vart.hpp"

#include <stdexcept>

namespace seneca::runtime {

using util::LockGuard;

VartRunner::VartRunner(const dpu::XModel& model, int num_workers,
                       std::size_t max_pending)
    : model_(model), core_(&model_), max_pending_(max_pending) {
  if (num_workers < 1) num_workers = 1;
  workers_.reserve(static_cast<std::size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

VartRunner::~VartRunner() { stop(); }

void VartRunner::stop() {
  std::call_once(stop_once_, [this] {
    {
      LockGuard lock(mutex_);
      stopping_ = true;
    }
    work_cv_.notify_all();
    space_cv_.notify_all();
    done_cv_.notify_all();
    for (auto& w : workers_) w.join();
  });
}

bool VartRunner::stopped() const {
  LockGuard lock(mutex_);
  return stopping_;
}

std::uint64_t VartRunner::submit(tensor::TensorI8 input) {
  std::uint64_t id;
  {
    LockGuard lock(mutex_);
    if (max_pending_ > 0) {
      space_cv_.wait(lock, [this]() REQUIRES(mutex_) {
        return stopping_ || pending_.size() < max_pending_;
      });
    }
    // Re-checked after the wait: the bounded-mode predicate also returns on
    // stop, and a job enqueued past that point would never run — a racing
    // collect() would then hang forever on it.
    if (stopping_) {
      throw std::runtime_error("VartRunner::submit: runner is stopped");
    }
    id = next_job_++;
    pending_.emplace(id, std::move(input));
  }
  work_cv_.notify_one();
  return id;
}

std::optional<std::uint64_t> VartRunner::try_submit(tensor::TensorI8 input) {
  std::uint64_t id;
  {
    LockGuard lock(mutex_);
    if (stopping_) return std::nullopt;
    if (max_pending_ > 0 && pending_.size() >= max_pending_) {
      return std::nullopt;
    }
    id = next_job_++;
    pending_.emplace(id, std::move(input));
  }
  work_cv_.notify_one();
  return id;
}

std::size_t VartRunner::pending() const {
  LockGuard lock(mutex_);
  return pending_.size();
}

std::pair<std::uint64_t, tensor::TensorI8> VartRunner::collect() {
  LockGuard lock(mutex_);
  done_cv_.wait(lock, [this]() REQUIRES(mutex_) {
    return !finished_.empty() ||
           (stopping_ && pending_.empty() && inflight_ == 0);
  });
  if (finished_.empty()) {
    throw std::runtime_error(
        "VartRunner::collect: runner is stopped with no outstanding job");
  }
  auto it = finished_.begin();
  auto result = std::make_pair(it->first, std::move(it->second));
  finished_.erase(it);
  return result;
}

tensor::TensorI8 VartRunner::collect(std::uint64_t id) {
  LockGuard lock(mutex_);
  done_cv_.wait(lock, [this, id]() REQUIRES(mutex_) {
    return finished_.count(id) != 0 ||
           (stopping_ && pending_.empty() && inflight_ == 0);
  });
  auto it = finished_.find(id);
  if (it == finished_.end()) {
    throw std::runtime_error(
        "VartRunner::collect(id): runner stopped before the job finished");
  }
  tensor::TensorI8 out = std::move(it->second);
  finished_.erase(it);
  return out;
}

void VartRunner::set_run_fault_hook(std::function<void(std::size_t)> hook) {
  LockGuard lock(mutex_);
  run_fault_hook_ = std::move(hook);
}

std::vector<tensor::TensorI8> VartRunner::run_batch(
    const std::vector<tensor::TensorI8>& inputs) {
  std::function<void(std::size_t)> hook;
  {
    LockGuard lock(mutex_);
    hook = run_fault_hook_;
  }
  if (hook) hook(inputs.size());

  std::vector<std::uint64_t> ids;
  ids.reserve(inputs.size());
  for (const auto& in : inputs) ids.push_back(submit(in));

  // Collect strictly by id: with an any-job collect(), two threads running
  // batches on one runner would steal each other's finished jobs and blow
  // up on the missing ids afterwards.
  std::vector<tensor::TensorI8> outputs;
  outputs.reserve(inputs.size());
  for (std::uint64_t id : ids) outputs.push_back(collect(id));
  return outputs;
}

void VartRunner::worker_loop() {
  // One arena per worker thread: per-layer activation buffers recycle across
  // every job this worker runs, so steady-state inference allocates only the
  // returned output tensor. Never shared — arenas are single-threaded state.
  tensor::TensorArena arena;
  for (;;) {
    std::pair<std::uint64_t, tensor::TensorI8> job;
    {
      LockGuard lock(mutex_);
      work_cv_.wait(lock, [this]() REQUIRES(mutex_) {
        return stopping_ || !pending_.empty();
      });
      if (stopping_ && pending_.empty()) return;
      job = std::move(pending_.front());
      pending_.pop();
      ++inflight_;
    }
    if (max_pending_ > 0) space_cv_.notify_one();
    dpu::RunResult result = core_.run(job.second, /*bw_sharers=*/1, &arena);
    {
      LockGuard lock(mutex_);
      finished_.emplace(job.first, std::move(result.output));
      --inflight_;
    }
    done_cv_.notify_all();
  }
}

}  // namespace seneca::runtime
