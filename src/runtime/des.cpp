#include "runtime/des.hpp"

namespace seneca::runtime {

void EventQueue::schedule_at(double t, Action action) {
  events_.push(Event{t < now_ ? now_ : t, seq_++, std::move(action)});
}

double EventQueue::run() {
  while (!events_.empty()) {
    // priority_queue::top returns const&; move out via const_cast-free copy
    // of the action (cheap: std::function).
    Event ev = events_.top();
    events_.pop();
    now_ = ev.time;
    ev.action();
  }
  return now_;
}

void Resource::account() {
  busy_time_ += static_cast<double>(in_use_) * (queue_->now() - last_change_);
  last_change_ = queue_->now();
}

void Resource::acquire(std::function<void()> on_granted) {
  if (in_use_ < capacity_) {
    account();
    ++in_use_;
    queue_->schedule_after(0.0, std::move(on_granted));
  } else {
    waiters_.push(std::move(on_granted));
  }
}

void Resource::release() {
  account();
  --in_use_;
  if (!waiters_.empty()) {
    account();
    ++in_use_;
    auto next = std::move(waiters_.front());
    waiters_.pop();
    queue_->schedule_after(0.0, std::move(next));
  }
}

}  // namespace seneca::runtime
