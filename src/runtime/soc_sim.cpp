#include "runtime/soc_sim.hpp"

#include <algorithm>
#include <memory>

#include "runtime/des.hpp"

namespace seneca::runtime {

namespace {

/// Shared state of one simulation run.
struct Sim {
  EventQueue queue;
  std::unique_ptr<Resource> arm;
  std::unique_ptr<Resource> dpu;
  const dpu::XModel* model = nullptr;
  SocConfig soc;
  int threads = 0;
  int next_image = 0;
  int images = 0;
  std::vector<double> latencies;  // seconds, per completed image

  double dispatch_s() const {
    const double contention =
        1.0 + soc.dispatch_contention * static_cast<double>(std::max(0, threads - 1));
    return soc.dispatch_ms * contention * 1e-3;
  }

  /// One VART worker thread: loops over images until the pool is drained.
  void thread_loop() {
    if (next_image >= images) return;
    ++next_image;
    const double start = queue.now();
    // Stage 1: preprocess + dispatch on an ARM core.
    arm->acquire([this, start] {
      queue.schedule_after(soc.preprocess_ms * 1e-3 + dispatch_s(), [this, start] {
        arm->release();
        // Stage 2: DPU inference; DDR bandwidth is shared with the other
        // core when it is busy at job start.
        dpu->acquire([this, start] {
          const int sharers = std::max(1, dpu->in_use());
          const double exec = model->latency_seconds(sharers);
          queue.schedule_after(exec, [this, start] {
            dpu->release();
            // Stage 3: postprocess on an ARM core.
            arm->acquire([this, start] {
              queue.schedule_after(soc.postprocess_ms * 1e-3, [this, start] {
                arm->release();
                latencies.push_back(queue.now() - start);
                thread_loop();  // fetch next image
              });
            });
          });
        });
      });
    });
  }
};

}  // namespace

ThroughputReport simulate_throughput(const dpu::XModel& model,
                                     const SocConfig& soc, int threads,
                                     int images) {
  Sim sim;
  sim.model = &model;
  sim.soc = soc;
  sim.threads = threads;
  sim.images = images;
  sim.arm = std::make_unique<Resource>(sim.queue, soc.arm_cores, "arm");
  sim.dpu = std::make_unique<Resource>(sim.queue, model.arch.cores, "dpu");
  sim.latencies.reserve(static_cast<std::size_t>(images));

  for (int t = 0; t < threads; ++t) sim.thread_loop();
  const double end = sim.queue.run();
  sim.arm->finalize();
  sim.dpu->finalize();

  ThroughputReport report;
  report.threads = threads;
  report.images = images;
  report.total_seconds = end;
  report.fps = end > 0.0 ? static_cast<double>(images) / end : 0.0;
  report.dpu_busy_cores_avg = end > 0.0 ? sim.dpu->busy_time() / end : 0.0;
  report.arm_busy_cores_avg = end > 0.0 ? sim.arm->busy_time() / end : 0.0;
  if (!sim.latencies.empty()) {
    double sum = 0.0;
    for (double l : sim.latencies) sum += l;
    report.latency_mean_ms = 1e3 * sum / static_cast<double>(sim.latencies.size());
    std::vector<double> sorted = sim.latencies;
    std::sort(sorted.begin(), sorted.end());
    const auto p99 = static_cast<std::size_t>(0.99 * static_cast<double>(sorted.size() - 1));
    report.latency_p99_ms = 1e3 * sorted[p99];
  }
  return report;
}

}  // namespace seneca::runtime
