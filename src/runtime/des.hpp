#pragma once
// Minimal discrete-event simulation kernel: a time-ordered event queue plus
// counted resources with FIFO waiters. The SoC model (soc_sim) builds the
// ZCU104 pipeline on top of it.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace seneca::runtime {

class EventQueue {
 public:
  using Action = std::function<void()>;

  double now() const { return now_; }

  /// Schedules `action` at absolute time `t` (>= now). Events at equal time
  /// fire in scheduling order.
  void schedule_at(double t, Action action);
  void schedule_after(double dt, Action action) { schedule_at(now_ + dt, std::move(action)); }

  /// Runs until no events remain. Returns the final time.
  double run();

  bool empty() const { return events_.empty(); }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> events_;
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
};

/// A counted resource (CPU cores, DPU cores) with FIFO admission.
class Resource {
 public:
  Resource(EventQueue& queue, int capacity, const char* name = "")
      : queue_(&queue), capacity_(capacity), name_(name) {}

  /// Requests one unit; `on_granted` runs (via the event queue, at the
  /// current time) once a unit is available.
  void acquire(std::function<void()> on_granted);

  /// Returns one unit, admitting the next waiter if any.
  void release();

  int in_use() const { return in_use_; }
  int capacity() const { return capacity_; }

  /// Time-weighted average occupancy since construction (sampled on
  /// transitions); call finalize(t) before reading at the end of a run.
  double busy_time() const { return busy_time_; }
  void finalize() { account(); }

 private:
  void account();

  EventQueue* queue_;
  int capacity_;
  const char* name_;
  int in_use_ = 0;
  std::queue<std::function<void()>> waiters_;
  double busy_time_ = 0.0;
  double last_change_ = 0.0;
};

}  // namespace seneca::runtime
