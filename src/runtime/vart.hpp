#pragma once
// VART-analog runtime (§III-E): asynchronous job submission/collection
// against the (simulated) DPU cores. Host worker threads execute the
// functional core model so results are bit-exact with the reference; the
// timing story of a deployment is asked of soc_sim (the DES), keeping
// functional correctness and temporal modelling decoupled.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <queue>
#include <thread>
#include <vector>

#include "dpu/core_sim.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace seneca::runtime {

class VartRunner {
 public:
  /// `num_workers` mirrors the paper's thread count (1/2/4). The xmodel must
  /// outlive the runner. `max_pending` bounds the not-yet-started job queue:
  /// 0 (the default) keeps the historical unbounded behavior; a positive
  /// value makes submit() block while the queue is full and try_submit()
  /// report backpressure instead.
  explicit VartRunner(const dpu::XModel& model, int num_workers,
                      std::size_t max_pending = 0);
  ~VartRunner();

  VartRunner(const VartRunner&) = delete;
  VartRunner& operator=(const VartRunner&) = delete;

  /// Asynchronously submits a job; returns its id. In bounded mode this
  /// blocks until the pending queue has room (backpressure). Throws
  /// std::runtime_error once stop() has run: a post-stop job would never be
  /// executed and a racing collect() would hang on it forever.
  std::uint64_t submit(tensor::TensorI8 input);

  /// Non-blocking submit: nullopt when the bounded pending queue is full
  /// (never fails in unbounded mode) or after stop().
  std::optional<std::uint64_t> try_submit(tensor::TensorI8 input);

  /// Stops the runner: drains already-submitted jobs, joins the workers,
  /// and rejects every later submit. Idempotent; the destructor calls it.
  void stop();

  bool stopped() const;

  /// Jobs admitted but not yet picked up by a worker.
  std::size_t pending() const;

  std::size_t max_pending() const { return max_pending_; }

  /// Blocks until some job finishes; returns {job id, INT8 output}. Throws
  /// std::runtime_error when the runner is stopped and no submitted job is
  /// pending, in flight, or finished (the caller over-collected). With
  /// concurrent collectors prefer the by-id overload: any-job collects
  /// steal whatever finishes first, including jobs other threads wait on.
  std::pair<std::uint64_t, tensor::TensorI8> collect();

  /// Blocks until job `id` finishes and returns its output. Throws
  /// std::runtime_error when the runner stops without that job ever
  /// finishing (never submitted, or stolen by an any-job collect()).
  tensor::TensorI8 collect(std::uint64_t id);

  /// Convenience: submit all, collect all, return outputs in input order.
  /// Collects strictly by id, so concurrent run_batch calls on one runner
  /// cannot steal each other's results.
  std::vector<tensor::TensorI8> run_batch(
      const std::vector<tensor::TensorI8>& inputs);

  /// Test/fault-injection hook: invoked at the top of run_batch with the
  /// batch size; a throwing hook makes the dispatch fail like a runtime
  /// fault (device error, OOM) without touching the workers.
  void set_run_fault_hook(std::function<void(std::size_t)> hook);

  int num_workers() const { return static_cast<int>(workers_.size()); }

 private:
  void worker_loop();

  const dpu::XModel& model_;
  dpu::DpuCoreSim core_;
  std::size_t max_pending_ = 0;  // 0 = unbounded

  mutable util::Mutex mutex_;
  util::CondVar work_cv_;
  util::CondVar done_cv_;
  util::CondVar space_cv_;
  std::queue<std::pair<std::uint64_t, tensor::TensorI8>> pending_
      GUARDED_BY(mutex_);
  std::map<std::uint64_t, tensor::TensorI8> finished_ GUARDED_BY(mutex_);
  std::function<void(std::size_t)> run_fault_hook_ GUARDED_BY(mutex_);
  std::uint64_t next_job_ GUARDED_BY(mutex_) = 0;
  std::size_t inflight_ GUARDED_BY(mutex_) = 0;  // popped, not yet finished
  bool stopping_ GUARDED_BY(mutex_) = false;
  std::once_flag stop_once_;
  std::vector<std::thread> workers_;
};

}  // namespace seneca::runtime
