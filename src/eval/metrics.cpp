#include "eval/metrics.hpp"

#include <stdexcept>

namespace seneca::eval {

std::vector<BinaryCounts> confusion_per_class(const LabelMap& pred,
                                              const LabelMap& truth,
                                              std::int64_t num_classes) {
  if (pred.numel() != truth.numel()) {
    throw std::invalid_argument("confusion_per_class: size mismatch");
  }
  std::vector<BinaryCounts> counts(static_cast<std::size_t>(num_classes));
  const std::int64_t n = pred.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int32_t p = pred[i];
    const std::int32_t t = truth[i];
    for (std::int64_t c = 0; c < num_classes; ++c) {
      const bool is_p = (p == c);
      const bool is_t = (t == c);
      BinaryCounts& bc = counts[static_cast<std::size_t>(c)];
      if (is_p && is_t) ++bc.tp;
      else if (is_p && !is_t) ++bc.fp;
      else if (!is_p && is_t) ++bc.fn;
      else ++bc.tn;
    }
  }
  return counts;
}

SegmentationEvaluator::SegmentationEvaluator(std::int64_t num_classes)
    : counts_(static_cast<std::size_t>(num_classes)) {}

void SegmentationEvaluator::add(const LabelMap& pred, const LabelMap& truth) {
  const auto batch = confusion_per_class(pred, truth,
                                         static_cast<std::int64_t>(counts_.size()));
  for (std::size_t c = 0; c < counts_.size(); ++c) counts_[c] += batch[c];
}

std::vector<double> SegmentationEvaluator::dice_per_class() const {
  std::vector<double> out;
  out.reserve(counts_.size());
  for (const auto& c : counts_) out.push_back(c.dice());
  return out;
}

std::vector<double> SegmentationEvaluator::tpr_per_class() const {
  std::vector<double> out;
  out.reserve(counts_.size());
  for (const auto& c : counts_) out.push_back(c.tpr());
  return out;
}

std::vector<double> SegmentationEvaluator::tnr_per_class() const {
  std::vector<double> out;
  out.reserve(counts_.size());
  for (const auto& c : counts_) out.push_back(c.tnr());
  return out;
}

namespace {
double weighted_over_organs(const std::vector<BinaryCounts>& counts,
                            double (BinaryCounts::*metric)() const) {
  double wsum = 0.0, acc = 0.0;
  for (std::size_t c = 1; c < counts.size(); ++c) {
    const double w = static_cast<double>(counts[c].tp + counts[c].fn);
    if (w <= 0.0) continue;
    acc += w * (counts[c].*metric)();
    wsum += w;
  }
  return wsum > 0.0 ? acc / wsum : 1.0;
}
}  // namespace

double SegmentationEvaluator::global_dice() const {
  return weighted_over_organs(counts_, &BinaryCounts::dice);
}

double SegmentationEvaluator::global_tpr() const {
  return weighted_over_organs(counts_, &BinaryCounts::tpr);
}

double SegmentationEvaluator::global_tnr() const {
  return weighted_over_organs(counts_, &BinaryCounts::tnr);
}

}  // namespace seneca::eval
