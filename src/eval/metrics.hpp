#pragma once
// Segmentation quality metrics (§IV-A2): Dice Similarity Coefficient,
// Recall/TPR and Specificity/TNR, per organ and globally. The global DSC is
// the frequency-weighted mean of per-organ DSCs, matching §IV-C ("the DSC
// computed as the weighted mean of single organs DSCs").

#include <cstdint>
#include <optional>
#include <vector>

#include "nn/loss.hpp"

namespace seneca::eval {

using nn::LabelMap;

/// Confusion counts of one class treated as binary fg/bg.
struct BinaryCounts {
  std::int64_t tp = 0, fp = 0, fn = 0, tn = 0;

  double dice() const {
    const double den = static_cast<double>(2 * tp + fp + fn);
    return den > 0.0 ? 2.0 * static_cast<double>(tp) / den : 1.0;
  }
  double tpr() const {  // recall / sensitivity, Eq. (5)
    const double den = static_cast<double>(tp + fn);
    return den > 0.0 ? static_cast<double>(tp) / den : 1.0;
  }
  double tnr() const {  // specificity, Eq. (6)
    const double den = static_cast<double>(tn + fp);
    return den > 0.0 ? static_cast<double>(tn) / den : 1.0;
  }

  BinaryCounts& operator+=(const BinaryCounts& o) {
    tp += o.tp;
    fp += o.fp;
    fn += o.fn;
    tn += o.tn;
    return *this;
  }
};

/// Per-class confusion over one (or more, accumulated) label maps.
std::vector<BinaryCounts> confusion_per_class(const LabelMap& pred,
                                              const LabelMap& truth,
                                              std::int64_t num_classes);

/// Accumulating evaluator over a test set.
class SegmentationEvaluator {
 public:
  explicit SegmentationEvaluator(std::int64_t num_classes);

  void add(const LabelMap& pred, const LabelMap& truth);

  /// Per-class DSC (index 0 = background; organs from 1). Classes absent
  /// from both prediction and truth count as perfect (paper convention:
  /// only present organs contribute, handled by the weighting below).
  std::vector<double> dice_per_class() const;
  std::vector<double> tpr_per_class() const;
  std::vector<double> tnr_per_class() const;

  /// Frequency-weighted mean over organ classes (excludes background);
  /// weights are ground-truth pixel counts.
  double global_dice() const;
  double global_tpr() const;
  double global_tnr() const;

  std::int64_t num_classes() const { return static_cast<std::int64_t>(counts_.size()); }
  const BinaryCounts& counts(std::int64_t cls) const {
    return counts_[static_cast<std::size_t>(cls)];
  }

 private:
  std::vector<BinaryCounts> counts_;
};

/// Per-volume DSC samples for boxplots (Fig. 6): evaluates each group of
/// slices (one patient) separately and returns per-organ DSC lists.
struct PerCaseDice {
  // [organ 1..5][case] — index 0 unused.
  std::vector<std::vector<double>> samples;
};

}  // namespace seneca::eval
