#pragma once
// Run statistics: mean ± std over repeated measurements (Table IV/V report
// µ±σ of 10 runs) and boxplot quartiles (Fig. 6).

#include <string>
#include <vector>

namespace seneca::eval {

struct RunStats {
  double mean = 0.0;
  double stddev = 0.0;
  std::size_t n = 0;
};

RunStats compute_stats(const std::vector<double>& samples);

/// "mean ± std" with the given precision.
std::string format_stats(const RunStats& s, int precision = 2);

struct BoxplotStats {
  double minimum = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double maximum = 0.0;
  std::size_t n = 0;
};

/// Quartiles by linear interpolation (Tukey boxplot without outlier split).
BoxplotStats compute_boxplot(std::vector<double> samples);

/// One-line ASCII rendering of a boxplot over [lo, hi], width chars wide.
std::string render_boxplot(const BoxplotStats& b, double lo, double hi,
                           int width = 60);

}  // namespace seneca::eval
