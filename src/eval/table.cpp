#include "eval/table.hpp"

#include <algorithm>
#include <sstream>

namespace seneca::eval {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string Table::pm(double mean, double std, int precision) {
  return num(mean, precision) + " +/- " + num(std, precision);
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };
  emit_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace seneca::eval
