#include "eval/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace seneca::eval {

RunStats compute_stats(const std::vector<double>& samples) {
  RunStats s;
  s.n = samples.size();
  if (samples.empty()) return s;
  double sum = 0.0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  double var = 0.0;
  for (double v : samples) var += (v - s.mean) * (v - s.mean);
  if (samples.size() > 1) {
    var /= static_cast<double>(samples.size() - 1);
  }
  s.stddev = std::sqrt(var);
  return s;
}

std::string format_stats(const RunStats& s, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << s.mean << " +/- " << s.stddev;
  return os.str();
}

namespace {
double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}
}  // namespace

BoxplotStats compute_boxplot(std::vector<double> samples) {
  BoxplotStats b;
  b.n = samples.size();
  if (samples.empty()) return b;
  std::sort(samples.begin(), samples.end());
  b.minimum = samples.front();
  b.maximum = samples.back();
  b.q1 = quantile(samples, 0.25);
  b.median = quantile(samples, 0.50);
  b.q3 = quantile(samples, 0.75);
  return b;
}

std::string render_boxplot(const BoxplotStats& b, double lo, double hi,
                           int width) {
  std::string line(static_cast<std::size_t>(width), ' ');
  const auto pos = [&](double v) {
    const double t = (v - lo) / (hi - lo);
    const int p = static_cast<int>(t * (width - 1));
    return static_cast<std::size_t>(std::clamp(p, 0, width - 1));
  };
  for (std::size_t i = pos(b.minimum); i <= pos(b.maximum); ++i) line[i] = '-';
  for (std::size_t i = pos(b.q1); i <= pos(b.q3); ++i) line[i] = '=';
  line[pos(b.median)] = '|';
  line[pos(b.minimum)] = '[';
  line[pos(b.maximum)] = ']';
  return line;
}

}  // namespace seneca::eval
