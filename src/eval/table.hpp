#pragma once
// ASCII table rendering used by the bench harness so every reproduced table
// prints with aligned columns next to the paper's reference values.

#include <string>
#include <vector>

namespace seneca::eval {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Helpers for numeric cells.
  static std::string num(double v, int precision = 2);
  static std::string pm(double mean, double std, int precision = 2);

  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace seneca::eval
