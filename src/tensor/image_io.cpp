#include "tensor/image_io.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/io.hpp"

namespace seneca::tensor {

namespace {
std::uint8_t to_u8(float v, float lo, float hi) {
  const float t = (v - lo) / (hi - lo);
  return static_cast<std::uint8_t>(
      std::clamp(t, 0.f, 1.f) * 255.f + 0.5f);
}
}  // namespace

void write_pgm(const std::filesystem::path& path, const TensorF& image,
               float lo, float hi) {
  const std::int64_t h = image.shape()[0];
  const std::int64_t w = image.shape()[1];
  if (image.shape().rank() == 3 && image.shape()[2] != 1) {
    throw std::invalid_argument("write_pgm: expected single channel");
  }
  std::ostringstream header;
  header << "P5\n" << w << ' ' << h << "\n255\n";
  std::vector<std::uint8_t> bytes;
  const std::string hs = header.str();
  bytes.insert(bytes.end(), hs.begin(), hs.end());
  for (std::int64_t i = 0; i < h * w; ++i) bytes.push_back(to_u8(image[i], lo, hi));
  util::write_file(path, bytes.data(), bytes.size());
}

void write_ppm(const std::filesystem::path& path, const TensorU8& rgb) {
  if (rgb.shape().rank() != 3 || rgb.shape()[2] != 3) {
    throw std::invalid_argument("write_ppm: expected HW3 tensor");
  }
  const std::int64_t h = rgb.shape()[0];
  const std::int64_t w = rgb.shape()[1];
  std::ostringstream header;
  header << "P6\n" << w << ' ' << h << "\n255\n";
  std::vector<std::uint8_t> bytes;
  const std::string hs = header.str();
  bytes.insert(bytes.end(), hs.begin(), hs.end());
  bytes.insert(bytes.end(), rgb.data(), rgb.data() + rgb.numel());
  util::write_file(path, bytes.data(), bytes.size());
}

TensorU8 render_segmentation(const TensorF& ct_slice,
                             const Tensor<std::int32_t>& labels) {
  const std::int64_t h = ct_slice.shape()[0];
  const std::int64_t w = ct_slice.shape()[1];
  if (labels.shape()[0] != h || labels.shape()[1] != w) {
    throw std::invalid_argument("render_segmentation: shape mismatch");
  }
  // Paper (Fig. 5 caption): liver red, bladder green, lungs blue, kidneys
  // yellow, bones white. Class ids follow data::OrganClass.
  static constexpr std::array<std::array<std::uint8_t, 3>, 6> kPalette = {{
      {0, 0, 0},        // background (replaced by CT intensity)
      {220, 40, 40},    // liver
      {40, 200, 60},    // bladder
      {60, 90, 230},    // lungs
      {235, 220, 40},   // kidneys
      {245, 245, 245},  // bones
  }};
  TensorU8 out(Shape{h, w, 3});
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      const std::uint8_t gray = to_u8(ct_slice.at(y, x, 0), -1.f, 1.f);
      const std::int32_t cls = labels[y * w + x];
      if (cls <= 0 || cls >= static_cast<std::int32_t>(kPalette.size())) {
        out.at(y, x, 0) = gray;
        out.at(y, x, 1) = gray;
        out.at(y, x, 2) = gray;
      } else {
        // 60 % label color / 40 % CT underlay, as in the paper's overlays.
        for (int c = 0; c < 3; ++c) {
          out.at(y, x, c) = static_cast<std::uint8_t>(
              0.6f * kPalette[static_cast<std::size_t>(cls)][static_cast<std::size_t>(c)] + 0.4f * gray);
        }
      }
    }
  }
  return out;
}

}  // namespace seneca::tensor
