#pragma once
// Dense, owning, row-major tensor. This is the one data container used by
// the NN framework, the quantizer, and the DPU simulator; activations are
// channels-last (HWC / NHWC / DHWC) and convolution weights are
// [KH][KW][Cin][Cout] so that the innermost dimension maps onto the DPU's
// output-channel lanes.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "tensor/shape.hpp"

namespace seneca::tensor {

template <typename T>
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape)
      : shape_(shape), data_(static_cast<std::size_t>(shape.numel())) {}
  Tensor(Shape shape, T fill)
      : shape_(shape), data_(static_cast<std::size_t>(shape.numel()), fill) {}

  const Shape& shape() const { return shape_; }
  /// Number of stored elements. A default-constructed tensor is EMPTY
  /// (numel 0), not a rank-0 scalar.
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  T& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  const T& operator[](std::int64_t i) const {
    return data_[static_cast<std::size_t>(i)];
  }

  /// 2D image access: (y, x, c) on an HWC tensor.
  T& at(std::int64_t y, std::int64_t x, std::int64_t c) {
    return data_[static_cast<std::size_t>((y * shape_[1] + x) * shape_[2] + c)];
  }
  const T& at(std::int64_t y, std::int64_t x, std::int64_t c) const {
    return data_[static_cast<std::size_t>((y * shape_[1] + x) * shape_[2] + c)];
  }

  /// 3D volume access: (z, y, x, c) on a DHWC tensor.
  T& at(std::int64_t z, std::int64_t y, std::int64_t x, std::int64_t c) {
    return data_[static_cast<std::size_t>(
        (((z * shape_[1]) + y) * shape_[2] + x) * shape_[3] + c)];
  }
  const T& at(std::int64_t z, std::int64_t y, std::int64_t x,
              std::int64_t c) const {
    return data_[static_cast<std::size_t>(
        (((z * shape_[1]) + y) * shape_[2] + x) * shape_[3] + c)];
  }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  /// Storage currently reserved (elements), independent of numel(). Used by
  /// TensorArena's best-fit slab recycling.
  std::size_t capacity() const { return data_.capacity(); }

  /// Re-dimension to a possibly different numel, reusing the existing
  /// allocation when it is large enough. Existing element values are
  /// UNSPECIFIED afterwards — callers must overwrite the full tensor (every
  /// kernel writes its whole output). Unlike reshape(), numel may change.
  void resize(Shape new_shape) {
    shape_ = new_shape;
    data_.resize(static_cast<std::size_t>(new_shape.numel()));
  }

  void reshape(Shape new_shape) {
    if (new_shape.numel() != shape_.numel()) {
      throw std::invalid_argument("Tensor::reshape: numel mismatch " +
                                  shape_.to_string() + " -> " +
                                  new_shape.to_string());
    }
    shape_ = new_shape;
  }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

 private:
  Shape shape_;
  std::vector<T> data_;
};

using TensorF = Tensor<float>;
using TensorI8 = Tensor<std::int8_t>;
using TensorU8 = Tensor<std::uint8_t>;
using TensorI32 = Tensor<std::int32_t>;

/// Max-abs over all elements (used by the activation-range calibrator).
inline float max_abs(const TensorF& t) {
  float m = 0.f;
  for (float v : t) m = std::max(m, std::fabs(v));
  return m;
}

/// Elementwise max |a-b| — the workhorse of the bit-exactness tests.
template <typename T>
double max_abs_diff(const Tensor<T>& a, const Tensor<T>& b) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument("max_abs_diff: shape mismatch");
  }
  double m = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    m = std::max(m, std::fabs(static_cast<double>(a[i]) - static_cast<double>(b[i])));
  }
  return m;
}

}  // namespace seneca::tensor
