#pragma once
// NumPy .npy export/import for tensors (format version 1.0), so phantom
// slices, activations, and segmentation maps can be inspected with the
// Python ecosystem (np.load) without any bridge code.

#include <filesystem>

#include "tensor/tensor.hpp"

namespace seneca::tensor {

/// Writes a float32 tensor as a C-order .npy file.
void write_npy(const std::filesystem::path& path, const TensorF& t);
/// Writes an int32 label map as .npy.
void write_npy(const std::filesystem::path& path, const Tensor<std::int32_t>& t);
/// Writes an int8 tensor as .npy.
void write_npy(const std::filesystem::path& path, const TensorI8& t);

/// Reads a float32 .npy written by write_npy (little-endian '<f4',
/// C-order, up to rank 5). Throws std::runtime_error on anything else.
TensorF read_npy_f32(const std::filesystem::path& path);

}  // namespace seneca::tensor
