#include "tensor/npy_io.hpp"

#include <cstring>
#include <sstream>
#include <stdexcept>

#include "util/io.hpp"

namespace seneca::tensor {

namespace {

std::string shape_tuple(const Shape& shape) {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < shape.rank(); ++i) {
    os << shape[i] << ',';
    if (i + 1 < shape.rank()) os << ' ';
  }
  os << ')';
  return os.str();
}

void write_npy_raw(const std::filesystem::path& path, const Shape& shape,
                   const char* dtype, const void* data, std::size_t bytes) {
  std::ostringstream header;
  header << "{'descr': '" << dtype << "', 'fortran_order': False, 'shape': "
         << shape_tuple(shape) << ", }";
  std::string h = header.str();
  // Pad with spaces so that magic(6)+version(2)+len(2)+header is 64-aligned,
  // terminated by '\n' (format spec v1.0).
  const std::size_t unpadded = 10 + h.size() + 1;
  h.append((64 - unpadded % 64) % 64, ' ');
  h.push_back('\n');

  util::BinaryWriter w;
  const unsigned char magic[8] = {0x93, 'N', 'U', 'M', 'P', 'Y', 1, 0};
  w.bytes(magic, 8);
  w.u8(static_cast<std::uint8_t>(h.size() & 0xFF));
  w.u8(static_cast<std::uint8_t>((h.size() >> 8) & 0xFF));
  w.bytes(h.data(), h.size());
  w.bytes(data, bytes);
  util::write_file(path, w.data().data(), w.data().size());
}

}  // namespace

void write_npy(const std::filesystem::path& path, const TensorF& t) {
  write_npy_raw(path, t.shape(), "<f4", t.data(),
                static_cast<std::size_t>(t.numel()) * 4);
}

void write_npy(const std::filesystem::path& path,
               const Tensor<std::int32_t>& t) {
  write_npy_raw(path, t.shape(), "<i4", t.data(),
                static_cast<std::size_t>(t.numel()) * 4);
}

void write_npy(const std::filesystem::path& path, const TensorI8& t) {
  write_npy_raw(path, t.shape(), "|i1", t.data(),
                static_cast<std::size_t>(t.numel()));
}

TensorF read_npy_f32(const std::filesystem::path& path) {
  const auto bytes = util::read_file(path);
  if (bytes.size() < 10 || bytes[0] != 0x93 ||
      std::memcmp(bytes.data() + 1, "NUMPY", 5) != 0) {
    throw std::runtime_error("read_npy: bad magic");
  }
  const std::size_t header_len =
      static_cast<std::size_t>(bytes[8]) | (static_cast<std::size_t>(bytes[9]) << 8);
  if (bytes.size() < 10 + header_len) {
    throw std::runtime_error("read_npy: truncated header");
  }
  const std::string header(reinterpret_cast<const char*>(bytes.data()) + 10,
                           header_len);
  if (header.find("'<f4'") == std::string::npos) {
    throw std::runtime_error("read_npy: expected little-endian float32");
  }
  if (header.find("'fortran_order': False") == std::string::npos) {
    throw std::runtime_error("read_npy: expected C order");
  }
  const auto lp = header.find('(');
  const auto rp = header.find(')');
  if (lp == std::string::npos || rp == std::string::npos || rp < lp) {
    throw std::runtime_error("read_npy: no shape tuple");
  }
  std::vector<std::int64_t> dims;
  std::string token;
  for (std::size_t i = lp + 1; i <= rp; ++i) {
    const char c = header[i];
    if (c == ',' || c == ')') {
      if (!token.empty()) {
        dims.push_back(std::strtoll(token.c_str(), nullptr, 10));
        token.clear();
      }
    } else if (c != ' ') {
      token.push_back(c);
    }
  }
  if (dims.empty() || dims.size() > Shape::kMaxRank) {
    throw std::runtime_error("read_npy: unsupported rank");
  }
  Shape shape = [&] {
    switch (dims.size()) {
      case 1: return Shape{dims[0]};
      case 2: return Shape{dims[0], dims[1]};
      case 3: return Shape{dims[0], dims[1], dims[2]};
      case 4: return Shape{dims[0], dims[1], dims[2], dims[3]};
      default: return Shape{dims[0], dims[1], dims[2], dims[3], dims[4]};
    }
  }();
  TensorF t(shape);
  const std::size_t need = static_cast<std::size_t>(t.numel()) * 4;
  if (bytes.size() < 10 + header_len + need) {
    throw std::runtime_error("read_npy: truncated data");
  }
  std::memcpy(t.data(), bytes.data() + 10 + header_len, need);
  return t;
}

}  // namespace seneca::tensor
