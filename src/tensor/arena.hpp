#pragma once
// TensorArena — slab recycling for the INT8 inference hot path.
//
// The functional executors (quant::QGraph::forward, dpu::DpuCoreSim::run)
// used to construct a fresh TensorI8 per layer per frame: one malloc plus a
// full zero-fill each, repeated tens of times per inference. An arena keeps
// the freed slabs and hands them back by best fit, so from the second frame
// on a steady-state executor performs zero heap allocations.
//
// Lifetime rules:
//  - An arena is single-threaded state. Share one per execution thread
//    (VartRunner keeps one per worker), never across concurrent runs.
//  - acquire() returns a tensor with UNSPECIFIED contents; every kernel
//    writes its complete output, so no zero-fill is needed.
//  - release() donates a tensor's storage back to the pool. Tensors that
//    escape to the caller (the returned inference output, captured
//    activation sets) simply never come back — the arena replaces them
//    with one fresh slab on a later acquire.
//  - acc32() is a single reusable int32 scratch plane (transposed-conv
//    accumulators); contents are unspecified, the caller initializes it.

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "tensor/tensor.hpp"

namespace seneca::tensor {

class TensorArena {
 public:
  /// Pops the best-fitting free slab (smallest capacity that holds `shape`)
  /// and re-dimensions it; allocates a fresh slab when none fits. Contents
  /// are unspecified.
  TensorI8 acquire(const Shape& shape) {
    const auto need = static_cast<std::size_t>(shape.numel());
    std::size_t best = free_.size();
    for (std::size_t i = 0; i < free_.size(); ++i) {
      if (free_[i].capacity() < need) continue;
      if (best == free_.size() || free_[i].capacity() < free_[best].capacity()) {
        best = i;
      }
    }
    if (best == free_.size()) {
      ++mallocs_;
      return TensorI8(shape);
    }
    TensorI8 slab = std::move(free_[best]);
    free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(best));
    slab.resize(shape);  // capacity suffices: no reallocation
    return slab;
  }

  /// Returns a tensor's storage to the pool. Empty tensors are ignored.
  void release(TensorI8&& t) {
    if (t.capacity() == 0) return;
    free_.push_back(std::move(t));
  }

  /// Reusable int32 accumulator scratch of at least `n` elements; contents
  /// unspecified. Invalidated by the next acc32() call.
  std::int32_t* acc32(std::int64_t n) {
    if (acc_.size() < static_cast<std::size_t>(n)) {
      ++mallocs_;
      acc_.resize(static_cast<std::size_t>(n));
    }
    return acc_.data();
  }

  /// Fresh slab allocations (and scratch growths) performed so far. A
  /// steady-state executor stops increasing this after its first frame.
  std::size_t mallocs() const { return mallocs_; }

  /// Slabs currently pooled.
  std::size_t pooled() const { return free_.size(); }

  void clear() {
    free_.clear();
    acc_.clear();
    acc_.shrink_to_fit();
  }

 private:
  std::vector<TensorI8> free_;
  std::vector<std::int32_t> acc_;
  std::size_t mallocs_ = 0;
};

}  // namespace seneca::tensor
