#pragma once
// Dense tensor shape (row-major / channels-last). SENECA stores activations
// as NHWC (2D nets) or NDHWC (3D nets) and weights as [KH][KW][Cin][Cout],
// matching the layout the DPU's channel-parallel datapath consumes.

#include <array>
#include <cstdint>
#include <initializer_list>
#include <stdexcept>
#include <string>

namespace seneca::tensor {

class Shape {
 public:
  static constexpr std::size_t kMaxRank = 5;

  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims)
      : Shape(dims.begin(), dims.size()) {}

  /// Runtime-rank construction (e.g. decoding a shape off the wire).
  Shape(const std::int64_t* dims, std::size_t rank) {
    if (rank > kMaxRank) throw std::invalid_argument("Shape: rank > 5");
    for (std::size_t i = 0; i < rank; ++i) {
      if (dims[i] < 0) throw std::invalid_argument("Shape: negative dim");
      dims_[rank_++] = dims[i];
    }
  }

  std::size_t rank() const { return rank_; }

  std::int64_t operator[](std::size_t i) const {
    if (i >= rank_) throw std::out_of_range("Shape: dim index");
    return dims_[i];
  }

  std::int64_t numel() const {
    std::int64_t n = 1;
    for (std::size_t i = 0; i < rank_; ++i) n *= dims_[i];
    return n;
  }

  bool operator==(const Shape& o) const {
    if (rank_ != o.rank_) return false;
    for (std::size_t i = 0; i < rank_; ++i) {
      if (dims_[i] != o.dims_[i]) return false;
    }
    return true;
  }
  bool operator!=(const Shape& o) const { return !(*this == o); }

  std::string to_string() const;

 private:
  std::array<std::int64_t, kMaxRank> dims_{};
  std::size_t rank_ = 0;
};

}  // namespace seneca::tensor
