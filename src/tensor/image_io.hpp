#pragma once
// PGM/PPM writers used to dump CT slices and segmentation overlays
// (Figure 5 reproduction) without any external image dependency.

#include <array>
#include <cstdint>
#include <filesystem>

#include "tensor/tensor.hpp"

namespace seneca::tensor {

/// Writes a single-channel HW1 (or HW) float tensor as an 8-bit PGM,
/// linearly mapping [lo, hi] to [0, 255].
void write_pgm(const std::filesystem::path& path, const TensorF& image,
               float lo = -1.f, float hi = 1.f);

/// Writes an HW3 uint8 tensor as a binary PPM.
void write_ppm(const std::filesystem::path& path, const TensorU8& rgb);

/// Renders a label map (HW1 float/int-valued classes) over a grayscale CT
/// slice with the paper's color code: liver red, bladder green, lungs blue,
/// kidneys yellow, bones white; background keeps the CT intensity.
TensorU8 render_segmentation(const TensorF& ct_slice,
                             const Tensor<std::int32_t>& labels);

}  // namespace seneca::tensor
