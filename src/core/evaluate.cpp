#include "core/evaluate.hpp"

#include <map>

#include "nn/trainer.hpp"
#include "quant/quantizer.hpp"

namespace seneca::core {

nn::LabelMap predict_fp32(nn::Graph& graph, const tensor::TensorF& image) {
  return nn::predict_labels(graph.forward(image, /*training=*/false));
}

nn::LabelMap predict_int8(const dpu::DpuCoreSim& core,
                          const tensor::TensorF& image) {
  const tensor::TensorI8 input =
      quant::quantize_tensor(image, core.model().input_fix_pos);
  const dpu::RunResult result = core.run(input);
  // Argmax over the channel dimension of the INT8 logit maps.
  const auto& shape = result.output.shape();
  const std::int64_t c = shape[2];
  nn::LabelMap labels(tensor::Shape{shape[0], shape[1]});
  for (std::int64_t i = 0; i < labels.numel(); ++i) {
    const std::int8_t* p = result.output.data() + i * c;
    std::int32_t best = 0;
    for (std::int64_t ch = 1; ch < c; ++ch) {
      if (p[ch] > p[best]) best = static_cast<std::int32_t>(ch);
    }
    labels[i] = best;
  }
  return labels;
}

eval::SegmentationEvaluator evaluate_fp32(
    nn::Graph& graph, const std::vector<data::SliceRecord>& records) {
  eval::SegmentationEvaluator evaluator(data::kNumClasses);
  for (const auto& rec : records) {
    evaluator.add(predict_fp32(graph, rec.sample.image), rec.sample.labels);
  }
  return evaluator;
}

eval::SegmentationEvaluator evaluate_int8(
    const dpu::XModel& xmodel, const std::vector<data::SliceRecord>& records) {
  dpu::DpuCoreSim core(&xmodel);
  eval::SegmentationEvaluator evaluator(data::kNumClasses);
  for (const auto& rec : records) {
    evaluator.add(predict_int8(core, rec.sample.image), rec.sample.labels);
  }
  return evaluator;
}

std::vector<std::vector<double>> per_case_organ_dice_int8(
    const dpu::XModel& xmodel, const std::vector<data::SliceRecord>& records) {
  dpu::DpuCoreSim core(&xmodel);
  std::map<int, eval::SegmentationEvaluator> per_patient;
  for (const auto& rec : records) {
    auto [it, inserted] = per_patient.try_emplace(
        rec.patient_id, eval::SegmentationEvaluator(data::kNumClasses));
    it->second.add(predict_int8(core, rec.sample.image), rec.sample.labels);
  }
  std::vector<std::vector<double>> samples(
      static_cast<std::size_t>(data::kNumClasses));
  for (auto& [patient, evaluator] : per_patient) {
    for (std::int64_t c = 1; c < data::kNumClasses; ++c) {
      const auto& counts = evaluator.counts(c);
      // Only patients whose scan actually contains the organ contribute.
      if (counts.tp + counts.fn == 0) continue;
      samples[static_cast<std::size_t>(c)].push_back(counts.dice());
    }
  }
  return samples;
}

}  // namespace seneca::core
