#include "core/workflow.hpp"

#include <sstream>

#include "core/model_zoo.hpp"
#include "util/logging.hpp"

namespace seneca::core {

std::string Workflow::train_cache_key() const {
  std::ostringstream os;
  os << "unet_" << cfg_.model_name << "_s" << cfg_.dataset.resolution << "_v"
     << cfg_.dataset.num_volumes << "_sl" << cfg_.dataset.slices_per_volume
     << "_e" << cfg_.train.epochs << "_seed" << cfg_.dataset.seed << "_m"
     << cfg_.model_seed << (cfg_.weighted_loss ? "_wftl" : "_uftl");
  return os.str();
}

WorkflowArtifacts Workflow::run() {
  WorkflowArtifacts art;

  // --- Step A: dataset. ---
  art.dataset = data::build_dataset(cfg_.dataset);

  // --- Step B: model definition. ---
  const ZooEntry& entry = zoo_entry(cfg_.model_name);
  art.fp32 = nn::build_unet2d(
      unet_config(entry, cfg_.dataset.resolution, cfg_.model_seed));

  // --- Step C: training (with weight cache). ---
  const auto cache_path = cfg_.artifacts_dir / (train_cache_key() + ".weights");
  bool loaded = false;
  if (cfg_.use_cache && std::filesystem::exists(cache_path)) {
    try {
      art.fp32->load_weights(cache_path);
      loaded = true;
      art.trained_from_cache = true;
      util::log_info() << "workflow: loaded cached weights " << cache_path.string();
    } catch (const std::exception& e) {
      util::log_warn() << "workflow: cache load failed (" << e.what()
                       << "), retraining";
    }
  }
  if (!loaded) {
    const auto train_samples = art.dataset.train_samples();
    const auto freq = data::organ_frequencies(art.dataset.train);
    // Class weights: background gets the "large organ" treatment; organ
    // weights are inversely proportional to their pixel frequencies.
    std::vector<double> class_freq(static_cast<std::size_t>(data::kNumClasses));
    double organ_share = 0.0;
    for (std::size_t c = 1; c < class_freq.size(); ++c) {
      class_freq[c] = freq[c] / 100.0;
      organ_share += class_freq[c];
    }
    class_freq[0] = 12.0;  // background dominates every slice; weight ~1/12
    std::unique_ptr<nn::Loss> loss;
    if (cfg_.weighted_loss) {
      loss = nn::make_seneca_loss(class_freq, cfg_.ce_weight);
    } else {
      std::vector<std::unique_ptr<nn::Loss>> parts;
      parts.push_back(std::make_unique<nn::FocalTverskyLoss>(
          nn::FocalTverskyLoss::unweighted(data::kNumClasses)));
      parts.push_back(std::make_unique<nn::CrossEntropyLoss>());
      loss = std::make_unique<nn::CombinedLoss>(
          std::move(parts), std::vector<double>{1.0, cfg_.ce_weight});
    }
    util::log_info() << "workflow: training " << cfg_.model_name << " on "
                     << train_samples.size() << " slices ("
                     << cfg_.train.epochs << " epochs)";
    nn::train(*art.fp32, *loss, train_samples, cfg_.train);
    if (cfg_.use_cache) {
      art.fp32->save_weights(cache_path);
    }
  }

  // --- Step D: quantization. ---
  art.folded = quant::fold(*art.fp32);
  art.calibration =
      cfg_.manual_calibration
          ? data::sample_calibration_manual(art.dataset.train,
                                            cfg_.calibration_images)
          : data::sample_calibration_random(art.dataset.train,
                                            cfg_.calibration_images,
                                            cfg_.calibration_seed);
  quant::QuantizeOptions qopts;
  qopts.mode = cfg_.quant_mode;
  qopts.max_calibration_images = cfg_.calibration_images;
  art.qgraph = quant::quantize(art.folded, art.calibration.images, qopts);

  // --- Step E: compilation. ---
  dpu::CompileOptions copts;
  copts.arch = cfg_.arch;
  copts.model_name = cfg_.model_name;
  art.xmodel = dpu::compile(art.qgraph, copts);
  return art;
}

quant::QGraph build_timing_qgraph(const std::string& model_name,
                                  std::int64_t input_size) {
  const ZooEntry& entry = zoo_entry(model_name);
  auto graph = nn::build_unet2d(unet_config(entry, input_size));
  quant::FGraph folded = quant::fold(*graph);
  // One synthetic calibration image suffices: fix positions do not affect
  // the timing model.
  std::vector<tensor::TensorF> calib;
  tensor::TensorF img(tensor::Shape{input_size, input_size, 1});
  for (std::int64_t i = 0; i < img.numel(); ++i) {
    img[i] = -1.f + 2.f * static_cast<float>(i % 97) / 96.f;
  }
  calib.push_back(img);
  return quant::quantize(folded, calib);
}

dpu::XModel build_timing_xmodel(const std::string& model_name,
                                const dpu::DpuArch& arch,
                                std::int64_t input_size, int opt_level) {
  const quant::QGraph qg = build_timing_qgraph(model_name, input_size);
  dpu::CompileOptions copts;
  copts.arch = arch;
  copts.model_name = model_name;
  copts.opt_level = opt_level;
  return dpu::compile(qg, copts);
}

}  // namespace seneca::core
