#pragma once
// Accuracy evaluation drivers shared by benches/examples: run the FP32
// network or the compiled INT8 xmodel over slice records and accumulate
// segmentation metrics.

#include <vector>

#include "data/dataset.hpp"
#include "dpu/core_sim.hpp"
#include "eval/metrics.hpp"
#include "nn/graph.hpp"

namespace seneca::core {

/// Argmax prediction of the FP32 network for one image.
nn::LabelMap predict_fp32(nn::Graph& graph, const tensor::TensorF& image);

/// Argmax prediction of the compiled INT8 model (input quantized with the
/// xmodel's stored scale; argmax directly on INT8 logits — softmax is
/// monotonic).
nn::LabelMap predict_int8(const dpu::DpuCoreSim& core,
                          const tensor::TensorF& image);

eval::SegmentationEvaluator evaluate_fp32(
    nn::Graph& graph, const std::vector<data::SliceRecord>& records);

eval::SegmentationEvaluator evaluate_int8(
    const dpu::XModel& xmodel, const std::vector<data::SliceRecord>& records);

/// Per-patient, per-organ DSC samples (Fig. 6 boxplots): index [organ 1..5],
/// one sample per patient present in `records`.
std::vector<std::vector<double>> per_case_organ_dice_int8(
    const dpu::XModel& xmodel, const std::vector<data::SliceRecord>& records);

}  // namespace seneca::core
