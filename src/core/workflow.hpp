#pragma once
// The SENECA workflow (Fig. 1): the paper's primary contribution as a
// one-call API.
//   A. data preparation & pre-processing      (src/data)
//   B. FP32 U-Net definition                  (src/nn, model zoo)
//   C. training with weighted Focal Tversky   (src/nn)
//   D. INT8 quantization with a calibration   (src/quant)
//      set (random or frequency-corrected)
//   E. compilation to the DPU and deployment  (src/dpu, src/runtime)
//
// Trained weights are content-addressed and cached under artifacts_dir so
// repeated benches reuse them.

#include <filesystem>
#include <memory>

#include "data/calibration.hpp"
#include "data/dataset.hpp"
#include "dpu/compiler.hpp"
#include "nn/trainer.hpp"
#include "quant/quantizer.hpp"

namespace seneca::core {

struct WorkflowConfig {
  // Step A.
  data::DatasetConfig dataset;
  // Step B. Paper label from the model zoo and the network input size.
  std::string model_name = "1M";
  std::uint64_t model_seed = 42;
  // Step C.
  nn::TrainOptions train;
  bool weighted_loss = true;  // weighted Focal Tversky (false: unweighted)
  double ce_weight = 0.4;     // cross-entropy sharpening term
  // Step D.
  quant::QuantMode quant_mode = quant::QuantMode::kPTQ;
  std::size_t calibration_images = 500;
  bool manual_calibration = true;  // Table III frequency-corrected sampling
  std::uint64_t calibration_seed = 5;
  // Step E.
  dpu::DpuArch arch = dpu::DpuArch::b4096();
  // Caching.
  std::filesystem::path artifacts_dir = "artifacts";
  bool use_cache = true;
};

struct WorkflowArtifacts {
  data::Dataset dataset;
  std::unique_ptr<nn::Graph> fp32;  // trained FP32 network
  quant::FGraph folded;
  quant::QGraph qgraph;
  dpu::XModel xmodel;
  data::CalibrationSet calibration;
  bool trained_from_cache = false;
};

class Workflow {
 public:
  explicit Workflow(WorkflowConfig cfg) : cfg_(std::move(cfg)) {}

  /// Runs steps A-E (training cached by configuration fingerprint).
  WorkflowArtifacts run();

  const WorkflowConfig& config() const { return cfg_; }

  /// Cache key for the trained weights of this configuration.
  std::string train_cache_key() const;

 private:
  WorkflowConfig cfg_;
};

/// Builds + quantizes an *untrained* model of the given zoo name — the
/// QGraph fed to the compiler, for benches that compile the same graph at
/// several optimization levels (bench/compiler_passes).
quant::QGraph build_timing_qgraph(const std::string& model_name,
                                  std::int64_t input_size = 256);

/// Builds + quantizes + compiles an *untrained* model of the given zoo name
/// at full 256x256 resolution — sufficient for timing/energy experiments,
/// whose results are weight-independent.
dpu::XModel build_timing_xmodel(const std::string& model_name,
                                const dpu::DpuArch& arch = dpu::DpuArch::b4096(),
                                std::int64_t input_size = 256,
                                int opt_level = 1);

}  // namespace seneca::core
