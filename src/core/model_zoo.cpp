#include "core/model_zoo.hpp"

#include <stdexcept>

namespace seneca::core {

const std::vector<ZooEntry>& model_zoo() {
  // Table II: layers 9,11,11,11,11; filters 8,6,8,11,16.
  static const std::vector<ZooEntry> zoo = {
      {"1M", 4, 8, 1.034},
      {"2M", 5, 6, 2.329},
      {"4M", 5, 8, 4.136},
      {"8M", 5, 11, 7.814},
      {"16M", 5, 16, 16.522},
  };
  return zoo;
}

const ZooEntry& zoo_entry(const std::string& name) {
  for (const auto& e : model_zoo()) {
    if (e.name == name) return e;
  }
  throw std::invalid_argument("zoo_entry: unknown model " + name);
}

nn::UNet2DConfig unet_config(const ZooEntry& entry, std::int64_t input_size,
                             std::uint64_t seed) {
  nn::UNet2DConfig cfg;
  cfg.name = entry.name;
  cfg.input_size = input_size;
  cfg.depth = entry.depth;
  cfg.base_filters = entry.base_filters;
  cfg.seed = seed;
  return cfg;
}

}  // namespace seneca::core
