#pragma once
// The five SENECA model configurations of Table II. "Layers" follows the
// paper's stack count (2*depth+1); base_filters is the first stack's filter
// count. Our standard two-conv-per-stack U-Net yields parameter totals whose
// *ratios* across configs match the paper's exactly (1 : 2.25 : 4 : 7.56 :
// 16) with a uniform scale offset; see EXPERIMENTS.md for the comparison.

#include <cstdint>
#include <string>
#include <vector>

#include "nn/unet.hpp"

namespace seneca::core {

struct ZooEntry {
  std::string name;            // paper label: "1M" .. "16M"
  int depth;                   // encoder stacks (layers = 2*depth+1)
  std::int64_t base_filters;
  double paper_params_millions;  // Table II reference
};

const std::vector<ZooEntry>& model_zoo();

/// Look up by paper label ("1M", "2M", ...). Throws on unknown names.
const ZooEntry& zoo_entry(const std::string& name);

/// Builder config for a zoo entry at the given input resolution.
nn::UNet2DConfig unet_config(const ZooEntry& entry, std::int64_t input_size,
                             std::uint64_t seed = 42);

}  // namespace seneca::core
