#!/usr/bin/env sh
# Tier-1 verify in one command: configure, build, run the full test suite.
#
# Usage: scripts/check.sh [build-dir] [cmake-args...]
#   build-dir   first argument, unless it starts with '-' (default: <repo>/build)
#   cmake-args  every remaining argument goes to the configure step, e.g.
#               scripts/check.sh build-tsan -DSENECA_SANITIZE=thread
#               scripts/check.sh -DSENECA_WERROR=ON
#
# Environment:
#   SENECA_CHECK_DRY_RUN=1  print the composed commands instead of running
#   CTEST_ARGS              extra ctest arguments, e.g. "-L stress"
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)

BUILD="$ROOT/build"
case "${1:-}" in
  "") ;;
  -*) ;;  # first argument is already a cmake flag; keep the default dir
  *) BUILD=$1; shift ;;
esac

run() {
  if [ "${SENECA_CHECK_DRY_RUN:-0}" = "1" ]; then
    echo "+ $*"
  else
    "$@"
  fi
}

run cmake -B "$BUILD" -S "$ROOT" "$@"
run cmake --build "$BUILD" -j
# shellcheck disable=SC2086  # CTEST_ARGS is intentionally word-split
run ctest --test-dir "$BUILD" --output-on-failure -j ${CTEST_ARGS:-}
