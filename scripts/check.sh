#!/usr/bin/env sh
# Tier-1 verify in one command: configure, build, run the full test suite.
# Usage: scripts/check.sh [build-dir]   (default: build)
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
BUILD=${1:-"$ROOT/build"}

cmake -B "$BUILD" -S "$ROOT"
cmake --build "$BUILD" -j
ctest --test-dir "$BUILD" --output-on-failure -j
