// seneca_verify: standalone SENECA-Prove driver (DESIGN.md §10). Loads a
// compiled .xmodel and re-derives every invariant the pass pipeline is
// supposed to have established — buffer liveness, dataflow domination,
// int32 accumulator headroom, cycle-model consistency — printing each
// violation as a structured finding.
//
//   ./seneca_verify model.xmodel [--cycles true] [--rel-tol 1e-4]
//                   [--ranges false] [--disasm false] [--quiet]
//
// Exit codes: 0 = verified clean (warnings allowed), 1 = error findings,
// 2 = the file could not be loaded / is not a parseable xmodel.

#include <cstdio>
#include <exception>
#include <string>

#include "dpu/disasm.hpp"
#include "dpu/verify.hpp"
#include "dpu/xmodel.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace seneca;
  const util::Cli cli(argc, argv);
  if (cli.positional().empty()) {
    std::fprintf(stderr, "usage: %s model.xmodel [--cycles true] "
                 "[--rel-tol 1e-4] [--ranges false] [--disasm false] "
                 "[--quiet]\n",
                 cli.program().c_str());
    return 2;
  }

  dpu::XModel model;
  try {
    model = dpu::XModel::load(cli.positional()[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: cannot load '%s': %s\n", cli.program().c_str(),
                 cli.positional()[0].c_str(), e.what());
    return 2;
  }

  dpu::VerifyOptions opts;
  opts.check_cycles = cli.get_bool("cycles", true);
  opts.cycle_rel_tol = cli.get_double("rel-tol", opts.cycle_rel_tol);
  const std::vector<dpu::Finding> findings = dpu::verify(model, opts);

  const bool quiet = cli.has("quiet");
  if (!quiet) {
    std::printf("%s", dpu::format_findings(model, findings).c_str());
    if (cli.get_bool("disasm", false)) {
      dpu::DisasmOptions dopts;
      dopts.findings = &findings;
      std::printf("\n%s", dpu::disassemble(model, dopts).c_str());
    }
    if (cli.get_bool("ranges", false)) {
      std::printf("\nper-layer int32 headroom proofs:\n");
      for (const dpu::RangeProof& p : dpu::range_analysis(model)) {
        const auto& layer = model.layers[static_cast<std::size_t>(p.layer)];
        std::printf(
            "  layer %2d %-16s in=[%lld,%lld] acc=[%lld,%lld] shift=%3d "
            "acc32=%s shift32=%s runtime=%s\n",
            p.layer, layer.name.c_str(), static_cast<long long>(p.in.lo),
            static_cast<long long>(p.in.hi), static_cast<long long>(p.acc.lo),
            static_cast<long long>(p.acc.hi), p.shift,
            p.acc_fits_i32 ? "proven" : "UNPROVEN",
            p.shift32_proven ? "proven" : "UNPROVEN",
            p.runtime_acc32 ? "safe" : "unsafe");
      }
    }
  }
  return dpu::has_errors(findings) ? 1 : 0;
}
