// Cluster demo: a closed-loop client fleet drives the sharded serving tier
// (ClusterRouter over N simulated ZCU104 boards) and prints the scale-out
// story as a table: aggregate *simulated* FPS grows with board count, the
// energy-aware policy buys more FPS per watt than round-robin, and the
// interactive lane's tail stays below the batch lane's at every point. A
// second act injects a fault into one board and shows its load draining to
// the peers, then returning once the board heals.
//
//   ./cluster_demo [--input 32] [--requests 96] [--boards 0 (sweep 1,2,4)]
//                  [--mode replicate|partition] [--policy rr|jsq|energy|all]
//                  [--deadline-ms 200] [--capacity 16] [--seed 42]

#include <atomic>
#include <cstdio>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/workflow.hpp"
#include "eval/table.hpp"
#include "serve/cluster/router.hpp"
#include "serve/metrics.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

using namespace seneca;
using serve::cluster::ClusterConfig;
using serve::cluster::ClusterRouter;
using serve::cluster::PolicyKind;

struct PointResult {
  serve::cluster::ClusterSnapshot cluster;
  double p99_interactive_ms = 0.0;
  double p99_batch_ms = 0.0;
};

/// `clients` closed-loop clients share `total` requests (every 4th goes to
/// the batch lane, the rest carry an interactive deadline), each submitting
/// the next request only after its previous future resolved.
PointResult run_point(ClusterRouter& router, int clients, int total,
                      std::int64_t input_size, double deadline_ms,
                      std::uint64_t seed) {
  std::atomic<int> next{0};
  std::mutex samples_mutex;
  std::vector<double> interactive_ms;
  std::vector<double> batch_ms;
  std::vector<std::thread> fleet;
  fleet.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    fleet.emplace_back([&, c] {
      // Client c draws from its own deterministic stream of the run seed.
      util::Rng rng = util::Rng(seed).split(static_cast<std::uint64_t>(c) + 1);
      tensor::TensorI8 input(tensor::Shape{input_size, input_size, 1});
      for (auto& v : input) {
        v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
      }
      for (;;) {
        const int i = next.fetch_add(1);
        if (i >= total) return;
        const bool batch_lane = i % 4 == 3;
        const serve::Priority lane = batch_lane ? serve::Priority::kBatch
                                                : serve::Priority::kInteractive;
        const serve::Response r =
            router.submit(lane, input, batch_lane ? 0.0 : deadline_ms).get();
        if (r.status != serve::Status::kOk) continue;
        std::lock_guard lock(samples_mutex);
        (batch_lane ? batch_ms : interactive_ms).push_back(r.total_ms);
      }
    });
  }
  for (auto& t : fleet) t.join();

  PointResult p;
  p.cluster = router.snapshot();
  p.p99_interactive_ms = serve::nearest_rank_quantile(interactive_ms, 0.99);
  p.p99_batch_ms = serve::nearest_rank_quantile(batch_ms, 0.99);
  return p;
}

double pct(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? 0.0
                    : 100.0 * static_cast<double>(part) /
                          static_cast<double>(whole);
}

}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  const std::int64_t input_size = cli.get_int("input", 32);
  const int total = static_cast<int>(cli.get_int("requests", 96));
  const double deadline_ms = cli.get_double("deadline-ms", 200.0);
  const std::string mode = cli.get("mode", "replicate");
  const std::string policy_arg = cli.get("policy", "all");
  const int boards_arg = static_cast<int>(cli.get_int("boards", 0));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const bool partition = mode == "partition";
  if (!partition && mode != "replicate") {
    throw std::invalid_argument("unknown --mode: " + mode);
  }

  const std::vector<std::string> names = {"8M", "4M", "2M"};
  std::printf("building ladder:");
  std::vector<serve::ModelSpec> ladder;
  for (const auto& name : names) {
    std::printf(" %s", name.c_str());
    std::fflush(stdout);
    ladder.push_back(
        {name, core::build_timing_xmodel(name, dpu::DpuArch::b4096(), input_size),
         2});
  }
  std::printf(" done\n");

  serve::ServerConfig server_cfg;
  server_cfg.queue.capacity =
      static_cast<std::size_t>(cli.get_int("capacity", 16));
  server_cfg.batcher.max_batch_size = 4;
  server_cfg.batcher.max_wait_ms = 15.0;  // batch lane trades latency for size
  server_cfg.batcher.interactive_max_wait_ms = 0.0;
  server_cfg.batcher.interactive_max_batch_size = 1;
  server_cfg.degrade.queue_depth_high = 6;
  server_cfg.degrade.queue_depth_low = 2;
  server_cfg.degrade.min_dwell_ms = 25.0;

  std::vector<PolicyKind> policies;
  if (policy_arg == "all") {
    policies = {PolicyKind::kRoundRobin, PolicyKind::kJoinShortestQueue,
                PolicyKind::kEnergyAware};
  } else {
    policies = {serve::cluster::parse_policy_kind(policy_arg)};
  }
  std::vector<int> board_counts;
  if (boards_arg > 0) {
    board_counts = {boards_arg};
  } else if (partition) {
    board_counts = {2, 3};  // a partition needs boards <= ladder rungs
  } else {
    board_counts = {1, 2, 4};
  }

  std::printf(
      "closed-loop sweep (%s mode): %d requests per point, 6 clients, 3:1\n"
      "interactive:batch, %.0f ms interactive deadline. FPS and J are\n"
      "simulated board quantities from the DES-priced rung cost tables.\n",
      mode.c_str(), total, deadline_ms);

  eval::Table table({"Boards", "Policy", "Served", "Drop %", "Degrade %",
                     "Sim FPS", "FPS/W", "p99 int [ms]", "p99 batch [ms]"});
  for (int boards : board_counts) {
    for (PolicyKind kind : policies) {
      ClusterConfig cluster_cfg;
      cluster_cfg.policy = kind;
      auto topo = partition
                      ? serve::cluster::partition_ladder(ladder, boards,
                                                         server_cfg)
                      : serve::cluster::replicate_ladder(ladder, boards,
                                                         server_cfg);
      ClusterRouter router(std::move(topo), cluster_cfg);
      const PointResult p = run_point(router, /*clients=*/6, total, input_size,
                                      deadline_ms, seed);
      const auto& c = p.cluster;
      table.add_row({std::to_string(boards), std::string(to_string(kind)),
                     std::to_string(c.served),
                     eval::Table::num(pct(c.rejected + c.expired + c.errors,
                                          c.submitted),
                                      1),
                     eval::Table::num(pct(c.degraded, c.submitted), 1),
                     eval::Table::num(c.simulated_fps, 1),
                     eval::Table::num(c.fps_per_watt, 2),
                     eval::Table::num(p.p99_interactive_ms, 1),
                     eval::Table::num(p.p99_batch_ms, 1)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: with replication every board hosts the full ladder and the\n"
      "policy only spreads load, so simulated FPS grows with board count. In\n"
      "partition mode a board *is* a rung band: round-robin alternates\n"
      "expensive and cheap rungs while the energy-aware policy keeps\n"
      "deadline-feasible traffic on the cheapest band, buying more FPS/W at\n"
      "the same offered load.\n\n");

  // ---- Act two: fault injection and drain ----
  std::printf("fault drain: 2 replicated boards, round-robin, board0 faulted\n");
  ClusterConfig cluster_cfg;
  cluster_cfg.policy = PolicyKind::kRoundRobin;
  ClusterRouter router(serve::cluster::replicate_ladder(ladder, 2, server_cfg),
                       cluster_cfg);
  const auto served_counts = [&router] {
    std::vector<std::uint64_t> out;
    for (std::size_t b = 0; b < router.num_boards(); ++b) {
      out.push_back(router.board(b).metrics().served);
    }
    return out;
  };
  const auto drive = [&](int frames) {
    run_point(router, /*clients=*/2, frames, input_size, deadline_ms, seed);
  };

  router.board(0).inject_fault(true);
  drive(12);
  auto during = served_counts();
  std::printf("  faulted : board0 served %llu, board1 served %llu "
              "(all traffic drained to the healthy peer)\n",
              static_cast<unsigned long long>(during[0]),
              static_cast<unsigned long long>(during[1]));

  router.board(0).inject_fault(false);
  drive(12);
  auto after = served_counts();
  std::printf("  healed  : board0 served %llu (+%llu), board1 served %llu "
              "(+%llu) — round-robin spread resumed\n",
              static_cast<unsigned long long>(after[0]),
              static_cast<unsigned long long>(after[0] - during[0]),
              static_cast<unsigned long long>(after[1]),
              static_cast<unsigned long long>(after[1] - during[1]));
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "cluster_demo: %s\n", e.what());
  return 1;
}
