// Wire demo: the distributed serving tier end to end. A Supervisor
// fork/execs a small fleet of seneca_boardd worker processes (each one a
// simulated ZCU104 behind a SENECA-Wire socket), attaches them to a
// ClusterRouter as RemoteBoards, and a closed-loop client fleet drives
// traffic over real loopback sockets. Act two SIGKILLs a worker mid-run:
// the router migrates its queued work to the survivors, the supervisor
// respawns it with backoff, and the fleet keeps serving throughout.
//
//   ./wire_demo [--boards 2] [--requests 64] [--input 32]
//               [--transport tcp|unix] [--boardd /path/to/seneca_boardd]
//
// The default --boardd is the build tree's binary (injected by CMake).

#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "eval/table.hpp"
#include "serve/cluster/router.hpp"
#include "serve/net/supervisor.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

using namespace seneca;
using serve::cluster::ClusterConfig;
using serve::cluster::ClusterRouter;
using serve::net::Supervisor;
using serve::net::SupervisorConfig;
using serve::net::WorkerSpec;

struct Tally {
  int ok = 0;
  int other = 0;
};

/// Closed loop: 4 clients share `total` submissions (3:1 interactive:batch,
/// deadline-free), each pacing on its own previous future.
Tally drive(ClusterRouter& router, int total, std::int64_t input) {
  std::atomic<int> next{0};
  std::atomic<int> ok{0};
  std::atomic<int> other{0};
  std::vector<std::thread> fleet;
  for (int c = 0; c < 4; ++c) {
    fleet.emplace_back([&, c] {
      util::Rng rng(static_cast<std::uint64_t>(c) + 1);
      tensor::TensorI8 in(tensor::Shape{input, input, 1});
      for (auto& v : in) {
        v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
      }
      for (;;) {
        const int i = next.fetch_add(1);
        if (i >= total) return;
        const serve::Priority lane = i % 4 == 3
                                         ? serve::Priority::kBatch
                                         : serve::Priority::kInteractive;
        const serve::Response r = router.submit(lane, in, 0.0).get();
        (r.status == serve::Status::kOk ? ok : other).fetch_add(1);
      }
    });
  }
  for (auto& t : fleet) t.join();
  return {ok.load(), other.load()};
}

void print_fleet(const Supervisor& sup, const std::vector<int>& slots) {
  eval::Table table({"Slot", "PID", "Endpoint", "Served", "Inflight"});
  for (const int slot : slots) {
    const auto board = sup.worker_board(slot);
    if (!board) continue;
    table.add_row({std::to_string(slot), std::to_string(sup.worker_pid(slot)),
                   board->endpoint().to_string(),
                   std::to_string(board->frames_served()),
                   std::to_string(board->inflight())});
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  const int boards = static_cast<int>(cli.get_int("boards", 2));
  const int requests = static_cast<int>(cli.get_int("requests", 64));
  const std::int64_t input = cli.get_int("input", 32);
  const std::string transport = cli.get("transport", "tcp");

  SupervisorConfig scfg;
  scfg.boardd_path = cli.get("boardd", SENECA_BOARDD_PATH);
  scfg.remote.heartbeat_interval_ms = 10.0;
  scfg.restart_backoff_initial_ms = 50.0;
  if (transport == "unix") {
    scfg.transport = serve::net::Endpoint::Kind::kUnix;
  } else if (transport != "tcp") {
    throw std::invalid_argument("unknown --transport: " + transport);
  }

  ClusterConfig ccfg;
  ccfg.policy = serve::cluster::PolicyKind::kJoinShortestQueue;
  ccfg.migrate.enable = true;
  ccfg.migrate.monitor_interval_ms = 5.0;
  ClusterRouter router(std::vector<std::shared_ptr<serve::cluster::Board>>{},
                       ccfg);
  Supervisor sup(scfg, router);

  std::printf("spawning %d seneca_boardd workers (%s)...\n", boards,
              transport.c_str());
  std::vector<int> slots;
  for (int b = 0; b < boards; ++b) {
    WorkerSpec spec;
    spec.ladder = {"4M", "2M"};
    spec.input = static_cast<int>(input);
    spec.name = "demo" + std::to_string(b);
    slots.push_back(sup.add_worker(spec));
  }
  sup.start();
  print_fleet(sup, slots);

  // ---- act 1: traffic over real sockets -------------------------------
  const Tally t1 = drive(router, requests, input);
  std::printf("act 1: %d/%d ok over the wire\n\n", t1.ok, requests);
  print_fleet(sup, slots);

  // ---- act 2: SIGKILL a worker mid-run --------------------------------
  const int victim = slots.front();
  const pid_t old_pid = sup.worker_pid(victim);
  std::printf("act 2: SIGKILL slot %d (pid %d), traffic continues...\n",
              victim, static_cast<int>(old_pid));
  ::kill(old_pid, SIGKILL);
  const Tally t2 = drive(router, requests, input);

  // Bounded wait for the supervisor's restart cycle to finish.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (std::chrono::steady_clock::now() < deadline) {
    const auto board = sup.worker_board(victim);
    if (sup.worker_pid(victim) != old_pid && board && !board->dead()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  const auto stats = sup.stats();
  std::printf(
      "act 2: %d/%d ok during the outage window; supervisor restarted the\n"
      "worker as pid %d (%llu restart(s), %zu alive)\n\n",
      t2.ok, requests, static_cast<int>(sup.worker_pid(victim)),
      static_cast<unsigned long long>(stats.restarts), stats.alive);
  print_fleet(sup, slots);

  const auto snap = router.snapshot();
  std::printf(
      "cluster: served=%llu migrations=%llu expired=%llu sim-FPS=%.1f\n",
      static_cast<unsigned long long>(snap.served),
      static_cast<unsigned long long>(snap.migrations),
      static_cast<unsigned long long>(snap.expired), snap.simulated_fps);

  sup.stop();
  router.shutdown();
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "wire_demo: %s\n", e.what());
  return 1;
}
