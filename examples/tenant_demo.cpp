// SENECA-Tenants demo: three hospital tenants share one serving stack under
// open-loop traffic shaped like a real day. The population framing is the
// point: offered load is `users x per-user rate` (a million casual users at
// 0.0001 req/s each is 100 req/s), generated open-loop so the server's
// behaviour cannot throttle what the world offers.
//
//   metro    — a metro hospital network: large population, diurnal rhythm
//   icu      — a small ICU fleet: steady Poisson, strict deadlines, weight 4
//   batch    — an overnight research batch: flash-crowd, weight 1
//
// Per-tenant token buckets clamp each tenant to its contract at the door
// and DRR weighted-fair dequeue splits capacity inside each lane, so the
// ICU's tail survives both the metro peak and the research flood. The
// server's own per-tenant metrics (MetricsSnapshot.tenants) are printed
// next to the loadgen's report: two independent measurements of the same
// story.
//
//   ./tenant_demo [--users 1000000] [--per-user-rate 0.00006] [--duration-s 6]
//                 [--input 32] [--seed 42] [--time-scale 1.0] [--json out.json]

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/workflow.hpp"
#include "eval/table.hpp"
#include "loadgen/loadgen.hpp"
#include "serve/server.hpp"
#include "serve/tenant/tenant.hpp"
#include "util/cli.hpp"

namespace {
using namespace seneca;
}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  loadgen::RunConfig run_cfg;
  run_cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  run_cfg.input_size = cli.get_int("input", 32);
  run_cfg.time_scale = cli.get_double("time-scale", 1.0);
  const double duration_s = cli.get_double("duration-s", 6.0);
  const std::int64_t users = cli.get_int("users", 1000000);
  const double per_user = cli.get_double("per-user-rate", 0.00006);
  const std::string json_path = cli.get("json", "");

  std::printf("building ladder:");
  std::vector<serve::ModelSpec> ladder;
  for (const char* name : {"4M", "2M"}) {
    std::printf(" %s", name);
    std::fflush(stdout);
    ladder.push_back({name,
                      core::build_timing_xmodel(name, dpu::DpuArch::b4096(),
                                                run_cfg.input_size),
                      2});
  }
  std::printf(" done\n");

  // Tenant contracts. Rates are what each tenant *bought*; the buckets
  // enforce them, DRR weights split the queue beyond them.
  auto registry = std::make_shared<serve::tenant::TenantRegistry>();
  const double metro_rate = static_cast<double>(users) * per_user;
  registry->add({1, "metro", /*rate=*/metro_rate * 1.2,
                 /*burst=*/metro_rate / 2.0 + 8.0, /*weight=*/2});
  registry->add({2, "icu", /*rate=*/30.0, /*burst=*/16.0, /*weight=*/4});
  registry->add({3, "batch", /*rate=*/5.0, /*burst=*/8.0, /*weight=*/1});

  serve::ServerConfig cfg;
  cfg.queue.capacity = 32;
  cfg.queue.policy = serve::OverloadPolicy::kDropExpired;
  cfg.batcher.max_batch_size = 2;
  cfg.batcher.max_wait_ms = 2.0;
  cfg.batcher.interactive_max_wait_ms = 0.0;
  cfg.batcher.interactive_max_batch_size = 1;
  cfg.degrade.queue_depth_high = 16;
  cfg.degrade.queue_depth_low = 4;
  cfg.degrade.min_dwell_ms = 25.0;
  cfg.tenants = registry;
  serve::InferenceServer server(ladder, cfg);

  // metro: the million-user population with a compressed diurnal day.
  loadgen::TenantWorkload metro;
  metro.tenant = 1;
  metro.name = "metro";
  metro.arrivals.kind = loadgen::ArrivalKind::kDiurnal;
  metro.arrivals.users = users;
  metro.arrivals.per_user_rate_per_s = per_user;
  metro.arrivals.duration_s = duration_s;
  metro.arrivals.amplitude = 0.6;
  metro.interactive_fraction = 0.8;
  metro.deadline_ms = 250.0;

  // icu: few devices, steady, strict.
  loadgen::TenantWorkload icu;
  icu.tenant = 2;
  icu.name = "icu";
  icu.arrivals.kind = loadgen::ArrivalKind::kPoisson;
  icu.arrivals.rate_per_s = 20.0;
  icu.arrivals.duration_s = duration_s;
  icu.interactive_fraction = 1.0;
  icu.deadline_ms = 150.0;

  // batch: an overnight job that floods for the middle of the window.
  loadgen::TenantWorkload batch;
  batch.tenant = 3;
  batch.name = "batch";
  batch.arrivals.kind = loadgen::ArrivalKind::kFlashCrowd;
  batch.arrivals.rate_per_s = 5.0;
  batch.arrivals.duration_s = duration_s;
  batch.arrivals.burst_multiplier = 10.0;
  batch.interactive_fraction = 0.0;
  batch.deadline_ms = 0.0;

  std::printf(
      "population: %lld users x %.2g req/s each = %.1f req/s offered by "
      "metro at peak-of-day; icu poisson 20 req/s; batch flash-crowd 10x\n",
      static_cast<long long>(users), per_user, metro.arrivals.peak_rate());

  auto submit = [&server](serve::Priority p, tensor::TensorI8 input,
                          double deadline_ms, serve::TenantId tenant) {
    return server.submit(p, std::move(input), deadline_ms, tenant);
  };
  const auto reports =
      loadgen::run_open_loop(submit, {metro, icu, batch}, run_cfg);

  eval::Table table({"Tenant", "Offered", "OK", "Throttled+Drop", "p50 [ms]",
                     "p99 [ms]", "Goodput/s"});
  for (const auto& r : reports) {
    table.add_row({r.name, std::to_string(r.offered), std::to_string(r.ok),
                   std::to_string(r.dropped()), eval::Table::num(r.p50_ms, 1),
                   eval::Table::num(r.p99_ms, 1),
                   eval::Table::num(r.goodput_per_s, 1)});
  }
  std::printf("%s\n", table.render().c_str());

  // The server kept its own books: per-tenant counters and histograms
  // surfaced through MetricsSnapshot.
  std::printf("server-side per-tenant metrics:\n%s\n",
              server.metrics().format().c_str());

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << loadgen::to_json(reports);
    std::printf("wrote %s\n", json_path.c_str());
  }
  std::printf(
      "Reading: each tenant is clamped to its contracted rate at the door\n"
      "(throttled column) and DRR splits dequeue capacity 2:4:1 inside each\n"
      "lane, so the ICU's strict tail survives both the metro diurnal peak\n"
      "and the batch flood. The loadgen table (exact samples) and the\n"
      "server's own histograms tell the same story independently.\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "tenant_demo: %s\n", e.what());
  return 1;
}
