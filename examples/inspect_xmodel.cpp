// xmodel inspection tool (the deployment analog of `xdputil xmodel -l`):
// loads a compiled .xmodel file and prints its disassembly and per-layer
// latency breakdown. If no file is given, compiles the 1M SENECA model
// in-process first so the tool is runnable out of the box.
//
//   ./inspect_xmodel [path/to/model.xmodel] [--instructions false]
//                    [--sharers 2] [--breakdown true]

#include <cstdio>

#include "core/workflow.hpp"
#include "dpu/disasm.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace seneca;
  const util::Cli cli(argc, argv);

  dpu::XModel model;
  if (!cli.positional().empty()) {
    model = dpu::XModel::load(cli.positional()[0]);
    std::printf("loaded %s\n\n", cli.positional()[0].c_str());
  } else {
    std::printf("no xmodel given; compiling the 1M model at 256x256...\n\n");
    model = core::build_timing_xmodel(cli.get("model", "1M"),
                                      dpu::DpuArch::b4096(), 256,
                                      static_cast<int>(cli.get_int("opt", 1)));
  }

  dpu::DisasmOptions opts;
  opts.instructions = cli.get_bool("instructions", true);
  opts.summary = true;
  opts.bw_sharers = static_cast<int>(cli.get_int("sharers", 2));
  std::printf("%s\n", dpu::disassemble(model, opts).c_str());

  if (cli.get_bool("breakdown", true)) {
    std::printf("%s", dpu::latency_breakdown(model, opts.bw_sharers).c_str());
  }
  return 0;
}
