// Intraoperative streaming scenario (the paper's motivating deployment,
// §I): CT frames arrive in real time at the surgery table and must be
// segmented within a latency budget on the energy-constrained edge device.
//
// Simulates a frame source at a configurable rate feeding the dual-core DPU
// through the VART runtime (discrete-event model), sweeping the thread
// count, and reports sustained FPS, latency percentiles, deadline misses,
// and energy per frame.
//
//   ./surgery_stream [--model 1M] [--rate 300] [--frames 1500]
//                    [--deadline-ms 20]

#include <algorithm>
#include <cstdio>

#include "core/workflow.hpp"
#include "eval/table.hpp"
#include "platform/power.hpp"
#include "runtime/des.hpp"
#include "runtime/soc_sim.hpp"
#include "util/cli.hpp"

namespace {

using namespace seneca;

struct StreamResult {
  double completed_fps = 0.0;
  double latency_mean_ms = 0.0;
  double latency_p99_ms = 0.0;
  double miss_rate = 0.0;   // frames over deadline
  double drop_rate = 0.0;   // frames that queued for more than one period
};

/// Open-loop stream: frames arrive every 1/rate seconds regardless of
/// completion; a bounded queue (one period of slack per worker) drops
/// frames that cannot be admitted — the realistic intraoperative setup.
StreamResult simulate_stream(const dpu::XModel& model, int threads,
                             double rate_fps, int frames, double deadline_ms) {
  runtime::EventQueue queue;
  runtime::Resource arm(queue, 4);
  runtime::Resource dpu(queue, model.arch.cores);
  runtime::SocConfig soc;

  std::vector<double> latencies;
  int dropped = 0;
  int in_flight = 0;
  const int max_in_flight = threads;  // VART workers bound admission

  std::function<void(int)> arrive = [&](int index) {
    if (index >= frames) return;
    queue.schedule_at(index / rate_fps, [&, index] {
      arrive(index + 1);
      if (in_flight >= max_in_flight) {
        ++dropped;
        return;
      }
      ++in_flight;
      const double start = queue.now();
      arm.acquire([&, start] {
        queue.schedule_after((soc.preprocess_ms + soc.dispatch_ms) * 1e-3, [&, start] {
          arm.release();
          dpu.acquire([&, start] {
            const int sharers = std::max(1, dpu.in_use());
            queue.schedule_after(model.latency_seconds(sharers), [&, start] {
              dpu.release();
              arm.acquire([&, start] {
                queue.schedule_after(soc.postprocess_ms * 1e-3, [&, start] {
                  arm.release();
                  latencies.push_back(queue.now() - start);
                  --in_flight;
                });
              });
            });
          });
        });
      });
    });
  };
  arrive(0);
  const double end = queue.run();

  StreamResult result;
  result.completed_fps = latencies.empty() ? 0.0 : static_cast<double>(latencies.size()) / end;
  if (!latencies.empty()) {
    double sum = 0.0;
    for (double l : latencies) sum += l;
    result.latency_mean_ms = 1e3 * sum / static_cast<double>(latencies.size());
    std::vector<double> sorted = latencies;
    std::sort(sorted.begin(), sorted.end());
    result.latency_p99_ms =
        1e3 * sorted[static_cast<std::size_t>(0.99 * static_cast<double>(sorted.size() - 1))];
    int misses = 0;
    for (double l : latencies) misses += (1e3 * l > deadline_ms);
    result.miss_rate = static_cast<double>(misses) / static_cast<double>(latencies.size());
  }
  result.drop_rate = static_cast<double>(dropped) / static_cast<double>(frames);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const std::string model_name = cli.get("model", "1M");
  const double rate = cli.get_double("rate", 300.0);
  const int frames = static_cast<int>(cli.get_int("frames", 1500));
  const double deadline_ms = cli.get_double("deadline-ms", 20.0);

  std::printf("surgery stream: %s at %.0f frames/s, %.0f ms deadline\n",
              model_name.c_str(), rate, deadline_ms);
  const dpu::XModel xm = core::build_timing_xmodel(model_name);
  platform::ZcuPowerModel power;

  eval::Table table({"Threads", "Sustained FPS", "Mean lat [ms]", "p99 lat [ms]",
                     "Deadline misses", "Dropped", "J/frame"});
  for (int threads : {1, 2, 4, 8}) {
    const StreamResult r = simulate_stream(xm, threads, rate, frames, deadline_ms);
    // steady-state power approximated from a closed-loop run at this setting
    runtime::SocConfig soc;
    const auto closed = runtime::simulate_throughput(xm, soc, threads, 400);
    const double watts = power.watts(closed, xm.compute_utilization(),
                                     xm.total_ddr_bytes() / 1e9 * closed.fps);
    table.add_row({std::to_string(threads), eval::Table::num(r.completed_fps, 1),
                   eval::Table::num(r.latency_mean_ms),
                   eval::Table::num(r.latency_p99_ms),
                   eval::Table::num(100.0 * r.miss_rate, 1) + " %",
                   eval::Table::num(100.0 * r.drop_rate, 1) + " %",
                   eval::Table::num(watts / std::max(r.completed_fps, 1e-9), 3)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: 4 VART threads keep both DPU cores fed, sustaining the\n"
      "incoming rate with stable p99 latency; 8 threads add queueing delay\n"
      "and power without throughput (the paper's observation in Sec. IV-B).\n");
  return 0;
}
