// SENECA-Serve demo: a closed-loop client fleet drives the InferenceServer
// through a sweep of offered load and prints the serving story as a table:
// past saturation the server first degrades (steps down the model ladder
// 16M -> 8M -> 4M -> 2M for cheaper inferences) and then drops (admission
// control), while the interactive lane's tail latency stays below the batch
// lane's at every load point.
//
//   ./serve_demo [--input 32] [--requests 144] [--capacity 16]
//                [--policy reject-newest|drop-expired|evict-deadline]
//                [--deadline-ms 150] [--seed 42]

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/workflow.hpp"
#include "eval/table.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace seneca;

struct Sample {
  serve::Priority lane;
  serve::Status status;
  bool degraded = false;
  double total_ms = 0.0;
};

struct PointResult {
  int clients = 0;
  double offered_per_s = 0.0;
  std::uint64_t served = 0;
  double drop_pct = 0.0;
  double degrade_pct = 0.0;
  double drop_or_degrade_pct = 0.0;
  double p50_interactive_ms = 0.0;
  double p99_interactive_ms = 0.0;
  double p99_batch_ms = 0.0;
  std::string end_model;
};

double quantile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[static_cast<std::size_t>(q * static_cast<double>(v.size() - 1))];
}

serve::OverloadPolicy parse_policy(const std::string& s) {
  if (s == "drop-expired") return serve::OverloadPolicy::kDropExpired;
  if (s == "evict-deadline") return serve::OverloadPolicy::kEvictDeadline;
  return serve::OverloadPolicy::kRejectNewest;
}

/// One load point: `clients` closed-loop clients share `total` requests
/// (every 4th goes to the batch lane, the rest are interactive frames with
/// a deadline), each submitting the next request only after its previous
/// future resolved.
PointResult run_point(const std::vector<serve::ModelSpec>& ladder,
                      const serve::ServerConfig& cfg, int clients, int total,
                      std::int64_t input_size, double deadline_ms,
                      std::uint64_t seed) {
  serve::InferenceServer server(ladder, cfg);

  std::atomic<int> next_request{0};
  std::vector<std::vector<Sample>> per_client(static_cast<std::size_t>(clients));
  util::Timer wall;
  std::vector<std::thread> fleet;
  fleet.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    fleet.emplace_back([&, c] {
      // Client c draws from its own deterministic stream of the run seed.
      util::Rng rng = util::Rng(seed).split(static_cast<std::uint64_t>(c) + 1);
      tensor::TensorI8 input(tensor::Shape{input_size, input_size, 1});
      for (auto& v : input) {
        v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
      }
      for (;;) {
        const int i = next_request.fetch_add(1);
        if (i >= total) return;
        const bool batch_lane = i % 4 == 3;
        const serve::Priority lane =
            batch_lane ? serve::Priority::kBatch : serve::Priority::kInteractive;
        auto future =
            server.submit(lane, input, batch_lane ? 0.0 : deadline_ms);
        const serve::Response r = future.get();
        per_client[static_cast<std::size_t>(c)].push_back(
            {lane, r.status, r.degraded, r.total_ms});
        // Closed-loop pacing: a think time long enough that degradation can
        // actually restore headroom (the server oscillates between ladder
        // rungs instead of pinning to the cheapest), and a real client's
        // backoff after a shed request (otherwise rejected clients spin
        // through their quota at memcpy speed and nothing gets served).
        std::this_thread::sleep_for(std::chrono::milliseconds(
            r.status == serve::Status::kOk ? 60 : 100));
      }
    });
  }
  for (auto& t : fleet) t.join();
  const double wall_s = wall.seconds();

  PointResult p;
  p.clients = clients;
  std::vector<double> interactive_ms;
  std::vector<double> batch_ms;
  std::uint64_t dropped = 0;
  std::uint64_t degraded = 0;
  std::uint64_t submitted = 0;
  for (const auto& samples : per_client) {
    for (const auto& s : samples) {
      ++submitted;
      if (s.status != serve::Status::kOk) {
        ++dropped;
        continue;
      }
      if (s.degraded) ++degraded;
      (s.lane == serve::Priority::kInteractive ? interactive_ms : batch_ms)
          .push_back(s.total_ms);
    }
  }
  p.offered_per_s = wall_s > 0.0 ? static_cast<double>(submitted) / wall_s : 0.0;
  p.served = submitted - dropped;
  const double n = static_cast<double>(submitted);
  p.drop_pct = 100.0 * static_cast<double>(dropped) / n;
  p.degrade_pct = 100.0 * static_cast<double>(degraded) / n;
  p.drop_or_degrade_pct =
      100.0 * static_cast<double>(dropped + degraded) / n;
  p.p50_interactive_ms = quantile(interactive_ms, 0.50);
  p.p99_interactive_ms = quantile(interactive_ms, 0.99);
  p.p99_batch_ms = quantile(batch_ms, 0.99);
  p.end_model = server.model_name(server.degrade_level());
  return p;
}

}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  const std::int64_t input_size = cli.get_int("input", 32);
  const int total = static_cast<int>(cli.get_int("requests", 144));
  const double deadline_ms = cli.get_double("deadline-ms", 150.0);
  const std::string policy = cli.get("policy", "reject-newest");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  // The degradation ladder: the paper's model family ordered best-first.
  // At 32^2 the functional host execution gets monotonically cheaper down
  // the ladder, which is exactly the lever graceful degradation pulls.
  const std::vector<std::string> names = {"16M", "8M", "4M", "2M"};
  std::printf("building ladder:");
  std::vector<serve::ModelSpec> ladder;
  for (const auto& name : names) {
    std::printf(" %s", name.c_str());
    std::fflush(stdout);
    ladder.push_back(
        {name, core::build_timing_xmodel(name, dpu::DpuArch::b4096(), input_size),
         2});
  }
  std::printf(" done\n");

  serve::ServerConfig cfg;
  cfg.queue.capacity = static_cast<std::size_t>(cli.get_int("capacity", 16));
  cfg.queue.policy = parse_policy(policy);
  cfg.batcher.max_batch_size = 4;
  cfg.batcher.max_wait_ms = 20.0;  // batch lane trades latency for batching
  cfg.batcher.interactive_max_wait_ms = 0.0;
  // Batch members execute serially on the simulated core, so dispatch
  // interactive frames singly: a 4-deep interactive dispatch would
  // quadruple the tail latency of its own lane for zero throughput gain.
  cfg.batcher.interactive_max_batch_size = 1;
  // Thresholds sized against the closed loop: 8 clients can never queue 10
  // deep, so low/mid load stays at full quality by construction. At 16
  // clients the degraded ladder clears the backlog below `queue_depth_low`
  // and the server oscillates between rungs (partial degradation); at 32
  // the bounded queue pins full and degradation never lets up.
  cfg.degrade.queue_depth_high = 10;
  cfg.degrade.queue_depth_low = 6;
  cfg.degrade.min_dwell_ms = 25.0;

  std::printf(
      "closed-loop sweep: %d requests per point, 3:1 interactive:batch, "
      "%.0f ms interactive deadline, queue capacity %zu, policy %s\n",
      total, deadline_ms, cfg.queue.capacity, to_string(cfg.queue.policy));

  eval::Table table({"Clients", "Offered req/s", "Served", "Drop %", "Degrade %",
                     "Drop+Degr %", "p50 int [ms]", "p99 int [ms]",
                     "p99 batch [ms]", "End model"});
  for (int clients : {1, 2, 4, 8, 16, 32}) {
    const PointResult p =
        run_point(ladder, cfg, clients, total, input_size, deadline_ms, seed);
    table.add_row({std::to_string(p.clients), eval::Table::num(p.offered_per_s, 1),
                   std::to_string(p.served), eval::Table::num(p.drop_pct, 1),
                   eval::Table::num(p.degrade_pct, 1),
                   eval::Table::num(p.drop_or_degrade_pct, 1),
                   eval::Table::num(p.p50_interactive_ms, 1),
                   eval::Table::num(p.p99_interactive_ms, 1),
                   eval::Table::num(p.p99_batch_ms, 1), p.end_model});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: below saturation every request is served by the full-quality\n"
      "16M model. As offered load grows the scheduler first degrades down the\n"
      "ladder (cheaper models, served quality drops before requests do), then\n"
      "sheds load at admission; the drop-or-degrade rate rises monotonically\n"
      "past saturation. The interactive lane is drained before the batch lane\n"
      "and skips the batching window, so its p99 stays below the batch\n"
      "lane's at every load point.\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "serve_demo: %s\n", e.what());
  return 1;
}
