// Edge deployment (Fig. 1 step E end-to-end): train -> PTQ quantize ->
// compile to an xmodel file -> load it back -> run inference through the
// VART-style async runtime on the simulated dual-core DPU, and report the
// deployment metrics the paper evaluates: FPS, Watt, FPS/Watt, DSC.
//
//   ./edge_deployment [--model 1M] [--threads 4] [--images 2000]
//                     [--epochs 10] [--resolution 64]

#include <cstdio>

#include "core/evaluate.hpp"
#include "core/workflow.hpp"
#include "dpu/disasm.hpp"
#include "platform/power.hpp"
#include "quant/quantizer.hpp"
#include "runtime/soc_sim.hpp"
#include "runtime/vart.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace seneca;
  const util::Cli cli(argc, argv);
  const std::string model = cli.get("model", "1M");
  const int threads = static_cast<int>(cli.get_int("threads", 4));
  const int images = static_cast<int>(cli.get_int("images", 2000));

  // --- Steps A-D: dataset, model, training, quantization. ---
  core::WorkflowConfig cfg;
  cfg.dataset.num_volumes = static_cast<int>(cli.get_int("volumes", 16));
  cfg.dataset.slices_per_volume = 12;
  cfg.dataset.resolution = cli.get_int("resolution", 64);
  cfg.model_name = model;
  cfg.train.epochs = static_cast<int>(cli.get_int("epochs", 10));
  cfg.train.learning_rate = 2e-3f;
  cfg.train.lr_decay = 0.95f;
  cfg.calibration_images = 24;
  cfg.artifacts_dir = cli.get("artifacts", "artifacts");
  core::WorkflowArtifacts art = core::Workflow(cfg).run();

  // --- Step E: write the xmodel and "ship" it to the board. ---
  const std::filesystem::path xmodel_path =
      std::filesystem::path(cfg.artifacts_dir) / (model + ".xmodel");
  art.xmodel.save(xmodel_path);
  const dpu::XModel deployed = dpu::XModel::load(xmodel_path);
  std::printf("compiled %s -> %s (%zu layers, %zu instructions, %.2f MB weights)\n",
              model.c_str(), xmodel_path.string().c_str(), deployed.layers.size(),
              deployed.total_instructions(),
              static_cast<double>(deployed.weights.size()) / 1e6);

  // --- Functional inference through the VART runtime (bit-exact). ---
  runtime::VartRunner runner(deployed, threads);
  std::vector<tensor::TensorI8> inputs;
  const std::size_t n_eval = std::min<std::size_t>(art.dataset.test.size(), 24);
  for (std::size_t i = 0; i < n_eval; ++i) {
    inputs.push_back(quant::quantize_input(art.qgraph,
                                           art.dataset.test[i].sample.image));
  }
  const auto outputs = runner.run_batch(inputs);
  eval::SegmentationEvaluator evaluator(data::kNumClasses);
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    nn::LabelMap pred(tensor::Shape{cfg.dataset.resolution, cfg.dataset.resolution});
    const auto& out = outputs[i];
    const std::int64_t c = out.shape()[2];
    for (std::int64_t p = 0; p < pred.numel(); ++p) {
      std::int32_t best = 0;
      for (std::int64_t ch = 1; ch < c; ++ch) {
        if (out[p * c + ch] > out[p * c + best]) best = static_cast<std::int32_t>(ch);
      }
      pred[p] = best;
    }
    evaluator.add(pred, art.dataset.test[i].sample.labels);
  }
  std::printf("deployed INT8 global DSC over %zu test slices: %.2f %%\n",
              outputs.size(), 100.0 * evaluator.global_dice());

  // --- Timing/energy of a full-resolution (256x256) deployment. ---
  const dpu::XModel timing = core::build_timing_xmodel(model);
  runtime::SocConfig soc;
  const auto report = runtime::simulate_throughput(timing, soc, threads, images);
  platform::ZcuPowerModel power;
  const double watts = power.watts(report, timing.compute_utilization(),
                                   timing.total_ddr_bytes() / 1e9 * report.fps);
  platform::EnergyLogger logger;
  logger.log_phase(watts, report.total_seconds);
  std::printf(
      "\nZCU104 deployment model (%d threads, %d frames at 256x256):\n"
      "  throughput        %8.1f FPS\n"
      "  wall power        %8.2f W (Voltcraft-style logger: %.1f J over %.2f s)\n"
      "  energy efficiency %8.2f FPS/W\n"
      "  latency           %8.2f ms mean, %.2f ms p99\n"
      "  DPU busy cores    %8.2f / %d, array utilization %.0f %%\n",
      threads, images, report.fps, logger.mean_watts(), logger.joules(),
      logger.seconds(), report.fps / watts, report.latency_mean_ms,
      report.latency_p99_ms, report.dpu_busy_cores_avg, timing.arch.cores,
      100.0 * timing.compute_utilization());

  if (cli.get_bool("breakdown", false)) {
    std::printf("\n%s", dpu::latency_breakdown(timing).c_str());
  } else {
    std::printf("(add --breakdown true for the per-layer latency report)\n");
  }
  return 0;
}
