// Quickstart: the SENECA pipeline in ~60 lines.
//
// Builds a miniature synthetic CT-ORG dataset, trains the paper's 1M U-Net
// with the weighted Focal Tversky loss, evaluates FP32 Dice, quantizes to
// INT8, and compares — all on the host, no hardware required.
//
//   ./quickstart [--volumes 16] [--slices 12] [--resolution 64]
//                [--epochs 10] [--model 1M]

#include <cstdio>

#include "core/evaluate.hpp"
#include "core/workflow.hpp"
#include "data/organs.hpp"
#include "eval/table.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace seneca;
  const util::Cli cli(argc, argv);

  core::WorkflowConfig cfg;
  cfg.dataset.num_volumes = static_cast<int>(cli.get_int("volumes", 16));
  cfg.dataset.slices_per_volume = static_cast<int>(cli.get_int("slices", 12));
  cfg.dataset.resolution = cli.get_int("resolution", 64);
  cfg.model_name = cli.get("model", "1M");
  cfg.train.epochs = static_cast<int>(cli.get_int("epochs", 10));
  cfg.train.learning_rate = 2e-3f;
  cfg.train.lr_decay = 0.95f;
  cfg.train.verbose = true;
  cfg.calibration_images = 24;
  cfg.artifacts_dir = cli.get("artifacts", "artifacts");

  std::printf("SENECA quickstart: model %s, %d volumes at %lldx%lld\n",
              cfg.model_name.c_str(), cfg.dataset.num_volumes,
              static_cast<long long>(cfg.dataset.resolution),
              static_cast<long long>(cfg.dataset.resolution));

  core::Workflow workflow(cfg);
  core::WorkflowArtifacts art = workflow.run();
  std::printf("trained (%s); parameters: %.3f M\n",
              art.trained_from_cache ? "from cache" : "fresh",
              static_cast<double>(art.fp32->num_parameters()) / 1e6);

  auto fp32 = core::evaluate_fp32(*art.fp32, art.dataset.test);
  auto int8 = core::evaluate_int8(art.xmodel, art.dataset.test);

  eval::Table table({"Class", "FP32 DSC [%]", "INT8 DSC [%]"});
  const auto d32 = fp32.dice_per_class();
  const auto d8 = int8.dice_per_class();
  for (std::int64_t c = 0; c < data::kNumClasses; ++c) {
    table.add_row({std::string(data::organ_name(static_cast<std::int32_t>(c))),
                   eval::Table::num(100.0 * d32[static_cast<std::size_t>(c)]),
                   eval::Table::num(100.0 * d8[static_cast<std::size_t>(c)])});
  }
  table.add_row({"GLOBAL (organ-weighted)",
                 eval::Table::num(100.0 * fp32.global_dice()),
                 eval::Table::num(100.0 * int8.global_dice())});
  std::printf("\n%s\n", table.render().c_str());
  std::printf("INT8 model: %lld weight bytes, %.2fx smaller than FP32\n",
              static_cast<long long>(art.qgraph.weight_bytes()),
              4.0 * static_cast<double>(art.fp32->num_parameters()) /
                  static_cast<double>(art.qgraph.weight_bytes()));
  return 0;
}
