// Calibration study (§III-D / Table III): quantify how the composition of
// the PTQ calibration set changes per-organ INT8 accuracy. Trains one
// model, quantizes it twice — with a randomly sampled calibration set and
// with the frequency-corrected "manual" set — and compares per-organ DSC.
//
//   ./calibration_study [--volumes 20] [--resolution 64] [--epochs 10]
//                       [--calibration 24]

#include <cstdio>

#include "core/evaluate.hpp"
#include "core/workflow.hpp"
#include "data/calibration.hpp"
#include "dpu/compiler.hpp"
#include "eval/table.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace seneca;
  const util::Cli cli(argc, argv);

  core::WorkflowConfig cfg;
  cfg.dataset.num_volumes = static_cast<int>(cli.get_int("volumes", 20));
  cfg.dataset.slices_per_volume = 12;
  cfg.dataset.resolution = cli.get_int("resolution", 64);
  cfg.model_name = cli.get("model", "1M");
  cfg.train.epochs = static_cast<int>(cli.get_int("epochs", 10));
  cfg.train.learning_rate = 2e-3f;
  cfg.train.lr_decay = 0.95f;
  cfg.calibration_images = static_cast<std::size_t>(cli.get_int("calibration", 24));
  cfg.artifacts_dir = cli.get("artifacts", "artifacts");

  // Train once (cached); quantize twice with different calibration sets.
  core::WorkflowArtifacts art = core::Workflow(cfg).run();
  const auto random_set = data::sample_calibration_random(
      art.dataset.train, cfg.calibration_images, 5);
  const auto manual_set = data::sample_calibration_manual(
      art.dataset.train, cfg.calibration_images);

  std::printf("calibration-set organ frequencies (%% of labeled pixels):\n");
  eval::Table freq_table({"Sampling", "Liver", "Bladder", "Lungs", "Kidneys", "Bones"});
  auto freq_row = [&](const char* name, const std::array<double, 5>& f) {
    freq_table.add_row({name, eval::Table::num(f[0]), eval::Table::num(f[1]),
                        eval::Table::num(f[2]), eval::Table::num(f[3]),
                        eval::Table::num(f[4])});
  };
  freq_row("Random", random_set.frequencies);
  freq_row("Manual", manual_set.frequencies);
  std::printf("%s\n", freq_table.render().c_str());

  auto quantize_and_eval = [&](const std::vector<tensor::TensorF>& images) {
    quant::QGraph qg = quant::quantize(art.folded, images);
    dpu::CompileOptions copts;
    copts.model_name = cfg.model_name;
    const dpu::XModel xm = dpu::compile(qg, copts);
    return core::evaluate_int8(xm, art.dataset.test);
  };
  auto random_eval = quantize_and_eval(random_set.images);
  auto manual_eval = quantize_and_eval(manual_set.images);
  auto fp32_eval = core::evaluate_fp32(*art.fp32, art.dataset.test);

  eval::Table table({"Class", "FP32", "INT8 random calib", "INT8 manual calib"});
  const auto dr = random_eval.dice_per_class();
  const auto dm = manual_eval.dice_per_class();
  const auto df = fp32_eval.dice_per_class();
  for (std::int64_t c = 1; c < data::kNumClasses; ++c) {
    const auto cs = static_cast<std::size_t>(c);
    table.add_row({std::string(data::organ_name(static_cast<std::int32_t>(c))),
                   eval::Table::num(100.0 * df[cs]),
                   eval::Table::num(100.0 * dr[cs]),
                   eval::Table::num(100.0 * dm[cs])});
  }
  table.add_row({"GLOBAL", eval::Table::num(100.0 * fp32_eval.global_dice()),
                 eval::Table::num(100.0 * random_eval.global_dice()),
                 eval::Table::num(100.0 * manual_eval.global_dice())});
  std::printf("DSC [%%] on the test split:\n%s\n", table.render().c_str());
  std::printf(
      "The manual (frequency-corrected) set boosts the representation of\n"
      "bladder/kidneys during activation-range calibration, which is the\n"
      "paper's recipe for protecting small organs through quantization.\n");
  return 0;
}
