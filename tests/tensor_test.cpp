// Unit tests for the tensor library: Shape, Tensor, image writers.
#include <gtest/gtest.h>

#include <filesystem>

#include "tensor/image_io.hpp"
#include "tensor/tensor.hpp"
#include "util/io.hpp"

namespace seneca::tensor {
namespace {

TEST(Shape, RankAndDims) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s[0], 2);
  EXPECT_EQ(s[1], 3);
  EXPECT_EQ(s[2], 4);
  EXPECT_EQ(s.numel(), 24);
}

TEST(Shape, EmptyShape) {
  Shape s;
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.numel(), 1);
}

TEST(Shape, Equality) {
  EXPECT_EQ((Shape{2, 3}), (Shape{2, 3}));
  EXPECT_NE((Shape{2, 3}), (Shape{3, 2}));
  EXPECT_NE((Shape{2, 3}), (Shape{2, 3, 1}));
}

TEST(Shape, OutOfRangeThrows) {
  Shape s{2, 3};
  EXPECT_THROW(s[2], std::out_of_range);
}

TEST(Shape, NegativeDimThrows) {
  EXPECT_THROW((Shape{2, -1}), std::invalid_argument);
}

TEST(Shape, ToString) {
  EXPECT_EQ((Shape{4, 5, 6}).to_string(), "[4x5x6]");
}

TEST(Tensor, FillAndIndex) {
  TensorF t(Shape{2, 2, 3}, 1.5f);
  EXPECT_EQ(t.numel(), 12);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_FLOAT_EQ(t[i], 1.5f);
  t.at(1, 0, 2) = 7.f;
  EXPECT_FLOAT_EQ(t[(1 * 2 + 0) * 3 + 2], 7.f);
}

TEST(Tensor, At4D) {
  TensorF t(Shape{2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 9.f;
  EXPECT_FLOAT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 9.f);
}

TEST(Tensor, ReshapePreservesData) {
  TensorF t(Shape{2, 6});
  for (std::int64_t i = 0; i < 12; ++i) t[i] = static_cast<float>(i);
  t.reshape(Shape{3, 4});
  EXPECT_EQ(t.shape(), (Shape{3, 4}));
  EXPECT_FLOAT_EQ(t[7], 7.f);
}

TEST(Tensor, ReshapeMismatchThrows) {
  TensorF t(Shape{2, 6});
  EXPECT_THROW(t.reshape(Shape{5, 2}), std::invalid_argument);
}

TEST(Tensor, MaxAbs) {
  TensorF t(Shape{4});
  t[0] = -3.f; t[1] = 2.f; t[2] = 0.f; t[3] = 2.9f;
  EXPECT_FLOAT_EQ(max_abs(t), 3.f);
}

TEST(Tensor, MaxAbsDiff) {
  TensorF a(Shape{3}, 1.f), b(Shape{3}, 1.f);
  b[1] = 1.5f;
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 0.5);
}

TEST(Tensor, MaxAbsDiffShapeMismatchThrows) {
  TensorF a(Shape{3}), b(Shape{4});
  EXPECT_THROW(max_abs_diff(a, b), std::invalid_argument);
}

TEST(Tensor, Int8TensorBasics) {
  TensorI8 t(Shape{2, 2}, -5);
  EXPECT_EQ(t[3], -5);
  t[0] = 127;
  EXPECT_EQ(t[0], 127);
}

TEST(ImageIo, PgmHeaderAndSize) {
  TensorF img(Shape{4, 6, 1}, 0.f);
  const auto path = std::filesystem::temp_directory_path() / "seneca_t.pgm";
  write_pgm(path, img);
  const auto data = util::read_file(path);
  const std::string head(data.begin(), data.begin() + 2);
  EXPECT_EQ(head, "P5");
  // header "P5\n6 4\n255\n" = 11 bytes + 24 pixels
  EXPECT_EQ(data.size(), 11u + 24u);
  std::filesystem::remove(path);
}

TEST(ImageIo, PgmValueMapping) {
  TensorF img(Shape{1, 3, 1});
  img[0] = -1.f; img[1] = 0.f; img[2] = 1.f;
  const auto path = std::filesystem::temp_directory_path() / "seneca_t2.pgm";
  write_pgm(path, img);
  const auto data = util::read_file(path);
  const std::size_t off = data.size() - 3;
  EXPECT_EQ(data[off + 0], 0);
  EXPECT_EQ(data[off + 1], 128);
  EXPECT_EQ(data[off + 2], 255);
  std::filesystem::remove(path);
}

TEST(ImageIo, PpmRejectsWrongShape) {
  TensorU8 rgb(Shape{2, 2, 4});
  EXPECT_THROW(write_ppm("/tmp/x.ppm", rgb), std::invalid_argument);
}

TEST(ImageIo, RenderSegmentationColorsOrgans) {
  TensorF ct(Shape{2, 2, 1}, 0.f);
  Tensor<std::int32_t> labels(Shape{2, 2}, 0);
  labels[1] = 1;  // liver -> red-dominant
  labels[2] = 3;  // lungs -> blue-dominant
  TensorU8 rgb = render_segmentation(ct, labels);
  EXPECT_EQ(rgb.shape(), (Shape{2, 2, 3}));
  // background keeps grayscale (all channels equal)
  EXPECT_EQ(rgb.at(0, 0, 0), rgb.at(0, 0, 1));
  EXPECT_EQ(rgb.at(0, 0, 1), rgb.at(0, 0, 2));
  // liver: red channel dominates
  EXPECT_GT(rgb.at(0, 1, 0), rgb.at(0, 1, 2));
  // lungs: blue channel dominates
  EXPECT_GT(rgb.at(1, 0, 2), rgb.at(1, 0, 0));
}

TEST(ImageIo, RenderSegmentationShapeMismatchThrows) {
  TensorF ct(Shape{2, 2, 1});
  Tensor<std::int32_t> labels(Shape{3, 3});
  EXPECT_THROW(render_segmentation(ct, labels), std::invalid_argument);
}

}  // namespace
}  // namespace seneca::tensor
