// Property-style sweeps (TEST_P) over cross-cutting invariants of the
// stack: quantization round trips across the whole fix-position range,
// phantom anatomy across the body axis, timing-model monotonicity across
// the architecture grid, DES conservation laws, and .npy interchange.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "data/phantom.hpp"
#include "dpu/compiler.hpp"
#include "quant/qgraph.hpp"
#include "runtime/soc_sim.hpp"
#include "tensor/npy_io.hpp"
#include "util/io.hpp"
#include "util/rng.hpp"

namespace seneca {
namespace {

using tensor::Shape;
using tensor::TensorF;

// ----------------------------------------------- fix-position sweep ------

class FixPosSweep : public ::testing::TestWithParam<int> {};

TEST_P(FixPosSweep, RoundTripErrorBoundedByHalfStep) {
  const int fp = GetParam();
  const double step = std::ldexp(1.0, -fp);
  util::Rng rng(static_cast<std::uint64_t>(fp + 100));
  TensorF x(Shape{256});
  // values within the representable range for this fix position
  const double range = 127.0 * step;
  for (auto& v : x) v = static_cast<float>(rng.uniform(-range, range));
  const TensorF back =
      quant::dequantize_tensor(quant::quantize_tensor(x, fp), fp);
  EXPECT_LE(tensor::max_abs_diff(x, back), 0.5 * step + 1e-12);
}

TEST_P(FixPosSweep, SaturationClampsOutOfRange) {
  const int fp = GetParam();
  TensorF x(Shape{2});
  x[0] = static_cast<float>(std::ldexp(200.0, -fp));   // > 127 * 2^-fp
  x[1] = static_cast<float>(std::ldexp(-200.0, -fp));
  const auto q = quant::quantize_tensor(x, fp);
  EXPECT_EQ(q[0], 127);
  EXPECT_EQ(q[1], -128);
}

INSTANTIATE_TEST_SUITE_P(Range, FixPosSweep,
                         ::testing::Values(-2, 0, 1, 3, 5, 6, 7, 9, 12));

// ----------------------------------------------- rshift_round sweep ------

class ShiftSweep : public ::testing::TestWithParam<int> {};

TEST_P(ShiftSweep, MatchesFloatRounding) {
  const int shift = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(shift) * 31 + 7);
  for (int trial = 0; trial < 200; ++trial) {
    const std::int64_t v = rng.uniform_int(-5000000, 5000000);
    const double expect = std::nearbyint(static_cast<double>(v) /
                                         std::ldexp(1.0, shift));
    const std::int64_t got = quant::rshift_round(v, shift);
    // round-half-away vs round-half-even only differ at exact .5 ties
    const double diff = std::fabs(static_cast<double>(got) - expect);
    EXPECT_LE(diff, 1.0) << "v=" << v << " shift=" << shift;
    if (diff > 0.0) {
      const double frac = static_cast<double>(v) / std::ldexp(1.0, shift);
      EXPECT_NEAR(std::fabs(frac - std::trunc(frac)), 0.5, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shifts, ShiftSweep, ::testing::Values(1, 2, 4, 7, 11));

// ------------------------------------------------- phantom z sweep -------

class BodyAxisSweep : public ::testing::TestWithParam<double> {};

TEST_P(BodyAxisSweep, SliceIsWellFormedEverywhere) {
  const double z = GetParam();
  data::PhantomConfig cfg;
  cfg.resolution = 48;
  data::PhantomGenerator gen(cfg, 77);
  const data::PhantomSlice slice = gen.render_slice(3, z);
  // labels in range, HU within CT physics, some body present
  std::int64_t body = 0;
  for (std::int64_t i = 0; i < slice.labels.numel(); ++i) {
    ASSERT_GE(slice.labels[i], 0);
    ASSERT_LE(slice.labels[i], 6);
    ASSERT_GT(slice.image_hu[i], -1200.f);
    ASSERT_LT(slice.image_hu[i], 1500.f);
    body += (slice.image_hu[i] > -300.f);
  }
  EXPECT_GT(body, 48);  // at least a sliver of anatomy at every z
}

INSTANTIATE_TEST_SUITE_P(BodyAxis, BodyAxisSweep,
                         ::testing::Values(0.03, 0.12, 0.2, 0.3, 0.45, 0.55,
                                           0.65, 0.8, 0.9));

// ------------------------------------------ timing-model monotonicity ----

class ChannelSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ChannelSweep, ConvCyclesMonotoneInChannels) {
  const std::int64_t c = GetParam();
  const dpu::DpuArch arch = dpu::DpuArch::b4096();
  EXPECT_LE(dpu::conv_cycles(arch, 32, 32, 3, c, 16),
            dpu::conv_cycles(arch, 32, 32, 3, c + 16, 16));
  EXPECT_LE(dpu::conv_cycles(arch, 32, 32, 3, 16, c),
            dpu::conv_cycles(arch, 32, 32, 3, 16, c + 16));
}

TEST_P(ChannelSweep, CyclesScaleLinearlyAcrossGroups) {
  const std::int64_t c = GetParam();
  const dpu::DpuArch arch = dpu::DpuArch::b4096();
  // doubling a lane-aligned channel count exactly doubles cycles
  const std::int64_t aligned = ((c + 15) / 16) * 16;
  EXPECT_DOUBLE_EQ(dpu::conv_cycles(arch, 16, 16, 3, aligned * 2, 16),
                   2.0 * dpu::conv_cycles(arch, 16, 16, 3, aligned, 16));
}

INSTANTIATE_TEST_SUITE_P(Channels, ChannelSweep,
                         ::testing::Values(1, 6, 8, 11, 16, 24, 48, 96));

// --------------------------------------------------- DES conservation ----

class ThreadSweep : public ::testing::TestWithParam<int> {};

TEST_P(ThreadSweep, AllImagesCompleteAndFpsConsistent) {
  const int threads = GetParam();
  dpu::XModel xm;
  xm.arch = dpu::DpuArch::b4096();
  dpu::XLayer layer;
  layer.compute_cycles = 150000.0;
  xm.layers.push_back(layer);
  xm.output_layer = 0;
  runtime::SocConfig soc;
  const auto rep = runtime::simulate_throughput(xm, soc, threads, 150);
  EXPECT_EQ(rep.images, 150);
  EXPECT_GT(rep.total_seconds, 0.0);
  // fps * time == images (conservation)
  EXPECT_NEAR(rep.fps * rep.total_seconds, 150.0, 1e-6);
  // latency cannot be below the bare DPU execution time
  EXPECT_GE(rep.latency_p99_ms, 1e3 * xm.latency_seconds(1) * 0.99);
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadSweep,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 16));

// ------------------------------------------------------------- npy -------

class NpyRankSweep : public ::testing::TestWithParam<int> {};

TEST_P(NpyRankSweep, Float32RoundTrip) {
  const int rank = GetParam();
  Shape shape = [&] {
    switch (rank) {
      case 1: return Shape{7};
      case 2: return Shape{3, 5};
      case 3: return Shape{2, 3, 4};
      case 4: return Shape{2, 2, 3, 2};
      default: return Shape{2, 2, 2, 2, 2};
    }
  }();
  util::Rng rng(static_cast<std::uint64_t>(rank) + 5);
  TensorF t(shape);
  for (auto& v : t) v = static_cast<float>(rng.uniform(-10, 10));
  const auto path = std::filesystem::temp_directory_path() /
                    ("seneca_rank" + std::to_string(rank) + ".npy");
  tensor::write_npy(path, t);
  const TensorF back = tensor::read_npy_f32(path);
  EXPECT_EQ(back.shape(), shape);
  EXPECT_EQ(tensor::max_abs_diff(back, t), 0.0);
  std::filesystem::remove(path);
}

INSTANTIATE_TEST_SUITE_P(Ranks, NpyRankSweep, ::testing::Values(1, 2, 3, 4, 5));

TEST(Npy, HeaderIs64ByteAligned) {
  const auto path = std::filesystem::temp_directory_path() / "seneca_hdr.npy";
  tensor::write_npy(path, TensorF(Shape{4, 4}, 1.f));
  const auto bytes = util::read_file(path);
  const std::size_t header_len =
      static_cast<std::size_t>(bytes[8]) | (static_cast<std::size_t>(bytes[9]) << 8);
  EXPECT_EQ((10 + header_len) % 64, 0u);
  EXPECT_EQ(bytes[10 + header_len - 1], '\n');
  std::filesystem::remove(path);
}

TEST(Npy, Int8AndInt32Writable) {
  const auto dir = std::filesystem::temp_directory_path();
  tensor::write_npy(dir / "seneca_i8.npy", tensor::TensorI8(Shape{3, 3}, -1));
  tensor::write_npy(dir / "seneca_i32.npy",
                    tensor::Tensor<std::int32_t>(Shape{3, 3}, 7));
  EXPECT_TRUE(std::filesystem::exists(dir / "seneca_i8.npy"));
  std::filesystem::remove(dir / "seneca_i8.npy");
  std::filesystem::remove(dir / "seneca_i32.npy");
}

TEST(Npy, RejectsGarbage) {
  const auto path = std::filesystem::temp_directory_path() / "seneca_bad.npy";
  util::write_text_file(path, "definitely not numpy");
  EXPECT_THROW(tensor::read_npy_f32(path), std::runtime_error);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace seneca
