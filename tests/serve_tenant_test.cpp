// SENECA-Tenants tests: token-bucket edge cases (zero rate, burst=1, a
// clock that appears to run backwards), registry contracts, DRR fairness
// under a single-tenant storm, the per-lane queue stats split, and
// per-tenant accounting through a live InferenceServer.
#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <vector>

#include "dpu/compiler.hpp"
#include "nn/unet.hpp"
#include "quant/quantizer.hpp"
#include "serve/queue.hpp"
#include "serve/server.hpp"
#include "serve/tenant/drr.hpp"
#include "serve/tenant/tenant.hpp"
#include "util/rng.hpp"

namespace seneca::serve {
namespace {

using tenant::DrrLane;
using tenant::TenantConfig;
using tenant::TenantRegistry;
using tenant::TokenBucket;

const Clock::time_point t0 = Clock::now();
Clock::time_point at_s(double s) {
  return t0 + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(s));
}

// ---- TokenBucket ----

TEST(TokenBucket, StartsFullAndDrainsToEmpty) {
  TokenBucket b(/*rate=*/1.0, /*burst=*/3.0, t0);
  EXPECT_DOUBLE_EQ(b.available(t0), 3.0);
  EXPECT_TRUE(b.try_acquire(t0));
  EXPECT_TRUE(b.try_acquire(t0));
  EXPECT_TRUE(b.try_acquire(t0));
  EXPECT_FALSE(b.try_acquire(t0));  // empty, no time has passed
}

TEST(TokenBucket, ZeroRateAdmitsOnlyTheInitialBurst) {
  TokenBucket b(/*rate=*/0.0, /*burst=*/2.0, t0);
  EXPECT_TRUE(b.try_acquire(t0));
  EXPECT_TRUE(b.try_acquire(t0));
  // No refill ever, no matter how long we wait.
  EXPECT_FALSE(b.try_acquire(at_s(3600.0)));
  EXPECT_DOUBLE_EQ(b.available(at_s(7200.0)), 0.0);
}

TEST(TokenBucket, BurstOneIsStrictlyPaced) {
  TokenBucket b(/*rate=*/10.0, /*burst=*/1.0, t0);
  EXPECT_TRUE(b.try_acquire(t0));
  EXPECT_FALSE(b.try_acquire(at_s(0.05)));  // half a token accrued
  EXPECT_TRUE(b.try_acquire(at_s(0.10)));   // one full period later
  EXPECT_FALSE(b.try_acquire(at_s(0.10)));
}

TEST(TokenBucket, RefillRespectsRateAndCapsAtBurst) {
  TokenBucket b(/*rate=*/2.0, /*burst=*/4.0, t0);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(b.try_acquire(t0));
  EXPECT_NEAR(b.available(at_s(1.0)), 2.0, 1e-9);
  // 100 s at 2/s would mint 200 tokens; the bucket caps at burst.
  EXPECT_NEAR(b.available(at_s(100.0)), 4.0, 1e-9);
}

TEST(TokenBucket, BackwardsClockMintsNothingAndNeverGoesNegative) {
  TokenBucket b(/*rate=*/100.0, /*burst=*/2.0, t0);
  EXPECT_TRUE(b.try_acquire(at_s(1.0)));  // refill anchor now at t0+1s
  EXPECT_TRUE(b.try_acquire(at_s(1.0)));
  // The clock "jumps back": acquire at an earlier stamp must not mint the
  // (negative) elapsed time into tokens, and must not crash.
  EXPECT_FALSE(b.try_acquire(at_s(0.5)));
  EXPECT_DOUBLE_EQ(b.available(at_s(0.5)), 0.0);
  // Once the clock passes the anchor again, refill resumes normally.
  EXPECT_TRUE(b.try_acquire(at_s(1.1)));
}

TEST(TokenBucket, UnlimitedNeverRefuses) {
  TokenBucket b = TokenBucket::unlimited(t0);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(b.try_acquire(t0));
}

// ---- TenantRegistry ----

TEST(TenantRegistry, DefaultTenantIsAlwaysPresentAndUnthrottled) {
  TenantRegistry reg;
  EXPECT_TRUE(reg.has(kDefaultTenant));
  EXPECT_EQ(reg.name(kDefaultTenant), "default");
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(reg.try_admit(kDefaultTenant, t0));
  }
}

TEST(TenantRegistry, AddValidatesIdWeightAndBurst) {
  TenantRegistry reg;
  reg.add({1, "a", 10.0, 4.0, 2});
  EXPECT_THROW(reg.add({1, "dup", 10.0, 4.0, 1}), std::invalid_argument);
  EXPECT_THROW(reg.add({2, "w0", 10.0, 4.0, 0}), std::invalid_argument);
  EXPECT_THROW(reg.add({3, "b0", 10.0, 0.5, 1}), std::invalid_argument);
  EXPECT_EQ(reg.weight(1), 2u);
  EXPECT_EQ(reg.weight(99), 1u);  // unregistered ids ride defaults
  EXPECT_EQ(reg.name(99), "tenant-99");
}

TEST(TenantRegistry, ThrottlesRegisteredTenantByItsBucket) {
  TenantRegistry reg;
  reg.add({1, "capped", /*rate=*/0.0, /*burst=*/2.0, 1});
  EXPECT_TRUE(reg.try_admit(1, t0));
  EXPECT_TRUE(reg.try_admit(1, t0));
  EXPECT_FALSE(reg.try_admit(1, t0));
  // Unregistered tenants are admitted (default class) — attribution-only.
  EXPECT_TRUE(reg.try_admit(42, t0));
}

TEST(TenantRegistry, SnapshotCarriesCountersAndLatency) {
  TenantRegistry reg;
  reg.add({1, "clinic", 10.0, 4.0, 3});
  reg.on_submitted(1);
  reg.on_submitted(1);
  reg.on_throttled(1);
  reg.on_served(1, 12.5, /*degraded=*/true);
  const auto snaps = reg.snapshot();
  ASSERT_EQ(snaps.size(), 2u);  // default + clinic
  const auto& s = snaps[1];
  EXPECT_EQ(s.id, 1u);
  EXPECT_EQ(s.name, "clinic");
  EXPECT_EQ(s.weight, 3u);
  EXPECT_EQ(s.submitted, 2u);
  EXPECT_EQ(s.throttled, 1u);
  EXPECT_EQ(s.served, 1u);
  EXPECT_EQ(s.degraded, 1u);
  EXPECT_EQ(s.latency.count, 1u);
  EXPECT_DOUBLE_EQ(s.latency.max_ms, 12.5);
}

// ---- DrrLane ----

Request tenant_request(std::uint64_t id, TenantId tenant,
                       std::uint32_t weight = 1,
                       Clock::time_point deadline = Clock::time_point::max()) {
  Request r;
  r.id = id;
  r.tenant = tenant;
  r.weight = weight;
  r.deadline = deadline;
  return r;
}

TEST(DrrLane, SingleTenantDegeneratesToFifo) {
  DrrLane lane;
  for (std::uint64_t i = 0; i < 5; ++i) {
    lane.push_back(tenant_request(i, kDefaultTenant));
  }
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(lane.pop()->id, i);
  }
  EXPECT_FALSE(lane.pop().has_value());
}

TEST(DrrLane, StormingTenantCannotStarveItsNeighbour) {
  DrrLane lane;
  // Tenant 1 floods 100 requests before tenant 2's single request arrives.
  for (std::uint64_t i = 0; i < 100; ++i) {
    lane.push_back(tenant_request(i, 1));
  }
  lane.push_back(tenant_request(1000, 2));
  // Equal weights: tenant 2 is served within the first full rotation —
  // position 2 here, not position 101.
  std::size_t position = 0;
  for (;; ++position) {
    const auto r = lane.pop();
    ASSERT_TRUE(r.has_value());
    if (r->tenant == 2) break;
  }
  EXPECT_LE(position, 1u);
}

TEST(DrrLane, WeightsSplitDequeueShareProportionally) {
  DrrLane lane;
  for (std::uint64_t i = 0; i < 30; ++i) {
    lane.push_back(tenant_request(i, 1, /*weight=*/2));
    lane.push_back(tenant_request(100 + i, 2, /*weight=*/1));
  }
  // Count tenant-1 serves in the first 12 pops: weight 2 vs 1 gives a 2:1
  // split per rotation (2 of every 3).
  int t1 = 0;
  for (int i = 0; i < 12; ++i) {
    const auto r = lane.pop();
    ASSERT_TRUE(r.has_value());
    if (r->tenant == 1) ++t1;
  }
  EXPECT_EQ(t1, 8);
}

TEST(DrrLane, PushFrontRestoresPopOrder) {
  DrrLane lane;
  for (std::uint64_t i = 0; i < 4; ++i) {
    lane.push_back(tenant_request(i, i % 2));  // two tenants interleaved
  }
  const Request a = *lane.pop();
  const Request b = *lane.pop();
  // Hand back in reverse pop order (the batcher's preemption contract) and
  // expect the original order to replay.
  lane.push_front(b);
  lane.push_front(a);
  EXPECT_EQ(lane.pop()->id, a.id);
  EXPECT_EQ(lane.pop()->id, b.id);
}

TEST(DrrLane, SlackestAndTakeEvictAcrossTenantFifos) {
  DrrLane lane;
  lane.push_back(tenant_request(0, 1, 1, at_s(1.0)));
  lane.push_back(tenant_request(1, 2, 1, at_s(9.0)));  // latest deadline
  lane.push_back(tenant_request(2, 3, 1, at_s(2.0)));
  const Request* victim = lane.slackest();
  ASSERT_NE(victim, nullptr);
  EXPECT_EQ(victim->id, 1u);
  const Request removed = lane.take(victim);
  EXPECT_EQ(removed.id, 1u);
  EXPECT_EQ(lane.size(), 2u);
}

TEST(DrrLane, SweepExpiredDrainsAllTenants) {
  DrrLane lane;
  lane.push_back(tenant_request(0, 1, 1, at_s(1.0)));
  lane.push_back(tenant_request(1, 2, 1, at_s(1.0)));
  lane.push_back(tenant_request(2, 1, 1, at_s(9.0)));
  std::vector<Request> dead;
  EXPECT_EQ(lane.sweep_expired(at_s(5.0), dead), 2u);
  EXPECT_EQ(dead.size(), 2u);
  EXPECT_EQ(lane.size(), 1u);
  EXPECT_EQ(lane.pop()->id, 2u);
}

// ---- AdmissionQueue per-lane stats ----

TEST(AdmissionQueue, SplitsDepthAndHighWaterPerLane) {
  AdmissionQueue q({.capacity = 8, .policy = OverloadPolicy::kRejectNewest});
  Request r;
  r.priority = Priority::kInteractive;
  ASSERT_TRUE(q.push(r, t0).admitted);
  ASSERT_TRUE(q.push(r, t0).admitted);
  r.priority = Priority::kBatch;
  ASSERT_TRUE(q.push(r, t0).admitted);
  auto s = q.stats();
  EXPECT_EQ(s.depth_interactive, 2u);
  EXPECT_EQ(s.depth_batch, 1u);
  EXPECT_EQ(s.high_water_interactive, 2u);
  EXPECT_EQ(s.high_water_batch, 1u);
  EXPECT_EQ(s.depth, 3u);
  (void)q.pop();
  (void)q.pop();  // interactive lane drains first
  s = q.stats();
  EXPECT_EQ(s.depth_interactive, 0u);
  EXPECT_EQ(s.depth_batch, 1u);
  // High-water marks do not recede with the depth.
  EXPECT_EQ(s.high_water_interactive, 2u);
}

// ---- InferenceServer integration ----

dpu::XModel tiny_model(std::uint64_t seed) {
  nn::UNet2DConfig cfg;
  cfg.input_size = 16;
  cfg.depth = 1;
  cfg.base_filters = 2;
  cfg.seed = seed;
  auto graph = nn::build_unet2d(cfg);
  util::Rng rng(seed + 1);
  tensor::TensorF x(tensor::Shape{16, 16, 1});
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1, 1));
  graph->forward(x, true);
  quant::FGraph fg = quant::fold(*graph);
  std::vector<tensor::TensorF> calib{x};
  return dpu::compile(quant::quantize(fg, calib));
}

tensor::TensorI8 tiny_input(std::uint64_t seed) {
  util::Rng rng(seed);
  tensor::TensorI8 x(tensor::Shape{16, 16, 1});
  for (auto& v : x) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  return x;
}

ServerConfig tenant_config(std::shared_ptr<TenantRegistry> reg) {
  ServerConfig cfg;
  cfg.queue.capacity = 64;
  cfg.batcher.max_batch_size = 4;
  cfg.batcher.max_wait_ms = 0.0;
  cfg.degrade.queue_depth_high = 1000;
  cfg.tenants = std::move(reg);
  return cfg;
}

TEST(InferenceServerTenants, ThrottlesOverContractAndAttributesMetrics) {
  auto reg = std::make_shared<TenantRegistry>();
  // rate 0: the burst of 2 is all this tenant ever gets.
  reg->add({7, "capped", /*rate=*/0.0, /*burst=*/2.0, 1});
  std::vector<ModelSpec> ladder;
  ladder.push_back({"1M", tiny_model(3), 1});
  InferenceServer server(std::move(ladder), tenant_config(reg));

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 5; ++i) {
    futures.push_back(
        server.submit(Priority::kInteractive, tiny_input(1), 0.0, 7));
  }
  int ok = 0;
  int rejected = 0;
  for (auto& f : futures) {
    const Response r = f.get();
    EXPECT_EQ(r.tenant, 7u);
    (r.status == Status::kOk ? ok : rejected)++;
  }
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(rejected, 3);

  const MetricsSnapshot m = server.metrics();
  ASSERT_EQ(m.tenants.size(), 2u);  // default + capped
  const TenantSnapshot& t = m.tenants[1];
  EXPECT_EQ(t.name, "capped");
  EXPECT_EQ(t.submitted, 5u);
  EXPECT_EQ(t.throttled, 3u);
  EXPECT_EQ(t.served, 2u);
  EXPECT_EQ(t.latency.count, 2u);
  // Conservation per tenant: everything submitted is accounted once
  // (completed() folds throttled in alongside served/rejected/expired).
  EXPECT_EQ(t.submitted, t.completed());
}

TEST(InferenceServerTenants, DefaultTenantPathIsUntouched) {
  std::vector<ModelSpec> ladder;
  ladder.push_back({"1M", tiny_model(5), 1});
  ServerConfig cfg;
  cfg.queue.capacity = 64;
  cfg.batcher.max_wait_ms = 0.0;
  cfg.degrade.queue_depth_high = 1000;
  InferenceServer server(std::move(ladder), cfg);  // no registry configured
  auto f = server.submit(Priority::kInteractive, tiny_input(2));
  const Response r = f.get();
  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_EQ(r.tenant, kDefaultTenant);
  EXPECT_TRUE(server.metrics().tenants.empty());
}

}  // namespace
}  // namespace seneca::serve
