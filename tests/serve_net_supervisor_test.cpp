// Supervisor: real fork/exec of the seneca_boardd binary (path injected by
// CMake as SENECA_BOARDD_PATH). Covers the full process lifecycle — spawn +
// endpoint handshake, SIGKILL mid-run with automatic restart and zero lost
// non-expired requests, and join/leave while traffic flows.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>

#include <atomic>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/cluster/router.hpp"
#include "serve/net/supervisor.hpp"

namespace {

using namespace seneca;
using serve::cluster::ClusterConfig;
using serve::cluster::ClusterRouter;
using serve::net::Supervisor;
using serve::net::SupervisorConfig;
using serve::net::WorkerSpec;

SupervisorConfig base_config() {
  SupervisorConfig cfg;
  cfg.boardd_path = SENECA_BOARDD_PATH;
  cfg.remote.heartbeat_interval_ms = 10.0;
  cfg.restart_backoff_initial_ms = 20.0;
  cfg.poll_interval_ms = 5.0;
  return cfg;
}

WorkerSpec tiny_worker() {
  WorkerSpec spec;
  spec.ladder = {"2M"};
  spec.input = 32;  // smallest legal input for the 2M ladder depth
  spec.queue_capacity = 16;
  return spec;
}

ClusterConfig migrating_cluster() {
  ClusterConfig cfg;
  cfg.policy = serve::cluster::PolicyKind::kJoinShortestQueue;
  cfg.migrate.enable = true;
  cfg.migrate.monitor_interval_ms = 5.0;
  return cfg;
}

tensor::TensorI8 make_input(std::int64_t side = 32) {
  tensor::TensorI8 t(tensor::Shape{side, side, 1});
  for (auto& x : t) x = 3;
  return t;
}

bool wait_until(double timeout_ms, const std::function<bool()>& pred) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double, std::milli>(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

TEST(SupervisorTest, SpawnsWorkerAndServesThroughRouter) {
  ClusterRouter router(std::vector<std::shared_ptr<serve::cluster::Board>>{},
                       migrating_cluster());
  Supervisor sup(base_config(), router);
  const int slot = sup.add_worker(tiny_worker());
  EXPECT_EQ(sup.num_workers(), 1u);
  EXPECT_GT(sup.worker_pid(slot), 0);
  ASSERT_EQ(router.num_boards(), 1u);

  const serve::Response r =
      router.submit(serve::Priority::kInteractive, make_input(), 0.0).get();
  EXPECT_EQ(r.status, serve::Status::kOk);
  EXPECT_EQ(r.model_used, "2M");
  sup.stop();
  EXPECT_EQ(router.num_boards(), 0u);
  router.shutdown();
}

TEST(SupervisorTest, RestartsSigkilledWorker) {
  ClusterRouter router(std::vector<std::shared_ptr<serve::cluster::Board>>{},
                       migrating_cluster());
  Supervisor sup(base_config(), router);
  const int slot = sup.add_worker(tiny_worker());
  sup.start();

  const pid_t first_pid = sup.worker_pid(slot);
  ASSERT_GT(first_pid, 0);
  ::kill(first_pid, SIGKILL);

  // Bounded recovery: the monitor must reap, back off, respawn, reconnect.
  ASSERT_TRUE(wait_until(20000.0, [&] {
    const pid_t pid = sup.worker_pid(slot);
    auto board = sup.worker_board(slot);
    return pid > 0 && pid != first_pid && board && !board->dead();
  })) << "worker was not restarted";
  EXPECT_GE(sup.stats().restarts, 1u);

  // The restarted worker serves again through the SAME router slot.
  const serve::Response r =
      router.submit(serve::Priority::kBatch, make_input(), 0.0).get();
  EXPECT_EQ(r.status, serve::Status::kOk);
  sup.stop();
  router.shutdown();
}

TEST(SupervisorTest, SigkillMidTrafficLosesNoNonExpiredRequests) {
  ClusterRouter router(std::vector<std::shared_ptr<serve::cluster::Board>>{},
                       migrating_cluster());
  Supervisor sup(base_config(), router);
  const int victim = sup.add_worker(tiny_worker());
  sup.add_worker(tiny_worker());
  sup.start();

  std::vector<std::future<serve::Response>> futs;
  for (int i = 0; i < 24; ++i) {
    futs.push_back(
        router.submit(serve::Priority::kBatch, make_input(), 0.0));
  }
  ::kill(sup.worker_pid(victim), SIGKILL);
  for (int i = 0; i < 24; ++i) {
    futs.push_back(
        router.submit(serve::Priority::kBatch, make_input(), 0.0));
  }

  int ok = 0, rejected = 0, errors = 0;
  for (auto& f : futs) {
    const serve::Response r = f.get();  // every future must resolve
    EXPECT_NE(r.status, serve::Status::kMigrated) << "kMigrated leaked";
    EXPECT_NE(r.status, serve::Status::kExpired)
        << "deadline-free request reported expired";
    switch (r.status) {
      case serve::Status::kOk: ++ok; break;
      case serve::Status::kRejected: ++rejected; break;
      default: ++errors; break;
    }
  }
  // "Zero lost non-expired requests": every submit got a terminal answer,
  // and the surviving board kept serving (ok > 0). Queue-full rejects are
  // legitimate admission control, not loss. kError terminals are allowed
  // only for requests that exhausted max_hops during the outage window.
  EXPECT_GT(ok, 0);
  EXPECT_EQ(ok + rejected + errors, 48);

  const serve::cluster::ClusterSnapshot snap = router.snapshot();
  EXPECT_EQ(snap.expired, 0u);
  sup.stop();
  router.shutdown();
}

TEST(SupervisorTest, JoinAndLeaveWithoutDrainingFleet) {
  ClusterRouter router(std::vector<std::shared_ptr<serve::cluster::Board>>{},
                       migrating_cluster());
  Supervisor sup(base_config(), router);
  sup.add_worker(tiny_worker());
  sup.start();

  // Background traffic the whole time.
  std::atomic<bool> stop{false};
  std::atomic<int> ok{0};
  std::thread client([&] {
    while (!stop.load()) {
      const serve::Response r =
          router.submit(serve::Priority::kBatch, make_input(), 0.0).get();
      if (r.status == serve::Status::kOk) ok.fetch_add(1);
    }
  });

  const int joined = sup.add_worker(tiny_worker());  // join under load
  EXPECT_EQ(router.num_boards(), 2u);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  sup.remove_worker(joined);  // leave under load
  EXPECT_EQ(router.num_boards(), 1u);
  EXPECT_EQ(sup.num_workers(), 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  stop.store(true);
  client.join();
  EXPECT_GT(ok.load(), 0);
  sup.stop();
  router.shutdown();
}

}  // namespace
