// Layer-level functional tests: each forward pass against a naive reference
// or hand-computed values; structural/shape validation.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/layers2d.hpp"
#include "nn/layers3d.hpp"
#include "nn/layers_common.hpp"
#include "util/rng.hpp"

namespace seneca::nn {
namespace {

using tensor::Shape;
using tensor::TensorF;

TensorF random_tensor(Shape shape, std::uint64_t seed) {
  util::Rng rng(seed);
  TensorF t(shape);
  for (auto& v : t) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

/// Naive O(everything) same-padding conv reference.
TensorF naive_conv2d(const TensorF& x, const TensorF& w, const TensorF& b) {
  const std::int64_t h = x.shape()[0], wd = x.shape()[1], ci = x.shape()[2];
  const std::int64_t k = w.shape()[0], co = w.shape()[3];
  const std::int64_t pad = k / 2;
  TensorF out(Shape{h, wd, co});
  for (std::int64_t y = 0; y < h; ++y)
    for (std::int64_t xx = 0; xx < wd; ++xx)
      for (std::int64_t o = 0; o < co; ++o) {
        float acc = b[o];
        for (std::int64_t ky = 0; ky < k; ++ky)
          for (std::int64_t kx = 0; kx < k; ++kx)
            for (std::int64_t c = 0; c < ci; ++c) {
              const std::int64_t iy = y + ky - pad, ix = xx + kx - pad;
              if (iy < 0 || iy >= h || ix < 0 || ix >= wd) continue;
              acc += x.at(iy, ix, c) * w[((ky * k + kx) * ci + c) * co + o];
            }
        out.at(y, xx, o) = acc;
      }
  return out;
}

TEST(Conv2D, MatchesNaiveReference) {
  Conv2D conv(3, 5, 3);
  util::Rng rng(1);
  conv.init_he(rng);
  TensorF x = random_tensor(Shape{7, 6, 3}, 2);
  TensorF out(Shape{7, 6, 5});
  conv.forward({&x}, out, false);
  TensorF ref = naive_conv2d(x, conv.weight().value, conv.bias().value);
  EXPECT_LT(tensor::max_abs_diff(out, ref), 1e-5);
}

TEST(Conv2D, IdentityKernelPassesThrough) {
  Conv2D conv(1, 1, 3);
  conv.weight().value.fill(0.f);
  conv.weight().value[(1 * 3 + 1) * 1 * 1] = 1.f;  // center tap
  conv.bias().value.fill(0.f);
  TensorF x = random_tensor(Shape{5, 5, 1}, 3);
  TensorF out(Shape{5, 5, 1});
  conv.forward({&x}, out, false);
  EXPECT_LT(tensor::max_abs_diff(out, x), 1e-7);
}

TEST(Conv2D, BiasApplied) {
  Conv2D conv(1, 2, 3);
  conv.weight().value.fill(0.f);
  conv.bias().value[0] = 1.25f;
  conv.bias().value[1] = -0.5f;
  TensorF x = random_tensor(Shape{4, 4, 1}, 4);
  TensorF out(Shape{4, 4, 2});
  conv.forward({&x}, out, false);
  EXPECT_FLOAT_EQ(out.at(2, 2, 0), 1.25f);
  EXPECT_FLOAT_EQ(out.at(2, 2, 1), -0.5f);
}

TEST(Conv2D, KernelFiveSupported) {
  Conv2D conv(2, 3, 5);
  util::Rng rng(5);
  conv.init_he(rng);
  TensorF x = random_tensor(Shape{8, 8, 2}, 6);
  TensorF out(Shape{8, 8, 3});
  conv.forward({&x}, out, false);
  TensorF ref = naive_conv2d(x, conv.weight().value, conv.bias().value);
  EXPECT_LT(tensor::max_abs_diff(out, ref), 1e-5);
}

TEST(Conv2D, EvenKernelThrows) {
  EXPECT_THROW(Conv2D(1, 1, 4), std::invalid_argument);
}

TEST(Conv2D, WrongChannelCountThrows) {
  Conv2D conv(3, 5);
  EXPECT_THROW(conv.output_shape({Shape{4, 4, 2}}), std::invalid_argument);
}

TEST(TransposedConv2D, DoublesSpatialSize) {
  TransposedConv2D up(4, 2);
  EXPECT_EQ(up.output_shape({Shape{5, 6, 4}}), (Shape{10, 12, 2}));
}

TEST(TransposedConv2D, MatchesScatterReference) {
  TransposedConv2D up(2, 3);
  util::Rng rng(7);
  up.init_he(rng);
  TensorF x = random_tensor(Shape{3, 4, 2}, 8);
  TensorF out(Shape{6, 8, 3});
  up.forward({&x}, out, false);

  // Scatter reference.
  TensorF ref(Shape{6, 8, 3});
  for (std::int64_t i = 0; i < ref.numel(); i += 3)
    for (std::int64_t o = 0; o < 3; ++o) ref[i + o] = up.bias().value[o];
  for (std::int64_t iy = 0; iy < 3; ++iy)
    for (std::int64_t ix = 0; ix < 4; ++ix)
      for (std::int64_t ky = 0; ky < 3; ++ky)
        for (std::int64_t kx = 0; kx < 3; ++kx) {
          const std::int64_t oy = 2 * iy - 1 + ky, ox = 2 * ix - 1 + kx;
          if (oy < 0 || oy >= 6 || ox < 0 || ox >= 8) continue;
          for (std::int64_t c = 0; c < 2; ++c)
            for (std::int64_t o = 0; o < 3; ++o)
              ref.at(oy, ox, o) +=
                  x.at(iy, ix, c) *
                  up.weight().value[((ky * 3 + kx) * 2 + c) * 3 + o];
        }
  EXPECT_LT(tensor::max_abs_diff(out, ref), 1e-5);
}

TEST(MaxPool2D, HalvesAndTakesMax) {
  MaxPool2D pool;
  TensorF x(Shape{4, 4, 1}, 0.f);
  x.at(0, 0, 0) = 5.f;
  x.at(2, 3, 0) = -1.f;
  x.at(3, 3, 0) = 2.f;
  TensorF out(Shape{2, 2, 1});
  pool.forward({&x}, out, false);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 5.f);
  EXPECT_FLOAT_EQ(out.at(1, 1, 0), 2.f);
}

TEST(MaxPool2D, OddDimsThrow) {
  MaxPool2D pool;
  EXPECT_THROW(pool.output_shape({Shape{5, 4, 1}}), std::invalid_argument);
}

TEST(MaxPool2D, PerChannelIndependence) {
  MaxPool2D pool;
  TensorF x(Shape{2, 2, 2}, 0.f);
  x.at(0, 0, 0) = 3.f;
  x.at(1, 1, 1) = 4.f;
  TensorF out(Shape{1, 1, 2});
  pool.forward({&x}, out, false);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 3.f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 1), 4.f);
}

TEST(ReLULayer, ClampsNegatives) {
  ReLU relu;
  TensorF x(Shape{4});
  x[0] = -1.f; x[1] = 0.f; x[2] = 2.f; x[3] = -0.1f;
  TensorF out(Shape{4});
  relu.forward({&x}, out, false);
  EXPECT_FLOAT_EQ(out[0], 0.f);
  EXPECT_FLOAT_EQ(out[1], 0.f);
  EXPECT_FLOAT_EQ(out[2], 2.f);
  EXPECT_FLOAT_EQ(out[3], 0.f);
}

TEST(BatchNormLayer, TrainingNormalizesPerChannel) {
  BatchNorm bn(2);
  TensorF x = random_tensor(Shape{8, 8, 2}, 9);
  // offset channel 1 strongly
  for (std::int64_t i = 1; i < x.numel(); i += 2) x[i] += 10.f;
  TensorF out(Shape{8, 8, 2});
  bn.forward({&x}, out, true);
  double mean[2] = {0, 0}, var[2] = {0, 0};
  for (std::int64_t i = 0; i < out.numel(); i += 2) {
    mean[0] += out[i];
    mean[1] += out[i + 1];
  }
  mean[0] /= 64; mean[1] /= 64;
  for (std::int64_t i = 0; i < out.numel(); i += 2) {
    var[0] += (out[i] - mean[0]) * (out[i] - mean[0]);
    var[1] += (out[i + 1] - mean[1]) * (out[i + 1] - mean[1]);
  }
  var[0] /= 64; var[1] /= 64;
  EXPECT_NEAR(mean[0], 0.0, 1e-4);
  EXPECT_NEAR(mean[1], 0.0, 1e-4);
  EXPECT_NEAR(var[0], 1.0, 1e-2);
  EXPECT_NEAR(var[1], 1.0, 1e-2);
}

TEST(BatchNormLayer, GammaBetaApplied) {
  BatchNorm bn(1);
  bn.params()[0]->value[0] = 2.f;  // gamma
  bn.params()[1]->value[0] = 3.f;  // beta
  TensorF x = random_tensor(Shape{4, 4, 1}, 10);
  TensorF out(Shape{4, 4, 1});
  bn.forward({&x}, out, true);
  double mean = 0;
  for (std::int64_t i = 0; i < 16; ++i) mean += out[i];
  EXPECT_NEAR(mean / 16, 3.0, 1e-4);  // beta shifts the normalized mean
}

TEST(BatchNormLayer, RunningStatsConvergeToConstantBatch) {
  BatchNorm bn(1, 0.5f);
  TensorF x(Shape{4, 4, 1});
  for (std::int64_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  TensorF out(Shape{4, 4, 1});
  for (int step = 0; step < 30; ++step) bn.forward({&x}, out, true);
  EXPECT_NEAR(bn.running_mean()[0], 7.5f, 1e-3);
  // inference should now match training output
  TensorF out_eval(Shape{4, 4, 1});
  bn.forward({&x}, out_eval, false);
  EXPECT_LT(tensor::max_abs_diff(out, out_eval), 1e-3);
}

TEST(DropoutLayer, InferenceIsIdentity) {
  Dropout drop(0.5f);
  TensorF x = random_tensor(Shape{10, 10, 1}, 11);
  TensorF out(Shape{10, 10, 1});
  drop.forward({&x}, out, false);
  EXPECT_LT(tensor::max_abs_diff(out, x), 1e-9);
}

TEST(DropoutLayer, TrainingDropsAboutRate) {
  Dropout drop(0.3f, 12);
  TensorF x(Shape{100, 100, 1}, 1.f);
  TensorF out(Shape{100, 100, 1});
  drop.forward({&x}, out, true);
  std::int64_t zeros = 0;
  for (std::int64_t i = 0; i < out.numel(); ++i) zeros += (out[i] == 0.f);
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.3, 0.03);
  // kept values are scaled by 1/(1-rate)
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    if (out[i] != 0.f) {
      EXPECT_NEAR(out[i], 1.f / 0.7f, 1e-5);
      break;
    }
  }
}

TEST(SoftmaxLayer, SumsToOneAndOrders) {
  Softmax sm;
  TensorF x(Shape{1, 1, 4});
  x[0] = 0.f; x[1] = 1.f; x[2] = 2.f; x[3] = -1.f;
  TensorF out(Shape{1, 1, 4});
  sm.forward({&x}, out, false);
  float sum = 0.f;
  for (int c = 0; c < 4; ++c) sum += out[c];
  EXPECT_NEAR(sum, 1.f, 1e-6);
  EXPECT_GT(out[2], out[1]);
  EXPECT_GT(out[1], out[0]);
  EXPECT_GT(out[0], out[3]);
}

TEST(SoftmaxLayer, NumericallyStableForLargeLogits) {
  Softmax sm;
  TensorF x(Shape{1, 1, 2});
  x[0] = 1000.f; x[1] = 999.f;
  TensorF out(Shape{1, 1, 2});
  sm.forward({&x}, out, false);
  EXPECT_TRUE(std::isfinite(out[0]));
  EXPECT_NEAR(out[0] + out[1], 1.f, 1e-6);
  EXPECT_GT(out[0], out[1]);
}

TEST(ConcatLayer, JoinsChannels) {
  Concat cat;
  TensorF a(Shape{2, 2, 1}, 1.f);
  TensorF b(Shape{2, 2, 2}, 2.f);
  TensorF out(Shape{2, 2, 3});
  cat.forward({&a, &b}, out, false);
  EXPECT_FLOAT_EQ(out.at(1, 1, 0), 1.f);
  EXPECT_FLOAT_EQ(out.at(1, 1, 1), 2.f);
  EXPECT_FLOAT_EQ(out.at(1, 1, 2), 2.f);
}

TEST(ConcatLayer, SpatialMismatchThrows) {
  Concat cat;
  EXPECT_THROW(cat.output_shape({Shape{2, 2, 1}, Shape{3, 2, 1}}),
               std::invalid_argument);
}

// ------------------------------------------------------------- 3D layers --

TEST(Conv3D, IdentityKernelPassesThrough) {
  Conv3D conv(1, 1, 3);
  conv.params()[0]->value.fill(0.f);
  // center tap of the 3x3x3 kernel
  conv.params()[0]->value[((1 * 3 + 1) * 3 + 1) * 1 * 1] = 1.f;
  TensorF x = random_tensor(Shape{4, 4, 4, 1}, 13);
  TensorF out(Shape{4, 4, 4, 1});
  conv.forward({&x}, out, false);
  EXPECT_LT(tensor::max_abs_diff(out, x), 1e-7);
}

TEST(Conv3D, OutputShape) {
  Conv3D conv(2, 6);
  EXPECT_EQ(conv.output_shape({Shape{4, 8, 8, 2}}), (Shape{4, 8, 8, 6}));
}

TEST(TransposedConv3D, DoublesAllSpatialDims) {
  TransposedConv3D up(4, 2);
  EXPECT_EQ(up.output_shape({Shape{2, 3, 4, 4}}), (Shape{4, 6, 8, 2}));
}

TEST(MaxPool3D, HalvesAllSpatialDims) {
  MaxPool3D pool;
  TensorF x(Shape{2, 2, 2, 1}, 0.f);
  x.at(1, 1, 1, 0) = 9.f;
  TensorF out(Shape{1, 1, 1, 1});
  pool.forward({&x}, out, false);
  EXPECT_FLOAT_EQ(out[0], 9.f);
}

TEST(ConcatLayer, Works4D) {
  Concat cat;
  TensorF a(Shape{2, 2, 2, 1}, 1.f);
  TensorF b(Shape{2, 2, 2, 1}, 2.f);
  TensorF out(Shape{2, 2, 2, 2});
  cat.forward({&a, &b}, out, false);
  EXPECT_FLOAT_EQ(out.at(1, 1, 1, 0), 1.f);
  EXPECT_FLOAT_EQ(out.at(1, 1, 1, 1), 2.f);
}

}  // namespace
}  // namespace seneca::nn
