// Cluster-tier tests: routing-policy unit tests over synthetic board
// states (round-robin health skipping, join-shortest-queue, energy-aware
// deadline feasibility), topology helpers, and integration through real
// BoardSims — replicated load spreading, fault-driven drain to peers, and
// energy-aware rung picking in partition mode.
#include <gtest/gtest.h>

#include <vector>

#include "dpu/compiler.hpp"
#include "nn/unet.hpp"
#include "quant/quantizer.hpp"
#include "serve/cluster/router.hpp"
#include "util/rng.hpp"

namespace seneca::serve::cluster {
namespace {

using tensor::Shape;
using tensor::TensorF;
using tensor::TensorI8;

dpu::XModel build_model(std::int64_t input_size, int depth,
                        std::int64_t base_filters, std::uint64_t seed) {
  nn::UNet2DConfig cfg;
  cfg.input_size = input_size;
  cfg.depth = depth;
  cfg.base_filters = base_filters;
  cfg.seed = seed;
  auto graph = nn::build_unet2d(cfg);
  util::Rng rng(seed + 1);
  TensorF x(Shape{input_size, input_size, 1});
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1, 1));
  graph->forward(x, true);
  quant::FGraph fg = quant::fold(*graph);
  std::vector<TensorF> calib{x};
  return dpu::compile(quant::quantize(fg, calib));
}

TensorI8 random_input(std::int64_t input_size, std::uint64_t seed) {
  util::Rng rng(seed);
  TensorI8 x(Shape{input_size, input_size, 1});
  for (auto& v : x) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  return x;
}

ServerConfig fast_server_config() {
  ServerConfig cfg;
  cfg.queue.capacity = 64;
  cfg.batcher.max_batch_size = 4;
  cfg.batcher.max_wait_ms = 0.0;
  cfg.degrade.queue_depth_high = 1000;  // degradation off unless enabled
  return cfg;
}

std::vector<ModelSpec> two_rung_ladder() {
  static const dpu::XModel big = build_model(16, 2, 4, 3);
  static const dpu::XModel small = build_model(16, 1, 2, 7);
  std::vector<ModelSpec> ladder;
  ladder.push_back({"4M", big, 1});
  ladder.push_back({"1M", small, 1});
  return ladder;
}

BoardState state(int board, bool healthy, std::size_t depth,
                 std::uint64_t inflight, double spf, double jpf) {
  BoardState s;
  s.board = board;
  s.healthy = healthy;
  s.queue_depth = depth;
  s.inflight = inflight;
  s.seconds_per_frame = spf;
  s.joules_per_frame = jpf;
  return s;
}

// ---------------------------------------------------------------- policies

TEST(RoutingPolicy, RoundRobinCyclesAndSkipsUnhealthy) {
  auto policy = make_policy(PolicyKind::kRoundRobin);
  std::vector<BoardState> boards{state(0, true, 0, 0, 0.01, 1.0),
                                 state(1, false, 0, 0, 0.01, 1.0),
                                 state(2, true, 0, 0, 0.01, 1.0)};
  std::vector<int> picks;
  for (int i = 0; i < 6; ++i) picks.push_back(policy->pick(boards, {}));
  // Board 1 is never picked while unhealthy; both healthy boards share the
  // rotation.
  int served0 = 0;
  int served2 = 0;
  for (int p : picks) {
    EXPECT_NE(p, 1);
    if (p == 0) ++served0;
    if (p == 2) ++served2;
  }
  EXPECT_GT(served0, 0);
  EXPECT_GT(served2, 0);
}

TEST(RoutingPolicy, RoundRobinRoutesSomewhereWhenAllUnhealthy) {
  auto policy = make_policy(PolicyKind::kRoundRobin);
  std::vector<BoardState> boards{state(0, false, 0, 0, 0.01, 1.0),
                                 state(1, false, 0, 0, 0.01, 1.0)};
  const int p = policy->pick(boards, {});
  EXPECT_GE(p, 0);
  EXPECT_LT(p, 2);
}

TEST(RoutingPolicy, JoinShortestQueuePicksLeastBacklog) {
  auto policy = make_policy(PolicyKind::kJoinShortestQueue);
  std::vector<BoardState> boards{state(0, true, 5, 2, 0.01, 1.0),
                                 state(1, true, 1, 1, 0.01, 1.0),
                                 state(2, false, 0, 0, 0.01, 1.0)};
  // Board 2 has the least backlog but is unhealthy.
  EXPECT_EQ(policy->pick(boards, {}), 1);
}

TEST(RoutingPolicy, EnergyAwarePicksCheapestFeasibleBoard) {
  auto policy = make_policy(PolicyKind::kEnergyAware);
  // Board 1 is cheaper but slow: 0.5 s/frame cannot meet a 100 ms deadline.
  std::vector<BoardState> boards{state(0, true, 0, 0, 0.010, 2.0),
                                 state(1, true, 0, 0, 0.500, 1.0)};
  RouteRequest no_deadline;
  EXPECT_EQ(policy->pick(boards, no_deadline), 1);  // cheapest J/frame
  RouteRequest tight{Priority::kInteractive, 100.0};
  EXPECT_EQ(policy->pick(boards, tight), 0);  // deadline overrides energy
}

TEST(RoutingPolicy, EnergyAwareAccountsForBacklogInFeasibility) {
  auto policy = make_policy(PolicyKind::kEnergyAware);
  // Cheap board is fast but 30 frames deep: (30+1)*10ms > 200 ms deadline.
  std::vector<BoardState> boards{state(0, true, 0, 0, 0.010, 2.0),
                                 state(1, true, 20, 10, 0.010, 1.0)};
  RouteRequest deadline{Priority::kInteractive, 200.0};
  EXPECT_EQ(policy->pick(boards, deadline), 0);
}

TEST(RoutingPolicy, EnergyAwareFallsBackToShortestQueueWhenNoneFeasible) {
  auto policy = make_policy(PolicyKind::kEnergyAware);
  std::vector<BoardState> boards{state(0, true, 9, 0, 0.500, 2.0),
                                 state(1, true, 3, 0, 0.500, 1.0)};
  RouteRequest impossible{Priority::kInteractive, 1.0};
  EXPECT_EQ(policy->pick(boards, impossible), 1);  // least backlog
}

TEST(RoutingPolicy, KindRoundTripsThroughNames) {
  for (PolicyKind kind :
       {PolicyKind::kRoundRobin, PolicyKind::kJoinShortestQueue,
        PolicyKind::kEnergyAware}) {
    EXPECT_EQ(parse_policy_kind(to_string(kind)), kind);
    EXPECT_EQ(make_policy(kind)->kind(), kind);
  }
  EXPECT_THROW(parse_policy_kind("greedy"), std::invalid_argument);
}

// --------------------------------------------------------------- topology

TEST(ClusterTopology, ReplicateGivesEveryBoardTheFullLadder) {
  const auto ladder = two_rung_ladder();
  const auto cfgs = replicate_ladder(ladder, 3, fast_server_config());
  ASSERT_EQ(cfgs.size(), 3u);
  for (const auto& cfg : cfgs) {
    EXPECT_EQ(cfg.ladder.size(), 2u);
    EXPECT_EQ(cfg.rung_offset, 0);
  }
  EXPECT_EQ(cfgs[0].name, "board0");
  EXPECT_EQ(cfgs[2].name, "board2");
}

TEST(ClusterTopology, PartitionSlicesRungsContiguously) {
  const auto ladder = two_rung_ladder();
  const auto cfgs = partition_ladder(ladder, 2, fast_server_config());
  ASSERT_EQ(cfgs.size(), 2u);
  EXPECT_EQ(cfgs[0].ladder.size(), 1u);
  EXPECT_EQ(cfgs[0].ladder[0].name, "4M");
  EXPECT_EQ(cfgs[0].rung_offset, 0);
  EXPECT_EQ(cfgs[1].ladder[0].name, "1M");
  EXPECT_EQ(cfgs[1].rung_offset, 1);
  EXPECT_THROW(partition_ladder(ladder, 3, fast_server_config()),
               std::invalid_argument);
}

// ------------------------------------------------------------ integration

TEST(ClusterRouter, RoundRobinSpreadsReplicatedLoadEvenly) {
  ClusterConfig cluster;
  cluster.policy = PolicyKind::kRoundRobin;
  ClusterRouter router(replicate_ladder(two_rung_ladder(), 2,
                                        fast_server_config()),
                       cluster);
  constexpr int kRequests = 8;
  for (int i = 0; i < kRequests; ++i) {
    const Response r =
        router.submit(Priority::kInteractive, random_input(16, 50 + static_cast<std::uint64_t>(i)))
            .get();
    ASSERT_EQ(r.status, Status::kOk) << "request " << i;
    EXPECT_EQ(r.model_used, "4M");  // no overload: top rung everywhere
  }
  EXPECT_EQ(router.board(0).frames_served(), 4u);
  EXPECT_EQ(router.board(1).frames_served(), 4u);

  const ClusterSnapshot s = router.snapshot();
  EXPECT_EQ(s.served, static_cast<std::uint64_t>(kRequests));
  EXPECT_GT(s.energy_joules, 0.0);
  EXPECT_GT(s.busy_seconds_max, 0.0);
  EXPECT_GT(s.simulated_fps, 0.0);
  EXPECT_GT(s.fps_per_watt, 0.0);
  EXPECT_FALSE(s.format().empty());
}

TEST(ClusterRouter, FaultedBoardDrainsToPeers) {
  ClusterConfig cluster;
  cluster.policy = PolicyKind::kRoundRobin;
  ClusterRouter router(replicate_ladder(two_rung_ladder(), 2,
                                        fast_server_config()),
                       cluster);
  router.board(0).inject_fault(true);
  constexpr int kRequests = 6;
  for (int i = 0; i < kRequests; ++i) {
    const Response r =
        router.submit(Priority::kInteractive, random_input(16, 80 + static_cast<std::uint64_t>(i)))
            .get();
    ASSERT_EQ(r.status, Status::kOk) << "request " << i;
  }
  EXPECT_EQ(router.board(0).frames_served(), 0u)
      << "fault-injected board kept receiving traffic";
  EXPECT_EQ(router.board(1).frames_served(),
            static_cast<std::uint64_t>(kRequests));

  // Recovery: clearing the fault readmits the board to the rotation.
  router.board(0).inject_fault(false);
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(router.submit(Priority::kInteractive,
                            random_input(16, 120 + static_cast<std::uint64_t>(i)))
                  .get()
                  .status,
              Status::kOk);
  }
  EXPECT_GT(router.board(0).frames_served(), 0u);
}

TEST(ClusterRouter, EnergyAwarePartitionRoutesToCheapestRung) {
  // Board 0 hosts the big rung, board 1 the small one. With no deadline
  // pressure the energy-aware policy should send every frame to the board
  // whose current rung costs the fewest joules per frame.
  ClusterConfig cluster;
  cluster.policy = PolicyKind::kEnergyAware;
  ClusterRouter router(partition_ladder(two_rung_ladder(), 2,
                                        fast_server_config()),
                       cluster);
  const double jpf_big = router.board(0).rung_cost(0).joules_per_frame;
  const double jpf_small = router.board(1).rung_cost(0).joules_per_frame;
  ASSERT_GT(jpf_big, jpf_small)
      << "the small rung should be the cheaper one";

  constexpr int kRequests = 6;
  for (int i = 0; i < kRequests; ++i) {
    const Response r =
        router.submit(Priority::kBatch, random_input(16, 200 + static_cast<std::uint64_t>(i)))
            .get();
    ASSERT_EQ(r.status, Status::kOk) << "request " << i;
    EXPECT_EQ(r.model_used, "1M");
  }
  EXPECT_EQ(router.board(1).frames_served(),
            static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(router.board(0).frames_served(), 0u);
}

TEST(ClusterRouter, StatesExposeCostAndHealth) {
  ClusterConfig cluster;
  ClusterRouter router(replicate_ladder(two_rung_ladder(), 2,
                                        fast_server_config()),
                       cluster);
  router.board(1).inject_fault(true);
  const auto states = router.states();
  ASSERT_EQ(states.size(), 2u);
  EXPECT_TRUE(states[0].healthy);
  EXPECT_FALSE(states[1].healthy);
  for (const auto& s : states) {
    EXPECT_GT(s.seconds_per_frame, 0.0);
    EXPECT_GT(s.joules_per_frame, 0.0);
    EXPECT_EQ(s.level, 0);
  }
}

}  // namespace
}  // namespace seneca::serve::cluster
