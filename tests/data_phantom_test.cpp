// Phantom generator tests: determinism, anatomy plausibility, intensity
// model, scan composition, and the Table I frequency reproduction.
#include <gtest/gtest.h>

#include <map>

#include "data/dataset.hpp"
#include "data/phantom.hpp"

namespace seneca::data {
namespace {

PhantomConfig small_config() {
  PhantomConfig cfg;
  cfg.resolution = 96;
  cfg.slices_per_volume = 12;
  return cfg;
}

TEST(Phantom, SliceDeterministic) {
  PhantomGenerator gen(small_config(), 42);
  const PhantomSlice a = gen.render_slice(3, 0.5);
  const PhantomSlice b = gen.render_slice(3, 0.5);
  EXPECT_LT(tensor::max_abs_diff(a.image_hu, b.image_hu), 1e-9);
  for (std::int64_t i = 0; i < a.labels.numel(); ++i) {
    ASSERT_EQ(a.labels[i], b.labels[i]);
  }
}

TEST(Phantom, DifferentPatientsDiffer) {
  PhantomGenerator gen(small_config(), 42);
  const PhantomSlice a = gen.render_slice(1, 0.5);
  const PhantomSlice b = gen.render_slice(2, 0.5);
  EXPECT_GT(tensor::max_abs_diff(a.image_hu, b.image_hu), 1.0);
}

TEST(Phantom, DatasetSeedChangesAnatomy) {
  PhantomGenerator g1(small_config(), 1);
  PhantomGenerator g2(small_config(), 2);
  const auto a1 = g1.anatomy(0);
  const auto a2 = g2.anatomy(0);
  EXPECT_NE(a1.shape_seed, a2.shape_seed);
}

TEST(Phantom, AnatomyWithinDocumentedRanges) {
  PhantomGenerator gen(small_config(), 7);
  for (int p = 0; p < 20; ++p) {
    const PatientAnatomy a = gen.anatomy(p);
    EXPECT_GE(a.body_rx, 0.66);
    EXPECT_LE(a.body_rx, 0.78);
    EXPECT_GT(a.lung_hu, -900.0);
    EXPECT_LT(a.lung_hu, -700.0);
    EXPECT_GT(a.bone_hu, 400.0);
    EXPECT_GT(a.liver_hu, a.soft_hu);     // enhanced liver brighter
    EXPECT_LT(a.bladder_hu, a.soft_hu);   // urine darker
  }
}

TEST(Phantom, LungsAreDarkBonesAreBright) {
  PhantomConfig cfg = small_config();
  cfg.noise_hu = 0.0;
  cfg.blur_radius = 0;
  PhantomGenerator gen(cfg, 11);
  const PhantomSlice s = gen.render_slice(0, 0.30);  // chest
  double lung_sum = 0, soft_sum = 0, bone_sum = 0;
  std::int64_t lung_n = 0, soft_n = 0, bone_n = 0;
  for (std::int64_t i = 0; i < s.labels.numel(); ++i) {
    switch (static_cast<Organ>(s.labels[i])) {
      case Organ::kLungs: lung_sum += s.image_hu[i]; ++lung_n; break;
      case Organ::kBones: bone_sum += s.image_hu[i]; ++bone_n; break;
      case Organ::kBackground:
        if (s.image_hu[i] > -500.f) { soft_sum += s.image_hu[i]; ++soft_n; }
        break;
      default: break;
    }
  }
  ASSERT_GT(lung_n, 0);
  ASSERT_GT(bone_n, 0);
  EXPECT_LT(lung_sum / lung_n, -600.0);
  EXPECT_GT(bone_sum / bone_n, 300.0);
  EXPECT_NEAR(soft_sum / soft_n, 40.0, 20.0);
}

TEST(Phantom, OrgansRespectZRanges) {
  PhantomGenerator gen(small_config(), 13);
  auto organs_at = [&](double z) {
    const PhantomSlice s = gen.render_slice(0, z);
    std::map<std::int32_t, std::int64_t> counts;
    for (std::int64_t i = 0; i < s.labels.numel(); ++i) ++counts[s.labels[i]];
    return counts;
  };
  // chest slice: lungs yes, bladder no
  auto chest = organs_at(0.30);
  EXPECT_GT(chest[static_cast<std::int32_t>(Organ::kLungs)], 0);
  EXPECT_EQ(chest[static_cast<std::int32_t>(Organ::kBladder)], 0);
  // pelvis slice: bladder yes, lungs no
  auto pelvis = organs_at(0.85);
  EXPECT_GT(pelvis[static_cast<std::int32_t>(Organ::kBladder)], 0);
  EXPECT_EQ(pelvis[static_cast<std::int32_t>(Organ::kLungs)], 0);
  // head slice: brain, no torso organs
  auto head = organs_at(0.04);
  EXPECT_GT(head[static_cast<std::int32_t>(Organ::kBrain)], 0);
  EXPECT_EQ(head[static_cast<std::int32_t>(Organ::kLiver)], 0);
}

TEST(Phantom, LiverIsLateralized) {
  PhantomConfig cfg = small_config();
  PhantomGenerator gen(cfg, 17);
  const PhantomSlice s = gen.render_slice(0, 0.50);
  const std::int64_t res = cfg.resolution;
  std::int64_t left = 0, right = 0;
  for (std::int64_t y = 0; y < res; ++y) {
    for (std::int64_t x = 0; x < res; ++x) {
      if (s.labels[y * res + x] == static_cast<std::int32_t>(Organ::kLiver)) {
        (x < res / 2 ? left : right) += 1;
      }
    }
  }
  EXPECT_GT(left, right);  // liver sits on the image-left side
}

TEST(Phantom, NoiseConfigurable) {
  PhantomConfig noisy = small_config();
  noisy.noise_hu = 50.0;
  PhantomConfig clean = small_config();
  clean.noise_hu = 0.0;
  PhantomGenerator g1(noisy, 19);
  PhantomGenerator g2(clean, 19);
  const auto a = g1.render_slice(0, 0.5);
  const auto b = g2.render_slice(0, 0.5);
  double var = 0;
  for (std::int64_t i = 0; i < a.image_hu.numel(); ++i) {
    const double d = a.image_hu[i] - b.image_hu[i];
    var += d * d;
  }
  var /= static_cast<double>(a.image_hu.numel());
  EXPECT_NEAR(std::sqrt(var), 50.0, 5.0);
}

TEST(Phantom, IncludeBrainFlag) {
  PhantomConfig cfg = small_config();
  cfg.include_brain = false;
  PhantomGenerator gen(cfg, 23);
  const PhantomSlice s = gen.render_slice(0, 0.04);
  for (std::int64_t i = 0; i < s.labels.numel(); ++i) {
    ASSERT_NE(s.labels[i], static_cast<std::int32_t>(Organ::kBrain));
  }
}

TEST(Phantom, ScanTypeMixMatchesCtOrgComposition) {
  PhantomGenerator gen(small_config(), 1234);
  int whole = 0, chest = 0, abd = 0;
  for (int p = 0; p < 500; ++p) {
    switch (gen.scan_type(p)) {
      case ScanType::kWholeBody: ++whole; break;
      case ScanType::kChestOnly: ++chest; break;
      case ScanType::kChestAbdomen: ++abd; break;
    }
  }
  EXPECT_LT(whole, 25);          // whole-body scans are rare (~2 %)
  EXPECT_GT(chest, 80);          // ~24 %
  EXPECT_GT(abd, 300);           // the majority
}

TEST(Phantom, VolumeCoversScanRange) {
  PhantomGenerator gen(small_config(), 29);
  const PhantomVolume vol = gen.generate_volume(5);
  ASSERT_EQ(vol.slices.size(), 12u);
  const auto [z0, z1] = PhantomGenerator::scan_range(vol.scan_type);
  for (const auto& s : vol.slices) {
    EXPECT_GT(s.z, z0 - 1e-9);
    EXPECT_LT(s.z, z1 + 1e-9);
  }
  EXPECT_LT(vol.slices.front().z, vol.slices.back().z);
}

/// Table I: organ pixel frequencies. A 30-volume sample at reduced
/// resolution must land near the paper's distribution (the bench reproduces
/// it at full scale).
TEST(Phantom, TableIOrganFrequencies) {
  const auto freq = raw_organ_frequencies(30, 16, 96, 1234);
  ASSERT_EQ(freq.size(), 6u);
  const double paper[6] = {22.18, 2.51, 34.17, 4.70, 36.26, 0.18};
  const double tol[6] = {5.0, 1.5, 6.0, 2.0, 6.0, 0.8};
  for (int i = 0; i < 6; ++i) {
    EXPECT_NEAR(freq[i], paper[i], tol[i]) << "organ " << i;
  }
  double sum = 0;
  for (double f : freq) sum += f;
  EXPECT_NEAR(sum, 100.0, 1e-6);
}

}  // namespace
}  // namespace seneca::data
