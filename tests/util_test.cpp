// Unit tests for the util library: RNG, thread pool, CLI, binary I/O.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <numeric>

#include "util/cli.hpp"
#include "util/io.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace seneca::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.5, 2.5);
    ASSERT_GE(u, -3.5);
    ASSERT_LT(u, 2.5);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, GaussMomentsMatchStandardNormal) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gauss();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, GaussScaleAndShift) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.gauss(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(19);
  std::vector<int> hits(7, 0);
  for (int i = 0; i < 7000; ++i) ++hits[rng.uniform_index(7)];
  for (int h : hits) EXPECT_GT(h, 700);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(23);
  bool lo = false, hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    lo |= (v == -2);
    hi |= (v == 2);
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, BernoulliRate) {
  Rng rng(29);
  int heads = 0;
  for (int i = 0; i < 100000; ++i) heads += rng.bernoulli(0.3);
  EXPECT_NEAR(heads / 100000.0, 0.3, 0.01);
}

TEST(Rng, SplitStreamsAreIndependentOfParentContinuation) {
  Rng parent(31);
  Rng child = parent.split(1);
  Rng parent2(31);
  Rng child2 = parent2.split(1);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(child.next_u64(), child2.next_u64());
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(Rng, ShuffleActuallyMoves) {
  Rng rng(41);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v);
  int moved = 0;
  for (int i = 0; i < 100; ++i) moved += (v[static_cast<std::size_t>(i)] != i);
  EXPECT_GT(moved, 80);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(0, 257, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ChunkedCoversRange) {
  ThreadPool pool(3);
  std::atomic<std::int64_t> sum{0};
  pool.parallel_for_chunked(10, 110, [&](std::size_t lo, std::size_t hi) {
    std::int64_t local = 0;
    for (std::size_t i = lo; i < hi; ++i) local += static_cast<std::int64_t>(i);
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), (10 + 109) * 100 / 2);
}

TEST(ThreadPool, SingleThreadedFallbackWorks) {
  ThreadPool pool(1);  // degenerates to inline execution
  EXPECT_EQ(pool.size(), 0u);
  std::int64_t sum = 0;
  pool.parallel_for(0, 100, [&](std::size_t i) { sum += static_cast<std::int64_t>(i); });
  EXPECT_EQ(sum, 4950);
}

TEST(ThreadPool, SubmitRuns) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(0, 1, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, DetectsWorkerThreads) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.in_worker_thread());
  std::atomic<int> inside{-1};
  std::atomic<bool> done{false};
  pool.submit([&] {
    inside.store(pool.in_worker_thread() ? 1 : 0);
    done.store(true);
  });
  while (!done.load()) std::this_thread::yield();
  EXPECT_EQ(inside.load(), 1);
}

TEST(ThreadPool, NestedParallelForFromWorkerRunsInlineWithoutDeadlock) {
  // The serving scheduler shares global_pool() with compute kernels, so a
  // kernel's parallel_for may be reached from a pool worker. The rule: such
  // nested calls run inline on the calling worker instead of blocking on
  // chunks no free worker may ever pick up.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  // Saturate every worker with a task that itself calls parallel_for.
  std::atomic<int> done{0};
  for (int t = 0; t < 4; ++t) {
    pool.submit([&] {
      pool.parallel_for(0, 64, [&](std::size_t) { total.fetch_add(1); });
      done.fetch_add(1);
    });
  }
  while (done.load() < 4) std::this_thread::yield();
  EXPECT_EQ(total.load(), 4 * 64);
}

TEST(ThreadPool, SubmitFromWorkerIsQueuedNotDropped) {
  ThreadPool pool(2);
  std::atomic<int> stage{0};
  std::atomic<bool> done{false};
  pool.submit([&] {
    stage.fetch_add(1);
    pool.submit([&] {  // reentrant submit: enqueue only, never inline
      stage.fetch_add(1);
      done.store(true);
    });
  });
  while (!done.load()) std::this_thread::yield();
  EXPECT_EQ(stage.load(), 2);
}

TEST(Cli, ParsesFlagsAndValues) {
  const char* argv[] = {"prog", "--alpha", "0.5", "--flag", "--name=net", "pos1"};
  Cli cli(6, argv);
  EXPECT_TRUE(cli.has("alpha"));
  EXPECT_DOUBLE_EQ(cli.get_double("alpha", 0.0), 0.5);
  EXPECT_TRUE(cli.get_bool("flag", false));
  EXPECT_EQ(cli.get("name", ""), "net");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, DefaultsWhenMissing) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv);
  EXPECT_FALSE(cli.has("x"));
  EXPECT_EQ(cli.get_int("x", 42), 42);
  EXPECT_EQ(cli.get("y", "def"), "def");
  EXPECT_FALSE(cli.get_bool("z", false));
}

TEST(Cli, IntParsing) {
  const char* argv[] = {"prog", "--n", "123", "--m=-7"};
  Cli cli(4, argv);
  EXPECT_EQ(cli.get_int("n", 0), 123);
  EXPECT_EQ(cli.get_int("m", 0), -7);
}

TEST(BinaryIo, RoundTripScalars) {
  BinaryWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i32(-12345);
  w.f32(3.25f);
  w.str("hello seneca");
  BinaryReader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i32(), -12345);
  EXPECT_FLOAT_EQ(r.f32(), 3.25f);
  EXPECT_EQ(r.str(), "hello seneca");
  EXPECT_TRUE(r.eof());
}

TEST(BinaryIo, TruncatedStreamThrows) {
  BinaryWriter w;
  w.u32(1);
  BinaryReader r(w.data());
  r.u32();
  EXPECT_THROW(r.u32(), std::runtime_error);
}

TEST(BinaryIo, BytesRoundTrip) {
  BinaryWriter w;
  const std::uint8_t payload[] = {1, 2, 3, 4, 5};
  w.bytes(payload, sizeof payload);
  BinaryReader r(w.data());
  std::uint8_t out[5];
  r.bytes(out, 5);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[i], payload[i]);
}

TEST(FileIo, WriteReadRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "seneca_io_test.bin";
  const std::string text = "file round trip";
  write_text_file(path, text);
  const auto data = read_file(path);
  EXPECT_EQ(std::string(data.begin(), data.end()), text);
  std::filesystem::remove(path);
}

TEST(FileIo, MissingFileThrows) {
  EXPECT_THROW(read_file("/nonexistent/seneca/file"), std::runtime_error);
}

TEST(FileIo, CreatesParentDirectories) {
  const auto dir = std::filesystem::temp_directory_path() / "seneca_io_nested";
  const auto path = dir / "a" / "b.txt";
  write_text_file(path, "x");
  EXPECT_TRUE(std::filesystem::exists(path));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace seneca::util
