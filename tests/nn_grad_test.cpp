// Gradient correctness: central finite differences against analytic
// backward passes, per layer and through a full tiny U-Net. BN conv biases
// are excluded (BN absorbs them: analytic gradient is exactly zero while the
// numeric probe reads float noise).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/graph.hpp"
#include "nn/layers2d.hpp"
#include "nn/layers3d.hpp"
#include "nn/layers_common.hpp"
#include "nn/loss.hpp"
#include "nn/unet.hpp"
#include "util/rng.hpp"

namespace seneca::nn {
namespace {

using tensor::Shape;
using tensor::TensorF;

TensorF random_tensor(Shape shape, std::uint64_t seed) {
  util::Rng rng(seed);
  TensorF t(shape);
  for (auto& v : t) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

/// Scalar objective: weighted sum of layer outputs (fixed random weights),
/// differentiable and sensitive to every output element.
struct LayerProbe {
  Layer& layer;
  std::vector<const TensorF*> inputs;
  TensorF coeffs;  // objective weights, same shape as output

  double objective(bool training = false) {
    Shape out_shape = layer.output_shape(shapes());
    TensorF out(out_shape);
    layer.forward(inputs, out, training);
    double s = 0.0;
    for (std::int64_t i = 0; i < out.numel(); ++i) s += out[i] * coeffs[i];
    return s;
  }

  std::vector<Shape> shapes() const {
    std::vector<Shape> s;
    for (auto* in : inputs) s.push_back(in->shape());
    return s;
  }

  /// Analytic gradients: d(objective)/d(input_i) and parameter grads.
  std::vector<TensorF> input_grads(bool training = false) {
    Shape out_shape = layer.output_shape(shapes());
    TensorF out(out_shape);
    layer.forward(inputs, out, training);
    std::vector<TensorF> grads;
    std::vector<TensorF*> grad_ptrs;
    for (auto* in : inputs) grads.emplace_back(in->shape(), 0.f);
    for (auto& g : grads) grad_ptrs.push_back(&g);
    for (Param* p : layer.params()) p->grad.fill(0.f);
    layer.backward(inputs, out, coeffs, grad_ptrs);
    return grads;
  }
};

void check_input_gradient(Layer& layer, std::vector<TensorF> inputs,
                          std::uint64_t seed, double tol = 2e-2) {
  std::vector<const TensorF*> input_ptrs;
  for (auto& in : inputs) input_ptrs.push_back(&in);
  LayerProbe probe{layer, input_ptrs,
                   random_tensor(layer.output_shape([&] {
                     std::vector<Shape> s;
                     for (auto& in : inputs) s.push_back(in.shape());
                     return s;
                   }()), seed)};
  auto grads = probe.input_grads();
  const float h = 1e-2f;
  util::Rng pick(seed ^ 0xABC);
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    for (int probe_i = 0; probe_i < 4; ++probe_i) {
      const std::int64_t idx = static_cast<std::int64_t>(
          pick.uniform_index(static_cast<std::uint64_t>(inputs[k].numel())));
      const float orig = inputs[k][idx];
      inputs[k][idx] = orig + h;
      const double lp = probe.objective();
      inputs[k][idx] = orig - h;
      const double lm = probe.objective();
      inputs[k][idx] = orig;
      const double num = (lp - lm) / (2.0 * h);
      const double ana = grads[k][idx];
      EXPECT_NEAR(ana, num, tol * (std::fabs(num) + std::fabs(ana) + 1.0))
          << "input " << k << " idx " << idx;
    }
  }
}

void check_param_gradient(Layer& layer, std::vector<TensorF> inputs,
                          std::uint64_t seed, double tol = 2e-2) {
  std::vector<const TensorF*> input_ptrs;
  for (auto& in : inputs) input_ptrs.push_back(&in);
  LayerProbe probe{layer, input_ptrs,
                   random_tensor(layer.output_shape([&] {
                     std::vector<Shape> s;
                     for (auto& in : inputs) s.push_back(in.shape());
                     return s;
                   }()), seed)};
  probe.input_grads(true);  // fills param grads
  const float h = 1e-2f;
  util::Rng pick(seed ^ 0x123);
  for (Param* p : layer.params()) {
    std::vector<double> saved;
    for (int probe_i = 0; probe_i < 3; ++probe_i) {
      const std::int64_t idx = static_cast<std::int64_t>(
          pick.uniform_index(static_cast<std::uint64_t>(p->value.numel())));
      const double ana = p->grad[idx];
      const float orig = p->value[idx];
      p->value[idx] = orig + h;
      const double lp = probe.objective(true);
      p->value[idx] = orig - h;
      const double lm = probe.objective(true);
      p->value[idx] = orig;
      const double num = (lp - lm) / (2.0 * h);
      EXPECT_NEAR(ana, num, tol * (std::fabs(num) + std::fabs(ana) + 1.0))
          << p->name << " idx " << idx;
      saved.push_back(ana);
    }
  }
}

TEST(Grad, Conv2DInput) {
  Conv2D conv(2, 3);
  util::Rng rng(1);
  conv.init_he(rng);
  check_input_gradient(conv, {random_tensor(Shape{5, 5, 2}, 2)}, 3);
}

TEST(Grad, Conv2DParams) {
  Conv2D conv(2, 3);
  util::Rng rng(4);
  conv.init_he(rng);
  check_param_gradient(conv, {random_tensor(Shape{5, 5, 2}, 5)}, 6);
}

TEST(Grad, TransposedConv2DInput) {
  TransposedConv2D up(3, 2);
  util::Rng rng(7);
  up.init_he(rng);
  check_input_gradient(up, {random_tensor(Shape{3, 3, 3}, 8)}, 9);
}

TEST(Grad, TransposedConv2DParams) {
  TransposedConv2D up(3, 2);
  util::Rng rng(10);
  up.init_he(rng);
  check_param_gradient(up, {random_tensor(Shape{3, 3, 3}, 11)}, 12);
}

TEST(Grad, ReLUInput) {
  ReLU relu;
  check_input_gradient(relu, {random_tensor(Shape{4, 4, 3}, 13)}, 14);
}

TEST(Grad, MaxPool2DInput) {
  MaxPool2D pool;
  check_input_gradient(pool, {random_tensor(Shape{4, 4, 2}, 15)}, 16);
}

TEST(Grad, ConcatInputs) {
  Concat cat;
  check_input_gradient(
      cat, {random_tensor(Shape{3, 3, 2}, 17), random_tensor(Shape{3, 3, 1}, 18)},
      19);
}

TEST(Grad, SoftmaxInput) {
  Softmax sm;
  check_input_gradient(sm, {random_tensor(Shape{2, 2, 4}, 20)}, 21, 3e-2);
}

TEST(Grad, BatchNormParams) {
  BatchNorm bn(3);
  check_param_gradient(bn, {random_tensor(Shape{6, 6, 3}, 22)}, 23);
}

TEST(Grad, Conv3DInput) {
  Conv3D conv(2, 2);
  util::Rng rng(24);
  conv.init_he(rng);
  check_input_gradient(conv, {random_tensor(Shape{3, 3, 3, 2}, 25)}, 26);
}

TEST(Grad, Conv3DParams) {
  Conv3D conv(2, 2);
  util::Rng rng(27);
  conv.init_he(rng);
  check_param_gradient(conv, {random_tensor(Shape{3, 3, 3, 2}, 28)}, 29);
}

TEST(Grad, TransposedConv3DInput) {
  TransposedConv3D up(2, 2);
  util::Rng rng(30);
  up.init_he(rng);
  check_input_gradient(up, {random_tensor(Shape{2, 2, 2, 2}, 31)}, 32);
}

TEST(Grad, MaxPool3DInput) {
  MaxPool3D pool;
  check_input_gradient(pool, {random_tensor(Shape{2, 2, 2, 2}, 33)}, 34);
}

/// End-to-end: loss gradient through a whole tiny 2D U-Net.
TEST(Grad, WholeUNetThroughLoss) {
  UNet2DConfig cfg;
  cfg.input_size = 16;
  cfg.depth = 2;
  cfg.base_filters = 4;
  cfg.num_classes = 3;
  cfg.dropout = 0.f;
  auto graph = build_unet2d(cfg);
  util::Rng rng(35);
  TensorF x = random_tensor(Shape{16, 16, 1}, 36);
  LabelMap y(Shape{16, 16});
  for (auto& v : y) v = static_cast<std::int32_t>(rng.uniform_index(3));
  FocalTverskyLoss loss(0.7f, 0.3f, 4.f / 3.f, {0.5f, 1.f, 2.f});

  auto run = [&] {
    const TensorF& p = graph->forward(x, true);
    TensorF gp(p.shape());
    return std::make_pair(loss.compute(p, y, gp), gp);
  };
  auto [l0, gp] = run();
  graph->zero_grad();
  graph->backward(gp);

  // Central differences through a float32 forward are noisy (loss deltas of
  // ~1e-6 ride on ~1e-7 accumulation noise), so this end-to-end check only
  // probes parameters with non-negligible gradients and uses a loose bound;
  // the strict per-layer checks above pin exactness.
  const float h = 5e-3f;
  int checked = 0;
  for (Param* p : graph->params()) {
    if (checked >= 6) break;
    if (p->name == "bias") continue;  // absorbed by the following BN
    if (p->value.numel() < 8) continue;
    const std::int64_t idx = p->value.numel() / 3;
    const double ana = p->grad[idx];
    if (std::fabs(ana) < 2e-3) continue;
    const float orig = p->value[idx];
    p->value[idx] = orig + h;
    const double lp = run().first;
    p->value[idx] = orig - h;
    const double lm = run().first;
    p->value[idx] = orig;
    const double num = (lp - lm) / (2.0 * h);
    EXPECT_NEAR(ana, num, 0.2 * (std::fabs(num) + std::fabs(ana)) + 5e-4)
        << p->name;
    ++checked;
  }
  EXPECT_GE(checked, 2);
}

}  // namespace
}  // namespace seneca::nn
