// SENECA-Check primitives: annotated Mutex/LockGuard/CondVar semantics and
// the OrderedMutex runtime lock-order checker — the seeded A->B / B->A
// inversion must be flagged at the first inversion, consistent orders and
// try_lock must not flag, and destruction must retire a mutex's edges.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "util/logging.hpp"
#include "util/mutex.hpp"
#include "util/thread_pool.hpp"

// This suite deliberately acquires locks in inverted order (that is the
// scenario under test). TSan's own deadlock detector would abort on those
// seeded inversions, so suppress deadlock reports whose stack goes through
// this file — real code elsewhere stays fully checked.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SENECA_TSAN_ACTIVE 1
#endif
#elif defined(__SANITIZE_THREAD__)
#define SENECA_TSAN_ACTIVE 1
#endif
#if defined(SENECA_TSAN_ACTIVE)
extern "C" const char* __tsan_default_suppressions() {
  return "deadlock:util_mutex_test.cpp\n";
}
#endif

namespace seneca::util {
namespace {

// Every scenario starts from an empty acquisition graph with checking on,
// and leaves checking in its build-type default so unrelated tests (and
// DebugMutex users inside the server) are unaffected.
class OrderedMutexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    OrderedMutex::reset_order_graph();
    OrderedMutex::set_checking_enabled(true);
  }
  void TearDown() override {
    OrderedMutex::reset_order_graph();
#if defined(NDEBUG)
    OrderedMutex::set_checking_enabled(false);
#else
    OrderedMutex::set_checking_enabled(true);
#endif
  }
};

TEST_F(OrderedMutexTest, DetectsSeededTwoLockInversion) {
  OrderedMutex a("A");
  OrderedMutex b("B");
  {
    LockGuard la(a);  // establish A -> B
    LockGuard lb(b);
  }
  bool flagged = false;
  std::string message;
  try {
    LockGuard lb(b);
    LockGuard la(a);  // B -> A closes the cycle
  } catch (const LockOrderViolation& e) {
    flagged = true;
    message = e.what();
  }
  EXPECT_TRUE(flagged);
  EXPECT_NE(message.find("\"A\""), std::string::npos) << message;
  EXPECT_NE(message.find("\"B\""), std::string::npos) << message;
}

TEST_F(OrderedMutexTest, DetectsTransitiveCycle) {
  OrderedMutex a("A");
  OrderedMutex b("B");
  OrderedMutex c("C");
  {
    LockGuard la(a);
    LockGuard lb(b);  // A -> B
  }
  {
    LockGuard lb(b);
    LockGuard lc(c);  // B -> C
  }
  EXPECT_THROW(
      {
        LockGuard lc(c);
        LockGuard la(a);  // C -> A closes A -> B -> C -> A
      },
      LockOrderViolation);
}

TEST_F(OrderedMutexTest, ConsistentOrderNeverFlags) {
  OrderedMutex a("A");
  OrderedMutex b("B");
  OrderedMutex c("C");
  for (int i = 0; i < 100; ++i) {
    LockGuard la(a);
    LockGuard lb(b);
    LockGuard lc(c);
  }
  // Fan-out from one root is a DAG, not a cycle.
  {
    LockGuard la(a);
    LockGuard lc(c);
  }
}

TEST_F(OrderedMutexTest, FlaggedAcquisitionLeavesLocksConsistent) {
  OrderedMutex a("A");
  OrderedMutex b("B");
  {
    LockGuard la(a);
    LockGuard lb(b);
  }
  try {
    LockGuard lb(b);
    LockGuard la(a);
  } catch (const LockOrderViolation&) {
  }
  // The throwing acquisition must not leave either mutex held.
  EXPECT_TRUE(a.try_lock());
  a.unlock();
  EXPECT_TRUE(b.try_lock());
  b.unlock();
}

TEST_F(OrderedMutexTest, TryLockNeverFlags) {
  OrderedMutex a("A");
  OrderedMutex b("B");
  {
    LockGuard la(a);
    LockGuard lb(b);
  }
  // try_lock cannot block, so acquiring A under B this way is deadlock-free.
  LockGuard lb(b);
  ASSERT_TRUE(a.try_lock());
  a.unlock();
}

TEST_F(OrderedMutexTest, DisabledCheckingNeverThrows) {
  OrderedMutex::set_checking_enabled(false);
  OrderedMutex a("A");
  OrderedMutex b("B");
  {
    LockGuard la(a);
    LockGuard lb(b);
  }
  LockGuard lb(b);
  LockGuard la(a);  // inverted, but unchecked
}

TEST_F(OrderedMutexTest, DestructionRetiresEdges) {
  OrderedMutex a("A");
  auto b = std::make_unique<OrderedMutex>("B");
  {
    LockGuard la(a);
    LockGuard lb(*b);  // A -> B
  }
  b = std::make_unique<OrderedMutex>("B2");  // may reuse the allocation
  // The old B's edges died with it: B2 -> A must not flag.
  LockGuard lb(*b);
  LockGuard la(a);
}

TEST_F(OrderedMutexTest, ConcurrentConsistentLockersNeverFlag) {
  OrderedMutex a("A");
  OrderedMutex b("B");
  std::atomic<int> count{0};
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        LockGuard la(a);
        LockGuard lb(b);
        count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(count.load(), 800);
}

// ------------------------------------------------------------ Mutex/CondVar

TEST(MutexCondVar, ProducerConsumerHandshake) {
  Mutex mu;
  CondVar cv;
  int value = 0;  // guarded by mu (annotation omitted: local to the test)
  bool ready = false;

  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    {
      LockGuard lock(mu);
      value = 42;
      ready = true;
    }
    cv.notify_one();
  });

  {
    LockGuard lock(mu);
    cv.wait(lock, [&] { return ready; });
    EXPECT_EQ(value, 42);
  }
  producer.join();
}

TEST(MutexCondVar, WaitUntilTimesOutWithPredicateFalse) {
  Mutex mu;
  CondVar cv;
  LockGuard lock(mu);
  const bool satisfied = cv.wait_until(
      lock, std::chrono::steady_clock::now() + std::chrono::milliseconds(5),
      [] { return false; });
  EXPECT_FALSE(satisfied);
}

// ------------------------------------------------------------- ThreadPool

TEST(ThreadPoolShutdown, SubmitDuringShutdownRunsInline) {
  // Raw pointer: the destructor blocks joining the occupied workers, and
  // the racing submit below must still reach the (alive, mid-destruction)
  // object — unique_ptr::reset() would null the handle before destroying.
  ThreadPool* pool = new ThreadPool(2);
  std::atomic<bool> release{false};
  std::atomic<int> occupied{0};
  for (int i = 0; i < 2; ++i) {
    pool->submit([&] {
      occupied.fetch_add(1);
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  while (occupied.load() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Destructor blocks joining the occupied workers; a submit racing it must
  // not be lost — it either runs inline (stopping_ already observed) or is
  // drained by a worker on its way out. Before the fix this task could be
  // enqueued after the workers' final drain and vanish, hanging any
  // parallel_for that waited on it.
  std::thread destroyer([&] { delete pool; });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::atomic<bool> ran{false};
  pool->submit([&] { ran.store(true); });

  release.store(true);
  destroyer.join();
  EXPECT_TRUE(ran.load());
}

// ---------------------------------------------------------------- LogSink

TEST(LogSink, CapturesAndRestores) {
  std::vector<std::string> captured;
  Mutex mu;
  set_log_sink([&](LogLevel, const std::string& msg) {
    LockGuard lock(mu);
    captured.push_back(msg);
  });
  log_info() << "sink test " << 7;
  set_log_sink(nullptr);
  log_debug() << "below threshold, dropped either way";

  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0], "sink test 7");
}

}  // namespace
}  // namespace seneca::util
