// Compiler tests: timing-model formulas, lane quantization, residency
// policy, instruction streams, xmodel structure + serialization.
#include <gtest/gtest.h>

#include <filesystem>

#include "dpu/compiler.hpp"
#include "nn/unet.hpp"
#include "quant/quantizer.hpp"
#include "util/io.hpp"
#include "util/rng.hpp"

namespace seneca::dpu {
namespace {

using tensor::Shape;
using tensor::TensorF;

quant::QGraph tiny_qgraph(std::uint64_t seed = 5, std::int64_t size = 16) {
  nn::UNet2DConfig cfg;
  cfg.input_size = size;
  cfg.depth = 2;
  cfg.base_filters = 4;
  cfg.seed = seed;
  auto graph = nn::build_unet2d(cfg);
  for (int i = 0; i < 4; ++i) {
    util::Rng rng(seed + 100 + static_cast<std::uint64_t>(i));
    TensorF x(Shape{size, size, 1});
    for (auto& v : x) v = static_cast<float>(rng.uniform(-1, 1));
    graph->forward(x, true);
  }
  quant::FGraph fg = quant::fold(*graph);
  std::vector<TensorF> calib;
  util::Rng rng(seed + 7);
  TensorF img(Shape{size, size, 1});
  for (auto& v : img) v = static_cast<float>(rng.uniform(-1, 1));
  calib.push_back(img);
  return quant::quantize(fg, calib);
}

TEST(TimingModel, ConvCyclesFormula) {
  const DpuArch arch = DpuArch::b4096();
  // 16 rows * ceil(16/8)=2 col groups * 9 taps * 1 * 1 = 288
  EXPECT_DOUBLE_EQ(conv_cycles(arch, 16, 16, 3, 16, 16), 288.0);
}

TEST(TimingModel, LaneQuantizationCeilsChannels) {
  const DpuArch arch = DpuArch::b4096();
  EXPECT_DOUBLE_EQ(conv_cycles(arch, 8, 8, 3, 6, 16),
                   conv_cycles(arch, 8, 8, 3, 8, 16));
  EXPECT_DOUBLE_EQ(conv_cycles(arch, 8, 8, 3, 17, 16),
                   2.0 * conv_cycles(arch, 8, 8, 3, 16, 16));
}

TEST(TimingModel, PixelParallelCeilsWidth) {
  const DpuArch arch = DpuArch::b4096();
  EXPECT_GT(conv_cycles(arch, 8, 9, 3, 16, 16),
            conv_cycles(arch, 8, 8, 3, 16, 16));
}

TEST(TimingModel, TConvCheaperThanConvPerOutputPixel) {
  const DpuArch arch = DpuArch::b4096();
  EXPECT_LT(tconv_cycles(arch, 16, 16, 3, 16, 16),
            conv_cycles(arch, 16, 16, 3, 16, 16));
}

TEST(TimingModel, SmallerArchIsSlower) {
  EXPECT_GT(conv_cycles(DpuArch::b512(), 16, 16, 3, 32, 32),
            conv_cycles(DpuArch::b4096(), 16, 16, 3, 32, 32));
}

TEST(Arch, PeakOpsMatchDesignation) {
  EXPECT_EQ(DpuArch::b4096().peak_ops_per_cycle(), 4096);
  EXPECT_EQ(DpuArch::b1024().peak_ops_per_cycle(), 1024);
  EXPECT_EQ(DpuArch::b512().peak_ops_per_cycle(), 512);
}

TEST(Arch, PeakTopsScalesWithCores) {
  DpuArch a = DpuArch::b4096();
  const double two_core = a.peak_tops();
  a.cores = 1;
  EXPECT_NEAR(a.peak_tops(), two_core / 2.0, 1e-9);
}

TEST(Compiler, LayerCountMatchesQGraph) {
  const quant::QGraph qg = tiny_qgraph();
  const XModel xm = compile(qg);
  std::size_t non_input = 0;
  for (const auto& op : qg.ops) {
    non_input += (op.kind != quant::QOpKind::kInput);
  }
  EXPECT_EQ(xm.layers.size(), non_input);
}

TEST(Compiler, PreservesFixPositions) {
  const quant::QGraph qg = tiny_qgraph();
  const XModel xm = compile(qg);
  EXPECT_EQ(xm.input_fix_pos, qg.input_fix_pos);
  EXPECT_EQ(xm.output_fix_pos,
            qg.ops[static_cast<std::size_t>(qg.output_op)].fix_pos_out);
}

TEST(Compiler, WeightBlobHoldsAllConvWeights) {
  const quant::QGraph qg = tiny_qgraph();
  const XModel xm = compile(qg);
  std::int64_t expected = 0;
  for (const auto& op : qg.ops) expected += op.weights.numel();
  EXPECT_EQ(static_cast<std::int64_t>(xm.weights.size()), expected);
}

TEST(Compiler, SkipConnectionInputsAreLoaded) {
  const XModel xm = compile(tiny_qgraph());
  for (const auto& layer : xm.layers) {
    if (layer.kind != XLayer::Kind::kConcat) continue;
    ASSERT_EQ(layer.inputs.size(), 2u);
    bool loads_a_far_input = false;
    for (std::size_t k = 0; k < layer.inputs.size(); ++k) {
      loads_a_far_input |= !layer.input_resident[k];
    }
    EXPECT_TRUE(loads_a_far_input) << layer.name;
  }
}

TEST(Compiler, EveryLayerHasComputeInstruction) {
  // Materialized concats are assembled by offset-addressed transfers and
  // kConst layers have no runtime footprint; everything else computes.
  const XModel xm = compile(tiny_qgraph());
  for (const auto& layer : xm.layers) {
    if (layer.materialized || layer.kind == XLayer::Kind::kConst) continue;
    bool has_compute = false;
    for (const auto& ins : layer.instrs) {
      has_compute |= (ins.opcode == Opcode::kConv || ins.opcode == Opcode::kTConv ||
                      ins.opcode == Opcode::kPool || ins.opcode == Opcode::kConcat);
    }
    EXPECT_TRUE(has_compute) << layer.name;
  }
}

TEST(Compiler, OptLevelZeroKeepsConcatInstructions) {
  CompileOptions opts;
  opts.opt_level = 0;
  const XModel xm = compile(tiny_qgraph(), opts);
  for (const auto& layer : xm.layers) {
    EXPECT_FALSE(layer.materialized);
    EXPECT_EQ(layer.concat_dst, -1);
    EXPECT_EQ(layer.tile_count, 1);
    if (layer.kind != XLayer::Kind::kConcat) continue;
    bool has_concat_instr = false;
    for (const auto& ins : layer.instrs) {
      has_concat_instr |= ins.opcode == Opcode::kConcat;
    }
    EXPECT_TRUE(has_concat_instr) << layer.name;
  }
}

TEST(Compiler, StreamEndsWithEnd) {
  const XModel xm = compile(tiny_qgraph());
  ASSERT_FALSE(xm.layers.empty());
  EXPECT_EQ(xm.layers.back().instrs.back().opcode, Opcode::kEnd);
}

TEST(Compiler, NonAlignedChannelsInflateSaveTraffic) {
  // Identical one-conv graphs differing only in output channels (8 vs 6):
  // the 6-channel output pads to the 8-lane bank AND pays the
  // read-modify-write penalty on SAVE.
  auto build = [](std::int64_t co) {
    quant::QGraph qg;
    quant::QOp input;
    input.kind = quant::QOpKind::kInput;
    input.out_shape = Shape{16, 16, 8};
    input.fix_pos_out = 6;
    qg.ops.push_back(input);
    quant::QOp conv;
    conv.kind = quant::QOpKind::kConv2D;
    conv.name = "c";
    conv.inputs = {0};
    conv.out_shape = Shape{16, 16, co};
    conv.kernel = 3;
    conv.fix_pos_w = 6;
    conv.fix_pos_out = 5;
    conv.weights = tensor::TensorI8(Shape{3, 3, 8, co}, 1);
    conv.bias.assign(static_cast<std::size_t>(co), 0);
    qg.ops.push_back(conv);
    qg.input_op = 0;
    qg.output_op = 1;
    qg.input_fix_pos = 6;
    qg.input_shape = Shape{16, 16, 8};
    return compile(qg);
  };
  const XModel aligned = build(8);
  const XModel unaligned = build(6);
  EXPECT_GT(unaligned.layers[0].ddr_bytes, aligned.layers[0].ddr_bytes);
}

TEST(Compiler, MacsMatchAnalyticCount) {
  const XModel xm = compile(tiny_qgraph());
  bool found = false;
  for (const auto& layer : xm.layers) {
    if (layer.name == "enc0_a_conv") {
      EXPECT_EQ(layer.macs, 16 * 16 * 9 * 1 * 4);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Compiler, UtilizationBetweenZeroAndOne) {
  const XModel xm = compile(tiny_qgraph());
  EXPECT_GT(xm.compute_utilization(), 0.0);
  EXPECT_LE(xm.compute_utilization(), 1.0);
}

TEST(XModel, LatencyDecreasesWithExclusiveBandwidth) {
  const XModel xm = compile(tiny_qgraph());
  EXPECT_LT(xm.latency_cycles(1), xm.latency_cycles(2));
}

TEST(XModel, LatencySecondsConsistentWithClock) {
  const XModel xm = compile(tiny_qgraph());
  EXPECT_NEAR(xm.latency_seconds(1),
              xm.latency_cycles(1) / (xm.arch.clock_mhz * 1e6), 1e-12);
}

TEST(XModel, SaveLoadRoundTrip) {
  const XModel xm = compile(tiny_qgraph());
  const auto path = std::filesystem::temp_directory_path() / "seneca.xmodel";
  xm.save(path);
  const XModel loaded = XModel::load(path);
  EXPECT_EQ(loaded.layers.size(), xm.layers.size());
  EXPECT_EQ(loaded.weights, xm.weights);
  EXPECT_EQ(loaded.biases, xm.biases);
  EXPECT_EQ(loaded.input_fix_pos, xm.input_fix_pos);
  EXPECT_NEAR(loaded.latency_cycles(2), xm.latency_cycles(2),
              1e-4 * xm.latency_cycles(2));
  EXPECT_EQ(loaded.total_instructions(), xm.total_instructions());
  std::filesystem::remove(path);
}

TEST(XModel, LoadRejectsGarbage) {
  const auto path = std::filesystem::temp_directory_path() / "bad.xmodel";
  util::write_text_file(path, "not an xmodel at all, padded to some length");
  EXPECT_THROW(XModel::load(path), std::runtime_error);
  std::filesystem::remove(path);
}

// --- Graph validation (compile() no longer trusts its input). -------------

quant::QGraph one_conv_graph() {
  quant::QGraph qg;
  quant::QOp input;
  input.kind = quant::QOpKind::kInput;
  input.out_shape = Shape{8, 8, 4};
  qg.ops.push_back(input);
  quant::QOp conv;
  conv.kind = quant::QOpKind::kConv2D;
  conv.name = "c";
  conv.inputs = {0};
  conv.out_shape = Shape{8, 8, 4};
  conv.kernel = 3;
  conv.weights = tensor::TensorI8(Shape{3, 3, 4, 4}, 1);
  conv.bias.assign(4, 0);
  qg.ops.push_back(conv);
  qg.input_op = 0;
  qg.output_op = 1;
  qg.input_shape = Shape{8, 8, 4};
  return qg;
}

void expect_invalid(const quant::QGraph& qg, const std::string& needle) {
  try {
    compile(qg);
    FAIL() << "expected invalid_argument containing '" << needle << "'";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(Validate, AcceptsWellFormedGraph) {
  EXPECT_NO_THROW(compile(one_conv_graph()));
}

TEST(Validate, RejectsEmptyGraph) {
  expect_invalid(quant::QGraph{}, "no ops");
}

TEST(Validate, RejectsDanglingInput) {
  auto qg = one_conv_graph();
  qg.ops[1].inputs = {7};
  expect_invalid(qg, "dangling input 7");
}

TEST(Validate, RejectsCyclicReference) {
  // A self/forward edge cannot be evaluated in index order — the shape a
  // cycle takes in this topologically-indexed IR.
  auto qg = one_conv_graph();
  qg.ops[1].inputs = {1};
  expect_invalid(qg, "cycle or forward reference");
}

TEST(Validate, RejectsDuplicateNames) {
  auto qg = one_conv_graph();
  quant::QOp dup = qg.ops[1];
  dup.inputs = {1};
  qg.ops.push_back(dup);
  qg.output_op = 2;
  expect_invalid(qg, "duplicate name");
}

TEST(Validate, RejectsUnnamedOp) {
  auto qg = one_conv_graph();
  qg.ops[1].name.clear();
  expect_invalid(qg, "has no name");
}

TEST(Validate, RejectsBadArity) {
  auto qg = one_conv_graph();
  qg.ops[1].inputs = {0, 0};
  expect_invalid(qg, "expected 1 inputs");
}

TEST(Validate, RejectsWeightShapeMismatch) {
  auto qg = one_conv_graph();
  qg.ops[1].weights = tensor::TensorI8(Shape{3, 3, 4, 2}, 1);
  expect_invalid(qg, "weight count");
}

TEST(Validate, RejectsBiasCountMismatch) {
  auto qg = one_conv_graph();
  qg.ops[1].bias.assign(3, 0);
  expect_invalid(qg, "bias count");
}

TEST(Validate, RejectsBadInputOp) {
  auto qg = one_conv_graph();
  qg.input_op = 1;
  expect_invalid(qg, "not a kInput");
}

TEST(Validate, RejectsOutputOpOutOfRange) {
  auto qg = one_conv_graph();
  qg.output_op = 9;
  expect_invalid(qg, "output_op 9 out of range");
}

TEST(Isa, OpcodeNames) {
  EXPECT_STREQ(opcode_name(Opcode::kLoad), "LOAD");
  EXPECT_STREQ(opcode_name(Opcode::kConv), "CONV");
  EXPECT_STREQ(opcode_name(Opcode::kEnd), "END");
}

TEST(Isa, SummarizeSplitsComputeAndMemory) {
  std::vector<Instr> stream;
  Instr load;
  load.opcode = Opcode::kLoad;
  load.bytes = 100;
  load.cycles = 10;
  Instr conv;
  conv.opcode = Opcode::kConv;
  conv.macs = 999;
  conv.cycles = 20;
  stream.push_back(load);
  stream.push_back(conv);
  const StreamStats stats = summarize(stream, 5.0);
  EXPECT_DOUBLE_EQ(stats.memory_cycles, 10.0);
  EXPECT_DOUBLE_EQ(stats.compute_cycles, 20.0);
  EXPECT_DOUBLE_EQ(stats.issue_cycles, 10.0);
  EXPECT_EQ(stats.ddr_bytes, 100);
  EXPECT_EQ(stats.macs, 999);
  EXPECT_EQ(stats.instructions, 2u);
}

}  // namespace
}  // namespace seneca::dpu
