// Disassembler tests: the report must faithfully reflect the compiled
// model's structure and totals.
#include <gtest/gtest.h>

#include "dpu/compiler.hpp"
#include "dpu/disasm.hpp"
#include "nn/unet.hpp"
#include "quant/quantizer.hpp"
#include "util/rng.hpp"

namespace seneca::dpu {
namespace {

XModel tiny_xmodel() {
  nn::UNet2DConfig cfg;
  cfg.input_size = 16;
  cfg.depth = 2;
  cfg.base_filters = 4;
  auto graph = nn::build_unet2d(cfg);
  util::Rng rng(3);
  tensor::TensorF x(tensor::Shape{16, 16, 1});
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1, 1));
  graph->forward(x, true);
  quant::FGraph fg = quant::fold(*graph);
  std::vector<tensor::TensorF> calib{x};
  return compile(quant::quantize(fg, calib));
}

TEST(Disasm, ListsEveryLayer) {
  const XModel xm = tiny_xmodel();
  const std::string text = disassemble(xm);
  for (const auto& layer : xm.layers) {
    EXPECT_NE(text.find(layer.name), std::string::npos) << layer.name;
  }
}

TEST(Disasm, ContainsArchAndOpcodes) {
  const XModel xm = tiny_xmodel();
  const std::string text = disassemble(xm);
  EXPECT_NE(text.find("DPUCZDX8G-B4096"), std::string::npos);
  EXPECT_NE(text.find("LOAD"), std::string::npos);
  EXPECT_NE(text.find("SAVE"), std::string::npos);
  EXPECT_NE(text.find("CONV"), std::string::npos);
  EXPECT_NE(text.find("END"), std::string::npos);
}

TEST(Disasm, InterleavesVerifierFindings) {
  XModel xm = tiny_xmodel();
  // Clean model: the findings hook prints nothing.
  std::vector<Finding> none = verify(xm);
  DisasmOptions opts;
  opts.findings = &none;
  EXPECT_EQ(disassemble(xm, opts).find("!!"), std::string::npos);

  // Mutant: the finding lands as a `!!` line under its layer.
  xm.layers[static_cast<std::size_t>(xm.output_layer)].output_resident = true;
  std::vector<Finding> findings = verify(xm);
  ASSERT_TRUE(has_errors(findings));
  opts.findings = &findings;
  const std::string text = disassemble(xm, opts);
  EXPECT_NE(text.find("!! error[residency]"), std::string::npos) << text;
}

TEST(Disasm, SummaryTogglable) {
  const XModel xm = tiny_xmodel();
  DisasmOptions opts;
  opts.summary = false;
  opts.instructions = false;
  const std::string text = disassemble(xm, opts);
  EXPECT_EQ(text.find("TOTAL:"), std::string::npos);
  EXPECT_EQ(text.find("LOAD"), std::string::npos);
  DisasmOptions with;
  EXPECT_NE(disassemble(xm, with).find("TOTAL:"), std::string::npos);
  EXPECT_NE(disassemble(xm, with).find("LATENCY:"), std::string::npos);
}

TEST(Disasm, BreakdownSortedByContribution) {
  const XModel xm = tiny_xmodel();
  const std::string text = latency_breakdown(xm);
  // percentage of the first listed layer >= percentage of the last
  const auto first = text.find('%');
  ASSERT_NE(first, std::string::npos);
  // every layer appears
  for (const auto& layer : xm.layers) {
    EXPECT_NE(text.find(layer.name), std::string::npos);
  }
  // percentages sum to ~100
  double sum = 0.0;
  std::size_t pos = 0;
  while ((pos = text.find('%', pos)) != std::string::npos) {
    const std::size_t line_start = text.rfind('\n', pos);
    const std::string head =
        text.substr(line_start + 1, pos - line_start - 1);
    sum += std::strtod(head.c_str(), nullptr);
    ++pos;
  }
  EXPECT_NEAR(sum, 100.0, 2.0);
}

TEST(Disasm, InstructionCountsMatchModel) {
  const XModel xm = tiny_xmodel();
  const std::string text = disassemble(xm);
  std::size_t loads = 0, pos = 0;
  while ((pos = text.find("LOAD", pos)) != std::string::npos) {
    ++loads;
    ++pos;
  }
  std::size_t expected = 0;
  for (const auto& l : xm.layers) {
    for (const auto& i : l.instrs) expected += (i.opcode == Opcode::kLoad);
  }
  EXPECT_EQ(loads, expected);
}

// Golden disassembly: a hand-built U-Net-shaped graph with fixed integer
// weights (no training RNG) compiled at -O1 must disassemble to exactly
// this text. Locks the pass pipeline's output format — layer annotations
// ([resident], [store->...], [materialized], [tiled ...]), region-addressed
// instruction suffixes, and the summary totals. Update deliberately when
// the compiler or disassembler changes.
quant::QGraph golden_qgraph() {
  using tensor::Shape;
  quant::QGraph qg;
  quant::QOp input;
  input.kind = quant::QOpKind::kInput;
  input.out_shape = Shape{16, 16, 2};
  input.fix_pos_out = 6;
  qg.ops.push_back(input);
  quant::QOp enc;
  enc.kind = quant::QOpKind::kConv2D;
  enc.name = "enc";
  enc.inputs = {0};
  enc.out_shape = Shape{16, 16, 4};
  enc.kernel = 3;
  enc.fix_pos_w = 6;
  enc.fix_pos_out = 5;
  enc.relu = true;
  enc.weights = tensor::TensorI8(Shape{3, 3, 2, 4}, 1);
  enc.bias.assign(4, 0);
  qg.ops.push_back(enc);  // op 1
  quant::QOp down;
  down.kind = quant::QOpKind::kMaxPool2D;
  down.name = "down";
  down.inputs = {1};
  down.out_shape = Shape{8, 8, 4};
  down.fix_pos_out = 5;
  qg.ops.push_back(down);  // op 2
  quant::QOp up;
  up.kind = quant::QOpKind::kTConv2D;
  up.name = "up";
  up.inputs = {2};
  up.out_shape = Shape{16, 16, 4};
  up.kernel = 3;
  up.fix_pos_w = 6;
  up.fix_pos_out = 4;
  up.weights = tensor::TensorI8(Shape{3, 3, 4, 4}, 2);
  up.bias.assign(4, 16);
  qg.ops.push_back(up);  // op 3
  quant::QOp skip;
  skip.kind = quant::QOpKind::kConcat;
  skip.name = "skip";
  skip.inputs = {1, 3};
  skip.out_shape = Shape{16, 16, 8};
  skip.fix_pos_out = 4;
  qg.ops.push_back(skip);  // op 4
  quant::QOp head;
  head.kind = quant::QOpKind::kConv2D;
  head.name = "head";
  head.inputs = {4};
  head.out_shape = Shape{16, 16, 2};
  head.kernel = 3;
  head.fix_pos_w = 6;
  head.fix_pos_out = 4;
  head.weights = tensor::TensorI8(Shape{3, 3, 8, 2}, 1);
  head.bias.assign(2, 0);
  qg.ops.push_back(head);  // op 5
  qg.input_op = 0;
  qg.output_op = 5;
  qg.input_fix_pos = 6;
  qg.input_shape = Shape{16, 16, 2};
  return qg;
}

TEST(Disasm, GoldenUnetAtO1) {
  CompileOptions opts;
  opts.model_name = "golden";
  opts.opt_level = 1;
  const XModel xm = compile(golden_qgraph(), opts);
  const std::string text = disassemble(xm);
  const std::string golden =
      "xmodel \"golden\" for DPUCZDX8G-B4096 (2 cores @ 300 MHz, 8x16x16 "
      "lanes)\n"
      "input [16x16x2] fix_pos=6 | output layer 4 fix_pos=4\n"
      "L000 CONV    enc                -> [16x16x4]    relu=1 fpw=6 fpo=5 "
      "[tiled x4 rows]\n"
      "      LOAD   tensor=-1  bytes=2816      macs=0           cycles=352\n"
      "      CONV   tensor=-1  bytes=0         macs=18432       cycles=288\n"
      "      SAVE   tensor=0   bytes=4096      macs=0           cycles=512\n"
      "L001 POOL    down               -> [8x8x4]      relu=0 fpw=0 fpo=5 "
      "[resident]\n"
      "      POOL   tensor=-1  bytes=0         macs=0           cycles=16\n"
      "L002 TCONV   up                 -> [16x16x4]    relu=0 fpw=6 fpo=4 "
      "[resident] [store->L003@ch4]\n"
      "      TCONV  tensor=-1  bytes=0         macs=9216        cycles=96\n"
      "L003 CONCAT  skip               -> [16x16x8]    relu=0 fpw=0 fpo=4 "
      "[resident] [materialized]\n"
      "      LOAD   tensor=0   bytes=2048      macs=0           cycles=256 "
      "->L003@ch0\n"
      "L004 CONV    head               -> [16x16x2]    relu=0 fpw=6 fpo=4 "
      "[tiled x4 rows]\n"
      "      CONV   tensor=-1  bytes=0         macs=36864       cycles=288\n"
      "      SAVE   tensor=4   bytes=4096      macs=0           cycles=512\n"
      "      END    tensor=-1  bytes=0         macs=0           cycles=0\n"
      "TOTAL: 5 layers, 9 instrs, 0.1 MMACs, 0.01 MB DDR/inf, util 4.6 %\n"
      "LATENCY: 1.00 ms (exclusive DDR) / 1.00 ms (2 sharers)\n";
  EXPECT_EQ(text, golden) << "--- actual ---\n" << text << "--- end ---";
}

}  // namespace
}  // namespace seneca::dpu
