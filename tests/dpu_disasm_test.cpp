// Disassembler tests: the report must faithfully reflect the compiled
// model's structure and totals.
#include <gtest/gtest.h>

#include "dpu/compiler.hpp"
#include "dpu/disasm.hpp"
#include "nn/unet.hpp"
#include "quant/quantizer.hpp"
#include "util/rng.hpp"

namespace seneca::dpu {
namespace {

XModel tiny_xmodel() {
  nn::UNet2DConfig cfg;
  cfg.input_size = 16;
  cfg.depth = 2;
  cfg.base_filters = 4;
  auto graph = nn::build_unet2d(cfg);
  util::Rng rng(3);
  tensor::TensorF x(tensor::Shape{16, 16, 1});
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1, 1));
  graph->forward(x, true);
  quant::FGraph fg = quant::fold(*graph);
  std::vector<tensor::TensorF> calib{x};
  return compile(quant::quantize(fg, calib));
}

TEST(Disasm, ListsEveryLayer) {
  const XModel xm = tiny_xmodel();
  const std::string text = disassemble(xm);
  for (const auto& layer : xm.layers) {
    EXPECT_NE(text.find(layer.name), std::string::npos) << layer.name;
  }
}

TEST(Disasm, ContainsArchAndOpcodes) {
  const XModel xm = tiny_xmodel();
  const std::string text = disassemble(xm);
  EXPECT_NE(text.find("DPUCZDX8G-B4096"), std::string::npos);
  EXPECT_NE(text.find("LOAD"), std::string::npos);
  EXPECT_NE(text.find("SAVE"), std::string::npos);
  EXPECT_NE(text.find("CONV"), std::string::npos);
  EXPECT_NE(text.find("END"), std::string::npos);
}

TEST(Disasm, SummaryTogglable) {
  const XModel xm = tiny_xmodel();
  DisasmOptions opts;
  opts.summary = false;
  opts.instructions = false;
  const std::string text = disassemble(xm, opts);
  EXPECT_EQ(text.find("TOTAL:"), std::string::npos);
  EXPECT_EQ(text.find("LOAD"), std::string::npos);
  DisasmOptions with;
  EXPECT_NE(disassemble(xm, with).find("TOTAL:"), std::string::npos);
  EXPECT_NE(disassemble(xm, with).find("LATENCY:"), std::string::npos);
}

TEST(Disasm, BreakdownSortedByContribution) {
  const XModel xm = tiny_xmodel();
  const std::string text = latency_breakdown(xm);
  // percentage of the first listed layer >= percentage of the last
  const auto first = text.find('%');
  ASSERT_NE(first, std::string::npos);
  // every layer appears
  for (const auto& layer : xm.layers) {
    EXPECT_NE(text.find(layer.name), std::string::npos);
  }
  // percentages sum to ~100
  double sum = 0.0;
  std::size_t pos = 0;
  while ((pos = text.find('%', pos)) != std::string::npos) {
    const std::size_t line_start = text.rfind('\n', pos);
    const std::string head =
        text.substr(line_start + 1, pos - line_start - 1);
    sum += std::strtod(head.c_str(), nullptr);
    ++pos;
  }
  EXPECT_NEAR(sum, 100.0, 2.0);
}

TEST(Disasm, InstructionCountsMatchModel) {
  const XModel xm = tiny_xmodel();
  const std::string text = disassemble(xm);
  std::size_t loads = 0, pos = 0;
  while ((pos = text.find("LOAD", pos)) != std::string::npos) {
    ++loads;
    ++pos;
  }
  std::size_t expected = 0;
  for (const auto& l : xm.layers) {
    for (const auto& i : l.instrs) expected += (i.opcode == Opcode::kLoad);
  }
  EXPECT_EQ(loads, expected);
}

}  // namespace
}  // namespace seneca::dpu
