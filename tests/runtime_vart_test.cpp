// VART runtime tests: async submit/collect semantics, batch ordering,
// bit-exactness against direct core execution under concurrency.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "dpu/compiler.hpp"
#include "nn/unet.hpp"
#include "quant/quantizer.hpp"
#include "runtime/vart.hpp"
#include "util/rng.hpp"

namespace seneca::runtime {
namespace {

using tensor::Shape;
using tensor::TensorF;
using tensor::TensorI8;

dpu::XModel build_model(std::uint64_t seed = 3) {
  nn::UNet2DConfig cfg;
  cfg.input_size = 16;
  cfg.depth = 2;
  cfg.base_filters = 4;
  cfg.seed = seed;
  auto graph = nn::build_unet2d(cfg);
  util::Rng rng(seed + 1);
  TensorF x(Shape{16, 16, 1});
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1, 1));
  graph->forward(x, true);
  quant::FGraph fg = quant::fold(*graph);
  std::vector<TensorF> calib{x};
  return dpu::compile(quant::quantize(fg, calib));
}

TensorI8 random_input(std::uint64_t seed) {
  util::Rng rng(seed);
  TensorI8 x(Shape{16, 16, 1});
  for (auto& v : x) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  return x;
}

TEST(VartRunner, SingleJobMatchesDirectExecution) {
  const dpu::XModel xm = build_model();
  dpu::DpuCoreSim direct(&xm);
  VartRunner runner(xm, 1);
  const TensorI8 input = random_input(11);
  runner.submit(input);
  auto [id, output] = runner.collect();
  EXPECT_EQ(id, 0u);
  EXPECT_EQ(tensor::max_abs_diff(output, direct.run(input).output), 0.0);
}

TEST(VartRunner, BatchPreservesInputOrder) {
  const dpu::XModel xm = build_model();
  dpu::DpuCoreSim direct(&xm);
  VartRunner runner(xm, 4);
  std::vector<TensorI8> inputs;
  for (int i = 0; i < 12; ++i) inputs.push_back(random_input(100 + static_cast<std::uint64_t>(i)));
  const auto outputs = runner.run_batch(inputs);
  ASSERT_EQ(outputs.size(), inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_EQ(tensor::max_abs_diff(outputs[i], direct.run(inputs[i]).output), 0.0)
        << "job " << i;
  }
}

TEST(VartRunner, JobIdsAreUnique) {
  const dpu::XModel xm = build_model();
  VartRunner runner(xm, 2);
  std::set<std::uint64_t> submitted;
  for (int i = 0; i < 8; ++i) submitted.insert(runner.submit(random_input(static_cast<std::uint64_t>(i))));
  EXPECT_EQ(submitted.size(), 8u);
  std::set<std::uint64_t> collected;
  for (int i = 0; i < 8; ++i) collected.insert(runner.collect().first);
  EXPECT_EQ(collected, submitted);
}

TEST(VartRunner, MultiThreadMatchesSingleThread) {
  const dpu::XModel xm = build_model(9);
  VartRunner one(xm, 1);
  VartRunner four(xm, 4);
  std::vector<TensorI8> inputs;
  for (int i = 0; i < 10; ++i) inputs.push_back(random_input(500 + static_cast<std::uint64_t>(i)));
  const auto a = one.run_batch(inputs);
  const auto b = four.run_batch(inputs);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_EQ(tensor::max_abs_diff(a[i], b[i]), 0.0);
  }
}

TEST(VartRunner, WorkerCountClampedToAtLeastOne) {
  const dpu::XModel xm = build_model();
  VartRunner runner(xm, 0);
  EXPECT_EQ(runner.num_workers(), 1);
}

TEST(VartRunner, BoundedQueueReportsBackpressure) {
  const dpu::XModel xm = build_model();
  VartRunner runner(xm, 1, /*max_pending=*/2);
  EXPECT_EQ(runner.max_pending(), 2u);
  // A tight submission loop outruns the single worker by orders of
  // magnitude: once two jobs are queued (plus one executing), try_submit
  // must report backpressure instead of growing the queue.
  int accepted = 0;
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 10; ++i) {
    if (auto id = runner.try_submit(random_input(static_cast<std::uint64_t>(i)))) {
      ids.push_back(*id);
      ++accepted;
    }
  }
  EXPECT_GE(accepted, 2);
  EXPECT_LT(accepted, 10);
  EXPECT_LE(runner.pending(), 2u);
  for (int i = 0; i < accepted; ++i) runner.collect();
  // Draining frees space again.
  EXPECT_TRUE(runner.try_submit(random_input(77)).has_value());
  runner.collect();
}

TEST(VartRunner, BoundedBlockingSubmitMakesProgress) {
  const dpu::XModel xm = build_model();
  VartRunner runner(xm, 2, /*max_pending=*/1);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 6; ++i) {
    // submit() blocks on the full queue and resumes as workers drain it.
    ids.push_back(runner.submit(random_input(200 + static_cast<std::uint64_t>(i))));
  }
  std::set<std::uint64_t> collected;
  for (int i = 0; i < 6; ++i) collected.insert(runner.collect().first);
  EXPECT_EQ(collected.size(), 6u);
}

TEST(VartRunner, UnboundedTrySubmitNeverFails) {
  const dpu::XModel xm = build_model();
  VartRunner runner(xm, 1);  // default: unbounded
  EXPECT_EQ(runner.max_pending(), 0u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(runner.try_submit(random_input(static_cast<std::uint64_t>(i))).has_value());
  }
  for (int i = 0; i < 20; ++i) runner.collect();
}

TEST(VartRunner, DrainsOnDestruction) {
  const dpu::XModel xm = build_model();
  {
    VartRunner runner(xm, 2);
    runner.submit(random_input(1));
    runner.collect();
  }  // destructor must join cleanly with no pending work
  SUCCEED();
}

TEST(VartRunner, SubmitAfterStopIsRejected) {
  // Regression: the bounded-mode submit wait also returns on stop, so a
  // racing submit could enqueue a job after the workers were joined — a
  // later collect() on that job hung forever. Post-stop submits must be
  // rejected instead of silently enqueued.
  const dpu::XModel xm = build_model();
  VartRunner runner(xm, 2, /*max_pending=*/2);
  runner.submit(random_input(1));
  runner.collect();
  runner.stop();
  EXPECT_TRUE(runner.stopped());
  EXPECT_FALSE(runner.try_submit(random_input(2)).has_value());
  EXPECT_THROW(runner.submit(random_input(3)), std::runtime_error);
  // Nothing outstanding: collect() reports the misuse instead of hanging.
  EXPECT_THROW(runner.collect(), std::runtime_error);
  runner.stop();  // idempotent
}

TEST(VartRunner, StopDrainsSubmittedJobsBeforeRejecting) {
  const dpu::XModel xm = build_model();
  VartRunner runner(xm, 2);
  std::set<std::uint64_t> submitted;
  for (int i = 0; i < 4; ++i) {
    submitted.insert(runner.submit(random_input(300 + static_cast<std::uint64_t>(i))));
  }
  runner.stop();  // joins only after the workers drained the queue
  std::set<std::uint64_t> collected;
  for (int i = 0; i < 4; ++i) collected.insert(runner.collect().first);
  EXPECT_EQ(collected, submitted);
  EXPECT_THROW(runner.collect(), std::runtime_error);
}

TEST(VartRunner, RunFaultHookFailsTheBatchInTheCallersThread) {
  const dpu::XModel xm = build_model();
  VartRunner runner(xm, 1);
  int calls = 0;
  runner.set_run_fault_hook([&calls](std::size_t batch) {
    ++calls;
    if (calls == 1) throw std::runtime_error("injected fault, batch=" +
                                             std::to_string(batch));
  });
  std::vector<tensor::TensorI8> inputs{random_input(1), random_input(2)};
  EXPECT_THROW(runner.run_batch(inputs), std::runtime_error);
  // The fault hit before any submit: the runner is still fully usable.
  const auto outputs = runner.run_batch(inputs);
  EXPECT_EQ(outputs.size(), 2u);
  EXPECT_EQ(calls, 2);
}

}  // namespace
}  // namespace seneca::runtime
